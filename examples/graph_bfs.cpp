// Multi-GPU BFS — the paper's communication-heavy workload.
//
// The level (cost) array is written at arbitrary neighbour indices, so it
// stays replicated with two-level dirty bits; every BFS level exchanges the
// dirty chunks between the GPUs. This example prints the traffic the
// communication manager generated, showing why BFS gains little from a
// third GPU on the supercomputer node (paper Fig. 7/8).
#include <algorithm>
#include <cstdio>
#include <vector>

#include "apps/bfs/bfs.h"
#include "common/string_util.h"
#include "sim/platform.h"

int main() {
  using namespace accmg;

  const apps::BfsInput input = apps::MakeBfsInput(200000, 48);
  const std::vector<std::int32_t> reference = apps::BfsReference(input);
  const int diameter = *std::max_element(reference.begin(), reference.end());
  std::printf("graph: %d nodes, degree %d, BFS diameter %d\n\n", input.nnodes,
              input.degree, diameter);

  for (int gpus : {1, 2, 3}) {
    auto platform = sim::MakeSupercomputerNode(3);
    std::vector<std::int32_t> cost;
    const runtime::RunReport report =
        apps::RunBfsAcc(input, *platform, gpus, &cost);
    if (cost != reference) {
      std::printf("WRONG BFS RESULT with %d GPUs\n", gpus);
      return 1;
    }
    std::printf(
        "%d GPU(s): %8.3f ms  (KERNELS %7.3f  CPU-GPU %8.3f  GPU-GPU "
        "%8.3f)\n"
        "          dirty chunks sent %6llu, clean chunks skipped %6llu, "
        "P2P traffic %s\n",
        gpus, report.total_seconds * 1e3,
        report.time[sim::TimeCategory::kKernel] * 1e3,
        report.time[sim::TimeCategory::kCpuGpu] * 1e3,
        report.time[sim::TimeCategory::kGpuGpu] * 1e3,
        static_cast<unsigned long long>(report.comm.dirty_chunks_sent),
        static_cast<unsigned long long>(report.comm.clean_chunks_skipped),
        FormatBytes(report.counters.p2p_bytes).c_str());
  }
  std::printf(
      "\nEvery run matched the sequential reference; the GPU-GPU column "
      "grows\nwith the GPU count — the bottleneck the paper identifies for "
      "bfs.\n");
  return 0;
}
