// 1-D heat diffusion (Jacobi) on multiple GPUs.
//
// Demonstrates the halo form of the localaccess extension: iteration i reads
// u[i-1..i+1], declared as `localaccess(u: stride(1), left(1), right(1))`.
// The loader then distributes `u` with one-element halos, and the
// communication manager refreshes the halos from their owners after every
// step — the classic distributed-stencil exchange, produced automatically
// from a single-GPU OpenACC program.
//
// Pass --validate to shadow-execute every kernel on a single-GPU golden
// configuration and diff the full managed-array state after each one (see
// docs/ARCHITECTURE.md, "Correctness & validation"). Validation re-runs
// every kernel on the host, so the flag also shrinks the problem.
#include <cmath>
#include <cstdio>
#include <cstring>
#include <vector>

#include "runtime/program.h"
#include "sim/platform.h"

namespace {

constexpr char kSource[] = R"(
void heat(int n, int steps, double alpha, double* u, double* unew) {
  #pragma acc data copy(u[0:n]) create(unew[0:n])
  {
    for (int t = 0; t < steps; t++) {
      #pragma acc localaccess(u: stride(1), left(1), right(1)) \
                  (unew: stride(1))
      #pragma acc parallel loop
      for (int i = 0; i < n; i++) {
        int l = i - 1;
        int r = i + 1;
        if (l < 0) { l = 0; }
        if (r >= n) { r = n - 1; }
        unew[i] = u[i] + alpha * (u[l] - 2.0 * u[i] + u[r]);
      }
      #pragma acc localaccess(u: stride(1)) (unew: stride(1))
      #pragma acc parallel loop
      for (int i = 0; i < n; i++) {
        u[i] = unew[i];
      }
    }
  }
}
)";

}  // namespace

int main(int argc, char** argv) {
  using namespace accmg;

  bool validate = false;
  bool async_pipeline = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--validate") == 0) {
      validate = true;
    } else if (std::strcmp(argv[i], "--async-pipeline") == 0) {
      async_pipeline = true;
    } else {
      std::fprintf(stderr, "usage: %s [--validate] [--async-pipeline]\n",
                   argv[0]);
      return 2;
    }
  }
  // The golden shadow execution runs each kernel single-threaded on the
  // host, so validation uses a much smaller grid and fewer steps.
  const int kN = validate ? 1 << 14 : 1 << 20;
  const int kSteps = validate ? 10 : 50;
  const auto program = runtime::AccProgram::FromSource("heat", kSource);

  std::vector<double> reference;
  for (int gpus : {1, 2, 3}) {
    auto platform = sim::MakeSupercomputerNode(3);
    std::vector<double> u(kN), unew(kN, 0.0);
    for (int i = 0; i < kN; ++i) {
      u[i] = (i > kN / 4 && i < kN / 2) ? 100.0 : 0.0;  // a hot slab
    }
    runtime::RunConfig config{.platform = platform.get(), .num_gpus = gpus};
    config.options.validate = validate;
    config.options.async_pipeline = async_pipeline;
    runtime::ProgramRunner runner(program, config);
    runner.BindArray("u", u.data(), ir::ValType::kF64, kN);
    runner.BindArray("unew", unew.data(), ir::ValType::kF64, kN);
    runner.BindScalar("n", static_cast<std::int64_t>(kN));
    runner.BindScalar("steps", static_cast<std::int64_t>(kSteps));
    runner.BindScalar("alpha", 0.24);
    const runtime::RunReport report = runner.Run("heat");

    double energy = 0;
    for (double v : u) energy += v;
    std::printf(
        "%d GPU(s): %8.3f ms  (KERNELS %7.3f  CPU-GPU %7.3f  GPU-GPU "
        "%7.3f)  halo refreshes: %llu  energy %.6g\n",
        gpus, report.total_seconds * 1e3,
        report.time[sim::TimeCategory::kKernel] * 1e3,
        report.time[sim::TimeCategory::kCpuGpu] * 1e3,
        report.time[sim::TimeCategory::kGpuGpu] * 1e3,
        static_cast<unsigned long long>(report.comm.halo_refreshes), energy);
    if (validate) {
      std::printf("    validated: %llu kernel(s) checked, %llu divergence(s)\n",
                  static_cast<unsigned long long>(
                      report.validator.kernels_checked),
                  static_cast<unsigned long long>(
                      report.validator.divergences));
      if (report.validator.kernels_checked == 0 ||
          report.validator.divergences != 0) {
        std::printf("VALIDATION FAILED\n");
        return 1;
      }
    }

    if (gpus == 1) {
      reference = u;
    } else if (u != reference) {
      std::printf("RESULT MISMATCH vs the 1-GPU run!\n");
      return 1;
    }
  }
  std::printf("\nAll GPU counts produced bit-identical temperature fields.\n");
  return 0;
}
