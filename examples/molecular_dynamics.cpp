// Multi-GPU molecular dynamics — the paper's communication-free workload.
//
// Force and neighbour-list arrays carry localaccess directives, so the
// loader distributes them; every write is statically proven local, so the
// kernel needs neither dirty bits nor write-miss checks and the run shows
// zero GPU-GPU time at any GPU count.
#include <cstdio>
#include <vector>

#include "apps/md/md.h"
#include "common/string_util.h"
#include "sim/platform.h"

int main() {
  using namespace accmg;

  const apps::MdInput input = apps::MakeMdInput(36864, 64);
  const std::vector<float> reference = apps::MdReference(input);
  std::printf("Lennard-Jones forces: %d atoms, %d neighbours each\n\n",
              input.natoms, input.maxneigh);

  std::vector<float> force;
  const auto cuda = apps::RunMdCuda(input, *sim::MakeDesktopMachine(2),
                                    &force);
  std::printf("hand-written CUDA, 1 GPU: %8.3f ms\n",
              cuda.total_seconds * 1e3);

  for (int gpus : {1, 2}) {
    auto platform = sim::MakeDesktopMachine(2);
    const runtime::RunReport report =
        apps::RunMdAcc(input, *platform, gpus, &force);
    if (force != reference) {
      std::printf("WRONG FORCES with %d GPUs\n", gpus);
      return 1;
    }
    std::printf(
        "OpenACC proposal, %d GPU(s): %8.3f ms  (KERNELS %7.3f  CPU-GPU "
        "%7.3f  GPU-GPU %7.3f)  user memory %s\n",
        gpus, report.total_seconds * 1e3,
        report.time[sim::TimeCategory::kKernel] * 1e3,
        report.time[sim::TimeCategory::kCpuGpu] * 1e3,
        report.time[sim::TimeCategory::kGpuGpu] * 1e3,
        FormatBytes(report.peak_user_bytes).c_str());
  }
  std::printf(
      "\nForces match the sequential reference bit-for-bit; GPU-GPU time is "
      "zero\n(no inter-GPU communication, paper Section V-A).\n");
  return 0;
}
