// Quickstart: compile an annotated OpenACC program and run it on the
// simulated 2-GPU desktop machine, on 1 GPU, and on the CPU baseline.
//
//   $ ./examples/quickstart
//
// The program is plain C with OpenACC directives plus the paper's
// `localaccess` extension; no multi-GPU code appears in the source — the
// translator and runtime distribute the work and the data.
#include <cstdio>
#include <vector>

#include "runtime/program.h"
#include "sim/platform.h"

namespace {

constexpr char kSource[] = R"(
void saxpy(int n, float a, float* x, float* y) {
  #pragma acc data copyin(x[0:n]) copy(y[0:n])
  {
    #pragma acc localaccess(x: stride(1)) (y: stride(1))
    #pragma acc parallel loop
    for (int i = 0; i < n; i++) {
      y[i] = a * x[i] + y[i];
    }
  }
}
)";

void Report(const char* label, const accmg::runtime::RunReport& report) {
  std::printf(
      "%-12s total %8.3f ms   (KERNELS %7.3f  CPU-GPU %7.3f  GPU-GPU %7.3f  "
      "HOST %7.3f)\n",
      label, report.total_seconds * 1e3,
      report.time[accmg::sim::TimeCategory::kKernel] * 1e3,
      report.time[accmg::sim::TimeCategory::kCpuGpu] * 1e3,
      report.time[accmg::sim::TimeCategory::kGpuGpu] * 1e3,
      report.time[accmg::sim::TimeCategory::kHostCompute] * 1e3);
}

}  // namespace

int main() {
  using namespace accmg;

  constexpr int kN = 1 << 22;  // 4M elements
  const auto program = runtime::AccProgram::FromSource("saxpy", kSource);
  auto platform = sim::MakeDesktopMachine(2);

  std::printf("saxpy over %d floats on the simulated desktop machine\n\n",
              kN);

  for (const auto& [label, gpus, cpu] :
       {std::tuple{"OpenMP", 1, true}, std::tuple{"1 GPU", 1, false},
        std::tuple{"2 GPUs", 2, false}}) {
    std::vector<float> x(kN), y(kN);
    for (int i = 0; i < kN; ++i) {
      x[i] = 1.0f + 1e-6f * static_cast<float>(i);
      y[i] = 2.0f;
    }
    runtime::ProgramRunner runner(
        program, runtime::RunConfig{.platform = platform.get(),
                                    .num_gpus = gpus,
                                    .use_cpu = cpu});
    runner.BindArray("x", x.data(), ir::ValType::kF32, kN);
    runner.BindArray("y", y.data(), ir::ValType::kF32, kN);
    runner.BindScalar("n", static_cast<std::int64_t>(kN));
    runner.BindScalarF32("a", 2.5f);
    const runtime::RunReport report = runner.Run("saxpy");
    Report(label, report);
    // Spot-check the result.
    const float expected = 2.5f * x[123] + 2.0f;
    if (y[123] != expected) {
      std::printf("WRONG RESULT at index 123: %f vs %f\n", y[123], expected);
      return 1;
    }
  }
  std::printf("\nAll three executions produced identical results.\n");
  return 0;
}
