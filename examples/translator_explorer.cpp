// Translator explorer: show every artifact the compiler produces for an
// annotated program — the array configuration information, the kernel IR,
// and the generated CUDA source (what the paper's ROSE-based translator
// hands to nvcc).
//
//   $ ./examples/translator_explorer            # built-in kmeans-like demo
#include <cstdio>

#include "frontend/sema.h"
#include "ir/ir.h"
#include "translator/cuda_codegen.h"
#include "translator/offload.h"

namespace {

constexpr char kDemoSource[] = R"(
void demo(int n, int k, float* data, int* labels, float* sums, float* weights) {
  #pragma acc data copyin(data[0:n], weights[0:n]) copy(labels[0:n], sums[0:k])
  {
    #pragma acc localaccess(data: stride(1)) (labels: stride(1))
    #pragma acc parallel loop
    for (int i = 0; i < n; i++) {
      int bucket = labels[i];
      if (data[i] > 0.0f) {
        bucket = bucket + 1;
        if (bucket >= k) { bucket = 0; }
      }
      labels[i] = bucket;
      #pragma acc reductiontoarray(+: sums[0:k])
      sums[bucket] += data[i] * weights[i];
    }
  }
}
)";

}  // namespace

int main() {
  using namespace accmg;

  frontend::SourceBuffer buffer("demo.c", kDemoSource);
  auto ast = frontend::ParseAndAnalyze(buffer);
  const translator::CompiledProgram compiled = translator::Compile(*ast);

  for (const auto& function : compiled.functions) {
    for (const auto& offload : function.offloads) {
      std::printf("=== offload %s (loop at line %d) ===\n",
                  offload.name.c_str(), offload.loop->loc.line);

      std::printf("\n--- array configuration information ---\n");
      for (const auto& config : offload.arrays) {
        const auto& param =
            offload.kernel
                .arrays[static_cast<size_t>(config.kernel_array_index)];
        std::printf(
            "  %-8s %-4s read=%d write=%d localaccess=%d reduction=%d "
            "policy=%s%s%s\n",
            config.name.c_str(), ir::ValTypeName(config.elem), config.is_read,
            config.is_written, config.has_localaccess,
            config.is_reduction_dest,
            config.has_localaccess && !config.is_reduction_dest
                ? "distribute"
                : "replicate",
            param.dirty_tracked ? " +dirty-bits" : "",
            param.miss_checked
                ? " +miss-check"
                : (config.is_written && config.writes_proven_local
                       ? " (writes proven local)"
                       : ""));
      }

      std::printf("\n--- kernel IR ---\n%s",
                  ir::Print(offload.kernel).c_str());

      std::printf("\n--- generated CUDA ---\n%s\n",
                  translator::GenerateCudaKernel(offload).c_str());
    }
    std::printf("--- host program sketch ---\n%s",
                translator::GenerateHostSketch(function).c_str());
  }
  return 0;
}
