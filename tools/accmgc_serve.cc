// accmgc_serve — the resident compile-once / serve-many front of accmg.
//
// Boots one long-lived simulated platform plus an AccService (program
// cache, admission queue, device arena, worker pool) and speaks the
// line-delimited request protocol of service/protocol.h on stdin/stdout:
//
//   $ accmgc_serve --gpus=4 --workers=2
//   ready gpus=4 workers=2 cache=64 queue=64
//   submit app=md gpus=2 validate=1
//   job 0
//   result 0
//   result 0 done key=63ae21a6b72c cache=miss gpus=2 sim_s=0.004410 ...
//   quit
//   bye
//
// Flags:
//   --gpus=N            simulated GPUs on the platform (default 4)
//   --platform=NAME     desktop | super (Table I presets; default super)
//   --workers=N         service worker threads (default 2)
//   --cache-capacity=N  compiled-program LRU entries (default 64)
//   --queue-capacity=N  admission bound (default 64)
//   --max-batch=N       same-hash jobs per popped batch (default 8)
//   --trace-dir=DIR     export per-job Chrome traces for trace=1 jobs
//   --fault-plan=SPEC   arm the fault injector (sim/fault.h spec, e.g.
//                       "seed=7,kernel=0.01,transfer=0.02,death=0.001")
//   --chaos=SEED        arm the moderate-chaos preset with that seed
//   --job-retries=N     re-runs a faulted job gets on a fresh lease (dft 1)
//   --deadline-ms=N     default per-job wall-clock deadline (0 = none)
//
// Submit parameters (all optional except app=):
//   app=md|kmeans|bfs|spmv   builtin workload
//   gpus=N        device-lease size (default 1)
//   tenant=T      fairness domain (default "default")
//   scale=N       input size multiplier (default 1)
//   validate=1    diff outputs against the native reference on finish
//   trace=1       record spans; with --trace-dir, export job_<id>.json
//   async=1       dependence-driven async offload pipeline
//   weighted=1    throughput-weighted task mapping
//   no-check=1    disable the static directive checker (changes the key!)
//   opt-level=N   translator mid-end level 0|1|2 (default 1; part of the
//                 program-cache key, so levels never share an entry)
//   salt=TEXT     appended as a source comment — forces a distinct cache key
//   deadline-ms=N per-job wall-clock deadline (overrides --deadline-ms)
//
// docs/SERVING.md documents the architecture and a full transcript.
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <iostream>
#include <map>
#include <memory>
#include <string>

#include "common/error.h"
#include "common/metrics.h"
#include "service/builtin_apps.h"
#include "service/protocol.h"
#include "service/service.h"
#include "sim/fault.h"
#include "sim/platform.h"

namespace {

using accmg::service::AccService;
using accmg::service::AppJobOptions;
using accmg::service::AppJobOutcome;
using accmg::service::JobResult;
using accmg::service::Request;

struct Flags {
  int gpus = 4;
  std::string platform = "super";
  int workers = 2;
  std::size_t cache_capacity = 64;
  std::size_t queue_capacity = 64;
  std::size_t max_batch = 8;
  std::string trace_dir;
  std::string fault_plan;  ///< sim::FaultPlan::Parse spec; empty = disarmed
  bool chaos = false;
  long chaos_seed = 0;
  int job_retries = 1;
  double deadline_ms = 0;
};

bool ParseIntFlag(const char* arg, const char* name, long* out) {
  const std::size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) != 0 || arg[len] != '=') return false;
  char* end = nullptr;
  const long value = std::strtol(arg + len + 1, &end, 10);
  if (end == nullptr || *end != '\0' || value < 0) {
    std::fprintf(stderr, "accmgc_serve: bad value in %s\n", arg);
    std::exit(2);
  }
  *out = value;
  return true;
}

Flags ParseFlags(int argc, char** argv) {
  Flags flags;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    long value = 0;
    if (ParseIntFlag(arg, "--gpus", &value)) {
      flags.gpus = static_cast<int>(value);
    } else if (ParseIntFlag(arg, "--workers", &value)) {
      flags.workers = static_cast<int>(value);
    } else if (ParseIntFlag(arg, "--cache-capacity", &value)) {
      flags.cache_capacity = static_cast<std::size_t>(value);
    } else if (ParseIntFlag(arg, "--queue-capacity", &value)) {
      flags.queue_capacity = static_cast<std::size_t>(value);
    } else if (ParseIntFlag(arg, "--max-batch", &value)) {
      flags.max_batch = static_cast<std::size_t>(value);
    } else if (ParseIntFlag(arg, "--chaos", &value)) {
      flags.chaos = true;
      flags.chaos_seed = value;
    } else if (ParseIntFlag(arg, "--job-retries", &value)) {
      flags.job_retries = static_cast<int>(value);
    } else if (ParseIntFlag(arg, "--deadline-ms", &value)) {
      flags.deadline_ms = static_cast<double>(value);
    } else if (std::strncmp(arg, "--platform=", 11) == 0) {
      flags.platform = arg + 11;
    } else if (std::strncmp(arg, "--trace-dir=", 12) == 0) {
      flags.trace_dir = arg + 12;
    } else if (std::strncmp(arg, "--fault-plan=", 13) == 0) {
      flags.fault_plan = arg + 13;
    } else {
      std::fprintf(stderr, "accmgc_serve: unknown flag %s\n", arg);
      std::exit(2);
    }
  }
  return flags;
}

/// Per-job bookkeeping the protocol needs at `result` time.
struct Submitted {
  std::shared_ptr<AppJobOutcome> outcome;
  bool validated = false;
};

int SubmitFromParams(AccService& service, const Request& request,
                     std::map<int, Submitted>& submitted, std::string* error,
                     std::string* reject_reason) {
  AppJobOptions options;
  auto param = [&](const char* key) -> const std::string* {
    auto it = request.params.find(key);
    return it == request.params.end() ? nullptr : &it->second;
  };
  auto flag_set = [&](const char* key) {
    const std::string* value = param(key);
    return value != nullptr && *value != "0";
  };

  const std::string* app = param("app");
  if (app == nullptr || !accmg::service::IsBuiltinApp(*app)) {
    *error = "submit needs app=md|kmeans|bfs|spmv";
    return -1;
  }
  options.app = *app;
  if (const std::string* tenant = param("tenant")) options.tenant = *tenant;
  if (const std::string* salt = param("salt")) options.source_salt = *salt;
  if (const std::string* gpus = param("gpus")) options.gpus = std::stoi(*gpus);
  if (const std::string* scale = param("scale")) {
    options.scale = std::stoi(*scale);
  }
  options.validate_result = flag_set("validate");
  options.exec.trace = flag_set("trace");
  options.exec.async_pipeline = flag_set("async");
  options.exec.weighted_task_mapping = flag_set("weighted");
  options.compile.check_directives = !flag_set("no-check");
  if (const std::string* opt = param("opt-level")) {
    const int level = std::stoi(*opt);
    if (level < 0 || level > 2) {
      *error = "opt-level must be 0, 1 or 2";
      return -1;
    }
    options.compile.opt_level = level;
  }

  auto outcome = std::make_shared<AppJobOutcome>();
  accmg::service::JobRequest job =
      accmg::service::MakeAppJob(options, outcome);
  if (const std::string* deadline = param("deadline-ms")) {
    job.deadline_ms = std::stod(*deadline);
  }
  const int id = service.Submit(std::move(job), reject_reason);
  if (id >= 0) {
    submitted[id] = Submitted{std::move(outcome), options.validate_result};
  }
  return id;
}

}  // namespace

int main(int argc, char** argv) {
  const Flags flags = ParseFlags(argc, argv);

  std::unique_ptr<accmg::sim::Platform> platform =
      flags.platform == "desktop"
          ? accmg::sim::MakeDesktopMachine(flags.gpus)
          : accmg::sim::MakeSupercomputerNode(flags.gpus);

  bool faults_armed = false;
  try {
    if (!flags.fault_plan.empty()) {
      platform->ArmFaults(accmg::sim::FaultPlan::Parse(flags.fault_plan));
      faults_armed = true;
    } else if (flags.chaos) {
      platform->ArmFaults(accmg::sim::FaultPlan::Chaos(
          static_cast<std::uint64_t>(flags.chaos_seed)));
      faults_armed = true;
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "accmgc_serve: bad fault plan: %s\n", e.what());
    return 2;
  }

  AccService::Config config;
  config.platform = platform.get();
  config.workers = flags.workers;
  config.cache_capacity = flags.cache_capacity;
  config.queue_capacity = flags.queue_capacity;
  config.max_batch = flags.max_batch;
  config.trace_dir = flags.trace_dir;
  config.job_retries = flags.job_retries;
  config.default_deadline_ms = flags.deadline_ms;
  AccService service(config);

  std::map<int, Submitted> submitted;

  std::cout << "ready gpus=" << flags.gpus << " workers=" << flags.workers
            << " cache=" << flags.cache_capacity
            << " queue=" << flags.queue_capacity
            << (faults_armed ? " faults=armed" : "") << std::endl;

  std::string line;
  while (std::getline(std::cin, line)) {
    const Request request = accmg::service::ParseRequest(line);
    try {
      switch (request.kind) {
        case Request::Kind::kInvalid:
          if (!request.error.empty()) {
            std::cout << "error " << request.error << std::endl;
          }
          break;
        case Request::Kind::kSubmit: {
          std::string error;
          std::string reject_reason;
          const int id = SubmitFromParams(service, request, submitted, &error,
                                          &reject_reason);
          if (id >= 0) {
            std::cout << "job " << id << std::endl;
          } else if (!error.empty()) {
            std::cout << "error " << error << std::endl;
          } else {
            std::cout << "rejected "
                      << (reject_reason.empty() ? "queue-full" : reject_reason)
                      << std::endl;
          }
          break;
        }
        case Request::Kind::kStatus:
          std::cout << "status " << request.job_id << ' '
                    << accmg::service::JobStateName(
                           service.Status(request.job_id))
                    << std::endl;
          break;
        case Request::Kind::kResult: {
          JobResult result;
          if (request.timeout_ms >= 0) {
            auto bounded = service.WaitFor(
                request.job_id,
                std::chrono::milliseconds(
                    static_cast<long long>(request.timeout_ms)));
            if (!bounded.has_value()) {
              std::cout << "result " << request.job_id << " timeout"
                        << " waited_ms=" << request.timeout_ms << std::endl;
              break;
            }
            result = std::move(*bounded);
          } else {
            result = service.Wait(request.job_id);
          }
          std::string reply = accmg::service::FormatResultLine(result);
          auto it = submitted.find(request.job_id);
          if (it != submitted.end() && it->second.validated &&
              it->second.outcome->checked) {
            reply += it->second.outcome->ok
                         ? " check=ok"
                         : " check=FAIL(" + it->second.outcome->detail + ")";
          }
          std::cout << reply << std::endl;
          break;
        }
        case Request::Kind::kMetrics:
          accmg::metrics::Registry::Global().WriteText(std::cout);
          std::cout << "end" << std::endl;
          break;
        case Request::Kind::kQuit:
          std::cout << "bye" << std::endl;
          service.Stop();
          return 0;
      }
    } catch (const std::exception& e) {
      std::cout << "error " << e.what() << std::endl;
    }
  }
  service.Stop();
  return 0;
}
