// validate_smoke — runs every application under the coherence validator
// (--validate shadow execution, docs/ARCHITECTURE.md "Correctness &
// validation") on 1-, 2- and 4-GPU configurations and compares the results
// against the native references. Exits non-zero on the first divergence,
// reference mismatch, or validator-reported fault. CI runs this as the
// validate-smoke job (and again as async-smoke with --async-pipeline, and as
// mapper-smoke with --mapper=measured); it is also a convenient local sanity
// sweep after touching the data loader, the communication manager, the
// executor's async pipeline, or codegen.
//
// Flags:
//   --async-pipeline   run with ExecOptions::async_pipeline on, exercising
//                      the dependence-driven boundary/interior split and
//                      overlapped communication under the same validator.
//   --opt-level=N      translator mid-end level 0|1|2 (default 1). CI's
//                      opt-smoke job runs the sweep at --opt-level=2 to
//                      prove the optimizer is coherence-transparent.
//   --mapper=MODE      task mapper: equal (default) or measured. CI's
//                      mapper-smoke job runs the sweep under both modes to
//                      prove the adaptive mapper never changes results.
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "apps/bfs/bfs.h"
#include "apps/heat2d/heat2d.h"
#include "apps/kmeans/kmeans.h"
#include "apps/lattice/lattice.h"
#include "apps/md/md.h"
#include "apps/spmv/spmv.h"
#include "common/error.h"
#include "runtime/options.h"
#include "runtime/program.h"
#include "sim/platform.h"

namespace {

int failures = 0;

accmg::runtime::ExecOptions base_options;
accmg::translator::CompileOptions base_copts;

void Report(const char* app, int gpus, const accmg::runtime::RunReport& report,
            bool outputs_match) {
  const bool ok = outputs_match && report.validator.divergences == 0 &&
                  report.validator.kernels_checked > 0;
  std::printf("%-8s gpus=%d  kernels_checked=%llu  divergences=%llu  %s\n",
              app, gpus,
              static_cast<unsigned long long>(report.validator.kernels_checked),
              static_cast<unsigned long long>(report.validator.divergences),
              ok ? "OK" : "FAIL");
  if (!ok) ++failures;
}

void Fail(const char* app, int gpus, const std::string& why) {
  std::printf("%-8s gpus=%d  FAIL (%s)\n", app, gpus, why.c_str());
  ++failures;
}

void RunMd(int gpus) {
  auto platform = accmg::sim::MakeSupercomputerNode(4);
  accmg::runtime::ExecOptions options = base_options;
  options.validate = true;
  const auto input = accmg::apps::MakeMdInput(512, 12);
  const std::vector<float> expected = accmg::apps::MdReference(input);
  std::vector<float> force;
  try {
    const auto report =
        accmg::apps::RunMdAcc(input, *platform, gpus, &force, options,
                               base_copts);
    Report("md", gpus, report, force == expected);
  } catch (const accmg::Error& e) {
    Fail("md", gpus, e.what());
  }
}

void RunKmeans(int gpus) {
  auto platform = accmg::sim::MakeSupercomputerNode(4);
  accmg::runtime::ExecOptions options = base_options;
  options.validate = true;
  const auto input = accmg::apps::MakeKmeansInput(800, 4, 4, 7);
  const auto expected = accmg::apps::KmeansReference(input);
  accmg::apps::KmeansResult result;
  try {
    const auto report =
        accmg::apps::RunKmeansAcc(input, *platform, gpus, &result, options,
                               base_copts);
    bool match = result.membership == expected.membership &&
                 result.centroids.size() == expected.centroids.size();
    for (std::size_t i = 0; match && i < result.centroids.size(); ++i) {
      match = std::fabs(result.centroids[i] - expected.centroids[i]) <=
              2e-3 * (1.0 + std::fabs(expected.centroids[i]));
    }
    Report("kmeans", gpus, report, match);
  } catch (const accmg::Error& e) {
    Fail("kmeans", gpus, e.what());
  }
}

void RunBfs(int gpus) {
  auto platform = accmg::sim::MakeSupercomputerNode(4);
  accmg::runtime::ExecOptions options = base_options;
  options.validate = true;
  const auto input = accmg::apps::MakeBfsInput(1000, 4);
  const std::vector<std::int32_t> expected = accmg::apps::BfsReference(input);
  std::vector<std::int32_t> cost;
  try {
    const auto report =
        accmg::apps::RunBfsAcc(input, *platform, gpus, &cost, options,
                               base_copts);
    Report("bfs", gpus, report, cost == expected);
  } catch (const accmg::Error& e) {
    Fail("bfs", gpus, e.what());
  }
}

void RunSpmv(int gpus) {
  auto platform = accmg::sim::MakeSupercomputerNode(4);
  accmg::runtime::ExecOptions options = base_options;
  options.validate = true;
  const auto input = accmg::apps::MakeSpmvInput(600, 8);
  const std::vector<float> expected = accmg::apps::SpmvReference(input);
  std::vector<float> y;
  try {
    const auto report =
        accmg::apps::RunSpmvAcc(input, *platform, gpus, &y, options,
                               base_copts);
    Report("spmv", gpus, report, y == expected);
  } catch (const accmg::Error& e) {
    Fail("spmv", gpus, e.what());
  }
}

void RunHeat2d(int gpus) {
  auto platform = accmg::sim::MakeSupercomputerNode(4);
  accmg::runtime::ExecOptions options = base_options;
  options.validate = true;
  const auto input = accmg::apps::MakeHeat2dInput(41, 14, 5);
  const std::vector<float> expected = accmg::apps::Heat2dReference(input);
  std::vector<float> u;
  try {
    const auto report =
        accmg::apps::RunHeat2dAcc(input, *platform, gpus, &u, options,
                               base_copts);
    Report("heat2d", gpus, report, u == expected);
  } catch (const accmg::Error& e) {
    Fail("heat2d", gpus, e.what());
  }
}

void RunLattice(int gpus) {
  auto platform = accmg::sim::MakeSupercomputerNode(4);
  accmg::runtime::ExecOptions options = base_options;
  options.validate = true;
  const auto input = accmg::apps::MakeLatticeInput(33, 11, 4);
  const std::vector<float> expected = accmg::apps::LatticeReference(input);
  std::vector<float> phi;
  try {
    const auto report =
        accmg::apps::RunLatticeAcc(input, *platform, gpus, &phi, options,
                               base_copts);
    Report("lattice", gpus, report, phi == expected);
  } catch (const accmg::Error& e) {
    Fail("lattice", gpus, e.what());
  }
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--async-pipeline") == 0) {
      base_options.async_pipeline = true;
    } else if (std::strncmp(argv[i], "--opt-level=", 12) == 0) {
      const int level = std::atoi(argv[i] + 12);
      if (level < 0 || level > 2) {
        std::fprintf(stderr, "validate_smoke: bad --opt-level value\n");
        return 2;
      }
      base_copts.opt_level = level;
    } else if (std::strncmp(argv[i], "--mapper=", 9) == 0) {
      const char* mode = argv[i] + 9;
      if (std::strcmp(mode, "equal") == 0) {
        base_options.mapper = accmg::runtime::TaskMapper::kEqual;
      } else if (std::strcmp(mode, "measured") == 0) {
        base_options.mapper = accmg::runtime::TaskMapper::kMeasured;
      } else {
        std::fprintf(stderr, "validate_smoke: bad --mapper value '%s'\n", mode);
        return 2;
      }
    } else {
      std::fprintf(stderr, "validate_smoke: unknown flag '%s'\n", argv[i]);
      return 2;
    }
  }
  if (base_options.async_pipeline) {
    std::printf("async pipeline: ON\n");
  }
  std::printf("opt level: %d\n", base_copts.opt_level);
  std::printf("mapper: %s\n",
              base_options.mapper == accmg::runtime::TaskMapper::kMeasured
                  ? "measured"
                  : "equal");
  for (const int gpus : {1, 2, 4}) {
    RunMd(gpus);
    RunKmeans(gpus);
    RunBfs(gpus);
    RunSpmv(gpus);
    RunHeat2d(gpus);
    RunLattice(gpus);
  }
  if (failures > 0) {
    std::fprintf(stderr, "validate_smoke: %d configuration(s) failed\n",
                 failures);
    return 1;
  }
  std::printf("validate_smoke: all configurations clean\n");
  return 0;
}
