// accmgc — the command-line driver of the multi-GPU OpenACC translator.
//
// Usage:
//   accmgc [--emit=cuda|ir|config|all] [--trace-out=FILE] [--metrics] file.c
//   accmgc --emit=cuda -            (read from stdin)
//
// Emits the translator's artifacts for every offloaded parallel loop:
//   cuda    the generated CUDA kernels + host-code sketch (default)
//   ir      the kernel IR listings
//   config  the array configuration information
//   all     everything
//
// Observability (docs/OBSERVABILITY.md):
//   --trace-out=FILE   records wall-clock spans of the compiler phases
//                      (frontend, translate, emit) and writes a Chrome-trace
//                      JSON file loadable in chrome://tracing
//   --metrics          prints the global metrics registry (functions and
//                      offloads compiled, per-offload array policies) to
//                      stderr after compilation
//
// Correctness (docs/ARCHITECTURE.md, "Correctness & validation"):
//   --no-directive-check  disables the static localaccess/reductiontoarray
//                         checker. Compilation then accepts provably wrong
//                         window declarations; the runtime's residency
//                         enforcement and --validate shadow execution remain
//                         the backstops.
//
// Optimization (docs/ARCHITECTURE.md, "Optimizing mid-end"):
//   --opt-level=N  0 = one-to-one translation, 1 = offload fusion + CSE
//                  (default), 2 = additionally loop-invariant hoisting.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>

#include "common/error.h"
#include "common/metrics.h"
#include "common/trace.h"
#include "frontend/sema.h"
#include "ir/ir.h"
#include "translator/cuda_codegen.h"
#include "translator/offload.h"

namespace {

void PrintConfig(const accmg::translator::LoopOffload& offload) {
  std::printf("offload %s (line %d): %lld..%s iterations over '%s'\n",
              offload.name.c_str(), offload.loop->loc.line, 0ll,
              offload.upper_inclusive ? "<=bound" : "<bound",
              offload.induction->name.c_str());
  for (const auto& config : offload.arrays) {
    const auto& param =
        offload.kernel
            .arrays[static_cast<std::size_t>(config.kernel_array_index)];
    std::printf(
        "  array %-12s %-4s %s%s%s  policy=%s%s%s%s\n", config.name.c_str(),
        accmg::ir::ValTypeName(config.elem), config.is_read ? "R" : "-",
        config.is_written ? "W" : "-", config.is_reduction_dest ? "+" : " ",
        config.has_localaccess && !config.is_reduction_dest ? "distribute"
                                                            : "replicate",
        param.dirty_tracked ? ",dirty-bits" : "",
        param.miss_checked ? ",miss-check" : "",
        config.writes_proven_local ? ",writes-local" : "");
  }
  for (const auto& scalar : offload.scalars) {
    std::printf("  scalar %s\n", scalar.decl->name.c_str());
  }
  for (const auto& red : offload.scalar_reds) {
    std::printf("  reduction %s %s\n", accmg::ir::RedOpName(red.op),
                red.decl->name.c_str());
  }
  for (const auto& red : offload.array_reds) {
    std::printf("  reduction-to-array %s %s\n",
                accmg::ir::RedOpName(red.op), red.decl->name.c_str());
  }
}

int Usage() {
  std::fprintf(stderr,
               "usage: accmgc [--emit=cuda|ir|config|all] "
               "[--trace-out=FILE] [--metrics] [--no-directive-check] "
               "[--opt-level={0,1,2}] <file.c | ->\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string emit = "cuda";
  std::string path;
  std::string trace_out;
  bool print_metrics = false;
  bool check_directives = true;
  int opt_level = 1;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--emit=", 0) == 0) {
      emit = arg.substr(7);
    } else if (arg.rfind("--trace-out=", 0) == 0) {
      trace_out = arg.substr(12);
    } else if (arg == "--metrics") {
      print_metrics = true;
    } else if (arg == "--no-directive-check") {
      check_directives = false;
    } else if (arg.rfind("--opt-level=", 0) == 0) {
      opt_level = std::atoi(arg.c_str() + 12);
      if (opt_level < 0 || opt_level > 2) return Usage();
    } else if (arg == "--help" || arg == "-h") {
      return Usage();
    } else if (path.empty()) {
      path = arg;
    } else {
      return Usage();
    }
  }
  if (path.empty() ||
      (emit != "cuda" && emit != "ir" && emit != "config" && emit != "all")) {
    return Usage();
  }
  if (!trace_out.empty()) {
    accmg::trace::Tracer::Global().set_enabled(true);
  }

  std::string source;
  if (path == "-") {
    std::ostringstream buffer;
    buffer << std::cin.rdbuf();
    source = buffer.str();
  } else {
    std::ifstream file(path);
    if (!file) {
      std::fprintf(stderr, "accmgc: cannot open '%s'\n", path.c_str());
      return 1;
    }
    std::ostringstream buffer;
    buffer << file.rdbuf();
    source = buffer.str();
  }

  auto& registry = accmg::metrics::Registry::Global();
  try {
    accmg::frontend::SourceBuffer buffer(path, source);
    std::unique_ptr<accmg::frontend::Program> ast;
    {
      accmg::trace::Span span("frontend:" + path,
                              accmg::trace::category::kCompile);
      ast = accmg::frontend::ParseAndAnalyze(buffer);
    }
    accmg::translator::CompiledProgram compiled;
    {
      accmg::trace::Span span("translate:" + path,
                              accmg::trace::category::kCompile);
      accmg::translator::CompileOptions options;
      options.check_directives = check_directives;
      options.opt_level = opt_level;
      compiled = accmg::translator::Compile(*ast, options);
    }

    accmg::trace::Span emit_span("emit:" + emit,
                                 accmg::trace::category::kCompile);
    for (const auto& function : compiled.functions) {
      registry.counter("accmgc.functions").Add();
      registry.counter("accmgc.offloads").Add(function.offloads.size());
      for (const auto& offload : function.offloads) {
        for (const auto& config : offload.arrays) {
          registry
              .counter(config.has_localaccess && !config.is_reduction_dest
                           ? "accmgc.arrays_distributed"
                           : "accmgc.arrays_replicated")
              .Add();
        }
      }
      if (emit == "config" || emit == "all") {
        for (const auto& offload : function.offloads) PrintConfig(offload);
      }
      if (emit == "ir" || emit == "all") {
        for (const auto& offload : function.offloads) {
          std::fputs(accmg::ir::Print(offload.kernel).c_str(), stdout);
        }
      }
      if (emit == "cuda" || emit == "all") {
        for (const auto& offload : function.offloads) {
          std::fputs(
              accmg::translator::GenerateCudaKernel(offload).c_str(),
              stdout);
          std::fputs("\n", stdout);
        }
        std::fputs(
            accmg::translator::GenerateHostSketch(function).c_str(), stdout);
      }
    }
  } catch (const accmg::Error& e) {
    std::fprintf(stderr, "accmgc: %s\n", e.what());
    return 1;
  }

  if (!trace_out.empty()) {
    if (!accmg::trace::Tracer::Global().WriteChromeTraceFile(trace_out)) {
      std::fprintf(stderr, "accmgc: cannot write trace to '%s'\n",
                   trace_out.c_str());
      return 1;
    }
    std::fprintf(stderr, "accmgc: wrote trace to %s\n", trace_out.c_str());
  }
  if (print_metrics) {
    std::ostringstream text;
    registry.WriteText(text);
    std::fputs(text.str().c_str(), stderr);
  }
  return 0;
}
