#!/usr/bin/env bash
# Grep-based documentation checker, run by the CI docs-check step.
#
# Over README.md and docs/*.md it verifies that
#   1. every referenced repository file path exists,
#   2. every `--flag` mentioned in backticks appears in a source file,
#   3. every metric name with a known instrument prefix (sim., comm.,
#      loader., executor., accmgc., validator., service., fault.,
#      recovery., mapper.) resolves to a real string literal in src/ or
#      tools/,
#   4. the README documentation index links every doc under docs/.
#
# Exits non-zero listing every stale reference, so renaming a flag or a
# metric without updating the docs fails CI.
set -u
cd "$(dirname "$0")/.."

docs=(README.md docs/*.md)
fail=0

note() { printf '%s\n' "$*"; }
err() {
  printf 'FAIL: %s\n' "$*" >&2
  fail=1
}

# --- 1. referenced file paths exist -----------------------------------
# Only tokens that look like repo-relative files with an extension are
# checked; bare binary names (build/... targets) are skipped.
paths=$(grep -ohE '(src|docs|tools|tests|bench|examples|results)/[A-Za-z0-9_./-]+\.(md|h|cpp|cc|c|json|yml|sh|txt)' "${docs[@]}" |
  sort -u)
for path in $paths; do
  [ -e "$path" ] || err "referenced path does not exist: $path"
done
note "checked $(printf '%s\n' "$paths" | wc -l) referenced paths"

# --- 2. documented flags exist in the sources -------------------------
flags=$(grep -ohE -- '`--[a-z][a-z-]*' "${docs[@]}" | tr -d '`' | sort -u)
for flag in $flags; do
  if ! grep -rqF -- "$flag" tools/ bench/ examples/ src/; then
    err "documented flag not found in any source: $flag"
  fi
done
note "checked $(printf '%s\n' "$flags" | wc -l) documented flags"

# --- 3. documented metric names exist as string literals --------------
metrics=$(grep -ohE '`(sim|comm|loader|executor|accmgc|opt|validator|service|fault|recovery|mapper)\.[a-z0-9_.]+`' "${docs[@]}" |
  tr -d '`' | sort -u)
for metric in $metrics; do
  if ! grep -rqF -- "\"$metric\"" src/ tools/; then
    err "documented metric has no matching string literal: $metric"
  fi
done
note "checked $(printf '%s\n' "$metrics" | wc -l) documented metric names"

# --- 4. README indexes every doc --------------------------------------
for doc in docs/*.md; do
  if ! grep -qF "$doc" README.md; then
    err "README.md does not link $doc"
  fi
done
note "checked README documentation index"

if [ "$fail" -ne 0 ]; then
  echo "docs check FAILED" >&2
  exit 1
fi
echo "docs check OK"
