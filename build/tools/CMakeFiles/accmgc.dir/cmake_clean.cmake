file(REMOVE_RECURSE
  "CMakeFiles/accmgc.dir/accmgc.cc.o"
  "CMakeFiles/accmgc.dir/accmgc.cc.o.d"
  "accmgc"
  "accmgc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/accmgc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
