# Empty dependencies file for accmgc.
# This may be replaced when dependencies are built.
