# Empty compiler generated dependencies file for accmg_bench_common.
# This may be replaced when dependencies are built.
