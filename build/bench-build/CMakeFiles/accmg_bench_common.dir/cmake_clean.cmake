file(REMOVE_RECURSE
  "CMakeFiles/accmg_bench_common.dir/bench_common.cc.o"
  "CMakeFiles/accmg_bench_common.dir/bench_common.cc.o.d"
  "libaccmg_bench_common.a"
  "libaccmg_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/accmg_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
