file(REMOVE_RECURSE
  "libaccmg_bench_common.a"
)
