file(REMOVE_RECURSE
  "../bench/bench_table1_platforms"
  "../bench/bench_table1_platforms.pdb"
  "CMakeFiles/bench_table1_platforms.dir/bench_table1_platforms.cc.o"
  "CMakeFiles/bench_table1_platforms.dir/bench_table1_platforms.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_platforms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
