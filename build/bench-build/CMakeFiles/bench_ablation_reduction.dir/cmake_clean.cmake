file(REMOVE_RECURSE
  "../bench/bench_ablation_reduction"
  "../bench/bench_ablation_reduction.pdb"
  "CMakeFiles/bench_ablation_reduction.dir/bench_ablation_reduction.cc.o"
  "CMakeFiles/bench_ablation_reduction.dir/bench_ablation_reduction.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_reduction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
