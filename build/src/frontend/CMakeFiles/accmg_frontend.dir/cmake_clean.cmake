file(REMOVE_RECURSE
  "CMakeFiles/accmg_frontend.dir/ast.cc.o"
  "CMakeFiles/accmg_frontend.dir/ast.cc.o.d"
  "CMakeFiles/accmg_frontend.dir/lexer.cc.o"
  "CMakeFiles/accmg_frontend.dir/lexer.cc.o.d"
  "CMakeFiles/accmg_frontend.dir/parser.cc.o"
  "CMakeFiles/accmg_frontend.dir/parser.cc.o.d"
  "CMakeFiles/accmg_frontend.dir/printer.cc.o"
  "CMakeFiles/accmg_frontend.dir/printer.cc.o.d"
  "CMakeFiles/accmg_frontend.dir/sema.cc.o"
  "CMakeFiles/accmg_frontend.dir/sema.cc.o.d"
  "CMakeFiles/accmg_frontend.dir/token.cc.o"
  "CMakeFiles/accmg_frontend.dir/token.cc.o.d"
  "CMakeFiles/accmg_frontend.dir/types.cc.o"
  "CMakeFiles/accmg_frontend.dir/types.cc.o.d"
  "libaccmg_frontend.a"
  "libaccmg_frontend.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/accmg_frontend.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
