file(REMOVE_RECURSE
  "libaccmg_frontend.a"
)
