# Empty dependencies file for accmg_frontend.
# This may be replaced when dependencies are built.
