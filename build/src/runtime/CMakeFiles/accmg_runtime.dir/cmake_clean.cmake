file(REMOVE_RECURSE
  "CMakeFiles/accmg_runtime.dir/comm_manager.cc.o"
  "CMakeFiles/accmg_runtime.dir/comm_manager.cc.o.d"
  "CMakeFiles/accmg_runtime.dir/cpu_executor.cc.o"
  "CMakeFiles/accmg_runtime.dir/cpu_executor.cc.o.d"
  "CMakeFiles/accmg_runtime.dir/data_loader.cc.o"
  "CMakeFiles/accmg_runtime.dir/data_loader.cc.o.d"
  "CMakeFiles/accmg_runtime.dir/executor.cc.o"
  "CMakeFiles/accmg_runtime.dir/executor.cc.o.d"
  "CMakeFiles/accmg_runtime.dir/host_interp.cc.o"
  "CMakeFiles/accmg_runtime.dir/host_interp.cc.o.d"
  "CMakeFiles/accmg_runtime.dir/managed_array.cc.o"
  "CMakeFiles/accmg_runtime.dir/managed_array.cc.o.d"
  "CMakeFiles/accmg_runtime.dir/program.cc.o"
  "CMakeFiles/accmg_runtime.dir/program.cc.o.d"
  "libaccmg_runtime.a"
  "libaccmg_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/accmg_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
