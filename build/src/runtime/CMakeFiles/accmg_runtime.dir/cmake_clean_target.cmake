file(REMOVE_RECURSE
  "libaccmg_runtime.a"
)
