# Empty compiler generated dependencies file for accmg_runtime.
# This may be replaced when dependencies are built.
