
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/runtime/comm_manager.cc" "src/runtime/CMakeFiles/accmg_runtime.dir/comm_manager.cc.o" "gcc" "src/runtime/CMakeFiles/accmg_runtime.dir/comm_manager.cc.o.d"
  "/root/repo/src/runtime/cpu_executor.cc" "src/runtime/CMakeFiles/accmg_runtime.dir/cpu_executor.cc.o" "gcc" "src/runtime/CMakeFiles/accmg_runtime.dir/cpu_executor.cc.o.d"
  "/root/repo/src/runtime/data_loader.cc" "src/runtime/CMakeFiles/accmg_runtime.dir/data_loader.cc.o" "gcc" "src/runtime/CMakeFiles/accmg_runtime.dir/data_loader.cc.o.d"
  "/root/repo/src/runtime/executor.cc" "src/runtime/CMakeFiles/accmg_runtime.dir/executor.cc.o" "gcc" "src/runtime/CMakeFiles/accmg_runtime.dir/executor.cc.o.d"
  "/root/repo/src/runtime/host_interp.cc" "src/runtime/CMakeFiles/accmg_runtime.dir/host_interp.cc.o" "gcc" "src/runtime/CMakeFiles/accmg_runtime.dir/host_interp.cc.o.d"
  "/root/repo/src/runtime/managed_array.cc" "src/runtime/CMakeFiles/accmg_runtime.dir/managed_array.cc.o" "gcc" "src/runtime/CMakeFiles/accmg_runtime.dir/managed_array.cc.o.d"
  "/root/repo/src/runtime/program.cc" "src/runtime/CMakeFiles/accmg_runtime.dir/program.cc.o" "gcc" "src/runtime/CMakeFiles/accmg_runtime.dir/program.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/accmg_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/accmg_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/frontend/CMakeFiles/accmg_frontend.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/accmg_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/translator/CMakeFiles/accmg_translator.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
