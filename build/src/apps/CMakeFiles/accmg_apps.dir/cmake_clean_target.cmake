file(REMOVE_RECURSE
  "libaccmg_apps.a"
)
