# Empty dependencies file for accmg_apps.
# This may be replaced when dependencies are built.
