file(REMOVE_RECURSE
  "CMakeFiles/accmg_apps.dir/bfs/bfs.cc.o"
  "CMakeFiles/accmg_apps.dir/bfs/bfs.cc.o.d"
  "CMakeFiles/accmg_apps.dir/kmeans/kmeans.cc.o"
  "CMakeFiles/accmg_apps.dir/kmeans/kmeans.cc.o.d"
  "CMakeFiles/accmg_apps.dir/md/md.cc.o"
  "CMakeFiles/accmg_apps.dir/md/md.cc.o.d"
  "CMakeFiles/accmg_apps.dir/spmv/spmv.cc.o"
  "CMakeFiles/accmg_apps.dir/spmv/spmv.cc.o.d"
  "libaccmg_apps.a"
  "libaccmg_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/accmg_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
