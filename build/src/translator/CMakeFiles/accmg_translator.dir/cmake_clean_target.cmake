file(REMOVE_RECURSE
  "libaccmg_translator.a"
)
