# Empty dependencies file for accmg_translator.
# This may be replaced when dependencies are built.
