file(REMOVE_RECURSE
  "CMakeFiles/accmg_translator.dir/compile.cc.o"
  "CMakeFiles/accmg_translator.dir/compile.cc.o.d"
  "CMakeFiles/accmg_translator.dir/cuda_codegen.cc.o"
  "CMakeFiles/accmg_translator.dir/cuda_codegen.cc.o.d"
  "CMakeFiles/accmg_translator.dir/eval.cc.o"
  "CMakeFiles/accmg_translator.dir/eval.cc.o.d"
  "CMakeFiles/accmg_translator.dir/lowering.cc.o"
  "CMakeFiles/accmg_translator.dir/lowering.cc.o.d"
  "libaccmg_translator.a"
  "libaccmg_translator.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/accmg_translator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
