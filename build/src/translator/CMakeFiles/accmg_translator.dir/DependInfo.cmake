
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/translator/compile.cc" "src/translator/CMakeFiles/accmg_translator.dir/compile.cc.o" "gcc" "src/translator/CMakeFiles/accmg_translator.dir/compile.cc.o.d"
  "/root/repo/src/translator/cuda_codegen.cc" "src/translator/CMakeFiles/accmg_translator.dir/cuda_codegen.cc.o" "gcc" "src/translator/CMakeFiles/accmg_translator.dir/cuda_codegen.cc.o.d"
  "/root/repo/src/translator/eval.cc" "src/translator/CMakeFiles/accmg_translator.dir/eval.cc.o" "gcc" "src/translator/CMakeFiles/accmg_translator.dir/eval.cc.o.d"
  "/root/repo/src/translator/lowering.cc" "src/translator/CMakeFiles/accmg_translator.dir/lowering.cc.o" "gcc" "src/translator/CMakeFiles/accmg_translator.dir/lowering.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/accmg_common.dir/DependInfo.cmake"
  "/root/repo/build/src/frontend/CMakeFiles/accmg_frontend.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/accmg_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/accmg_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
