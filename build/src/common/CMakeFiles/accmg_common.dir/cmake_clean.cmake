file(REMOVE_RECURSE
  "CMakeFiles/accmg_common.dir/error.cc.o"
  "CMakeFiles/accmg_common.dir/error.cc.o.d"
  "CMakeFiles/accmg_common.dir/log.cc.o"
  "CMakeFiles/accmg_common.dir/log.cc.o.d"
  "CMakeFiles/accmg_common.dir/string_util.cc.o"
  "CMakeFiles/accmg_common.dir/string_util.cc.o.d"
  "CMakeFiles/accmg_common.dir/thread_pool.cc.o"
  "CMakeFiles/accmg_common.dir/thread_pool.cc.o.d"
  "libaccmg_common.a"
  "libaccmg_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/accmg_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
