# Empty dependencies file for accmg_common.
# This may be replaced when dependencies are built.
