file(REMOVE_RECURSE
  "libaccmg_common.a"
)
