file(REMOVE_RECURSE
  "libaccmg_ir.a"
)
