file(REMOVE_RECURSE
  "CMakeFiles/accmg_ir.dir/builder.cc.o"
  "CMakeFiles/accmg_ir.dir/builder.cc.o.d"
  "CMakeFiles/accmg_ir.dir/exec.cc.o"
  "CMakeFiles/accmg_ir.dir/exec.cc.o.d"
  "CMakeFiles/accmg_ir.dir/ir.cc.o"
  "CMakeFiles/accmg_ir.dir/ir.cc.o.d"
  "libaccmg_ir.a"
  "libaccmg_ir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/accmg_ir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
