# Empty compiler generated dependencies file for accmg_ir.
# This may be replaced when dependencies are built.
