file(REMOVE_RECURSE
  "libaccmg_sim.a"
)
