# Empty dependencies file for accmg_sim.
# This may be replaced when dependencies are built.
