file(REMOVE_RECURSE
  "CMakeFiles/accmg_sim.dir/clock.cc.o"
  "CMakeFiles/accmg_sim.dir/clock.cc.o.d"
  "CMakeFiles/accmg_sim.dir/cost_model.cc.o"
  "CMakeFiles/accmg_sim.dir/cost_model.cc.o.d"
  "CMakeFiles/accmg_sim.dir/device.cc.o"
  "CMakeFiles/accmg_sim.dir/device.cc.o.d"
  "CMakeFiles/accmg_sim.dir/platform.cc.o"
  "CMakeFiles/accmg_sim.dir/platform.cc.o.d"
  "CMakeFiles/accmg_sim.dir/topology.cc.o"
  "CMakeFiles/accmg_sim.dir/topology.cc.o.d"
  "libaccmg_sim.a"
  "libaccmg_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/accmg_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
