file(REMOVE_RECURSE
  "CMakeFiles/translator_explorer.dir/translator_explorer.cpp.o"
  "CMakeFiles/translator_explorer.dir/translator_explorer.cpp.o.d"
  "translator_explorer"
  "translator_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/translator_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
