# Empty compiler generated dependencies file for translator_explorer.
# This may be replaced when dependencies are built.
