# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_pipeline[1]_include.cmake")
include("/root/repo/build/tests/test_apps[1]_include.cmake")
include("/root/repo/build/tests/test_common[1]_include.cmake")
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_frontend[1]_include.cmake")
include("/root/repo/build/tests/test_ir[1]_include.cmake")
include("/root/repo/build/tests/test_translator[1]_include.cmake")
include("/root/repo/build/tests/test_runtime[1]_include.cmake")
include("/root/repo/build/tests/test_property[1]_include.cmake")
include("/root/repo/build/tests/test_extensions[1]_include.cmake")
include("/root/repo/build/tests/test_language[1]_include.cmake")
include("/root/repo/build/tests/test_perf_model[1]_include.cmake")
include("/root/repo/build/tests/test_misc[1]_include.cmake")
include("/root/repo/build/tests/test_spmv[1]_include.cmake")
include("/root/repo/build/tests/test_coverage[1]_include.cmake")
include("/root/repo/build/tests/test_printer[1]_include.cmake")
