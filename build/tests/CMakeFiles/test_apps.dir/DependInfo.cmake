
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/apps_test.cc" "tests/CMakeFiles/test_apps.dir/apps_test.cc.o" "gcc" "tests/CMakeFiles/test_apps.dir/apps_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/runtime/CMakeFiles/accmg_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/translator/CMakeFiles/accmg_translator.dir/DependInfo.cmake"
  "/root/repo/build/src/frontend/CMakeFiles/accmg_frontend.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/accmg_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/accmg_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/accmg_common.dir/DependInfo.cmake"
  "/root/repo/build/src/apps/CMakeFiles/accmg_apps.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
