file(REMOVE_RECURSE
  "CMakeFiles/test_language.dir/language_test.cc.o"
  "CMakeFiles/test_language.dir/language_test.cc.o.d"
  "test_language"
  "test_language.pdb"
  "test_language[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_language.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
