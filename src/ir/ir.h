// Kernel IR: the translator's output format, executed by the virtual GPU.
//
// A kernel is a small register machine program run once per logical GPU
// thread (= one iteration of the annotated parallel loop, as in the paper's
// translator). Registers are untyped 64-bit slots; opcodes carry the type.
// Float arithmetic is performed in double precision with explicit kRoundF32
// instructions wherever the source expression has float type, reproducing
// single-precision semantics bit-for-bit.
//
// Multi-GPU-specific instructions mirror the paper's instrumentation:
//  * kDirtyMark  — turn on the two-level dirty bits for a write to a
//    replicated array (Section IV-D1),
//  * stores to distributed arrays perform the write-miss check and spill
//    (index, value) records to the system buffer when the target element is
//    not resident (Section IV-D2),
//  * kRedScalar / kRedArray — privatized reduction accumulation, combined
//    hierarchically by the engine and the runtime (Section IV-B4).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace accmg::ir {

enum class ValType : std::uint8_t { kI32, kI64, kF32, kF64 };

std::size_t ValTypeSize(ValType t);
const char* ValTypeName(ValType t);
bool IsFloat(ValType t);

enum class RedOp : std::uint8_t { kAdd, kMul, kMin, kMax };
const char* RedOpName(RedOp op);

enum class Opcode : std::uint8_t {
  // Immediates / moves.
  kConstI,   // dst = imm.i
  kConstF,   // dst = imm.f
  kMov,      // dst = a

  // Integer arithmetic (i64 semantics in registers).
  kAddI, kSubI, kMulI, kDivI, kModI, kNegI,
  kAndI, kOrI, kXorI, kShlI, kShrI, kNotI,
  kMinI, kMaxI, kAbsI,

  // Float arithmetic (f64 in registers).
  kAddF, kSubF, kMulF, kDivF, kNegF,
  kSqrtF, kFabsF, kExpF, kLogF, kPowF, kFminF, kFmaxF, kFloorF, kCeilF,

  // Comparisons produce 0/1 in dst.
  kCmpLtI, kCmpLeI, kCmpEqI, kCmpNeI,
  kCmpLtF, kCmpLeF, kCmpEqF, kCmpNeF,

  // Conversions.
  kTruncI32,  // dst = sign-extended low 32 bits of a
  kRoundF32,  // dst = (double)(float)a
  kI2F,       // dst = (double)a_int
  kF2I,       // dst = (int64)trunc(a_float)

  // Memory. `arr` names the kernel array parameter; index register holds the
  // GLOBAL element index — the engine applies the per-GPU layout offset, the
  // residency check and (for distributed arrays) the write-miss spill.
  kLoad,   // dst = arrays[arr][a]
  kStore,  // arrays[arr][a] = b

  // Multi-GPU instrumentation.
  kDirtyMark,  // mark element a of replicated array `arr` dirty

  // Reductions (privatized; combined after the kernel).
  kRedScalar,  // accumulators[imm.i] op= a   (slot's op/type fixed at build)
  kRedArray,   // array-reduction slot imm.i: partial[a - lower] op= b

  // Control flow (instruction-index targets).
  kBr,     // jump to imm.i
  kBrIf,   // if a != 0 jump to imm.i else fall through
  kBrIfNot,// if a == 0 jump to imm.i else fall through
  kRet,    // end of thread
};

const char* OpcodeName(Opcode op);

struct Instr {
  Opcode op{};
  std::int32_t dst = -1;
  std::int32_t a = -1;
  std::int32_t b = -1;
  std::int32_t arr = -1;  ///< array-parameter index for kLoad/kStore/kDirtyMark
  union {
    std::int64_t i;
    double f;
  } imm{.i = 0};
};

/// An array parameter of the kernel.
struct ArrayParam {
  std::string name;
  ValType elem{};
  bool is_read = false;
  bool is_written = false;
  /// Replicated array written by the kernel: stores are followed by
  /// kDirtyMark instrumentation and the engine tracks dirty chunks.
  bool dirty_tracked = false;
  /// Distributed array with possibly-remote writes: stores perform the
  /// write-miss check (Section IV-D2). Cleared by the translator when the
  /// localaccess range proves every write local.
  bool miss_checked = false;
};

/// A scalar parameter (loop-invariant value passed from the host).
struct ScalarParam {
  std::string name;
  ValType type{};
};

/// A privatized scalar reduction output.
struct ScalarReduction {
  std::string name;
  RedOp op{};
  ValType type{};
};

/// A privatized reduction-to-array output (the paper's reductiontoarray).
struct ArrayReduction {
  std::string name;   ///< destination array parameter name
  int array_index = -1;  ///< into KernelIR::arrays
  RedOp op{};
  ValType type{};
  /// Destination section [lower, lower+length) — register-independent values
  /// supplied by the host at launch time (scalar param indices), or constants.
  std::int64_t lower = 0;   ///< resolved at launch; stored here when constant
  std::int64_t length = 0;  ///< 0 = resolved at launch from array extent
};

struct KernelIR {
  std::string name;
  std::vector<ArrayParam> arrays;
  std::vector<ScalarParam> scalars;
  std::vector<ScalarReduction> scalar_reductions;
  std::vector<ArrayReduction> array_reductions;
  int num_regs = 0;
  /// Register pre-loaded with the logical thread id (= loop iteration).
  int thread_id_reg = 0;
  std::vector<Instr> code;

  int FindArray(const std::string& name) const;
  int FindScalar(const std::string& name) const;
};

/// Renders the kernel as readable pseudo-assembly (golden-tested).
std::string Print(const KernelIR& kernel);

/// Structural validation: register/arr indices in range, branch targets valid,
/// code ends with kRet on every path. Throws InternalError on violations.
void Verify(const KernelIR& kernel);

}  // namespace accmg::ir
