#include "ir/ir.h"

#include <sstream>

#include "common/error.h"

namespace accmg::ir {

std::size_t ValTypeSize(ValType t) {
  switch (t) {
    case ValType::kI32: return 4;
    case ValType::kI64: return 8;
    case ValType::kF32: return 4;
    case ValType::kF64: return 8;
  }
  return 0;
}

const char* ValTypeName(ValType t) {
  switch (t) {
    case ValType::kI32: return "i32";
    case ValType::kI64: return "i64";
    case ValType::kF32: return "f32";
    case ValType::kF64: return "f64";
  }
  return "?";
}

bool IsFloat(ValType t) { return t == ValType::kF32 || t == ValType::kF64; }

const char* RedOpName(RedOp op) {
  switch (op) {
    case RedOp::kAdd: return "add";
    case RedOp::kMul: return "mul";
    case RedOp::kMin: return "min";
    case RedOp::kMax: return "max";
  }
  return "?";
}

const char* OpcodeName(Opcode op) {
  switch (op) {
    case Opcode::kConstI: return "const.i";
    case Opcode::kConstF: return "const.f";
    case Opcode::kMov: return "mov";
    case Opcode::kAddI: return "add.i";
    case Opcode::kSubI: return "sub.i";
    case Opcode::kMulI: return "mul.i";
    case Opcode::kDivI: return "div.i";
    case Opcode::kModI: return "mod.i";
    case Opcode::kNegI: return "neg.i";
    case Opcode::kAndI: return "and.i";
    case Opcode::kOrI: return "or.i";
    case Opcode::kXorI: return "xor.i";
    case Opcode::kShlI: return "shl.i";
    case Opcode::kShrI: return "shr.i";
    case Opcode::kNotI: return "not.i";
    case Opcode::kMinI: return "min.i";
    case Opcode::kMaxI: return "max.i";
    case Opcode::kAbsI: return "abs.i";
    case Opcode::kAddF: return "add.f";
    case Opcode::kSubF: return "sub.f";
    case Opcode::kMulF: return "mul.f";
    case Opcode::kDivF: return "div.f";
    case Opcode::kNegF: return "neg.f";
    case Opcode::kSqrtF: return "sqrt.f";
    case Opcode::kFabsF: return "fabs.f";
    case Opcode::kExpF: return "exp.f";
    case Opcode::kLogF: return "log.f";
    case Opcode::kPowF: return "pow.f";
    case Opcode::kFminF: return "fmin.f";
    case Opcode::kFmaxF: return "fmax.f";
    case Opcode::kFloorF: return "floor.f";
    case Opcode::kCeilF: return "ceil.f";
    case Opcode::kCmpLtI: return "cmplt.i";
    case Opcode::kCmpLeI: return "cmple.i";
    case Opcode::kCmpEqI: return "cmpeq.i";
    case Opcode::kCmpNeI: return "cmpne.i";
    case Opcode::kCmpLtF: return "cmplt.f";
    case Opcode::kCmpLeF: return "cmple.f";
    case Opcode::kCmpEqF: return "cmpeq.f";
    case Opcode::kCmpNeF: return "cmpne.f";
    case Opcode::kTruncI32: return "trunc.i32";
    case Opcode::kRoundF32: return "round.f32";
    case Opcode::kI2F: return "i2f";
    case Opcode::kF2I: return "f2i";
    case Opcode::kLoad: return "load";
    case Opcode::kStore: return "store";
    case Opcode::kDirtyMark: return "dirty.mark";
    case Opcode::kRedScalar: return "red.scalar";
    case Opcode::kRedArray: return "red.array";
    case Opcode::kBr: return "br";
    case Opcode::kBrIf: return "br.if";
    case Opcode::kBrIfNot: return "br.ifnot";
    case Opcode::kRet: return "ret";
  }
  return "?";
}

int KernelIR::FindArray(const std::string& name) const {
  for (std::size_t i = 0; i < arrays.size(); ++i) {
    if (arrays[i].name == name) return static_cast<int>(i);
  }
  return -1;
}

int KernelIR::FindScalar(const std::string& name) const {
  for (std::size_t i = 0; i < scalars.size(); ++i) {
    if (scalars[i].name == name) return static_cast<int>(i);
  }
  return -1;
}

namespace {

bool HasImmTarget(Opcode op) {
  return op == Opcode::kBr || op == Opcode::kBrIf || op == Opcode::kBrIfNot;
}

bool HasFloatImm(Opcode op) { return op == Opcode::kConstF; }

}  // namespace

std::string Print(const KernelIR& kernel) {
  std::ostringstream os;
  os << "kernel " << kernel.name << "(";
  for (std::size_t i = 0; i < kernel.arrays.size(); ++i) {
    const auto& a = kernel.arrays[i];
    if (i != 0) os << ", ";
    os << ValTypeName(a.elem) << "* " << a.name;
    if (a.dirty_tracked) os << " /*dirty*/";
    if (a.miss_checked) os << " /*miss-check*/";
  }
  for (const auto& s : kernel.scalars) {
    os << ", " << ValTypeName(s.type) << " " << s.name;
  }
  os << ") regs=" << kernel.num_regs << " tid=r" << kernel.thread_id_reg
     << "\n";
  for (const auto& red : kernel.scalar_reductions) {
    os << "  reduce " << RedOpName(red.op) << " " << ValTypeName(red.type)
       << " " << red.name << "\n";
  }
  for (const auto& red : kernel.array_reductions) {
    os << "  reduce-to-array " << RedOpName(red.op) << " "
       << ValTypeName(red.type) << " " << red.name << "\n";
  }
  for (std::size_t pc = 0; pc < kernel.code.size(); ++pc) {
    const Instr& in = kernel.code[pc];
    os << "  " << pc << ": " << OpcodeName(in.op);
    if (in.dst >= 0) os << " r" << in.dst;
    if (in.arr >= 0) os << " @" << kernel.arrays[static_cast<std::size_t>(in.arr)].name;
    if (in.a >= 0) os << " r" << in.a;
    if (in.b >= 0) os << " r" << in.b;
    if (HasImmTarget(in.op)) {
      os << " -> " << in.imm.i;
    } else if (HasFloatImm(in.op)) {
      os << " #" << in.imm.f;
    } else if (in.op == Opcode::kConstI || in.op == Opcode::kRedScalar ||
               in.op == Opcode::kRedArray) {
      os << " #" << in.imm.i;
    }
    os << "\n";
  }
  return os.str();
}

void Verify(const KernelIR& kernel) {
  const auto n_code = static_cast<std::int64_t>(kernel.code.size());
  ACCMG_CHECK(n_code > 0, "kernel '" + kernel.name + "' has no code");
  ACCMG_CHECK(kernel.num_regs > 0, "kernel has no registers");
  ACCMG_CHECK(kernel.thread_id_reg >= 0 &&
                  kernel.thread_id_reg < kernel.num_regs,
              "thread id register out of range");
  auto check_reg = [&](std::int32_t r, const char* what) {
    ACCMG_CHECK(r >= 0 && r < kernel.num_regs,
                std::string("register out of range for ") + what);
  };
  for (std::size_t pc = 0; pc < kernel.code.size(); ++pc) {
    const Instr& in = kernel.code[pc];
    switch (in.op) {
      case Opcode::kConstI:
      case Opcode::kConstF:
        check_reg(in.dst, "const dst");
        break;
      case Opcode::kMov:
      case Opcode::kNegI:
      case Opcode::kNotI:
      case Opcode::kAbsI:
      case Opcode::kNegF:
      case Opcode::kSqrtF:
      case Opcode::kFabsF:
      case Opcode::kExpF:
      case Opcode::kLogF:
      case Opcode::kFloorF:
      case Opcode::kCeilF:
      case Opcode::kTruncI32:
      case Opcode::kRoundF32:
      case Opcode::kI2F:
      case Opcode::kF2I:
        check_reg(in.dst, "unary dst");
        check_reg(in.a, "unary src");
        break;
      case Opcode::kAddI: case Opcode::kSubI: case Opcode::kMulI:
      case Opcode::kDivI: case Opcode::kModI: case Opcode::kAndI:
      case Opcode::kOrI: case Opcode::kXorI: case Opcode::kShlI:
      case Opcode::kShrI: case Opcode::kMinI: case Opcode::kMaxI:
      case Opcode::kAddF: case Opcode::kSubF: case Opcode::kMulF:
      case Opcode::kDivF: case Opcode::kPowF: case Opcode::kFminF:
      case Opcode::kFmaxF:
      case Opcode::kCmpLtI: case Opcode::kCmpLeI: case Opcode::kCmpEqI:
      case Opcode::kCmpNeI: case Opcode::kCmpLtF: case Opcode::kCmpLeF:
      case Opcode::kCmpEqF: case Opcode::kCmpNeF:
        check_reg(in.dst, "binary dst");
        check_reg(in.a, "binary lhs");
        check_reg(in.b, "binary rhs");
        break;
      case Opcode::kLoad:
        check_reg(in.dst, "load dst");
        check_reg(in.a, "load index");
        ACCMG_CHECK(in.arr >= 0 &&
                        in.arr < static_cast<std::int32_t>(kernel.arrays.size()),
                    "load array index out of range");
        break;
      case Opcode::kStore:
        check_reg(in.a, "store index");
        check_reg(in.b, "store value");
        ACCMG_CHECK(in.arr >= 0 &&
                        in.arr < static_cast<std::int32_t>(kernel.arrays.size()),
                    "store array index out of range");
        break;
      case Opcode::kDirtyMark:
        check_reg(in.a, "dirty index");
        ACCMG_CHECK(in.arr >= 0 &&
                        in.arr < static_cast<std::int32_t>(kernel.arrays.size()),
                    "dirty array index out of range");
        break;
      case Opcode::kRedScalar:
        check_reg(in.a, "reduction value");
        ACCMG_CHECK(in.imm.i >= 0 &&
                        in.imm.i < static_cast<std::int64_t>(
                                       kernel.scalar_reductions.size()),
                    "scalar reduction slot out of range");
        break;
      case Opcode::kRedArray:
        check_reg(in.a, "array reduction index");
        check_reg(in.b, "array reduction value");
        ACCMG_CHECK(in.imm.i >= 0 &&
                        in.imm.i < static_cast<std::int64_t>(
                                       kernel.array_reductions.size()),
                    "array reduction slot out of range");
        break;
      case Opcode::kBr:
      case Opcode::kBrIf:
      case Opcode::kBrIfNot:
        if (in.op != Opcode::kBr) check_reg(in.a, "branch condition");
        ACCMG_CHECK(in.imm.i >= 0 && in.imm.i < n_code,
                    "branch target out of range");
        break;
      case Opcode::kRet:
        break;
    }
  }
  // Last instruction must terminate (fallthrough off the end is a bug).
  const Opcode last = kernel.code.back().op;
  ACCMG_CHECK(last == Opcode::kRet || last == Opcode::kBr,
              "kernel code must end in ret or br");
  for (const auto& red : kernel.array_reductions) {
    ACCMG_CHECK(red.array_index >= 0 &&
                    red.array_index <
                        static_cast<int>(kernel.arrays.size()),
                "array reduction destination out of range");
  }
}

}  // namespace accmg::ir
