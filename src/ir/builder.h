// Convenience builder for KernelIR. Establishes the launch contract the
// interpreter relies on: register 0 holds the thread (iteration) id and
// registers 1..N hold the scalar parameters, in declaration order.
#pragma once

#include <string>

#include "ir/ir.h"

namespace accmg::ir {

class KernelBuilder {
 public:
  explicit KernelBuilder(std::string name);

  // --- signature ---
  int AddArray(std::string name, ValType elem);
  /// Returns the register the scalar parameter occupies at launch.
  int AddScalar(std::string name, ValType type);
  int AddScalarReduction(std::string name, RedOp op, ValType type);
  int AddArrayReduction(int array_index, RedOp op, ValType type);

  int thread_id_reg() const { return 0; }
  int NewReg();

  // --- instruction emission (each returns the destination register where
  //     applicable) ---
  int ConstI(std::int64_t value);
  int ConstF(double value);
  int Unary(Opcode op, int a);
  int Binary(Opcode op, int a, int b);
  /// Copies `src` into the existing register `dst` (variable home slots).
  void MovTo(int dst, int src);
  int Load(int array_index, int index_reg);
  void Store(int array_index, int index_reg, int value_reg);
  void DirtyMark(int array_index, int index_reg);
  void RedScalar(int slot, int value_reg);
  void RedArray(int slot, int index_reg, int value_reg);
  void Ret();

  /// Emits a branch with an unresolved target; returns its pc for PatchTarget.
  std::size_t Br();
  std::size_t BrIf(int cond_reg);
  std::size_t BrIfNot(int cond_reg);
  void PatchTarget(std::size_t branch_pc, std::size_t target);
  std::size_t Here() const { return kernel_.code.size(); }

  /// Marks flags on an array parameter (translator instrumentation decisions).
  ArrayParam& array(int index);

  /// Finalizes: appends kRet if the last instruction doesn't terminate,
  /// verifies, and returns the kernel.
  KernelIR Build();

 private:
  Instr& Emit(Opcode op);

  KernelIR kernel_;
  int next_reg_ = 1;  // reg 0 = thread id
};

}  // namespace accmg::ir
