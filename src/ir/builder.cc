#include "ir/builder.h"

#include "common/error.h"

namespace accmg::ir {

KernelBuilder::KernelBuilder(std::string name) {
  kernel_.name = std::move(name);
  kernel_.thread_id_reg = 0;
}

int KernelBuilder::AddArray(std::string name, ValType elem) {
  ACCMG_REQUIRE(kernel_.scalars.empty() && kernel_.code.empty(),
                "arrays must be added before scalars and code");
  ArrayParam param;
  param.name = std::move(name);
  param.elem = elem;
  kernel_.arrays.push_back(std::move(param));
  return static_cast<int>(kernel_.arrays.size()) - 1;
}

int KernelBuilder::AddScalar(std::string name, ValType type) {
  ACCMG_REQUIRE(kernel_.code.empty(), "scalars must be added before code");
  kernel_.scalars.push_back(ScalarParam{std::move(name), type});
  return next_reg_++;  // the launch contract: scalar s -> register 1+s
}

int KernelBuilder::AddScalarReduction(std::string name, RedOp op,
                                      ValType type) {
  kernel_.scalar_reductions.push_back(
      ScalarReduction{std::move(name), op, type});
  return static_cast<int>(kernel_.scalar_reductions.size()) - 1;
}

int KernelBuilder::AddArrayReduction(int array_index, RedOp op, ValType type) {
  ACCMG_REQUIRE(array_index >= 0 &&
                    array_index < static_cast<int>(kernel_.arrays.size()),
                "bad array index for array reduction");
  ArrayReduction red;
  red.name = kernel_.arrays[static_cast<std::size_t>(array_index)].name;
  red.array_index = array_index;
  red.op = op;
  red.type = type;
  kernel_.array_reductions.push_back(std::move(red));
  return static_cast<int>(kernel_.array_reductions.size()) - 1;
}

int KernelBuilder::NewReg() { return next_reg_++; }

Instr& KernelBuilder::Emit(Opcode op) {
  kernel_.code.push_back(Instr{});
  kernel_.code.back().op = op;
  return kernel_.code.back();
}

int KernelBuilder::ConstI(std::int64_t value) {
  const int dst = NewReg();
  Instr& in = Emit(Opcode::kConstI);
  in.dst = dst;
  in.imm.i = value;
  return dst;
}

int KernelBuilder::ConstF(double value) {
  const int dst = NewReg();
  Instr& in = Emit(Opcode::kConstF);
  in.dst = dst;
  in.imm.f = value;
  return dst;
}

int KernelBuilder::Unary(Opcode op, int a) {
  const int dst = NewReg();
  Instr& in = Emit(op);
  in.dst = dst;
  in.a = a;
  return dst;
}

int KernelBuilder::Binary(Opcode op, int a, int b) {
  const int dst = NewReg();
  Instr& in = Emit(op);
  in.dst = dst;
  in.a = a;
  in.b = b;
  return dst;
}

void KernelBuilder::MovTo(int dst, int src) {
  if (dst == src) return;
  Instr& in = Emit(Opcode::kMov);
  in.dst = dst;
  in.a = src;
}

int KernelBuilder::Load(int array_index, int index_reg) {
  const int dst = NewReg();
  Instr& in = Emit(Opcode::kLoad);
  in.dst = dst;
  in.a = index_reg;
  in.arr = array_index;
  kernel_.arrays[static_cast<std::size_t>(array_index)].is_read = true;
  return dst;
}

void KernelBuilder::Store(int array_index, int index_reg, int value_reg) {
  Instr& in = Emit(Opcode::kStore);
  in.a = index_reg;
  in.b = value_reg;
  in.arr = array_index;
  kernel_.arrays[static_cast<std::size_t>(array_index)].is_written = true;
}

void KernelBuilder::DirtyMark(int array_index, int index_reg) {
  Instr& in = Emit(Opcode::kDirtyMark);
  in.a = index_reg;
  in.arr = array_index;
}

void KernelBuilder::RedScalar(int slot, int value_reg) {
  Instr& in = Emit(Opcode::kRedScalar);
  in.a = value_reg;
  in.imm.i = slot;
}

void KernelBuilder::RedArray(int slot, int index_reg, int value_reg) {
  Instr& in = Emit(Opcode::kRedArray);
  in.a = index_reg;
  in.b = value_reg;
  in.imm.i = slot;
}

void KernelBuilder::Ret() { Emit(Opcode::kRet); }

std::size_t KernelBuilder::Br() {
  Emit(Opcode::kBr).imm.i = -1;
  return kernel_.code.size() - 1;
}

std::size_t KernelBuilder::BrIf(int cond_reg) {
  Instr& in = Emit(Opcode::kBrIf);
  in.a = cond_reg;
  in.imm.i = -1;
  return kernel_.code.size() - 1;
}

std::size_t KernelBuilder::BrIfNot(int cond_reg) {
  Instr& in = Emit(Opcode::kBrIfNot);
  in.a = cond_reg;
  in.imm.i = -1;
  return kernel_.code.size() - 1;
}

void KernelBuilder::PatchTarget(std::size_t branch_pc, std::size_t target) {
  ACCMG_REQUIRE(branch_pc < kernel_.code.size(), "patch of unknown branch");
  Instr& in = kernel_.code[branch_pc];
  ACCMG_REQUIRE(in.op == Opcode::kBr || in.op == Opcode::kBrIf ||
                    in.op == Opcode::kBrIfNot,
                "patch target on a non-branch");
  in.imm.i = static_cast<std::int64_t>(target);
}

ArrayParam& KernelBuilder::array(int index) {
  ACCMG_REQUIRE(index >= 0 && index < static_cast<int>(kernel_.arrays.size()),
                "bad array index");
  return kernel_.arrays[static_cast<std::size_t>(index)];
}

KernelIR KernelBuilder::Build() {
  // Always terminate with ret: forward branches routinely target the
  // one-past-the-end position (loop exits, if-joins at the end of the body).
  Ret();
  kernel_.num_regs = next_reg_;
  Verify(kernel_);
  return std::move(kernel_);
}

}  // namespace accmg::ir
