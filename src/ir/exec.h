// Execution of Kernel IR on the virtual GPU.
//
// KernelExec adapts a KernelIR to sim::KernelBody. The runtime binds each
// array parameter to the resident segment on the launching device; the
// interpreter enforces residency (a read or unchecked write outside the
// bound segment throws DeviceError — on real hardware that is a corrupted
// result, here it is a loud failure), performs the paper's write-miss
// spilling for distributed arrays, marks two-level dirty bits for replicated
// arrays, and privatizes reductions per worker chunk.
#pragma once

#include <cstdint>
#include <mutex>
#include <vector>

#include "ir/ir.h"
#include "sim/kernel.h"

namespace accmg::ir {

/// One write that missed the local segment: destination global index plus the
/// raw element bits (Section IV-D2's (address, data) record).
struct WriteMissRecord {
  std::int64_t index = 0;
  std::uint64_t raw = 0;
};

/// Per-device system buffer collecting write misses during a kernel.
struct MissBuffer {
  std::mutex mutex;
  std::vector<WriteMissRecord> records;

  void Append(const std::vector<WriteMissRecord>& batch) {
    if (batch.empty()) return;
    std::lock_guard<std::mutex> lock(mutex);
    records.insert(records.end(), batch.begin(), batch.end());
  }
};

/// Two-level dirty bit state for one replicated array (Section IV-D1).
/// Level 1 has one byte per element; level 2 one byte per chunk.
struct DirtyBits {
  std::uint8_t* level1 = nullptr;
  std::uint8_t* level2 = nullptr;
  std::int64_t chunk_elems = 0;  ///< elements per level-2 chunk
};

/// How one kernel array parameter is bound on the launching device.
///
/// [lo, hi) is the loaded (readable) range, including halo elements fetched
/// from neighbouring owners. [write_lo, write_hi) is the owned range this
/// device may write directly; writes outside it are spilled to the miss
/// buffer (distributed arrays) or faulted (a translator/runtime bug). For
/// replicated arrays both ranges cover the whole array.
struct ArrayBinding {
  std::byte* data = nullptr;      ///< base of the RESIDENT segment
  std::int64_t lo = 0;            ///< first resident global index
  std::int64_t hi = 0;            ///< one past last resident global index
  std::int64_t write_lo = 0;      ///< first owned (directly writable) index
  std::int64_t write_hi = 0;      ///< one past last owned index
  std::int64_t logical_size = 0;  ///< full array extent (diagnostics)
  DirtyBits dirty;                ///< level1 == nullptr when untracked
  MissBuffer* miss = nullptr;     ///< non-null for miss-checked arrays
};

/// Raw 64-bit register image of a scalar value of the given type.
std::uint64_t EncodeScalar(ValType type, double fval, std::int64_t ival);

class KernelExec final : public sim::KernelBody {
 public:
  explicit KernelExec(const KernelIR& kernel);

  /// --- launch configuration (set before Platform::LaunchKernel) ---
  std::vector<ArrayBinding> bindings;       ///< parallel to kernel.arrays
  std::vector<std::uint64_t> scalar_values; ///< parallel to kernel.scalars
  /// Added to the local thread id to form the loop iteration index
  /// (task-mapping offset of the launching GPU).
  std::int64_t iteration_offset = 0;
  /// Resolved reduction-to-array sections, parallel to
  /// kernel.array_reductions.
  std::vector<std::int64_t> array_red_lower;
  std::vector<std::int64_t> array_red_length;

  /// --- outputs (valid after the launch returns) ---
  /// Raw combined value per scalar reduction (initialized to the identity).
  const std::vector<std::uint64_t>& scalar_red_results() const {
    return scalar_red_results_;
  }
  /// Dense partial per array reduction (raw element bits, identity-filled).
  const std::vector<std::vector<std::uint64_t>>& array_red_partials() const {
    return array_red_partials_;
  }

  /// Resets outputs to identities; must be called before every launch.
  void ResetOutputs();

  void Execute(std::int64_t tid_begin, std::int64_t tid_end,
               sim::KernelStats& stats) const override;

 private:
  const KernelIR& kernel_;

  mutable std::mutex merge_mutex_;
  mutable std::vector<std::uint64_t> scalar_red_results_;
  mutable std::vector<std::vector<std::uint64_t>> array_red_partials_;
};

/// Identity element of a reduction, as raw bits of `type`.
std::uint64_t ReductionIdentity(RedOp op, ValType type);

/// Combines two raw values of `type` with `op`, returning raw bits.
std::uint64_t CombineRaw(RedOp op, ValType type, std::uint64_t a,
                         std::uint64_t b);

/// In-place span combine: acc[j] = CombineRaw(op, type, acc[j], src[j]) for
/// j in [0, n). Bit-identical to the per-element calls, but the op/type
/// dispatch happens once so the inner loop is tight enough to vectorize —
/// this is the hot loop of multi-GPU array-reduction merges.
void CombineRawSpan(RedOp op, ValType type, std::uint64_t* acc,
                    const std::uint64_t* src, std::size_t n);

}  // namespace accmg::ir
