#include "ir/exec.h"

#include <atomic>
#include <bit>
#include <cmath>
#include <cstring>
#include <limits>

#include "common/error.h"

namespace accmg::ir {

namespace {

inline double AsF(std::uint64_t raw) { return std::bit_cast<double>(raw); }
inline std::uint64_t FromF(double v) { return std::bit_cast<std::uint64_t>(v); }
inline std::int64_t AsI(std::uint64_t raw) {
  return static_cast<std::int64_t>(raw);
}
inline std::uint64_t FromI(std::int64_t v) {
  return static_cast<std::uint64_t>(v);
}

/// Reads element `local` of a segment as raw register bits. Loads are
/// relaxed-atomic: GPU kernels may legally race on the same element (benign
/// races as in SHOC's BFS), which plain loads would make UB on the host.
inline std::uint64_t LoadElement(const std::byte* base, std::int64_t local,
                                 ValType elem) {
  switch (elem) {
    case ValType::kI32: {
      auto* p = reinterpret_cast<const std::uint32_t*>(base + local * 4);
      const std::uint32_t bits = std::atomic_ref<const std::uint32_t>(*p).load(
          std::memory_order_relaxed);
      return FromI(static_cast<std::int32_t>(bits));
    }
    case ValType::kI64: {
      auto* p = reinterpret_cast<const std::uint64_t*>(base + local * 8);
      const std::uint64_t bits = std::atomic_ref<const std::uint64_t>(*p).load(
          std::memory_order_relaxed);
      return FromI(static_cast<std::int64_t>(bits));
    }
    case ValType::kF32: {
      auto* p = reinterpret_cast<const std::uint32_t*>(base + local * 4);
      const std::uint32_t bits = std::atomic_ref<const std::uint32_t>(*p).load(
          std::memory_order_relaxed);
      float v;
      std::memcpy(&v, &bits, 4);
      return FromF(static_cast<double>(v));
    }
    case ValType::kF64: {
      auto* p = reinterpret_cast<const std::uint64_t*>(base + local * 8);
      const std::uint64_t bits = std::atomic_ref<const std::uint64_t>(*p).load(
          std::memory_order_relaxed);
      return FromF(std::bit_cast<double>(bits));
    }
  }
  return 0;
}

/// Converts register bits to element bits (the value actually stored).
inline std::uint64_t RegToElementRaw(std::uint64_t reg, ValType elem) {
  switch (elem) {
    case ValType::kI32: {
      const auto v = static_cast<std::int32_t>(AsI(reg));
      return FromI(v);
    }
    case ValType::kI64:
      return reg;
    case ValType::kF32: {
      const auto v = static_cast<float>(AsF(reg));
      std::uint32_t bits;
      std::memcpy(&bits, &v, 4);
      return bits;
    }
    case ValType::kF64:
      return reg;
  }
  return 0;
}

/// Writes raw element bits (as produced by RegToElementRaw) to memory.
/// Relaxed-atomic for the same reason LoadElement is.
inline void StoreElementRaw(std::byte* base, std::int64_t local, ValType elem,
                            std::uint64_t raw) {
  switch (elem) {
    case ValType::kI32:
    case ValType::kF32: {
      auto* p = reinterpret_cast<std::uint32_t*>(base + local * 4);
      std::atomic_ref<std::uint32_t>(*p).store(
          static_cast<std::uint32_t>(raw), std::memory_order_relaxed);
      break;
    }
    case ValType::kI64:
    case ValType::kF64: {
      auto* p = reinterpret_cast<std::uint64_t*>(base + local * 8);
      std::atomic_ref<std::uint64_t>(*p).store(raw,
                                               std::memory_order_relaxed);
      break;
    }
  }
}

/// Converts raw *element* bits back to register bits.
inline std::uint64_t ElementRawToReg(std::uint64_t raw, ValType elem) {
  switch (elem) {
    case ValType::kI32:
      return FromI(static_cast<std::int32_t>(static_cast<std::uint32_t>(raw)));
    case ValType::kI64:
      return raw;
    case ValType::kF32: {
      const auto bits = static_cast<std::uint32_t>(raw);
      float v;
      std::memcpy(&v, &bits, 4);
      return FromF(static_cast<double>(v));
    }
    case ValType::kF64:
      return raw;
  }
  return 0;
}

/// Dynamic cost weights; transcendental ops are an order of magnitude more
/// expensive than simple ALU ops on Fermi-class GPUs.
inline std::uint64_t InstrWeight(Opcode op) {
  switch (op) {
    case Opcode::kSqrtF:
    case Opcode::kExpF:
    case Opcode::kLogF:
    case Opcode::kPowF:
      return 8;
    case Opcode::kDivF:
    case Opcode::kDivI:
    case Opcode::kModI:
      return 4;
    default:
      return 1;
  }
}

constexpr std::uint64_t kMaxInstrPerThread = 400'000'000;

}  // namespace

std::uint64_t EncodeScalar(ValType type, double fval, std::int64_t ival) {
  switch (type) {
    case ValType::kI32:
      return FromI(static_cast<std::int32_t>(ival));
    case ValType::kI64:
      return FromI(ival);
    case ValType::kF32:
      return FromF(static_cast<double>(static_cast<float>(fval)));
    case ValType::kF64:
      return FromF(fval);
  }
  return 0;
}

std::uint64_t ReductionIdentity(RedOp op, ValType type) {
  const bool is_float = IsFloat(type);
  switch (op) {
    case RedOp::kAdd:
      return is_float ? RegToElementRaw(FromF(0.0), type)
                      : RegToElementRaw(FromI(0), type);
    case RedOp::kMul:
      return is_float ? RegToElementRaw(FromF(1.0), type)
                      : RegToElementRaw(FromI(1), type);
    case RedOp::kMin:
      return is_float
                 ? RegToElementRaw(
                       FromF(std::numeric_limits<double>::infinity()), type)
                 : RegToElementRaw(
                       FromI(type == ValType::kI32
                                 ? std::numeric_limits<std::int32_t>::max()
                                 : std::numeric_limits<std::int64_t>::max()),
                       type);
    case RedOp::kMax:
      return is_float
                 ? RegToElementRaw(
                       FromF(-std::numeric_limits<double>::infinity()), type)
                 : RegToElementRaw(
                       FromI(type == ValType::kI32
                                 ? std::numeric_limits<std::int32_t>::min()
                                 : std::numeric_limits<std::int64_t>::min()),
                       type);
  }
  return 0;
}

std::uint64_t CombineRaw(RedOp op, ValType type, std::uint64_t a,
                         std::uint64_t b) {
  if (IsFloat(type)) {
    const double x = AsF(ElementRawToReg(a, type));
    const double y = AsF(ElementRawToReg(b, type));
    double r = 0;
    switch (op) {
      case RedOp::kAdd: r = x + y; break;
      case RedOp::kMul: r = x * y; break;
      case RedOp::kMin: r = std::fmin(x, y); break;
      case RedOp::kMax: r = std::fmax(x, y); break;
    }
    return RegToElementRaw(FromF(r), type);
  }
  const std::int64_t x = AsI(ElementRawToReg(a, type));
  const std::int64_t y = AsI(ElementRawToReg(b, type));
  std::int64_t r = 0;
  switch (op) {
    case RedOp::kAdd: r = x + y; break;
    case RedOp::kMul: r = x * y; break;
    case RedOp::kMin: r = x < y ? x : y; break;
    case RedOp::kMax: r = x > y ? x : y; break;
  }
  return RegToElementRaw(FromI(r), type);
}

namespace {

// Loop bodies for CombineRawSpan. Each mirrors CombineRaw exactly: floats
// are widened to double, combined, and narrowed back (for f32 the double
// op is exact, so the single narrowing rounds identically to a native
// float op); i32 combines in int64 and truncates with sign extension.
template <typename FloatOp>
inline void CombineSpanFloat(ValType type, std::uint64_t* acc,
                             const std::uint64_t* src, std::size_t n,
                             FloatOp op) {
  if (type == ValType::kF64) {
    for (std::size_t j = 0; j < n; ++j) {
      acc[j] = FromF(op(AsF(acc[j]), AsF(src[j])));
    }
  } else {  // kF32: element raw is the float bits in the low 32 bits
    for (std::size_t j = 0; j < n; ++j) {
      const auto xb = static_cast<std::uint32_t>(acc[j]);
      const auto yb = static_cast<std::uint32_t>(src[j]);
      float x;
      float y;
      std::memcpy(&x, &xb, 4);
      std::memcpy(&y, &yb, 4);
      const auto r = static_cast<float>(
          op(static_cast<double>(x), static_cast<double>(y)));
      std::uint32_t rb;
      std::memcpy(&rb, &r, 4);
      acc[j] = rb;
    }
  }
}

template <typename IntOp>
inline void CombineSpanInt(ValType type, std::uint64_t* acc,
                           const std::uint64_t* src, std::size_t n,
                           IntOp op) {
  if (type == ValType::kI64) {
    for (std::size_t j = 0; j < n; ++j) {
      acc[j] = FromI(op(AsI(acc[j]), AsI(src[j])));
    }
  } else {  // kI32: element raw is the sign-extended value
    for (std::size_t j = 0; j < n; ++j) {
      const auto x = static_cast<std::int64_t>(
          static_cast<std::int32_t>(static_cast<std::uint32_t>(acc[j])));
      const auto y = static_cast<std::int64_t>(
          static_cast<std::int32_t>(static_cast<std::uint32_t>(src[j])));
      acc[j] = FromI(static_cast<std::int32_t>(op(x, y)));
    }
  }
}

}  // namespace

void CombineRawSpan(RedOp op, ValType type, std::uint64_t* acc,
                    const std::uint64_t* src, std::size_t n) {
  if (IsFloat(type)) {
    switch (op) {
      case RedOp::kAdd:
        CombineSpanFloat(type, acc, src, n,
                         [](double x, double y) { return x + y; });
        break;
      case RedOp::kMul:
        CombineSpanFloat(type, acc, src, n,
                         [](double x, double y) { return x * y; });
        break;
      case RedOp::kMin:
        CombineSpanFloat(type, acc, src, n,
                         [](double x, double y) { return std::fmin(x, y); });
        break;
      case RedOp::kMax:
        CombineSpanFloat(type, acc, src, n,
                         [](double x, double y) { return std::fmax(x, y); });
        break;
    }
    return;
  }
  switch (op) {
    case RedOp::kAdd:
      CombineSpanInt(type, acc, src, n,
                     [](std::int64_t x, std::int64_t y) { return x + y; });
      break;
    case RedOp::kMul:
      CombineSpanInt(type, acc, src, n,
                     [](std::int64_t x, std::int64_t y) { return x * y; });
      break;
    case RedOp::kMin:
      CombineSpanInt(type, acc, src, n,
                     [](std::int64_t x, std::int64_t y) { return x < y ? x : y; });
      break;
    case RedOp::kMax:
      CombineSpanInt(type, acc, src, n,
                     [](std::int64_t x, std::int64_t y) { return x > y ? x : y; });
      break;
  }
}

KernelExec::KernelExec(const KernelIR& kernel) : kernel_(kernel) {
  Verify(kernel);
  bindings.resize(kernel.arrays.size());
  scalar_values.resize(kernel.scalars.size(), 0);
  array_red_lower.resize(kernel.array_reductions.size(), 0);
  array_red_length.resize(kernel.array_reductions.size(), 0);
  ResetOutputs();
}

void KernelExec::ResetOutputs() {
  scalar_red_results_.clear();
  for (const auto& red : kernel_.scalar_reductions) {
    scalar_red_results_.push_back(ReductionIdentity(red.op, red.type));
  }
  array_red_partials_.clear();
  for (std::size_t i = 0; i < kernel_.array_reductions.size(); ++i) {
    const auto& red = kernel_.array_reductions[i];
    array_red_partials_.emplace_back(
        static_cast<std::size_t>(array_red_length[i]),
        ReductionIdentity(red.op, red.type));
  }
}

void KernelExec::Execute(std::int64_t tid_begin, std::int64_t tid_end,
                         sim::KernelStats& stats) const {
  ACCMG_CHECK(bindings.size() == kernel_.arrays.size(),
              "kernel launch with unbound arrays");
  ACCMG_CHECK(scalar_values.size() == kernel_.scalars.size(),
              "kernel launch with missing scalar values");

  std::vector<std::uint64_t> regs(static_cast<std::size_t>(kernel_.num_regs));

  // Chunk-private reduction accumulators (level 1 of the paper's
  // hierarchical reduction: privatized per thread block / worker chunk).
  std::vector<std::uint64_t> local_scalar_red;
  for (const auto& red : kernel_.scalar_reductions) {
    local_scalar_red.push_back(ReductionIdentity(red.op, red.type));
  }
  std::vector<std::vector<std::uint64_t>> local_array_red;
  for (std::size_t i = 0; i < kernel_.array_reductions.size(); ++i) {
    local_array_red.emplace_back(
        static_cast<std::size_t>(array_red_length[i]),
        ReductionIdentity(kernel_.array_reductions[i].op,
                          kernel_.array_reductions[i].type));
  }
  std::vector<std::vector<WriteMissRecord>> local_misses(bindings.size());

  std::uint64_t instr = 0;
  std::uint64_t bytes_read = 0;
  std::uint64_t bytes_written = 0;

  const Instr* code = kernel_.code.data();
  for (std::int64_t tid = tid_begin; tid < tid_end; ++tid) {
    // Pre-load scalar parameters and the iteration index.
    for (std::size_t s = 0; s < scalar_values.size(); ++s) {
      // Scalars occupy the first registers after the thread id register by
      // convention established in the builder; the builder emits explicit
      // register numbers, so we just honour the launch contract:
      // scalar s lives in register (thread_id_reg + 1 + s).
      regs[static_cast<std::size_t>(kernel_.thread_id_reg) + 1 + s] =
          scalar_values[s];
    }
    regs[static_cast<std::size_t>(kernel_.thread_id_reg)] =
        FromI(iteration_offset + tid);

    std::uint64_t budget = 0;
    std::size_t pc = 0;
    while (true) {
      const Instr& in = code[pc];
      instr += InstrWeight(in.op);
      if (++budget > kMaxInstrPerThread) {
        throw DeviceError("kernel '" + kernel_.name +
                          "': per-thread instruction budget exceeded "
                          "(runaway loop?)");
      }
      switch (in.op) {
        case Opcode::kConstI:
          regs[static_cast<std::size_t>(in.dst)] = FromI(in.imm.i);
          break;
        case Opcode::kConstF:
          regs[static_cast<std::size_t>(in.dst)] = FromF(in.imm.f);
          break;
        case Opcode::kMov:
          regs[static_cast<std::size_t>(in.dst)] =
              regs[static_cast<std::size_t>(in.a)];
          break;

#define REG(x) regs[static_cast<std::size_t>(x)]
#define BIN_I(expr)                                           \
  {                                                           \
    const std::int64_t x = AsI(REG(in.a));                    \
    const std::int64_t y = AsI(REG(in.b));                    \
    (void)x; (void)y;                                         \
    REG(in.dst) = FromI(expr);                                \
  }                                                           \
  break
#define BIN_F(expr)                                           \
  {                                                           \
    const double x = AsF(REG(in.a));                          \
    const double y = AsF(REG(in.b));                          \
    (void)x; (void)y;                                         \
    REG(in.dst) = FromF(expr);                                \
  }                                                           \
  break

        case Opcode::kAddI: BIN_I(x + y);
        case Opcode::kSubI: BIN_I(x - y);
        case Opcode::kMulI: BIN_I(x * y);
        case Opcode::kDivI: {
          const std::int64_t y = AsI(REG(in.b));
          if (y == 0) {
            throw DeviceError("kernel '" + kernel_.name +
                              "': integer division by zero");
          }
          REG(in.dst) = FromI(AsI(REG(in.a)) / y);
          break;
        }
        case Opcode::kModI: {
          const std::int64_t y = AsI(REG(in.b));
          if (y == 0) {
            throw DeviceError("kernel '" + kernel_.name +
                              "': integer modulo by zero");
          }
          REG(in.dst) = FromI(AsI(REG(in.a)) % y);
          break;
        }
        case Opcode::kNegI:
          REG(in.dst) = FromI(-AsI(REG(in.a)));
          break;
        case Opcode::kAndI: BIN_I(x & y);
        case Opcode::kOrI: BIN_I(x | y);
        case Opcode::kXorI: BIN_I(x ^ y);
        case Opcode::kShlI: BIN_I(x << (y & 63));
        case Opcode::kShrI: BIN_I(x >> (y & 63));
        case Opcode::kNotI:
          REG(in.dst) = FromI(~AsI(REG(in.a)));
          break;
        case Opcode::kMinI: BIN_I(x < y ? x : y);
        case Opcode::kMaxI: BIN_I(x > y ? x : y);
        case Opcode::kAbsI:
          REG(in.dst) = FromI(std::llabs(AsI(REG(in.a))));
          break;

        case Opcode::kAddF: BIN_F(x + y);
        case Opcode::kSubF: BIN_F(x - y);
        case Opcode::kMulF: BIN_F(x * y);
        case Opcode::kDivF: BIN_F(x / y);
        case Opcode::kNegF:
          REG(in.dst) = FromF(-AsF(REG(in.a)));
          break;
        case Opcode::kSqrtF:
          REG(in.dst) = FromF(std::sqrt(AsF(REG(in.a))));
          break;
        case Opcode::kFabsF:
          REG(in.dst) = FromF(std::fabs(AsF(REG(in.a))));
          break;
        case Opcode::kExpF:
          REG(in.dst) = FromF(std::exp(AsF(REG(in.a))));
          break;
        case Opcode::kLogF:
          REG(in.dst) = FromF(std::log(AsF(REG(in.a))));
          break;
        case Opcode::kPowF: BIN_F(std::pow(x, y));
        case Opcode::kFminF: BIN_F(std::fmin(x, y));
        case Opcode::kFmaxF: BIN_F(std::fmax(x, y));
        case Opcode::kFloorF:
          REG(in.dst) = FromF(std::floor(AsF(REG(in.a))));
          break;
        case Opcode::kCeilF:
          REG(in.dst) = FromF(std::ceil(AsF(REG(in.a))));
          break;

        case Opcode::kCmpLtI: BIN_I((x < y) ? 1 : 0);
        case Opcode::kCmpLeI: BIN_I((x <= y) ? 1 : 0);
        case Opcode::kCmpEqI: BIN_I((x == y) ? 1 : 0);
        case Opcode::kCmpNeI: BIN_I((x != y) ? 1 : 0);
        case Opcode::kCmpLtF: {
          const double x = AsF(REG(in.a));
          const double y = AsF(REG(in.b));
          REG(in.dst) = FromI((x < y) ? 1 : 0);
          break;
        }
        case Opcode::kCmpLeF: {
          const double x = AsF(REG(in.a));
          const double y = AsF(REG(in.b));
          REG(in.dst) = FromI((x <= y) ? 1 : 0);
          break;
        }
        case Opcode::kCmpEqF: {
          const double x = AsF(REG(in.a));
          const double y = AsF(REG(in.b));
          REG(in.dst) = FromI((x == y) ? 1 : 0);
          break;
        }
        case Opcode::kCmpNeF: {
          const double x = AsF(REG(in.a));
          const double y = AsF(REG(in.b));
          REG(in.dst) = FromI((x != y) ? 1 : 0);
          break;
        }

        case Opcode::kTruncI32:
          REG(in.dst) = FromI(static_cast<std::int32_t>(AsI(REG(in.a))));
          break;
        case Opcode::kRoundF32:
          REG(in.dst) =
              FromF(static_cast<double>(static_cast<float>(AsF(REG(in.a)))));
          break;
        case Opcode::kI2F:
          REG(in.dst) = FromF(static_cast<double>(AsI(REG(in.a))));
          break;
        case Opcode::kF2I:
          REG(in.dst) = FromI(static_cast<std::int64_t>(AsF(REG(in.a))));
          break;

        case Opcode::kLoad: {
          const auto& binding = bindings[static_cast<std::size_t>(in.arr)];
          const auto& param = kernel_.arrays[static_cast<std::size_t>(in.arr)];
          const std::int64_t idx = AsI(REG(in.a));
          if (idx < binding.lo || idx >= binding.hi) {
            throw DeviceError(
                "kernel '" + kernel_.name + "': read of non-resident element " +
                param.name + "[" + std::to_string(idx) + "], resident [" +
                std::to_string(binding.lo) + ", " +
                std::to_string(binding.hi) + ")");
          }
          REG(in.dst) =
              LoadElement(binding.data, idx - binding.lo, param.elem);
          bytes_read += ValTypeSize(param.elem);
          break;
        }
        case Opcode::kStore: {
          const auto& binding = bindings[static_cast<std::size_t>(in.arr)];
          const auto& param = kernel_.arrays[static_cast<std::size_t>(in.arr)];
          const std::int64_t idx = AsI(REG(in.a));
          const std::uint64_t raw = RegToElementRaw(REG(in.b), param.elem);
          if (idx >= binding.write_lo && idx < binding.write_hi) {
            StoreElementRaw(binding.data, idx - binding.lo, param.elem, raw);
          } else if (binding.miss != nullptr) {
            // Write miss on a distributed array: buffer the (address, data)
            // record for the communication manager (Section IV-D2).
            local_misses[static_cast<std::size_t>(in.arr)].push_back(
                WriteMissRecord{idx, raw});
          } else {
            throw DeviceError(
                "kernel '" + kernel_.name +
                "': write to non-resident element " + param.name + "[" +
                std::to_string(idx) + "] without a write-miss buffer");
          }
          bytes_written += ValTypeSize(param.elem);
          break;
        }
        case Opcode::kDirtyMark: {
          const auto& binding = bindings[static_cast<std::size_t>(in.arr)];
          if (binding.dirty.level1 != nullptr) {
            const std::int64_t idx = AsI(REG(in.a));
            if (idx >= binding.lo && idx < binding.hi) {
              const std::int64_t local = idx - binding.lo;
              std::atomic_ref<std::uint8_t>(binding.dirty.level1[local])
                  .store(1, std::memory_order_relaxed);
              std::atomic_ref<std::uint8_t>(
                  binding.dirty.level2[local / binding.dirty.chunk_elems])
                  .store(1, std::memory_order_relaxed);
              bytes_written += 2;
            }
          }
          break;
        }

        case Opcode::kRedScalar: {
          const auto slot = static_cast<std::size_t>(in.imm.i);
          const auto& red = kernel_.scalar_reductions[slot];
          const std::uint64_t value =
              RegToElementRaw(REG(in.a), red.type);
          local_scalar_red[slot] =
              CombineRaw(red.op, red.type, local_scalar_red[slot], value);
          break;
        }
        case Opcode::kRedArray: {
          const auto slot = static_cast<std::size_t>(in.imm.i);
          const auto& red = kernel_.array_reductions[slot];
          const std::int64_t idx = AsI(REG(in.a));
          const std::int64_t lower = array_red_lower[slot];
          const std::int64_t length = array_red_length[slot];
          if (idx < lower || idx >= lower + length) {
            throw DeviceError("kernel '" + kernel_.name +
                              "': reductiontoarray index " +
                              std::to_string(idx) +
                              " outside the declared section [" +
                              std::to_string(lower) + ", " +
                              std::to_string(lower + length) + ")");
          }
          auto& cell =
              local_array_red[slot][static_cast<std::size_t>(idx - lower)];
          cell = CombineRaw(red.op, red.type, cell,
                            RegToElementRaw(REG(in.b), red.type));
          break;
        }

        case Opcode::kBr:
          pc = static_cast<std::size_t>(in.imm.i);
          continue;
        case Opcode::kBrIf:
          if (AsI(REG(in.a)) != 0) {
            pc = static_cast<std::size_t>(in.imm.i);
            continue;
          }
          break;
        case Opcode::kBrIfNot:
          if (AsI(REG(in.a)) == 0) {
            pc = static_cast<std::size_t>(in.imm.i);
            continue;
          }
          break;
        case Opcode::kRet:
          goto thread_done;
      }
      ++pc;
    }
  thread_done:;
#undef REG
#undef BIN_I
#undef BIN_F
  }

  // Merge chunk-private state (level 2 of the hierarchical reduction).
  {
    std::lock_guard<std::mutex> lock(merge_mutex_);
    for (std::size_t s = 0; s < local_scalar_red.size(); ++s) {
      const auto& red = kernel_.scalar_reductions[s];
      scalar_red_results_[s] = CombineRaw(red.op, red.type,
                                          scalar_red_results_[s],
                                          local_scalar_red[s]);
    }
    for (std::size_t r = 0; r < local_array_red.size(); ++r) {
      const auto& red = kernel_.array_reductions[r];
      auto& shared = array_red_partials_[r];
      for (std::size_t i = 0; i < shared.size(); ++i) {
        shared[i] =
            CombineRaw(red.op, red.type, shared[i], local_array_red[r][i]);
      }
    }
  }
  for (std::size_t a = 0; a < local_misses.size(); ++a) {
    if (!local_misses[a].empty()) {
      ACCMG_CHECK(bindings[a].miss != nullptr, "miss records without buffer");
      bindings[a].miss->Append(local_misses[a]);
    }
  }

  stats.instructions += instr;
  stats.bytes_read += bytes_read;
  stats.bytes_written += bytes_written;
}

}  // namespace accmg::ir
