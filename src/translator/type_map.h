// Mappings between frontend types/operators and IR types/operators.
#pragma once

#include "common/error.h"
#include "frontend/ast.h"
#include "frontend/types.h"
#include "ir/ir.h"

namespace accmg::translator {

inline ir::ValType ToValType(frontend::ScalarType t) {
  switch (t) {
    case frontend::ScalarType::kInt32: return ir::ValType::kI32;
    case frontend::ScalarType::kInt64: return ir::ValType::kI64;
    case frontend::ScalarType::kFloat32: return ir::ValType::kF32;
    case frontend::ScalarType::kFloat64: return ir::ValType::kF64;
    case frontend::ScalarType::kVoid:
      break;
  }
  ACCMG_UNREACHABLE("void has no value type");
}

inline ir::RedOp ToRedOp(frontend::ReductionOp op) {
  switch (op) {
    case frontend::ReductionOp::kAdd: return ir::RedOp::kAdd;
    case frontend::ReductionOp::kMul: return ir::RedOp::kMul;
    case frontend::ReductionOp::kMin: return ir::RedOp::kMin;
    case frontend::ReductionOp::kMax: return ir::RedOp::kMax;
  }
  ACCMG_UNREACHABLE("unknown reduction op");
}

}  // namespace accmg::translator
