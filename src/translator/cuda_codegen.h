// Textual CUDA code generation — the source-to-source artifact of the
// translator (paper Section IV-B).
//
// The emitted code is what the paper's ROSE-based translator would hand to
// nvcc: one __global__ kernel per offloaded loop with
//  * layout-rewritten array subscripts (`a[idx - a_lo]`),
//  * two-level dirty-bit instrumentation after stores to replicated arrays,
//  * write-miss checks around stores to distributed arrays (elided when the
//    translator proved locality),
//  * privatized hierarchical reductions,
// plus a host-side launch sketch showing the runtime calls.
//
// Inside this repository the kernels execute through the IR interpreter; the
// CUDA text is a faithful, golden-tested rendering of the same lowering for
// inspection and documentation.
#pragma once

#include <string>

#include "translator/offload.h"

namespace accmg::translator {

/// Renders the CUDA kernel for one offloaded loop.
std::string GenerateCudaKernel(const LoopOffload& offload);

/// Renders a host-code sketch for a whole compiled function: data-region
/// management, kernel launches and communication-manager calls.
std::string GenerateHostSketch(const CompiledFunction& function);

/// Convenience: kernels + host sketch for every function in the program.
std::string GenerateCudaProgram(const CompiledProgram& program);

}  // namespace accmg::translator
