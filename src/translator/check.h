// Static directive checker: verifies localaccess / reductiontoarray
// declarations against what the annotated loop actually does.
//
// The localaccess extension is a promise — iteration i only touches
// [stride*i - left, stride*(i+1) - 1 + right] — that the data loader turns
// into owner segments and halos. A wrong declaration is the classic silent
// multi-GPU miscompile: the kernel reads an element that was never loaded.
// This pass proves, where it can, that every read index of a declared array
// stays inside the declared window, using a small symbolic (monomial-form)
// analysis of the subscript expressions with inner-loop bounds substituted.
//
// Three-valued outcome per subscript:
//   * proven covered   -> silent pass
//   * proven violating -> CompileError pinpointing the subscript and the
//                         number of elements by which the window is missed
//   * undecidable      -> pass (the runtime's residency enforcement and the
//                         --validate shadow execution are the backstops)
//
// Write-only subscripts that provably leave the window are only warned
// about: the write-miss machinery (paper Section IV-D2) replays them
// correctly, so they are legal — just a sign the declaration is loose.
#pragma once

#include "frontend/ast.h"
#include "translator/offload.h"

namespace accmg::translator {

/// Checks one offload's directives against its loop body. `local_access` is
/// the loop's localaccess directive (null when the loop has none) — used to
/// warn about specs naming arrays the loop never touches, and for
/// diagnostics. Throws CompileError on every proven violation.
void CheckOffloadDirectives(const LoopOffload& offload,
                            const frontend::Directive* local_access);

/// Proves that every write of a 2-D (`cols(m)`) array in the loop lands
/// inside the iteration's own row: index - cols*i in [0, cols-1] for every
/// store, over the whole iteration space. Uses the same polynomial slack
/// minimization as the directive checker, so indices like i*m + j with a
/// canonical inner loop `for (j = 0; j < m; ...)` are provable even though
/// they are not affine-with-constant-coefficient in i. A true result lets
/// the translator set ArrayConfig::writes_proven_local (no miss check) and
/// the executor synthesize exact boundary-split margins for the row block.
bool ProveWritesRowLocal(const LoopOffload& offload,
                         const ArrayConfig& config);

}  // namespace accmg::translator
