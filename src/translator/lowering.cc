#include "translator/lowering.h"

#include "common/error.h"
#include "translator/type_map.h"

namespace accmg::translator {

using frontend::As;
using frontend::Expr;
using frontend::ExprKind;
using frontend::ScalarType;
using frontend::Stmt;
using frontend::StmtKind;
using ir::Opcode;

namespace {

bool IsFloat(ScalarType t) { return frontend::IsFloatType(t); }

/// Structural equality of expressions (used to recognize `a[i] = a[i] op v`).
/// Shared with the mid-end fusion pass; implemented in compile.cc.
bool ExprEquals(const Expr& x, const Expr& y) {
  return ExprStructurallyEqual(x, y);
}

ir::RedOp AssignOpToRedOp(frontend::AssignOp op) {
  switch (op) {
    case frontend::AssignOp::kAddAssign: return ir::RedOp::kAdd;
    case frontend::AssignOp::kMulAssign: return ir::RedOp::kMul;
    default:
      break;
  }
  ACCMG_UNREACHABLE("assign op is not a reduction");
}

frontend::BinaryOp RedOpToBinaryOp(ir::RedOp op) {
  switch (op) {
    case ir::RedOp::kAdd: return frontend::BinaryOp::kAdd;
    case ir::RedOp::kMul: return frontend::BinaryOp::kMul;
    default:
      break;
  }
  ACCMG_UNREACHABLE("reduction op has no binary form");
}

}  // namespace

KernelLowering::KernelLowering(LoopOffload& offload)
    : offload_(offload), builder_(offload.name) {}

void KernelLowering::Fail(frontend::SourceLocation loc,
                          const std::string& message) const {
  throw CompileError("offload '" + offload_.name + "' at " +
                               loc.ToString() + ": " + message);
}

int KernelLowering::VarReg(const frontend::VarDecl& decl) {
  auto it = var_regs_.find(decl.id);
  ACCMG_CHECK(it != var_regs_.end(),
              "no register for variable '" + decl.name + "'");
  return it->second;
}

bool KernelLowering::IsScalarRedVar(const frontend::VarDecl& decl, int* slot,
                                    ir::RedOp* op) const {
  for (const auto& red : offload_.scalar_reds) {
    if (red.decl == &decl) {
      *slot = red.slot;
      *op = red.op;
      return true;
    }
  }
  return false;
}

const ArrayRedTarget* KernelLowering::FindArrayRed(
    const frontend::VarDecl& decl) const {
  for (const auto& red : offload_.array_reds) {
    if (red.decl == &decl) return &red;
  }
  return nullptr;
}

int KernelLowering::ArrayIndexOf(const frontend::VarDecl& decl) const {
  for (const auto& config : offload_.arrays) {
    if (config.decl == &decl) return config.kernel_array_index;
  }
  ACCMG_UNREACHABLE("array '" + decl.name + "' missing from offload config");
}

void KernelLowering::Lower() {
  // Signature: arrays first, then scalar params (register contract).
  for (auto& config : offload_.arrays) {
    config.kernel_array_index = builder_.AddArray(config.name, config.elem);
    auto& param = builder_.array(config.kernel_array_index);
    param.is_read = config.is_read;
    param.is_written = config.is_written;
    // Instrumentation decisions (paper Section IV-D):
    //  * replicated (no localaccess) + written  -> two-level dirty bits
    //  * distributed (localaccess) + written without a locality proof
    //    -> write-miss check
    if (config.is_written && !config.is_reduction_dest) {
      if (!config.has_localaccess) {
        param.dirty_tracked = true;
      } else if (!config.writes_proven_local) {
        param.miss_checked = true;
      }
    }
  }
  for (auto& scalar : offload_.scalars) {
    const int reg = builder_.AddScalar(scalar.decl->name,
                                       ToValType(scalar.decl->type.scalar));
    scalar.kernel_scalar_index =
        static_cast<int>(&scalar - offload_.scalars.data());
    var_regs_[scalar.decl->id] = reg;
  }
  for (auto& red : offload_.scalar_reds) {
    red.slot = builder_.AddScalarReduction(red.decl->name, red.op,
                                           ToValType(red.decl->type.scalar));
  }
  for (auto& red : offload_.array_reds) {
    red.slot = builder_.AddArrayReduction(ArrayIndexOf(*red.decl), red.op,
                                          ToValType(red.decl->type.scalar));
  }
  var_regs_[offload_.induction->id] = builder_.thread_id_reg();

  if (offload_.fused.empty()) {
    LowerStmt(*offload_.loop->body);
  } else {
    // Fused offload: the bodies of all constituents run back to back per
    // thread, each constituent's induction variable aliased to the shared
    // thread id.
    for (const auto& part : offload_.fused) {
      var_regs_[part.induction->id] = builder_.thread_id_reg();
      LowerStmt(*part.loop->body);
    }
  }
  offload_.kernel = builder_.Build();
}

// ---------------------------------------------------------------------------
// Statements
// ---------------------------------------------------------------------------

void KernelLowering::LowerStmt(const Stmt& stmt) {
  switch (stmt.kind) {
    case StmtKind::kDecl: {
      const auto& decl_stmt = As<frontend::DeclStmt>(stmt);
      const int reg = builder_.NewReg();
      var_regs_[decl_stmt.decl->id] = reg;
      if (decl_stmt.init != nullptr) {
        const int value =
            LowerExprAs(*decl_stmt.init, decl_stmt.decl->type.scalar);
        builder_.MovTo(reg, value);
      }
      break;
    }
    case StmtKind::kAssign:
      LowerAssign(As<frontend::AssignStmt>(stmt));
      break;
    case StmtKind::kExpr:
      // Calls are pure builtins; an expression statement has no effect.
      break;
    case StmtKind::kIf:
      LowerIf(As<frontend::IfStmt>(stmt));
      break;
    case StmtKind::kFor:
      LowerFor(As<frontend::ForStmt>(stmt));
      break;
    case StmtKind::kWhile:
      LowerWhile(As<frontend::WhileStmt>(stmt));
      break;
    case StmtKind::kCompound:
      for (const auto& child : As<frontend::CompoundStmt>(stmt).body) {
        LowerStmt(*child);
      }
      break;
    case StmtKind::kReturn:
      Fail(stmt.loc, "'return' is not allowed inside a parallel loop");
    case StmtKind::kBreak: {
      if (loop_stack_.empty()) {
        Fail(stmt.loc, "'break' outside of an inner loop");
      }
      loop_stack_.back().break_branches.push_back(builder_.Br());
      break;
    }
    case StmtKind::kContinue: {
      if (loop_stack_.empty()) {
        Fail(stmt.loc, "'continue' outside of an inner loop");
      }
      loop_stack_.back().continue_branches.push_back(builder_.Br());
      break;
    }
  }
}

void KernelLowering::LowerAssign(const frontend::AssignStmt& stmt) {
  // Reduction-to-array statement?
  const frontend::Directive* red_directive =
      stmt.FindDirective(frontend::DirectiveKind::kReductionToArray);

  if (stmt.target->kind == ExprKind::kSubscript) {
    const auto& subscript = As<frontend::SubscriptExpr>(*stmt.target);
    const auto& base = As<frontend::VarRef>(*subscript.base);
    const int array_index = ArrayIndexOf(*base.decl);
    const ArrayRedTarget* red = FindArrayRed(*base.decl);

    if (red != nullptr) {
      // This array is a reduction destination: the statement must be the
      // annotated reduction (compound `a[e] op= v` or `a[e] = a[e] op v`).
      const Expr* contribution = nullptr;
      if (stmt.op == frontend::AssignOp::kAddAssign ||
          stmt.op == frontend::AssignOp::kMulAssign) {
        if (AssignOpToRedOp(stmt.op) != red->op) {
          Fail(stmt.loc, "reduction statement operator does not match the "
                         "reductiontoarray directive");
        }
        contribution = stmt.value.get();
      } else if (stmt.op == frontend::AssignOp::kAssign &&
                 stmt.value->kind == ExprKind::kBinary &&
                 (red->op == ir::RedOp::kAdd ||
                  red->op == ir::RedOp::kMul)) {
        const auto& binary = As<frontend::BinaryExpr>(*stmt.value);
        if (binary.op == RedOpToBinaryOp(red->op) &&
            ExprEquals(*binary.lhs, *stmt.target)) {
          contribution = binary.rhs.get();
        } else if (binary.op == RedOpToBinaryOp(red->op) &&
                   ExprEquals(*binary.rhs, *stmt.target)) {
          contribution = binary.lhs.get();
        }
      } else if (stmt.op == frontend::AssignOp::kAssign &&
                 stmt.value->kind == ExprKind::kCall) {
        // min/max reductions spelled  a[e] = min(a[e], v).
        const auto& call = As<frontend::CallExpr>(*stmt.value);
        const bool is_min = (call.builtin == frontend::Builtin::kFmin ||
                             call.builtin == frontend::Builtin::kMin);
        const bool is_max = (call.builtin == frontend::Builtin::kFmax ||
                             call.builtin == frontend::Builtin::kMax);
        if (call.args.size() == 2 &&
            ((is_min && red->op == ir::RedOp::kMin) ||
             (is_max && red->op == ir::RedOp::kMax))) {
          if (ExprEquals(*call.args[0], *stmt.target)) {
            contribution = call.args[1].get();
          } else if (ExprEquals(*call.args[1], *stmt.target)) {
            contribution = call.args[0].get();
          }
        }
      }
      if (contribution == nullptr) {
        Fail(stmt.loc,
             "statement does not match the reductiontoarray pattern "
             "a[e] op= v  or  a[e] = a[e] op v");
      }
      if (red_directive == nullptr) {
        Fail(stmt.loc,
             "write to reduction destination array '" + base.decl->name +
                 "' without a reductiontoarray annotation");
      }
      const int index =
          LowerExprAs(*subscript.index, ScalarType::kInt64);
      const int value = LowerExprAs(*contribution, base.decl->type.scalar);
      builder_.RedArray(red->slot, index, value);
      return;
    }

    // Ordinary (possibly compound) store.
    const int index = LowerExprAs(*subscript.index, ScalarType::kInt64);
    int value;
    if (stmt.op == frontend::AssignOp::kAssign) {
      value = LowerExprAs(*stmt.value, base.decl->type.scalar);
    } else {
      const int old_value = builder_.Load(array_index, index);
      // Element loads produce canonical representation already.
      const int rhs = LowerExprAs(*stmt.value, base.decl->type.scalar);
      const bool fp = IsFloat(base.decl->type.scalar);
      Opcode op;
      switch (stmt.op) {
        case frontend::AssignOp::kAddAssign:
          op = fp ? Opcode::kAddF : Opcode::kAddI;
          break;
        case frontend::AssignOp::kSubAssign:
          op = fp ? Opcode::kSubF : Opcode::kSubI;
          break;
        case frontend::AssignOp::kMulAssign:
          op = fp ? Opcode::kMulF : Opcode::kMulI;
          break;
        case frontend::AssignOp::kDivAssign:
          op = fp ? Opcode::kDivF : Opcode::kDivI;
          break;
        default:
          ACCMG_UNREACHABLE("bad compound assign");
      }
      value = builder_.Binary(op, old_value, rhs);
      if (base.decl->type.scalar == ScalarType::kFloat32) {
        value = builder_.Unary(Opcode::kRoundF32, value);
      } else if (base.decl->type.scalar == ScalarType::kInt32) {
        value = builder_.Unary(Opcode::kTruncI32, value);
      }
    }
    builder_.Store(array_index, index, value);
    if (builder_.array(array_index).dirty_tracked) {
      builder_.DirtyMark(array_index, index);
    }
    return;
  }

  // Scalar target.
  const auto& ref = As<frontend::VarRef>(*stmt.target);
  int slot;
  ir::RedOp red_op;
  if (IsScalarRedVar(*ref.decl, &slot, &red_op)) {
    const Expr* contribution = nullptr;
    if ((stmt.op == frontend::AssignOp::kAddAssign &&
         red_op == ir::RedOp::kAdd) ||
        (stmt.op == frontend::AssignOp::kMulAssign &&
         red_op == ir::RedOp::kMul)) {
      contribution = stmt.value.get();
    } else if (stmt.op == frontend::AssignOp::kAssign &&
               stmt.value->kind == ExprKind::kBinary) {
      const auto& binary = As<frontend::BinaryExpr>(*stmt.value);
      if (binary.op == RedOpToBinaryOp(red_op)) {
        if (ExprEquals(*binary.lhs, *stmt.target)) {
          contribution = binary.rhs.get();
        } else if (ExprEquals(*binary.rhs, *stmt.target)) {
          contribution = binary.lhs.get();
        }
      }
    } else if (stmt.op == frontend::AssignOp::kAssign &&
               stmt.value->kind == ExprKind::kCall) {
      // min/max reductions spelled  s = fmin(s, v).
      const auto& call = As<frontend::CallExpr>(*stmt.value);
      const bool is_min = (call.builtin == frontend::Builtin::kFmin ||
                           call.builtin == frontend::Builtin::kMin);
      const bool is_max = (call.builtin == frontend::Builtin::kFmax ||
                           call.builtin == frontend::Builtin::kMax);
      if ((is_min && red_op == ir::RedOp::kMin) ||
          (is_max && red_op == ir::RedOp::kMax)) {
        if (ExprEquals(*call.args[0], *stmt.target)) {
          contribution = call.args[1].get();
        } else if (ExprEquals(*call.args[1], *stmt.target)) {
          contribution = call.args[0].get();
        }
      }
    }
    if (contribution == nullptr) {
      Fail(stmt.loc, "statement does not match the reduction pattern for "
                     "variable '" + ref.decl->name + "'");
    }
    const int value = LowerExprAs(*contribution, ref.decl->type.scalar);
    builder_.RedScalar(slot, value);
    return;
  }

  // Private scalar assignment.
  const int home = VarReg(*ref.decl);
  int value;
  if (stmt.op == frontend::AssignOp::kAssign) {
    value = LowerExprAs(*stmt.value, ref.decl->type.scalar);
  } else {
    const int rhs = LowerExprAs(*stmt.value, ref.decl->type.scalar);
    const bool fp = IsFloat(ref.decl->type.scalar);
    Opcode op;
    switch (stmt.op) {
      case frontend::AssignOp::kAddAssign:
        op = fp ? Opcode::kAddF : Opcode::kAddI;
        break;
      case frontend::AssignOp::kSubAssign:
        op = fp ? Opcode::kSubF : Opcode::kSubI;
        break;
      case frontend::AssignOp::kMulAssign:
        op = fp ? Opcode::kMulF : Opcode::kMulI;
        break;
      case frontend::AssignOp::kDivAssign:
        op = fp ? Opcode::kDivF : Opcode::kDivI;
        break;
      default:
        ACCMG_UNREACHABLE("bad compound assign");
    }
    value = builder_.Binary(op, home, rhs);
    if (ref.decl->type.scalar == ScalarType::kFloat32) {
      value = builder_.Unary(Opcode::kRoundF32, value);
    } else if (ref.decl->type.scalar == ScalarType::kInt32) {
      value = builder_.Unary(Opcode::kTruncI32, value);
    }
  }
  builder_.MovTo(home, value);
}

void KernelLowering::LowerIf(const frontend::IfStmt& stmt) {
  const int cond = LowerExprAs(*stmt.cond, ScalarType::kInt64);
  const std::size_t skip_then = builder_.BrIfNot(cond);
  LowerStmt(*stmt.then_stmt);
  if (stmt.else_stmt == nullptr) {
    builder_.PatchTarget(skip_then, builder_.Here());
    return;
  }
  const std::size_t skip_else = builder_.Br();
  builder_.PatchTarget(skip_then, builder_.Here());
  LowerStmt(*stmt.else_stmt);
  builder_.PatchTarget(skip_else, builder_.Here());
}

void KernelLowering::LowerFor(const frontend::ForStmt& stmt) {
  if (stmt.init != nullptr) LowerStmt(*stmt.init);
  const std::size_t loop_head = builder_.Here();
  std::size_t exit_branch = static_cast<std::size_t>(-1);
  if (stmt.cond != nullptr) {
    const int cond = LowerExprAs(*stmt.cond, ScalarType::kInt64);
    exit_branch = builder_.BrIfNot(cond);
  }
  loop_stack_.emplace_back();
  LowerStmt(*stmt.body);
  const std::size_t continue_target = builder_.Here();
  if (stmt.step != nullptr) LowerStmt(*stmt.step);
  const std::size_t back_branch = builder_.Br();
  builder_.PatchTarget(back_branch, loop_head);
  const std::size_t loop_exit = builder_.Here();
  if (exit_branch != static_cast<std::size_t>(-1)) {
    builder_.PatchTarget(exit_branch, loop_exit);
  }
  LoopContext context = std::move(loop_stack_.back());
  loop_stack_.pop_back();
  for (std::size_t branch : context.break_branches) {
    builder_.PatchTarget(branch, loop_exit);
  }
  for (std::size_t branch : context.continue_branches) {
    builder_.PatchTarget(branch, continue_target);
  }
}

void KernelLowering::LowerWhile(const frontend::WhileStmt& stmt) {
  if (stmt.is_do_while) {
    // do { body } while (cond): body first, conditional back-branch.
    const std::size_t loop_head = builder_.Here();
    loop_stack_.emplace_back();
    LowerStmt(*stmt.body);
    const std::size_t continue_target = builder_.Here();
    const int cond = LowerExprAs(*stmt.cond, ScalarType::kInt64);
    const std::size_t back_branch = builder_.BrIf(cond);
    builder_.PatchTarget(back_branch, loop_head);
    const std::size_t loop_exit = builder_.Here();
    LoopContext context = std::move(loop_stack_.back());
    loop_stack_.pop_back();
    for (std::size_t branch : context.break_branches) {
      builder_.PatchTarget(branch, loop_exit);
    }
    for (std::size_t branch : context.continue_branches) {
      builder_.PatchTarget(branch, continue_target);
    }
    return;
  }
  const std::size_t loop_head = builder_.Here();
  const int cond = LowerExprAs(*stmt.cond, ScalarType::kInt64);
  const std::size_t exit_branch = builder_.BrIfNot(cond);
  loop_stack_.emplace_back();
  LowerStmt(*stmt.body);
  const std::size_t back_branch = builder_.Br();
  builder_.PatchTarget(back_branch, loop_head);
  const std::size_t loop_exit = builder_.Here();
  builder_.PatchTarget(exit_branch, loop_exit);
  LoopContext context = std::move(loop_stack_.back());
  loop_stack_.pop_back();
  for (std::size_t branch : context.break_branches) {
    builder_.PatchTarget(branch, loop_exit);
  }
  for (std::size_t branch : context.continue_branches) {
    builder_.PatchTarget(branch, loop_head);
  }
}

// ---------------------------------------------------------------------------
// Expressions
// ---------------------------------------------------------------------------

int KernelLowering::Convert(int reg, ScalarType from, ScalarType to) {
  if (from == to) return reg;
  const bool from_fp = IsFloat(from);
  const bool to_fp = IsFloat(to);
  if (!from_fp && to_fp) {
    int r = builder_.Unary(Opcode::kI2F, reg);
    if (to == ScalarType::kFloat32) r = builder_.Unary(Opcode::kRoundF32, r);
    return r;
  }
  if (from_fp && !to_fp) {
    int r = builder_.Unary(Opcode::kF2I, reg);
    if (to == ScalarType::kInt32) r = builder_.Unary(Opcode::kTruncI32, r);
    return r;
  }
  if (from_fp && to_fp) {
    if (to == ScalarType::kFloat32) {
      return builder_.Unary(Opcode::kRoundF32, reg);
    }
    return reg;  // f32 -> f64 is a widening no-op in register form
  }
  // int -> int
  if (to == ScalarType::kInt32) return builder_.Unary(Opcode::kTruncI32, reg);
  return reg;  // i32 -> i64 sign extension is implicit
}

int KernelLowering::LowerExprAs(const Expr& expr, ScalarType target) {
  const int reg = LowerExpr(expr);
  return Convert(reg, expr.type.scalar, target);
}

int KernelLowering::LowerExpr(const Expr& expr) {
  switch (expr.kind) {
    case ExprKind::kIntLiteral:
      return builder_.ConstI(As<frontend::IntLiteral>(expr).value);
    case ExprKind::kFloatLiteral: {
      const auto& lit = As<frontend::FloatLiteral>(expr);
      const double value = lit.is_float32
                               ? static_cast<double>(
                                     static_cast<float>(lit.value))
                               : lit.value;
      return builder_.ConstF(value);
    }
    case ExprKind::kVarRef: {
      const auto& ref = As<frontend::VarRef>(expr);
      int slot;
      ir::RedOp op;
      if (IsScalarRedVar(*ref.decl, &slot, &op)) {
        Fail(expr.loc, "reduction variable '" + ref.decl->name +
                           "' may only appear in reduction statements");
      }
      return VarReg(*ref.decl);
    }
    case ExprKind::kSubscript: {
      const auto& subscript = As<frontend::SubscriptExpr>(expr);
      const auto& base = As<frontend::VarRef>(*subscript.base);
      const int index = LowerExprAs(*subscript.index, ScalarType::kInt64);
      return builder_.Load(ArrayIndexOf(*base.decl), index);
    }
    case ExprKind::kUnary: {
      const auto& unary = As<frontend::UnaryExpr>(expr);
      switch (unary.op) {
        case frontend::UnaryOp::kNeg: {
          const int operand = LowerExpr(*unary.operand);
          const bool fp = IsFloat(unary.operand->type.scalar);
          return builder_.Unary(fp ? Opcode::kNegF : Opcode::kNegI, operand);
        }
        case frontend::UnaryOp::kNot: {
          const int operand =
              LowerExprAs(*unary.operand, ScalarType::kInt64);
          const int zero = builder_.ConstI(0);
          return builder_.Binary(Opcode::kCmpEqI, operand, zero);
        }
        case frontend::UnaryOp::kBitNot: {
          const int operand =
              LowerExprAs(*unary.operand, ScalarType::kInt64);
          int r = builder_.Unary(Opcode::kNotI, operand);
          if (expr.type.scalar == ScalarType::kInt32) {
            r = builder_.Unary(Opcode::kTruncI32, r);
          }
          return r;
        }
      }
      ACCMG_UNREACHABLE("bad unary op");
    }
    case ExprKind::kBinary: {
      const auto& binary = As<frontend::BinaryExpr>(expr);
      using frontend::BinaryOp;

      // Logical operators: short-circuit via branches into a result register.
      if (binary.op == BinaryOp::kLogicalAnd ||
          binary.op == BinaryOp::kLogicalOr) {
        const int result = builder_.NewReg();
        const bool is_and = binary.op == BinaryOp::kLogicalAnd;
        const int lhs = LowerExprAs(*binary.lhs, ScalarType::kInt64);
        const std::size_t short_branch =
            is_and ? builder_.BrIfNot(lhs) : builder_.BrIf(lhs);
        const int rhs = LowerExprAs(*binary.rhs, ScalarType::kInt64);
        const int zero = builder_.ConstI(0);
        const int rhs_bool = builder_.Binary(Opcode::kCmpNeI, rhs, zero);
        builder_.MovTo(result, rhs_bool);
        const std::size_t done = builder_.Br();
        builder_.PatchTarget(short_branch, builder_.Here());
        const int short_value = builder_.ConstI(is_and ? 0 : 1);
        builder_.MovTo(result, short_value);
        builder_.PatchTarget(done, builder_.Here());
        return result;
      }

      const ScalarType common = frontend::CommonType(
          binary.lhs->type.scalar, binary.rhs->type.scalar);
      const int lhs = LowerExprAs(*binary.lhs, common);
      const int rhs = LowerExprAs(*binary.rhs, common);
      const bool fp = IsFloat(common);

      auto arith = [&](Opcode int_op, Opcode float_op) {
        int r = builder_.Binary(fp ? float_op : int_op, lhs, rhs);
        if (expr.type.scalar == ScalarType::kFloat32) {
          r = builder_.Unary(Opcode::kRoundF32, r);
        } else if (expr.type.scalar == ScalarType::kInt32 && !fp) {
          r = builder_.Unary(Opcode::kTruncI32, r);
        }
        return r;
      };

      switch (binary.op) {
        case BinaryOp::kAdd: return arith(Opcode::kAddI, Opcode::kAddF);
        case BinaryOp::kSub: return arith(Opcode::kSubI, Opcode::kSubF);
        case BinaryOp::kMul: return arith(Opcode::kMulI, Opcode::kMulF);
        case BinaryOp::kDiv: return arith(Opcode::kDivI, Opcode::kDivF);
        case BinaryOp::kMod: return arith(Opcode::kModI, Opcode::kModI);
        case BinaryOp::kBitAnd: return arith(Opcode::kAndI, Opcode::kAndI);
        case BinaryOp::kBitOr: return arith(Opcode::kOrI, Opcode::kOrI);
        case BinaryOp::kBitXor: return arith(Opcode::kXorI, Opcode::kXorI);
        case BinaryOp::kShl: return arith(Opcode::kShlI, Opcode::kShlI);
        case BinaryOp::kShr: return arith(Opcode::kShrI, Opcode::kShrI);
        case BinaryOp::kLt:
          return builder_.Binary(fp ? Opcode::kCmpLtF : Opcode::kCmpLtI,
                                 lhs, rhs);
        case BinaryOp::kLe:
          return builder_.Binary(fp ? Opcode::kCmpLeF : Opcode::kCmpLeI,
                                 lhs, rhs);
        case BinaryOp::kGt:
          return builder_.Binary(fp ? Opcode::kCmpLtF : Opcode::kCmpLtI,
                                 rhs, lhs);
        case BinaryOp::kGe:
          return builder_.Binary(fp ? Opcode::kCmpLeF : Opcode::kCmpLeI,
                                 rhs, lhs);
        case BinaryOp::kEq:
          return builder_.Binary(fp ? Opcode::kCmpEqF : Opcode::kCmpEqI,
                                 lhs, rhs);
        case BinaryOp::kNe:
          return builder_.Binary(fp ? Opcode::kCmpNeF : Opcode::kCmpNeI,
                                 lhs, rhs);
        case BinaryOp::kLogicalAnd:
        case BinaryOp::kLogicalOr:
          break;  // handled above
      }
      ACCMG_UNREACHABLE("bad binary op");
    }
    case ExprKind::kCall: {
      const auto& call = As<frontend::CallExpr>(expr);
      using frontend::Builtin;
      const bool fp_result = IsFloat(expr.type.scalar);
      auto arg_as = [&](std::size_t i, ScalarType t) {
        return LowerExprAs(*call.args[i], t);
      };
      const ScalarType farg = ScalarType::kFloat64;
      int r;
      switch (call.builtin) {
        case Builtin::kSqrt:
          r = builder_.Unary(Opcode::kSqrtF, arg_as(0, farg));
          break;
        case Builtin::kFabs:
          r = builder_.Unary(Opcode::kFabsF, arg_as(0, farg));
          break;
        case Builtin::kExp:
          r = builder_.Unary(Opcode::kExpF, arg_as(0, farg));
          break;
        case Builtin::kLog:
          r = builder_.Unary(Opcode::kLogF, arg_as(0, farg));
          break;
        case Builtin::kPow:
          r = builder_.Binary(Opcode::kPowF, arg_as(0, farg),
                              arg_as(1, farg));
          break;
        case Builtin::kFmin:
          r = builder_.Binary(Opcode::kFminF, arg_as(0, farg),
                              arg_as(1, farg));
          break;
        case Builtin::kFmax:
          r = builder_.Binary(Opcode::kFmaxF, arg_as(0, farg),
                              arg_as(1, farg));
          break;
        case Builtin::kFloor:
          r = builder_.Unary(Opcode::kFloorF, arg_as(0, farg));
          break;
        case Builtin::kCeil:
          r = builder_.Unary(Opcode::kCeilF, arg_as(0, farg));
          break;
        case Builtin::kAbs:
          return builder_.Unary(Opcode::kAbsI,
                                arg_as(0, ScalarType::kInt64));
        case Builtin::kMin:
          return builder_.Binary(Opcode::kMinI, arg_as(0, ScalarType::kInt64),
                                 arg_as(1, ScalarType::kInt64));
        case Builtin::kMax:
          return builder_.Binary(Opcode::kMaxI, arg_as(0, ScalarType::kInt64),
                                 arg_as(1, ScalarType::kInt64));
        default:
          ACCMG_UNREACHABLE("bad builtin");
      }
      if (fp_result && expr.type.scalar == ScalarType::kFloat32) {
        r = builder_.Unary(Opcode::kRoundF32, r);
      }
      return r;
    }
    case ExprKind::kCast: {
      const auto& cast = As<frontend::CastExpr>(expr);
      const int operand = LowerExpr(*cast.operand);
      return Convert(operand, cast.operand->type.scalar, cast.target.scalar);
    }
    case ExprKind::kConditional: {
      const auto& cond = As<frontend::ConditionalExpr>(expr);
      const int result = builder_.NewReg();
      const int c = LowerExprAs(*cond.cond, ScalarType::kInt64);
      const std::size_t to_else = builder_.BrIfNot(c);
      const int then_value = LowerExprAs(*cond.then_expr, expr.type.scalar);
      builder_.MovTo(result, then_value);
      const std::size_t done = builder_.Br();
      builder_.PatchTarget(to_else, builder_.Here());
      const int else_value = LowerExprAs(*cond.else_expr, expr.type.scalar);
      builder_.MovTo(result, else_value);
      builder_.PatchTarget(done, builder_.Here());
      return result;
    }
  }
  ACCMG_UNREACHABLE("bad expr kind");
}

}  // namespace accmg::translator
