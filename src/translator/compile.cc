#include <algorithm>
#include <functional>
#include <unordered_set>

#include "common/error.h"
#include "translator/check.h"
#include "translator/eval.h"
#include "translator/lowering.h"
#include "translator/offload.h"
#include "translator/opt.h"
#include "translator/type_map.h"

namespace accmg::translator {

using frontend::As;
using accmg::CompileError;
using frontend::Directive;
using frontend::DirectiveKind;
using frontend::Expr;
using frontend::ExprKind;
using frontend::ForStmt;
using frontend::Function;
using frontend::Stmt;
using frontend::StmtKind;
using frontend::VarDecl;

namespace {

[[noreturn]] void Fail(frontend::SourceLocation loc,
                       const std::string& message) {
  throw CompileError(loc.ToString() + ": " + message);
}

// --- generic AST walking helpers -------------------------------------------

void WalkExprs(const Expr& expr, const std::function<void(const Expr&)>& fn) {
  fn(expr);
  switch (expr.kind) {
    case ExprKind::kSubscript: {
      const auto& s = As<frontend::SubscriptExpr>(expr);
      WalkExprs(*s.base, fn);
      WalkExprs(*s.index, fn);
      break;
    }
    case ExprKind::kUnary:
      WalkExprs(*As<frontend::UnaryExpr>(expr).operand, fn);
      break;
    case ExprKind::kBinary:
      WalkExprs(*As<frontend::BinaryExpr>(expr).lhs, fn);
      WalkExprs(*As<frontend::BinaryExpr>(expr).rhs, fn);
      break;
    case ExprKind::kCall:
      for (const auto& arg : As<frontend::CallExpr>(expr).args) {
        WalkExprs(*arg, fn);
      }
      break;
    case ExprKind::kCast:
      WalkExprs(*As<frontend::CastExpr>(expr).operand, fn);
      break;
    case ExprKind::kConditional: {
      const auto& c = As<frontend::ConditionalExpr>(expr);
      WalkExprs(*c.cond, fn);
      WalkExprs(*c.then_expr, fn);
      WalkExprs(*c.else_expr, fn);
      break;
    }
    default:
      break;
  }
}

void WalkStmts(const Stmt& stmt, const std::function<void(const Stmt&)>& fn) {
  fn(stmt);
  switch (stmt.kind) {
    case StmtKind::kIf: {
      const auto& s = As<frontend::IfStmt>(stmt);
      WalkStmts(*s.then_stmt, fn);
      if (s.else_stmt != nullptr) WalkStmts(*s.else_stmt, fn);
      break;
    }
    case StmtKind::kFor: {
      const auto& s = As<frontend::ForStmt>(stmt);
      if (s.init != nullptr) WalkStmts(*s.init, fn);
      if (s.step != nullptr) WalkStmts(*s.step, fn);
      WalkStmts(*s.body, fn);
      break;
    }
    case StmtKind::kWhile:
      WalkStmts(*As<frontend::WhileStmt>(stmt).body, fn);
      break;
    case StmtKind::kCompound:
      for (const auto& child : As<frontend::CompoundStmt>(stmt).body) {
        WalkStmts(*child, fn);
      }
      break;
    default:
      break;
  }
}

void ForEachExprInStmt(const Stmt& stmt,
                       const std::function<void(const Expr&)>& fn) {
  switch (stmt.kind) {
    case StmtKind::kDecl:
      if (As<frontend::DeclStmt>(stmt).init != nullptr) {
        WalkExprs(*As<frontend::DeclStmt>(stmt).init, fn);
      }
      break;
    case StmtKind::kAssign:
      WalkExprs(*As<frontend::AssignStmt>(stmt).target, fn);
      WalkExprs(*As<frontend::AssignStmt>(stmt).value, fn);
      break;
    case StmtKind::kExpr:
      WalkExprs(*As<frontend::ExprStmt>(stmt).expr, fn);
      break;
    case StmtKind::kIf:
      WalkExprs(*As<frontend::IfStmt>(stmt).cond, fn);
      break;
    case StmtKind::kFor:
      if (As<frontend::ForStmt>(stmt).cond != nullptr) {
        WalkExprs(*As<frontend::ForStmt>(stmt).cond, fn);
      }
      break;
    case StmtKind::kWhile:
      WalkExprs(*As<frontend::WhileStmt>(stmt).cond, fn);
      break;
    case StmtKind::kReturn:
      if (As<frontend::ReturnStmt>(stmt).value != nullptr) {
        WalkExprs(*As<frontend::ReturnStmt>(stmt).value, fn);
      }
      break;
    default:
      break;
  }
}

// --- canonical loop form ----------------------------------------------------

struct CanonicalLoop {
  const VarDecl* induction = nullptr;
  const Expr* lower = nullptr;
  const Expr* upper = nullptr;
  bool inclusive = false;
};

CanonicalLoop ExtractCanonicalLoop(const ForStmt& loop) {
  CanonicalLoop canonical;
  // init:  int i = lo   or   i = lo
  if (loop.init == nullptr) {
    Fail(loop.loc, "parallel loop must initialize its induction variable");
  }
  const Expr* lower = nullptr;
  if (loop.init->kind == StmtKind::kDecl) {
    const auto& decl = As<frontend::DeclStmt>(*loop.init);
    if (decl.init == nullptr) {
      Fail(loop.loc, "parallel loop induction variable lacks an initializer");
    }
    canonical.induction = decl.decl.get();
    lower = decl.init.get();
  } else if (loop.init->kind == StmtKind::kAssign) {
    const auto& assign = As<frontend::AssignStmt>(*loop.init);
    if (assign.target->kind != ExprKind::kVarRef ||
        assign.op != frontend::AssignOp::kAssign) {
      Fail(loop.loc, "unsupported parallel loop initialization");
    }
    canonical.induction = As<frontend::VarRef>(*assign.target).decl;
    lower = assign.value.get();
  } else {
    Fail(loop.loc, "unsupported parallel loop initialization");
  }
  canonical.lower = lower;

  // cond:  i < ub  or  i <= ub
  if (loop.cond == nullptr || loop.cond->kind != ExprKind::kBinary) {
    Fail(loop.loc, "parallel loop condition must be i < bound or i <= bound");
  }
  const auto& cond = As<frontend::BinaryExpr>(*loop.cond);
  if ((cond.op != frontend::BinaryOp::kLt &&
       cond.op != frontend::BinaryOp::kLe) ||
      cond.lhs->kind != ExprKind::kVarRef ||
      As<frontend::VarRef>(*cond.lhs).decl != canonical.induction) {
    Fail(loop.loc, "parallel loop condition must be i < bound or i <= bound");
  }
  canonical.upper = cond.rhs.get();
  canonical.inclusive = cond.op == frontend::BinaryOp::kLe;

  // step:  i++ / i += 1
  if (loop.step == nullptr || loop.step->kind != StmtKind::kAssign) {
    Fail(loop.loc, "parallel loop step must be i++ or i += 1");
  }
  const auto& step = As<frontend::AssignStmt>(*loop.step);
  bool ok = step.target->kind == ExprKind::kVarRef &&
            As<frontend::VarRef>(*step.target).decl == canonical.induction &&
            step.op == frontend::AssignOp::kAddAssign &&
            step.value->kind == ExprKind::kIntLiteral &&
            As<frontend::IntLiteral>(*step.value).value == 1;
  if (!ok) {
    Fail(loop.loc, "parallel loop step must be i++ or i += 1 (unit stride)");
  }
  return canonical;
}

// --- offload construction ----------------------------------------------------

class FunctionCompiler {
 public:
  FunctionCompiler(const Function& function, const CompileOptions& options)
      : function_(function), options_(options) {}

  CompiledFunction Run() {
    CompiledFunction compiled;
    compiled.function = &function_;
    VisitStmt(*function_.body, /*region=*/nullptr, compiled);
    return compiled;
  }

 private:
  /// Walks host-level statements looking for offloadable loops. `region`
  /// carries an enclosing `parallel`/`kernels` region directive whose
  /// clauses apply to contained `loop` directives.
  void VisitStmt(const Stmt& stmt, const Directive* region,
                 CompiledFunction& compiled) {
    const Directive* parallel =
        stmt.FindDirective(DirectiveKind::kParallel);
    if (parallel == nullptr) {
      parallel = stmt.FindDirective(DirectiveKind::kKernels);
    }
    const Directive* loop_directive =
        stmt.FindDirective(DirectiveKind::kLoop);

    if (stmt.kind == StmtKind::kFor &&
        (parallel != nullptr || loop_directive != nullptr ||
         (region != nullptr && loop_directive != nullptr))) {
      // An offloadable parallel loop. Combined form (`parallel loop` on the
      // for) or a `loop` directive inside a parallel region.
      if (parallel == nullptr && region == nullptr) {
        Fail(stmt.loc, "#pragma acc loop outside of a parallel region");
      }
      BuildOffload(As<ForStmt>(stmt), parallel != nullptr ? parallel : region,
                   loop_directive, compiled);
      return;
    }

    if (parallel != nullptr && stmt.kind == StmtKind::kCompound) {
      // `#pragma acc parallel { ... #pragma acc loop for(...) ... }`.
      for (const auto& child : As<frontend::CompoundStmt>(stmt).body) {
        VisitStmt(*child, parallel, compiled);
      }
      return;
    }

    switch (stmt.kind) {
      case StmtKind::kIf: {
        const auto& s = As<frontend::IfStmt>(stmt);
        VisitStmt(*s.then_stmt, region, compiled);
        if (s.else_stmt != nullptr) VisitStmt(*s.else_stmt, region, compiled);
        break;
      }
      case StmtKind::kFor:
        VisitStmt(*As<ForStmt>(stmt).body, region, compiled);
        break;
      case StmtKind::kWhile:
        VisitStmt(*As<frontend::WhileStmt>(stmt).body, region, compiled);
        break;
      case StmtKind::kCompound:
        for (const auto& child : As<frontend::CompoundStmt>(stmt).body) {
          VisitStmt(*child, region, compiled);
        }
        break;
      default:
        break;
    }
  }

  void BuildOffload(const ForStmt& loop, const Directive* parallel,
                    const Directive* loop_directive,
                    CompiledFunction& compiled) {
    LoopOffload offload;
    offload.id = static_cast<int>(compiled.offloads.size());
    offload.name =
        function_.name + "_kernel" + std::to_string(offload.id);
    offload.loop = &loop;

    const CanonicalLoop canonical = ExtractCanonicalLoop(loop);
    offload.induction = canonical.induction;
    offload.lower_bound = canonical.lower;
    offload.upper_bound = canonical.upper;
    offload.upper_inclusive = canonical.inclusive;

    // --- gather directives that apply to this loop ---
    std::vector<const Directive*> applicable;
    if (parallel != nullptr) applicable.push_back(parallel);
    if (loop_directive != nullptr && loop_directive != parallel) {
      applicable.push_back(loop_directive);
    }
    const Directive* local_access_directive =
        loop.FindDirective(DirectiveKind::kLocalAccess);

    // --- body analysis: arrays, scalars, locals, reductions ---
    std::unordered_set<int> declared_inside;
    declared_inside.insert(offload.induction->id);
    WalkStmts(*loop.body, [&](const Stmt& s) {
      if (s.kind == StmtKind::kDecl) {
        declared_inside.insert(As<frontend::DeclStmt>(s).decl->id);
      }
      if (s.kind == StmtKind::kFor &&
          As<ForStmt>(s).init != nullptr &&
          As<ForStmt>(s).init->kind == StmtKind::kDecl) {
        declared_inside.insert(
            As<frontend::DeclStmt>(*As<ForStmt>(s).init).decl->id);
      }
    });

    std::vector<const VarDecl*> array_order;
    std::vector<const VarDecl*> scalar_order;
    std::unordered_set<int> seen_arrays;
    std::unordered_set<int> seen_scalars;
    std::unordered_set<int> written_arrays;
    std::unordered_set<int> read_arrays;
    std::unordered_set<int> written_scalars;

    auto note_expr = [&](const Expr& e) {
      if (e.kind != ExprKind::kVarRef) return;
      const auto& ref = As<frontend::VarRef>(e);
      ACCMG_CHECK(ref.decl != nullptr, "unresolved reference in offload body");
      if (ref.decl->type.is_pointer) {
        if (seen_arrays.insert(ref.decl->id).second) {
          array_order.push_back(ref.decl);
        }
      } else if (!declared_inside.contains(ref.decl->id)) {
        if (seen_scalars.insert(ref.decl->id).second) {
          scalar_order.push_back(ref.decl);
        }
      }
    };
    WalkStmts(*loop.body, [&](const Stmt& s) {
      ForEachExprInStmt(s, note_expr);
      if (s.kind == StmtKind::kAssign) {
        const auto& assign = As<frontend::AssignStmt>(s);
        if (assign.target->kind == ExprKind::kSubscript) {
          const auto& base = As<frontend::VarRef>(
              *As<frontend::SubscriptExpr>(*assign.target).base);
          written_arrays.insert(base.decl->id);
          if (assign.op != frontend::AssignOp::kAssign) {
            read_arrays.insert(base.decl->id);
          }
        } else if (assign.target->kind == ExprKind::kVarRef) {
          const auto& ref = As<frontend::VarRef>(*assign.target);
          if (!declared_inside.contains(ref.decl->id)) {
            written_scalars.insert(ref.decl->id);
          }
        }
      }
    });
    // Reads: any subscript appearing outside a store-target position. A
    // conservative approximation — mark arrays read when they occur in any
    // non-target subscript.
    WalkStmts(*loop.body, [&](const Stmt& s) {
      auto note_reads = [&](const Expr& e) {
        WalkExprs(e, [&](const Expr& inner) {
          if (inner.kind == ExprKind::kSubscript) {
            const auto& base = As<frontend::VarRef>(
                *As<frontend::SubscriptExpr>(inner).base);
            read_arrays.insert(base.decl->id);
          }
        });
      };
      switch (s.kind) {
        case StmtKind::kDecl:
          if (As<frontend::DeclStmt>(s).init != nullptr) {
            note_reads(*As<frontend::DeclStmt>(s).init);
          }
          break;
        case StmtKind::kAssign: {
          const auto& assign = As<frontend::AssignStmt>(s);
          note_reads(*assign.value);
          if (assign.target->kind == ExprKind::kSubscript) {
            // The index expression of the target is a read context.
            note_reads(*As<frontend::SubscriptExpr>(*assign.target).index);
          }
          break;
        }
        case StmtKind::kExpr:
          note_reads(*As<frontend::ExprStmt>(s).expr);
          break;
        case StmtKind::kIf:
          note_reads(*As<frontend::IfStmt>(s).cond);
          break;
        case StmtKind::kFor:
          if (As<ForStmt>(s).cond != nullptr) {
            note_reads(*As<ForStmt>(s).cond);
          }
          break;
        case StmtKind::kWhile:
          note_reads(*As<frontend::WhileStmt>(s).cond);
          break;
        default:
          break;
      }
    });

    // --- reductions ---
    for (const Directive* d : applicable) {
      for (const auto& clause : d->reductions) {
        for (const auto& var : clause.vars) {
          const VarDecl* decl = nullptr;
          for (const VarDecl* s : scalar_order) {
            if (s->name == var) decl = s;
          }
          if (decl == nullptr) {
            // The reduction variable may not be read in the body at all
            // (accumulate-only); look it up among written scalars via the
            // function's parameters and enclosing decls is handled by sema,
            // so simply skip silently if unused.
            continue;
          }
          ScalarRedTarget target;
          target.decl = decl;
          target.op = ToRedOp(clause.op);
          offload.scalar_reds.push_back(target);
          // Reduction variables are not scalar params.
          scalar_order.erase(
              std::remove(scalar_order.begin(), scalar_order.end(), decl),
              scalar_order.end());
          written_scalars.erase(decl->id);
        }
      }
    }

    // reductiontoarray specs attached to inner statements.
    WalkStmts(*loop.body, [&](const Stmt& s) {
      const Directive* d =
          s.FindDirective(DirectiveKind::kReductionToArray);
      if (d == nullptr) return;
      const auto& spec = *d->reduction_to_array;
      const VarDecl* decl = nullptr;
      for (const VarDecl* a : array_order) {
        if (a->name == spec.array) decl = a;
      }
      if (decl == nullptr) {
        Fail(spec.loc, "reductiontoarray names array '" + spec.array +
                           "' which is not used in the loop");
      }
      for (const auto& existing : offload.array_reds) {
        if (existing.decl == decl) return;  // same destination annotated twice
      }
      ArrayRedTarget target;
      target.decl = decl;
      target.op = ToRedOp(spec.op);
      target.lower = spec.lower.get();
      target.length = spec.length.get();
      offload.array_reds.push_back(target);
    });

    if (!written_scalars.empty()) {
      for (const VarDecl* s : scalar_order) {
        if (written_scalars.contains(s->id)) {
          Fail(loop.loc,
               "scalar '" + s->name +
                   "' is written inside the parallel loop but is not a "
                   "reduction variable; declare it inside the loop body");
        }
      }
    }

    // --- array configs ---
    for (const VarDecl* decl : array_order) {
      ArrayConfig config;
      config.decl = decl;
      config.name = decl->name;
      config.elem = ToValType(decl->type.scalar);
      config.is_read = read_arrays.contains(decl->id);
      config.is_written = written_arrays.contains(decl->id);
      for (const auto& red : offload.array_reds) {
        if (red.decl == decl) {
          config.is_reduction_dest = true;
          config.is_written = true;
        }
      }
      if (local_access_directive != nullptr) {
        for (const auto& spec : local_access_directive->local_access) {
          if (spec.array == decl->name) {
            config.has_localaccess = true;
            config.stride = spec.stride.get();
            config.cols = spec.cols.get();
            config.left = spec.left.get();
            config.right = spec.right.get();
          }
        }
      }
      offload.arrays.push_back(config);
    }

    // --- affine write summaries + write-locality proof (Section IV-D2) ---
    // First summarize every write site of each array as a*i + b with one
    // common coefficient (persisted in ArrayConfig for the runtime's
    // boundary/interior splitter), then derive the locality proof that
    // eliminates the miss check from the summary.
    for (auto& config : offload.arrays) {
      if (!config.is_written || config.is_reduction_dest) continue;

      bool all_affine = true;
      bool any_write_site = false;
      bool saw_affine = false;
      std::int64_t coeff = 0, min_off = 0, max_off = 0;
      WalkStmts(*loop.body, [&](const Stmt& s) {
        if (s.kind != StmtKind::kAssign) return;
        const auto& assign = As<frontend::AssignStmt>(s);
        if (assign.target->kind != ExprKind::kSubscript) return;
        const auto& subscript =
            As<frontend::SubscriptExpr>(*assign.target);
        if (subscript.base->kind != ExprKind::kVarRef) return;
        if (As<frontend::VarRef>(*subscript.base).decl != config.decl) return;
        any_write_site = true;
        std::int64_t a, b;
        if (!MatchAffine(*subscript.index, *offload.induction, &a, &b)) {
          all_affine = false;
          return;
        }
        if (!saw_affine) {
          coeff = a;
          min_off = max_off = b;
          saw_affine = true;
        } else if (a != coeff) {
          all_affine = false;
        } else {
          min_off = std::min(min_off, b);
          max_off = std::max(max_off, b);
        }
      });
      if (all_affine && saw_affine) {
        config.has_affine_writes = true;
        config.write_coeff = coeff;
        config.write_min_off = min_off;
        config.write_max_off = max_off;
      }

      if (!config.has_localaccess) continue;
      if (config.cols != nullptr) {
        // 2-D row-block window: index = i*cols + j has no constant
        // coefficient for the affine matcher, so prove row locality
        // symbolically (index - cols*i within [0, cols-1]) with the
        // directive checker's polynomial machinery.
        config.writes_proven_local =
            any_write_site && ProveWritesRowLocal(offload, config);
        continue;
      }
      std::int64_t stride = 1, left = 0, right = 0;
      bool const_spec = true;
      if (config.stride != nullptr) {
        const_spec &= TryFoldConstant(*config.stride, &stride);
      }
      if (config.left != nullptr) {
        const_spec &= TryFoldConstant(*config.left, &left);
      }
      if (config.right != nullptr) {
        const_spec &= TryFoldConstant(*config.right, &right);
      }
      if (!const_spec) continue;
      // A write site the walk could not resolve to a subscript on this array
      // (or could not bound affinely) blocks the proof; only arrays whose
      // every store is a bounded affine subscript inside the localaccess
      // window are proven local.
      config.writes_proven_local =
          any_write_site && config.has_affine_writes && coeff == stride &&
          min_off >= -left && max_off <= stride - 1 + right;
    }

    // --- affine read summaries ---
    // The read-side twin of the write summary, consumed by the mid-end
    // fusion legality analysis: every read index of the array (including
    // compound-assignment targets, which load before storing) as a*i + b
    // with one common coefficient.
    for (auto& config : offload.arrays) {
      if (!config.is_read) continue;
      bool all_affine = true;
      bool saw_affine = false;
      std::int64_t coeff = 0, min_off = 0, max_off = 0;
      auto note_read_index = [&](const Expr& index) {
        std::int64_t a, b;
        if (!MatchAffine(index, *offload.induction, &a, &b)) {
          all_affine = false;
          return;
        }
        if (!saw_affine) {
          coeff = a;
          min_off = max_off = b;
          saw_affine = true;
        } else if (a != coeff) {
          all_affine = false;
        } else {
          min_off = std::min(min_off, b);
          max_off = std::max(max_off, b);
        }
      };
      auto note_reads_in = [&](const Expr& e) {
        WalkExprs(e, [&](const Expr& inner) {
          if (inner.kind != ExprKind::kSubscript) return;
          const auto& sub = As<frontend::SubscriptExpr>(inner);
          if (sub.base->kind != ExprKind::kVarRef) return;
          if (As<frontend::VarRef>(*sub.base).decl != config.decl) return;
          note_read_index(*sub.index);
        });
      };
      WalkStmts(*loop.body, [&](const Stmt& s) {
        switch (s.kind) {
          case StmtKind::kDecl:
            if (As<frontend::DeclStmt>(s).init != nullptr) {
              note_reads_in(*As<frontend::DeclStmt>(s).init);
            }
            break;
          case StmtKind::kAssign: {
            const auto& assign = As<frontend::AssignStmt>(s);
            note_reads_in(*assign.value);
            if (assign.target->kind == ExprKind::kSubscript) {
              const auto& sub =
                  As<frontend::SubscriptExpr>(*assign.target);
              note_reads_in(*sub.index);
              if (assign.op != frontend::AssignOp::kAssign &&
                  sub.base->kind == ExprKind::kVarRef &&
                  As<frontend::VarRef>(*sub.base).decl == config.decl) {
                note_read_index(*sub.index);
              }
            }
            break;
          }
          case StmtKind::kExpr:
            note_reads_in(*As<frontend::ExprStmt>(s).expr);
            break;
          case StmtKind::kIf:
            note_reads_in(*As<frontend::IfStmt>(s).cond);
            break;
          case StmtKind::kFor:
            if (As<ForStmt>(s).cond != nullptr) {
              note_reads_in(*As<ForStmt>(s).cond);
            }
            break;
          case StmtKind::kWhile:
            note_reads_in(*As<frontend::WhileStmt>(s).cond);
            break;
          default:
            break;
        }
      });
      if (all_affine && saw_affine) {
        config.has_affine_reads = true;
        config.read_coeff = coeff;
        config.read_min_off = min_off;
        config.read_max_off = max_off;
      }
    }

    for (const VarDecl* decl : scalar_order) {
      ScalarArg arg;
      arg.decl = decl;
      offload.scalars.push_back(arg);
    }

    // --- lower to IR ---
    compiled.offloads.push_back(std::move(offload));
    KernelLowering lowering(compiled.offloads.back());
    lowering.Lower();
    compiled.offload_of_stmt[&loop] =
        static_cast<int>(compiled.offloads.size()) - 1;

    if (options_.check_directives) {
      CheckOffloadDirectives(compiled.offloads.back(), local_access_directive);
    }
  }

  const Function& function_;
  const CompileOptions& options_;
};

}  // namespace

bool ExprStructurallyEqual(const Expr& x, const Expr& y) {
  if (x.kind != y.kind) return false;
  switch (x.kind) {
    case ExprKind::kIntLiteral:
      return As<frontend::IntLiteral>(x).value ==
             As<frontend::IntLiteral>(y).value;
    case ExprKind::kFloatLiteral:
      return As<frontend::FloatLiteral>(x).value ==
             As<frontend::FloatLiteral>(y).value;
    case ExprKind::kVarRef:
      return As<frontend::VarRef>(x).decl == As<frontend::VarRef>(y).decl;
    case ExprKind::kSubscript:
      return ExprStructurallyEqual(*As<frontend::SubscriptExpr>(x).base,
                                   *As<frontend::SubscriptExpr>(y).base) &&
             ExprStructurallyEqual(*As<frontend::SubscriptExpr>(x).index,
                                   *As<frontend::SubscriptExpr>(y).index);
    case ExprKind::kUnary:
      return As<frontend::UnaryExpr>(x).op == As<frontend::UnaryExpr>(y).op &&
             ExprStructurallyEqual(*As<frontend::UnaryExpr>(x).operand,
                                   *As<frontend::UnaryExpr>(y).operand);
    case ExprKind::kBinary:
      return As<frontend::BinaryExpr>(x).op ==
                 As<frontend::BinaryExpr>(y).op &&
             ExprStructurallyEqual(*As<frontend::BinaryExpr>(x).lhs,
                                   *As<frontend::BinaryExpr>(y).lhs) &&
             ExprStructurallyEqual(*As<frontend::BinaryExpr>(x).rhs,
                                   *As<frontend::BinaryExpr>(y).rhs);
    default:
      return false;
  }
}

bool MatchAffine(const Expr& expr, const VarDecl& induction, std::int64_t* a,
                 std::int64_t* b) {
  switch (expr.kind) {
    case ExprKind::kIntLiteral:
      *a = 0;
      *b = As<frontend::IntLiteral>(expr).value;
      return true;
    case ExprKind::kVarRef:
      if (As<frontend::VarRef>(expr).decl == &induction) {
        *a = 1;
        *b = 0;
        return true;
      }
      return false;
    case ExprKind::kCast:
      return MatchAffine(*As<frontend::CastExpr>(expr).operand, induction, a,
                         b);
    case ExprKind::kUnary: {
      const auto& unary = As<frontend::UnaryExpr>(expr);
      std::int64_t ia, ib;
      if (unary.op == frontend::UnaryOp::kNeg &&
          MatchAffine(*unary.operand, induction, &ia, &ib)) {
        *a = -ia;
        *b = -ib;
        return true;
      }
      return false;
    }
    case ExprKind::kBinary: {
      const auto& binary = As<frontend::BinaryExpr>(expr);
      std::int64_t la, lb, ra, rb;
      const bool lhs_ok = MatchAffine(*binary.lhs, induction, &la, &lb);
      const bool rhs_ok = MatchAffine(*binary.rhs, induction, &ra, &rb);
      if (!lhs_ok || !rhs_ok) return false;
      switch (binary.op) {
        case frontend::BinaryOp::kAdd:
          *a = la + ra;
          *b = lb + rb;
          return true;
        case frontend::BinaryOp::kSub:
          *a = la - ra;
          *b = lb - rb;
          return true;
        case frontend::BinaryOp::kMul:
          // One side must be a pure constant for the result to stay affine.
          if (la == 0) {
            *a = lb * ra;
            *b = lb * rb;
            return true;
          }
          if (ra == 0) {
            *a = la * rb;
            *b = lb * rb;
            return true;
          }
          return false;
        default:
          return false;
      }
    }
    default:
      return false;
  }
}

CompiledProgram Compile(const frontend::Program& program) {
  return Compile(program, CompileOptions{});
}

CompiledProgram Compile(const frontend::Program& program,
                        const CompileOptions& options) {
  CompiledProgram compiled;
  compiled.program = &program;
  for (const auto& function : program.functions) {
    FunctionCompiler compiler(*function, options);
    compiled.functions.push_back(compiler.Run());
    if (options.opt_level > 0) {
      OptimizeFunction(compiled.functions.back(), options);
    }
  }
  return compiled;
}

}  // namespace accmg::translator
