#include "translator/eval.h"

#include <bit>
#include <cmath>
#include <cstring>

#include "common/error.h"
#include "translator/type_map.h"

namespace accmg::translator {

using frontend::As;
using frontend::Expr;
using frontend::ExprKind;

namespace {

inline double RawToDouble(std::uint64_t raw) {
  return std::bit_cast<double>(raw);
}
inline std::uint64_t DoubleToRaw(double v) {
  return std::bit_cast<std::uint64_t>(v);
}

}  // namespace

std::int64_t TypedValue::AsInt() const {
  if (ir::IsFloat(type)) {
    return static_cast<std::int64_t>(RawToDouble(raw));
  }
  return static_cast<std::int64_t>(raw);
}

double TypedValue::AsDouble() const {
  if (ir::IsFloat(type)) return RawToDouble(raw);
  return static_cast<double>(static_cast<std::int64_t>(raw));
}

TypedValue TypedValue::OfInt(std::int64_t v, ir::ValType t) {
  TypedValue value;
  value.type = t;
  if (t == ir::ValType::kI32) v = static_cast<std::int32_t>(v);
  value.raw = static_cast<std::uint64_t>(v);
  return value;
}

TypedValue TypedValue::OfDouble(double v, ir::ValType t) {
  TypedValue value;
  value.type = t;
  if (t == ir::ValType::kF32) v = static_cast<float>(v);
  value.raw = DoubleToRaw(v);
  return value;
}

void HostEnv::SetScalar(const frontend::VarDecl& decl, TypedValue value) {
  scalars_[decl.id] = value;
}

TypedValue HostEnv::GetScalar(const frontend::VarDecl& decl) const {
  auto it = scalars_.find(decl.id);
  ACCMG_REQUIRE(it != scalars_.end(),
                "unbound scalar '" + decl.name + "' in host evaluation");
  return it->second;
}

bool HostEnv::HasScalar(const frontend::VarDecl& decl) const {
  return scalars_.contains(decl.id);
}

void HostEnv::BindArray(const frontend::VarDecl& decl, HostArray array) {
  arrays_[decl.id] = array;
}

const HostArray& HostEnv::GetArray(const frontend::VarDecl& decl) const {
  auto it = arrays_.find(decl.id);
  ACCMG_REQUIRE(it != arrays_.end(),
                "unbound array '" + decl.name + "' in host evaluation");
  return it->second;
}

bool HostEnv::HasArray(const frontend::VarDecl& decl) const {
  return arrays_.contains(decl.id);
}

namespace {

TypedValue ReadHostElement(const HostArray& array, std::int64_t index,
                           const std::string& name) {
  ACCMG_REQUIRE(index >= 0 && index < array.count,
                "host read out of range: " + name + "[" +
                    std::to_string(index) + "], extent " +
                    std::to_string(array.count));
  const std::byte* base = static_cast<const std::byte*>(array.data);
  switch (array.elem) {
    case ir::ValType::kI32: {
      std::int32_t v;
      std::memcpy(&v, base + index * 4, 4);
      return TypedValue::OfInt(v, ir::ValType::kI32);
    }
    case ir::ValType::kI64: {
      std::int64_t v;
      std::memcpy(&v, base + index * 8, 8);
      return TypedValue::OfInt(v, ir::ValType::kI64);
    }
    case ir::ValType::kF32: {
      float v;
      std::memcpy(&v, base + index * 4, 4);
      return TypedValue::OfDouble(v, ir::ValType::kF32);
    }
    case ir::ValType::kF64: {
      double v;
      std::memcpy(&v, base + index * 8, 8);
      return TypedValue::OfDouble(v, ir::ValType::kF64);
    }
  }
  ACCMG_UNREACHABLE("bad element type");
}

TypedValue ApplyBinary(frontend::BinaryOp op, const TypedValue& lhs,
                       const TypedValue& rhs, ir::ValType result_type) {
  using frontend::BinaryOp;
  const bool float_op =
      ir::IsFloat(lhs.type) || ir::IsFloat(rhs.type);
  switch (op) {
    case BinaryOp::kAdd:
    case BinaryOp::kSub:
    case BinaryOp::kMul:
    case BinaryOp::kDiv: {
      if (float_op) {
        const double x = lhs.AsDouble();
        const double y = rhs.AsDouble();
        double r = 0;
        if (op == BinaryOp::kAdd) r = x + y;
        if (op == BinaryOp::kSub) r = x - y;
        if (op == BinaryOp::kMul) r = x * y;
        if (op == BinaryOp::kDiv) r = x / y;
        return TypedValue::OfDouble(r, result_type);
      }
      const std::int64_t x = lhs.AsInt();
      const std::int64_t y = rhs.AsInt();
      std::int64_t r = 0;
      if (op == BinaryOp::kAdd) r = x + y;
      if (op == BinaryOp::kSub) r = x - y;
      if (op == BinaryOp::kMul) r = x * y;
      if (op == BinaryOp::kDiv) {
        ACCMG_REQUIRE(y != 0, "host integer division by zero");
        r = x / y;
      }
      return TypedValue::OfInt(r, result_type);
    }
    case BinaryOp::kMod: {
      const std::int64_t y = rhs.AsInt();
      ACCMG_REQUIRE(y != 0, "host integer modulo by zero");
      return TypedValue::OfInt(lhs.AsInt() % y, result_type);
    }
    case BinaryOp::kLt:
    case BinaryOp::kLe:
    case BinaryOp::kGt:
    case BinaryOp::kGe:
    case BinaryOp::kEq:
    case BinaryOp::kNe: {
      bool r = false;
      if (float_op) {
        const double x = lhs.AsDouble();
        const double y = rhs.AsDouble();
        if (op == BinaryOp::kLt) r = x < y;
        if (op == BinaryOp::kLe) r = x <= y;
        if (op == BinaryOp::kGt) r = x > y;
        if (op == BinaryOp::kGe) r = x >= y;
        if (op == BinaryOp::kEq) r = x == y;
        if (op == BinaryOp::kNe) r = x != y;
      } else {
        const std::int64_t x = lhs.AsInt();
        const std::int64_t y = rhs.AsInt();
        if (op == BinaryOp::kLt) r = x < y;
        if (op == BinaryOp::kLe) r = x <= y;
        if (op == BinaryOp::kGt) r = x > y;
        if (op == BinaryOp::kGe) r = x >= y;
        if (op == BinaryOp::kEq) r = x == y;
        if (op == BinaryOp::kNe) r = x != y;
      }
      return TypedValue::OfInt(r ? 1 : 0, ir::ValType::kI32);
    }
    case BinaryOp::kLogicalAnd:
      return TypedValue::OfInt(
          (lhs.AsInt() != 0 && rhs.AsInt() != 0) ? 1 : 0, ir::ValType::kI32);
    case BinaryOp::kLogicalOr:
      return TypedValue::OfInt(
          (lhs.AsInt() != 0 || rhs.AsInt() != 0) ? 1 : 0, ir::ValType::kI32);
    case BinaryOp::kBitAnd:
      return TypedValue::OfInt(lhs.AsInt() & rhs.AsInt(), result_type);
    case BinaryOp::kBitOr:
      return TypedValue::OfInt(lhs.AsInt() | rhs.AsInt(), result_type);
    case BinaryOp::kBitXor:
      return TypedValue::OfInt(lhs.AsInt() ^ rhs.AsInt(), result_type);
    case BinaryOp::kShl:
      return TypedValue::OfInt(lhs.AsInt() << (rhs.AsInt() & 63), result_type);
    case BinaryOp::kShr:
      return TypedValue::OfInt(lhs.AsInt() >> (rhs.AsInt() & 63), result_type);
  }
  ACCMG_UNREACHABLE("bad binary op");
}

}  // namespace

TypedValue EvalHostExpr(const Expr& expr, const HostEnv& env) {
  switch (expr.kind) {
    case ExprKind::kIntLiteral:
      return TypedValue::OfInt(As<frontend::IntLiteral>(expr).value,
                               ToValType(expr.type.scalar));
    case ExprKind::kFloatLiteral:
      return TypedValue::OfDouble(As<frontend::FloatLiteral>(expr).value,
                                  ToValType(expr.type.scalar));
    case ExprKind::kVarRef: {
      const auto& ref = As<frontend::VarRef>(expr);
      ACCMG_CHECK(ref.decl != nullptr, "unresolved VarRef in host eval");
      ACCMG_REQUIRE(!ref.decl->type.is_pointer,
                    "array '" + ref.name + "' used as a scalar value");
      return env.GetScalar(*ref.decl);
    }
    case ExprKind::kSubscript: {
      const auto& subscript = As<frontend::SubscriptExpr>(expr);
      const auto& base = As<frontend::VarRef>(*subscript.base);
      ACCMG_CHECK(base.decl != nullptr, "unresolved array in host eval");
      const HostArray& array = env.GetArray(*base.decl);
      const std::int64_t index =
          EvalHostExpr(*subscript.index, env).AsInt();
      return ReadHostElement(array, index, base.name);
    }
    case ExprKind::kUnary: {
      const auto& unary = As<frontend::UnaryExpr>(expr);
      const TypedValue operand = EvalHostExpr(*unary.operand, env);
      switch (unary.op) {
        case frontend::UnaryOp::kNeg:
          if (ir::IsFloat(operand.type)) {
            return TypedValue::OfDouble(-operand.AsDouble(),
                                        ToValType(expr.type.scalar));
          }
          return TypedValue::OfInt(-operand.AsInt(),
                                   ToValType(expr.type.scalar));
        case frontend::UnaryOp::kNot:
          return TypedValue::OfInt(operand.AsInt() == 0 ? 1 : 0,
                                   ir::ValType::kI32);
        case frontend::UnaryOp::kBitNot:
          return TypedValue::OfInt(~operand.AsInt(),
                                   ToValType(expr.type.scalar));
      }
      ACCMG_UNREACHABLE("bad unary op");
    }
    case ExprKind::kBinary: {
      const auto& binary = As<frontend::BinaryExpr>(expr);
      // Short-circuit for logical operators.
      if (binary.op == frontend::BinaryOp::kLogicalAnd) {
        if (EvalHostExpr(*binary.lhs, env).AsInt() == 0) {
          return TypedValue::OfInt(0, ir::ValType::kI32);
        }
        return TypedValue::OfInt(
            EvalHostExpr(*binary.rhs, env).AsInt() != 0 ? 1 : 0,
            ir::ValType::kI32);
      }
      if (binary.op == frontend::BinaryOp::kLogicalOr) {
        if (EvalHostExpr(*binary.lhs, env).AsInt() != 0) {
          return TypedValue::OfInt(1, ir::ValType::kI32);
        }
        return TypedValue::OfInt(
            EvalHostExpr(*binary.rhs, env).AsInt() != 0 ? 1 : 0,
            ir::ValType::kI32);
      }
      const TypedValue lhs = EvalHostExpr(*binary.lhs, env);
      const TypedValue rhs = EvalHostExpr(*binary.rhs, env);
      return ApplyBinary(binary.op, lhs, rhs, ToValType(expr.type.scalar));
    }
    case ExprKind::kCall: {
      const auto& call = As<frontend::CallExpr>(expr);
      std::vector<TypedValue> args;
      args.reserve(call.args.size());
      for (const auto& arg : call.args) {
        args.push_back(EvalHostExpr(*arg, env));
      }
      const ir::ValType rt = ToValType(expr.type.scalar);
      using frontend::Builtin;
      switch (call.builtin) {
        case Builtin::kSqrt:
          return TypedValue::OfDouble(std::sqrt(args[0].AsDouble()), rt);
        case Builtin::kFabs:
          return TypedValue::OfDouble(std::fabs(args[0].AsDouble()), rt);
        case Builtin::kExp:
          return TypedValue::OfDouble(std::exp(args[0].AsDouble()), rt);
        case Builtin::kLog:
          return TypedValue::OfDouble(std::log(args[0].AsDouble()), rt);
        case Builtin::kPow:
          return TypedValue::OfDouble(
              std::pow(args[0].AsDouble(), args[1].AsDouble()), rt);
        case Builtin::kFmin:
          return TypedValue::OfDouble(
              std::fmin(args[0].AsDouble(), args[1].AsDouble()), rt);
        case Builtin::kFmax:
          return TypedValue::OfDouble(
              std::fmax(args[0].AsDouble(), args[1].AsDouble()), rt);
        case Builtin::kFloor:
          return TypedValue::OfDouble(std::floor(args[0].AsDouble()), rt);
        case Builtin::kCeil:
          return TypedValue::OfDouble(std::ceil(args[0].AsDouble()), rt);
        case Builtin::kAbs:
          return TypedValue::OfInt(std::llabs(args[0].AsInt()), rt);
        case Builtin::kMin:
          return TypedValue::OfInt(
              std::min(args[0].AsInt(), args[1].AsInt()), rt);
        case Builtin::kMax:
          return TypedValue::OfInt(
              std::max(args[0].AsInt(), args[1].AsInt()), rt);
      }
      ACCMG_UNREACHABLE("bad builtin");
    }
    case ExprKind::kCast: {
      const auto& cast = As<frontend::CastExpr>(expr);
      const TypedValue operand = EvalHostExpr(*cast.operand, env);
      const ir::ValType target = ToValType(cast.target.scalar);
      if (ir::IsFloat(target)) {
        return TypedValue::OfDouble(operand.AsDouble(), target);
      }
      return TypedValue::OfInt(
          ir::IsFloat(operand.type)
              ? static_cast<std::int64_t>(operand.AsDouble())
              : operand.AsInt(),
          target);
    }
    case ExprKind::kConditional: {
      const auto& cond = As<frontend::ConditionalExpr>(expr);
      return EvalHostExpr(*cond.cond, env).AsInt() != 0
                 ? EvalHostExpr(*cond.then_expr, env)
                 : EvalHostExpr(*cond.else_expr, env);
    }
  }
  ACCMG_UNREACHABLE("bad expr kind");
}

std::int64_t EvalIndexExpr(const Expr& expr, const HostEnv& env) {
  return EvalHostExpr(expr, env).AsInt();
}

void WriteHostElement(const HostArray& array, std::int64_t index,
                      const TypedValue& value, const std::string& name) {
  ACCMG_REQUIRE(index >= 0 && index < array.count,
                "host write out of range: " + name + "[" +
                    std::to_string(index) + "], extent " +
                    std::to_string(array.count));
  std::byte* base = static_cast<std::byte*>(array.data);
  switch (array.elem) {
    case ir::ValType::kI32: {
      const auto v = static_cast<std::int32_t>(value.AsInt());
      std::memcpy(base + index * 4, &v, 4);
      break;
    }
    case ir::ValType::kI64: {
      const std::int64_t v = value.AsInt();
      std::memcpy(base + index * 8, &v, 8);
      break;
    }
    case ir::ValType::kF32: {
      const auto v = static_cast<float>(value.AsDouble());
      std::memcpy(base + index * 4, &v, 4);
      break;
    }
    case ir::ValType::kF64: {
      const double v = value.AsDouble();
      std::memcpy(base + index * 8, &v, 8);
      break;
    }
  }
}

bool TryFoldConstant(const Expr& expr, std::int64_t* out) {
  switch (expr.kind) {
    case ExprKind::kIntLiteral:
      *out = As<frontend::IntLiteral>(expr).value;
      return true;
    case ExprKind::kUnary: {
      const auto& unary = As<frontend::UnaryExpr>(expr);
      std::int64_t v;
      if (unary.op == frontend::UnaryOp::kNeg &&
          TryFoldConstant(*unary.operand, &v)) {
        *out = -v;
        return true;
      }
      return false;
    }
    case ExprKind::kBinary: {
      const auto& binary = As<frontend::BinaryExpr>(expr);
      std::int64_t a, b;
      if (!TryFoldConstant(*binary.lhs, &a) ||
          !TryFoldConstant(*binary.rhs, &b)) {
        return false;
      }
      switch (binary.op) {
        case frontend::BinaryOp::kAdd: *out = a + b; return true;
        case frontend::BinaryOp::kSub: *out = a - b; return true;
        case frontend::BinaryOp::kMul: *out = a * b; return true;
        case frontend::BinaryOp::kDiv:
          if (b == 0) return false;
          *out = a / b;
          return true;
        default:
          return false;
      }
    }
    default:
      return false;
  }
}

}  // namespace accmg::translator
