#include "translator/opt.h"

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <functional>
#include <map>
#include <set>
#include <string>
#include <tuple>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "common/error.h"
#include "common/metrics.h"
#include "common/trace.h"
#include "translator/eval.h"
#include "translator/lowering.h"

namespace accmg::translator {

using frontend::As;
using frontend::CompoundStmt;
using frontend::DirectiveKind;
using frontend::Expr;
using frontend::ExprKind;
using frontend::Stmt;
using frontend::StmtKind;
using frontend::VarDecl;
using ir::Opcode;

namespace {

// ---------------------------------------------------------------------------
// AST helpers
// ---------------------------------------------------------------------------

void ForEachVarRef(const Expr& e,
                   const std::function<void(const frontend::VarRef&)>& f) {
  switch (e.kind) {
    case ExprKind::kIntLiteral:
    case ExprKind::kFloatLiteral:
      return;
    case ExprKind::kVarRef:
      f(As<frontend::VarRef>(e));
      return;
    case ExprKind::kSubscript: {
      const auto& sub = As<frontend::SubscriptExpr>(e);
      ForEachVarRef(*sub.base, f);
      ForEachVarRef(*sub.index, f);
      return;
    }
    case ExprKind::kUnary:
      ForEachVarRef(*As<frontend::UnaryExpr>(e).operand, f);
      return;
    case ExprKind::kBinary: {
      const auto& bin = As<frontend::BinaryExpr>(e);
      ForEachVarRef(*bin.lhs, f);
      ForEachVarRef(*bin.rhs, f);
      return;
    }
    case ExprKind::kCall:
      for (const auto& arg : As<frontend::CallExpr>(e).args) {
        ForEachVarRef(*arg, f);
      }
      return;
    case ExprKind::kCast:
      ForEachVarRef(*As<frontend::CastExpr>(e).operand, f);
      return;
    case ExprKind::kConditional: {
      const auto& cond = As<frontend::ConditionalExpr>(e);
      ForEachVarRef(*cond.cond, f);
      ForEachVarRef(*cond.then_expr, f);
      ForEachVarRef(*cond.else_expr, f);
      return;
    }
  }
}

bool ExprMentionsAny(const Expr* e,
                     const std::unordered_set<const VarDecl*>& decls) {
  if (e == nullptr || decls.empty()) return false;
  bool hit = false;
  ForEachVarRef(*e, [&](const frontend::VarRef& ref) {
    if (decls.count(ref.decl) != 0) hit = true;
  });
  return hit;
}

void CollectCompounds(const Stmt& stmt,
                      std::vector<const CompoundStmt*>* out) {
  switch (stmt.kind) {
    case StmtKind::kCompound: {
      const auto& compound = As<CompoundStmt>(stmt);
      out->push_back(&compound);
      for (const auto& child : compound.body) CollectCompounds(*child, out);
      return;
    }
    case StmtKind::kIf: {
      const auto& ifs = As<frontend::IfStmt>(stmt);
      CollectCompounds(*ifs.then_stmt, out);
      if (ifs.else_stmt != nullptr) CollectCompounds(*ifs.else_stmt, out);
      return;
    }
    case StmtKind::kFor:
      CollectCompounds(*As<frontend::ForStmt>(stmt).body, out);
      return;
    case StmtKind::kWhile:
      CollectCompounds(*As<frontend::WhileStmt>(stmt).body, out);
      return;
    default:
      return;
  }
}

/// Null-tolerant structural equality for directive sub-expressions, where
/// null means the spec's default value.
bool ExprEqualOrBothNull(const Expr* x, const Expr* y) {
  if (x == nullptr || y == nullptr) return x == y;
  return ExprStructurallyEqual(*x, *y);
}

/// Picks the wider of two halo-window expressions (null = 0) when that is
/// statically decidable: structurally equal, or both constant-foldable.
bool PickWiderWindow(const Expr* x, const Expr* y, const Expr** out) {
  if (ExprEqualOrBothNull(x, y)) {
    *out = x;
    return true;
  }
  std::int64_t xv = 0, yv = 0;
  if (x != nullptr && !TryFoldConstant(*x, &xv)) return false;
  if (y != nullptr && !TryFoldConstant(*y, &yv)) return false;
  *out = (xv >= yv) ? x : y;
  return true;
}

/// Matching localaccess strides: structurally equal or same folded constant.
bool StridesMatch(const Expr* x, const Expr* y) {
  if (ExprEqualOrBothNull(x, y)) return true;
  std::int64_t xv = 1, yv = 1;
  if (x != nullptr && !TryFoldConstant(*x, &xv)) return false;
  if (y != nullptr && !TryFoldConstant(*y, &yv)) return false;
  return xv == yv;
}

/// Host-level directives whose position relative to the loop matters; a
/// candidate carrying any of these cannot be moved into / merged with a
/// neighbouring offload.
bool CarriesHostDirectives(const Stmt& s) {
  return s.HasDirective(DirectiveKind::kData) ||
         s.HasDirective(DirectiveKind::kEnterData) ||
         s.HasDirective(DirectiveKind::kExitData) ||
         s.HasDirective(DirectiveKind::kUpdate);
}

// ---------------------------------------------------------------------------
// Fusion legality
// ---------------------------------------------------------------------------

/// The union of one side's affine read/write offset intervals for a shared
/// array, with their common coefficient.
struct AccessSummary {
  std::int64_t coeff = 0;
  std::int64_t min_off = 0;
  std::int64_t max_off = 0;
};

bool SummarizeAccesses(const ArrayConfig& c, AccessSummary* out) {
  if (c.is_read && !c.has_affine_reads) return false;
  if (c.is_written && !c.has_affine_writes) return false;
  if (!c.is_read && !c.is_written) return false;
  if (c.is_read && c.is_written && c.read_coeff != c.write_coeff) return false;
  out->coeff = c.is_written ? c.write_coeff : c.read_coeff;
  if (out->coeff == 0) return false;
  if (c.is_read && c.is_written) {
    out->min_off = std::min(c.read_min_off, c.write_min_off);
    out->max_off = std::max(c.read_max_off, c.write_max_off);
  } else if (c.is_written) {
    out->min_off = c.write_min_off;
    out->max_off = c.write_max_off;
  } else {
    out->min_off = c.read_min_off;
    out->max_off = c.read_max_off;
  }
  return true;
}

/// Proves that every pair of accesses to the shared array from loop
/// iterations i (in A) and j (in B) with i != j touches distinct elements:
/// all indexes are coeff*i + off with one common coeff, and every cross
/// offset difference is smaller than |coeff|, so equal elements force i == j
/// (same fused thread, where program order is preserved).
bool SameElementImpliesSameThread(const AccessSummary& a,
                                  const AccessSummary& b) {
  if (a.coeff != b.coeff) return false;
  const std::int64_t c = a.coeff < 0 ? -a.coeff : a.coeff;
  const std::int64_t spread =
      std::max(a.max_off - b.min_off, b.max_off - a.min_off);
  return spread < c;
}

void MergeAffineSummary(bool a_used, bool a_has, std::int64_t ac,
                        std::int64_t amin, std::int64_t amax, bool b_used,
                        bool b_has, std::int64_t bc, std::int64_t bmin,
                        std::int64_t bmax, bool* out_has, std::int64_t* oc,
                        std::int64_t* omin, std::int64_t* omax) {
  if (a_used && b_used) {
    if (a_has && b_has && ac == bc) {
      *out_has = true;
      *oc = ac;
      *omin = std::min(amin, bmin);
      *omax = std::max(amax, bmax);
    } else {
      *out_has = false;
    }
  } else if (a_used) {
    *out_has = a_has;
    *oc = ac;
    *omin = amin;
    *omax = amax;
  } else if (b_used) {
    *out_has = b_has;
    *oc = bc;
    *omin = bmin;
    *omax = bmax;
  } else {
    *out_has = false;
  }
}

bool EndsWith(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

/// Checks every fusion precondition for adjacent offloads `a` (first) and
/// `b` (second). On success fills `merged` (everything except the kernel,
/// which the caller re-lowers).
bool PlanFusion(const LoopOffload& a, const LoopOffload& b,
                LoopOffload* merged) {
  // Host-position-sensitive directives pin a loop in place.
  if (CarriesHostDirectives(*a.loop) || CarriesHostDirectives(*b.loop)) {
    return false;
  }

  // Identical iteration spaces, proven structurally. The hazard scan below
  // additionally rules out A changing a bound's value between the two
  // evaluations.
  if (a.upper_inclusive != b.upper_inclusive) return false;
  if (!ExprEqualOrBothNull(a.lower_bound, b.lower_bound)) return false;
  if (!ExprEqualOrBothNull(a.upper_bound, b.upper_bound)) return false;

  // Shadowing: one identifier bound to two different parameter declarations
  // across the candidates would make the merged kernel signature (and the
  // launch environment) ambiguous. Induction variables are exempt — every
  // constituent's induction is aliased to the shared thread id in its own
  // scope — but a B-side parameter named like the fused kernel's primary
  // induction would collide with it at CUDA function scope.
  std::unordered_map<std::string, const VarDecl*> names;
  auto note_param = [&](const VarDecl* decl) {
    if (decl == nullptr) return true;
    auto [it, inserted] = names.emplace(decl->name, decl);
    return inserted || it->second == decl;
  };
  bool names_ok = true;
  for (const auto& cfg : a.arrays) names_ok = names_ok && note_param(cfg.decl);
  for (const auto& cfg : b.arrays) names_ok = names_ok && note_param(cfg.decl);
  for (const auto& s : a.scalars) names_ok = names_ok && note_param(s.decl);
  for (const auto& s : b.scalars) names_ok = names_ok && note_param(s.decl);
  for (const auto& r : a.scalar_reds) names_ok = names_ok && note_param(r.decl);
  for (const auto& r : b.scalar_reds) names_ok = names_ok && note_param(r.decl);
  if (!names_ok) return false;
  if (names.count(a.induction->name) != 0) return false;

  // Hazard scan: values A changes on the host (reduction results, written
  // arrays) must not feed anything B evaluates at launch time — bounds,
  // localaccess windows, reduction sections, or scalar arguments — because
  // fusing moves those evaluations before A's results land.
  std::unordered_set<const VarDecl*> a_mutates;
  for (const auto& red : a.scalar_reds) a_mutates.insert(red.decl);
  for (const auto& red : a.array_reds) a_mutates.insert(red.decl);
  for (const auto& cfg : a.arrays) {
    if (cfg.is_written || cfg.is_reduction_dest) a_mutates.insert(cfg.decl);
  }
  if (ExprMentionsAny(b.lower_bound, a_mutates) ||
      ExprMentionsAny(b.upper_bound, a_mutates)) {
    return false;
  }
  for (const auto& cfg : b.arrays) {
    if (ExprMentionsAny(cfg.stride, a_mutates) ||
        ExprMentionsAny(cfg.cols, a_mutates) ||
        ExprMentionsAny(cfg.left, a_mutates) ||
        ExprMentionsAny(cfg.right, a_mutates)) {
      return false;
    }
  }
  for (const auto& red : b.array_reds) {
    if (ExprMentionsAny(red.lower, a_mutates) ||
        ExprMentionsAny(red.length, a_mutates)) {
      return false;
    }
  }
  for (const auto& s : b.scalars) {
    if (a_mutates.count(s.decl) != 0) return false;
  }

  // Scalar reductions may repeat across the sides only with matching ops
  // (then B's accumulation folds into A's slot; add/mul/min/max are
  // commutative and associative, so the combined result is unchanged).
  for (const auto& br : b.scalar_reds) {
    for (const auto& ar : a.scalar_reds) {
      if (ar.decl == br.decl && ar.op != br.op) return false;
    }
  }

  // Per shared array: reduction destinations never fuse; localaccess specs
  // must agree; any cross dependence must be proven same-thread-only.
  merged->arrays = a.arrays;
  for (const auto& bc : b.arrays) {
    ArrayConfig* ac = nullptr;
    for (auto& cfg : merged->arrays) {
      if (cfg.decl == bc.decl) {
        ac = &cfg;
        break;
      }
    }
    if (ac == nullptr) {
      merged->arrays.push_back(bc);
      merged->arrays.back().kernel_array_index = -1;
      continue;
    }
    if (ac->is_reduction_dest || bc.is_reduction_dest) return false;
    if (ac->has_localaccess != bc.has_localaccess) return false;
    if (ac->has_localaccess) {
      if (!StridesMatch(ac->stride, bc.stride)) return false;
      // cols folds null to 1, so a 2-D spec only matches another 2-D spec
      // with the same row length (or a degenerate cols(1) against 1-D).
      if (!StridesMatch(ac->cols, bc.cols)) return false;
      const Expr* left = nullptr;
      const Expr* right = nullptr;
      if (!PickWiderWindow(ac->left, bc.left, &left)) return false;
      if (!PickWiderWindow(ac->right, bc.right, &right)) return false;
      ac->left = left;
      ac->right = right;
    }
    const bool cross_dep = (ac->is_written && bc.is_read) ||
                           (ac->is_read && bc.is_written) ||
                           (ac->is_written && bc.is_written);
    if (cross_dep) {
      AccessSummary sa, sb;
      if (!SummarizeAccesses(*ac, &sa)) return false;
      if (!SummarizeAccesses(bc, &sb)) return false;
      if (!SameElementImpliesSameThread(sa, sb)) return false;
      // A write that may land outside the local shard is spilled to the
      // miss buffer and only replayed after the kernel, so a same-thread
      // read in B would see the stale element. Bail unless A's writes are
      // proven local.
      if (ac->has_localaccess && ac->is_written && !ac->writes_proven_local &&
          bc.is_read) {
        return false;
      }
    }
    // Merge the per-side facts. Windows only ever widen, so each side's
    // locality proof survives the merge.
    ArrayConfig fused = *ac;
    fused.is_read = ac->is_read || bc.is_read;
    fused.is_written = ac->is_written || bc.is_written;
    fused.writes_proven_local =
        (!ac->is_written || ac->writes_proven_local) &&
        (!bc.is_written || bc.writes_proven_local) &&
        (ac->is_written || bc.is_written);
    MergeAffineSummary(ac->is_written, ac->has_affine_writes, ac->write_coeff,
                       ac->write_min_off, ac->write_max_off, bc.is_written,
                       bc.has_affine_writes, bc.write_coeff, bc.write_min_off,
                       bc.write_max_off, &fused.has_affine_writes,
                       &fused.write_coeff, &fused.write_min_off,
                       &fused.write_max_off);
    MergeAffineSummary(ac->is_read, ac->has_affine_reads, ac->read_coeff,
                       ac->read_min_off, ac->read_max_off, bc.is_read,
                       bc.has_affine_reads, bc.read_coeff, bc.read_min_off,
                       bc.read_max_off, &fused.has_affine_reads,
                       &fused.read_coeff, &fused.read_min_off,
                       &fused.read_max_off);
    fused.kernel_array_index = -1;
    *ac = fused;
  }

  merged->id = a.id;
  merged->name = EndsWith(a.name, "_fused") ? a.name : a.name + "_fused";
  merged->loop = a.loop;
  merged->induction = a.induction;
  merged->lower_bound = a.lower_bound;
  merged->upper_bound = a.upper_bound;
  merged->upper_inclusive = a.upper_inclusive;

  if (a.fused.empty()) {
    merged->fused.push_back({a.loop, a.induction});
  } else {
    merged->fused = a.fused;
  }
  if (b.fused.empty()) {
    merged->fused.push_back({b.loop, b.induction});
  } else {
    merged->fused.insert(merged->fused.end(), b.fused.begin(), b.fused.end());
  }

  merged->scalars = a.scalars;
  for (const auto& s : b.scalars) {
    bool present = false;
    for (const auto& e : merged->scalars) present = present || e.decl == s.decl;
    if (!present) merged->scalars.push_back(s);
  }
  for (auto& s : merged->scalars) s.kernel_scalar_index = -1;

  merged->scalar_reds = a.scalar_reds;
  for (const auto& r : b.scalar_reds) {
    bool present = false;
    for (const auto& e : merged->scalar_reds) {
      present = present || (e.decl == r.decl && e.op == r.op);
    }
    if (!present) merged->scalar_reds.push_back(r);
  }
  for (auto& r : merged->scalar_reds) r.slot = -1;

  merged->array_reds = a.array_reds;
  merged->array_reds.insert(merged->array_reds.end(), b.array_reds.begin(),
                            b.array_reds.end());
  for (auto& r : merged->array_reds) r.slot = -1;

  return true;
}

// ---------------------------------------------------------------------------
// Fusion driver
// ---------------------------------------------------------------------------

bool TryFuse(CompiledFunction& fn, int ia, int ib, OptStats* stats) {
  LoopOffload merged;
  if (!PlanFusion(fn.offloads[ia], fn.offloads[ib], &merged)) {
    ++stats->bailouts;
    return false;
  }
  try {
    KernelLowering lowering(merged);
    lowering.Lower();
  } catch (const Error&) {
    // Re-lowering the concatenated bodies should always succeed (both sides
    // lowered individually); if it does not, refuse the fusion rather than
    // fail the compile.
    ++stats->bailouts;
    return false;
  }
  {
    trace::Span span("fuse:" + fn.offloads[ia].name + "+" +
                         fn.offloads[ib].name,
                     trace::category::kCompile);
  }
  fn.fused_away.insert(fn.offloads[ib].loop);
  fn.offloads[ia] = std::move(merged);
  fn.offloads.erase(fn.offloads.begin() + ib);
  fn.offload_of_stmt.clear();
  for (std::size_t i = 0; i < fn.offloads.size(); ++i) {
    fn.offloads[i].id = static_cast<int>(i);
    fn.offload_of_stmt[fn.offloads[i].loop] = static_cast<int>(i);
  }
  ++stats->fusions;
  return true;
}

void FuseAdjacentOffloads(CompiledFunction& fn, OptStats* stats) {
  std::vector<const CompoundStmt*> compounds;
  CollectCompounds(*fn.function->body, &compounds);
  // Pairs already refused this run; cleared for a statement whose offload
  // changes (its successor was fused into it, making a new pair).
  std::set<std::pair<const Stmt*, const Stmt*>> refused;
  bool changed = true;
  while (changed) {
    changed = false;
    for (const CompoundStmt* compound : compounds) {
      for (std::size_t i = 0; i < compound->body.size() && !changed; ++i) {
        const Stmt* s1 = compound->body[i].get();
        auto it1 = fn.offload_of_stmt.find(s1);
        if (it1 == fn.offload_of_stmt.end()) continue;
        // Loops already folded into s1 sit between it and the next live
        // offload; they are no-ops, so adjacency skips over them.
        std::size_t j = i + 1;
        while (j < compound->body.size() &&
               fn.fused_away.count(compound->body[j].get()) != 0) {
          ++j;
        }
        if (j >= compound->body.size()) continue;
        const Stmt* s2 = compound->body[j].get();
        auto it2 = fn.offload_of_stmt.find(s2);
        if (it2 == fn.offload_of_stmt.end()) continue;
        if (refused.count({s1, s2}) != 0) continue;
        if (TryFuse(fn, it1->second, it2->second, stats)) {
          changed = true;
          for (auto it = refused.begin(); it != refused.end();) {
            if (it->first == s1 || it->second == s1) {
              it = refused.erase(it);
            } else {
              ++it;
            }
          }
        } else {
          refused.insert({s1, s2});
        }
      }
      if (changed) break;
    }
  }
}

// ---------------------------------------------------------------------------
// Kernel IR facts
// ---------------------------------------------------------------------------

bool IsBranch(Opcode op) {
  return op == Opcode::kBr || op == Opcode::kBrIf || op == Opcode::kBrIfNot;
}

bool ProducesValue(Opcode op) {
  switch (op) {
    case Opcode::kStore:
    case Opcode::kDirtyMark:
    case Opcode::kRedScalar:
    case Opcode::kRedArray:
    case Opcode::kBr:
    case Opcode::kBrIf:
    case Opcode::kBrIfNot:
    case Opcode::kRet:
      return false;
    default:
      return true;
  }
}

bool ReadsA(Opcode op) {
  switch (op) {
    case Opcode::kConstI:
    case Opcode::kConstF:
    case Opcode::kBr:
    case Opcode::kRet:
      return false;
    default:
      return true;
  }
}

bool ReadsB(Opcode op) {
  switch (op) {
    case Opcode::kAddI:
    case Opcode::kSubI:
    case Opcode::kMulI:
    case Opcode::kDivI:
    case Opcode::kModI:
    case Opcode::kAndI:
    case Opcode::kOrI:
    case Opcode::kXorI:
    case Opcode::kShlI:
    case Opcode::kShrI:
    case Opcode::kMinI:
    case Opcode::kMaxI:
    case Opcode::kAddF:
    case Opcode::kSubF:
    case Opcode::kMulF:
    case Opcode::kDivF:
    case Opcode::kPowF:
    case Opcode::kFminF:
    case Opcode::kFmaxF:
    case Opcode::kCmpLtI:
    case Opcode::kCmpLeI:
    case Opcode::kCmpEqI:
    case Opcode::kCmpNeI:
    case Opcode::kCmpLtF:
    case Opcode::kCmpLeF:
    case Opcode::kCmpEqF:
    case Opcode::kCmpNeF:
    case Opcode::kStore:
    case Opcode::kRedArray:
      return true;
    default:
      return false;
  }
}

/// Integer ops where swapping operands is a bit-exact identity. Float ops
/// are excluded: a NaN payload can depend on operand order.
bool CommutesExactly(Opcode op) {
  switch (op) {
    case Opcode::kAddI:
    case Opcode::kMulI:
    case Opcode::kAndI:
    case Opcode::kOrI:
    case Opcode::kXorI:
    case Opcode::kMinI:
    case Opcode::kMaxI:
    case Opcode::kCmpEqI:
    case Opcode::kCmpNeI:
      return true;
    default:
      return false;
  }
}

int RedArrayTarget(const ir::KernelIR& kernel, const ir::Instr& in) {
  const auto slot = static_cast<std::size_t>(in.imm.i);
  if (slot < kernel.array_reductions.size()) {
    return kernel.array_reductions[slot].array_index;
  }
  return -1;
}

/// Removes instructions marked dead and remaps branch targets. A deleted
/// instruction is always pure fall-through, so a target pointing at one is
/// redirected to the next surviving instruction.
void CompactCode(ir::KernelIR& kernel, const std::vector<char>& dead) {
  auto& code = kernel.code;
  std::vector<std::int64_t> newpc(code.size() + 1, 0);
  std::int64_t kept = 0;
  for (std::size_t p = 0; p < code.size(); ++p) {
    newpc[p] = kept;
    if (!dead[p]) ++kept;
  }
  newpc[code.size()] = kept;
  if (kept == static_cast<std::int64_t>(code.size())) return;
  std::vector<ir::Instr> out;
  out.reserve(static_cast<std::size_t>(kept));
  for (std::size_t p = 0; p < code.size(); ++p) {
    if (dead[p]) continue;
    ir::Instr in = code[p];
    if (IsBranch(in.op)) in.imm.i = newpc[static_cast<std::size_t>(in.imm.i)];
    out.push_back(in);
  }
  code = std::move(out);
}

}  // namespace

// ---------------------------------------------------------------------------
// CSE
// ---------------------------------------------------------------------------

int CsePass(ir::KernelIR& kernel) {
  auto& code = kernel.code;
  if (code.empty()) return 0;
  int hits = 0;

  std::vector<char> leader(code.size(), 0);
  leader[0] = 1;
  for (std::size_t p = 0; p < code.size(); ++p) {
    if (IsBranch(code[p].op)) {
      leader[static_cast<std::size_t>(code[p].imm.i)] = 1;
      if (p + 1 < code.size()) leader[p + 1] = 1;
    } else if (code[p].op == Opcode::kRet) {
      if (p + 1 < code.size()) leader[p + 1] = 1;
    }
  }

  using Key = std::tuple<int, std::int64_t, std::int64_t, int, std::int64_t,
                         std::int64_t>;
  std::size_t start = 0;
  while (start < code.size()) {
    std::size_t end = start + 1;
    while (end < code.size() && !leader[end]) ++end;

    // Per-block local value numbering. Unwritten registers carry the opaque
    // value -(reg+1); `rep` maps a value id to a register currently holding
    // it, used both to rewrite operands and to satisfy repeat computations.
    std::vector<std::int64_t> regval(static_cast<std::size_t>(kernel.num_regs));
    for (int r = 0; r < kernel.num_regs; ++r) {
      regval[static_cast<std::size_t>(r)] = -static_cast<std::int64_t>(r) - 1;
    }
    std::map<std::int64_t, int> rep;
    std::map<Key, std::int64_t> table;
    std::vector<std::int64_t> epoch(kernel.arrays.size(), 0);
    std::int64_t next_value = 1;

    auto invalidate_reg = [&](int r) {
      for (auto it = rep.begin(); it != rep.end();) {
        if (it->second == r) {
          it = rep.erase(it);
        } else {
          ++it;
        }
      }
    };
    auto canon = [&](int r) {
      auto it = rep.find(regval[static_cast<std::size_t>(r)]);
      return it != rep.end() ? it->second : r;
    };

    for (std::size_t p = start; p < end; ++p) {
      auto& in = code[p];
      if (ReadsA(in.op) && in.a >= 0) in.a = canon(in.a);
      if (ReadsB(in.op) && in.b >= 0) in.b = canon(in.b);
      if (in.op == Opcode::kStore) {
        if (in.arr >= 0) ++epoch[static_cast<std::size_t>(in.arr)];
        continue;
      }
      if (in.op == Opcode::kRedArray) {
        const int target = RedArrayTarget(kernel, in);
        if (target >= 0) ++epoch[static_cast<std::size_t>(target)];
        continue;
      }
      if (!ProducesValue(in.op) || in.dst < 0) continue;

      if (in.op == Opcode::kMov) {
        const std::int64_t v = regval[static_cast<std::size_t>(in.a)];
        invalidate_reg(in.dst);
        regval[static_cast<std::size_t>(in.dst)] = v;
        rep.emplace(v, in.dst);
        continue;
      }

      std::int64_t va =
          (ReadsA(in.op) && in.a >= 0) ? regval[static_cast<std::size_t>(in.a)]
                                       : 0;
      std::int64_t vb =
          (ReadsB(in.op) && in.b >= 0) ? regval[static_cast<std::size_t>(in.b)]
                                       : 0;
      std::int64_t imm1 = 0;
      std::int64_t imm2 = 0;
      int arr = -1;
      if (in.op == Opcode::kConstI) {
        imm1 = in.imm.i;
      } else if (in.op == Opcode::kConstF) {
        std::memcpy(&imm1, &in.imm.f, sizeof(imm1));
      } else if (in.op == Opcode::kLoad) {
        arr = in.arr;
        imm2 = epoch[static_cast<std::size_t>(arr)];
      }
      if (CommutesExactly(in.op) && va > vb) std::swap(va, vb);
      const Key key{static_cast<int>(in.op), va, vb, arr, imm1, imm2};

      auto it = table.find(key);
      auto rep_it = it != table.end() ? rep.find(it->second) : rep.end();
      if (it != table.end() && rep_it != rep.end()) {
        const std::int64_t v = it->second;
        const int src = rep_it->second;
        in.op = Opcode::kMov;
        in.a = src;
        in.b = -1;
        in.arr = -1;
        in.imm.i = 0;
        invalidate_reg(in.dst);
        regval[static_cast<std::size_t>(in.dst)] = v;
        rep.emplace(v, in.dst);
        ++hits;
      } else {
        const std::int64_t v = next_value++;
        table[key] = v;
        invalidate_reg(in.dst);
        regval[static_cast<std::size_t>(in.dst)] = v;
        rep[v] = in.dst;
      }
    }
    start = end;
  }

  // Global dead-code sweep: delete pure instructions whose result no
  // surviving instruction reads (most of the kMov placeholders above become
  // dead once their uses were rewritten to the canonical register).
  std::vector<char> dead(code.size(), 0);
  bool changed = true;
  while (changed) {
    changed = false;
    std::vector<char> read(static_cast<std::size_t>(kernel.num_regs), 0);
    for (std::size_t p = 0; p < code.size(); ++p) {
      if (dead[p]) continue;
      const auto& in = code[p];
      if (in.op == Opcode::kMov && in.a == in.dst) continue;  // self-copy
      if (ReadsA(in.op) && in.a >= 0) read[static_cast<std::size_t>(in.a)] = 1;
      if (ReadsB(in.op) && in.b >= 0) read[static_cast<std::size_t>(in.b)] = 1;
    }
    for (std::size_t p = 0; p < code.size(); ++p) {
      if (dead[p]) continue;
      const auto& in = code[p];
      if (!ProducesValue(in.op) || in.dst < 0) continue;
      const bool self_copy = in.op == Opcode::kMov && in.a == in.dst;
      if (self_copy || !read[static_cast<std::size_t>(in.dst)]) {
        dead[p] = 1;
        changed = true;
      }
    }
  }
  CompactCode(kernel, dead);
  ir::Verify(kernel);
  return hits;
}

// ---------------------------------------------------------------------------
// Loop-invariant hoisting
// ---------------------------------------------------------------------------

namespace {

/// Folds the subset of integer ops that cannot trap, in wrap-around
/// arithmetic, for the entered-once proof.
bool FoldInt(Opcode op, std::int64_t x, std::int64_t y, std::int64_t* out) {
  const auto ux = static_cast<std::uint64_t>(x);
  const auto uy = static_cast<std::uint64_t>(y);
  switch (op) {
    case Opcode::kAddI: *out = static_cast<std::int64_t>(ux + uy); return true;
    case Opcode::kSubI: *out = static_cast<std::int64_t>(ux - uy); return true;
    case Opcode::kMulI: *out = static_cast<std::int64_t>(ux * uy); return true;
    case Opcode::kMinI: *out = std::min(x, y); return true;
    case Opcode::kMaxI: *out = std::max(x, y); return true;
    case Opcode::kCmpLtI: *out = x < y ? 1 : 0; return true;
    case Opcode::kCmpLeI: *out = x <= y ? 1 : 0; return true;
    case Opcode::kCmpEqI: *out = x == y ? 1 : 0; return true;
    case Opcode::kCmpNeI: *out = x != y ? 1 : 0; return true;
    default: return false;
  }
}

/// Proves the loop [t, p] runs its body at least once whenever control
/// reaches t for the first time, by constant-evaluating the head condition.
/// Constants come from the straight-line window immediately before t and
/// from the head prefix [t, z) itself.
bool ProvenEntered(const ir::KernelIR& kernel, std::size_t t, std::size_t z,
                   std::size_t p, const std::vector<char>& is_target) {
  const auto& code = kernel.code;
  std::size_t w = t;
  while (w > 0 && !IsBranch(code[w - 1].op) && code[w - 1].op != Opcode::kRet &&
         !is_target[w - 1]) {
    --w;
  }
  std::unordered_map<int, std::int64_t> consts;
  auto run = [&](std::size_t from, std::size_t to) {
    for (std::size_t q = from; q < to; ++q) {
      const auto& in = code[q];
      if (!ProducesValue(in.op) || in.dst < 0) continue;
      if (in.op == Opcode::kConstI) {
        consts[in.dst] = in.imm.i;
        continue;
      }
      if (in.op == Opcode::kMov) {
        auto it = consts.find(in.a);
        if (it != consts.end()) {
          consts[in.dst] = it->second;
        } else {
          consts.erase(in.dst);
        }
        continue;
      }
      std::int64_t folded = 0;
      auto ia = consts.find(in.a);
      auto ib = consts.find(in.b);
      if (ReadsA(in.op) && ReadsB(in.op) && ia != consts.end() &&
          ib != consts.end() &&
          FoldInt(in.op, ia->second, ib->second, &folded)) {
        consts[in.dst] = folded;
      } else {
        consts.erase(in.dst);
      }
    }
  };
  run(w, t);
  run(t, z);
  const auto& br = code[z];
  const auto inside = [&](std::int64_t target) {
    return target >= static_cast<std::int64_t>(t) &&
           target <= static_cast<std::int64_t>(p);
  };
  if (br.op == Opcode::kBr) return inside(br.imm.i);
  if (br.op != Opcode::kBrIf && br.op != Opcode::kBrIfNot) return false;
  auto it = consts.find(br.a);
  if (it == consts.end()) return false;
  const bool taken =
      br.op == Opcode::kBrIf ? it->second != 0 : it->second == 0;
  if (!taken) return true;  // falls through into the body
  return inside(br.imm.i);
}

}  // namespace

int HoistPass(ir::KernelIR& kernel) {
  int hoists = 0;
  bool changed = true;
  int rounds = 0;
  while (changed && rounds++ < 64) {
    changed = false;
    auto& code = kernel.code;
    std::vector<char> is_target(code.size(), 0);
    for (const auto& in : code) {
      if (IsBranch(in.op)) is_target[static_cast<std::size_t>(in.imm.i)] = 1;
    }
    for (std::size_t p = 0; p < code.size() && !changed; ++p) {
      if (!IsBranch(code[p].op)) continue;
      const std::int64_t target = code[p].imm.i;
      if (target > static_cast<std::int64_t>(p)) continue;
      const auto t = static_cast<std::size_t>(target);

      // Innermost natural loop only: no other back-edge inside [t, p).
      bool innermost = true;
      for (std::size_t q = t; q < p && innermost; ++q) {
        if (IsBranch(code[q].op) &&
            code[q].imm.i <= static_cast<std::int64_t>(q)) {
          innermost = false;
        }
      }
      if (!innermost) continue;

      // The hoisted block lands just before t, so the loop must only be
      // enterable by falling into t: no branch outside [t, p] may target
      // anything inside it.
      bool fallthrough_entry = true;
      for (std::size_t q = 0; q < code.size() && fallthrough_entry; ++q) {
        if (q >= t && q <= p) continue;
        if (IsBranch(code[q].op) &&
            code[q].imm.i >= static_cast<std::int64_t>(t) &&
            code[q].imm.i <= static_cast<std::int64_t>(p)) {
          fallthrough_entry = false;
        }
      }
      if (!fallthrough_entry) continue;

      // Zone 1 [t, z): the head prefix, executed unconditionally on every
      // arrival at t — hoisting from here never adds an execution.
      std::size_t z = t;
      while (z < p && !IsBranch(code[z].op) && code[z].op != Opcode::kRet) {
        ++z;
      }

      // Zone 2 (z, z2): the unconditional body prefix after a conditional
      // exit branch. Instructions here run once per iteration, so they may
      // move only when the loop provably iterates at least once.
      std::size_t z2_begin = z;
      std::size_t z2_end = z;
      if (z < p && (code[z].op == Opcode::kBrIf ||
                    code[z].op == Opcode::kBrIfNot) &&
          !(code[z].imm.i >= static_cast<std::int64_t>(t) &&
            code[z].imm.i <= static_cast<std::int64_t>(p)) &&
          ProvenEntered(kernel, t, z, p, is_target)) {
        z2_begin = z + 1;
        z2_end = z2_begin;
        while (z2_end < p && !IsBranch(code[z2_end].op) &&
               code[z2_end].op != Opcode::kRet && !is_target[z2_end]) {
          ++z2_end;
        }
      }

      auto in_zone = [&](std::size_t q) {
        return (q >= t && q < z) || (q >= z2_begin && q < z2_end);
      };

      std::vector<int> defcount(static_cast<std::size_t>(kernel.num_regs), 0);
      std::vector<char> arr_mutated(kernel.arrays.size(), 0);
      for (std::size_t q = t; q <= p; ++q) {
        const auto& in = code[q];
        if (ProducesValue(in.op) && in.dst >= 0) {
          ++defcount[static_cast<std::size_t>(in.dst)];
        }
        if (in.op == Opcode::kStore && in.arr >= 0) {
          arr_mutated[static_cast<std::size_t>(in.arr)] = 1;
        }
        if (in.op == Opcode::kRedArray) {
          const int ai = RedArrayTarget(kernel, in);
          if (ai >= 0) arr_mutated[static_cast<std::size_t>(ai)] = 1;
        }
      }

      std::vector<char> hoist(code.size(), 0);
      // A read operand is invariant if its only in-loop defs are themselves
      // hoisted instructions located before the candidate (so the hoisted
      // block, emitted in original order, defines it first).
      auto operand_ok = [&](int r, std::size_t q) {
        if (r < 0) return true;
        for (std::size_t d = t; d <= p; ++d) {
          const auto& in = code[d];
          if (!ProducesValue(in.op) || in.dst != r) continue;
          if (!(hoist[d] && d < q)) return false;
        }
        return true;
      };
      bool progress = true;
      while (progress) {
        progress = false;
        for (std::size_t q = t; q < z2_end; ++q) {
          if (!in_zone(q) || hoist[q]) continue;
          const auto& in = code[q];
          if (!ProducesValue(in.op) || in.dst < 0) continue;
          if (in.op == Opcode::kLoad &&
              (in.arr < 0 || arr_mutated[static_cast<std::size_t>(in.arr)])) {
            continue;
          }
          if (defcount[static_cast<std::size_t>(in.dst)] != 1) continue;
          if (ReadsA(in.op) && !operand_ok(in.a, q)) continue;
          if (ReadsB(in.op) && !operand_ok(in.b, q)) continue;
          // The first iteration must not observe the pre-loop value of dst.
          bool dst_read_before = false;
          for (std::size_t r = t; r < q && !dst_read_before; ++r) {
            const auto& rd = code[r];
            if ((ReadsA(rd.op) && rd.a == in.dst) ||
                (ReadsB(rd.op) && rd.b == in.dst)) {
              dst_read_before = true;
            }
          }
          if (dst_read_before) continue;
          hoist[q] = 1;
          progress = true;
        }
      }

      std::int64_t moved = 0;
      for (std::size_t q = t; q < z2_end; ++q) moved += hoist[q] ? 1 : 0;
      if (moved == 0) continue;

      // Rebuild: [0, t) + hoisted (original order) + the rest. Targets at or
      // after t shift past the hoisted block; a target that WAS a hoisted
      // instruction redirects to the next surviving one, which is correct
      // because the hoisted value is already in its register.
      std::vector<ir::Instr> out;
      out.reserve(code.size());
      for (std::size_t q = 0; q < t; ++q) out.push_back(code[q]);
      for (std::size_t q = t; q < z2_end; ++q) {
        if (hoist[q]) out.push_back(code[q]);
      }
      std::vector<std::int64_t> newpc(code.size() + 1, 0);
      for (std::size_t q = 0; q < t; ++q) {
        newpc[q] = static_cast<std::int64_t>(q);
      }
      std::int64_t pos = static_cast<std::int64_t>(t) + moved;
      for (std::size_t q = t; q < code.size(); ++q) {
        newpc[q] = pos;
        if (!(q < z2_end && hoist[q])) ++pos;
      }
      newpc[code.size()] = pos;
      for (std::size_t q = t; q < code.size(); ++q) {
        if (q < z2_end && hoist[q]) continue;
        out.push_back(code[q]);
      }
      for (auto& in : out) {
        if (IsBranch(in.op)) {
          in.imm.i = newpc[static_cast<std::size_t>(in.imm.i)];
        }
      }
      code = std::move(out);
      hoists += static_cast<int>(moved);
      changed = true;
    }
  }
  if (hoists > 0) ir::Verify(kernel);
  return hoists;
}

// ---------------------------------------------------------------------------
// Driver
// ---------------------------------------------------------------------------

OptStats OptimizeFunction(CompiledFunction& fn, const CompileOptions& options) {
  OptStats stats;
  if (options.opt_level <= 0) return stats;
  trace::Span span("optimize:" + fn.function->name, trace::category::kCompile);

  FuseAdjacentOffloads(fn, &stats);
  for (auto& offload : fn.offloads) {
    stats.cse_hits += CsePass(offload.kernel);
    if (options.opt_level >= 2) {
      stats.hoists += HoistPass(offload.kernel);
      // Hoisting can expose new block-local redundancy (and dead copies).
      if (stats.hoists > 0) stats.cse_hits += CsePass(offload.kernel);
    }
  }

  auto& registry = metrics::Registry::Global();
  registry.counter("opt.fusions").Add(static_cast<std::uint64_t>(stats.fusions));
  registry.counter("opt.hoists").Add(static_cast<std::uint64_t>(stats.hoists));
  registry.counter("opt.cse_hits")
      .Add(static_cast<std::uint64_t>(stats.cse_hits));
  registry.counter("opt.bailouts")
      .Add(static_cast<std::uint64_t>(stats.bailouts));
  return stats;
}

}  // namespace accmg::translator
