// Host-side evaluation of mini-C expressions.
//
// Used for everything executed on the CPU: loop bounds, directive clause
// expressions (localaccess stride/halo, array sections), and the sequential
// statements of translated programs between parallel regions.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "frontend/ast.h"
#include "ir/ir.h"

namespace accmg::translator {

/// A typed runtime value, stored as raw 64-bit register bits (integers
/// sign-extended to 64 bits, floats widened to double).
struct TypedValue {
  ir::ValType type = ir::ValType::kI64;
  std::uint64_t raw = 0;

  std::int64_t AsInt() const;
  double AsDouble() const;

  static TypedValue OfInt(std::int64_t v,
                          ir::ValType t = ir::ValType::kI64);
  static TypedValue OfDouble(double v, ir::ValType t = ir::ValType::kF64);
};

/// A host-resident array visible to evaluated code.
struct HostArray {
  void* data = nullptr;
  ir::ValType elem{};
  std::int64_t count = 0;
};

/// Variable environment for one function activation: scalar slots keyed by
/// VarDecl::id, arrays keyed by VarDecl::id.
class HostEnv {
 public:
  void SetScalar(const frontend::VarDecl& decl, TypedValue value);
  TypedValue GetScalar(const frontend::VarDecl& decl) const;
  bool HasScalar(const frontend::VarDecl& decl) const;

  void BindArray(const frontend::VarDecl& decl, HostArray array);
  const HostArray& GetArray(const frontend::VarDecl& decl) const;
  bool HasArray(const frontend::VarDecl& decl) const;

 private:
  std::unordered_map<int, TypedValue> scalars_;
  std::unordered_map<int, HostArray> arrays_;
};

/// Evaluates `expr` against `env`. Array subscripts read host memory.
/// Throws Error on missing bindings or out-of-range subscripts.
TypedValue EvalHostExpr(const frontend::Expr& expr, const HostEnv& env);

/// Evaluates an expression that must be a (host-computable) integer.
std::int64_t EvalIndexExpr(const frontend::Expr& expr, const HostEnv& env);

/// Folds `expr` to an integer constant without an environment; returns false
/// when the expression is not a compile-time constant.
bool TryFoldConstant(const frontend::Expr& expr, std::int64_t* out);

/// Writes `value` (converted to the array's element type) into host memory.
void WriteHostElement(const HostArray& array, std::int64_t index,
                      const TypedValue& value, const std::string& name);

}  // namespace accmg::translator
