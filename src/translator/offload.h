// Translator output: one LoopOffload per annotated parallel loop, carrying
// the generated KernelIR plus the "array configuration information" of the
// paper (Section IV-B5) that the runtime's data loader and communication
// manager consume.
#pragma once

#include <memory>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "frontend/ast.h"
#include "ir/ir.h"

namespace accmg::translator {

/// Placement-relevant facts about one array used in one parallel loop.
struct ArrayConfig {
  const frontend::VarDecl* decl = nullptr;
  std::string name;
  ir::ValType elem{};

  bool is_read = false;
  bool is_written = false;

  /// localaccess extension given for this array in this loop: iteration i
  /// reads [stride*i - left, stride*(i+1) - 1 + right]. Expressions are
  /// evaluated in the host environment at launch time.
  bool has_localaccess = false;
  const frontend::Expr* stride = nullptr;  ///< null = 1
  const frontend::Expr* left = nullptr;    ///< null = 0
  const frontend::Expr* right = nullptr;   ///< null = 0

  /// 2-D extension: non-null when the localaccess spec carried `cols(m)`.
  /// The array is a row-major 2-D view whose rows the loop iterates; at
  /// launch the executor evaluates it to the row length and scales the
  /// window to elements (stride = cols, halos = left*cols / right*cols), so
  /// row blocks stay contiguous and all 1-D placement machinery applies.
  /// Mutually exclusive with `stride`.
  const frontend::Expr* cols = nullptr;

  /// This array is the destination of a reductiontoarray statement.
  bool is_reduction_dest = false;

  /// Every write index was statically proven inside the localaccess range
  /// (index = stride*i + c with -left <= c <= stride-1+right), so the
  /// write-miss check is eliminated (paper Section IV-D2, last paragraph).
  bool writes_proven_local = false;

  /// Static affine write summary: set when every write index of this array
  /// in the loop is affine in the induction variable with one common
  /// coefficient (index = write_coeff*i + c, write_min_off <= c <=
  /// write_max_off). The async pipeline's boundary/interior splitter uses
  /// it to bound which iterations can touch another device's elements;
  /// absent (false) means writes are unanalyzable and the splitter must be
  /// conservative.
  bool has_affine_writes = false;
  std::int64_t write_coeff = 0;
  std::int64_t write_min_off = 0;
  std::int64_t write_max_off = 0;

  /// Static affine read summary, the read-side twin of the write summary:
  /// set when the loop reads this array and every read index (including
  /// compound-assignment targets) is affine in the induction variable with
  /// one common coefficient. The mid-end fusion pass uses read and write
  /// summaries together to prove that two adjacent loops never touch the
  /// same element from different iterations; absent means the reads are
  /// unanalyzable and fusion involving this array must bail out.
  bool has_affine_reads = false;
  std::int64_t read_coeff = 0;
  std::int64_t read_min_off = 0;
  std::int64_t read_max_off = 0;

  int kernel_array_index = -1;  ///< into KernelIR::arrays
};

/// A loop-invariant scalar passed to the kernel at launch.
struct ScalarArg {
  const frontend::VarDecl* decl = nullptr;
  int kernel_scalar_index = -1;
};

/// A scalar reduction target (OpenACC reduction clause).
struct ScalarRedTarget {
  const frontend::VarDecl* decl = nullptr;
  ir::RedOp op{};
  int slot = -1;
};

/// A reduction-to-array target (the paper's extension).
struct ArrayRedTarget {
  const frontend::VarDecl* decl = nullptr;
  ir::RedOp op{};
  int slot = -1;
  const frontend::Expr* lower = nullptr;   ///< null = 0
  const frontend::Expr* length = nullptr;  ///< null = whole array
};

/// One source loop folded into a fused offload. Every constituent's
/// induction variable aliases the kernel thread-id register, so the fused
/// kernel runs the concatenated bodies once per shared iteration.
struct FusedLoop {
  const frontend::ForStmt* loop = nullptr;
  const frontend::VarDecl* induction = nullptr;
};

struct LoopOffload {
  int id = -1;
  std::string name;
  const frontend::ForStmt* loop = nullptr;
  const frontend::VarDecl* induction = nullptr;
  const frontend::Expr* lower_bound = nullptr;  ///< loop starts at this value
  const frontend::Expr* upper_bound = nullptr;  ///< exclusive unless inclusive
  bool upper_inclusive = false;

  /// Non-empty iff the mid-end fused this offload out of several adjacent
  /// parallel loops; constituents are in source order and the first entry
  /// is `loop` itself. Empty for a one-to-one translation.
  std::vector<FusedLoop> fused;

  ir::KernelIR kernel;
  std::vector<ArrayConfig> arrays;        ///< parallel to kernel.arrays
  std::vector<ScalarArg> scalars;         ///< parallel to kernel.scalars
  std::vector<ScalarRedTarget> scalar_reds;
  std::vector<ArrayRedTarget> array_reds;

  /// Canonical lookup, keyed on the resolved declaration. Use this from the
  /// runtime and dependence analysis: two VarDecls may share an identifier
  /// (shadowing across scopes), and a name-keyed lookup would resolve both
  /// to whichever config happens to come first.
  const ArrayConfig* FindArray(const frontend::VarDecl& decl) const {
    for (const auto& config : arrays) {
      if (config.decl == &decl) return &config;
    }
    return nullptr;
  }

  /// Name-keyed lookup, for resolving directive text (e.g. a localaccess
  /// spec names arrays by identifier) where only the source spelling is
  /// available. Ambiguous under shadowing — prefer the VarDecl overload
  /// whenever a resolved declaration is at hand.
  const ArrayConfig* FindArray(const std::string& array_name) const {
    for (const auto& config : arrays) {
      if (config.name == array_name) return &config;
    }
    return nullptr;
  }
};

struct CompiledFunction {
  const frontend::Function* function = nullptr;
  std::vector<LoopOffload> offloads;
  /// Statement (the annotated ForStmt) -> index into `offloads`.
  std::unordered_map<const frontend::Stmt*, int> offload_of_stmt;
  /// Loop statements the mid-end fused into a preceding offload. The host
  /// interpreter must treat these as no-ops: their work runs when the
  /// fused offload (keyed on the first constituent's statement) executes.
  std::unordered_set<const frontend::Stmt*> fused_away;
};

struct CompiledProgram {
  /// Owned by the caller of Compile; kept for convenient lookups.
  const frontend::Program* program = nullptr;
  std::vector<CompiledFunction> functions;

  const CompiledFunction* FindFunction(const std::string& name) const {
    for (const auto& f : functions) {
      if (f.function->name == name) return &f;
    }
    return nullptr;
  }
};

/// Knobs of the translation pipeline.
struct CompileOptions {
  /// Run the static directive checker (translator/check.h) on every offload:
  /// localaccess declarations must cover the loop's provable read indices,
  /// reductiontoarray destinations must not carry a localaccess spec, and
  /// every localaccess spec must name an array the loop uses. Proven
  /// violations become CompileErrors; anything the symbolic analysis cannot
  /// decide passes. Off switches the runtime back to trusting directives
  /// blindly (accmgc --no-directive-check).
  bool check_directives = true;

  /// Mid-end optimization level (accmgc --opt-level={0,1,2}):
  ///   0 — translate every parallel loop one-to-one (the paper's pipeline);
  ///   1 — dependence-proven fusion of adjacent parallel loops plus local
  ///       CSE over the generated kernel IR (default);
  ///   2 — additionally hoist loop-invariant IR out of provably-entered
  ///       inner loops.
  /// Every rewrite bails out conservatively: an unprovable candidate is
  /// left untouched, never compiled wrong.
  int opt_level = 1;
};

/// Translates every function of an analyzed program. Throws CompileError on
/// constructs the translator cannot offload.
CompiledProgram Compile(const frontend::Program& program);
CompiledProgram Compile(const frontend::Program& program,
                        const CompileOptions& options);

/// Matches `expr` as an affine function a*i + b of the induction variable
/// with constant a, b. Returns false when the expression is not affine in i.
bool MatchAffine(const frontend::Expr& expr,
                 const frontend::VarDecl& induction, std::int64_t* a,
                 std::int64_t* b);

/// Structural equality of two expressions: same shape, literals, operators
/// and resolved declarations. Used to recognize reduction patterns in the
/// lowering and to prove matching loop bounds / localaccess specs in the
/// mid-end fusion pass.
bool ExprStructurallyEqual(const frontend::Expr& x, const frontend::Expr& y);

}  // namespace accmg::translator
