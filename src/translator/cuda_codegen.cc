#include "translator/cuda_codegen.h"

#include <sstream>

#include "common/error.h"
#include "frontend/ast.h"

namespace accmg::translator {

using frontend::As;
using frontend::Expr;
using frontend::ExprKind;
using frontend::Stmt;
using frontend::StmtKind;

namespace {

const char* CudaTypeName(frontend::ScalarType t) {
  switch (t) {
    case frontend::ScalarType::kInt32: return "int";
    case frontend::ScalarType::kInt64: return "long long";
    case frontend::ScalarType::kFloat32: return "float";
    case frontend::ScalarType::kFloat64: return "double";
    case frontend::ScalarType::kVoid: return "void";
  }
  return "?";
}

class KernelEmitter {
 public:
  explicit KernelEmitter(const LoopOffload& offload) : offload_(offload) {}

  std::string Emit() {
    EmitSignature();
    Line("{");
    ++indent_;
    Line("const long long " + offload_.induction->name +
         " = iter_lo + (long long)blockIdx.x * blockDim.x + threadIdx.x;");
    Line("if (" + offload_.induction->name + " >= iter_hi) return;");
    EmitReductionPrologue();
    if (offload_.fused.empty()) {
      EmitStmt(*offload_.loop->body);
    } else {
      // Fused offload: constituent bodies run back to back, each in its own
      // scope with its induction variable aliased to the shared one.
      for (const auto& part : offload_.fused) {
        Line("{");
        ++indent_;
        if (part.induction->name != offload_.induction->name) {
          Line("const long long " + part.induction->name + " = " +
               offload_.induction->name + ";");
        }
        EmitStmt(*part.loop->body);
        --indent_;
        Line("}");
      }
    }
    EmitReductionEpilogue();
    --indent_;
    Line("}");
    return out_.str();
  }

 private:
  void Line(const std::string& text) {
    for (int i = 0; i < indent_; ++i) out_ << "  ";
    out_ << text << '\n';
  }

  const ArrayConfig& ConfigOf(const frontend::VarDecl& decl) const {
    for (const auto& config : offload_.arrays) {
      if (config.decl == &decl) return config;
    }
    ACCMG_UNREACHABLE("array missing from offload");
  }

  const ir::ArrayParam& ParamOf(const ArrayConfig& config) const {
    return offload_.kernel
        .arrays[static_cast<std::size_t>(config.kernel_array_index)];
  }

  void EmitSignature() {
    out_ << "__global__ void " << offload_.name << "(\n";
    std::vector<std::string> params;
    for (const auto& config : offload_.arrays) {
      const auto& param = ParamOf(config);
      std::string decl = std::string("    ") +
                         CudaTypeName(config.decl->type.scalar) + "* " +
                         config.name + ", long long " + config.name + "_lo";
      if (param.miss_checked) {
        decl += ", long long " + config.name + "_own_lo, long long " +
                config.name + "_own_hi, accmg_miss_record* " + config.name +
                "_missbuf, int* " + config.name + "_misscount";
      }
      if (param.dirty_tracked) {
        decl += ", unsigned char* " + config.name +
                "_dirty1, unsigned char* " + config.name + "_dirty2";
      }
      params.push_back(decl);
    }
    for (const auto& red : offload_.array_reds) {
      params.push_back(std::string("    ") +
                       CudaTypeName(red.decl->type.scalar) + "* " +
                       red.decl->name + "_partial, long long " +
                       red.decl->name + "_red_lo");
    }
    for (const auto& red : offload_.scalar_reds) {
      params.push_back(std::string("    ") +
                       CudaTypeName(red.decl->type.scalar) + "* " +
                       red.decl->name + "_partial");
    }
    for (const auto& scalar : offload_.scalars) {
      params.push_back(std::string("    ") +
                       CudaTypeName(scalar.decl->type.scalar) + " " +
                       scalar.decl->name);
    }
    params.push_back("    long long iter_lo, long long iter_hi");
    for (std::size_t i = 0; i < params.size(); ++i) {
      out_ << params[i] << (i + 1 < params.size() ? ",\n" : ")\n");
    }
  }

  void EmitReductionPrologue() {
    for (const auto& red : offload_.scalar_reds) {
      const char* identity =
          red.op == ir::RedOp::kAdd   ? "0"
          : red.op == ir::RedOp::kMul ? "1"
          : red.op == ir::RedOp::kMin ? "ACCMG_TYPE_MAX"
                                      : "ACCMG_TYPE_MIN";
      Line(std::string(CudaTypeName(red.decl->type.scalar)) + " " +
           red.decl->name + "_priv = " + identity +
           ";  /* privatized; combined per block, per GPU, across GPUs */");
    }
  }

  void EmitReductionEpilogue() {
    for (const auto& red : offload_.scalar_reds) {
      Line("accmg_block_reduce_" + std::string(ir::RedOpName(red.op)) + "(" +
           red.decl->name + "_partial, " + red.decl->name + "_priv);");
    }
  }

  // --- expressions ---

  std::string EmitExpr(const Expr& expr) {
    switch (expr.kind) {
      case ExprKind::kIntLiteral:
        return std::to_string(As<frontend::IntLiteral>(expr).value);
      case ExprKind::kFloatLiteral: {
        const auto& lit = As<frontend::FloatLiteral>(expr);
        std::ostringstream os;
        os << lit.value;
        std::string text = os.str();
        if (text.find('.') == std::string::npos &&
            text.find('e') == std::string::npos) {
          text += ".0";
        }
        if (lit.is_float32) text += "f";
        return text;
      }
      case ExprKind::kVarRef:
        return As<frontend::VarRef>(expr).name;
      case ExprKind::kSubscript: {
        const auto& subscript = As<frontend::SubscriptExpr>(expr);
        const auto& base = As<frontend::VarRef>(*subscript.base);
        // Layout rewriting: subscripts are global indices, the per-GPU
        // segment starts at <name>_lo (paper Section IV-B3).
        return base.name + "[(" + EmitExpr(*subscript.index) + ") - " +
               base.name + "_lo]";
      }
      case ExprKind::kUnary: {
        const auto& unary = As<frontend::UnaryExpr>(expr);
        return std::string(frontend::UnaryOpSpelling(unary.op)) + "(" +
               EmitExpr(*unary.operand) + ")";
      }
      case ExprKind::kBinary: {
        const auto& binary = As<frontend::BinaryExpr>(expr);
        return "(" + EmitExpr(*binary.lhs) + " " +
               frontend::BinaryOpSpelling(binary.op) + " " +
               EmitExpr(*binary.rhs) + ")";
      }
      case ExprKind::kCall: {
        const auto& call = As<frontend::CallExpr>(expr);
        std::string out = call.callee + "(";
        for (std::size_t i = 0; i < call.args.size(); ++i) {
          if (i != 0) out += ", ";
          out += EmitExpr(*call.args[i]);
        }
        return out + ")";
      }
      case ExprKind::kCast: {
        const auto& cast = As<frontend::CastExpr>(expr);
        return std::string("(") + CudaTypeName(cast.target.scalar) + ")(" +
               EmitExpr(*cast.operand) + ")";
      }
      case ExprKind::kConditional: {
        const auto& cond = As<frontend::ConditionalExpr>(expr);
        return "(" + EmitExpr(*cond.cond) + " ? " +
               EmitExpr(*cond.then_expr) + " : " + EmitExpr(*cond.else_expr) +
               ")";
      }
    }
    ACCMG_UNREACHABLE("bad expr kind");
  }

  // --- statements ---

  void EmitStmt(const Stmt& stmt) {
    switch (stmt.kind) {
      case StmtKind::kDecl: {
        const auto& decl = As<frontend::DeclStmt>(stmt);
        std::string line = std::string(CudaTypeName(decl.decl->type.scalar)) +
                           " " + decl.decl->name;
        if (decl.init != nullptr) line += " = " + EmitExpr(*decl.init);
        Line(line + ";");
        break;
      }
      case StmtKind::kAssign:
        EmitAssign(As<frontend::AssignStmt>(stmt));
        break;
      case StmtKind::kExpr:
        if (As<frontend::ExprStmt>(stmt).expr != nullptr) {
          Line(EmitExpr(*As<frontend::ExprStmt>(stmt).expr) + ";");
        }
        break;
      case StmtKind::kIf: {
        const auto& if_stmt = As<frontend::IfStmt>(stmt);
        Line("if (" + EmitExpr(*if_stmt.cond) + ") {");
        ++indent_;
        EmitStmt(*if_stmt.then_stmt);
        --indent_;
        if (if_stmt.else_stmt != nullptr) {
          Line("} else {");
          ++indent_;
          EmitStmt(*if_stmt.else_stmt);
          --indent_;
        }
        Line("}");
        break;
      }
      case StmtKind::kFor: {
        const auto& for_stmt = As<frontend::ForStmt>(stmt);
        std::string header = "for (";
        if (for_stmt.init != nullptr) {
          header += InlineSimpleStmt(*for_stmt.init);
        }
        header += "; ";
        if (for_stmt.cond != nullptr) header += EmitExpr(*for_stmt.cond);
        header += "; ";
        if (for_stmt.step != nullptr) {
          header += InlineSimpleStmt(*for_stmt.step);
        }
        Line(header + ") {");
        ++indent_;
        EmitStmt(*for_stmt.body);
        --indent_;
        Line("}");
        break;
      }
      case StmtKind::kWhile: {
        const auto& while_stmt = As<frontend::WhileStmt>(stmt);
        if (while_stmt.is_do_while) {
          Line("do {");
          ++indent_;
          EmitStmt(*while_stmt.body);
          --indent_;
          Line("} while (" + EmitExpr(*while_stmt.cond) + ");");
        } else {
          Line("while (" + EmitExpr(*while_stmt.cond) + ") {");
          ++indent_;
          EmitStmt(*while_stmt.body);
          --indent_;
          Line("}");
        }
        break;
      }
      case StmtKind::kCompound:
        for (const auto& child : As<frontend::CompoundStmt>(stmt).body) {
          EmitStmt(*child);
        }
        break;
      case StmtKind::kBreak:
        Line("break;");
        break;
      case StmtKind::kContinue:
        Line("continue;");
        break;
      case StmtKind::kReturn:
        Line("return;");
        break;
    }
  }

  std::string InlineSimpleStmt(const Stmt& stmt) {
    if (stmt.kind == StmtKind::kDecl) {
      const auto& decl = As<frontend::DeclStmt>(stmt);
      std::string out = std::string(CudaTypeName(decl.decl->type.scalar)) +
                        " " + decl.decl->name;
      if (decl.init != nullptr) out += " = " + EmitExpr(*decl.init);
      return out;
    }
    if (stmt.kind == StmtKind::kAssign) {
      const auto& assign = As<frontend::AssignStmt>(stmt);
      const char* op = "=";
      switch (assign.op) {
        case frontend::AssignOp::kAssign: op = "="; break;
        case frontend::AssignOp::kAddAssign: op = "+="; break;
        case frontend::AssignOp::kSubAssign: op = "-="; break;
        case frontend::AssignOp::kMulAssign: op = "*="; break;
        case frontend::AssignOp::kDivAssign: op = "/="; break;
      }
      return EmitExpr(*assign.target) + " " + op + " " +
             EmitExpr(*assign.value);
    }
    return "/* unsupported */";
  }

  void EmitAssign(const frontend::AssignStmt& stmt) {
    if (stmt.target->kind != ExprKind::kSubscript) {
      // Scalar reduction statements appear as privatized accumulation.
      for (const auto& red : offload_.scalar_reds) {
        if (stmt.target->kind == ExprKind::kVarRef &&
            As<frontend::VarRef>(*stmt.target).decl == red.decl) {
          Line(red.decl->name + "_priv " +
               (red.op == ir::RedOp::kMul ? "*=" : "+=") + " " +
               EmitExpr(*stmt.value) + ";");
          return;
        }
      }
      Line(InlineSimpleStmt(stmt) + ";");
      return;
    }
    const auto& subscript = As<frontend::SubscriptExpr>(*stmt.target);
    const auto& base = As<frontend::VarRef>(*subscript.base);
    const ArrayConfig& config = ConfigOf(*base.decl);
    const ir::ArrayParam& param = ParamOf(config);

    // Reduction-to-array statement: accumulate into the per-GPU partial.
    for (const auto& red : offload_.array_reds) {
      if (red.decl == base.decl) {
        std::string value;
        if (stmt.op != frontend::AssignOp::kAssign) {
          value = EmitExpr(*stmt.value);
        } else if (stmt.value->kind == ExprKind::kBinary) {
          value = EmitExpr(*As<frontend::BinaryExpr>(*stmt.value).rhs);
        } else {
          value = "/* see source */";
        }
        Line("accmg_red_" + std::string(ir::RedOpName(red.op)) + "(&" +
             base.name + "_partial[(" + EmitExpr(*subscript.index) + ") - " +
             base.name + "_red_lo], " + value + ");");
        return;
      }
    }

    const std::string index = EmitExpr(*subscript.index);
    const std::string store = InlineSimpleStmt(stmt) + ";";
    if (param.miss_checked) {
      // Write-miss check (Section IV-D2): non-resident destinations are
      // buffered as (address, data) records for the comm manager.
      Line("if ((" + index + ") >= " + base.name + "_own_lo && (" + index +
           ") < " + base.name + "_own_hi) {");
      ++indent_;
      Line(store);
      --indent_;
      Line("} else {");
      ++indent_;
      Line("accmg_record_miss(" + base.name + "_missbuf, " + base.name +
           "_misscount, " + index + ", " + EmitExpr(*stmt.value) + ");");
      --indent_;
      Line("}");
      return;
    }
    Line(store);
    if (param.dirty_tracked) {
      // Two-level dirty bits (Section IV-D1).
      Line(base.name + "_dirty1[" + index + "] = 1;");
      Line(base.name + "_dirty2[(" + index + ") / ACCMG_CHUNK_ELEMS] = 1;");
    }
  }

  const LoopOffload& offload_;
  std::ostringstream out_;
  int indent_ = 0;
};

}  // namespace

std::string GenerateCudaKernel(const LoopOffload& offload) {
  KernelEmitter emitter(offload);
  return emitter.Emit();
}

std::string GenerateHostSketch(const CompiledFunction& function) {
  std::ostringstream os;
  os << "/* host code generated for " << function.function->name << " */\n";
  for (const auto& offload : function.offloads) {
    os << "/* parallel loop at line " << offload.loop->loc.line << " */\n";
    os << "accmg_task_map(num_gpus, iter_lo, iter_hi, tasks);\n";
    for (const auto& config : offload.arrays) {
      const auto& param =
          offload.kernel
              .arrays[static_cast<std::size_t>(config.kernel_array_index)];
      os << "accmg_load(\"" << config.name << "\", "
         << (config.has_localaccess ? "DISTRIBUTE" : "REPLICATE");
      if (param.dirty_tracked) os << " | DIRTY_TRACK";
      if (param.miss_checked) os << " | MISS_CHECK";
      os << ");\n";
    }
    os << "for (int g = 0; g < num_gpus; ++g) {\n"
       << "  cudaSetDevice(g);\n"
       << "  " << offload.name << "<<<grid(tasks[g]), block>>>(...);\n"
       << "}\n"
       << "accmg_sync_all();\n";
    bool any_comm = false;
    for (const auto& config : offload.arrays) {
      const auto& param =
          offload.kernel
              .arrays[static_cast<std::size_t>(config.kernel_array_index)];
      if (param.dirty_tracked) {
        os << "accmg_propagate_dirty(\"" << config.name << "\");\n";
        any_comm = true;
      }
      if (param.miss_checked) {
        os << "accmg_replay_misses(\"" << config.name << "\");\n";
        any_comm = true;
      }
    }
    for (const auto& red : offload.array_reds) {
      os << "accmg_combine_array_reduction(\"" << red.decl->name << "\");\n";
      any_comm = true;
    }
    for (const auto& red : offload.scalar_reds) {
      os << "accmg_combine_scalar_reduction(\"" << red.decl->name << "\");\n";
      any_comm = true;
    }
    if (!any_comm) os << "/* no inter-GPU communication required */\n";
    os << "\n";
  }
  return os.str();
}

std::string GenerateCudaProgram(const CompiledProgram& program) {
  std::ostringstream os;
  os << "/* generated by the accmg multi-GPU OpenACC translator */\n"
     << "#include \"accmg_device_runtime.cuh\"\n\n";
  for (const auto& function : program.functions) {
    for (const auto& offload : function.offloads) {
      os << GenerateCudaKernel(offload) << "\n";
    }
    os << GenerateHostSketch(function);
  }
  return os.str();
}

}  // namespace accmg::translator
