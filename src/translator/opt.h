// Optimizing mid-end, run between lowering and codegen (CompileOptions::
// opt_level):
//  * fusion of adjacent parallel-loop offloads when the affine read/write
//    summaries prove no cross-offload dependence — each fusion deletes an
//    entire dirty-propagation + halo round at runtime;
//  * local common-subexpression elimination over the generated kernel IR;
//  * loop-invariant code motion out of inner (per-thread sequential) loops.
// Every rewrite bails out conservatively when legality cannot be proven;
// refusals are counted, never guessed through.
#pragma once

#include "ir/ir.h"
#include "translator/offload.h"

namespace accmg::translator {

/// Counts of rewrites applied (and refused) by one OptimizeFunction run.
/// The same values are accumulated into the global metrics registry as
/// opt.fusions, opt.hoists, opt.cse_hits and opt.bailouts.
struct OptStats {
  int fusions = 0;
  int hoists = 0;
  int cse_hits = 0;
  int bailouts = 0;
};

/// Runs the mid-end over one compiled (already lowered) function:
///   opt_level >= 1 — offload fusion + CSE;
///   opt_level >= 2 — additionally invariant hoisting.
/// Fused offloads are re-lowered in place; the constituent loops that were
/// folded away land in `fn.fused_away` so the host interpreter skips them.
OptStats OptimizeFunction(CompiledFunction& fn, const CompileOptions& options);

/// Local value numbering + copy propagation per basic block, followed by a
/// global dead-code sweep. kLoad results participate, keyed on a per-array
/// store epoch so stores conservatively kill prior loads. Returns the number
/// of redundant instructions eliminated.
int CsePass(ir::KernelIR& kernel);

/// Hoists provably loop-invariant instructions out of innermost natural
/// loops in the kernel IR. Only instructions that already execute
/// unconditionally per loop entry (or whose execution is proven by constant
/// evaluation of the loop head) are moved, so traps, loads and register
/// contents are bit-identical to the unoptimized kernel. Returns the number
/// of instructions hoisted.
int HoistPass(ir::KernelIR& kernel);

}  // namespace accmg::translator
