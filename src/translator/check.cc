#include "translator/check.h"

#include <algorithm>
#include <functional>
#include <map>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/error.h"
#include "common/log.h"
#include "translator/eval.h"

namespace accmg::translator {

using accmg::CompileError;
using frontend::As;
using frontend::Directive;
using frontend::Expr;
using frontend::ExprKind;
using frontend::ForStmt;
using frontend::Stmt;
using frontend::StmtKind;
using frontend::VarDecl;

namespace {

[[noreturn]] void Fail(frontend::SourceLocation loc,
                       const std::string& message) {
  throw CompileError(loc.ToString() + ": " + message);
}

// --- symbolic linear-combination form ---------------------------------------
//
// A Poly maps monomials (sorted multisets of VarDecl ids; the empty monomial
// is the constant term) to integer coefficients. Only +, -, * of integers
// and scalar variables build polys; anything else (subscripts, calls,
// divisions, floats) makes the expression unanalyzable.

using Monomial = std::vector<int>;
using Poly = std::map<Monomial, std::int64_t>;

constexpr std::size_t kMaxTerms = 32;
constexpr std::size_t kMaxDegree = 4;

void Prune(Poly& poly) {
  for (auto it = poly.begin(); it != poly.end();) {
    it = it->second == 0 ? poly.erase(it) : std::next(it);
  }
}

bool MulPoly(const Poly& a, const Poly& b, Poly* out) {
  for (const auto& [ma, ca] : a) {
    for (const auto& [mb, cb] : b) {
      Monomial m;
      m.reserve(ma.size() + mb.size());
      std::merge(ma.begin(), ma.end(), mb.begin(), mb.end(),
                 std::back_inserter(m));
      if (m.size() > kMaxDegree) return false;
      (*out)[m] += ca * cb;
      if (out->size() > kMaxTerms) return false;
    }
  }
  Prune(*out);
  return true;
}

/// Accumulates `scale * expr` into `*out`; records every variable seen in
/// `decls`. Returns false when the expression is not a linear combination of
/// integer scalars.
bool AddExpr(const Expr& expr, std::int64_t scale, Poly* out,
             std::unordered_map<int, const VarDecl*>& decls) {
  switch (expr.kind) {
    case ExprKind::kIntLiteral:
      (*out)[Monomial{}] += scale * As<frontend::IntLiteral>(expr).value;
      return true;
    case ExprKind::kVarRef: {
      const VarDecl* decl = As<frontend::VarRef>(expr).decl;
      if (decl == nullptr || decl->type.is_pointer) return false;
      decls[decl->id] = decl;
      (*out)[Monomial{decl->id}] += scale;
      return true;
    }
    case ExprKind::kCast:
      return AddExpr(*As<frontend::CastExpr>(expr).operand, scale, out,
                     decls);
    case ExprKind::kUnary: {
      const auto& unary = As<frontend::UnaryExpr>(expr);
      if (unary.op != frontend::UnaryOp::kNeg) return false;
      return AddExpr(*unary.operand, -scale, out, decls);
    }
    case ExprKind::kBinary: {
      const auto& binary = As<frontend::BinaryExpr>(expr);
      switch (binary.op) {
        case frontend::BinaryOp::kAdd:
          return AddExpr(*binary.lhs, scale, out, decls) &&
                 AddExpr(*binary.rhs, scale, out, decls);
        case frontend::BinaryOp::kSub:
          return AddExpr(*binary.lhs, scale, out, decls) &&
                 AddExpr(*binary.rhs, -scale, out, decls);
        case frontend::BinaryOp::kMul: {
          Poly lhs, rhs, product;
          if (!AddExpr(*binary.lhs, 1, &lhs, decls) ||
              !AddExpr(*binary.rhs, 1, &rhs, decls) ||
              !MulPoly(lhs, rhs, &product)) {
            return false;
          }
          for (const auto& [m, c] : product) (*out)[m] += scale * c;
          return true;
        }
        default:
          return false;
      }
    }
    default:
      return false;
  }
}

bool MonomialContains(const Monomial& m, int id) {
  return std::find(m.begin(), m.end(), id) != m.end();
}

// --- iteration-space bounds -------------------------------------------------

struct VarBounds {
  const Expr* lower = nullptr;
  const Expr* upper = nullptr;
  bool upper_inclusive = false;
};

/// Collects [lower, upper) bounds for every canonical (unit-stride,
/// initialized, `v < bound` / `v <= bound`) for-loop variable inside the
/// body, dropping any variable that is also assigned outside its loop
/// header. Non-canonical loops simply leave their variable unbounded.
class BoundsCollector {
 public:
  explicit BoundsCollector(const LoopOffload& offload) {
    bounds_[offload.induction->id] =
        VarBounds{offload.lower_bound, offload.upper_bound,
                  offload.upper_inclusive};
    Walk(*offload.loop->body);
    for (int id : assigned_) bounds_.erase(id);
  }

  const VarBounds* Find(int id) const {
    auto it = bounds_.find(id);
    return it == bounds_.end() ? nullptr : &it->second;
  }

 private:
  void Walk(const Stmt& stmt) {
    switch (stmt.kind) {
      case StmtKind::kFor: {
        const auto& loop = As<ForStmt>(stmt);
        NoteLoop(loop);
        if (loop.init != nullptr) Walk(*loop.init);
        Walk(*loop.body);
        break;
      }
      case StmtKind::kIf: {
        const auto& s = As<frontend::IfStmt>(stmt);
        Walk(*s.then_stmt);
        if (s.else_stmt != nullptr) Walk(*s.else_stmt);
        break;
      }
      case StmtKind::kWhile:
        Walk(*As<frontend::WhileStmt>(stmt).body);
        break;
      case StmtKind::kCompound:
        for (const auto& child : As<frontend::CompoundStmt>(stmt).body) {
          Walk(*child);
        }
        break;
      case StmtKind::kAssign: {
        const auto& assign = As<frontend::AssignStmt>(stmt);
        if (assign.target->kind == ExprKind::kVarRef) {
          const VarDecl* decl = As<frontend::VarRef>(*assign.target).decl;
          if (decl != nullptr) assigned_.insert(decl->id);
        }
        break;
      }
      default:
        break;
    }
  }

  void NoteLoop(const ForStmt& loop) {
    const VarDecl* var = nullptr;
    const Expr* lower = nullptr;
    if (loop.init != nullptr && loop.init->kind == StmtKind::kDecl) {
      const auto& decl = As<frontend::DeclStmt>(*loop.init);
      var = decl.decl.get();
      lower = decl.init.get();
    } else if (loop.init != nullptr && loop.init->kind == StmtKind::kAssign) {
      const auto& assign = As<frontend::AssignStmt>(*loop.init);
      if (assign.target->kind == ExprKind::kVarRef &&
          assign.op == frontend::AssignOp::kAssign) {
        var = As<frontend::VarRef>(*assign.target).decl;
        lower = assign.value.get();
      }
    }
    if (var == nullptr || lower == nullptr) return;

    if (loop.cond == nullptr || loop.cond->kind != ExprKind::kBinary) return;
    const auto& cond = As<frontend::BinaryExpr>(*loop.cond);
    if ((cond.op != frontend::BinaryOp::kLt &&
         cond.op != frontend::BinaryOp::kLe) ||
        cond.lhs->kind != ExprKind::kVarRef ||
        As<frontend::VarRef>(*cond.lhs).decl != var) {
      return;
    }

    if (loop.step == nullptr || loop.step->kind != StmtKind::kAssign) return;
    const auto& step = As<frontend::AssignStmt>(*loop.step);
    const bool unit = step.target->kind == ExprKind::kVarRef &&
                      As<frontend::VarRef>(*step.target).decl == var &&
                      step.op == frontend::AssignOp::kAddAssign &&
                      step.value->kind == ExprKind::kIntLiteral &&
                      As<frontend::IntLiteral>(*step.value).value == 1;
    if (!unit) return;

    bounds_[var->id] = VarBounds{lower, cond.rhs.get(),
                                 cond.op == frontend::BinaryOp::kLe};
  }

  std::unordered_map<int, VarBounds> bounds_;
  std::unordered_set<int> assigned_;
};

// --- slack minimization -----------------------------------------------------

enum class Verdict { kCovered, kViolated, kUnknown };

/// Lower-bounds `slack` over the iteration space by repeatedly substituting
/// a bounded variable with the bound that minimizes the poly (its lower
/// bound when the coefficient is positive, its inclusive maximum when
/// negative). Only variables that occur in exactly one monomial, alone and
/// linearly, are eliminated — anything else stays symbolic and the result is
/// kUnknown. When the poly collapses to a constant c, the verdict is
/// kCovered for c >= 0 (the minimum slack is non-negative: every executed
/// iteration stays in the window) and kViolated for c < 0 (some iteration
/// provably leaves it, assuming the loops run at all).
Verdict MinimizeSlack(Poly slack, const BoundsCollector& bounds,
                      std::unordered_map<int, const VarDecl*>& decls,
                      std::int64_t* min_slack) {
  for (int round = 0; round < 16; ++round) {
    Prune(slack);
    if (slack.empty()) {
      *min_slack = 0;
      return Verdict::kCovered;
    }
    if (slack.size() == 1 && slack.begin()->first.empty()) {
      *min_slack = slack.begin()->second;
      return *min_slack >= 0 ? Verdict::kCovered : Verdict::kViolated;
    }

    bool progressed = false;
    for (const auto& [monomial, coeff] : slack) {
      if (monomial.size() != 1) continue;
      const int var = monomial[0];
      bool elsewhere = false;
      for (const auto& [other, c2] : slack) {
        if (other != monomial && MonomialContains(other, var)) {
          elsewhere = true;
        }
      }
      if (elsewhere) continue;
      const VarBounds* vb = bounds.Find(var);
      if (vb == nullptr) continue;
      const Expr* bound = coeff > 0 ? vb->lower : vb->upper;
      if (bound == nullptr) continue;
      Poly substitute;
      if (!AddExpr(*bound, 1, &substitute, decls)) continue;
      if (coeff < 0 && !vb->upper_inclusive) {
        substitute[Monomial{}] -= 1;  // exclusive bound: max value is ub - 1
      }
      Prune(substitute);
      bool self_referential = false;
      for (const auto& [m, c] : substitute) {
        if (MonomialContains(m, var)) self_referential = true;
      }
      if (self_referential) continue;

      slack.erase(monomial);
      for (const auto& [m, c] : substitute) slack[m] += coeff * c;
      progressed = true;
      break;
    }
    if (!progressed) return Verdict::kUnknown;
  }
  return Verdict::kUnknown;
}

// --- subscript collection ---------------------------------------------------

struct SubscriptUse {
  const frontend::SubscriptExpr* subscript = nullptr;
  bool write_only = false;  ///< pure store target (never read back)
};

void CollectSubscripts(const Expr& expr, bool write_only,
                       std::vector<SubscriptUse>& uses) {
  switch (expr.kind) {
    case ExprKind::kSubscript: {
      const auto& s = As<frontend::SubscriptExpr>(expr);
      uses.push_back(SubscriptUse{&s, write_only});
      CollectSubscripts(*s.index, false, uses);  // index is a read context
      break;
    }
    case ExprKind::kUnary:
      CollectSubscripts(*As<frontend::UnaryExpr>(expr).operand, false, uses);
      break;
    case ExprKind::kBinary:
      CollectSubscripts(*As<frontend::BinaryExpr>(expr).lhs, false, uses);
      CollectSubscripts(*As<frontend::BinaryExpr>(expr).rhs, false, uses);
      break;
    case ExprKind::kCall:
      for (const auto& arg : As<frontend::CallExpr>(expr).args) {
        CollectSubscripts(*arg, false, uses);
      }
      break;
    case ExprKind::kCast:
      CollectSubscripts(*As<frontend::CastExpr>(expr).operand, false, uses);
      break;
    case ExprKind::kConditional: {
      const auto& c = As<frontend::ConditionalExpr>(expr);
      CollectSubscripts(*c.cond, false, uses);
      CollectSubscripts(*c.then_expr, false, uses);
      CollectSubscripts(*c.else_expr, false, uses);
      break;
    }
    default:
      break;
  }
}

void CollectStmtSubscripts(const Stmt& stmt, std::vector<SubscriptUse>& uses) {
  switch (stmt.kind) {
    case StmtKind::kDecl:
      if (As<frontend::DeclStmt>(stmt).init != nullptr) {
        CollectSubscripts(*As<frontend::DeclStmt>(stmt).init, false, uses);
      }
      break;
    case StmtKind::kAssign: {
      const auto& assign = As<frontend::AssignStmt>(stmt);
      // A pure-assign subscript target is write-only; a compound op
      // (a[x] += v) also reads the element, so it counts as a read.
      CollectSubscripts(*assign.target,
                        assign.op == frontend::AssignOp::kAssign, uses);
      CollectSubscripts(*assign.value, false, uses);
      break;
    }
    case StmtKind::kExpr:
      if (As<frontend::ExprStmt>(stmt).expr != nullptr) {
        CollectSubscripts(*As<frontend::ExprStmt>(stmt).expr, false, uses);
      }
      break;
    case StmtKind::kIf: {
      const auto& s = As<frontend::IfStmt>(stmt);
      CollectSubscripts(*s.cond, false, uses);
      CollectStmtSubscripts(*s.then_stmt, uses);
      if (s.else_stmt != nullptr) CollectStmtSubscripts(*s.else_stmt, uses);
      break;
    }
    case StmtKind::kFor: {
      const auto& s = As<ForStmt>(stmt);
      if (s.init != nullptr) CollectStmtSubscripts(*s.init, uses);
      if (s.cond != nullptr) CollectSubscripts(*s.cond, false, uses);
      if (s.step != nullptr) CollectStmtSubscripts(*s.step, uses);
      CollectStmtSubscripts(*s.body, uses);
      break;
    }
    case StmtKind::kWhile:
      CollectSubscripts(*As<frontend::WhileStmt>(stmt).cond, false, uses);
      CollectStmtSubscripts(*As<frontend::WhileStmt>(stmt).body, uses);
      break;
    case StmtKind::kCompound:
      for (const auto& child : As<frontend::CompoundStmt>(stmt).body) {
        CollectStmtSubscripts(*child, uses);
      }
      break;
    case StmtKind::kReturn:
      if (As<frontend::ReturnStmt>(stmt).value != nullptr) {
        CollectSubscripts(*As<frontend::ReturnStmt>(stmt).value, false, uses);
      }
      break;
    default:
      break;
  }
}

std::string WindowText(const ArrayConfig& config) {
  auto term = [](const Expr* e, const char* name, const char* dflt) {
    std::int64_t v;
    if (e == nullptr) return std::string(dflt);
    if (TryFoldConstant(*e, &v)) return std::to_string(v);
    return std::string(name);
  };
  if (config.cols != nullptr) {
    return "[" + term(config.cols, "cols", "cols") + "*(i - " +
           term(config.left, "left", "0") + "), " +
           term(config.cols, "cols", "cols") + "*(i + 1 + " +
           term(config.right, "right", "0") + ") - 1]";
  }
  return "[" + term(config.stride, "stride", "1") + "*i - " +
         term(config.left, "left", "0") + ", " +
         term(config.stride, "stride", "1") + "*(i+1) - 1 + " +
         term(config.right, "right", "0") + "]";
}

}  // namespace

void CheckOffloadDirectives(const LoopOffload& offload,
                            const Directive* local_access) {
  // A localaccess spec naming an array the loop never touches is harmless
  // (the loader simply has nothing to distribute) but often a typo'd name,
  // so flag it without rejecting.
  if (local_access != nullptr) {
    for (const auto& spec : local_access->local_access) {
      if (offload.FindArray(spec.array) == nullptr) {
        ACCMG_LOG(kWarn) << spec.loc.ToString() << ": localaccess names array '"
                         << spec.array
                         << "' which is not used in the parallel loop";
      }
    }
  }

  BoundsCollector bounds(offload);
  std::vector<SubscriptUse> uses;
  CollectStmtSubscripts(*offload.loop->body, uses);

  for (const auto& config : offload.arrays) {
    if (!config.has_localaccess) continue;

    // Reduction destinations stay replicated so that the combined result
    // folds into the pre-kernel value exactly once; a localaccess spec on
    // one contradicts that placement and would silently be ignored.
    if (config.is_reduction_dest) {
      frontend::SourceLocation loc = offload.loop->loc;
      if (local_access != nullptr) {
        for (const auto& spec : local_access->local_access) {
          if (spec.array == config.name) loc = spec.loc;
        }
      }
      Fail(loc, "array '" + config.name +
                    "' is a reductiontoarray destination and cannot also "
                    "have a localaccess declaration (reduction destinations "
                    "are replicated)");
    }

    // Constant-foldable window parameters must be sane.
    std::int64_t folded;
    if (config.stride != nullptr && TryFoldConstant(*config.stride, &folded) &&
        folded < 1) {
      Fail(config.stride->loc, "localaccess stride of '" + config.name +
                                   "' must be >= 1 (got " +
                                   std::to_string(folded) + ")");
    }
    if (config.left != nullptr && TryFoldConstant(*config.left, &folded) &&
        folded < 0) {
      Fail(config.left->loc, "localaccess left halo of '" + config.name +
                                 "' must be >= 0 (got " +
                                 std::to_string(folded) + ")");
    }
    if (config.right != nullptr && TryFoldConstant(*config.right, &folded) &&
        folded < 0) {
      Fail(config.right->loc, "localaccess right halo of '" + config.name +
                                  "' must be >= 0 (got " +
                                  std::to_string(folded) + ")");
    }
    if (config.cols != nullptr && TryFoldConstant(*config.cols, &folded) &&
        folded < 1) {
      Fail(config.cols->loc, "localaccess cols of '" + config.name +
                                 "' must be >= 1 (got " +
                                 std::to_string(folded) + ")");
    }

    // Coverage: for every subscript of this array, the slack polynomials
    //   lo_slack = index - (stride*i - left)
    //   hi_slack = (stride*(i+1) - 1 + right) - index
    // must both be provably >= 0 over the iteration space.
    for (const auto& use : uses) {
      const auto& subscript = *use.subscript;
      if (subscript.base->kind != ExprKind::kVarRef ||
          As<frontend::VarRef>(*subscript.base).decl != config.decl) {
        continue;
      }

      std::unordered_map<int, const VarDecl*> decls;
      Poly index, stride, halo_left, halo_right;
      bool analyzable = AddExpr(*subscript.index, 1, &index, decls);
      if (config.cols != nullptr) {
        // 2-D row window: the effective element stride is the row length,
        // and left/right count whole rows, so the element halos are
        // left*cols and right*cols.
        analyzable &= AddExpr(*config.cols, 1, &stride, decls);
        if (analyzable && config.left != nullptr) {
          Poly rows, scaled;
          analyzable = AddExpr(*config.left, 1, &rows, decls) &&
                       MulPoly(rows, stride, &scaled);
          halo_left = std::move(scaled);
        }
        if (analyzable && config.right != nullptr) {
          Poly rows, scaled;
          analyzable = AddExpr(*config.right, 1, &rows, decls) &&
                       MulPoly(rows, stride, &scaled);
          halo_right = std::move(scaled);
        }
      } else {
        if (config.stride != nullptr) {
          analyzable &= AddExpr(*config.stride, 1, &stride, decls);
        } else {
          stride[Monomial{}] = 1;
        }
        if (config.left != nullptr) {
          analyzable &= AddExpr(*config.left, 1, &halo_left, decls);
        }
        if (config.right != nullptr) {
          analyzable &= AddExpr(*config.right, 1, &halo_right, decls);
        }
      }
      if (!analyzable) continue;  // undecidable: runtime is the backstop

      Poly stride_i;
      Poly induction;
      induction[Monomial{offload.induction->id}] = 1;
      decls[offload.induction->id] = offload.induction;
      if (!MulPoly(stride, induction, &stride_i)) continue;

      // lo_slack = index - stride*i + left
      Poly lo_slack = index;
      for (const auto& [m, c] : stride_i) lo_slack[m] -= c;
      for (const auto& [m, c] : halo_left) lo_slack[m] += c;
      // hi_slack = stride*i + stride - 1 + right - index
      Poly hi_slack = stride_i;
      for (const auto& [m, c] : stride) hi_slack[m] += c;
      hi_slack[Monomial{}] -= 1;
      for (const auto& [m, c] : halo_right) hi_slack[m] += c;
      for (const auto& [m, c] : index) hi_slack[m] -= c;

      for (const auto& [slack, side] :
           {std::pair<Poly, const char*>{lo_slack, "left"},
            std::pair<Poly, const char*>{hi_slack, "right"}}) {
        std::int64_t min_slack = 0;
        if (MinimizeSlack(slack, bounds, decls, &min_slack) !=
            Verdict::kViolated) {
          continue;
        }
        const std::string message =
            "localaccess window " + WindowText(config) + " of '" +
            config.name + "' does not cover this " +
            (use.write_only ? "write" : "read") + " in kernel '" +
            offload.name + "': the index provably escapes the window's " +
            side + " edge by " + std::to_string(-min_slack) + " element(s)";
        if (use.write_only) {
          // Legal — the write-miss buffer replays it on the owner — but a
          // sign the declaration is loose, so it is worth a warning.
          ACCMG_LOG(kWarn) << subscript.loc.ToString() << ": " << message
                           << " (handled by write-miss replay)";
        } else {
          Fail(subscript.loc, message);
        }
      }
    }
  }
}

bool ProveWritesRowLocal(const LoopOffload& offload,
                         const ArrayConfig& config) {
  if (config.cols == nullptr) return false;
  BoundsCollector bounds(offload);

  // Collect every store index of this array (plain and compound assigns).
  std::vector<const Expr*> write_indices;
  std::function<void(const Stmt&)> walk = [&](const Stmt& stmt) {
    switch (stmt.kind) {
      case StmtKind::kAssign: {
        const auto& assign = As<frontend::AssignStmt>(stmt);
        if (assign.target->kind == ExprKind::kSubscript) {
          const auto& sub = As<frontend::SubscriptExpr>(*assign.target);
          if (sub.base->kind == ExprKind::kVarRef &&
              As<frontend::VarRef>(*sub.base).decl == config.decl) {
            write_indices.push_back(sub.index.get());
          }
        }
        break;
      }
      case StmtKind::kIf: {
        const auto& s = As<frontend::IfStmt>(stmt);
        walk(*s.then_stmt);
        if (s.else_stmt != nullptr) walk(*s.else_stmt);
        break;
      }
      case StmtKind::kFor: {
        const auto& s = As<ForStmt>(stmt);
        if (s.init != nullptr) walk(*s.init);
        if (s.step != nullptr) walk(*s.step);
        walk(*s.body);
        break;
      }
      case StmtKind::kWhile:
        walk(*As<frontend::WhileStmt>(stmt).body);
        break;
      case StmtKind::kCompound:
        for (const auto& child : As<frontend::CompoundStmt>(stmt).body) {
          walk(*child);
        }
        break;
      default:
        break;
    }
  };
  walk(*offload.loop->body);
  if (write_indices.empty()) return false;

  for (const Expr* index_expr : write_indices) {
    std::unordered_map<int, const VarDecl*> decls;
    Poly index, cols;
    if (!AddExpr(*index_expr, 1, &index, decls)) return false;
    if (!AddExpr(*config.cols, 1, &cols, decls)) return false;
    Poly induction;
    induction[Monomial{offload.induction->id}] = 1;
    decls[offload.induction->id] = offload.induction;
    Poly cols_i;
    if (!MulPoly(cols, induction, &cols_i)) return false;

    // lo = index - cols*i and hi = cols*i + cols - 1 - index must both be
    // provably >= 0: the store stays inside row i. Unlike the coverage
    // check, kUnknown is a failure here — this proof REMOVES the write-miss
    // safety net, so only a definite answer counts.
    Poly lo = index;
    for (const auto& [m, c] : cols_i) lo[m] -= c;
    Poly hi = cols_i;
    for (const auto& [m, c] : cols) hi[m] += c;
    hi[Monomial{}] -= 1;
    for (const auto& [m, c] : index) hi[m] -= c;

    std::int64_t min_slack = 0;
    if (MinimizeSlack(lo, bounds, decls, &min_slack) != Verdict::kCovered) {
      return false;
    }
    if (MinimizeSlack(hi, bounds, decls, &min_slack) != Verdict::kCovered) {
      return false;
    }
  }
  return true;
}

}  // namespace accmg::translator
