// AST -> KernelIR lowering for the body of an offloaded parallel loop.
#pragma once

#include <unordered_map>

#include "frontend/ast.h"
#include "ir/builder.h"
#include "translator/offload.h"

namespace accmg::translator {

/// Lowers `offload.loop`'s body into `offload.kernel`. The offload must
/// already carry the signature information (arrays, scalars, reductions)
/// produced by the analysis pass in Compile(). Throws CompileError on
/// constructs that cannot run on the GPU.
class KernelLowering {
 public:
  explicit KernelLowering(LoopOffload& offload);

  void Lower();

 private:
  struct LoopContext {
    std::vector<std::size_t> break_branches;
    std::vector<std::size_t> continue_branches;
  };

  // Statement lowering.
  void LowerStmt(const frontend::Stmt& stmt);
  void LowerAssign(const frontend::AssignStmt& stmt);
  void LowerIf(const frontend::IfStmt& stmt);
  void LowerFor(const frontend::ForStmt& stmt);
  void LowerWhile(const frontend::WhileStmt& stmt);

  // Expression lowering; returns the register holding the value, whose
  // runtime representation matches `expr.type` (floats widened to double,
  // f32 results rounded; ints sign-extended to 64 bits).
  int LowerExpr(const frontend::Expr& expr);
  /// Lowers and converts to `target` representation.
  int LowerExprAs(const frontend::Expr& expr, frontend::ScalarType target);
  int Convert(int reg, frontend::ScalarType from, frontend::ScalarType to);

  int VarReg(const frontend::VarDecl& decl);
  bool IsScalarRedVar(const frontend::VarDecl& decl, int* slot,
                      ir::RedOp* op) const;
  const ArrayRedTarget* FindArrayRed(const frontend::VarDecl& decl) const;
  int ArrayIndexOf(const frontend::VarDecl& decl) const;

  [[noreturn]] void Fail(frontend::SourceLocation loc,
                         const std::string& message) const;

  LoopOffload& offload_;
  ir::KernelBuilder builder_;
  std::unordered_map<int, int> var_regs_;  ///< VarDecl::id -> register
  std::vector<LoopContext> loop_stack_;
};

}  // namespace accmg::translator
