// SpMV (ELLPACK format): sparse matrix-vector product, y = A * x.
//
// Not one of the paper's three benchmarks, but squarely in the MapReduce
// dwarf family its introduction motivates (linear algebra). It exercises a
// placement mix none of the other apps covers: the matrix (values + column
// indices, ELL layout) is distributed via localaccess stride(max_nnz), the
// input vector x is read at arbitrary column positions and therefore
// replicated read-only, and the output y is distributed with proven-local
// writes — so, like MD, SpMV needs no inter-GPU communication, but unlike
// MD it is memory-bound, which shifts its roofline balance.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "runtime/program.h"
#include "sim/platform.h"

namespace accmg::apps {

struct SpmvInput {
  int rows = 0;
  int max_nnz = 0;            ///< entries per row (ELL width)
  std::vector<float> values;  ///< rows * max_nnz, zero-padded
  std::vector<std::int32_t> cols;  ///< rows * max_nnz column indices
  std::vector<float> x;       ///< dense input vector (length rows)
};

/// Banded random matrix with a few long-range entries per row.
SpmvInput MakeSpmvInput(int rows, int max_nnz, std::uint64_t seed = 23);

std::vector<float> SpmvReference(const SpmvInput& input);

const std::string& SpmvSource();

runtime::RunReport RunSpmvAcc(const SpmvInput& input, sim::Platform& platform,
                              int num_gpus, std::vector<float>* y_out,
                              const runtime::ExecOptions& options = {},
                              const translator::CompileOptions& copts = {});

runtime::RunReport RunSpmvOpenMp(const SpmvInput& input,
                                 sim::Platform& platform,
                                 std::vector<float>* y_out);

runtime::RunReport RunSpmvCuda(const SpmvInput& input, sim::Platform& platform,
                               std::vector<float>* y_out);

}  // namespace accmg::apps
