#include "apps/spmv/spmv.h"

#include <algorithm>

#include "common/error.h"
#include "common/rng.h"

namespace accmg::apps {

namespace {

constexpr char kSpmvSource[] = R"(
void spmv(int rows, int maxnnz, float* values, int* cols, float* x,
          float* y) {
  #pragma acc data copyin(values[0:rows*maxnnz], cols[0:rows*maxnnz], \
                          x[0:rows]) copyout(y[0:rows])
  {
    #pragma acc localaccess(values: stride(maxnnz)) (cols: stride(maxnnz)) \
                (y: stride(1))
    #pragma acc parallel loop
    for (int r = 0; r < rows; r++) {
      float total = 0.0f;
      for (int j = 0; j < maxnnz; j++) {
        total += values[r * maxnnz + j] * x[cols[r * maxnnz + j]];
      }
      y[r] = total;
    }
  }
}
)";

}  // namespace

const std::string& SpmvSource() {
  static const std::string* source = new std::string(kSpmvSource);
  return *source;
}

SpmvInput MakeSpmvInput(int rows, int max_nnz, std::uint64_t seed) {
  ACCMG_REQUIRE(rows > 0 && max_nnz > 0, "bad SpMV shape");
  SpmvInput input;
  input.rows = rows;
  input.max_nnz = max_nnz;
  const std::size_t total =
      static_cast<std::size_t>(rows) * static_cast<std::size_t>(max_nnz);
  input.values.resize(total);
  input.cols.resize(total);
  input.x.resize(static_cast<std::size_t>(rows));
  Rng rng(seed);
  const std::int64_t band = std::max<std::int64_t>(4, rows / 64);
  for (int r = 0; r < rows; ++r) {
    for (int j = 0; j < max_nnz; ++j) {
      const std::size_t idx =
          static_cast<std::size_t>(r) * static_cast<std::size_t>(max_nnz) +
          static_cast<std::size_t>(j);
      std::int64_t c;
      if (j + 1 == max_nnz) {
        c = static_cast<std::int64_t>(
            rng.NextBounded(static_cast<std::uint64_t>(rows)));
      } else {
        c = std::clamp<std::int64_t>(r + rng.NextInt(-band, band), 0,
                                     rows - 1);
      }
      input.cols[idx] = static_cast<std::int32_t>(c);
      input.values[idx] = static_cast<float>(rng.NextDouble(-1.0, 1.0));
    }
    input.x[static_cast<std::size_t>(r)] =
        static_cast<float>(rng.NextDouble(-2.0, 2.0));
  }
  return input;
}

std::vector<float> SpmvReference(const SpmvInput& input) {
  std::vector<float> y(static_cast<std::size_t>(input.rows));
  for (int r = 0; r < input.rows; ++r) {
    float total = 0.0f;
    for (int j = 0; j < input.max_nnz; ++j) {
      const std::size_t idx = static_cast<std::size_t>(r) *
                                  static_cast<std::size_t>(input.max_nnz) +
                              static_cast<std::size_t>(j);
      total += input.values[idx] *
               input.x[static_cast<std::size_t>(input.cols[idx])];
    }
    y[static_cast<std::size_t>(r)] = total;
  }
  return y;
}

namespace {

runtime::RunReport RunSpmvProgram(const SpmvInput& input,
                                  sim::Platform& platform, int num_gpus,
                                  bool use_cpu, std::vector<float>* y_out,
                                  const runtime::ExecOptions& options,
                                  const translator::CompileOptions& copts =
                                      {}) {
  const runtime::AccProgram& program =
      runtime::AccProgram::Cached("spmv", SpmvSource(), copts);
  y_out->assign(static_cast<std::size_t>(input.rows), 0.0f);
  runtime::RunConfig config;
  config.platform = &platform;
  config.num_gpus = num_gpus;
  config.use_cpu = use_cpu;
  config.options = options;
  runtime::ProgramRunner runner(program, config);
  runner.BindArray("values", const_cast<float*>(input.values.data()),
                   ir::ValType::kF32,
                   static_cast<std::int64_t>(input.values.size()));
  runner.BindArray("cols", const_cast<std::int32_t*>(input.cols.data()),
                   ir::ValType::kI32,
                   static_cast<std::int64_t>(input.cols.size()));
  runner.BindArray("x", const_cast<float*>(input.x.data()),
                   ir::ValType::kF32,
                   static_cast<std::int64_t>(input.x.size()));
  runner.BindArray("y", y_out->data(), ir::ValType::kF32,
                   static_cast<std::int64_t>(y_out->size()));
  runner.BindScalar("rows", static_cast<std::int64_t>(input.rows));
  runner.BindScalar("maxnnz", static_cast<std::int64_t>(input.max_nnz));
  return runner.Run("spmv");
}

}  // namespace

runtime::RunReport RunSpmvAcc(const SpmvInput& input, sim::Platform& platform,
                              int num_gpus, std::vector<float>* y_out,
                              const runtime::ExecOptions& options,
                              const translator::CompileOptions& copts) {
  return RunSpmvProgram(input, platform, num_gpus, /*use_cpu=*/false, y_out,
                        options, copts);
}

runtime::RunReport RunSpmvOpenMp(const SpmvInput& input,
                                 sim::Platform& platform,
                                 std::vector<float>* y_out) {
  return RunSpmvProgram(input, platform, 1, /*use_cpu=*/true, y_out, {});
}

runtime::RunReport RunSpmvCuda(const SpmvInput& input, sim::Platform& platform,
                               std::vector<float>* y_out) {
  platform.ResetAccounting();
  y_out->assign(static_cast<std::size_t>(input.rows), 0.0f);
  sim::Device& dev = platform.device(0);
  auto values =
      dev.Allocate("cuda:values", input.values.size() * sizeof(float));
  auto cols =
      dev.Allocate("cuda:cols", input.cols.size() * sizeof(std::int32_t));
  auto x = dev.Allocate("cuda:x", input.x.size() * sizeof(float));
  auto y = dev.Allocate("cuda:y", y_out->size() * sizeof(float));
  platform.CopyHostToDevice(*values, 0, input.values.data(),
                            input.values.size() * sizeof(float));
  platform.CopyHostToDevice(*cols, 0, input.cols.data(),
                            input.cols.size() * sizeof(std::int32_t));
  platform.CopyHostToDevice(*x, 0, input.x.data(),
                            input.x.size() * sizeof(float));
  platform.Barrier(sim::TimeCategory::kCpuGpu);

  const std::span<const float> values_view = values->Typed<float>();
  const std::span<const std::int32_t> cols_view = cols->Typed<std::int32_t>();
  const std::span<const float> x_view = x->Typed<float>();
  const std::span<float> y_view = y->Typed<float>();
  const int max_nnz = input.max_nnz;

  sim::LambdaKernel kernel([&, values_view, cols_view, x_view, y_view](
                               std::int64_t r, sim::KernelStats& stats) {
    const auto rr = static_cast<std::size_t>(r);
    float total = 0.0f;
    for (int j = 0; j < max_nnz; ++j) {
      const std::size_t idx =
          rr * static_cast<std::size_t>(max_nnz) + static_cast<std::size_t>(j);
      total += values_view[idx] *
               x_view[static_cast<std::size_t>(cols_view[idx])];
    }
    y_view[rr] = total;
    stats.instructions += 4 + static_cast<std::uint64_t>(max_nnz) * 12;
    stats.bytes_read += static_cast<std::uint64_t>(max_nnz) * 12;
    stats.bytes_written += 4;
  });
  sim::KernelLaunch launch;
  launch.body = &kernel;
  launch.num_threads = input.rows;
  launch.name = "spmv_cuda";
  platform.LaunchKernel(0, launch);
  platform.Barrier(sim::TimeCategory::kKernel);
  platform.CopyDeviceToHost(y_out->data(), *y, 0,
                            y_out->size() * sizeof(float));
  platform.Barrier(sim::TimeCategory::kCpuGpu);

  runtime::RunReport report;
  report.time = platform.clock().breakdown();
  report.total_seconds = report.time.Total();
  report.counters = platform.counters();
  report.kernel_executions = 1;
  report.peak_user_bytes = values->size_bytes() + cols->size_bytes() +
                           x->size_bytes() + y->size_bytes();
  return report;
}

}  // namespace accmg::apps
