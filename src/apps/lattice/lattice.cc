#include "apps/lattice/lattice.h"

#include <algorithm>

#include "common/error.h"
#include "common/rng.h"

namespace accmg::apps {

namespace {

constexpr char kLatticeSource[] = R"(
void lattice(int n, int m, int steps, float* phi, float* phinew) {
  #pragma acc data copy(phi[0:n][0:m]) create(phinew[0:n][0:m])
  {
    for (int t = 0; t < steps; t++) {
      #pragma acc localaccess(phi: cols(m), left(1), right(1)) \
                  (phinew: cols(m))
      #pragma acc parallel loop
      for (int i = 0; i < n; i++) {
        for (int j = 0; j < m; j++) {
          int im = i - 1;
          if (im < 0) { im = 0; }
          int ip = i + 1;
          if (ip > n - 1) { ip = n - 1; }
          int jm = j - 1;
          if (jm < 0) { jm = 0; }
          int jp = j + 1;
          if (jp > m - 1) { jp = m - 1; }
          float c = phi[i * m + j];
          float lap = phi[im * m + j] + phi[ip * m + j] + phi[i * m + jm]
                      + phi[i * m + jp] - 4.0f * c;
          phinew[i * m + j] = c + 0.1f * (lap - 0.5f * (c * c * c - c));
        }
      }
      #pragma acc localaccess(phi: cols(m)) (phinew: cols(m))
      #pragma acc parallel loop
      for (int i = 0; i < n; i++) {
        for (int j = 0; j < m; j++) {
          phi[i * m + j] = phinew[i * m + j];
        }
      }
    }
  }
}
)";

}  // namespace

const std::string& LatticeSource() {
  static const std::string* source = new std::string(kLatticeSource);
  return *source;
}

LatticeInput MakeLatticeInput(int n, int m, int steps, std::uint64_t seed) {
  ACCMG_REQUIRE(n > 0 && m > 0 && steps > 0, "bad lattice shape");
  LatticeInput input;
  input.n = n;
  input.m = m;
  input.steps = steps;
  input.phi.resize(static_cast<std::size_t>(n) * static_cast<std::size_t>(m));
  Rng rng(seed);
  for (auto& site : input.phi) {
    site = static_cast<float>(rng.NextDouble(-1.0, 1.0));
  }
  return input;
}

std::vector<float> LatticeReference(const LatticeInput& input) {
  const int n = input.n;
  const int m = input.m;
  std::vector<float> phi = input.phi;
  std::vector<float> phinew(phi.size());
  auto at = [m](const std::vector<float>& grid, int i, int j) {
    return grid[static_cast<std::size_t>(i) * static_cast<std::size_t>(m) +
                static_cast<std::size_t>(j)];
  };
  for (int t = 0; t < input.steps; ++t) {
    for (int i = 0; i < n; ++i) {
      for (int j = 0; j < m; ++j) {
        const int im = std::max(0, i - 1);
        const int ip = std::min(n - 1, i + 1);
        const int jm = std::max(0, j - 1);
        const int jp = std::min(m - 1, j + 1);
        // Same float association order as the kernel source so outputs
        // match bit-for-bit.
        const float c = at(phi, i, j);
        const float lap = at(phi, im, j) + at(phi, ip, j) + at(phi, i, jm) +
                          at(phi, i, jp) - 4.0f * c;
        phinew[static_cast<std::size_t>(i) * static_cast<std::size_t>(m) +
               static_cast<std::size_t>(j)] =
            c + 0.1f * (lap - 0.5f * (c * c * c - c));
      }
    }
    phi = phinew;
  }
  return phi;
}

namespace {

runtime::RunReport RunLatticeProgram(const LatticeInput& input,
                                     sim::Platform& platform, int num_gpus,
                                     bool use_cpu,
                                     std::vector<float>* phi_out,
                                     const runtime::ExecOptions& options,
                                     const translator::CompileOptions& copts =
                                         {}) {
  const runtime::AccProgram& program =
      runtime::AccProgram::Cached("lattice", LatticeSource(), copts);
  *phi_out = input.phi;
  std::vector<float> phinew(phi_out->size(), 0.0f);
  runtime::RunConfig config;
  config.platform = &platform;
  config.num_gpus = num_gpus;
  config.use_cpu = use_cpu;
  config.options = options;
  runtime::ProgramRunner runner(program, config);
  runner.BindArray("phi", phi_out->data(), ir::ValType::kF32,
                   static_cast<std::int64_t>(phi_out->size()));
  runner.BindArray("phinew", phinew.data(), ir::ValType::kF32,
                   static_cast<std::int64_t>(phinew.size()));
  runner.BindScalar("n", static_cast<std::int64_t>(input.n));
  runner.BindScalar("m", static_cast<std::int64_t>(input.m));
  runner.BindScalar("steps", static_cast<std::int64_t>(input.steps));
  return runner.Run("lattice");
}

}  // namespace

runtime::RunReport RunLatticeAcc(const LatticeInput& input,
                                 sim::Platform& platform, int num_gpus,
                                 std::vector<float>* phi_out,
                                 const runtime::ExecOptions& options,
                                 const translator::CompileOptions& copts) {
  return RunLatticeProgram(input, platform, num_gpus, /*use_cpu=*/false,
                           phi_out, options, copts);
}

runtime::RunReport RunLatticeOpenMp(const LatticeInput& input,
                                    sim::Platform& platform,
                                    std::vector<float>* phi_out) {
  return RunLatticeProgram(input, platform, 1, /*use_cpu=*/true, phi_out, {});
}

runtime::RunReport RunLatticeCuda(const LatticeInput& input,
                                  sim::Platform& platform,
                                  std::vector<float>* phi_out) {
  platform.ResetAccounting();
  *phi_out = input.phi;
  const int n = input.n;
  const int m = input.m;
  sim::Device& dev = platform.device(0);
  auto phi = dev.Allocate("cuda:phi", phi_out->size() * sizeof(float));
  auto phinew = dev.Allocate("cuda:phinew", phi_out->size() * sizeof(float));
  platform.CopyHostToDevice(*phi, 0, phi_out->data(),
                            phi_out->size() * sizeof(float));
  platform.Barrier(sim::TimeCategory::kCpuGpu);

  const std::span<float> phi_view = phi->Typed<float>();
  const std::span<float> phinew_view = phinew->Typed<float>();
  std::span<float> src = phi_view;
  std::span<float> dst = phinew_view;
  for (int t = 0; t < input.steps; ++t) {
    sim::LambdaKernel kernel([&, src, dst](std::int64_t i,
                                           sim::KernelStats& stats) {
      const int ii = static_cast<int>(i);
      const int im = std::max(0, ii - 1);
      const int ip = std::min(n - 1, ii + 1);
      for (int j = 0; j < m; ++j) {
        const int jm = std::max(0, j - 1);
        const int jp = std::min(m - 1, j + 1);
        auto at = [&](int r, int c) {
          return src[static_cast<std::size_t>(r) *
                         static_cast<std::size_t>(m) +
                     static_cast<std::size_t>(c)];
        };
        const float c = at(ii, j);
        const float lap =
            at(im, j) + at(ip, j) + at(ii, jm) + at(ii, jp) - 4.0f * c;
        dst[static_cast<std::size_t>(ii) * static_cast<std::size_t>(m) +
            static_cast<std::size_t>(j)] =
            c + 0.1f * (lap - 0.5f * (c * c * c - c));
      }
      stats.instructions += static_cast<std::uint64_t>(m) * 26;
      stats.bytes_read += static_cast<std::uint64_t>(m) * 20;
      stats.bytes_written += static_cast<std::uint64_t>(m) * 4;
    });
    sim::KernelLaunch launch;
    launch.body = &kernel;
    launch.num_threads = n;
    launch.name = "lattice_cuda";
    platform.LaunchKernel(0, launch);
    platform.Barrier(sim::TimeCategory::kKernel);
    std::swap(src, dst);
  }
  platform.CopyDeviceToHost(
      phi_out->data(), src.data() == phi_view.data() ? *phi : *phinew, 0,
      phi_out->size() * sizeof(float));
  platform.Barrier(sim::TimeCategory::kCpuGpu);

  runtime::RunReport report;
  report.time = platform.clock().breakdown();
  report.total_seconds = report.time.Total();
  report.counters = platform.counters();
  report.kernel_executions = input.steps;
  report.peak_user_bytes = phi->size_bytes() + phinew->size_bytes();
  return report;
}

}  // namespace accmg::apps
