// Lattice: phi^4 scalar-field relaxation on an n x m site grid — a
// structured-grid dwarf like Heat2D but with a nonlinear site update
// (cubic local term on top of the 4-neighbour Laplacian), which shifts the
// kernel from memory-bound towards compute-bound and therefore exercises a
// different roofline point of the measured mapper. Declared with the 2-D
// data-section form (phi[0:n][0:m]) and distributed by row blocks via
// localaccess cols(m), left(1), right(1); writes are proven row-local, so
// boundary/interior splitting and halo overlap apply. Pure element stores:
// bit-identical across device counts and mapper modes.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "runtime/program.h"
#include "sim/platform.h"

namespace accmg::apps {

struct LatticeInput {
  int n = 0;      ///< rows
  int m = 0;      ///< columns (row length)
  int steps = 0;  ///< relaxation sweeps
  std::vector<float> phi;  ///< n * m initial field, row-major
};

/// Random field in [-1, 1] (two-phase initial condition).
LatticeInput MakeLatticeInput(int n, int m, int steps, std::uint64_t seed = 31);

std::vector<float> LatticeReference(const LatticeInput& input);

const std::string& LatticeSource();

runtime::RunReport RunLatticeAcc(const LatticeInput& input,
                                 sim::Platform& platform, int num_gpus,
                                 std::vector<float>* phi_out,
                                 const runtime::ExecOptions& options = {},
                                 const translator::CompileOptions& copts = {});

runtime::RunReport RunLatticeOpenMp(const LatticeInput& input,
                                    sim::Platform& platform,
                                    std::vector<float>* phi_out);

runtime::RunReport RunLatticeCuda(const LatticeInput& input,
                                  sim::Platform& platform,
                                  std::vector<float>* phi_out);

}  // namespace accmg::apps
