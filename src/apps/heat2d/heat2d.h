// Heat2D: 5-point Jacobi relaxation on an n x m grid, the CFD-dwarf stencil
// the paper's hydro benchmark represents, expressed with the first-class 2-D
// row-block form. The grid is declared as a two-dimensional data section
// (u[0:n][0:m]) and distributed with localaccess cols(m), left(1), right(1):
// each device owns a contiguous block of rows, neighbours exchange one halo
// row per side per sweep, and the writes (unew[i*m+j]) are proven row-local
// symbolically — so the async pipeline can carve boundary/interior sub-tasks
// out of the sweep. Edge cells clamp to themselves (insulated boundary), so
// the update is pure element stores: bit-identical across device counts and
// mapper modes.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "runtime/program.h"
#include "sim/platform.h"

namespace accmg::apps {

struct Heat2dInput {
  int n = 0;      ///< rows
  int m = 0;      ///< columns (row length)
  int steps = 0;  ///< Jacobi sweeps
  std::vector<float> u;  ///< n * m initial temperatures, row-major
};

/// Smooth random initial field with a hot blob off-centre.
Heat2dInput MakeHeat2dInput(int n, int m, int steps, std::uint64_t seed = 29);

std::vector<float> Heat2dReference(const Heat2dInput& input);

const std::string& Heat2dSource();

runtime::RunReport RunHeat2dAcc(const Heat2dInput& input,
                                sim::Platform& platform, int num_gpus,
                                std::vector<float>* u_out,
                                const runtime::ExecOptions& options = {},
                                const translator::CompileOptions& copts = {});

runtime::RunReport RunHeat2dOpenMp(const Heat2dInput& input,
                                   sim::Platform& platform,
                                   std::vector<float>* u_out);

runtime::RunReport RunHeat2dCuda(const Heat2dInput& input,
                                 sim::Platform& platform,
                                 std::vector<float>* u_out);

}  // namespace accmg::apps
