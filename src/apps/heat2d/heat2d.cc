#include "apps/heat2d/heat2d.h"

#include <algorithm>

#include "common/error.h"
#include "common/rng.h"

namespace accmg::apps {

namespace {

constexpr char kHeat2dSource[] = R"(
void heat2d(int n, int m, int steps, float* u, float* unew) {
  #pragma acc data copy(u[0:n][0:m]) create(unew[0:n][0:m])
  {
    for (int t = 0; t < steps; t++) {
      #pragma acc localaccess(u: cols(m), left(1), right(1)) (unew: cols(m))
      #pragma acc parallel loop
      for (int i = 0; i < n; i++) {
        for (int j = 0; j < m; j++) {
          int im = i - 1;
          if (im < 0) { im = 0; }
          int ip = i + 1;
          if (ip > n - 1) { ip = n - 1; }
          int jm = j - 1;
          if (jm < 0) { jm = 0; }
          int jp = j + 1;
          if (jp > m - 1) { jp = m - 1; }
          unew[i * m + j] = 0.2f * (u[i * m + j] + u[im * m + j]
                                    + u[ip * m + j] + u[i * m + jm]
                                    + u[i * m + jp]);
        }
      }
      #pragma acc localaccess(u: cols(m)) (unew: cols(m))
      #pragma acc parallel loop
      for (int i = 0; i < n; i++) {
        for (int j = 0; j < m; j++) {
          u[i * m + j] = unew[i * m + j];
        }
      }
    }
  }
}
)";

}  // namespace

const std::string& Heat2dSource() {
  static const std::string* source = new std::string(kHeat2dSource);
  return *source;
}

Heat2dInput MakeHeat2dInput(int n, int m, int steps, std::uint64_t seed) {
  ACCMG_REQUIRE(n > 0 && m > 0 && steps > 0, "bad Heat2D shape");
  Heat2dInput input;
  input.n = n;
  input.m = m;
  input.steps = steps;
  input.u.resize(static_cast<std::size_t>(n) * static_cast<std::size_t>(m));
  Rng rng(seed);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < m; ++j) {
      input.u[static_cast<std::size_t>(i) * static_cast<std::size_t>(m) +
              static_cast<std::size_t>(j)] =
          static_cast<float>(rng.NextDouble(0.0, 1.0));
    }
  }
  // Hot blob off-centre so the field has visible structure to diffuse.
  const int ci = n / 3;
  const int cj = (2 * m) / 3;
  const int r = std::max(1, std::min(n, m) / 8);
  for (int i = std::max(0, ci - r); i < std::min(n, ci + r); ++i) {
    for (int j = std::max(0, cj - r); j < std::min(m, cj + r); ++j) {
      input.u[static_cast<std::size_t>(i) * static_cast<std::size_t>(m) +
              static_cast<std::size_t>(j)] = 10.0f;
    }
  }
  return input;
}

std::vector<float> Heat2dReference(const Heat2dInput& input) {
  const int n = input.n;
  const int m = input.m;
  std::vector<float> u = input.u;
  std::vector<float> unew(u.size());
  auto at = [m](const std::vector<float>& grid, int i, int j) {
    return grid[static_cast<std::size_t>(i) * static_cast<std::size_t>(m) +
                static_cast<std::size_t>(j)];
  };
  for (int t = 0; t < input.steps; ++t) {
    for (int i = 0; i < n; ++i) {
      for (int j = 0; j < m; ++j) {
        const int im = std::max(0, i - 1);
        const int ip = std::min(n - 1, i + 1);
        const int jm = std::max(0, j - 1);
        const int jp = std::min(m - 1, j + 1);
        // Same association order as the kernel source: float addition is not
        // associative and the outputs must match bit-for-bit.
        unew[static_cast<std::size_t>(i) * static_cast<std::size_t>(m) +
             static_cast<std::size_t>(j)] =
            0.2f * (at(u, i, j) + at(u, im, j) + at(u, ip, j) + at(u, i, jm) +
                    at(u, i, jp));
      }
    }
    u = unew;
  }
  return u;
}

namespace {

runtime::RunReport RunHeat2dProgram(const Heat2dInput& input,
                                    sim::Platform& platform, int num_gpus,
                                    bool use_cpu, std::vector<float>* u_out,
                                    const runtime::ExecOptions& options,
                                    const translator::CompileOptions& copts =
                                        {}) {
  const runtime::AccProgram& program =
      runtime::AccProgram::Cached("heat2d", Heat2dSource(), copts);
  *u_out = input.u;
  std::vector<float> unew(u_out->size(), 0.0f);
  runtime::RunConfig config;
  config.platform = &platform;
  config.num_gpus = num_gpus;
  config.use_cpu = use_cpu;
  config.options = options;
  runtime::ProgramRunner runner(program, config);
  runner.BindArray("u", u_out->data(), ir::ValType::kF32,
                   static_cast<std::int64_t>(u_out->size()));
  runner.BindArray("unew", unew.data(), ir::ValType::kF32,
                   static_cast<std::int64_t>(unew.size()));
  runner.BindScalar("n", static_cast<std::int64_t>(input.n));
  runner.BindScalar("m", static_cast<std::int64_t>(input.m));
  runner.BindScalar("steps", static_cast<std::int64_t>(input.steps));
  return runner.Run("heat2d");
}

}  // namespace

runtime::RunReport RunHeat2dAcc(const Heat2dInput& input,
                                sim::Platform& platform, int num_gpus,
                                std::vector<float>* u_out,
                                const runtime::ExecOptions& options,
                                const translator::CompileOptions& copts) {
  return RunHeat2dProgram(input, platform, num_gpus, /*use_cpu=*/false, u_out,
                          options, copts);
}

runtime::RunReport RunHeat2dOpenMp(const Heat2dInput& input,
                                   sim::Platform& platform,
                                   std::vector<float>* u_out) {
  return RunHeat2dProgram(input, platform, 1, /*use_cpu=*/true, u_out, {});
}

runtime::RunReport RunHeat2dCuda(const Heat2dInput& input,
                                 sim::Platform& platform,
                                 std::vector<float>* u_out) {
  platform.ResetAccounting();
  *u_out = input.u;
  const int n = input.n;
  const int m = input.m;
  sim::Device& dev = platform.device(0);
  auto u = dev.Allocate("cuda:u", u_out->size() * sizeof(float));
  auto unew = dev.Allocate("cuda:unew", u_out->size() * sizeof(float));
  platform.CopyHostToDevice(*u, 0, u_out->data(),
                            u_out->size() * sizeof(float));
  platform.Barrier(sim::TimeCategory::kCpuGpu);

  const std::span<float> u_view = u->Typed<float>();
  const std::span<float> unew_view = unew->Typed<float>();
  std::span<float> src = u_view;
  std::span<float> dst = unew_view;
  for (int t = 0; t < input.steps; ++t) {
    sim::LambdaKernel kernel([&, src, dst](std::int64_t i,
                                           sim::KernelStats& stats) {
      const int ii = static_cast<int>(i);
      const int im = std::max(0, ii - 1);
      const int ip = std::min(n - 1, ii + 1);
      for (int j = 0; j < m; ++j) {
        const int jm = std::max(0, j - 1);
        const int jp = std::min(m - 1, j + 1);
        auto at = [&](int r, int c) {
          return src[static_cast<std::size_t>(r) *
                         static_cast<std::size_t>(m) +
                     static_cast<std::size_t>(c)];
        };
        dst[static_cast<std::size_t>(ii) * static_cast<std::size_t>(m) +
            static_cast<std::size_t>(j)] =
            0.2f * (at(ii, j) + at(im, j) + at(ip, j) + at(ii, jm) +
                    at(ii, jp));
      }
      stats.instructions += static_cast<std::uint64_t>(m) * 18;
      stats.bytes_read += static_cast<std::uint64_t>(m) * 20;
      stats.bytes_written += static_cast<std::uint64_t>(m) * 4;
    });
    sim::KernelLaunch launch;
    launch.body = &kernel;
    launch.num_threads = n;
    launch.name = "heat2d_cuda";
    platform.LaunchKernel(0, launch);
    platform.Barrier(sim::TimeCategory::kKernel);
    std::swap(src, dst);
  }
  platform.CopyDeviceToHost(u_out->data(), src.data() == u_view.data() ? *u
                                                                       : *unew,
                            0, u_out->size() * sizeof(float));
  platform.Barrier(sim::TimeCategory::kCpuGpu);

  runtime::RunReport report;
  report.time = platform.clock().breakdown();
  report.total_seconds = report.time.Total();
  report.counters = platform.counters();
  report.kernel_executions = input.steps;
  report.peak_user_bytes = u->size_bytes() + unew->size_bytes();
  return report;
}

}  // namespace accmg::apps
