#include "apps/bfs/bfs.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <queue>

#include "common/error.h"
#include "common/rng.h"

namespace accmg::apps {

namespace {

constexpr char kBfsSource[] = R"(
void bfs(int nnodes, int degree, int maxlevels,
         int* offsets, int* edges, int* cost, int* flag) {
  #pragma acc data copyin(offsets[0:nnodes+1], edges[0:nnodes*degree]) \
                   copy(cost[0:nnodes]) copy(flag[0:1])
  {
    int level = 0;
    int again = 1;
    while (again && level < maxlevels) {
      flag[0] = 0;
      /* CSR adjacency: node i's edges live in
         [offsets[i], offsets[i+1]); the graph is degree-regular, so both
         arrays have stride-form local access (offsets needs a halo of one
         element on the right for the offsets[i+1] read). */
      #pragma acc localaccess(offsets: stride(1), right(1)) \
                  (edges: stride(degree))
      #pragma acc parallel loop
      for (int i = 0; i < nnodes; i++) {
        if (cost[i] == level) {
          int first = offsets[i];
          int last = offsets[i + 1];
          for (int e = first; e < last; e++) {
            int nb = edges[e];
            if (cost[nb] < 0) {
              cost[nb] = level + 1;
              flag[0] = 1;
            }
          }
        }
      }
      again = flag[0];
      level = level + 1;
    }
  }
}
)";

}  // namespace

const std::string& BfsSource() {
  static const std::string* source = new std::string(kBfsSource);
  return *source;
}

BfsInput MakeBfsInput(int nnodes, int degree, std::uint64_t seed) {
  ACCMG_REQUIRE(nnodes > 1 && degree > 0, "bad BFS input shape");
  BfsInput input;
  input.nnodes = nnodes;
  input.degree = degree;
  input.source = 0;
  input.max_levels = 64;
  input.edges.resize(static_cast<std::size_t>(nnodes) *
                     static_cast<std::size_t>(degree));
  input.offsets.resize(static_cast<std::size_t>(nnodes) + 1);
  for (int i = 0; i <= nnodes; ++i) {
    input.offsets[static_cast<std::size_t>(i)] = i * degree;
  }
  Rng rng(seed);
  // Mostly-local neighbourhood plus sparse uniform shortcuts: diameters of
  // ~8-12 levels for realistic sizes, matching the 10 kernel launches of
  // Table II.
  const std::int64_t local_window = std::max<std::int64_t>(8, nnodes / 2048);
  for (int i = 0; i < nnodes; ++i) {
    for (int j = 0; j < degree; ++j) {
      std::int64_t nb;
      if (j % 32 == 0) {
        nb = static_cast<std::int64_t>(
            rng.NextBounded(static_cast<std::uint64_t>(nnodes)));
      } else {
        nb = i + rng.NextInt(-local_window, local_window);
        nb = std::clamp<std::int64_t>(nb, 0, nnodes - 1);
      }
      if (nb == i) nb = (i + 1) % nnodes;
      input.edges[static_cast<std::size_t>(i) *
                      static_cast<std::size_t>(degree) +
                  static_cast<std::size_t>(j)] = static_cast<std::int32_t>(nb);
    }
  }
  return input;
}

BfsInput MakePaperBfsInput(double scale) {
  // SHOC SM-node shaped graph: the 444.9 MB footprint is edge-dominated;
  // at full scale we use 1M nodes x 104 neighbours (~440 MB with cost and
  // flag arrays).
  const int nnodes = std::max(1024, static_cast<int>(1000000 * scale));
  return MakeBfsInput(nnodes, 104);
}

std::vector<std::int32_t> BfsReference(const BfsInput& input) {
  std::vector<std::int32_t> cost(static_cast<std::size_t>(input.nnodes), -1);
  cost[static_cast<std::size_t>(input.source)] = 0;
  std::queue<int> frontier;
  frontier.push(input.source);
  while (!frontier.empty()) {
    const int node = frontier.front();
    frontier.pop();
    const std::int32_t next = cost[static_cast<std::size_t>(node)] + 1;
    if (next > input.max_levels) continue;
    const std::int32_t first = input.offsets[static_cast<std::size_t>(node)];
    const std::int32_t last =
        input.offsets[static_cast<std::size_t>(node) + 1];
    for (std::int32_t e = first; e < last; ++e) {
      const std::int32_t nb = input.edges[static_cast<std::size_t>(e)];
      if (cost[static_cast<std::size_t>(nb)] < 0) {
        cost[static_cast<std::size_t>(nb)] = next;
        frontier.push(nb);
      }
    }
  }
  return cost;
}

namespace {

runtime::RunReport RunBfsProgram(const BfsInput& input,
                                 sim::Platform& platform, int num_gpus,
                                 bool use_cpu,
                                 std::vector<std::int32_t>* cost_out,
                                 const runtime::ExecOptions& options,
                                 const translator::CompileOptions& copts =
                                     {}) {
  const runtime::AccProgram& program =
      runtime::AccProgram::Cached("bfs", BfsSource(), copts);
  cost_out->assign(static_cast<std::size_t>(input.nnodes), -1);
  (*cost_out)[static_cast<std::size_t>(input.source)] = 0;
  std::int32_t flag = 0;

  runtime::RunConfig config;
  config.platform = &platform;
  config.num_gpus = num_gpus;
  config.use_cpu = use_cpu;
  config.options = options;
  runtime::ProgramRunner runner(program, config);
  runner.BindArray("offsets", const_cast<std::int32_t*>(input.offsets.data()),
                   ir::ValType::kI32,
                   static_cast<std::int64_t>(input.offsets.size()));
  runner.BindArray("edges", const_cast<std::int32_t*>(input.edges.data()),
                   ir::ValType::kI32,
                   static_cast<std::int64_t>(input.edges.size()));
  runner.BindArray("cost", cost_out->data(), ir::ValType::kI32,
                   static_cast<std::int64_t>(cost_out->size()));
  runner.BindArray("flag", &flag, ir::ValType::kI32, 1);
  runner.BindScalar("nnodes", static_cast<std::int64_t>(input.nnodes));
  runner.BindScalar("degree", static_cast<std::int64_t>(input.degree));
  runner.BindScalar("maxlevels", static_cast<std::int64_t>(input.max_levels));
  return runner.Run("bfs");
}

}  // namespace

runtime::RunReport RunBfsAcc(const BfsInput& input, sim::Platform& platform,
                             int num_gpus, std::vector<std::int32_t>* cost_out,
                             const runtime::ExecOptions& options,
                             const translator::CompileOptions& copts) {
  return RunBfsProgram(input, platform, num_gpus, /*use_cpu=*/false, cost_out,
                       options, copts);
}

runtime::RunReport RunBfsOpenMp(const BfsInput& input, sim::Platform& platform,
                                std::vector<std::int32_t>* cost_out) {
  return RunBfsProgram(input, platform, 1, /*use_cpu=*/true, cost_out, {});
}

runtime::RunReport RunBfsCuda(const BfsInput& input, sim::Platform& platform,
                              std::vector<std::int32_t>* cost_out) {
  platform.ResetAccounting();
  cost_out->assign(static_cast<std::size_t>(input.nnodes), -1);
  (*cost_out)[static_cast<std::size_t>(input.source)] = 0;

  sim::Device& dev = platform.device(0);
  auto offsets = dev.Allocate("cuda:offsets",
                              input.offsets.size() * sizeof(std::int32_t));
  auto edges =
      dev.Allocate("cuda:edges", input.edges.size() * sizeof(std::int32_t));
  auto cost =
      dev.Allocate("cuda:cost", cost_out->size() * sizeof(std::int32_t));
  auto flag = dev.Allocate("cuda:flag", sizeof(std::int32_t));
  platform.CopyHostToDevice(*offsets, 0, input.offsets.data(),
                            input.offsets.size() * sizeof(std::int32_t));
  platform.CopyHostToDevice(*edges, 0, input.edges.data(),
                            input.edges.size() * sizeof(std::int32_t));
  platform.CopyHostToDevice(*cost, 0, cost_out->data(),
                            cost_out->size() * sizeof(std::int32_t));
  platform.Barrier(sim::TimeCategory::kCpuGpu);

  const std::span<const std::int32_t> offsets_view =
      offsets->Typed<std::int32_t>();
  const std::span<const std::int32_t> edge_view = edges->Typed<std::int32_t>();
  const std::span<std::int32_t> cost_view = cost->Typed<std::int32_t>();
  const std::span<std::int32_t> flag_view = flag->Typed<std::int32_t>();
  const int degree = input.degree;

  int level = 0;
  bool again = true;
  std::uint64_t launches = 0;
  while (again && level < input.max_levels) {
    std::int32_t zero = 0;
    platform.CopyHostToDevice(*flag, 0, &zero, sizeof zero);
    platform.Barrier(sim::TimeCategory::kCpuGpu);

    sim::LambdaKernel kernel([&, offsets_view, edge_view, cost_view,
                              flag_view, level](std::int64_t i,
                                                sim::KernelStats& stats) {
      const auto ii = static_cast<std::size_t>(i);
      stats.instructions += 3;
      stats.bytes_read += 4;
      if (cost_view[ii] != level) return;
      const auto first = static_cast<std::size_t>(offsets_view[ii]);
      const auto last = static_cast<std::size_t>(offsets_view[ii + 1]);
      for (std::size_t e = first; e < last; ++e) {
        const auto nb = static_cast<std::size_t>(edge_view[e]);
        // Benign race, same as the SHOC CUDA kernel — relaxed atomics keep
        // it defined behaviour on the host.
        std::atomic_ref<std::int32_t> nb_cost(cost_view[nb]);
        if (nb_cost.load(std::memory_order_relaxed) < 0) {
          nb_cost.store(level + 1, std::memory_order_relaxed);
          std::atomic_ref<std::int32_t>(flag_view[0])
              .store(1, std::memory_order_relaxed);
          stats.bytes_written += 4;
        }
      }
      stats.instructions += static_cast<std::uint64_t>(degree) * 11;
      stats.bytes_read += static_cast<std::uint64_t>(degree) * 8;
    });
    sim::KernelLaunch launch;
    launch.body = &kernel;
    launch.num_threads = input.nnodes;
    launch.name = "bfs_cuda";
    platform.LaunchKernel(0, launch);
    platform.Barrier(sim::TimeCategory::kKernel);
    ++launches;

    std::int32_t host_flag = 0;
    platform.CopyDeviceToHost(&host_flag, *flag, 0, sizeof host_flag);
    platform.Barrier(sim::TimeCategory::kCpuGpu);
    again = host_flag != 0;
    ++level;
  }

  platform.CopyDeviceToHost(cost_out->data(), *cost, 0,
                            cost_out->size() * sizeof(std::int32_t));
  platform.Barrier(sim::TimeCategory::kCpuGpu);

  runtime::RunReport report;
  report.time = platform.clock().breakdown();
  report.total_seconds = report.time.Total();
  report.counters = platform.counters();
  report.kernel_executions = launches;
  report.peak_user_bytes = offsets->size_bytes() + edges->size_bytes() +
                           cost->size_bytes() + flag->size_bytes();
  return report;
}

}  // namespace accmg::apps
