// BFS (SHOC): level-synchronous breadth-first search on a fixed-degree
// random graph.
//
// Paper Table II: 444.9 MB of device data, 1 parallel loop, 10 kernel
// executions (one per frontier level), 2 of 3 arrays with localaccess (the
// adjacency array, stride degree, plus the per-node frontier check which is
// i-aligned). The cost (level) array is written at arbitrary neighbour
// indices, so it stays replicated with two-level dirty bits — BFS is the
// paper's communication-heavy worst case, which is why it gains little from
// a third GPU on the supercomputer node (Fig. 7/8).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "runtime/program.h"
#include "sim/platform.h"

namespace accmg::apps {

struct BfsInput {
  int nnodes = 0;
  int degree = 0;
  int source = 0;
  int max_levels = 0;
  std::vector<std::int32_t> offsets;  ///< CSR offsets, nnodes + 1 entries
  std::vector<std::int32_t> edges;    ///< nnodes * degree neighbour ids
};

/// Deterministic fixed-degree graph with mostly-local edges plus long-range
/// shortcuts (small-world-ish), so BFS needs ~10 levels as in the paper.
BfsInput MakeBfsInput(int nnodes, int degree, std::uint64_t seed = 11);

/// SHOC "SM node" shaped input scaled to `scale` of the 444.9 MB footprint.
BfsInput MakePaperBfsInput(double scale = 1.0);

/// Native reference: per-node BFS level (-1 for unreachable).
std::vector<std::int32_t> BfsReference(const BfsInput& input);

const std::string& BfsSource();

runtime::RunReport RunBfsAcc(const BfsInput& input, sim::Platform& platform,
                             int num_gpus, std::vector<std::int32_t>* cost_out,
                             const runtime::ExecOptions& options = {},
                             const translator::CompileOptions& copts = {});

runtime::RunReport RunBfsOpenMp(const BfsInput& input, sim::Platform& platform,
                                std::vector<std::int32_t>* cost_out);

runtime::RunReport RunBfsCuda(const BfsInput& input, sim::Platform& platform,
                              std::vector<std::int32_t>* cost_out);

}  // namespace accmg::apps
