// KMEANS (Rodinia): Lloyd's algorithm on a kddcup-shaped dataset.
//
// Paper Table II: kddcup input (494020 points x 34 features, 5 clusters),
// 2 parallel loops, 74 kernel executions, 2 of 5 arrays with localaccess
// (the feature matrix, stride nfeatures, and the membership vector,
// stride 1). Centroids are replicated read-only; the per-cluster sums and
// counts are reductiontoarray destinations — the "small amount of inter-GPU
// communication" the paper describes.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "runtime/program.h"
#include "sim/platform.h"

namespace accmg::apps {

struct KmeansInput {
  int npoints = 0;
  int nfeatures = 0;
  int nclusters = 0;
  int iterations = 0;
  std::vector<float> features;   ///< npoints * nfeatures
  std::vector<float> centroids;  ///< nclusters * nfeatures (initial)
};

/// Deterministic clustered data: points drawn around `nclusters` centers.
KmeansInput MakeKmeansInput(int npoints, int nfeatures, int nclusters,
                            int iterations, std::uint64_t seed = 7);

/// kddcup shape (scaled): 494020 x 34, k=5, 37 iterations = 74 launches.
KmeansInput MakePaperKmeansInput(double scale = 1.0);

struct KmeansResult {
  std::vector<float> centroids;
  std::vector<std::int32_t> membership;
};

/// Native reference (float32 arithmetic, same operation order per point).
KmeansResult KmeansReference(const KmeansInput& input);

const std::string& KmeansSource();

runtime::RunReport RunKmeansAcc(const KmeansInput& input,
                                sim::Platform& platform, int num_gpus,
                                KmeansResult* result,
                                const runtime::ExecOptions& options = {},
                                const translator::CompileOptions& copts = {});

runtime::RunReport RunKmeansOpenMp(const KmeansInput& input,
                                   sim::Platform& platform,
                                   KmeansResult* result);

/// Hand-written single-GPU CUDA baseline.
runtime::RunReport RunKmeansCuda(const KmeansInput& input,
                                 sim::Platform& platform,
                                 KmeansResult* result);

}  // namespace accmg::apps
