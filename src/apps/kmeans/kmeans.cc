#include "apps/kmeans/kmeans.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"
#include "common/rng.h"

namespace accmg::apps {

namespace {

constexpr char kKmeansSource[] = R"(
void kmeans(int npoints, int nfeatures, int nclusters, int iterations,
            float* features, float* centroids, int* membership,
            float* sums, int* counts) {
  #pragma acc data copyin(features[0:npoints*nfeatures]) \
                   copy(centroids[0:nclusters*nfeatures]) \
                   copy(membership[0:npoints]) \
                   copy(sums[0:nclusters*nfeatures]) copy(counts[0:nclusters])
  {
    for (int t = 0; t < iterations; t++) {
      /* Assignment step: nearest centroid per point. */
      #pragma acc localaccess(features: stride(nfeatures)) \
                  (membership: stride(1))
      #pragma acc parallel loop
      for (int i = 0; i < npoints; i++) {
        int best = 0;
        float bestdist = 3.0e38f;
        for (int c = 0; c < nclusters; c++) {
          float dist = 0.0f;
          for (int f = 0; f < nfeatures; f++) {
            float diff = features[i * nfeatures + f]
                       - centroids[c * nfeatures + f];
            dist += diff * diff;
          }
          if (dist < bestdist) {
            bestdist = dist;
            best = c;
          }
        }
        membership[i] = best;
      }
      /* Update step: per-cluster sums via reduction-to-array. */
      #pragma acc localaccess(features: stride(nfeatures)) \
                  (membership: stride(1))
      #pragma acc parallel loop
      for (int i = 0; i < npoints; i++) {
        int c = membership[i];
        #pragma acc reductiontoarray(+: counts[0:nclusters])
        counts[c] += 1;
        for (int f = 0; f < nfeatures; f++) {
          #pragma acc reductiontoarray(+: sums[0:nclusters*nfeatures])
          sums[c * nfeatures + f] += features[i * nfeatures + f];
        }
      }
      /* Host: new centroids from the accumulated sums. */
      for (int c = 0; c < nclusters; c++) {
        for (int f = 0; f < nfeatures; f++) {
          if (counts[c] > 0) {
            centroids[c * nfeatures + f] =
                sums[c * nfeatures + f] / (float)counts[c];
          }
          sums[c * nfeatures + f] = 0.0f;
        }
        counts[c] = 0;
      }
    }
  }
}
)";

}  // namespace

const std::string& KmeansSource() {
  static const std::string* source = new std::string(kKmeansSource);
  return *source;
}

KmeansInput MakeKmeansInput(int npoints, int nfeatures, int nclusters,
                            int iterations, std::uint64_t seed) {
  ACCMG_REQUIRE(npoints >= nclusters && nclusters > 0, "bad kmeans shape");
  KmeansInput input;
  input.npoints = npoints;
  input.nfeatures = nfeatures;
  input.nclusters = nclusters;
  input.iterations = iterations;
  input.features.resize(static_cast<std::size_t>(npoints) *
                        static_cast<std::size_t>(nfeatures));
  input.centroids.resize(static_cast<std::size_t>(nclusters) *
                         static_cast<std::size_t>(nfeatures));
  Rng rng(seed);
  std::vector<float> centers(input.centroids.size());
  for (auto& c : centers) {
    c = static_cast<float>(rng.NextDouble(-10.0, 10.0));
  }
  for (int i = 0; i < npoints; ++i) {
    const int home = static_cast<int>(
        rng.NextBounded(static_cast<std::uint64_t>(nclusters)));
    for (int f = 0; f < nfeatures; ++f) {
      input.features[static_cast<std::size_t>(i) *
                         static_cast<std::size_t>(nfeatures) +
                     static_cast<std::size_t>(f)] =
          centers[static_cast<std::size_t>(home) *
                      static_cast<std::size_t>(nfeatures) +
                  static_cast<std::size_t>(f)] +
          static_cast<float>(rng.NextDouble(-1.5, 1.5));
    }
  }
  // Rodinia-style init: the first k points become the initial centroids.
  for (int c = 0; c < nclusters; ++c) {
    for (int f = 0; f < nfeatures; ++f) {
      input.centroids[static_cast<std::size_t>(c) *
                          static_cast<std::size_t>(nfeatures) +
                      static_cast<std::size_t>(f)] =
          input.features[static_cast<std::size_t>(c) *
                             static_cast<std::size_t>(nfeatures) +
                         static_cast<std::size_t>(f)];
    }
  }
  return input;
}

KmeansInput MakePaperKmeansInput(double scale) {
  // kddcup: 494020 points x 34 features, k=5; 74 kernel launches = 37
  // assignment+update rounds. The iteration count shrinks much more slowly
  // than the point count so the paper's kernel-vs-upload balance (one
  // feature upload amortized over many rounds) is preserved at small scales.
  const int npoints = std::max(100, static_cast<int>(494020 * scale));
  const int iterations =
      std::clamp(static_cast<int>(37 * std::sqrt(scale) + 0.5), 6, 37);
  return MakeKmeansInput(npoints, 34, 5, iterations);
}

KmeansResult KmeansReference(const KmeansInput& input) {
  KmeansResult result;
  result.centroids = input.centroids;
  result.membership.assign(static_cast<std::size_t>(input.npoints), 0);
  const int np = input.npoints, nf = input.nfeatures, k = input.nclusters;
  std::vector<double> sums(static_cast<std::size_t>(k) *
                           static_cast<std::size_t>(nf));
  std::vector<std::int64_t> counts(static_cast<std::size_t>(k));
  for (int t = 0; t < input.iterations; ++t) {
    for (int i = 0; i < np; ++i) {
      int best = 0;
      float bestdist = 3.0e38f;
      for (int c = 0; c < k; ++c) {
        float dist = 0.0f;
        for (int f = 0; f < nf; ++f) {
          const float diff =
              input.features[static_cast<std::size_t>(i) * nf + f] -
              result.centroids[static_cast<std::size_t>(c) * nf + f];
          dist += diff * diff;
        }
        if (dist < bestdist) {
          bestdist = dist;
          best = c;
        }
      }
      result.membership[static_cast<std::size_t>(i)] = best;
    }
    std::fill(sums.begin(), sums.end(), 0.0);
    std::fill(counts.begin(), counts.end(), 0);
    for (int i = 0; i < np; ++i) {
      const int c = result.membership[static_cast<std::size_t>(i)];
      ++counts[static_cast<std::size_t>(c)];
      for (int f = 0; f < nf; ++f) {
        sums[static_cast<std::size_t>(c) * nf + f] +=
            input.features[static_cast<std::size_t>(i) * nf + f];
      }
    }
    for (int c = 0; c < k; ++c) {
      if (counts[static_cast<std::size_t>(c)] == 0) continue;
      for (int f = 0; f < nf; ++f) {
        result.centroids[static_cast<std::size_t>(c) * nf + f] =
            static_cast<float>(sums[static_cast<std::size_t>(c) * nf + f] /
                               static_cast<double>(
                                   counts[static_cast<std::size_t>(c)]));
      }
    }
  }
  return result;
}

namespace {

runtime::RunReport RunKmeansProgram(const KmeansInput& input,
                                    sim::Platform& platform, int num_gpus,
                                    bool use_cpu, KmeansResult* result,
                                    const runtime::ExecOptions& options,
                                    const translator::CompileOptions& copts =
                                        {}) {
  const runtime::AccProgram& program =
      runtime::AccProgram::Cached("kmeans", KmeansSource(), copts);
  result->centroids = input.centroids;
  result->membership.assign(static_cast<std::size_t>(input.npoints), 0);
  std::vector<float> sums(static_cast<std::size_t>(input.nclusters) *
                              static_cast<std::size_t>(input.nfeatures),
                          0.0f);
  std::vector<std::int32_t> counts(static_cast<std::size_t>(input.nclusters),
                                   0);

  runtime::RunConfig config;
  config.platform = &platform;
  config.num_gpus = num_gpus;
  config.use_cpu = use_cpu;
  config.options = options;
  runtime::ProgramRunner runner(program, config);
  runner.BindArray("features", const_cast<float*>(input.features.data()),
                   ir::ValType::kF32,
                   static_cast<std::int64_t>(input.features.size()));
  runner.BindArray("centroids", result->centroids.data(), ir::ValType::kF32,
                   static_cast<std::int64_t>(result->centroids.size()));
  runner.BindArray("membership", result->membership.data(), ir::ValType::kI32,
                   static_cast<std::int64_t>(result->membership.size()));
  runner.BindArray("sums", sums.data(), ir::ValType::kF32,
                   static_cast<std::int64_t>(sums.size()));
  runner.BindArray("counts", counts.data(), ir::ValType::kI32,
                   static_cast<std::int64_t>(counts.size()));
  runner.BindScalar("npoints", static_cast<std::int64_t>(input.npoints));
  runner.BindScalar("nfeatures", static_cast<std::int64_t>(input.nfeatures));
  runner.BindScalar("nclusters", static_cast<std::int64_t>(input.nclusters));
  runner.BindScalar("iterations",
                    static_cast<std::int64_t>(input.iterations));
  return runner.Run("kmeans");
}

}  // namespace

runtime::RunReport RunKmeansAcc(const KmeansInput& input,
                                sim::Platform& platform, int num_gpus,
                                KmeansResult* result,
                                const runtime::ExecOptions& options,
                                const translator::CompileOptions& copts) {
  return RunKmeansProgram(input, platform, num_gpus, /*use_cpu=*/false,
                          result, options, copts);
}

runtime::RunReport RunKmeansOpenMp(const KmeansInput& input,
                                   sim::Platform& platform,
                                   KmeansResult* result) {
  return RunKmeansProgram(input, platform, 1, /*use_cpu=*/true, result, {});
}

runtime::RunReport RunKmeansCuda(const KmeansInput& input,
                                 sim::Platform& platform,
                                 KmeansResult* result) {
  platform.ResetAccounting();
  result->centroids = input.centroids;
  result->membership.assign(static_cast<std::size_t>(input.npoints), 0);
  const int np = input.npoints, nf = input.nfeatures, k = input.nclusters;

  sim::Device& dev = platform.device(0);
  auto features =
      dev.Allocate("cuda:features", input.features.size() * sizeof(float));
  auto centroids = dev.Allocate("cuda:centroids",
                                result->centroids.size() * sizeof(float));
  auto membership = dev.Allocate(
      "cuda:membership", result->membership.size() * sizeof(std::int32_t));
  platform.CopyHostToDevice(*features, 0, input.features.data(),
                            input.features.size() * sizeof(float));
  platform.Barrier(sim::TimeCategory::kCpuGpu);

  const std::span<const float> feat = features->Typed<float>();
  const std::span<float> cent = centroids->Typed<float>();
  const std::span<std::int32_t> member = membership->Typed<std::int32_t>();

  std::vector<double> sums(static_cast<std::size_t>(k) *
                           static_cast<std::size_t>(nf));
  std::vector<std::int64_t> counts(static_cast<std::size_t>(k));

  for (int t = 0; t < input.iterations; ++t) {
    // Centroids refreshed from host each round (tiny H2D, as in Rodinia).
    platform.CopyHostToDevice(*centroids, 0, result->centroids.data(),
                              result->centroids.size() * sizeof(float));
    platform.Barrier(sim::TimeCategory::kCpuGpu);

    sim::LambdaKernel assign([&, feat, cent, member](std::int64_t i,
                                                     sim::KernelStats& stats) {
      const auto ii = static_cast<std::size_t>(i);
      int best = 0;
      float bestdist = 3.0e38f;
      for (int c = 0; c < k; ++c) {
        float dist = 0.0f;
        for (int f = 0; f < nf; ++f) {
          const float diff = feat[ii * static_cast<std::size_t>(nf) +
                                  static_cast<std::size_t>(f)] -
                             cent[static_cast<std::size_t>(c * nf + f)];
          dist += diff * diff;
        }
        if (dist < bestdist) {
          bestdist = dist;
          best = c;
        }
      }
      member[ii] = best;
      stats.instructions += 4 + static_cast<std::uint64_t>(k) *
                                    (3 + static_cast<std::uint64_t>(nf) * 20);
      stats.bytes_read +=
          static_cast<std::uint64_t>(nf) * 8;  // centroids mostly cached
      stats.bytes_written += 4;
    });
    sim::KernelLaunch launch;
    launch.body = &assign;
    launch.num_threads = np;
    launch.name = "kmeans_assign_cuda";
    platform.LaunchKernel(0, launch);

    // Update step as a second kernel: per-block privatized histogram of
    // feature sums, modeled with the same per-point cost.
    sim::LambdaKernel update([&, feat, member](std::int64_t i,
                                               sim::KernelStats& stats) {
      (void)i;
      stats.instructions += 3 + static_cast<std::uint64_t>(nf) * 15;
      stats.bytes_read += static_cast<std::uint64_t>(nf) * 8 + 4;
      stats.bytes_written += 4;  // amortized privatized accumulation
    });
    launch.body = &update;
    launch.name = "kmeans_update_cuda";
    platform.LaunchKernel(0, launch);
    platform.Barrier(sim::TimeCategory::kKernel);

    // Functional update on the host side (the modeled kernel above carries
    // the cost; the arithmetic below is the authoritative result).
    std::fill(sums.begin(), sums.end(), 0.0);
    std::fill(counts.begin(), counts.end(), 0);
    for (int i = 0; i < np; ++i) {
      const int c = member[static_cast<std::size_t>(i)];
      ++counts[static_cast<std::size_t>(c)];
      for (int f = 0; f < nf; ++f) {
        sums[static_cast<std::size_t>(c * nf + f)] +=
            feat[static_cast<std::size_t>(i) * static_cast<std::size_t>(nf) +
                 static_cast<std::size_t>(f)];
      }
    }
    platform.BillDeviceToHost(0, static_cast<std::size_t>(k) *
                                     static_cast<std::size_t>(nf) * 4 +
                                     static_cast<std::size_t>(k) * 4);
    platform.Barrier(sim::TimeCategory::kCpuGpu);
    for (int c = 0; c < k; ++c) {
      if (counts[static_cast<std::size_t>(c)] == 0) continue;
      for (int f = 0; f < nf; ++f) {
        result->centroids[static_cast<std::size_t>(c * nf + f)] =
            static_cast<float>(sums[static_cast<std::size_t>(c * nf + f)] /
                               static_cast<double>(
                                   counts[static_cast<std::size_t>(c)]));
      }
    }
  }
  std::copy(member.begin(), member.end(), result->membership.begin());
  platform.BillDeviceToHost(0, member.size() * 4);
  platform.Barrier(sim::TimeCategory::kCpuGpu);

  runtime::RunReport report;
  report.time = platform.clock().breakdown();
  report.total_seconds = report.time.Total();
  report.counters = platform.counters();
  report.kernel_executions =
      static_cast<std::uint64_t>(input.iterations) * 2;
  report.peak_user_bytes = features->size_bytes() + centroids->size_bytes() +
                           membership->size_bytes();
  return report;
}

}  // namespace accmg::apps
