// MD (SHOC): Lennard-Jones force computation over fixed neighbour lists.
//
// Paper Table II: 73728 atoms, 1 parallel loop, 1 kernel execution, 2 of 3
// arrays annotated with localaccess (the neighbour list, stride maxneigh, and
// the force output, stride 3). Positions are read at arbitrary neighbour
// indices and therefore stay replicated. MD needs no inter-GPU communication:
// every write is proven local, which is exactly why it scales almost linearly
// in Fig. 7/8.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "runtime/program.h"
#include "sim/platform.h"

namespace accmg::apps {

struct MdInput {
  int natoms = 0;
  int maxneigh = 0;
  float lj1 = 1.5f;
  float lj2 = 2.0f;
  float cutsq = 16.0f;
  std::vector<float> pos;        ///< 3*natoms, interleaved x,y,z
  std::vector<std::int32_t> neigh;  ///< natoms*maxneigh neighbour indices
};

/// Deterministic input: atoms on a jittered lattice, neighbours drawn from a
/// spatial window so a realistic fraction falls inside the cutoff.
MdInput MakeMdInput(int natoms, int maxneigh, std::uint64_t seed = 42);

/// The paper's configuration (73728 atoms).
MdInput MakePaperMdInput(double scale = 1.0);

/// Native single-thread reference; returns the 3*natoms force array.
std::vector<float> MdReference(const MdInput& input);

/// The annotated OpenACC source consumed by the translator.
const std::string& MdSource();

/// Proposal: translated program on `num_gpus` simulated GPUs. `copts`
/// selects the translator's optimization level (docs/ARCHITECTURE.md,
/// "Optimizing mid-end"); programs are cached per level.
runtime::RunReport RunMdAcc(const MdInput& input, sim::Platform& platform,
                            int num_gpus, std::vector<float>* force_out,
                            const runtime::ExecOptions& options = {},
                            const translator::CompileOptions& copts = {});

/// OpenMP baseline: same program on the host CPU.
runtime::RunReport RunMdOpenMp(const MdInput& input, sim::Platform& platform,
                               std::vector<float>* force_out);

/// Hand-written CUDA baseline: single GPU, hand-managed transfers, a kernel
/// whose dynamic cost reflects compiled (not interpreted) code.
runtime::RunReport RunMdCuda(const MdInput& input, sim::Platform& platform,
                             std::vector<float>* force_out);

}  // namespace accmg::apps
