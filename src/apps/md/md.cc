#include "apps/md/md.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"
#include "common/rng.h"

namespace accmg::apps {

namespace {

constexpr char kMdSource[] = R"(
void md(int natoms, int maxneigh, float lj1, float lj2, float cutsq,
        float* pos, int* neigh, float* force) {
  #pragma acc data copyin(pos[0:natoms*3], neigh[0:natoms*maxneigh]) \
                   copyout(force[0:natoms*3])
  {
    #pragma acc localaccess(neigh: stride(maxneigh)) (force: stride(3))
    #pragma acc parallel loop
    for (int i = 0; i < natoms; i++) {
      float xi = pos[i * 3 + 0];
      float yi = pos[i * 3 + 1];
      float zi = pos[i * 3 + 2];
      float fx = 0.0f;
      float fy = 0.0f;
      float fz = 0.0f;
      for (int j = 0; j < maxneigh; j++) {
        int nb = neigh[i * maxneigh + j];
        float dx = xi - pos[nb * 3 + 0];
        float dy = yi - pos[nb * 3 + 1];
        float dz = zi - pos[nb * 3 + 2];
        float r2 = dx * dx + dy * dy + dz * dz;
        if (r2 < cutsq) {
          float r2inv = 1.0f / r2;
          float r6inv = r2inv * r2inv * r2inv;
          float f = r2inv * r6inv * (lj1 * r6inv - lj2);
          fx += dx * f;
          fy += dy * f;
          fz += dz * f;
        }
      }
      force[i * 3 + 0] = fx;
      force[i * 3 + 1] = fy;
      force[i * 3 + 2] = fz;
    }
  }
}
)";

}  // namespace

const std::string& MdSource() {
  static const std::string* source = new std::string(kMdSource);
  return *source;
}

MdInput MakeMdInput(int natoms, int maxneigh, std::uint64_t seed) {
  ACCMG_REQUIRE(natoms > 1 && maxneigh > 0, "bad MD input shape");
  MdInput input;
  input.natoms = natoms;
  input.maxneigh = maxneigh;
  input.pos.resize(static_cast<std::size_t>(natoms) * 3);
  input.neigh.resize(static_cast<std::size_t>(natoms) *
                     static_cast<std::size_t>(maxneigh));
  Rng rng(seed);
  // Jittered lattice in a cube; box edge chosen so the density makes ~half
  // the neighbour candidates fall within the cutoff.
  const int edge = std::max(2, static_cast<int>(std::cbrt(natoms)) + 1);
  const float spacing = 1.7f;
  for (int i = 0; i < natoms; ++i) {
    const int cx = i % edge;
    const int cy = (i / edge) % edge;
    const int cz = i / (edge * edge);
    input.pos[static_cast<std::size_t>(i) * 3 + 0] =
        spacing * static_cast<float>(cx) +
        0.3f * static_cast<float>(rng.NextDouble());
    input.pos[static_cast<std::size_t>(i) * 3 + 1] =
        spacing * static_cast<float>(cy) +
        0.3f * static_cast<float>(rng.NextDouble());
    input.pos[static_cast<std::size_t>(i) * 3 + 2] =
        spacing * static_cast<float>(cz) +
        0.3f * static_cast<float>(rng.NextDouble());
  }
  // Neighbours from a window around each atom's index (spatially close on
  // the lattice), never the atom itself.
  const std::int64_t window = std::max<std::int64_t>(maxneigh * 2, 64);
  for (int i = 0; i < natoms; ++i) {
    for (int j = 0; j < maxneigh; ++j) {
      std::int64_t nb =
          i + rng.NextInt(-window, window);
      nb = std::clamp<std::int64_t>(nb, 0, natoms - 1);
      if (nb == i) nb = (i + 1) % natoms;
      input.neigh[static_cast<std::size_t>(i) *
                      static_cast<std::size_t>(maxneigh) +
                  static_cast<std::size_t>(j)] = static_cast<std::int32_t>(nb);
    }
  }
  return input;
}

MdInput MakePaperMdInput(double scale) {
  // SHOC's MD benchmark: 73728 atoms, 128-entry neighbour lists (39.8 MB of
  // device data in Table II).
  const int natoms = std::max(64, static_cast<int>(73728 * scale));
  return MakeMdInput(natoms, 128);
}

std::vector<float> MdReference(const MdInput& input) {
  std::vector<float> force(static_cast<std::size_t>(input.natoms) * 3);
  for (int i = 0; i < input.natoms; ++i) {
    const float xi = input.pos[static_cast<std::size_t>(i) * 3 + 0];
    const float yi = input.pos[static_cast<std::size_t>(i) * 3 + 1];
    const float zi = input.pos[static_cast<std::size_t>(i) * 3 + 2];
    float fx = 0.0f, fy = 0.0f, fz = 0.0f;
    for (int j = 0; j < input.maxneigh; ++j) {
      const std::int32_t nb =
          input.neigh[static_cast<std::size_t>(i) *
                          static_cast<std::size_t>(input.maxneigh) +
                      static_cast<std::size_t>(j)];
      const float dx = xi - input.pos[static_cast<std::size_t>(nb) * 3 + 0];
      const float dy = yi - input.pos[static_cast<std::size_t>(nb) * 3 + 1];
      const float dz = zi - input.pos[static_cast<std::size_t>(nb) * 3 + 2];
      const float r2 = dx * dx + dy * dy + dz * dz;
      if (r2 < input.cutsq) {
        const float r2inv = 1.0f / r2;
        const float r6inv = r2inv * r2inv * r2inv;
        const float f = r2inv * r6inv * (input.lj1 * r6inv - input.lj2);
        fx += dx * f;
        fy += dy * f;
        fz += dz * f;
      }
    }
    force[static_cast<std::size_t>(i) * 3 + 0] = fx;
    force[static_cast<std::size_t>(i) * 3 + 1] = fy;
    force[static_cast<std::size_t>(i) * 3 + 2] = fz;
  }
  return force;
}

namespace {

runtime::RunReport RunMdProgram(const MdInput& input, sim::Platform& platform,
                                int num_gpus, bool use_cpu,
                                std::vector<float>* force_out,
                                const runtime::ExecOptions& options,
                                const translator::CompileOptions& copts = {}) {
  const runtime::AccProgram& program =
      runtime::AccProgram::Cached("md", MdSource(), copts);
  force_out->assign(static_cast<std::size_t>(input.natoms) * 3, 0.0f);

  runtime::RunConfig config;
  config.platform = &platform;
  config.num_gpus = num_gpus;
  config.use_cpu = use_cpu;
  config.options = options;
  runtime::ProgramRunner runner(program, config);
  // const_cast is safe: copyin arrays are never written by the program.
  runner.BindArray("pos", const_cast<float*>(input.pos.data()),
                   ir::ValType::kF32,
                   static_cast<std::int64_t>(input.pos.size()));
  runner.BindArray("neigh", const_cast<std::int32_t*>(input.neigh.data()),
                   ir::ValType::kI32,
                   static_cast<std::int64_t>(input.neigh.size()));
  runner.BindArray("force", force_out->data(), ir::ValType::kF32,
                   static_cast<std::int64_t>(force_out->size()));
  runner.BindScalar("natoms", static_cast<std::int64_t>(input.natoms));
  runner.BindScalar("maxneigh", static_cast<std::int64_t>(input.maxneigh));
  runner.BindScalarF32("lj1", input.lj1);
  runner.BindScalarF32("lj2", input.lj2);
  runner.BindScalarF32("cutsq", input.cutsq);
  return runner.Run("md");
}

}  // namespace

runtime::RunReport RunMdAcc(const MdInput& input, sim::Platform& platform,
                            int num_gpus, std::vector<float>* force_out,
                            const runtime::ExecOptions& options,
                            const translator::CompileOptions& copts) {
  return RunMdProgram(input, platform, num_gpus, /*use_cpu=*/false, force_out,
                      options, copts);
}

runtime::RunReport RunMdOpenMp(const MdInput& input, sim::Platform& platform,
                               std::vector<float>* force_out) {
  return RunMdProgram(input, platform, 1, /*use_cpu=*/true, force_out, {});
}

runtime::RunReport RunMdCuda(const MdInput& input, sim::Platform& platform,
                             std::vector<float>* force_out) {
  platform.ResetAccounting();
  force_out->assign(static_cast<std::size_t>(input.natoms) * 3, 0.0f);
  sim::Device& dev = platform.device(0);

  auto pos = dev.Allocate("cuda:pos", input.pos.size() * sizeof(float));
  auto neigh =
      dev.Allocate("cuda:neigh", input.neigh.size() * sizeof(std::int32_t));
  auto force = dev.Allocate("cuda:force", force_out->size() * sizeof(float));
  platform.CopyHostToDevice(*pos, 0, input.pos.data(),
                            input.pos.size() * sizeof(float));
  platform.CopyHostToDevice(*neigh, 0, input.neigh.data(),
                            input.neigh.size() * sizeof(std::int32_t));
  platform.Barrier(sim::TimeCategory::kCpuGpu);

  const std::span<const float> pos_view = pos->Typed<float>();
  const std::span<const std::int32_t> neigh_view = neigh->Typed<std::int32_t>();
  const std::span<float> force_view = force->Typed<float>();
  const MdInput& in = input;

  sim::LambdaKernel kernel([&, pos_view, neigh_view, force_view](
                               std::int64_t i, sim::KernelStats& stats) {
    const auto ii = static_cast<std::size_t>(i);
    const float xi = pos_view[ii * 3 + 0];
    const float yi = pos_view[ii * 3 + 1];
    const float zi = pos_view[ii * 3 + 2];
    float fx = 0.0f, fy = 0.0f, fz = 0.0f;
    for (int j = 0; j < in.maxneigh; ++j) {
      const auto nb = static_cast<std::size_t>(
          neigh_view[ii * static_cast<std::size_t>(in.maxneigh) +
                     static_cast<std::size_t>(j)]);
      const float dx = xi - pos_view[nb * 3 + 0];
      const float dy = yi - pos_view[nb * 3 + 1];
      const float dz = zi - pos_view[nb * 3 + 2];
      const float r2 = dx * dx + dy * dy + dz * dz;
      if (r2 < in.cutsq) {
        const float r2inv = 1.0f / r2;
        const float r6inv = r2inv * r2inv * r2inv;
        const float f = r2inv * r6inv * (in.lj1 * r6inv - in.lj2);
        fx += dx * f;
        fy += dy * f;
        fz += dz * f;
      }
    }
    force_view[ii * 3 + 0] = fx;
    force_view[ii * 3 + 1] = fy;
    force_view[ii * 3 + 2] = fz;
    // Compiled-kernel cost: hand-written CUDA runs the same arithmetic with
    // modestly fewer dynamic ops than the translated kernel (no index
    // recomputation against the layout arguments, registers reused).
    stats.instructions += 8 + static_cast<std::uint64_t>(in.maxneigh) * 38;
    stats.bytes_read += static_cast<std::uint64_t>(in.maxneigh) * 20;
    stats.bytes_written += 12;
  });
  sim::KernelLaunch launch;
  launch.body = &kernel;
  launch.num_threads = input.natoms;
  launch.name = "md_cuda";
  platform.LaunchKernel(0, launch);
  platform.Barrier(sim::TimeCategory::kKernel);

  platform.CopyDeviceToHost(force_out->data(), *force, 0,
                            force_out->size() * sizeof(float));
  platform.Barrier(sim::TimeCategory::kCpuGpu);

  runtime::RunReport report;
  report.time = platform.clock().breakdown();
  report.total_seconds = report.time.Total();
  report.counters = platform.counters();
  report.kernel_executions = 1;
  report.peak_user_bytes =
      pos->size_bytes() + neigh->size_bytes() + force->size_bytes();
  return report;
}

}  // namespace accmg::apps
