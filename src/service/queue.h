// Bounded job queue with per-tenant fairness and same-program batching —
// the admission controller of the resident service.
//
// Admission: capacity is a hard bound; Push on a full queue rejects
// immediately (counted in service.admission.rejects) instead of blocking
// the submitter — back-pressure is the client's problem, by design.
//
// Fairness: jobs are FIFO within a tenant, and tenants are served
// round-robin, so one tenant flooding the queue delays its own jobs, not
// everyone else's.
//
// Batching: when a worker pops, it takes the fair pick first, then drains
// up to `max_batch - 1` more queued jobs with the SAME program key (from
// any tenant, each tenant's internal order preserved). The batch shares one
// compiled program and one cache probe; placement still happens per job.
// Cross-tenant batch pulls slightly bend round-robin in exchange for
// amortizing compilation — the fair pick always comes first, so no tenant
// can be skipped two pops in a row.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <vector>

#include "service/job.h"

namespace accmg::service {

class JobQueue {
 public:
  explicit JobQueue(std::size_t capacity);

  JobQueue(const JobQueue&) = delete;
  JobQueue& operator=(const JobQueue&) = delete;

  /// Admits the job, or returns false when the queue is full or stopped
  /// (the reject counter only counts capacity rejects).
  bool Push(QueuedJob job);

  /// Blocks until work is available, then returns the fair pick plus any
  /// same-key jobs (at most `max_batch` total). Returns an empty vector
  /// only when the queue is stopped AND drained.
  std::vector<QueuedJob> PopBatch(std::size_t max_batch);

  /// Stops admission and wakes poppers. Already-queued jobs still drain.
  void Stop();

  std::size_t depth() const;
  std::uint64_t rejects() const { return rejects_.load(); }

 private:
  struct TenantQueue {
    std::string tenant;
    std::deque<QueuedJob> jobs;
  };

  const std::size_t capacity_;
  mutable std::mutex mutex_;
  std::condition_variable ready_;
  std::vector<TenantQueue> tenants_;  ///< round-robin ring; empties pruned
  std::size_t rr_cursor_ = 0;
  std::size_t depth_ = 0;
  bool stopped_ = false;
  std::atomic<std::uint64_t> rejects_{0};
};

}  // namespace accmg::service
