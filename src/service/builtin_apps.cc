#include "service/builtin_apps.h"

#include <cmath>
#include <cstdint>
#include <sstream>
#include <vector>

#include "apps/bfs/bfs.h"
#include "apps/kmeans/kmeans.h"
#include "apps/md/md.h"
#include "apps/spmv/spmv.h"
#include "common/error.h"
#include "ir/ir.h"

namespace accmg::service {

namespace {

/// Relative-tolerance float comparison (same spirit as the runtime
/// validator's reduction compare): |a-b| <= tol * max(1, |a|, |b|).
bool FloatsClose(const std::vector<float>& got, const std::vector<float>& want,
                 double tol, std::string* detail) {
  if (got.size() != want.size()) {
    *detail = "size mismatch";
    return false;
  }
  for (std::size_t i = 0; i < got.size(); ++i) {
    const double a = got[i];
    const double b = want[i];
    const double scale = std::max({1.0, std::fabs(a), std::fabs(b)});
    if (std::fabs(a - b) > tol * scale) {
      std::ostringstream os;
      os << "element " << i << ": got " << a << ", want " << b;
      *detail = os.str();
      return false;
    }
  }
  return true;
}

bool IntsEqual(const std::vector<std::int32_t>& got,
               const std::vector<std::int32_t>& want, std::string* detail) {
  if (got.size() != want.size()) {
    *detail = "size mismatch";
    return false;
  }
  for (std::size_t i = 0; i < got.size(); ++i) {
    if (got[i] != want[i]) {
      std::ostringstream os;
      os << "element " << i << ": got " << got[i] << ", want " << want[i];
      *detail = os.str();
      return false;
    }
  }
  return true;
}

std::string SaltedSource(const std::string& source, const std::string& salt) {
  if (salt.empty()) return source;
  return source + "\n// cache-salt: " + salt + "\n";
}

void FinishOutcome(const std::shared_ptr<AppJobOutcome>& outcome, bool checked,
                   bool ok, std::string detail) {
  if (outcome == nullptr) return;
  outcome->finished = true;
  outcome->checked = checked;
  outcome->ok = ok;
  outcome->detail = std::move(detail);
}

JobRequest MakeMdJob(const AppJobOptions& options,
                     std::shared_ptr<AppJobOutcome> outcome) {
  struct State {
    apps::MdInput input;
    std::vector<float> force;
  };
  auto state = std::make_shared<State>();
  state->input = apps::MakeMdInput(512 * options.scale, 12);
  state->force.assign(static_cast<std::size_t>(state->input.natoms) * 3, 0.0f);

  JobRequest request;
  request.name = "md";
  request.function = "md";
  request.source = SaltedSource(apps::MdSource(), options.source_salt);
  request.bind = [state](runtime::ProgramRunner& runner) {
    const apps::MdInput& in = state->input;
    // Bind runs once per execution attempt: reset the outputs so a job
    // retried after a fault starts from pristine state, not from the
    // failed attempt's partial writes.
    state->force.assign(state->force.size(), 0.0f);
    runner.BindArray("pos", const_cast<float*>(in.pos.data()),
                     ir::ValType::kF32,
                     static_cast<std::int64_t>(in.pos.size()));
    runner.BindArray("neigh", const_cast<std::int32_t*>(in.neigh.data()),
                     ir::ValType::kI32,
                     static_cast<std::int64_t>(in.neigh.size()));
    runner.BindArray("force", state->force.data(), ir::ValType::kF32,
                     static_cast<std::int64_t>(state->force.size()));
    runner.BindScalar("natoms", static_cast<std::int64_t>(in.natoms));
    runner.BindScalar("maxneigh", static_cast<std::int64_t>(in.maxneigh));
    runner.BindScalarF32("lj1", in.lj1);
    runner.BindScalarF32("lj2", in.lj2);
    runner.BindScalarF32("cutsq", in.cutsq);
  };
  const bool validate = options.validate_result;
  request.on_finish = [state, outcome,
                       validate](runtime::ProgramRunner* runner) {
    if (!validate || runner == nullptr) {
      FinishOutcome(outcome, false, runner != nullptr, "");
      return;
    }
    std::string detail;
    const bool ok = FloatsClose(state->force, apps::MdReference(state->input),
                                1e-4, &detail);
    FinishOutcome(outcome, true, ok, std::move(detail));
  };
  return request;
}

JobRequest MakeKmeansJob(const AppJobOptions& options,
                         std::shared_ptr<AppJobOutcome> outcome) {
  struct State {
    apps::KmeansInput input;
    std::vector<float> centroids;
    std::vector<std::int32_t> membership;
    std::vector<float> sums;
    std::vector<std::int32_t> counts;
  };
  auto state = std::make_shared<State>();
  state->input = apps::MakeKmeansInput(800 * options.scale, 4, 4, 7);
  state->centroids = state->input.centroids;
  state->membership.assign(static_cast<std::size_t>(state->input.npoints), 0);
  state->sums.assign(static_cast<std::size_t>(state->input.nclusters) *
                         static_cast<std::size_t>(state->input.nfeatures),
                     0.0f);
  state->counts.assign(static_cast<std::size_t>(state->input.nclusters), 0);

  JobRequest request;
  request.name = "kmeans";
  request.function = "kmeans";
  request.source = SaltedSource(apps::KmeansSource(), options.source_salt);
  request.bind = [state](runtime::ProgramRunner& runner) {
    const apps::KmeansInput& in = state->input;
    // Reset per-attempt state: kmeans iterates over its own outputs, so a
    // faulted attempt's partial centroids would poison a retry.
    state->centroids = in.centroids;
    state->membership.assign(state->membership.size(), 0);
    state->sums.assign(state->sums.size(), 0.0f);
    state->counts.assign(state->counts.size(), 0);
    runner.BindArray("features", const_cast<float*>(in.features.data()),
                     ir::ValType::kF32,
                     static_cast<std::int64_t>(in.features.size()));
    runner.BindArray("centroids", state->centroids.data(), ir::ValType::kF32,
                     static_cast<std::int64_t>(state->centroids.size()));
    runner.BindArray("membership", state->membership.data(), ir::ValType::kI32,
                     static_cast<std::int64_t>(state->membership.size()));
    runner.BindArray("sums", state->sums.data(), ir::ValType::kF32,
                     static_cast<std::int64_t>(state->sums.size()));
    runner.BindArray("counts", state->counts.data(), ir::ValType::kI32,
                     static_cast<std::int64_t>(state->counts.size()));
    runner.BindScalar("npoints", static_cast<std::int64_t>(in.npoints));
    runner.BindScalar("nfeatures", static_cast<std::int64_t>(in.nfeatures));
    runner.BindScalar("nclusters", static_cast<std::int64_t>(in.nclusters));
    runner.BindScalar("iterations", static_cast<std::int64_t>(in.iterations));
  };
  const bool validate = options.validate_result;
  request.on_finish = [state, outcome,
                       validate](runtime::ProgramRunner* runner) {
    if (!validate || runner == nullptr) {
      FinishOutcome(outcome, false, runner != nullptr, "");
      return;
    }
    std::string detail;
    const apps::KmeansResult want = apps::KmeansReference(state->input);
    // Chunked float reductions reorder centroid sums; memberships must
    // still match exactly, centroids up to the smoke tolerance.
    bool ok = IntsEqual(state->membership, want.membership, &detail);
    if (ok) ok = FloatsClose(state->centroids, want.centroids, 2e-3, &detail);
    FinishOutcome(outcome, true, ok, std::move(detail));
  };
  return request;
}

JobRequest MakeBfsJob(const AppJobOptions& options,
                      std::shared_ptr<AppJobOutcome> outcome) {
  struct State {
    apps::BfsInput input;
    std::vector<std::int32_t> cost;
    std::int32_t flag = 0;
  };
  auto state = std::make_shared<State>();
  state->input = apps::MakeBfsInput(1000 * options.scale, 4);
  state->cost.assign(static_cast<std::size_t>(state->input.nnodes), -1);
  state->cost[static_cast<std::size_t>(state->input.source)] = 0;

  JobRequest request;
  request.name = "bfs";
  request.function = "bfs";
  request.source = SaltedSource(apps::BfsSource(), options.source_salt);
  request.bind = [state](runtime::ProgramRunner& runner) {
    const apps::BfsInput& in = state->input;
    // Reset per-attempt state: the frontier expansion reads `cost` back,
    // so a retry must restart from the unvisited graph.
    state->cost.assign(state->cost.size(), -1);
    state->cost[static_cast<std::size_t>(in.source)] = 0;
    state->flag = 0;
    runner.BindArray("offsets", const_cast<std::int32_t*>(in.offsets.data()),
                     ir::ValType::kI32,
                     static_cast<std::int64_t>(in.offsets.size()));
    runner.BindArray("edges", const_cast<std::int32_t*>(in.edges.data()),
                     ir::ValType::kI32,
                     static_cast<std::int64_t>(in.edges.size()));
    runner.BindArray("cost", state->cost.data(), ir::ValType::kI32,
                     static_cast<std::int64_t>(state->cost.size()));
    runner.BindArray("flag", &state->flag, ir::ValType::kI32, 1);
    runner.BindScalar("nnodes", static_cast<std::int64_t>(in.nnodes));
    runner.BindScalar("degree", static_cast<std::int64_t>(in.degree));
    runner.BindScalar("maxlevels", static_cast<std::int64_t>(in.max_levels));
  };
  const bool validate = options.validate_result;
  request.on_finish = [state, outcome,
                       validate](runtime::ProgramRunner* runner) {
    if (!validate || runner == nullptr) {
      FinishOutcome(outcome, false, runner != nullptr, "");
      return;
    }
    std::string detail;
    const bool ok =
        IntsEqual(state->cost, apps::BfsReference(state->input), &detail);
    FinishOutcome(outcome, true, ok, std::move(detail));
  };
  return request;
}

JobRequest MakeSpmvJob(const AppJobOptions& options,
                       std::shared_ptr<AppJobOutcome> outcome) {
  struct State {
    apps::SpmvInput input;
    std::vector<float> y;
  };
  auto state = std::make_shared<State>();
  state->input = apps::MakeSpmvInput(600 * options.scale, 8);
  state->y.assign(static_cast<std::size_t>(state->input.rows), 0.0f);

  JobRequest request;
  request.name = "spmv";
  request.function = "spmv";
  request.source = SaltedSource(apps::SpmvSource(), options.source_salt);
  request.bind = [state](runtime::ProgramRunner& runner) {
    const apps::SpmvInput& in = state->input;
    state->y.assign(state->y.size(), 0.0f);  // idempotent across retries
    runner.BindArray("values", const_cast<float*>(in.values.data()),
                     ir::ValType::kF32,
                     static_cast<std::int64_t>(in.values.size()));
    runner.BindArray("cols", const_cast<std::int32_t*>(in.cols.data()),
                     ir::ValType::kI32,
                     static_cast<std::int64_t>(in.cols.size()));
    runner.BindArray("x", const_cast<float*>(in.x.data()), ir::ValType::kF32,
                     static_cast<std::int64_t>(in.x.size()));
    runner.BindArray("y", state->y.data(), ir::ValType::kF32,
                     static_cast<std::int64_t>(state->y.size()));
    runner.BindScalar("rows", static_cast<std::int64_t>(in.rows));
    runner.BindScalar("maxnnz", static_cast<std::int64_t>(in.max_nnz));
  };
  const bool validate = options.validate_result;
  request.on_finish = [state, outcome,
                       validate](runtime::ProgramRunner* runner) {
    if (!validate || runner == nullptr) {
      FinishOutcome(outcome, false, runner != nullptr, "");
      return;
    }
    std::string detail;
    const bool ok = FloatsClose(state->y, apps::SpmvReference(state->input),
                                1e-4, &detail);
    FinishOutcome(outcome, true, ok, std::move(detail));
  };
  return request;
}

}  // namespace

bool IsBuiltinApp(const std::string& name) {
  return name == "md" || name == "kmeans" || name == "bfs" || name == "spmv";
}

JobRequest MakeAppJob(const AppJobOptions& options,
                      std::shared_ptr<AppJobOutcome> outcome) {
  ACCMG_REQUIRE(options.scale >= 1, "app input scale must be >= 1");
  JobRequest request;
  if (options.app == "md") {
    request = MakeMdJob(options, std::move(outcome));
  } else if (options.app == "kmeans") {
    request = MakeKmeansJob(options, std::move(outcome));
  } else if (options.app == "bfs") {
    request = MakeBfsJob(options, std::move(outcome));
  } else if (options.app == "spmv") {
    request = MakeSpmvJob(options, std::move(outcome));
  } else {
    ACCMG_REQUIRE(false, "unknown builtin app: " + options.app);
  }
  request.tenant = options.tenant;
  request.gpus = options.gpus;
  request.exec_options = options.exec;
  request.compile_options = options.compile;
  return request;
}

}  // namespace accmg::service
