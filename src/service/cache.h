// Content-hashed compiled-program cache for the resident service.
//
// Translation in accmg is a pure function of (source text, CompileOptions):
// the frontend, analyses and kernel extraction consult nothing else. The
// cache therefore keys on SHA-256 of a canonical serialization of exactly
// those inputs and memoizes the full AccProgram (AST + per-loop kernels)
// behind a sharded LRU. Two submissions that differ only in program *name*
// share an entry; two that differ in one CompileOptions bit never collide.
//
// Programs are handed out as shared_ptr<const AccProgram>: an entry evicted
// while a job still executes it stays alive until that job drops its
// reference, so eviction never invalidates in-flight work.
//
// Metrics (common/metrics.h): service.cache.hits, service.cache.misses,
// service.cache.evictions, service.cache.compiles (counters) and
// service.cache.size (gauge).
#pragma once

#include <atomic>
#include <cstddef>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "runtime/program.h"
#include "translator/offload.h"

namespace accmg::service {

class ProgramCache {
 public:
  /// `capacity` is the total entry budget, split evenly across `shards`
  /// independently locked LRU shards (a key always maps to one shard, so
  /// per-key LRU order is exact; only the global order is approximate).
  explicit ProgramCache(std::size_t capacity, std::size_t shards = 8);

  ProgramCache(const ProgramCache&) = delete;
  ProgramCache& operator=(const ProgramCache&) = delete;

  /// The cache key: hex SHA-256 over a versioned canonical serialization of
  /// the compile inputs. Byte-identical source hits; any textual difference
  /// (even whitespace) or any CompileOptions difference misses.
  static std::string KeyFor(const std::string& source,
                            const translator::CompileOptions& options);

  /// Returns the cached program for (source, options), compiling and
  /// inserting on miss. Throws CompileError on translation failure (failed
  /// compiles are not cached). `name` is display metadata only — it is NOT
  /// part of the key; on a hit the cached program keeps its original name.
  /// When `was_hit` is non-null it reports whether this call compiled.
  std::shared_ptr<const runtime::AccProgram> GetOrCompile(
      const std::string& name, const std::string& source,
      const translator::CompileOptions& options, bool* was_hit = nullptr);

  /// Lookup by precomputed key without compiling; null on miss. Counts a
  /// hit/miss like GetOrCompile.
  std::shared_ptr<const runtime::AccProgram> Lookup(const std::string& key);

  std::size_t size() const;
  std::size_t capacity() const { return capacity_; }

  /// Per-instance statistics (the service.cache.* registry metrics are
  /// process-global and aggregate across cache instances).
  std::uint64_t hits() const { return hits_.load(); }
  std::uint64_t misses() const { return misses_.load(); }
  std::uint64_t evictions() const { return evictions_.load(); }
  std::uint64_t compiles() const { return compiles_.load(); }

 private:
  struct Entry {
    std::string key;
    std::shared_ptr<const runtime::AccProgram> program;
  };
  struct Shard {
    mutable std::mutex mutex;
    /// Front = most recently used. Stable iterators let the index point in.
    std::list<Entry> lru;
    std::unordered_map<std::string, std::list<Entry>::iterator> index;
  };

  Shard& ShardFor(const std::string& key);
  /// Looks `key` up in `shard` under its lock, refreshing LRU order.
  std::shared_ptr<const runtime::AccProgram> LookupIn(Shard& shard,
                                                      const std::string& key);
  void Insert(Shard& shard, const std::string& key,
              std::shared_ptr<const runtime::AccProgram> program);
  void UpdateSizeGauge() const;

  const std::size_t capacity_;
  const std::size_t shard_capacity_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
  std::atomic<std::uint64_t> evictions_{0};
  std::atomic<std::uint64_t> compiles_{0};
};

}  // namespace accmg::service
