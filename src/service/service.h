// AccService: the resident compile-once / serve-many front of the accmg
// system (ROADMAP item: "Compile-once, serve-many").
//
// One long-lived simulated platform is shared by every job. The moving
// parts, in submission order:
//
//   Submit ──> JobQueue (bounded; per-tenant round-robin; same-hash
//              batching) ──> worker pops a batch ──> ProgramCache
//              (one compile per batch key) ──> DeviceArena lease
//              (disjoint devices) ──> ProgramRunner::Run in
//              shared-platform mode ──> per-job billing + trace export.
//
// Concurrency contract: admission, compilation and host-array binding all
// run concurrently across workers, but the simulated executions themselves
// are serialized on one mutex — the SimClock is a single global timeline
// whose Barrier() assumes no in-flight billing (sim/platform.h), so
// interleaving two Run() calls would corrupt simulated *time*. Billing
// exactness does NOT depend on that serialization: it comes from snapshot
// deltas of per-device counters over each job's disjoint lease
// (RunConfig::shared_platform), which is what the billing-identity test
// and bench_serve_saturation verify.
//
// Metrics: service.jobs.{submitted,completed,failed} (counters),
// service.billed.bytes / service.billed.transfers (counters),
// service.billed.sim_seconds (histogram), plus the cache/queue/arena
// metrics documented in their headers. docs/SERVING.md is the operator
// guide for all of this.
#pragma once

#include <atomic>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "service/arena.h"
#include "service/cache.h"
#include "service/job.h"
#include "service/queue.h"
#include "sim/platform.h"

namespace accmg::service {

class AccService {
 public:
  struct Config {
    sim::Platform* platform = nullptr;  ///< required; outlives the service

    int workers = 2;  ///< worker threads popping job batches

    std::size_t cache_capacity = 64;  ///< compiled-program LRU entries
    std::size_t cache_shards = 8;

    std::size_t queue_capacity = 64;  ///< admission bound (hard reject)
    std::size_t max_batch = 8;        ///< same-hash jobs per popped batch

    /// When non-empty, jobs that run with ExecOptions::trace get their
    /// events exported to `<trace_dir>/job_<id>.json` (Chrome trace format,
    /// filtered to that job's events). The directory must exist.
    std::string trace_dir;
  };

  explicit AccService(Config config);
  /// Stops admission, drains queued jobs, joins workers.
  ~AccService();

  AccService(const AccService&) = delete;
  AccService& operator=(const AccService&) = delete;

  /// Admits a job. Returns its id, or -1 when the queue rejected it
  /// (capacity, or the service is stopping).
  int Submit(JobRequest request);

  /// State of a known job id (throws on unknown ids).
  JobState Status(int job_id) const;

  /// Blocks until the job reaches kDone/kFailed and returns its result.
  JobResult Wait(int job_id);

  /// Blocks until every admitted job has finished.
  void Drain();

  /// Stops admission, drains already-queued jobs, joins workers.
  /// Idempotent; also run by the destructor.
  void Stop();

  ProgramCache& cache() { return cache_; }
  DeviceArena& arena() { return arena_; }
  JobQueue& queue() { return queue_; }
  const Config& config() const { return config_; }

 private:
  void WorkerLoop();
  void ProcessBatch(std::vector<QueuedJob> batch);
  void RunJob(QueuedJob& job,
              const std::shared_ptr<const runtime::AccProgram>& program,
              bool cache_hit);
  void Finish(JobResult result);

  Config config_;
  ProgramCache cache_;
  DeviceArena arena_;
  JobQueue queue_;

  mutable std::mutex jobs_mutex_;
  std::condition_variable job_done_;
  std::unordered_map<int, JobResult> jobs_;  ///< state + eventual result
  int next_job_id_ = 0;

  /// Serializes ProgramRunner::Run on the shared SimClock (see file
  /// comment); everything before Run runs concurrently.
  std::mutex run_mutex_;

  std::vector<std::thread> workers_;
  std::atomic<bool> stopped_{false};
};

}  // namespace accmg::service
