// AccService: the resident compile-once / serve-many front of the accmg
// system (ROADMAP item: "Compile-once, serve-many").
//
// One long-lived simulated platform is shared by every job. The moving
// parts, in submission order:
//
//   Submit ──> JobQueue (bounded; per-tenant round-robin; same-hash
//              batching) ──> worker pops a batch ──> ProgramCache
//              (one compile per batch key) ──> DeviceArena lease
//              (disjoint devices) ──> ProgramRunner::Run in
//              shared-platform mode ──> per-job billing + trace export.
//
// Concurrency contract: admission, compilation and host-array binding all
// run concurrently across workers, but the simulated executions themselves
// are serialized on one mutex — the SimClock is a single global timeline
// whose Barrier() assumes no in-flight billing (sim/platform.h), so
// interleaving two Run() calls would corrupt simulated *time*. Billing
// exactness does NOT depend on that serialization: it comes from snapshot
// deltas of per-device counters over each job's disjoint lease
// (RunConfig::shared_platform), which is what the billing-identity test
// and bench_serve_saturation verify.
//
// Robustness (docs/ROBUSTNESS.md): every device lease is RAII
// (DeviceArena::Lease releases on destruction), so no exception path in a
// worker can leak devices. Jobs that die on an injected fault get re-run
// up to Config::job_retries times on a fresh lease clamped to the healthy
// device count; devices the fault injector killed are revoked from the
// arena after every attempt, and transiently-faulting lease members are
// soft-quarantined. A per-job wall-clock deadline (JobRequest::deadline_ms,
// default Config::default_deadline_ms) is enforced end-to-end: expired
// queued jobs fail without running, and a watchdog thread cancels expired
// running jobs via the executor's cooperative interrupt flag. Failed jobs
// carry a typed error_kind; admission rejects leases larger than the
// healthy device count (degraded mode).
//
// Metrics: service.jobs.{submitted,completed,failed} (counters),
// service.billed.bytes / service.billed.transfers (counters),
// service.billed.sim_seconds (histogram), recovery.job_retries /
// recovery.watchdog_cancels / service.admission.degraded_rejects
// (counters), plus the cache/queue/arena metrics documented in their
// headers. docs/SERVING.md is the operator guide for all of this.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "service/arena.h"
#include "service/cache.h"
#include "service/job.h"
#include "service/queue.h"
#include "sim/platform.h"

namespace accmg::service {

class AccService {
 public:
  struct Config {
    sim::Platform* platform = nullptr;  ///< required; outlives the service

    int workers = 2;  ///< worker threads popping job batches

    std::size_t cache_capacity = 64;  ///< compiled-program LRU entries
    std::size_t cache_shards = 8;

    std::size_t queue_capacity = 64;  ///< admission bound (hard reject)
    std::size_t max_batch = 8;        ///< same-hash jobs per popped batch

    /// When non-empty, jobs that run with ExecOptions::trace get their
    /// events exported to `<trace_dir>/job_<id>.json` (Chrome trace format,
    /// filtered to that job's events). The directory must exist.
    std::string trace_dir;

    /// Times a faulted job may be re-run on a fresh (healthy-clamped)
    /// lease before it fails for good.
    int job_retries = 1;

    /// Default JobRequest::deadline_ms when the request leaves it at 0
    /// (<= 0 here means jobs have no deadline unless they ask for one).
    double default_deadline_ms = 0;

    /// Watchdog scan period for expired running jobs.
    double watchdog_poll_ms = 5;
  };

  explicit AccService(Config config);
  /// Stops admission, drains queued jobs, joins workers.
  ~AccService();

  AccService(const AccService&) = delete;
  AccService& operator=(const AccService&) = delete;

  /// Admits a job. Returns its id, or -1 when it was rejected — queue
  /// capacity, the service stopping, or a lease larger than the healthy
  /// device count (degraded mode). `reject_reason`, when non-null, names
  /// the reason of a -1 return.
  int Submit(JobRequest request, std::string* reject_reason = nullptr);

  /// State of a known job id (throws on unknown ids).
  JobState Status(int job_id) const;

  /// Blocks until the job reaches kDone/kFailed and returns its result.
  JobResult Wait(int job_id);

  /// Bounded Wait: returns nullopt when `timeout` elapses before the job
  /// finishes (the job keeps running — this only bounds the wait).
  std::optional<JobResult> WaitFor(int job_id,
                                   std::chrono::milliseconds timeout);

  /// Blocks until every admitted job has finished.
  void Drain();

  /// Stops admission, drains already-queued jobs, joins workers.
  /// Idempotent; also run by the destructor.
  void Stop();

  ProgramCache& cache() { return cache_; }
  DeviceArena& arena() { return arena_; }
  JobQueue& queue() { return queue_; }
  const Config& config() const { return config_; }

 private:
  /// Live bookkeeping of one running job, shared with the watchdog.
  struct RunningJob {
    std::atomic<bool> cancel{false};
    bool has_deadline = false;
    std::chrono::steady_clock::time_point deadline{};
  };

  void WorkerLoop();
  void WatchdogLoop();
  void ProcessBatch(std::vector<QueuedJob> batch);
  void RunJob(QueuedJob& job,
              const std::shared_ptr<const runtime::AccProgram>& program,
              bool cache_hit);
  /// One execution attempt: healthy-clamped RAII lease, bind, run, bill,
  /// trace export, on_finish. Throws to signal failure; the lease is
  /// released on every path.
  void RunAttempt(QueuedJob& job,
                  const std::shared_ptr<const runtime::AccProgram>& program,
                  JobResult& result, RunningJob& running);
  /// Revokes devices the fault injector reports dead from the arena.
  void SyncDeadDevices();
  void Finish(JobResult result);

  Config config_;
  ProgramCache cache_;
  DeviceArena arena_;
  JobQueue queue_;

  mutable std::mutex jobs_mutex_;
  std::condition_variable job_done_;
  std::unordered_map<int, JobResult> jobs_;  ///< state + eventual result
  int next_job_id_ = 0;

  /// Serializes ProgramRunner::Run on the shared SimClock (see file
  /// comment); everything before Run runs concurrently.
  std::mutex run_mutex_;

  mutable std::mutex running_mutex_;
  std::condition_variable watchdog_wake_;
  std::unordered_map<int, std::shared_ptr<RunningJob>> running_;
  bool watchdog_stop_ = false;
  std::thread watchdog_;

  std::vector<std::thread> workers_;
  std::atomic<bool> stopped_{false};
};

}  // namespace accmg::service
