// Device arena: shards the simulated GPUs of one long-lived platform across
// concurrent service jobs.
//
// A job asks for N devices and blocks until N are free *and* it is at the
// head of the FIFO ticket line — strict arrival-order granting, so a 4-GPU
// job behind two 1-GPU jobs cannot be starved by a stream of later small
// jobs (head-of-line blocking is the accepted cost of that guarantee; the
// admission controller, not the arena, is where smarter policies belong).
//
// Leases hand out *disjoint* device-id sets. That disjointness is what makes
// per-job billing exact on a shared platform: every byte a job moves lands
// in sim::Platform::device_counters() of a device only that job owns, so
// snapshot deltas over the lease attribute traffic with no cross-talk
// (RunConfig::shared_platform).
//
// Metrics: service.arena.leases (counter), service.arena.wait_seconds
// (histogram of time blocked in Acquire), service.arena.devices_busy
// (gauge).
#pragma once

#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <vector>

namespace accmg::service {

class DeviceArena {
 public:
  /// Manages device ids [0, num_devices).
  explicit DeviceArena(int num_devices);

  DeviceArena(const DeviceArena&) = delete;
  DeviceArena& operator=(const DeviceArena&) = delete;

  /// Move-only RAII lease; releases its devices (and wakes the ticket
  /// line) on destruction.
  class Lease {
   public:
    Lease() = default;
    Lease(Lease&& other) noexcept;
    Lease& operator=(Lease&& other) noexcept;
    ~Lease() { Release(); }

    Lease(const Lease&) = delete;
    Lease& operator=(const Lease&) = delete;

    bool valid() const { return arena_ != nullptr; }
    const std::vector<int>& devices() const { return devices_; }

    /// Early release (idempotent).
    void Release();

   private:
    friend class DeviceArena;
    Lease(DeviceArena* arena, std::vector<int> devices)
        : arena_(arena), devices_(std::move(devices)) {}
    DeviceArena* arena_ = nullptr;
    std::vector<int> devices_;
  };

  /// Blocks until `count` devices are free and this caller is first in
  /// line, then leases the `count` lowest-numbered free devices. Requires
  /// 1 <= count <= num_devices() (throws otherwise — such a job could
  /// never be satisfied).
  Lease Acquire(int count);

  int num_devices() const { return static_cast<int>(busy_.size()); }
  int free_count() const;
  std::uint64_t leases_granted() const { return leases_granted_; }

 private:
  void Release(const std::vector<int>& devices);

  mutable std::mutex mutex_;
  std::condition_variable turn_or_free_;
  std::vector<bool> busy_;
  /// FIFO tickets: Acquire #k waits until serving_ == k.
  std::uint64_t next_ticket_ = 0;
  std::uint64_t serving_ = 0;
  std::uint64_t leases_granted_ = 0;
};

}  // namespace accmg::service
