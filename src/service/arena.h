// Device arena: shards the simulated GPUs of one long-lived platform across
// concurrent service jobs.
//
// A job asks for N devices and blocks until N are free *and* it is at the
// head of the FIFO ticket line — strict arrival-order granting, so a 4-GPU
// job behind two 1-GPU jobs cannot be starved by a stream of later small
// jobs (head-of-line blocking is the accepted cost of that guarantee; the
// admission controller, not the arena, is where smarter policies belong).
//
// Leases hand out *disjoint* device-id sets. That disjointness is what makes
// per-job billing exact on a shared platform: every byte a job moves lands
// in sim::Platform::device_counters() of a device only that job owns, so
// snapshot deltas over the lease attribute traffic with no cross-talk
// (RunConfig::shared_platform).
//
// Health (docs/ROBUSTNESS.md): MarkDead revokes a device permanently — it
// is never granted again (a busy dead device finishes its current lease
// first). MarkSuspect soft-quarantines: selection prefers non-quarantined
// devices but still uses quarantined ones when nothing else can satisfy the
// request (so quarantine can never deadlock the line), and each grant of a
// quarantined device burns one unit of its probation. Acquire with a
// deadline returns an invalid lease on timeout instead of blocking forever;
// a timed-out (abandoned) ticket is skipped so it cannot wedge the FIFO
// line, and a request larger than the healthy device count fails fast with
// a typed error instead of waiting for devices that will never come back.
//
// Metrics: service.arena.leases (counter), service.arena.wait_seconds
// (histogram of time blocked in Acquire), service.arena.devices_busy
// (gauge), service.arena.dead_devices / service.arena.quarantined (gauges),
// service.arena.lease_timeouts (counter).
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <unordered_set>
#include <vector>

namespace accmg::service {

class DeviceArena {
 public:
  /// Manages device ids [0, num_devices).
  explicit DeviceArena(int num_devices);

  DeviceArena(const DeviceArena&) = delete;
  DeviceArena& operator=(const DeviceArena&) = delete;

  /// Move-only RAII lease; releases its devices (and wakes the ticket
  /// line) on destruction.
  class Lease {
   public:
    Lease() = default;
    Lease(Lease&& other) noexcept;
    Lease& operator=(Lease&& other) noexcept;
    ~Lease() { Release(); }

    Lease(const Lease&) = delete;
    Lease& operator=(const Lease&) = delete;

    bool valid() const { return arena_ != nullptr; }
    const std::vector<int>& devices() const { return devices_; }

    /// Early release (idempotent).
    void Release();

   private:
    friend class DeviceArena;
    Lease(DeviceArena* arena, std::vector<int> devices)
        : arena_(arena), devices_(std::move(devices)) {}
    DeviceArena* arena_ = nullptr;
    std::vector<int> devices_;
  };

  /// Blocks until `count` devices are free and this caller is first in
  /// line, then leases the `count` lowest-numbered selectable devices
  /// (preferring non-quarantined ones). Requires 1 <= count <=
  /// num_devices() (throws otherwise — such a job could never be
  /// satisfied); throws DeviceError when count exceeds the healthy device
  /// count, which can only shrink.
  Lease Acquire(int count);

  /// Bounded-wait Acquire: returns an invalid lease when `timeout` elapses
  /// first. The abandoned ticket is skipped by the FIFO line.
  Lease Acquire(int count, std::chrono::milliseconds timeout);

  /// Permanently revokes a device (fault injector reported it dead). A
  /// currently-leased device is revoked on release. Wakes waiters whose
  /// requests just became unsatisfiable so they fail fast.
  void MarkDead(int device);

  /// Soft-quarantines a device for `probation` grants: selection avoids it
  /// while any other free healthy device can fill the lease.
  void MarkSuspect(int device, int probation = 3);

  int num_devices() const { return static_cast<int>(busy_.size()); }
  int free_count() const;
  /// Devices not marked dead (leased or not).
  int healthy_count() const;
  int busy_count() const;
  bool alive(int device) const;
  std::uint64_t leases_granted() const { return leases_granted_; }

 private:
  Lease AcquireInternal(int count, bool bounded,
                        std::chrono::steady_clock::time_point deadline);
  void Release(const std::vector<int>& devices);

  int HealthyLocked() const;
  int SelectableLocked() const;  ///< free AND alive
  /// Drops `ticket` from the line; advances serving_ past it (and any
  /// previously abandoned successors) when it is at the head.
  void AbandonLocked(std::uint64_t ticket);
  void AdvanceServingLocked();

  mutable std::mutex mutex_;
  std::condition_variable turn_or_free_;
  std::vector<bool> busy_;
  std::vector<bool> dead_;
  std::vector<int> quarantine_;  ///< grants left in probation; 0 = trusted
  /// FIFO tickets: Acquire #k waits until serving_ == k.
  std::uint64_t next_ticket_ = 0;
  std::uint64_t serving_ = 0;
  std::unordered_set<std::uint64_t> abandoned_;  ///< timed-out tickets
  std::uint64_t leases_granted_ = 0;
};

}  // namespace accmg::service
