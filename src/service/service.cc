#include "service/service.h"

#include <algorithm>
#include <chrono>
#include <exception>
#include <utility>

#include "common/error.h"
#include "common/metrics.h"
#include "common/trace.h"

namespace accmg::service {

namespace {

struct ServiceMetrics {
  metrics::Counter& submitted;
  metrics::Counter& completed;
  metrics::Counter& failed;
  metrics::Counter& billed_bytes;
  metrics::Counter& billed_transfers;
  metrics::Histogram& billed_sim_seconds;
  metrics::Counter& job_retries;
  metrics::Counter& watchdog_cancels;
  metrics::Counter& degraded_rejects;

  static ServiceMetrics& Get() {
    static ServiceMetrics m{
        metrics::Registry::Global().counter("service.jobs.submitted"),
        metrics::Registry::Global().counter("service.jobs.completed"),
        metrics::Registry::Global().counter("service.jobs.failed"),
        metrics::Registry::Global().counter("service.billed.bytes"),
        metrics::Registry::Global().counter("service.billed.transfers"),
        metrics::Registry::Global().histogram("service.billed.sim_seconds"),
        metrics::Registry::Global().counter("recovery.job_retries"),
        metrics::Registry::Global().counter("recovery.watchdog_cancels"),
        metrics::Registry::Global().counter(
            "service.admission.degraded_rejects"),
    };
    return m;
  }
};

bool Terminal(JobState state) {
  return state == JobState::kDone || state == JobState::kFailed;
}

/// Typed failure class of a job error (JobResult::error_kind).
const char* ClassifyError(const std::exception& e) {
  if (dynamic_cast<const DeviceLostError*>(&e) != nullptr) {
    return "device_lost";
  }
  if (dynamic_cast<const FaultError*>(&e) != nullptr) return "fault";
  if (dynamic_cast<const JobTimeoutError*>(&e) != nullptr) return "timeout";
  if (dynamic_cast<const CompileError*>(&e) != nullptr) return "compile";
  return "internal";
}

}  // namespace

const char* JobStateName(JobState state) {
  switch (state) {
    case JobState::kQueued:
      return "queued";
    case JobState::kRunning:
      return "running";
    case JobState::kDone:
      return "done";
    case JobState::kFailed:
      return "failed";
  }
  return "unknown";
}

AccService::AccService(Config config)
    : config_(std::move(config)),
      cache_(config_.cache_capacity, config_.cache_shards),
      arena_(config_.platform != nullptr ? config_.platform->num_devices()
                                         : 1),
      queue_(config_.queue_capacity) {
  ACCMG_REQUIRE(config_.platform != nullptr, "AccService requires a platform");
  ACCMG_REQUIRE(config_.workers >= 1, "AccService requires >= 1 worker");
  watchdog_ = std::thread([this] { WatchdogLoop(); });
  workers_.reserve(static_cast<std::size_t>(config_.workers));
  for (int w = 0; w < config_.workers; ++w) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

AccService::~AccService() { Stop(); }

int AccService::Submit(JobRequest request, std::string* reject_reason) {
  ACCMG_REQUIRE(request.gpus >= 1 && request.gpus <= arena_.num_devices(),
                "job requests more GPUs than the platform has");
  // Degraded-mode admission: dead devices never come back, so a lease the
  // healthy set cannot cover is rejected up front with the reason instead
  // of being queued to fail later.
  const int healthy = arena_.healthy_count();
  if (request.gpus > healthy) {
    ServiceMetrics::Get().degraded_rejects.Add();
    if (reject_reason != nullptr) {
      *reject_reason = "degraded: " + std::to_string(request.gpus) +
                       " gpus requested, " + std::to_string(healthy) +
                       " healthy";
    }
    return -1;
  }
  QueuedJob job;
  job.program_key =
      ProgramCache::KeyFor(request.source, request.compile_options);
  double deadline_ms = request.deadline_ms;
  if (deadline_ms == 0) deadline_ms = config_.default_deadline_ms;
  if (deadline_ms > 0) {
    job.has_deadline = true;
    job.deadline = std::chrono::steady_clock::now() +
                   std::chrono::microseconds(
                       static_cast<std::int64_t>(deadline_ms * 1000));
  }
  {
    std::lock_guard<std::mutex> lock(jobs_mutex_);
    job.id = next_job_id_++;
    JobResult& record = jobs_[job.id];
    record.job_id = job.id;
    record.state = JobState::kQueued;
    record.program_key = job.program_key;
  }
  const int id = job.id;
  job.request = std::move(request);
  if (!queue_.Push(std::move(job))) {
    std::lock_guard<std::mutex> lock(jobs_mutex_);
    jobs_.erase(id);
    if (reject_reason != nullptr) *reject_reason = "queue-full";
    return -1;
  }
  ServiceMetrics::Get().submitted.Add();
  return id;
}

JobState AccService::Status(int job_id) const {
  std::lock_guard<std::mutex> lock(jobs_mutex_);
  auto it = jobs_.find(job_id);
  ACCMG_REQUIRE(it != jobs_.end(), "unknown job id");
  return it->second.state;
}

JobResult AccService::Wait(int job_id) {
  std::unique_lock<std::mutex> lock(jobs_mutex_);
  auto it = jobs_.find(job_id);
  ACCMG_REQUIRE(it != jobs_.end(), "unknown job id");
  job_done_.wait(lock, [&] { return Terminal(jobs_.at(job_id).state); });
  return jobs_.at(job_id);
}

std::optional<JobResult> AccService::WaitFor(
    int job_id, std::chrono::milliseconds timeout) {
  std::unique_lock<std::mutex> lock(jobs_mutex_);
  auto it = jobs_.find(job_id);
  ACCMG_REQUIRE(it != jobs_.end(), "unknown job id");
  if (!job_done_.wait_for(lock, timeout,
                          [&] { return Terminal(jobs_.at(job_id).state); })) {
    return std::nullopt;
  }
  return jobs_.at(job_id);
}

void AccService::Drain() {
  std::unique_lock<std::mutex> lock(jobs_mutex_);
  job_done_.wait(lock, [&] {
    for (const auto& [id, record] : jobs_) {
      if (!Terminal(record.state)) return false;
    }
    return true;
  });
}

void AccService::Stop() {
  if (stopped_.exchange(true)) return;
  queue_.Stop();
  for (std::thread& worker : workers_) worker.join();
  workers_.clear();
  {
    std::lock_guard<std::mutex> lock(running_mutex_);
    watchdog_stop_ = true;
  }
  watchdog_wake_.notify_all();
  if (watchdog_.joinable()) watchdog_.join();
}

void AccService::WatchdogLoop() {
  std::unique_lock<std::mutex> lock(running_mutex_);
  const auto poll = std::chrono::microseconds(
      static_cast<std::int64_t>(std::max(1.0, config_.watchdog_poll_ms) *
                                1000));
  while (!watchdog_stop_) {
    watchdog_wake_.wait_for(lock, poll);
    const auto now = std::chrono::steady_clock::now();
    for (auto& [id, running] : running_) {
      if (running->has_deadline && now >= running->deadline &&
          !running->cancel.exchange(true)) {
        ServiceMetrics::Get().watchdog_cancels.Add();
      }
    }
  }
}

void AccService::SyncDeadDevices() {
  const sim::FaultInjector& faults = config_.platform->faults();
  if (!faults.armed()) return;
  for (const int d : faults.dead_devices()) arena_.MarkDead(d);
}

void AccService::WorkerLoop() {
  while (true) {
    std::vector<QueuedJob> batch = queue_.PopBatch(config_.max_batch);
    if (batch.empty()) return;  // stopped and drained
    ProcessBatch(std::move(batch));
  }
}

void AccService::ProcessBatch(std::vector<QueuedJob> batch) {
  // One cache probe — and at most one compile — for the whole batch; every
  // job in it has the same program key by construction (queue.h).
  std::shared_ptr<const runtime::AccProgram> program;
  bool first_was_hit = false;
  std::string compile_error;
  try {
    const JobRequest& lead = batch.front().request;
    program = cache_.GetOrCompile(lead.name, lead.source, lead.compile_options,
                                  &first_was_hit);
  } catch (const std::exception& e) {
    compile_error = e.what();
  }

  for (std::size_t i = 0; i < batch.size(); ++i) {
    if (program == nullptr) {
      JobResult result;
      result.job_id = batch[i].id;
      result.program_key = batch[i].program_key;
      result.state = JobState::kFailed;
      result.error = "compile failed: " + compile_error;
      result.error_kind = "compile";
      if (batch[i].request.on_finish) batch[i].request.on_finish(nullptr);
      Finish(std::move(result));
      continue;
    }
    if (batch[i].ExpiredBy(std::chrono::steady_clock::now())) {
      // The deadline covers queue wait too: an expired job fails without
      // burning a device lease.
      JobResult result;
      result.job_id = batch[i].id;
      result.program_key = batch[i].program_key;
      result.state = JobState::kFailed;
      result.error = "deadline expired while queued";
      result.error_kind = "timeout";
      if (batch[i].request.on_finish) batch[i].request.on_finish(nullptr);
      Finish(std::move(result));
      continue;
    }
    // Batch-mates after the first never trigger a compile, so they count
    // as cache hits regardless of how the leader fared.
    RunJob(batch[i], program, i == 0 ? first_was_hit : true);
  }
}

void AccService::RunJob(
    QueuedJob& job, const std::shared_ptr<const runtime::AccProgram>& program,
    bool cache_hit) {
  {
    std::lock_guard<std::mutex> lock(jobs_mutex_);
    jobs_.at(job.id).state = JobState::kRunning;
  }

  JobResult result;
  result.job_id = job.id;
  result.program_key = job.program_key;
  result.cache_hit = cache_hit;

  auto running = std::make_shared<RunningJob>();
  running->has_deadline = job.has_deadline;
  running->deadline = job.deadline;
  {
    std::lock_guard<std::mutex> lock(running_mutex_);
    running_[job.id] = running;
  }

  for (int attempt = 0;; ++attempt) {
    try {
      RunAttempt(job, program, result, *running);
      result.state = JobState::kDone;
      result.error.clear();
      result.error_kind.clear();
      break;
    } catch (const std::exception& e) {
      // The attempt's lease is already released (RAII) and any devices the
      // injector killed are revoked before the next lease is taken.
      SyncDeadDevices();
      result.error_kind = ClassifyError(e);
      const bool retryable =
          dynamic_cast<const FaultError*>(&e) != nullptr &&
          !running->cancel.load(std::memory_order_relaxed);
      if (retryable && attempt < config_.job_retries) {
        // Transiently-faulting devices get a spell of soft quarantine so
        // the re-lease prefers others when the arena has spares.
        if (result.error_kind == "fault") {
          for (const int d : result.devices) arena_.MarkSuspect(d);
        }
        ServiceMetrics::Get().job_retries.Add();
        ++result.retries;
        continue;
      }
      result.state = JobState::kFailed;
      result.error = e.what();
      if (job.request.on_finish) job.request.on_finish(nullptr);
      break;
    }
  }

  {
    std::lock_guard<std::mutex> lock(running_mutex_);
    running_.erase(job.id);
  }
  Finish(std::move(result));
}

void AccService::RunAttempt(
    QueuedJob& job, const std::shared_ptr<const runtime::AccProgram>& program,
    JobResult& result, RunningJob& running) {
  // Degraded mode: the lease shrinks to what is still healthy rather than
  // waiting forever on devices that cannot come back.
  const int gpus = std::min(job.request.gpus, arena_.healthy_count());
  if (gpus < 1) {
    throw DeviceLostError(-1, "no healthy devices left in the arena");
  }

  // RAII lease: every exit path below — including thrown faults, timeouts
  // and bind/run exceptions — releases the devices via ~Lease.
  DeviceArena::Lease lease;
  if (job.has_deadline) {
    const auto now = std::chrono::steady_clock::now();
    if (now >= job.deadline) {
      throw JobTimeoutError("deadline expired before a device lease");
    }
    lease = arena_.Acquire(
        gpus, std::chrono::duration_cast<std::chrono::milliseconds>(
                  job.deadline - now));
    if (!lease.valid()) {
      throw JobTimeoutError("deadline expired waiting for a device lease");
    }
  } else {
    lease = arena_.Acquire(gpus);
  }
  result.devices = lease.devices();

  runtime::RunConfig run_config;
  run_config.platform = config_.platform;
  run_config.num_gpus = gpus;
  run_config.devices = lease.devices();
  run_config.shared_platform = true;
  run_config.options = job.request.exec_options;
  run_config.options.job_id = job.id;
  run_config.options.cancel = &running.cancel;

  trace::JobScope job_scope(job.id);
  runtime::ProgramRunner runner(*program, run_config);
  if (job.request.bind) job.request.bind(runner);

  {
    // The shared SimClock admits one execution at a time (service.h);
    // billing exactness comes from the per-device counters, not from
    // this lock.
    std::lock_guard<std::mutex> run_lock(run_mutex_);
    result.report = runner.Run(job.request.function);
  }

  const sim::PlatformCounters& c = result.report.counters;
  ServiceMetrics::Get().billed_bytes.Add(c.h2d_bytes + c.d2h_bytes +
                                         c.p2p_bytes);
  ServiceMetrics::Get().billed_transfers.Add(
      c.h2d_transfers + c.d2h_transfers + c.p2p_transfers);
  ServiceMetrics::Get().billed_sim_seconds.Observe(
      result.report.total_seconds);

  if (run_config.options.trace && !config_.trace_dir.empty()) {
    const std::string path =
        config_.trace_dir + "/job_" + std::to_string(job.id) + ".json";
    if (trace::Tracer::Global().WriteChromeTraceFile(path, job.id)) {
      result.trace_path = path;
    }
  }

  SyncDeadDevices();
  if (job.request.on_finish) job.request.on_finish(&runner);
}

void AccService::Finish(JobResult result) {
  if (result.state == JobState::kFailed) {
    ServiceMetrics::Get().failed.Add();
  } else {
    ServiceMetrics::Get().completed.Add();
  }
  {
    std::lock_guard<std::mutex> lock(jobs_mutex_);
    jobs_[result.job_id] = std::move(result);
  }
  job_done_.notify_all();
}

}  // namespace accmg::service
