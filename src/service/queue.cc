#include "service/queue.h"

#include "common/metrics.h"

namespace accmg::service {

namespace {

struct QueueMetrics {
  metrics::Gauge& depth;
  metrics::Counter& rejects;
  metrics::Counter& batched;

  static QueueMetrics& Get() {
    static QueueMetrics m{
        metrics::Registry::Global().gauge("service.queue.depth"),
        metrics::Registry::Global().counter("service.admission.rejects"),
        metrics::Registry::Global().counter("service.queue.batched_jobs"),
    };
    return m;
  }
};

}  // namespace

JobQueue::JobQueue(std::size_t capacity) : capacity_(capacity) {}

bool JobQueue::Push(QueuedJob job) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopped_) return false;
    if (depth_ >= capacity_) {
      rejects_.fetch_add(1, std::memory_order_relaxed);
      QueueMetrics::Get().rejects.Add();
      return false;
    }
    TenantQueue* queue = nullptr;
    for (TenantQueue& t : tenants_) {
      if (t.tenant == job.request.tenant) {
        queue = &t;
        break;
      }
    }
    if (queue == nullptr) {
      // Tenant entries persist once created (the ring stays small and the
      // round-robin cursor never has to survive index shifts).
      tenants_.push_back(TenantQueue{job.request.tenant, {}});
      queue = &tenants_.back();
    }
    queue->jobs.push_back(std::move(job));
    ++depth_;
    QueueMetrics::Get().depth.Set(static_cast<double>(depth_));
  }
  ready_.notify_one();
  return true;
}

std::vector<QueuedJob> JobQueue::PopBatch(std::size_t max_batch) {
  std::unique_lock<std::mutex> lock(mutex_);
  ready_.wait(lock, [&] { return depth_ > 0 || stopped_; });
  if (depth_ == 0) return {};  // stopped and drained
  if (max_batch == 0) max_batch = 1;

  // Fair pick: the next non-empty tenant after the round-robin cursor.
  const std::size_t n = tenants_.size();
  std::size_t idx = rr_cursor_ % n;
  while (tenants_[idx].jobs.empty()) idx = (idx + 1) % n;
  rr_cursor_ = (idx + 1) % n;

  std::vector<QueuedJob> batch;
  batch.push_back(std::move(tenants_[idx].jobs.front()));
  tenants_[idx].jobs.pop_front();
  --depth_;

  // Same-program pulls: one compile serves the whole batch. Copy the key —
  // push_back below may reallocate `batch` out from under a reference.
  const std::string key = batch.front().program_key;
  for (std::size_t t = 0; t < n && batch.size() < max_batch; ++t) {
    std::deque<QueuedJob>& jobs = tenants_[(idx + t) % n].jobs;
    for (auto it = jobs.begin(); it != jobs.end() && batch.size() < max_batch;) {
      if (it->program_key == key) {
        batch.push_back(std::move(*it));
        it = jobs.erase(it);
        --depth_;
        QueueMetrics::Get().batched.Add();
      } else {
        ++it;
      }
    }
  }
  QueueMetrics::Get().depth.Set(static_cast<double>(depth_));
  return batch;
}

void JobQueue::Stop() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopped_ = true;
  }
  ready_.notify_all();
}

std::size_t JobQueue::depth() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return depth_;
}

}  // namespace accmg::service
