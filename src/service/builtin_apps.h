// Adapters that turn the builtin SHOC apps (md, kmeans, bfs, spmv) into
// service JobRequests. Used by the serving front-end (tools/accmgc_serve.cc),
// the saturation benchmark and the CI serve-smoke — one place that knows how
// each app binds its host arrays.
//
// Each request's closures own the app's input and output storage
// (shared_ptr state), so the job is self-contained: submit it and forget
// it; optional result validation against the app's native single-thread
// reference runs in on_finish, and its verdict lands in the AppJobOutcome
// the caller kept.
#pragma once

#include <memory>
#include <string>

#include "runtime/options.h"
#include "service/job.h"
#include "translator/offload.h"

namespace accmg::service {

struct AppJobOptions {
  std::string app;  ///< "md" | "kmeans" | "bfs" | "spmv"
  std::string tenant = "default";
  int gpus = 1;

  /// Diff the job's outputs against the app's native reference in
  /// on_finish (float outputs compared with a relative tolerance, integer
  /// outputs exactly; kmeans centroids use the looser 2e-3 of
  /// tools/validate_smoke.cc since chunked reductions reorder float sums).
  bool validate_result = false;

  runtime::ExecOptions exec;
  translator::CompileOptions compile;

  /// When non-empty, appended to the source as a trailing comment. The
  /// program is semantically unchanged but its cache key differs — how the
  /// benchmark forces cold-cache compiles per job.
  std::string source_salt;

  /// Input size multiplier over the smoke defaults (>= 1).
  int scale = 1;
};

/// Validation verdict, filled by on_finish when validate_result was set.
struct AppJobOutcome {
  bool finished = false;
  bool checked = false;
  bool ok = false;
  std::string detail;
};

bool IsBuiltinApp(const std::string& name);

/// Builds a ready-to-submit request. Throws on unknown app names
/// (check IsBuiltinApp first when the name comes from the wire).
JobRequest MakeAppJob(const AppJobOptions& options,
                      std::shared_ptr<AppJobOutcome> outcome = nullptr);

}  // namespace accmg::service
