#include "service/arena.h"

#include <algorithm>
#include <chrono>

#include "common/error.h"
#include "common/metrics.h"

namespace accmg::service {

namespace {

struct ArenaMetrics {
  metrics::Counter& leases;
  metrics::Histogram& wait_seconds;
  metrics::Gauge& devices_busy;
  metrics::Gauge& dead_devices;
  metrics::Gauge& quarantined;
  metrics::Counter& lease_timeouts;

  static ArenaMetrics& Get() {
    static ArenaMetrics m{
        metrics::Registry::Global().counter("service.arena.leases"),
        metrics::Registry::Global().histogram("service.arena.wait_seconds"),
        metrics::Registry::Global().gauge("service.arena.devices_busy"),
        metrics::Registry::Global().gauge("service.arena.dead_devices"),
        metrics::Registry::Global().gauge("service.arena.quarantined"),
        metrics::Registry::Global().counter("service.arena.lease_timeouts"),
    };
    return m;
  }
};

}  // namespace

DeviceArena::DeviceArena(int num_devices) {
  ACCMG_REQUIRE(num_devices >= 1, "arena needs at least one device");
  busy_.assign(static_cast<std::size_t>(num_devices), false);
  dead_.assign(static_cast<std::size_t>(num_devices), false);
  quarantine_.assign(static_cast<std::size_t>(num_devices), 0);
}

DeviceArena::Lease::Lease(Lease&& other) noexcept
    : arena_(other.arena_), devices_(std::move(other.devices_)) {
  other.arena_ = nullptr;
  other.devices_.clear();
}

DeviceArena::Lease& DeviceArena::Lease::operator=(Lease&& other) noexcept {
  if (this != &other) {
    Release();
    arena_ = other.arena_;
    devices_ = std::move(other.devices_);
    other.arena_ = nullptr;
    other.devices_.clear();
  }
  return *this;
}

void DeviceArena::Lease::Release() {
  if (arena_ == nullptr) return;
  arena_->Release(devices_);
  arena_ = nullptr;
  devices_.clear();
}

DeviceArena::Lease DeviceArena::Acquire(int count) {
  return AcquireInternal(count, /*bounded=*/false, {});
}

DeviceArena::Lease DeviceArena::Acquire(int count,
                                        std::chrono::milliseconds timeout) {
  return AcquireInternal(count, /*bounded=*/true,
                         std::chrono::steady_clock::now() + timeout);
}

DeviceArena::Lease DeviceArena::AcquireInternal(
    int count, bool bounded, std::chrono::steady_clock::time_point deadline) {
  ACCMG_REQUIRE(count >= 1 && count <= num_devices(),
                "lease size out of range for the arena");
  const auto wait_start = std::chrono::steady_clock::now();
  std::unique_lock<std::mutex> lock(mutex_);
  const std::uint64_t ticket = next_ticket_++;
  for (;;) {
    if (count > HealthyLocked()) {
      // The healthy set only shrinks — this request can never be granted.
      AbandonLocked(ticket);
      turn_or_free_.notify_all();
      throw DeviceError("lease of " + std::to_string(count) +
                        " device(s) exceeds the " +
                        std::to_string(HealthyLocked()) +
                        " still-healthy device(s)");
    }
    if (serving_ == ticket && SelectableLocked() >= count) break;
    if (bounded) {
      if (turn_or_free_.wait_until(lock, deadline) ==
          std::cv_status::timeout) {
        if (serving_ == ticket && SelectableLocked() >= count) break;
        AbandonLocked(ticket);
        ArenaMetrics::Get().lease_timeouts.Add();
        turn_or_free_.notify_all();
        return Lease{};
      }
    } else {
      turn_or_free_.wait(lock);
    }
  }

  // Grant pass 1: free, alive and trusted; pass 2 tops up from quarantined
  // devices so probation can never leave a satisfiable request waiting.
  std::vector<int> devices;
  devices.reserve(static_cast<std::size_t>(count));
  for (const bool allow_quarantined : {false, true}) {
    for (std::size_t d = 0;
         d < busy_.size() && devices.size() < static_cast<std::size_t>(count);
         ++d) {
      if (busy_[d] || dead_[d]) continue;
      if (!allow_quarantined && quarantine_[d] > 0) continue;
      if (allow_quarantined && quarantine_[d] > 0) --quarantine_[d];
      busy_[d] = true;
      devices.push_back(static_cast<int>(d));
    }
  }
  std::sort(devices.begin(), devices.end());
  ++serving_;
  AdvanceServingLocked();
  ++leases_granted_;
  ArenaMetrics::Get().leases.Add();
  ArenaMetrics::Get().devices_busy.Set(static_cast<double>(
      std::count(busy_.begin(), busy_.end(), true)));
  ArenaMetrics::Get().quarantined.Set(static_cast<double>(std::count_if(
      quarantine_.begin(), quarantine_.end(), [](int q) { return q > 0; })));
  lock.unlock();
  // The next ticket may already be satisfiable with the devices we left.
  turn_or_free_.notify_all();

  ArenaMetrics::Get().wait_seconds.Observe(
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    wait_start)
          .count());
  return Lease(this, std::move(devices));
}

void DeviceArena::MarkDead(int device) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (device < 0 || device >= num_devices()) return;
    const auto d = static_cast<std::size_t>(device);
    if (dead_[d]) return;
    dead_[d] = true;
    quarantine_[d] = 0;
    ArenaMetrics::Get().dead_devices.Set(static_cast<double>(
        std::count(dead_.begin(), dead_.end(), true)));
  }
  // Waiters whose requests exceed the new healthy count must fail fast.
  turn_or_free_.notify_all();
}

void DeviceArena::MarkSuspect(int device, int probation) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (device < 0 || device >= num_devices()) return;
  const auto d = static_cast<std::size_t>(device);
  if (dead_[d]) return;
  quarantine_[d] = std::max(quarantine_[d], probation);
  ArenaMetrics::Get().quarantined.Set(static_cast<double>(std::count_if(
      quarantine_.begin(), quarantine_.end(), [](int q) { return q > 0; })));
}

int DeviceArena::HealthyLocked() const {
  return static_cast<int>(std::count(dead_.begin(), dead_.end(), false));
}

int DeviceArena::SelectableLocked() const {
  int n = 0;
  for (std::size_t d = 0; d < busy_.size(); ++d) {
    if (!busy_[d] && !dead_[d]) ++n;
  }
  return n;
}

void DeviceArena::AbandonLocked(std::uint64_t ticket) {
  if (serving_ == ticket) {
    ++serving_;
    AdvanceServingLocked();
  } else {
    abandoned_.insert(ticket);
  }
}

void DeviceArena::AdvanceServingLocked() {
  while (abandoned_.erase(serving_) > 0) ++serving_;
}

void DeviceArena::Release(const std::vector<int>& devices) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (const int d : devices) busy_[static_cast<std::size_t>(d)] = false;
    ArenaMetrics::Get().devices_busy.Set(static_cast<double>(
        std::count(busy_.begin(), busy_.end(), true)));
  }
  turn_or_free_.notify_all();
}

int DeviceArena::free_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return static_cast<int>(std::count(busy_.begin(), busy_.end(), false));
}

int DeviceArena::healthy_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return HealthyLocked();
}

int DeviceArena::busy_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return static_cast<int>(std::count(busy_.begin(), busy_.end(), true));
}

bool DeviceArena::alive(int device) const {
  std::lock_guard<std::mutex> lock(mutex_);
  if (device < 0 || device >= num_devices()) return false;
  return !dead_[static_cast<std::size_t>(device)];
}

}  // namespace accmg::service
