#include "service/arena.h"

#include <algorithm>
#include <chrono>

#include "common/error.h"
#include "common/metrics.h"

namespace accmg::service {

namespace {

struct ArenaMetrics {
  metrics::Counter& leases;
  metrics::Histogram& wait_seconds;
  metrics::Gauge& devices_busy;

  static ArenaMetrics& Get() {
    static ArenaMetrics m{
        metrics::Registry::Global().counter("service.arena.leases"),
        metrics::Registry::Global().histogram("service.arena.wait_seconds"),
        metrics::Registry::Global().gauge("service.arena.devices_busy"),
    };
    return m;
  }
};

}  // namespace

DeviceArena::DeviceArena(int num_devices) {
  ACCMG_REQUIRE(num_devices >= 1, "arena needs at least one device");
  busy_.assign(static_cast<std::size_t>(num_devices), false);
}

DeviceArena::Lease::Lease(Lease&& other) noexcept
    : arena_(other.arena_), devices_(std::move(other.devices_)) {
  other.arena_ = nullptr;
  other.devices_.clear();
}

DeviceArena::Lease& DeviceArena::Lease::operator=(Lease&& other) noexcept {
  if (this != &other) {
    Release();
    arena_ = other.arena_;
    devices_ = std::move(other.devices_);
    other.arena_ = nullptr;
    other.devices_.clear();
  }
  return *this;
}

void DeviceArena::Lease::Release() {
  if (arena_ == nullptr) return;
  arena_->Release(devices_);
  arena_ = nullptr;
  devices_.clear();
}

DeviceArena::Lease DeviceArena::Acquire(int count) {
  ACCMG_REQUIRE(count >= 1 && count <= num_devices(),
                "lease size out of range for the arena");
  const auto wait_start = std::chrono::steady_clock::now();
  std::unique_lock<std::mutex> lock(mutex_);
  const std::uint64_t ticket = next_ticket_++;
  turn_or_free_.wait(lock, [&] {
    return serving_ == ticket &&
           static_cast<int>(std::count(busy_.begin(), busy_.end(), false)) >=
               count;
  });

  std::vector<int> devices;
  devices.reserve(static_cast<std::size_t>(count));
  for (std::size_t d = 0; d < busy_.size() && devices.size() <
                                                  static_cast<std::size_t>(count);
       ++d) {
    if (!busy_[d]) {
      busy_[d] = true;
      devices.push_back(static_cast<int>(d));
    }
  }
  ++serving_;
  ++leases_granted_;
  ArenaMetrics::Get().leases.Add();
  ArenaMetrics::Get().devices_busy.Set(static_cast<double>(
      std::count(busy_.begin(), busy_.end(), true)));
  lock.unlock();
  // The next ticket may already be satisfiable with the devices we left.
  turn_or_free_.notify_all();

  ArenaMetrics::Get().wait_seconds.Observe(
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    wait_start)
          .count());
  return Lease(this, std::move(devices));
}

void DeviceArena::Release(const std::vector<int>& devices) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (const int d : devices) busy_[static_cast<std::size_t>(d)] = false;
    ArenaMetrics::Get().devices_busy.Set(static_cast<double>(
        std::count(busy_.begin(), busy_.end(), true)));
  }
  turn_or_free_.notify_all();
}

int DeviceArena::free_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return static_cast<int>(std::count(busy_.begin(), busy_.end(), false));
}

}  // namespace accmg::service
