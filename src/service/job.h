// Job model of the resident service: what a client submits, how the service
// tracks it, and what comes back.
//
// Apps bind host arrays programmatically (runtime/program.h), so a request
// carries a `bind` callback instead of serialized operands: the service
// invokes it with the job's ProgramRunner right before Run(). The bound
// host storage must stay alive until the job completes — closures typically
// own it (see tools/accmgc_serve.cc).
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <string>

#include "runtime/options.h"
#include "runtime/program.h"
#include "translator/offload.h"

namespace accmg::service {

enum class JobState {
  kQueued,   ///< admitted, waiting for a worker
  kRunning,  ///< compiling / leasing devices / executing
  kDone,     ///< finished; result available
  kFailed,   ///< compile or runtime error; result carries the message
};

const char* JobStateName(JobState state);

struct JobRequest {
  /// Fairness domain for queue scheduling (per-tenant round-robin).
  std::string tenant = "default";

  std::string name;      ///< program display name (not part of the cache key)
  std::string source;    ///< annotated OpenACC source text
  std::string function;  ///< function to execute

  int gpus = 1;  ///< device-lease size requested from the arena

  /// Wall-clock deadline in milliseconds, measured from submission
  /// (0 = the service default, negative = none). Covers queue wait, lease
  /// wait and execution: an expired queued job fails without running, and
  /// the watchdog cancels an expired running job (JobTimeoutError,
  /// error_kind "timeout").
  double deadline_ms = 0;

  translator::CompileOptions compile_options;
  runtime::ExecOptions exec_options;

  /// Binds host arrays/scalars to the runner. Called on a worker thread
  /// after compile and device-lease acquisition, before Run(). Called
  /// once per execution *attempt* — a job re-run after a fault binds
  /// again — so it must be idempotent: (re)establish the attempt's
  /// initial host state rather than assuming pristine buffers (a failed
  /// attempt may have left partial writes behind).
  std::function<void(runtime::ProgramRunner&)> bind;

  /// Optional: runs on the worker thread right after the job reaches
  /// kDone/kFailed, before waiters wake (e.g. to read ScalarAfterRun or
  /// copy outputs while the runner still exists).
  std::function<void(runtime::ProgramRunner*)> on_finish;
};

struct JobResult {
  int job_id = -1;
  JobState state = JobState::kQueued;
  std::string program_key;  ///< hex SHA-256 cache key of (source, options)
  bool cache_hit = false;   ///< program came from the cache (no compile)
  std::vector<int> devices;  ///< the lease the job ran on
  runtime::RunReport report;
  std::string trace_path;  ///< per-job Chrome trace, when exported
  std::string error;       ///< non-empty iff state == kFailed
  /// Failure class when state == kFailed: "fault" (injected transfer or
  /// kernel fault that exhausted the retry budget), "device_lost",
  /// "timeout" (deadline or watchdog), "compile", or "internal".
  std::string error_kind;
  int retries = 0;  ///< service-level re-runs this job consumed
};

/// A request admitted into the queue, with its service-assigned identity
/// and precomputed cache key (batching groups jobs by this key).
struct QueuedJob {
  int id = -1;
  std::string program_key;
  JobRequest request;
  /// Absolute wall-clock deadline resolved at submission (see
  /// JobRequest::deadline_ms); meaningful only when has_deadline.
  bool has_deadline = false;
  std::chrono::steady_clock::time_point deadline{};

  bool ExpiredBy(std::chrono::steady_clock::time_point now) const {
    return has_deadline && now >= deadline;
  }
};

}  // namespace accmg::service
