#include "service/cache.h"

#include <algorithm>
#include <functional>

#include "common/metrics.h"
#include "common/sha256.h"

namespace accmg::service {

namespace {

struct CacheMetrics {
  metrics::Counter& hits;
  metrics::Counter& misses;
  metrics::Counter& evictions;
  metrics::Counter& compiles;
  metrics::Gauge& size;

  static CacheMetrics& Get() {
    static CacheMetrics m{
        metrics::Registry::Global().counter("service.cache.hits"),
        metrics::Registry::Global().counter("service.cache.misses"),
        metrics::Registry::Global().counter("service.cache.evictions"),
        metrics::Registry::Global().counter("service.cache.compiles"),
        metrics::Registry::Global().gauge("service.cache.size"),
    };
    return m;
  }
};

}  // namespace

ProgramCache::ProgramCache(std::size_t capacity, std::size_t shards)
    : capacity_(std::max<std::size_t>(1, capacity)),
      shard_capacity_(std::max<std::size_t>(
          1, (capacity_ + std::max<std::size_t>(1, shards) - 1) /
                 std::max<std::size_t>(1, shards))) {
  const std::size_t n = std::min(std::max<std::size_t>(1, shards), capacity_);
  shards_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

std::string ProgramCache::KeyFor(const std::string& source,
                                 const translator::CompileOptions& options) {
  // Versioned canonical serialization: bump the tag when CompileOptions
  // grows a field so stale processes never alias new-option programs.
  Sha256 hasher;
  hasher.Update("accmg-program-key-v2");
  hasher.Update("\0", 1);
  hasher.Update(options.check_directives ? "check_directives=1"
                                         : "check_directives=0");
  hasher.Update("\0", 1);
  hasher.Update("opt_level=" + std::to_string(options.opt_level));
  hasher.Update("\0", 1);
  hasher.Update(source);
  return hasher.HexDigest();
}

ProgramCache::Shard& ProgramCache::ShardFor(const std::string& key) {
  return *shards_[std::hash<std::string>{}(key) % shards_.size()];
}

std::shared_ptr<const runtime::AccProgram> ProgramCache::LookupIn(
    Shard& shard, const std::string& key) {
  std::lock_guard<std::mutex> lock(shard.mutex);
  auto it = shard.index.find(key);
  if (it == shard.index.end()) return nullptr;
  // Refresh recency: splice the entry to the front without invalidating
  // the iterator stored in the index.
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  return it->second->program;
}

void ProgramCache::Insert(Shard& shard, const std::string& key,
                          std::shared_ptr<const runtime::AccProgram> program) {
  std::lock_guard<std::mutex> lock(shard.mutex);
  if (shard.index.find(key) != shard.index.end()) {
    // A concurrent compile of the same key won the race; keep its entry.
    return;
  }
  shard.lru.push_front(Entry{key, std::move(program)});
  shard.index[key] = shard.lru.begin();
  while (shard.lru.size() > shard_capacity_) {
    shard.index.erase(shard.lru.back().key);
    shard.lru.pop_back();
    evictions_.fetch_add(1, std::memory_order_relaxed);
    CacheMetrics::Get().evictions.Add();
  }
}

std::shared_ptr<const runtime::AccProgram> ProgramCache::GetOrCompile(
    const std::string& name, const std::string& source,
    const translator::CompileOptions& options, bool* was_hit) {
  const std::string key = KeyFor(source, options);
  Shard& shard = ShardFor(key);
  if (auto program = LookupIn(shard, key)) {
    hits_.fetch_add(1, std::memory_order_relaxed);
    CacheMetrics::Get().hits.Add();
    if (was_hit != nullptr) *was_hit = true;
    return program;
  }
  misses_.fetch_add(1, std::memory_order_relaxed);
  CacheMetrics::Get().misses.Add();
  if (was_hit != nullptr) *was_hit = false;

  // Compile outside the shard lock: translation can be slow and must not
  // stall unrelated keys. Two racing submitters of a brand-new key may both
  // compile; Insert keeps the first and the loser's copy dies with its
  // shared_ptr — correctness is unaffected, only effort is duplicated.
  compiles_.fetch_add(1, std::memory_order_relaxed);
  CacheMetrics::Get().compiles.Add();
  auto program = std::make_shared<const runtime::AccProgram>(
      runtime::AccProgram::FromSource(name, source, options));
  Insert(shard, key, program);
  UpdateSizeGauge();
  return program;
}

std::shared_ptr<const runtime::AccProgram> ProgramCache::Lookup(
    const std::string& key) {
  Shard& shard = ShardFor(key);
  auto program = LookupIn(shard, key);
  if (program != nullptr) {
    hits_.fetch_add(1, std::memory_order_relaxed);
    CacheMetrics::Get().hits.Add();
  } else {
    misses_.fetch_add(1, std::memory_order_relaxed);
    CacheMetrics::Get().misses.Add();
  }
  return program;
}

std::size_t ProgramCache::size() const {
  std::size_t total = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    total += shard->lru.size();
  }
  return total;
}

void ProgramCache::UpdateSizeGauge() const {
  CacheMetrics::Get().size.Set(static_cast<double>(size()));
}

}  // namespace accmg::service
