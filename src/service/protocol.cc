#include "service/protocol.h"

#include <cstdio>
#include <sstream>
#include <vector>

#include "common/string_util.h"
#include "service/service.h"

namespace accmg::service {

namespace {

std::vector<std::string> Tokenize(std::string_view line) {
  std::vector<std::string> tokens;
  for (const std::string& field : Split(line, ' ')) {
    if (!field.empty()) tokens.push_back(field);
  }
  return tokens;
}

bool ParseJobId(const std::vector<std::string>& tokens, Request& request) {
  if (tokens.size() != 2) return false;
  try {
    std::size_t used = 0;
    request.job_id = std::stoi(tokens[1], &used);
    return used == tokens[1].size() && request.job_id >= 0;
  } catch (const std::exception&) {
    return false;
  }
}

bool ParseTimeoutMs(const std::string& token, Request& request) {
  try {
    std::size_t used = 0;
    request.timeout_ms = std::stod(token, &used);
    return used == token.size() && request.timeout_ms >= 0;
  } catch (const std::exception&) {
    return false;
  }
}

}  // namespace

Request ParseRequest(const std::string& line) {
  Request request;
  const std::string_view trimmed = Trim(line);
  if (trimmed.empty() || trimmed.front() == '#') {
    return request;  // kInvalid with empty error: skip silently
  }
  const std::vector<std::string> tokens = Tokenize(trimmed);
  const std::string& verb = tokens.front();

  if (verb == "submit") {
    request.kind = Request::Kind::kSubmit;
    for (std::size_t i = 1; i < tokens.size(); ++i) {
      const std::size_t eq = tokens[i].find('=');
      if (eq == std::string::npos || eq == 0) {
        request.kind = Request::Kind::kInvalid;
        request.error = "submit parameters must be key=value: " + tokens[i];
        return request;
      }
      request.params[tokens[i].substr(0, eq)] = tokens[i].substr(eq + 1);
    }
    return request;
  }
  if (verb == "status" || verb == "result") {
    request.kind =
        verb == "status" ? Request::Kind::kStatus : Request::Kind::kResult;
    // `result <id> [timeout-ms]` takes an optional bounded wait.
    std::vector<std::string> id_tokens = tokens;
    if (verb == "result" && tokens.size() == 3) {
      id_tokens.pop_back();
      if (!ParseTimeoutMs(tokens[2], request)) {
        request.kind = Request::Kind::kInvalid;
        request.error = "usage: result <job-id> [timeout-ms]";
        return request;
      }
    }
    if (!ParseJobId(id_tokens, request)) {
      request.kind = Request::Kind::kInvalid;
      request.error = verb == "result" ? "usage: result <job-id> [timeout-ms]"
                                       : "usage: status <job-id>";
    }
    return request;
  }
  if (verb == "metrics" && tokens.size() == 1) {
    request.kind = Request::Kind::kMetrics;
    return request;
  }
  if (verb == "quit" && tokens.size() == 1) {
    request.kind = Request::Kind::kQuit;
    return request;
  }
  request.error = "unknown request: " + std::string(trimmed);
  return request;
}

std::string FormatResultLine(const JobResult& result) {
  std::ostringstream os;
  os << "result " << result.job_id << ' ' << JobStateName(result.state);
  if (result.state == JobState::kFailed) {
    if (!result.error_kind.empty()) os << " kind=" << result.error_kind;
    if (result.retries > 0) os << " retries=" << result.retries;
    // The error text goes last and unescaped; it is the rest of the line.
    os << " error=" << result.error;
    return os.str();
  }
  const sim::PlatformCounters& c = result.report.counters;
  char sim_s[32];
  std::snprintf(sim_s, sizeof sim_s, "%.6f", result.report.total_seconds);
  os << " key=" << result.program_key.substr(0, 12)
     << " cache=" << (result.cache_hit ? "hit" : "miss")
     << " gpus=" << result.devices.size() << " sim_s=" << sim_s
     << " bytes=" << (c.h2d_bytes + c.d2h_bytes + c.p2p_bytes)
     << " transfers=" << (c.h2d_transfers + c.d2h_transfers + c.p2p_transfers)
     << " kernels=" << c.kernel_launches;
  if (result.retries > 0) os << " retries=" << result.retries;
  if (!result.trace_path.empty()) os << " trace=" << result.trace_path;
  return os.str();
}

}  // namespace accmg::service
