// Line-delimited request protocol of the resident service front-end
// (tools/accmgc_serve.cc). One request per line, one reply line per
// request (plus a multi-line block for `metrics`):
//
//   submit app=md gpus=2 [tenant=T] [validate=1] [trace=1] [async=1]
//          [weighted=1] [no-check=1] [salt=TEXT]
//     -> "job <id>"  |  "rejected <reason>"
//   status <id>
//     -> "status <id> queued|running|done|failed"
//   result <id> [timeout-ms]  (blocks until the job finishes; with the
//                              optional bound, at most timeout-ms)
//     -> "result <id> <done|failed> key=<prefix> cache=<hit|miss>
//         gpus=<n> sim_s=<t> bytes=<b> transfers=<n> kernels=<n> ..."
//      | "result <id> timeout waited_ms=<t>"   (job still running; the
//         bounded wait elapsed — ask again later)
//     failed results carry "kind=<fault|device_lost|timeout|compile|
//     internal>" before the trailing error text
//   metrics
//     -> the metrics registry as text, terminated by "end"
//   quit
//     -> "bye"
//
// The parser only understands the framing; `submit` parameters are opaque
// key=value pairs interpreted by the serving tool (which knows the builtin
// apps). Keeping the parser app-agnostic makes it unit-testable without a
// platform. docs/SERVING.md walks through a full transcript.
#pragma once

#include <string>
#include <unordered_map>

#include "service/job.h"

namespace accmg::service {

struct Request {
  enum class Kind {
    kSubmit,
    kStatus,
    kResult,
    kMetrics,
    kQuit,
    kInvalid,
  };

  Kind kind = Kind::kInvalid;
  int job_id = -1;  ///< status/result
  /// Bounded wait for `result` in milliseconds; negative = block forever.
  double timeout_ms = -1;
  std::unordered_map<std::string, std::string> params;  ///< submit key=values
  std::string error;  ///< non-empty iff kind == kInvalid
};

/// Parses one protocol line (leading/trailing whitespace ignored; empty
/// lines and `#` comments parse as kInvalid with an empty error, which
/// callers should silently skip).
Request ParseRequest(const std::string& line);

/// The one-line `result` reply for a finished job.
std::string FormatResultLine(const JobResult& result);

}  // namespace accmg::service
