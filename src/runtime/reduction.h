// Inter-GPU array-reduction combine (paper Section IV-B4), factored out of
// the executor so differential tests and benchmarks can drive it directly.
#pragma once

#include <cstdint>
#include <vector>

#include "ir/exec.h"
#include "ir/ir.h"
#include "runtime/managed_array.h"
#include "sim/platform.h"

namespace accmg::runtime {

/// Combines the per-GPU dense partials of one reduction-to-array section
/// pairwise — tree order ((p0 op p1) op (p2 op p3)) ... — then folds the
/// pre-kernel value of `dest` in exactly once and broadcasts the result into
/// every replica of the destination.
///
/// `partials` is parallel to `devices`; each entry holds `length` raw
/// element values (KernelExec::array_red_partials layout). The section is
/// [lower, lower + length) of `dest`.
///
/// Billing is that of the serial combine chain: every non-root partial
/// travels to devices[0] (length * elem bytes each), then the combined
/// result travels devices[0] -> g for every other replica, in ascending
/// device order. The host-side combine work runs on the platform's worker
/// pool; simulated time and billed bytes are independent of the pool size.
///
/// Transfers start no earlier than `ready_at` and use `stream`'s copy
/// engine (the async pipeline routes them through the second DMA engine).
/// Returns the simulated end time of the last transfer issued.
double CombineArrayReduction(
    sim::Platform& platform, const std::vector<int>& devices,
    ManagedArray& dest, ir::RedOp op, ir::ValType type, std::int64_t lower,
    std::int64_t length,
    const std::vector<const std::vector<std::uint64_t>*>& partials,
    double ready_at = 0, sim::Stream stream = sim::Stream::kDefault);

}  // namespace accmg::runtime
