#include "runtime/validator.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstring>
#include <exception>
#include <string>

#include "common/error.h"
#include "common/metrics.h"
#include "ir/exec.h"

namespace accmg::runtime {

using translator::EvalIndexExpr;
using translator::HostEnv;
using translator::LoopOffload;
using translator::TypedValue;

namespace {

std::uint64_t LoadRaw(const std::byte* base, std::size_t elem_size,
                      std::int64_t elem_offset) {
  std::uint64_t raw = 0;
  std::memcpy(&raw, base + elem_offset * static_cast<std::int64_t>(elem_size),
              elem_size);
  return raw;
}

void StoreRaw(std::byte* base, std::size_t elem_size,
              std::int64_t elem_offset, std::uint64_t raw) {
  std::memcpy(base + elem_offset * static_cast<std::int64_t>(elem_size), &raw,
              elem_size);
}

double RawToDouble(ir::ValType type, std::uint64_t raw) {
  switch (type) {
    case ir::ValType::kF32:
      return std::bit_cast<float>(static_cast<std::uint32_t>(raw));
    case ir::ValType::kF64:
      return std::bit_cast<double>(raw);
    case ir::ValType::kI32:
      return static_cast<std::int32_t>(static_cast<std::uint32_t>(raw));
    case ir::ValType::kI64:
      return static_cast<double>(static_cast<std::int64_t>(raw));
  }
  return 0;
}

std::string RawToString(ir::ValType type, std::uint64_t raw) {
  switch (type) {
    case ir::ValType::kF32:
    case ir::ValType::kF64:
      return std::to_string(RawToDouble(type, raw));
    case ir::ValType::kI32:
      return std::to_string(
          static_cast<std::int32_t>(static_cast<std::uint32_t>(raw)));
    case ir::ValType::kI64:
      return std::to_string(static_cast<std::int64_t>(raw));
  }
  return "?";
}

/// Float equality up to `rel_tol` (used only where the merge order between
/// the multi-GPU and golden runs legitimately differs); exact otherwise.
bool RawMatches(ir::ValType type, std::uint64_t a, std::uint64_t b,
                bool approximate, double rel_tol) {
  if (a == b) return true;
  if (!approximate || !ir::IsFloat(type)) return false;
  const double da = RawToDouble(type, a);
  const double db = RawToDouble(type, b);
  if (std::isnan(da) && std::isnan(db)) return true;
  const double scale = std::max({1.0, std::abs(da), std::abs(db)});
  return std::abs(da - db) <= rel_tol * scale;
}

/// TypedValue -> raw element bits of `type` (mirrors the executor's
/// reduction write-back conversion).
std::uint64_t ToElementRaw(ir::ValType type, const TypedValue& value) {
  switch (type) {
    case ir::ValType::kI32:
      return static_cast<std::uint32_t>(
          static_cast<std::int32_t>(value.AsInt()));
    case ir::ValType::kI64:
      return static_cast<std::uint64_t>(value.AsInt());
    case ir::ValType::kF32:
      return std::bit_cast<std::uint32_t>(
          static_cast<float>(value.AsDouble()));
    case ir::ValType::kF64:
      return std::bit_cast<std::uint64_t>(value.AsDouble());
  }
  return 0;
}

/// Human-readable position of flat element `i` in `array`: plain index for
/// 1-D arrays, index plus the (row, col) coordinate for arrays whose data
/// clause declared a 2-D shape — a diverging stencil cell is much easier to
/// localize by grid coordinate than by flat offset.
std::string ElementCoord(const ManagedArray& array, std::int64_t i) {
  std::string text = std::to_string(i);
  if (array.is_2d()) {
    text += " (row " + std::to_string(i / array.cols()) + ", col " +
            std::to_string(i % array.cols()) + ")";
  }
  return text;
}

/// Asserts on destruction that the validator added no billed transfers,
/// kernel launches or simulated time — validation reads device buffers
/// behind the platform's back on purpose.
class BillingGuard {
 public:
  explicit BillingGuard(sim::Platform& platform)
      : platform_(platform),
        counters_(platform.counters()),
        sim_time_(platform.clock().breakdown().Total()) {}

  ~BillingGuard() noexcept(false) {
    // A divergence is already propagating: don't stack a second exception.
    if (std::uncaught_exceptions() > 0) return;
    const sim::PlatformCounters& now = platform_.counters();
    ACCMG_CHECK(now.kernel_launches == counters_.kernel_launches &&
                    now.h2d_transfers == counters_.h2d_transfers &&
                    now.d2h_transfers == counters_.d2h_transfers &&
                    now.p2p_transfers == counters_.p2p_transfers &&
                    now.h2d_bytes == counters_.h2d_bytes &&
                    now.d2h_bytes == counters_.d2h_bytes &&
                    now.p2p_bytes == counters_.p2p_bytes,
                "validator changed billed transfer counters");
    ACCMG_CHECK(platform_.clock().breakdown().Total() == sim_time_,
                "validator changed the simulated clock");
  }

 private:
  sim::Platform& platform_;
  sim::PlatformCounters counters_;
  double sim_time_;
};

}  // namespace

Validator::Validator(sim::Platform& platform, const ExecOptions& options,
                     std::vector<int> devices)
    : platform_(platform), options_(options), devices_(std::move(devices)) {}

void Validator::Diverge(const std::string& message) {
  ++stats_.divergences;
  static metrics::Counter& divergences_metric =
      metrics::Registry::Global().counter("validator.divergences");
  divergences_metric.Add();
  throw Error("validate: " + message);
}

void Validator::BeginOffload(const LoopOffload& offload, HostEnv& env,
                             const ArrayResolver& resolve) {
  BillingGuard guard(platform_);

  lower_ = EvalIndexExpr(*offload.lower_bound, env);
  std::int64_t upper = EvalIndexExpr(*offload.upper_bound, env);
  if (offload.upper_inclusive) ++upper;
  total_ = std::max<std::int64_t>(0, upper - lower_);

  scalar_values_.resize(offload.scalars.size());
  for (std::size_t s = 0; s < offload.scalars.size(); ++s) {
    const TypedValue value = env.GetScalar(*offload.scalars[s].decl);
    const ir::ValType t = offload.kernel.scalars[s].type;
    scalar_values_[s] = ir::EncodeScalar(t, value.AsDouble(), value.AsInt());
  }

  scalar_red_pre_.resize(offload.scalar_reds.size());
  for (std::size_t r = 0; r < offload.scalar_reds.size(); ++r) {
    scalar_red_pre_[r] =
        ToElementRaw(offload.kernel.scalar_reductions[r].type,
                     env.GetScalar(*offload.scalar_reds[r].decl));
  }

  red_lower_.resize(offload.array_reds.size());
  red_length_.resize(offload.array_reds.size());
  for (std::size_t r = 0; r < offload.array_reds.size(); ++r) {
    const auto& red = offload.array_reds[r];
    ManagedArray& dest = resolve(*red.decl);
    red_lower_[r] = red.lower != nullptr ? EvalIndexExpr(*red.lower, env) : 0;
    red_length_[r] = red.length != nullptr
                         ? EvalIndexExpr(*red.length, env)
                         : dest.count() - red_lower_[r];
  }

  // Authoritative pre-image of every touched array: host bytes overlaid
  // with the valid device truth (ManagedArray::SnapshotAuthoritative).
  // Reads go straight to the underlying buffer storage (no platform copy):
  // capturing must not perturb billing.
  arrays_.clear();
  arrays_.reserve(offload.arrays.size());
  for (const auto& config : offload.arrays) {
    ManagedArray& array = resolve(*config.decl);
    GoldenArray golden;
    golden.config = &config;
    golden.bytes.resize(array.total_bytes());
    array.SnapshotAuthoritative(golden.bytes.data());
    arrays_.push_back(std::move(golden));
  }
}

void Validator::RemoveDevice(int device) {
  devices_.erase(std::remove(devices_.begin(), devices_.end(), device),
                 devices_.end());
}

void Validator::CheckOffload(const LoopOffload& offload, HostEnv& env,
                             const ArrayResolver& resolve) {
  BillingGuard guard(platform_);
  ACCMG_CHECK(arrays_.size() == offload.arrays.size(),
              "validator check without a matching BeginOffload");

  // --- golden execution: one device, whole iteration space, full arrays ---
  ir::KernelExec exec(offload.kernel);
  exec.scalar_values = scalar_values_;
  exec.iteration_offset = lower_;
  exec.array_red_lower = red_lower_;
  exec.array_red_length = red_length_;
  for (std::size_t a = 0; a < arrays_.size(); ++a) {
    ManagedArray& array = resolve(*arrays_[a].config->decl);
    ir::ArrayBinding& binding = exec.bindings[a];
    binding.data = arrays_[a].bytes.data();
    binding.lo = 0;
    binding.hi = array.count();
    binding.write_lo = 0;
    binding.write_hi = array.count();
    binding.logical_size = array.count();
  }
  exec.ResetOutputs();
  sim::KernelStats golden_stats;
  try {
    exec.Execute(0, total_, golden_stats);
  } catch (const DeviceError& fault) {
    Diverge("kernel '" + offload.name +
            "': golden single-device execution faulted (" + fault.what() +
            "); the kernel reads outside the array bounds");
  }

  // --- scalar reductions: fold the golden partial into the pre-loop value
  // and compare with what the executor wrote back into the environment ---
  for (std::size_t r = 0; r < offload.scalar_reds.size(); ++r) {
    const auto& red = offload.scalar_reds[r];
    const auto& slot = offload.kernel.scalar_reductions[r];
    const std::uint64_t golden_value =
        ir::CombineRaw(slot.op, slot.type, scalar_red_pre_[r],
                       exec.scalar_red_results()[r]);
    const std::uint64_t actual =
        ToElementRaw(slot.type, env.GetScalar(*red.decl));
    ++stats_.elements_compared;
    if (!RawMatches(slot.type, actual, golden_value, /*approximate=*/true,
                    options_.validate_rel_tol)) {
      Diverge("kernel '" + offload.name + "': scalar reduction '" +
              red.decl->name + "' diverges: multi-GPU=" +
              RawToString(slot.type, actual) + " golden=" +
              RawToString(slot.type, golden_value));
    }
  }

  // --- array reductions: fold golden partials into the golden image. The
  // pre-kernel values are still resident there (kernels accumulate into
  // privatized partials, never into the destination bytes). ---
  for (std::size_t r = 0; r < offload.array_reds.size(); ++r) {
    const auto& slot = offload.kernel.array_reductions[r];
    ManagedArray& dest = resolve(*offload.array_reds[r].decl);
    std::byte* golden = nullptr;
    for (auto& g : arrays_) {
      if (g.config->decl == offload.array_reds[r].decl) {
        golden = g.bytes.data();
      }
    }
    ACCMG_CHECK(golden != nullptr, "reduction destination not captured");
    const std::size_t esize = dest.elem_size();
    const auto& partial = exec.array_red_partials()[r];
    for (std::int64_t j = 0; j < red_length_[r]; ++j) {
      const std::int64_t at = red_lower_[r] + j;
      StoreRaw(golden, esize, at,
               ir::CombineRaw(slot.op, slot.type,
                              LoadRaw(golden, esize, at),
                              partial[static_cast<std::size_t>(j)]));
    }
  }

  // --- diff every shard and the host image against the golden image ---
  for (std::size_t a = 0; a < arrays_.size(); ++a) {
    const GoldenArray& golden = arrays_[a];
    const auto& config = *golden.config;
    const auto& param = offload.kernel.arrays[a];
    ManagedArray& array = resolve(*config.decl);
    const std::size_t esize = array.elem_size();
    // Reduction destinations tolerate float rounding: the multi-GPU result
    // merges per-chunk partials in a different order than the golden run.
    const bool approximate = config.is_reduction_dest;

    for (int device : devices_) {
      const DeviceShard& shard = array.shard(device);
      if (shard.data == nullptr || !shard.valid || shard.loaded.empty()) {
        continue;
      }
      const std::byte* resident = shard.data->bytes().data();
      for (std::int64_t i = shard.loaded.lo; i < shard.loaded.hi; ++i) {
        const std::uint64_t actual =
            LoadRaw(resident, esize, i - shard.loaded.lo);
        const std::uint64_t expected = LoadRaw(golden.bytes.data(), esize, i);
        ++stats_.elements_compared;
        if (!RawMatches(config.elem, actual, expected, approximate,
                        options_.validate_rel_tol)) {
          Diverge("kernel '" + offload.name + "': array '" + config.name +
                  "' diverges at element " + ElementCoord(array, i) +
                  " on device " + std::to_string(device) + ": multi-GPU=" +
                  RawToString(config.elem, actual) + " golden=" +
                  RawToString(config.elem, expected));
        }
      }
    }

    if (array.host_valid()) {
      const auto* host = static_cast<const std::byte*>(array.host_data());
      for (std::int64_t i = 0; i < array.count(); ++i) {
        const std::uint64_t actual = LoadRaw(host, esize, i);
        const std::uint64_t expected = LoadRaw(golden.bytes.data(), esize, i);
        ++stats_.elements_compared;
        if (!RawMatches(config.elem, actual, expected, approximate,
                        options_.validate_rel_tol)) {
          Diverge("kernel '" + offload.name + "': host image of '" +
                  config.name + "' is marked valid but diverges at element " +
                  ElementCoord(array, i) + ": host=" +
                  RawToString(config.elem, actual) + " golden=" +
                  RawToString(config.elem, expected));
        }
      }
    }

    // --- post-kernel invariants of the coherence machinery ---
    if (param.dirty_tracked) {
      for (int device : devices_) {
        const DeviceShard& shard = array.shard(device);
        for (const sim::DeviceBuffer* bits :
             {shard.dirty1.get(), shard.dirty2.get()}) {
          if (bits == nullptr) continue;
          for (std::byte b : bits->bytes()) {
            if (b != std::byte{0}) {
              Diverge("kernel '" + offload.name + "': dirty bits of '" +
                      config.name + "' on device " + std::to_string(device) +
                      " were not cleared by propagation");
            }
          }
        }
      }
    }
    if (param.miss_checked) {
      for (int device : devices_) {
        const DeviceShard& shard = array.shard(device);
        if (!shard.miss.records.empty()) {
          Diverge("kernel '" + offload.name + "': " +
                  std::to_string(shard.miss.records.size()) +
                  " unreplayed write miss(es) of '" + config.name +
                  "' on device " + std::to_string(device));
        }
      }
    }
    if (config.is_written) {
      if (array.host_valid()) {
        Diverge("kernel '" + offload.name + "': written array '" +
                config.name + "' left the host image marked valid");
      }
      for (int device : devices_) {
        if (!array.shard(device).valid) {
          Diverge("kernel '" + offload.name + "': written array '" +
                  config.name + "' left device " + std::to_string(device) +
                  "'s shard marked invalid");
        }
      }
    }
  }

  ++stats_.kernels_checked;
  static metrics::Counter& checked_metric =
      metrics::Registry::Global().counter("validator.kernels_checked");
  checked_metric.Add();
  arrays_.clear();
}

void Validator::ReportFault(const LoopOffload& offload,
                            const std::exception& fault) {
  Diverge("kernel '" + offload.name +
          "': multi-GPU execution faulted (" + fault.what() +
          "); a kernel touched an element its device never loaded — usually "
          "a wrong localaccess declaration");
}

}  // namespace accmg::runtime
