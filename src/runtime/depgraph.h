// Inter-offload dependence analysis for the async execution pipeline.
//
// The translator emits per-loop read/write sets (ArrayConfig::is_read /
// is_written plus localaccess windows and affine write summaries); this
// module turns them into a static dependence graph between the offloads of
// a compiled function — RAW, WAR and WAW edges keyed on the resolved
// VarDecl (never on identifier spelling, which is ambiguous under
// shadowing) — and into per-device boundary/interior split plans that bound
// which iterations of a distributed kernel can touch elements another
// device reads as halo.
//
// The executor uses the graph to order communication so chunks the next
// dependent offload reads are issued first, and the split plans to gate
// halo exchange on the boundary sub-kernels only, hiding it behind interior
// compute. tests/depgraph_test.cc pins edge derivation, split correctness,
// and async-vs-sync schedule equivalence.
#pragma once

#include <cstdint>
#include <vector>

#include "translator/offload.h"

namespace accmg::runtime {

enum class DepKind : int {
  kRAW = 0,  ///< earlier offload writes, later reads (true dependence)
  kWAR = 1,  ///< earlier reads, later writes (anti dependence)
  kWAW = 2,  ///< both write (output dependence)
};

const char* DepKindName(DepKind kind);

struct DepEdge {
  int from = -1;  ///< offload id of the earlier loop
  int to = -1;    ///< offload id of the later loop
  const frontend::VarDecl* decl = nullptr;  ///< the array carrying the edge
  DepKind kind{};
};

/// Static dependence graph over the offloads of one compiled function, in
/// program (offload id) order. Edges connect each offload to every LATER
/// offload it conflicts with (all pairs, not just adjacent ones — control
/// flow may skip loops at runtime).
struct DepGraph {
  int num_offloads = 0;
  std::vector<DepEdge> edges;

  /// Offload ids with at least one edge from `from`, ascending, deduped.
  std::vector<int> Successors(int from) const;
  /// Edges into `to`, in edge order.
  std::vector<DepEdge> IncomingEdges(int to) const;
  bool HasEdge(int from, int to) const;
  /// Arrays (decls) that offload `to` reads via an edge from `from`.
  std::vector<const frontend::VarDecl*> ReadsFrom(int from, int to) const;
};

/// Builds the graph from the translator's array configurations. A
/// reduction destination counts as read AND written (the combined result
/// folds into the pre-loop value exactly once), so reduction destinations
/// serialize against every other use of the array.
DepGraph BuildDepGraph(const translator::CompiledFunction& fn);

/// Everything the splitter needs to know about one array of the offload,
/// with the localaccess expressions already evaluated in the launch
/// environment.
struct ArraySplitInput {
  bool distributed = false;   ///< owner-segment placement this launch
  bool is_written = false;    ///< the kernel writes this array
  std::int64_t stride = 1;    ///< localaccess stride (>= 1)
  std::int64_t left = 0;      ///< localaccess left halo extent (>= 0)
  std::int64_t right = 0;     ///< localaccess right halo extent (>= 0)
  /// Every ownership boundary equals stride * (iteration at the device
  /// task boundary), i.e. none was clamped to the array ends. Clamped
  /// boundaries break the iteration<->element correspondence the split
  /// arithmetic relies on, so the splitter falls back to no-split.
  bool boundaries_exact = false;
  /// Affine write summary relative to the localaccess window (see
  /// ArrayConfig). When writes are not affine the splitter cannot bound
  /// them and treats the array as written everywhere.
  bool has_affine_writes = false;
  std::int64_t write_coeff = 0;
  std::int64_t write_min_off = 0;
  std::int64_t write_max_off = 0;
};

/// Boundary/interior split of one device's iteration range [0, size):
/// iterations [0, lead) and [size - trail, size) form the boundary
/// sub-tasks (they may read or write elements outside the device's owned
/// segments of some distributed array), [lead, size - trail) the interior
/// sub-task (provably touches owned elements only). `split == false` means
/// run the whole range as one task.
struct SplitPlan {
  bool split = false;
  std::int64_t lead = 0;
  std::int64_t trail = 0;
};

/// Computes the split for device `device_index` of `num_devices` over a
/// task of `size` iterations. Conservative: any array the analysis cannot
/// bound (inexact boundaries, non-affine writes reaching past the
/// localaccess window) disables the split. A device on the partition edge
/// has no neighbour on that side, so the corresponding boundary is empty.
SplitPlan ComputeBoundarySplit(const std::vector<ArraySplitInput>& arrays,
                               std::size_t device_index,
                               std::size_t num_devices, std::int64_t size);

}  // namespace accmg::runtime
