#include "runtime/program.h"

#include <mutex>

#include "common/error.h"
#include "frontend/sema.h"
#include "runtime/host_interp.h"

namespace accmg::runtime {

AccProgram AccProgram::FromSource(const std::string& name,
                                  const std::string& source) {
  return FromSource(name, source, translator::CompileOptions{});
}

AccProgram AccProgram::FromSource(const std::string& name,
                                  const std::string& source,
                                  const translator::CompileOptions& options) {
  AccProgram program;
  program.name_ = name;
  frontend::SourceBuffer buffer(name, source);
  program.ast_ = frontend::ParseAndAnalyze(buffer);
  program.compiled_ = translator::Compile(*program.ast_, options);
  return program;
}

const AccProgram& AccProgram::Cached(const std::string& name,
                                     const std::string& source,
                                     const translator::CompileOptions& options) {
  static std::mutex* mu = new std::mutex;
  static auto* cache =
      new std::unordered_map<std::string, std::unique_ptr<AccProgram>>;
  const std::string key = name + "@O" + std::to_string(options.opt_level);
  std::lock_guard<std::mutex> lock(*mu);
  auto it = cache->find(key);
  if (it == cache->end()) {
    it = cache
             ->emplace(key, std::make_unique<AccProgram>(
                                FromSource(name, source, options)))
             .first;
  }
  return *it->second;
}

ProgramRunner::ProgramRunner(const AccProgram& program, RunConfig config)
    : program_(program), config_(config) {
  ACCMG_REQUIRE(config_.platform != nullptr, "RunConfig.platform is required");
}

ProgramRunner::~ProgramRunner() = default;

void ProgramRunner::BindArray(const std::string& name, void* data,
                              ir::ValType elem, std::int64_t count) {
  translator::HostArray array;
  array.data = data;
  array.elem = elem;
  array.count = count;
  array_bindings_[name] = array;
}

void ProgramRunner::BindScalar(const std::string& name, std::int64_t value) {
  scalar_bindings_[name] =
      translator::TypedValue::OfInt(value, ir::ValType::kI64);
}

void ProgramRunner::BindScalar(const std::string& name, double value) {
  scalar_bindings_[name] =
      translator::TypedValue::OfDouble(value, ir::ValType::kF64);
}

void ProgramRunner::BindScalarF32(const std::string& name, float value) {
  scalar_bindings_[name] =
      translator::TypedValue::OfDouble(value, ir::ValType::kF32);
}

RunReport ProgramRunner::Run(const std::string& function) {
  const translator::CompiledFunction* fn =
      program_.compiled().FindFunction(function);
  ACCMG_REQUIRE(fn != nullptr, "no function named '" + function + "'");
  HostInterpreter interp(*this, *fn);
  return interp.Run();
}

translator::TypedValue ProgramRunner::ScalarAfterRun(
    const std::string& name) const {
  auto it = scalar_results_.find(name);
  ACCMG_REQUIRE(it != scalar_results_.end(),
                "no scalar result named '" + name + "'");
  return it->second;
}

}  // namespace accmg::runtime
