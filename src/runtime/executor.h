// BSP execution of one offloaded parallel loop on the multi-GPU platform
// (paper Section III-A): map tasks & load data -> run kernels in parallel ->
// handle inter-GPU communication, then a global barrier.
//
// With ExecOptions::async_pipeline the barriers are replaced by per-array
// readiness times: distributed kernels with localaccess halos split into
// boundary and interior sub-tasks (runtime/depgraph.h), halo and dirty-chunk
// exchange rides the second DMA engine gated on the boundary sub-kernels,
// and the next offload's interior launches while the exchange is still in
// flight. Functional effects keep the synchronous issue order — results are
// bit-identical and billed bytes/transfer counts unchanged; only the
// simulated schedule differs.
#pragma once

#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "runtime/comm_manager.h"
#include "runtime/data_loader.h"
#include "runtime/depgraph.h"
#include "runtime/managed_array.h"
#include "runtime/options.h"
#include "runtime/validator.h"
#include "sim/platform.h"
#include "translator/eval.h"
#include "translator/offload.h"

namespace accmg::runtime {

struct ExecutorStats {
  std::uint64_t offload_runs = 0;   ///< kernel executions (Table II column C)
};

class Executor {
 public:
  Executor(sim::Platform& platform, ExecOptions options,
           std::vector<int> devices);

  /// Executes the offloaded loop: evaluates bounds in `env`, splits the
  /// iteration space equally across the participating GPUs, loads data per
  /// placement policy, launches the kernels, and runs the communication
  /// manager. Scalar reduction results are written back into `env`.
  ///
  /// When the platform's fault injector is armed this runs under recovery
  /// (docs/ROBUSTNESS.md): managed state is checkpointed at offload entry;
  /// an injected FaultError rolls back and retries with capped exponential
  /// backoff, a device loss shrinks the device set onto the survivors and
  /// retries without consuming the budget, and only an exhausted budget or
  /// the loss of every device escalates to the caller (typed FaultError /
  /// DeviceLostError — never a hang).
  void RunOffload(const translator::LoopOffload& offload,
                  translator::HostEnv& env, const ArrayResolver& resolve);

  /// Marks the start of one job's execution on the simulated clock;
  /// ExecOptions::deadline_sim_s is measured from here. Call once before
  /// interpreting a function (HostInterpreter::Run does).
  void BeginRun() { run_start_sim_ = platform_.clock().Now(); }

  /// Throws JobTimeoutError when the caller's cancel flag is set (service
  /// watchdog) or the simulated deadline has passed. Checked at offload
  /// entry, between recovery retry rounds, and per host statement.
  void CheckInterrupts() const;

  /// Installs the inter-offload dependence graph of the function being
  /// interpreted (async pipeline only): communication after each offload is
  /// issued so the arrays the next dependent offload reads go first. The
  /// graph must outlive the executor's use; pass nullptr to detach.
  void set_depgraph(const DepGraph* graph) { depgraph_ = graph; }

  /// Latest simulated end time of communication issued by the async
  /// pipeline that no one has waited on yet.
  double pending_comm_end() const { return pending_comm_end_; }

  /// Host synchronization point for the async pipeline: advances the
  /// simulated clock past all outstanding communication (the exposed tail
  /// is attributed to the GpuGpu category) and drops the per-array
  /// readiness state. No-op when the pipeline is off.
  void FinishPendingComm();

  DataLoader& loader() { return loader_; }
  CommManager& comm() { return comm_; }
  const ExecutorStats& stats() const { return stats_; }
  const std::vector<int>& devices() const { return devices_; }
  const ExecOptions& options() const { return options_; }
  /// Non-null iff ExecOptions::validate is set.
  const Validator* validator() const { return validator_.get(); }

 private:
  /// The actual BSP execution; RunOffload wraps it with the validator's
  /// capture/check when validation is on.
  void RunOffloadImpl(const translator::LoopOffload& offload,
                      translator::HostEnv& env, const ArrayResolver& resolve);

  /// Checkpoint/retry/degrade wrapper used when the fault injector is
  /// armed. Attributes every injected fault to exactly one recovery.*
  /// bucket (see runtime/recovery.h).
  void RunOffloadWithRecovery(const translator::LoopOffload& offload,
                              translator::HostEnv& env,
                              const ArrayResolver& resolve);

  /// One attempt of the offload, with the validator wrapped around it when
  /// validation is on. Injected FaultErrors escape to the recovery loop;
  /// genuine (non-injected) DeviceErrors still go to the validator.
  void RunOffloadAttempt(const translator::LoopOffload& offload,
                         translator::HostEnv& env,
                         const ArrayResolver& resolve);

  /// Drops lost devices from the executor, loader, comm manager and
  /// validator. The remaining devices repartition on the next attempt.
  void ShrinkDevices(const std::vector<int>& lost);

  /// Per-array readiness under the async pipeline. `bulk` is when the
  /// array's non-halo contents are safe to use (kernel completion plus any
  /// dirty-merge / miss-replay transfers); `halo` additionally covers an
  /// in-flight halo refresh. Keyed on the ManagedArray (the physical
  /// state), not the VarDecl — distinct decls never alias an array, but the
  /// array is what the transfers actually touch.
  struct ArrayReady {
    double bulk = 0;
    double halo = 0;
  };

  /// Measured-throughput mapper state (ExecOptions::mapper == kMeasured).
  /// `mapper_speed_` is the per-device throughput table (iterations per
  /// simulated second), filled once from the first equal-split execution
  /// whose measurement is usable on every device, then frozen. It is shared
  /// by every offload: two loops over the same iteration range must derive
  /// byte-identical ownership boundaries, or row ownership thrashes between
  /// their two splits on every sweep and the redistribution traffic dwarfs
  /// the kernel-time win. Cleared wholesale on any device-set change, which
  /// forces one equal-split re-measurement on the survivors.
  /// `mapper_last_tasks_` (per offload id) only detects split changes for
  /// the mapper.rebalances counter.

  sim::Platform& platform_;
  ExecOptions options_;
  std::vector<int> devices_;
  DataLoader loader_;
  CommManager comm_;
  ExecutorStats stats_;
  std::unique_ptr<Validator> validator_;
  const DepGraph* depgraph_ = nullptr;
  std::unordered_map<const ManagedArray*, ArrayReady> ready_;
  std::vector<double> mapper_speed_;
  std::unordered_map<int, std::vector<Range>> mapper_last_tasks_;
  double pending_comm_end_ = 0;
  double run_start_sim_ = 0;  ///< deadline epoch, set by BeginRun()
};

}  // namespace accmg::runtime
