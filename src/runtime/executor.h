// BSP execution of one offloaded parallel loop on the multi-GPU platform
// (paper Section III-A): map tasks & load data -> run kernels in parallel ->
// handle inter-GPU communication, then a global barrier.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "runtime/comm_manager.h"
#include "runtime/data_loader.h"
#include "runtime/managed_array.h"
#include "runtime/options.h"
#include "runtime/validator.h"
#include "sim/platform.h"
#include "translator/eval.h"
#include "translator/offload.h"

namespace accmg::runtime {

struct ExecutorStats {
  std::uint64_t offload_runs = 0;   ///< kernel executions (Table II column C)
};

class Executor {
 public:
  Executor(sim::Platform& platform, ExecOptions options,
           std::vector<int> devices);

  /// Executes the offloaded loop: evaluates bounds in `env`, splits the
  /// iteration space equally across the participating GPUs, loads data per
  /// placement policy, launches the kernels, and runs the communication
  /// manager. Scalar reduction results are written back into `env`.
  void RunOffload(const translator::LoopOffload& offload,
                  translator::HostEnv& env, const ArrayResolver& resolve);

  DataLoader& loader() { return loader_; }
  CommManager& comm() { return comm_; }
  const ExecutorStats& stats() const { return stats_; }
  const std::vector<int>& devices() const { return devices_; }
  const ExecOptions& options() const { return options_; }
  /// Non-null iff ExecOptions::validate is set.
  const Validator* validator() const { return validator_.get(); }

 private:
  /// The actual BSP execution; RunOffload wraps it with the validator's
  /// capture/check when validation is on.
  void RunOffloadImpl(const translator::LoopOffload& offload,
                      translator::HostEnv& env, const ArrayResolver& resolve);

  sim::Platform& platform_;
  ExecOptions options_;
  std::vector<int> devices_;
  DataLoader loader_;
  CommManager comm_;
  ExecutorStats stats_;
  std::unique_ptr<Validator> validator_;
};

}  // namespace accmg::runtime
