// The inter-GPU communication manager (paper Section IV-D).
//
// Runs right after the kernels complete on every GPU:
//  * replicated arrays — propagates written elements to the other replicas
//    using the two-level dirty bits, transferring only dirty chunks;
//  * distributed arrays — replays buffered write-miss records on the owning
//    GPU and refreshes halo regions from their owners.
// All transfers go device-to-device (directly when the topology supports
// peer DMA) and overlap in simulated time when they use disjoint links.
#pragma once

#include <vector>

#include "runtime/managed_array.h"
#include "runtime/options.h"
#include "sim/platform.h"

namespace accmg::runtime {

struct CommStats {
  std::uint64_t dirty_chunks_sent = 0;
  std::uint64_t clean_chunks_skipped = 0;
  std::uint64_t miss_records_replayed = 0;
  std::uint64_t halo_refreshes = 0;
};

class CommManager {
 public:
  CommManager(sim::Platform& platform, const ExecOptions& options,
              std::vector<int> devices);

  /// Replicated array written by the last kernel: update the other replicas
  /// from each writer's dirty chunks, then clear all dirty bits.
  ///
  /// The dirty state (spans, payload bytes, chunk ids) is snapshotted at
  /// CALL time — issue time under the async pipeline — before anything is
  /// billed or applied. Two writers racing on overlapping spans therefore
  /// merge exactly what each had written when the propagate was issued,
  /// last-writer-wins in device order, regardless of when the simulated
  /// transfers actually run (`ready_at` only delays the billed schedule).
  ///
  /// Transfers start no earlier than `ready_at` and ride `stream`'s copy
  /// engine. Returns the simulated end time of the last transfer (clock
  /// Now when nothing was dirty).
  double PropagateReplicated(ManagedArray& array, double ready_at = 0,
                             sim::Stream stream = sim::Stream::kDefault);

  /// Distributed array: deliver buffered write-miss records to the owners.
  /// Records are drained at call time (issue order); see PropagateReplicated
  /// for the ready_at/stream/return contract.
  double ReplayWriteMisses(ManagedArray& array, double ready_at = 0,
                           sim::Stream stream = sim::Stream::kDefault);

  /// Distributed array written by the last kernel: re-fetch halo elements
  /// (loaded but not owned) from their owners. See PropagateReplicated for
  /// the ready_at/stream/return contract.
  double RefreshHalos(ManagedArray& array, double ready_at = 0,
                      sim::Stream stream = sim::Stream::kDefault);

  /// Drops a lost device from the participating set (executor device-set
  /// shrink during fault recovery).
  void RemoveDevice(int device);

  const CommStats& stats() const { return stats_; }

 private:
  sim::Platform& platform_;
  ExecOptions options_;
  std::vector<int> devices_;
  CommStats stats_;
};

}  // namespace accmg::runtime
