#include "runtime/comm_reference.h"

#include <algorithm>
#include <cstring>
#include <map>

#include "common/error.h"
#include "common/trace.h"

namespace accmg::runtime::reference {

void PropagateReplicated(sim::Platform& platform,
                         const std::vector<int>& devices, ManagedArray& array,
                         double ready_at, sim::Stream stream) {
  trace::PhaseScope phase(trace::category::kDirtyMerge);
  if (devices.size() < 2) {
    for (int device : devices) {
      DeviceShard& shard = array.shard(device);
      if (shard.dirty1 != nullptr) {
        std::memset(shard.dirty1->bytes().data(), 0,
                    shard.dirty1->size_bytes());
        std::memset(shard.dirty2->bytes().data(), 0,
                    shard.dirty2->size_bytes());
      }
      shard.valid = true;
    }
    array.set_host_valid(false);
    return;
  }
  const std::size_t elem = array.elem_size();

  struct SenderDirty {
    int device = 0;
    std::vector<std::int64_t> indices;       // local == global (replica lo=0)
    std::vector<std::byte> values;           // indices.size() * elem bytes
    std::vector<std::int64_t> dirty_chunks;  // second-level dirty chunk ids
  };
  std::vector<SenderDirty> snapshots;

  for (int sender : devices) {
    DeviceShard& src = array.shard(sender);
    if (src.dirty1 == nullptr) continue;
    const std::int64_t n = src.loaded.size();
    const std::int64_t chunk_elems = src.chunk_elems;
    const std::int64_t chunks = (n + chunk_elems - 1) / chunk_elems;

    std::vector<std::uint8_t> level2(static_cast<std::size_t>(chunks));
    std::memcpy(level2.data(), src.dirty2->bytes().data(),
                static_cast<std::size_t>(chunks));
    platform.BillDeviceToHost(sender, static_cast<std::size_t>(chunks),
                              ready_at);

    SenderDirty snapshot;
    snapshot.device = sender;
    const std::uint8_t* dirty1 =
        reinterpret_cast<const std::uint8_t*>(src.dirty1->bytes().data());
    const std::byte* data = src.data->bytes().data();
    for (std::int64_t c = 0; c < chunks; ++c) {
      if (level2[static_cast<std::size_t>(c)] == 0) continue;
      snapshot.dirty_chunks.push_back(c);
      const std::int64_t chunk_lo = c * chunk_elems;
      const std::int64_t chunk_hi =
          std::min<std::int64_t>(n, chunk_lo + chunk_elems);
      for (std::int64_t i = chunk_lo; i < chunk_hi; ++i) {
        if (dirty1[i] == 0) continue;
        snapshot.indices.push_back(i);
        const std::size_t offset = snapshot.values.size();
        snapshot.values.resize(offset + elem);
        std::memcpy(snapshot.values.data() + offset,
                    data + static_cast<std::size_t>(i) * elem, elem);
      }
    }
    if (!snapshot.dirty_chunks.empty()) {
      snapshots.push_back(std::move(snapshot));
    }
  }

  for (const auto& snapshot : snapshots) {
    const DeviceShard& src = array.shard(snapshot.device);
    const std::int64_t n = src.loaded.size();
    const std::int64_t chunk_elems = src.chunk_elems;
    for (int receiver : devices) {
      if (receiver == snapshot.device) continue;
      DeviceShard& dst = array.shard(receiver);
      ACCMG_CHECK(dst.data != nullptr && dst.loaded == src.loaded,
                  "replica shards out of sync for '" + array.name() + "'");
      for (std::int64_t c : snapshot.dirty_chunks) {
        const std::int64_t chunk_lo = c * chunk_elems;
        const std::int64_t chunk_hi =
            std::min<std::int64_t>(n, chunk_lo + chunk_elems);
        const std::size_t chunk_bytes =
            static_cast<std::size_t>(chunk_hi - chunk_lo) * elem +
            static_cast<std::size_t>(chunk_hi - chunk_lo);  // + dirty bits
        platform.BillDeviceToDevice(snapshot.device, receiver, chunk_bytes,
                                    ready_at, stream);
      }
      std::byte* dst_data = dst.data->bytes().data();
      for (std::size_t k = 0; k < snapshot.indices.size(); ++k) {
        const std::int64_t i = snapshot.indices[k];
        std::memcpy(dst_data + static_cast<std::size_t>(i) * elem,
                    snapshot.values.data() + k * elem, elem);
      }
    }
  }

  for (int device : devices) {
    DeviceShard& shard = array.shard(device);
    if (shard.dirty1 != nullptr) {
      std::memset(shard.dirty1->bytes().data(), 0, shard.dirty1->size_bytes());
      std::memset(shard.dirty2->bytes().data(), 0, shard.dirty2->size_bytes());
    }
    shard.valid = true;
  }
  array.set_host_valid(false);
}

void ReplayWriteMisses(sim::Platform& platform,
                       const std::vector<int>& devices, ManagedArray& array,
                       double ready_at, sim::Stream stream) {
  trace::PhaseScope phase(trace::category::kMissFlush);
  const std::size_t elem = array.elem_size();
  for (int sender : devices) {
    DeviceShard& src = array.shard(sender);
    if (src.miss.records.empty()) continue;

    // Group the (address, data) records by owning GPU. An ordered map makes
    // the per-owner billing sequence ascending, matching the sorted order
    // the optimized path uses.
    std::map<int, std::vector<ir::WriteMissRecord>> by_owner;
    for (const auto& record : src.miss.records) {
      const int owner = array.OwnerOf(record.index);
      ACCMG_REQUIRE(owner >= 0,
                    "write-miss to element " + std::to_string(record.index) +
                        " of '" + array.name() + "' which no GPU owns");
      by_owner[owner].push_back(record);
    }
    for (auto& [owner, records] : by_owner) {
      DeviceShard& dst = array.shard(owner);
      platform.BillDeviceToDevice(sender, owner, records.size() * 16,
                                  ready_at, stream);
      std::byte* dst_data = dst.data->bytes().data();
      for (const auto& record : records) {
        ACCMG_CHECK(dst.loaded.Contains(record.index),
                    "owner segment does not contain missed element");
        const std::size_t local =
            static_cast<std::size_t>(record.index - dst.loaded.lo);
        // The raw field holds the element bits in the low `elem` bytes.
        std::memcpy(dst_data + local * elem, &record.raw, elem);
      }
    }
    src.miss.records.clear();
  }
  array.set_host_valid(false);
}

void CombineArrayReduction(
    sim::Platform& platform, const std::vector<int>& devices,
    ManagedArray& dest, ir::RedOp op, ir::ValType type, std::int64_t lower,
    std::int64_t length,
    const std::vector<const std::vector<std::uint64_t>*>& partials,
    double ready_at, sim::Stream stream) {
  ACCMG_REQUIRE(!devices.empty(), "reduction combine needs devices");
  ACCMG_REQUIRE(partials.size() == devices.size(),
                "one partial per device expected");
  const std::size_t elem = dest.elem_size();
  const std::size_t num_devices = devices.size();
  const auto n = static_cast<std::size_t>(length);

  // Same pairwise tree order as the optimized path, with plain serial loops.
  std::vector<std::vector<std::uint64_t>> work(num_devices);
  for (std::size_t g = 0; g < num_devices; ++g) {
    ACCMG_REQUIRE(partials[g]->size() >= n, "partial shorter than section");
    work[g].assign(partials[g]->begin(),
                   partials[g]->begin() + static_cast<std::int64_t>(n));
  }
  for (std::size_t stride = 1; stride < num_devices; stride *= 2) {
    for (std::size_t i = 0; i + stride < num_devices; i += 2 * stride) {
      for (std::size_t j = 0; j < n; ++j) {
        work[i][j] = ir::CombineRaw(op, type, work[i][j], work[i + stride][j]);
      }
    }
  }
  std::vector<std::uint64_t>& combined = work[0];

  double end = platform.clock().Now();
  for (std::size_t g = 1; g < num_devices; ++g) {
    end = std::max(end, platform.BillDeviceToDevice(devices[g], devices[0],
                                                    n * elem, ready_at,
                                                    stream));
  }
  // Same broadcast chaining as the optimized path: the combined result
  // exists only once every partial has arrived.
  const double combine_ready = std::max(ready_at, end);

  for (std::size_t g = 0; g < num_devices; ++g) {
    DeviceShard& shard = dest.shard(devices[g]);
    ACCMG_CHECK(shard.data != nullptr,
                "reduction destination has no device copy");
    std::byte* data = shard.data->bytes().data();
    for (std::size_t j = 0; j < n; ++j) {
      const std::int64_t index = lower + static_cast<std::int64_t>(j);
      if (!shard.loaded.Contains(index)) continue;
      const std::size_t local =
          static_cast<std::size_t>(index - shard.loaded.lo);
      if (g == 0) {
        std::uint64_t current = 0;
        std::memcpy(&current, data + local * elem, elem);
        // Fold the pre-kernel value in exactly once.
        combined[j] = ir::CombineRaw(op, type, current, combined[j]);
      }
      std::memcpy(data + local * elem, &combined[j], elem);
    }
    if (g != 0) {
      platform.BillDeviceToDevice(devices[0], devices[g], n * elem,
                                  combine_ready, stream);
    }
    shard.valid = true;
  }
  dest.set_host_valid(false);
}

}  // namespace accmg::runtime::reference
