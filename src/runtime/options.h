// Tunables of the multi-GPU runtime.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>

namespace accmg::runtime {

/// How the executor splits a parallel loop's iteration range across the
/// participating devices (docs/ARCHITECTURE.md, "Adaptive task mapper").
enum class TaskMapper : int {
  /// The paper's equal contiguous division (Section IV-B2).
  kEqual,
  /// Measured-throughput rebalancing: after each execution of an offload the
  /// executor records per-device kernel durations from the simulated clock
  /// and resplits the next execution of the same offload proportionally to
  /// the observed iterations/second. Falls back to equal division on the
  /// first run, after a device-set change, and whenever a measurement is
  /// unusable; a ~2% hysteresis band keeps stable splits byte-stable so the
  /// loader's reload-skip caching still applies. Output is bit-identical to
  /// equal division for non-reduction kernels — only the split (and thus the
  /// simulated schedule) changes.
  kMeasured,
};

struct ExecOptions {
  /// Honour `localaccess` directives (distribution-based placement). When
  /// false every array uses the replica-based policy, which is what a stock
  /// single-GPU OpenACC compiler effectively does.
  bool honor_localaccess = true;

  /// Second-level dirty-bit chunk size (paper Section IV-D1 picks 1 MB).
  std::size_t dirty_chunk_bytes = 1 << 20;

  /// Capacity reserved per GPU for the write-miss system buffer.
  std::size_t miss_buffer_bytes = 4u << 20;

  /// Logical CUDA block size used for grid geometry.
  int block_size = 256;

  /// Extension beyond the paper: split the iteration space proportionally
  /// to each device's compute throughput instead of equally (Section IV-B2
  /// divides equally, which wastes time when the GPUs differ). Static — it
  /// trusts the platform's spec table; see `mapper` for the measured
  /// alternative, which takes precedence when set to kMeasured.
  bool weighted_task_mapping = false;

  /// Adaptive task mapper selection (see TaskMapper above). kMeasured
  /// overrides weighted_task_mapping once per-offload timings exist.
  TaskMapper mapper = TaskMapper::kEqual;

  /// Dependence-driven async offload pipeline. The executor derives
  /// inter-offload RAW/WAR/WAW dependences from each offload's array
  /// read/write sets (runtime/depgraph.h), splits distributed kernels with
  /// localaccess halos into boundary and interior sub-tasks, and gates work
  /// on per-array readiness times instead of global BSP barriers — so halo
  /// and dirty-chunk exchange overlaps interior compute in simulated time.
  /// Functional effects keep the synchronous issue order (results are
  /// bit-identical and billed bytes/transfer counts are unchanged); only
  /// the simulated schedule differs. Default off until validated per app.
  bool async_pipeline = false;

  /// Enables the process-wide tracer (common/trace.h): the runtime and the
  /// virtual platform then record per-device spans — kernel executions,
  /// transfers, dirty-bit merges, write-miss flushes, halo refreshes,
  /// inter-GPU reductions — for Chrome-trace export and summary tables.
  /// Equivalent to trace::Tracer::Global().set_enabled(true); tracing stays
  /// on afterwards so callers can export the buffer.
  bool trace = false;

  /// Shadow-executes every offload on a host-side golden interpreter and
  /// diffs all managed-array state (shard bytes, host image, dirty bits,
  /// miss buffers) plus billed-transfer counters after each kernel
  /// (runtime/validator.h). Expensive — single-threaded re-execution of
  /// every kernel — so strictly a debugging mode.
  bool validate = false;

  /// Identifies the service job this execution belongs to (-1 outside the
  /// resident service). The runtime wraps its worker entry points in
  /// trace::JobScope(job_id) so every recorded span — including those from
  /// per-device launcher threads — carries the job label, which is what
  /// per-job Chrome-trace export filters on (service/service.h).
  int job_id = -1;

  /// Relative tolerance used by the validator when comparing floating-point
  /// reduction results: chunk merge order differs between the multi-GPU run
  /// and the golden run, so float reductions are only reproducible up to
  /// rounding. Non-reduction stores are compared bit-exactly.
  double validate_rel_tol = 1e-5;

  /// Fault recovery (docs/ROBUSTNESS.md): how many times one offload (or one
  /// guarded transfer) may be retried after a transient injected fault before
  /// the fault escalates to the caller. Device losses do not consume retries
  /// — they trigger a device-set shrink instead.
  int fault_max_retries = 3;

  /// Initial retry backoff in simulated seconds; doubles per retry round up
  /// to fault_backoff_cap_s. Billed on the simulated clock (kOther) so
  /// recovery latency is visible in traces and bench output.
  double fault_backoff_s = 1e-4;
  double fault_backoff_cap_s = 1e-2;

  /// Per-job deadline in simulated seconds (0 = none). When the simulated
  /// clock advances past start + deadline, the executor throws
  /// JobTimeoutError at the next interrupt check — offload entry, retry
  /// round, or host statement boundary.
  double deadline_sim_s = 0;

  /// Cooperative cancellation flag owned by the caller (the service watchdog
  /// sets it on wall-clock timeout). Checked at the same interrupt points as
  /// the deadline; null = never cancelled.
  const std::atomic<bool>* cancel = nullptr;
};

}  // namespace accmg::runtime
