// Tunables of the multi-GPU runtime.
#pragma once

#include <cstddef>
#include <cstdint>

namespace accmg::runtime {

struct ExecOptions {
  /// Honour `localaccess` directives (distribution-based placement). When
  /// false every array uses the replica-based policy, which is what a stock
  /// single-GPU OpenACC compiler effectively does.
  bool honor_localaccess = true;

  /// Second-level dirty-bit chunk size (paper Section IV-D1 picks 1 MB).
  std::size_t dirty_chunk_bytes = 1 << 20;

  /// Capacity reserved per GPU for the write-miss system buffer.
  std::size_t miss_buffer_bytes = 4u << 20;

  /// Logical CUDA block size used for grid geometry.
  int block_size = 256;

  /// Extension beyond the paper: split the iteration space proportionally
  /// to each device's compute throughput instead of equally (Section IV-B2
  /// divides equally, which wastes time when the GPUs differ).
  bool weighted_task_mapping = false;
};

}  // namespace accmg::runtime
