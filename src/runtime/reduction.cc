#include "runtime/reduction.h"

#include <algorithm>
#include <cstring>

#include "common/error.h"
#include "common/thread_pool.h"

namespace accmg::runtime {

double CombineArrayReduction(
    sim::Platform& platform, const std::vector<int>& devices,
    ManagedArray& dest, ir::RedOp op, ir::ValType type, std::int64_t lower,
    std::int64_t length,
    const std::vector<const std::vector<std::uint64_t>*>& partials,
    double ready_at, sim::Stream stream) {
  ACCMG_REQUIRE(!devices.empty(), "reduction combine needs devices");
  ACCMG_REQUIRE(partials.size() == devices.size(),
                "one partial per device expected");
  const std::size_t elem = dest.elem_size();
  const std::size_t num_devices = devices.size();
  const auto n = static_cast<std::size_t>(length);
  ThreadPool& pool = platform.workers();

  // Tree-combine into mutable work buffers (the per-GPU partials stay
  // const). Level by level, node i absorbs node i + stride; pairs at one
  // level are independent, so a single pool dispatch per level covers them
  // all, split over element ranges.
  std::vector<std::vector<std::uint64_t>> work(num_devices);
  for (std::size_t g = 0; g < num_devices; ++g) {
    ACCMG_REQUIRE(partials[g]->size() >= n, "partial shorter than section");
    work[g].assign(partials[g]->begin(),
                   partials[g]->begin() + static_cast<std::int64_t>(n));
  }
  for (std::size_t stride = 1; stride < num_devices; stride *= 2) {
    pool.ParallelForChunks(
        0, length, [&](std::int64_t lo, std::int64_t hi, std::size_t) {
          for (std::size_t i = 0; i + stride < num_devices; i += 2 * stride) {
            ir::CombineRawSpan(op, type, work[i].data() + lo,
                               work[i + stride].data() + lo,
                               static_cast<std::size_t>(hi - lo));
          }
        });
  }
  std::vector<std::uint64_t>& combined = work[0];

  // Each non-root partial travels to the combining GPU (same bills as the
  // serial chain, in the same order).
  double end = platform.clock().Now();
  for (std::size_t g = 1; g < num_devices; ++g) {
    end = std::max(end, platform.BillDeviceToDevice(devices[g], devices[0],
                                                    n * elem, ready_at,
                                                    stream));
  }

  // Fold the pre-kernel value into the combined result exactly once — on
  // the root replica, which the replica-placement policy keeps complete —
  // then write the result there.
  {
    DeviceShard& shard = dest.shard(devices[0]);
    ACCMG_CHECK(shard.data != nullptr,
                "reduction destination has no device copy");
    std::byte* data = shard.data->bytes().data();
    // Hoist the per-element residency test: `loaded` is an interval, so the
    // resident slice of [lower, lower+length) is one subrange of j.
    const std::int64_t j_lo =
        std::max<std::int64_t>(0, shard.loaded.lo - lower);
    const std::int64_t j_hi = std::max<std::int64_t>(
        j_lo, std::min<std::int64_t>(length, shard.loaded.hi - lower));
    pool.ParallelForChunks(
        j_lo, j_hi, [&](std::int64_t lo, std::int64_t hi, std::size_t) {
          for (std::int64_t j = lo; j < hi; ++j) {
            const std::size_t local =
                static_cast<std::size_t>(lower + j - shard.loaded.lo);
            std::uint64_t current = 0;
            std::memcpy(&current, data + local * elem, elem);
            combined[static_cast<std::size_t>(j)] = ir::CombineRaw(
                op, type, current, combined[static_cast<std::size_t>(j)]);
            std::memcpy(data + local * elem,
                        &combined[static_cast<std::size_t>(j)], elem);
          }
        });
    shard.valid = true;
  }

  // Broadcast into the remaining replicas. Shards are disjoint, so one pool
  // dispatch writes them all; the bills stay serial and ordered.
  for (std::size_t g = 1; g < num_devices; ++g) {
    ACCMG_CHECK(dest.shard(devices[g]).data != nullptr,
                "reduction destination has no device copy");
  }
  if (num_devices > 1) {
    pool.ParallelForChunks(
        0, length, [&](std::int64_t lo, std::int64_t hi, std::size_t) {
          for (std::size_t g = 1; g < num_devices; ++g) {
            DeviceShard& shard = dest.shard(devices[g]);
            std::byte* data = shard.data->bytes().data();
            // Clip [lo, hi) to the resident slice of this replica.
            const std::int64_t c_lo =
                std::max<std::int64_t>(lo, shard.loaded.lo - lower);
            const std::int64_t c_hi = std::max<std::int64_t>(
                c_lo, std::min<std::int64_t>(hi, shard.loaded.hi - lower));
            if (c_hi <= c_lo) continue;
            std::byte* out = data + static_cast<std::size_t>(
                                        lower + c_lo - shard.loaded.lo) *
                                        elem;
            if (elem == 8) {
              std::memcpy(out, combined.data() + c_lo,
                          static_cast<std::size_t>(c_hi - c_lo) * 8);
            } else {
              for (std::int64_t j = c_lo; j < c_hi; ++j) {
                std::memcpy(out + static_cast<std::size_t>(j - c_lo) * elem,
                            &combined[static_cast<std::size_t>(j)], elem);
              }
            }
          }
        });
  }
  // The broadcast carries the combined result, which exists only once every
  // partial has arrived — chain it after the slowest incoming transfer.
  const double combine_ready = std::max(ready_at, end);
  for (std::size_t g = 1; g < num_devices; ++g) {
    end = std::max(end,
                   platform.BillDeviceToDevice(devices[0], devices[g],
                                               n * elem, combine_ready,
                                               stream));
    dest.shard(devices[g]).valid = true;
  }
  dest.set_host_valid(false);
  return end;
}

}  // namespace accmg::runtime
