// The data loader (paper Section IV-C).
//
// Guarantees OpenACC data-movement semantics while transparently managing
// multiple GPU memories. Arrays without localaccess information use the
// replica-based policy (full copy on every GPU); arrays with localaccess use
// the distribution-based policy (owner segments + halos). Reloads are skipped
// when the previously loaded ranges still satisfy the request and the device
// contents are valid — the cache that makes iterative algorithms cheap.
#pragma once

#include <vector>

#include "runtime/managed_array.h"
#include "runtime/options.h"
#include "sim/platform.h"

namespace accmg::runtime {

/// Placement request for one array before one kernel launch.
struct ArrayRequirement {
  ManagedArray* array = nullptr;
  bool distributed = false;
  bool written = false;
  bool dirty_tracked = false;  ///< replicated + written: needs dirty bits
  bool miss_checked = false;   ///< distributed + unproven writes: miss buffer
  /// Per participating device (indexed by position in the device list).
  std::vector<Range> read_ranges;
  std::vector<Range> own_ranges;
};

struct LoaderStats {
  std::uint64_t loads_performed = 0;
  std::uint64_t loads_skipped = 0;   ///< the reload-skip cache hits
  std::uint64_t gathers = 0;
};

class DataLoader {
 public:
  DataLoader(sim::Platform& platform, const ExecOptions& options,
             std::vector<int> devices);

  /// Makes the array satisfy `req` on every participating device, issuing
  /// host<->device transfers as needed. Also (re)allocates the system
  /// buffers (dirty bits / miss buffer) the instrumentation requires.
  /// Transfers start no earlier than `ready_at` (simulated seconds — the
  /// async pipeline passes the array's outstanding-communication end so a
  /// reload never races an in-flight exchange). Returns the simulated end
  /// time of the last transfer issued (clock Now when none was needed).
  double EnsurePlacement(const ArrayRequirement& req, double ready_at = 0);

  /// Copies the authoritative bytes back to the host buffer (used at data
  /// region exits, update-host directives, and placement transitions).
  /// Returns the simulated end time of the last transfer.
  double GatherToHost(ManagedArray& array, double ready_at = 0);

  /// Pushes the host copy to wherever the array currently lives on devices
  /// (update-device directive). Returns the last transfer's end time.
  /// Shards on devices the fault injector reports dead are skipped and
  /// invalidated (the host copy is authoritative here by contract).
  double ScatterFromHost(ManagedArray& array, double ready_at = 0);

  /// Drops a lost device from the participating set (executor device-set
  /// shrink during fault recovery). Subsequent loads partition over the
  /// survivors only.
  void RemoveDevice(int device);

  const LoaderStats& stats() const { return stats_; }

 private:
  double LoadReplicated(const ArrayRequirement& req, double ready_at);
  double LoadDistributed(const ArrayRequirement& req, double ready_at);
  void EnsureSystemBuffers(const ArrayRequirement& req);

  bool IsParticipating(int device) const;
  /// Frees the shards of devices outside this loader's device set. The
  /// authoritative bytes must already be safe (host copy or a participating
  /// shard) before calling.
  void ReleaseNonParticipating(ManagedArray& array);

  sim::Platform& platform_;
  ExecOptions options_;
  std::vector<int> devices_;
  LoaderStats stats_;
};

}  // namespace accmg::runtime
