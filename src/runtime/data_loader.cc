#include "runtime/data_loader.h"

#include <algorithm>
#include <cstring>

#include "common/error.h"
#include "common/log.h"
#include "common/metrics.h"
#include "common/trace.h"

namespace accmg::runtime {

namespace {

/// Registry handles mirroring LoaderStats into the unified metrics
/// namespace.
struct LoaderMetrics {
  metrics::Counter& loads_performed;
  metrics::Counter& loads_skipped;
  metrics::Counter& gathers;

  static LoaderMetrics& Get() {
    static LoaderMetrics m{
        metrics::Registry::Global().counter("loader.loads_performed"),
        metrics::Registry::Global().counter("loader.loads_skipped"),
        metrics::Registry::Global().counter("loader.gathers"),
    };
    return m;
  }
};

}  // namespace

DataLoader::DataLoader(sim::Platform& platform, const ExecOptions& options,
                       std::vector<int> devices)
    : platform_(platform), options_(options), devices_(std::move(devices)) {
  ACCMG_REQUIRE(!devices_.empty(), "data loader needs at least one device");
}

double DataLoader::EnsurePlacement(const ArrayRequirement& req,
                                   double ready_at) {
  ACCMG_REQUIRE(req.array != nullptr, "requirement without an array");
  trace::Span span("load:" + req.array->name(), trace::category::kLoader);
  ACCMG_REQUIRE(req.read_ranges.size() == devices_.size() &&
                    req.own_ranges.size() == devices_.size(),
                "requirement ranges must match the device list");
  const double end = req.distributed ? LoadDistributed(req, ready_at)
                                     : LoadReplicated(req, ready_at);
  EnsureSystemBuffers(req);
  return end;
}

double DataLoader::LoadReplicated(const ArrayRequirement& req,
                                  double ready_at) {
  ManagedArray& array = *req.array;
  const Range full{0, array.count()};

  // Reload-skip: already replicated and valid everywhere we need it.
  bool satisfied = array.placement() == Placement::kReplicated;
  if (satisfied) {
    for (int device : devices_) {
      const DeviceShard& shard = array.shard(device);
      satisfied &= shard.valid && shard.loaded == full;
    }
  }
  if (satisfied) {
    // Shards of devices outside the participating set may survive from an
    // earlier, larger device set. They must not stay behind: the allocation
    // is leaked memory, and a stale-but-valid replica would be picked up by
    // later gathers/owner scans. Participating replicas are valid, so
    // releasing loses nothing.
    ReleaseNonParticipating(array);
    ++stats_.loads_skipped;
    LoaderMetrics::Get().loads_skipped.Add();
    return platform_.clock().Now();
  }

  // Transitioning placements: make the host copy authoritative first. This
  // must happen before non-participating shards are released — they may
  // hold the only valid copy.
  double end = platform_.clock().Now();
  if (!array.host_valid()) end = GatherToHost(array, ready_at);

  ReleaseNonParticipating(array);

  for (int device : devices_) {
    DeviceShard& shard = array.shard(device);
    if (shard.valid && shard.loaded == full &&
        array.placement() == Placement::kReplicated) {
      continue;  // this replica is already current
    }
    if (shard.data == nullptr || shard.loaded != full) {
      shard.data = platform_.device(device).Allocate(
          "user:" + array.name(), array.total_bytes());
      shard.loaded = full;
    }
    end = std::max(end,
                   platform_.CopyHostToDevice(*shard.data, 0,
                                              array.host_data(),
                                              array.total_bytes(), ready_at));
    shard.owned = full;
    shard.valid = true;
    ++stats_.loads_performed;
    LoaderMetrics::Get().loads_performed.Add();
  }
  array.set_placement(Placement::kReplicated);
  return end;
}

double DataLoader::LoadDistributed(const ArrayRequirement& req,
                                   double ready_at) {
  ManagedArray& array = *req.array;

  // Reload-skip: same ownership and the loaded range already covers the
  // request (a superset is fine — e.g. a halo-free kernel following a halo
  // kernel; the comm manager keeps the whole loaded range coherent).
  bool satisfied = array.placement() == Placement::kDistributed;
  if (satisfied) {
    for (std::size_t i = 0; i < devices_.size(); ++i) {
      const DeviceShard& shard = array.shard(devices_[i]);
      satisfied &= shard.valid && shard.owned == req.own_ranges[i] &&
                   shard.loaded.lo <= req.read_ranges[i].lo &&
                   shard.loaded.hi >= req.read_ranges[i].hi;
    }
    // The per-index comparison above only sees this loader's device list.
    // If the previous placement involved other devices (a larger set, or a
    // different ordering that left shards on devices we no longer drive),
    // their still-valid shards would keep claiming ownership in OwnerOf
    // scans and shadow the new partition — so the skip is only safe when
    // every non-participating shard is already invalid.
    for (int d = 0; satisfied && d < array.num_shards(); ++d) {
      if (!IsParticipating(d)) satisfied &= !array.shard(d).valid;
    }
  }
  if (satisfied) {
    ++stats_.loads_skipped;
    LoaderMetrics::Get().loads_skipped.Add();
    return platform_.clock().Now();
  }

  double end = platform_.clock().Now();
  if (!array.host_valid()) end = GatherToHost(array, ready_at);
  ReleaseNonParticipating(array);

  const std::size_t elem = array.elem_size();
  for (std::size_t i = 0; i < devices_.size(); ++i) {
    const int device = devices_[i];
    DeviceShard& shard = array.shard(device);
    const Range read = req.read_ranges[i];
    ACCMG_CHECK(read.lo >= 0 && read.hi <= array.count(),
                "segment range outside array '" + array.name() + "'");
    if (shard.data == nullptr || shard.loaded != read) {
      shard.data = platform_.device(device).Allocate(
          "user:" + array.name(),
          static_cast<std::size_t>(read.size()) * elem);
      shard.loaded = read;
    }
    end = std::max(
        end, platform_.CopyHostToDevice(
                 *shard.data, 0,
                 static_cast<const std::byte*>(array.host_data()) +
                     static_cast<std::size_t>(read.lo) * elem,
                 static_cast<std::size_t>(read.size()) * elem, ready_at));
    shard.owned = req.own_ranges[i];
    shard.valid = true;
    ++stats_.loads_performed;
    LoaderMetrics::Get().loads_performed.Add();
  }
  array.set_placement(Placement::kDistributed);
  return end;
}

void DataLoader::RemoveDevice(int device) {
  devices_.erase(std::remove(devices_.begin(), devices_.end(), device),
                 devices_.end());
  ACCMG_CHECK(!devices_.empty(),
              "data loader lost its last device — the executor must fail the "
              "offload before shrinking to an empty set");
}

bool DataLoader::IsParticipating(int device) const {
  for (int d : devices_) {
    if (d == device) return true;
  }
  return false;
}

void DataLoader::ReleaseNonParticipating(ManagedArray& array) {
  for (int d = 0; d < array.num_shards(); ++d) {
    if (IsParticipating(d)) continue;
    DeviceShard& shard = array.shard(d);
    if (shard.data != nullptr || shard.valid || shard.dirty1 != nullptr ||
        shard.miss_capacity != nullptr) {
      shard.Release();
    }
  }
}

void DataLoader::EnsureSystemBuffers(const ArrayRequirement& req) {
  ManagedArray& array = *req.array;
  const std::size_t elem = array.elem_size();
  const auto chunk_elems = static_cast<std::int64_t>(
      std::max<std::size_t>(1, options_.dirty_chunk_bytes / elem));

  for (int device : devices_) {
    DeviceShard& shard = array.shard(device);
    if (req.dirty_tracked) {
      const std::int64_t n = shard.loaded.size();
      const std::int64_t chunks = (n + chunk_elems - 1) / chunk_elems;
      if (shard.dirty1 == nullptr ||
          shard.dirty1->size_bytes() != static_cast<std::size_t>(n) ||
          shard.chunk_elems != chunk_elems) {
        shard.dirty1 = platform_.device(device).Allocate(
            "sys:dirty1:" + array.name(), static_cast<std::size_t>(n));
        shard.dirty2 = platform_.device(device).Allocate(
            "sys:dirty2:" + array.name(), static_cast<std::size_t>(chunks));
        // Staging area for receiving one in-flight dirty chunk (+ its
        // level-1 bits) from each peer during the merge, capped by the
        // array's own footprint for small arrays.
        const std::size_t peers = devices_.size() - 1;
        if (peers > 0) {
          const std::size_t per_peer =
              std::min(options_.dirty_chunk_bytes +
                           static_cast<std::size_t>(chunk_elems),
                       static_cast<std::size_t>(n) * (elem + 1));
          shard.staging = platform_.device(device).Allocate(
              "sys:staging:" + array.name(), peers * per_peer);
        }
        shard.chunk_elems = chunk_elems;
      }
      std::memset(shard.dirty1->bytes().data(), 0,
                  shard.dirty1->size_bytes());
      std::memset(shard.dirty2->bytes().data(), 0,
                  shard.dirty2->size_bytes());
    } else {
      shard.dirty1.reset();
      shard.dirty2.reset();
      shard.staging.reset();
      shard.chunk_elems = 0;
    }
    if (req.miss_checked) {
      if (shard.miss_capacity == nullptr) {
        shard.miss_capacity = platform_.device(device).Allocate(
            "sys:miss:" + array.name(), options_.miss_buffer_bytes);
      }
      shard.miss.records.clear();
    } else {
      shard.miss_capacity.reset();
      shard.miss.records.clear();
    }
  }
}

double DataLoader::GatherToHost(ManagedArray& array, double ready_at) {
  if (array.host_valid()) return platform_.clock().Now();
  trace::Span span("gather:" + array.name(), trace::category::kLoader);
  const std::size_t elem = array.elem_size();
  auto* host = static_cast<std::byte*>(array.host_data());
  double end = platform_.clock().Now();
  switch (array.placement()) {
    case Placement::kHostOnly:
      ACCMG_CHECK(false, "array '" + array.name() +
                             "' is host-only but the host copy is stale");
      break;
    case Placement::kReplicated: {
      // Any valid replica is authoritative. Prefer replicas on devices the
      // fault injector still considers alive, so a retried gather after a
      // device loss reads a healthy copy instead of re-faulting on the dead
      // one; the dead replica is only a last resort (and will surface a
      // DeviceLostError that the caller escalates as typed data loss).
      const sim::FaultInjector& faults = platform_.faults();
      int pick = -1;
      for (int d = 0; d < array.num_shards(); ++d) {
        const DeviceShard& shard = array.shard(d);
        if (!shard.valid) continue;
        if (pick < 0) pick = d;
        if (!faults.armed() || faults.alive(d)) {
          pick = d;
          break;
        }
      }
      if (pick >= 0) {
        const DeviceShard& shard = array.shard(pick);
        end = platform_.CopyDeviceToHost(host, *shard.data, 0,
                                         array.total_bytes(), ready_at);
        array.set_host_valid(true);
        ++stats_.gathers;
        LoaderMetrics::Get().gathers.Add();
        return end;
      }
      ACCMG_CHECK(false, "replicated array '" + array.name() +
                             "' has no valid replica to gather from");
      break;
    }
    case Placement::kDistributed: {
      for (int d = 0; d < array.num_shards(); ++d) {
        const DeviceShard& shard = array.shard(d);
        if (!shard.valid || shard.owned.empty()) continue;
        const std::size_t offset_in_segment =
            static_cast<std::size_t>(shard.owned.lo - shard.loaded.lo) * elem;
        end = std::max(
            end, platform_.CopyDeviceToHost(
                     host + static_cast<std::size_t>(shard.owned.lo) * elem,
                     *shard.data, offset_in_segment,
                     static_cast<std::size_t>(shard.owned.size()) * elem,
                     ready_at));
      }
      array.set_host_valid(true);
      ++stats_.gathers;
      LoaderMetrics::Get().gathers.Add();
      break;
    }
  }
  return end;
}

double DataLoader::ScatterFromHost(ManagedArray& array, double ready_at) {
  ACCMG_REQUIRE(array.host_valid(),
                "update device from a stale host copy of '" + array.name() +
                    "'");
  const std::size_t elem = array.elem_size();
  const auto* host = static_cast<const std::byte*>(array.host_data());
  const sim::FaultInjector& faults = platform_.faults();
  double end = platform_.clock().Now();
  for (int d = 0; d < array.num_shards(); ++d) {
    DeviceShard& shard = array.shard(d);
    if (shard.data == nullptr) continue;
    if (faults.armed() && !faults.alive(d)) {
      // The host copy is authoritative (REQUIRE above); a shard stranded on
      // a dead device must not keep claiming validity.
      shard.valid = false;
      continue;
    }
    end = std::max(
        end, platform_.CopyHostToDevice(
                 *shard.data, 0,
                 host + static_cast<std::size_t>(shard.loaded.lo) * elem,
                 static_cast<std::size_t>(shard.loaded.size()) * elem,
                 ready_at));
    shard.valid = true;
  }
  return end;
}

}  // namespace accmg::runtime
