// Host-side execution of a translated program: runs the sequential mini-C
// statements on the CPU, manages OpenACC data regions (creating ManagedArrays
// and honouring copy/copyin/copyout/create/update semantics), and dispatches
// offloaded loops to the multi-GPU Executor or the CPU baseline executor.
#pragma once

#include <memory>
#include <unordered_map>
#include <vector>

#include "runtime/cpu_executor.h"
#include "runtime/executor.h"
#include "runtime/program.h"

namespace accmg::runtime {

class HostInterpreter {
 public:
  HostInterpreter(ProgramRunner& runner, const translator::CompiledFunction& fn);

  RunReport Run();

 private:
  enum class Flow { kNext, kBreak, kContinue, kReturn };

  struct RegionEntry {
    const frontend::VarDecl* decl = nullptr;
    frontend::DataClauseKind clause{};
    bool implicit = false;  ///< created for a single parallel region
  };

  Flow ExecStmt(const frontend::Stmt& stmt);
  Flow ExecBody(const frontend::Stmt& stmt);
  void ExecAssign(const frontend::AssignStmt& stmt);
  void RunOffloadStmt(const frontend::ForStmt& loop, int offload_index);

  void EnterDataRegion(const frontend::Directive& directive,
                       std::vector<RegionEntry>& entries);
  void ExitDataRegion(const std::vector<RegionEntry>& entries);
  void EnterDataUnstructured(const frontend::Directive& directive);
  void ExitDataUnstructured(const frontend::Directive& directive);
  void ApplyUpdate(const frontend::Directive& directive);

  ManagedArray& Managed(const frontend::VarDecl& decl);
  ManagedArray* FindManaged(const frontend::VarDecl& decl);
  translator::HostArray HostArrayOf(const frontend::VarDecl& decl);
  const frontend::VarDecl* FindParam(const std::string& name) const;

  /// Before a host statement touches managed arrays: pull stale data back to
  /// the host, and invalidate device copies the statement will overwrite.
  void SyncForHostAccess(const frontend::Stmt& stmt);

  /// GatherToHost / ScatterFromHost with the fault-retry policy wrapped
  /// around them when the injector is armed (runtime/recovery.h). These
  /// transfers run outside any offload, so the executor's checkpoint loop
  /// doesn't cover them; they are idempotent (billing precedes the memcpy)
  /// and therefore safe to re-issue as-is.
  double GuardedGather(ManagedArray& array);
  double GuardedScatter(ManagedArray& array);

  void UpdateMemoryPeaks();

  /// True when the GPU executor runs the dependence-driven async pipeline.
  bool AsyncPipeline() const;

  ProgramRunner& runner_;
  const translator::CompiledFunction& fn_;
  translator::HostEnv env_;
  std::unordered_map<int, std::unique_ptr<ManagedArray>> managed_;
  std::unique_ptr<Executor> gpu_;
  std::unique_ptr<CpuExecutor> cpu_;
  /// Inter-offload dependence graph of fn_, built once when the async
  /// pipeline is on; the executor holds a pointer into it.
  DepGraph depgraph_;
  RunReport report_;
};

}  // namespace accmg::runtime
