// Runtime coherence validator (--validate / ExecOptions::validate).
//
// Shadow-executes every offloaded loop on a single-threaded golden
// interpreter over host-side copies of the authoritative array state, then
// diffs everything the multi-GPU machinery produced against it:
//
//   * every participating shard's resident bytes over its loaded range
//     (so stale replicas, missing halo refreshes and unreplayed write
//     misses all surface as the first divergent element),
//   * the host image when the runtime claims it is valid,
//   * scalar and array reduction results (floats up to a relative
//     tolerance — chunk-merge order differs between the two runs),
//   * post-kernel invariants: dirty bits fully cleared after propagation,
//     miss buffers drained after replay, written arrays marked valid on
//     every participant with the host image invalidated,
//   * and that validation itself never changes billed transfer counters or
//     the simulated clock (the golden run touches host memory only).
//
// A divergence raises accmg::Error with kernel, array, element and device
// attribution. The validator is deliberately oblivious to how the runtime
// moved data — it only trusts ir::KernelExec semantics — which is what makes
// it able to catch bugs in the loader/communication layers.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "runtime/managed_array.h"
#include "runtime/options.h"
#include "sim/platform.h"
#include "translator/eval.h"
#include "translator/offload.h"

namespace accmg::runtime {

/// Resolves a mini-C array parameter to its managed placement state.
using ArrayResolver =
    std::function<ManagedArray&(const frontend::VarDecl&)>;

struct ValidatorStats {
  std::uint64_t kernels_checked = 0;
  std::uint64_t elements_compared = 0;
  std::uint64_t divergences = 0;  ///< nonzero only if the caller swallowed one
};

class Validator {
 public:
  Validator(sim::Platform& platform, const ExecOptions& options,
            std::vector<int> devices);

  /// Captures the authoritative pre-kernel state: a golden host copy of
  /// every array the offload touches, scalar argument values, and the
  /// pre-loop values of reduction variables. Must run before the executor
  /// mutates anything.
  void BeginOffload(const translator::LoopOffload& offload,
                    translator::HostEnv& env, const ArrayResolver& resolve);

  /// Runs the golden execution over the captured state and diffs it against
  /// the multi-GPU outcome. Throws accmg::Error on the first divergence.
  void CheckOffload(const translator::LoopOffload& offload,
                    translator::HostEnv& env, const ArrayResolver& resolve);

  /// Converts a DeviceError raised by the multi-GPU execution into an
  /// attributed validation error (the golden pre-image tells us which
  /// kernel was running).
  [[noreturn]] void ReportFault(const translator::LoopOffload& offload,
                                const std::exception& fault);

  /// Drops a lost device from the diff set (executor device-set shrink
  /// during fault recovery): its shards no longer participate, so checking
  /// them — or requiring written-array validity on them — would be wrong.
  void RemoveDevice(int device);

  const ValidatorStats& stats() const { return stats_; }

 private:
  struct GoldenArray {
    const translator::ArrayConfig* config = nullptr;
    std::vector<std::byte> bytes;  ///< authoritative full-array image
  };

  [[noreturn]] void Diverge(const std::string& message);

  sim::Platform& platform_;
  ExecOptions options_;
  std::vector<int> devices_;
  ValidatorStats stats_;

  // State captured by BeginOffload for the in-flight offload.
  std::int64_t lower_ = 0;
  std::int64_t total_ = 0;
  std::vector<std::uint64_t> scalar_values_;
  std::vector<std::uint64_t> scalar_red_pre_;  ///< raw element bits per red
  std::vector<std::int64_t> red_lower_;
  std::vector<std::int64_t> red_length_;
  std::vector<GoldenArray> arrays_;
};

}  // namespace accmg::runtime
