// Straightforward (serial, element-at-a-time) implementations of the
// coherence hot paths, kept as the behavioral baseline for the optimized
// CommManager / CombineArrayReduction code.
//
// Two consumers rely on them:
//  * tests/comm_equivalence_test.cc runs both versions on identical random
//    write patterns and asserts bit-identical array contents AND identical
//    billed bytes, transfer counts, and simulated time (the sim-time
//    neutrality invariant — see docs/PERFORMANCE.md);
//  * bench/bench_comm_hotpath measures the wall-clock gap between the two,
//    which is the perf trajectory this repo tracks across PRs.
//
// Invariant: every function here must bill exactly the same transfers, in
// the same order, as its optimized counterpart. Change them in lockstep.
#pragma once

#include <cstdint>
#include <vector>

#include "ir/exec.h"
#include "ir/ir.h"
#include "runtime/managed_array.h"
#include "sim/platform.h"

namespace accmg::runtime::reference {

/// Element-at-a-time dirty-bit propagation: snapshot each sender's dirty
/// elements one by one, bill per dirty chunk, apply per element to every
/// receiver. Mirrors CommManager::PropagateReplicated, including its
/// snapshot-at-call-time semantics and the ready_at/stream scheduling knobs
/// of the async pipeline.
void PropagateReplicated(sim::Platform& platform,
                         const std::vector<int>& devices, ManagedArray& array,
                         double ready_at = 0,
                         sim::Stream stream = sim::Stream::kDefault);

/// Per-record write-miss replay grouped by owner in ascending owner order.
/// Mirrors CommManager::ReplayWriteMisses.
void ReplayWriteMisses(sim::Platform& platform,
                       const std::vector<int>& devices, ManagedArray& array,
                       double ready_at = 0,
                       sim::Stream stream = sim::Stream::kDefault);

/// Serial pairwise-tree reduction combine (same combination order as the
/// optimized path so floating-point results match bitwise), applied with
/// plain loops. Mirrors runtime::CombineArrayReduction.
void CombineArrayReduction(
    sim::Platform& platform, const std::vector<int>& devices,
    ManagedArray& dest, ir::RedOp op, ir::ValType type, std::int64_t lower,
    std::int64_t length,
    const std::vector<const std::vector<std::uint64_t>*>& partials,
    double ready_at = 0, sim::Stream stream = sim::Stream::kDefault);

}  // namespace accmg::runtime::reference
