#include "runtime/cpu_executor.h"

#include <algorithm>
#include <bit>
#include <cstring>
#include <mutex>

#include "common/error.h"
#include "ir/exec.h"

namespace accmg::runtime {

using translator::EvalIndexExpr;
using translator::HostArray;
using translator::HostEnv;
using translator::TypedValue;

CpuExecutor::CpuExecutor(sim::Platform& platform) : platform_(platform) {}

void CpuExecutor::RunOffload(const translator::LoopOffload& offload,
                             HostEnv& env, const HostArrayResolver& resolve) {
  const std::int64_t lower = EvalIndexExpr(*offload.lower_bound, env);
  std::int64_t upper = EvalIndexExpr(*offload.upper_bound, env);
  if (offload.upper_inclusive) ++upper;
  const std::int64_t total = std::max<std::int64_t>(0, upper - lower);

  ir::KernelExec exec(offload.kernel);
  exec.iteration_offset = lower;

  for (std::size_t s = 0; s < offload.scalars.size(); ++s) {
    const TypedValue value = env.GetScalar(*offload.scalars[s].decl);
    exec.scalar_values[s] = ir::EncodeScalar(offload.kernel.scalars[s].type,
                                             value.AsDouble(), value.AsInt());
  }

  std::vector<HostArray> arrays(offload.arrays.size());
  for (std::size_t a = 0; a < offload.arrays.size(); ++a) {
    arrays[a] = resolve(*offload.arrays[a].decl);
    ir::ArrayBinding& binding = exec.bindings[a];
    binding.data = static_cast<std::byte*>(arrays[a].data);
    binding.lo = 0;
    binding.hi = arrays[a].count;
    binding.write_lo = 0;
    binding.write_hi = arrays[a].count;
    binding.logical_size = arrays[a].count;
  }

  for (std::size_t r = 0; r < offload.array_reds.size(); ++r) {
    const auto& red = offload.array_reds[r];
    const HostArray dest = resolve(*red.decl);
    exec.array_red_lower[r] =
        red.lower != nullptr ? EvalIndexExpr(*red.lower, env) : 0;
    exec.array_red_length[r] =
        red.length != nullptr ? EvalIndexExpr(*red.length, env)
                              : dest.count - exec.array_red_lower[r];
  }
  exec.ResetOutputs();

  sim::KernelStats stats;
  std::mutex stats_mutex;
  if (total > 0) {
    platform_.workers().ParallelForChunks(
        0, total, [&](std::int64_t lo, std::int64_t hi, std::size_t) {
          sim::KernelStats local;
          exec.Execute(lo, hi, local);
          std::lock_guard<std::mutex> lock(stats_mutex);
          stats += local;
        });
  }

  // Simulated CPU time: roofline against the CpuSpec.
  const auto& cpu = platform_.host_spec();
  const double compute_s =
      static_cast<double>(stats.instructions) / cpu.instr_per_sec;
  const double memory_s =
      static_cast<double>(stats.bytes_read + stats.bytes_written) /
      cpu.mem_bandwidth_bps;
  platform_.clock().AddSerial(sim::TimeCategory::kHostCompute,
                              std::max(compute_s, memory_s));

  // Scalar reductions.
  for (std::size_t r = 0; r < offload.scalar_reds.size(); ++r) {
    const auto& red = offload.scalar_reds[r];
    const auto& slot = offload.kernel.scalar_reductions[r];
    const TypedValue initial = env.GetScalar(*red.decl);
    std::uint64_t acc;
    if (ir::IsFloat(slot.type)) {
      const double d = slot.type == ir::ValType::kF32
                           ? static_cast<float>(initial.AsDouble())
                           : initial.AsDouble();
      acc = slot.type == ir::ValType::kF32
                ? std::bit_cast<std::uint32_t>(static_cast<float>(d))
                : std::bit_cast<std::uint64_t>(d);
    } else {
      acc = slot.type == ir::ValType::kI32
                ? static_cast<std::uint32_t>(
                      static_cast<std::int32_t>(initial.AsInt()))
                : static_cast<std::uint64_t>(initial.AsInt());
    }
    acc = ir::CombineRaw(slot.op, slot.type, acc,
                         exec.scalar_red_results()[r]);
    TypedValue result;
    if (ir::IsFloat(slot.type)) {
      const double v = slot.type == ir::ValType::kF32
                           ? std::bit_cast<float>(
                                 static_cast<std::uint32_t>(acc))
                           : std::bit_cast<double>(acc);
      result = TypedValue::OfDouble(v, slot.type);
    } else {
      const std::int64_t v =
          slot.type == ir::ValType::kI32
              ? static_cast<std::int32_t>(static_cast<std::uint32_t>(acc))
              : static_cast<std::int64_t>(acc);
      result = TypedValue::OfInt(v, slot.type);
    }
    env.SetScalar(*red.decl, result);
  }

  // Array reductions fold straight into host memory.
  for (std::size_t r = 0; r < offload.array_reds.size(); ++r) {
    const auto& red = offload.array_reds[r];
    const auto& slot = offload.kernel.array_reductions[r];
    const HostArray dest = resolve(*red.decl);
    const std::size_t elem = ir::ValTypeSize(slot.type);
    auto* base = static_cast<std::byte*>(dest.data);
    const auto& partial = exec.array_red_partials()[r];
    for (std::size_t j = 0; j < partial.size(); ++j) {
      const std::size_t index =
          static_cast<std::size_t>(exec.array_red_lower[r]) + j;
      std::uint64_t current = 0;
      std::memcpy(&current, base + index * elem, elem);
      const std::uint64_t merged =
          ir::CombineRaw(slot.op, slot.type, current, partial[j]);
      std::memcpy(base + index * elem, &merged, elem);
    }
  }
}

}  // namespace accmg::runtime
