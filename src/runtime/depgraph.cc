#include "runtime/depgraph.h"

#include <algorithm>

#include "common/error.h"

namespace accmg::runtime {

namespace {

/// ceil(a / b) for b >= 1 and any a.
std::int64_t CeilDiv(std::int64_t a, std::int64_t b) {
  return a >= 0 ? (a + b - 1) / b : -((-a) / b);
}

/// Per-offload use summary of one array. A reduction destination counts as
/// both a read and a write: the combined result folds into the pre-loop
/// value, so it must observe every earlier write and be observed by every
/// later read.
struct Use {
  bool reads = false;
  bool writes = false;
};

Use UseOf(const translator::ArrayConfig& config) {
  Use use;
  use.reads = config.is_read || config.is_reduction_dest;
  use.writes = config.is_written || config.is_reduction_dest;
  return use;
}

}  // namespace

const char* DepKindName(DepKind kind) {
  switch (kind) {
    case DepKind::kRAW:
      return "RAW";
    case DepKind::kWAR:
      return "WAR";
    case DepKind::kWAW:
      return "WAW";
  }
  return "?";
}

std::vector<int> DepGraph::Successors(int from) const {
  std::vector<int> result;
  for (const DepEdge& edge : edges) {
    if (edge.from == from) result.push_back(edge.to);
  }
  std::sort(result.begin(), result.end());
  result.erase(std::unique(result.begin(), result.end()), result.end());
  return result;
}

std::vector<DepEdge> DepGraph::IncomingEdges(int to) const {
  std::vector<DepEdge> result;
  for (const DepEdge& edge : edges) {
    if (edge.to == to) result.push_back(edge);
  }
  return result;
}

bool DepGraph::HasEdge(int from, int to) const {
  for (const DepEdge& edge : edges) {
    if (edge.from == from && edge.to == to) return true;
  }
  return false;
}

std::vector<const frontend::VarDecl*> DepGraph::ReadsFrom(int from,
                                                          int to) const {
  std::vector<const frontend::VarDecl*> result;
  for (const DepEdge& edge : edges) {
    if (edge.from != from || edge.to != to) continue;
    if (edge.kind != DepKind::kRAW) continue;
    if (std::find(result.begin(), result.end(), edge.decl) == result.end()) {
      result.push_back(edge.decl);
    }
  }
  return result;
}

DepGraph BuildDepGraph(const translator::CompiledFunction& fn) {
  DepGraph graph;
  graph.num_offloads = static_cast<int>(fn.offloads.size());
  for (std::size_t i = 0; i < fn.offloads.size(); ++i) {
    const translator::LoopOffload& earlier = fn.offloads[i];
    for (std::size_t j = i + 1; j < fn.offloads.size(); ++j) {
      const translator::LoopOffload& later = fn.offloads[j];
      for (const auto& earlier_config : earlier.arrays) {
        // Keyed on the resolved VarDecl: two configs whose names collide
        // (shadowing) are distinct arrays and carry no dependence.
        const translator::ArrayConfig* later_config =
            later.FindArray(*earlier_config.decl);
        if (later_config == nullptr) continue;
        const Use a = UseOf(earlier_config);
        const Use b = UseOf(*later_config);
        auto emit = [&](DepKind kind) {
          graph.edges.push_back(DepEdge{earlier.id, later.id,
                                        earlier_config.decl, kind});
        };
        if (a.writes && b.reads) emit(DepKind::kRAW);
        if (a.reads && b.writes) emit(DepKind::kWAR);
        if (a.writes && b.writes) emit(DepKind::kWAW);
      }
    }
  }
  return graph;
}

SplitPlan ComputeBoundarySplit(const std::vector<ArraySplitInput>& arrays,
                               std::size_t device_index,
                               std::size_t num_devices, std::int64_t size) {
  SplitPlan plan;
  if (num_devices < 2 || size <= 0) return plan;

  bool any_halo = false;
  std::int64_t lead = 0;
  std::int64_t trail = 0;
  for (const ArraySplitInput& array : arrays) {
    if (!array.distributed) continue;
    // The conservative vetoes apply to EVERY distributed array, including
    // no-halo ones: an array with clamped (inexact) ownership boundaries or
    // unboundable writes poisons the whole split even if it never triggers
    // an exchange itself, because its writes can land in slices of *other*
    // arrays' owned segments that the exchange reads. Checking them only on
    // halo-carrying arrays let a fused offload (which merges arrays with
    // different localaccess windows) skip the veto and split unsoundly.
    if (!array.boundaries_exact) return plan;  // iteration<->element map broken
    const std::int64_t s = std::max<std::int64_t>(1, array.stride);
    // Writes the analysis cannot bound (non-affine, or marching with a
    // different coefficient than the ownership stride) could land anywhere
    // in the owned segment, including the slices a neighbour reads as halo
    // — no interior can be carved out.
    if (array.is_written &&
        (!array.has_affine_writes || array.write_coeff != s)) {
      return plan;
    }
    if (array.left == 0 && array.right == 0) continue;  // no halo exchange
    any_halo = true;

    // Boundary iterations must contain (a) every iteration whose read
    // window [s*i - left, s*(i+1) - 1 + right] reaches outside the owned
    // segment, and (b) every iteration whose writes can land in an
    // exchange-sensitive owned slice — [b_lo, b_lo + right) feeds the left
    // neighbour's halo, [b_hi - left, b_hi) the right neighbour's.
    std::int64_t a_lead = CeilDiv(array.left, s);
    std::int64_t a_trail = CeilDiv(array.right, s);
    if (array.is_written) {
      a_lead = std::max(
          a_lead, CeilDiv(array.right - array.write_min_off, s));
      a_trail = std::max(
          a_trail,
          std::max<std::int64_t>(0,
                                 (array.left + array.write_max_off) / s));
    }
    lead = std::max(lead, a_lead);
    trail = std::max(trail, a_trail);
  }
  if (!any_halo) return plan;

  // Edge devices have no neighbour on one side.
  if (device_index == 0) lead = 0;
  if (device_index + 1 == num_devices) trail = 0;
  if (lead + trail >= size || (lead == 0 && trail == 0)) return plan;

  plan.split = true;
  plan.lead = lead;
  plan.trail = trail;
  return plan;
}

}  // namespace accmg::runtime
