#include "runtime/managed_array.h"

#include <algorithm>
#include <cstring>

#include "common/error.h"

namespace accmg::runtime {

const char* PlacementName(Placement p) {
  switch (p) {
    case Placement::kHostOnly: return "host-only";
    case Placement::kReplicated: return "replicated";
    case Placement::kDistributed: return "distributed";
  }
  return "?";
}

ManagedArray::ManagedArray(std::string name, ir::ValType elem,
                           std::int64_t count, void* host_data,
                           int num_devices)
    : name_(std::move(name)),
      elem_(elem),
      count_(count),
      host_data_(host_data),
      shards_(static_cast<std::size_t>(num_devices)) {
  ACCMG_REQUIRE(count > 0, "managed array '" + name_ + "' has no elements");
  ACCMG_REQUIRE(host_data != nullptr,
                "managed array '" + name_ + "' lacks host storage");
}

int ManagedArray::OwnerOf(std::int64_t i) const {
  for (std::size_t d = 0; d < shards_.size(); ++d) {
    if (shards_[d].valid && shards_[d].owned.Contains(i)) {
      return static_cast<int>(d);
    }
  }
  return -1;
}

std::size_t ManagedArray::UserBytes() const {
  std::size_t total = 0;
  for (const auto& shard : shards_) {
    if (shard.data != nullptr) total += shard.data->size_bytes();
  }
  return total;
}

std::size_t ManagedArray::SystemBytes() const {
  std::size_t total = 0;
  for (const auto& shard : shards_) {
    if (shard.dirty1 != nullptr) total += shard.dirty1->size_bytes();
    if (shard.dirty2 != nullptr) total += shard.dirty2->size_bytes();
    if (shard.staging != nullptr) total += shard.staging->size_bytes();
    if (shard.miss_capacity != nullptr) {
      total += shard.miss_capacity->size_bytes();
    }
  }
  return total;
}

void DeviceShard::Release() {
  data.reset();
  dirty1.reset();
  dirty2.reset();
  staging.reset();
  miss_capacity.reset();
  miss.records.clear();
  loaded = Range{};
  owned = Range{};
  valid = false;
  chunk_elems = 0;
}

void ManagedArray::DropDeviceState() {
  for (auto& shard : shards_) shard.Release();
  placement_ = Placement::kHostOnly;
}

void ManagedArray::SnapshotAuthoritative(std::byte* out) const {
  std::memcpy(out, host_data_, total_bytes());
  if (host_valid_) return;
  const std::size_t esize = elem_size();
  if (placement_ == Placement::kDistributed) {
    for (const DeviceShard& shard : shards_) {
      if (!shard.valid || shard.data == nullptr) continue;
      const Range overlay{std::max(shard.owned.lo, shard.loaded.lo),
                          std::min(shard.owned.hi, shard.loaded.hi)};
      if (overlay.empty()) continue;
      std::memcpy(out + overlay.lo * static_cast<std::int64_t>(esize),
                  shard.data->bytes().data() +
                      (overlay.lo - shard.loaded.lo) *
                          static_cast<std::int64_t>(esize),
                  static_cast<std::size_t>(overlay.size()) * esize);
    }
  } else {
    for (const DeviceShard& shard : shards_) {
      if (!shard.valid || shard.data == nullptr || shard.loaded.empty()) {
        continue;
      }
      std::memcpy(out + shard.loaded.lo * static_cast<std::int64_t>(esize),
                  shard.data->bytes().data(),
                  static_cast<std::size_t>(shard.loaded.size()) * esize);
      break;  // any one valid replica is authoritative
    }
  }
}

}  // namespace accmg::runtime
