#include "runtime/host_interp.h"

#include <algorithm>
#include <functional>
#include <unordered_set>

#include "common/error.h"
#include "common/log.h"
#include "common/trace.h"
#include "frontend/sema.h"
#include "runtime/recovery.h"
#include "translator/type_map.h"

namespace accmg::runtime {

using frontend::As;
using frontend::DataClauseKind;
using frontend::Directive;
using frontend::DirectiveKind;
using frontend::Expr;
using frontend::ExprKind;
using frontend::Stmt;
using frontend::StmtKind;
using frontend::VarDecl;
using translator::EvalHostExpr;
using translator::EvalIndexExpr;
using translator::HostArray;
using translator::HostEnv;
using translator::TypedValue;

namespace {

/// Collects the managed-array decls a host statement reads/writes (shallow:
/// does not descend into nested statements — callers sync per statement).
void CollectHostArrayUse(const Stmt& stmt,
                         std::unordered_set<const VarDecl*>& reads,
                         std::unordered_set<const VarDecl*>& writes) {
  std::function<void(const Expr&)> walk = [&](const Expr& expr) {
    switch (expr.kind) {
      case ExprKind::kSubscript: {
        const auto& s = As<frontend::SubscriptExpr>(expr);
        reads.insert(As<frontend::VarRef>(*s.base).decl);
        walk(*s.index);
        break;
      }
      case ExprKind::kUnary:
        walk(*As<frontend::UnaryExpr>(expr).operand);
        break;
      case ExprKind::kBinary:
        walk(*As<frontend::BinaryExpr>(expr).lhs);
        walk(*As<frontend::BinaryExpr>(expr).rhs);
        break;
      case ExprKind::kCall:
        for (const auto& arg : As<frontend::CallExpr>(expr).args) walk(*arg);
        break;
      case ExprKind::kCast:
        walk(*As<frontend::CastExpr>(expr).operand);
        break;
      case ExprKind::kConditional: {
        const auto& c = As<frontend::ConditionalExpr>(expr);
        walk(*c.cond);
        walk(*c.then_expr);
        walk(*c.else_expr);
        break;
      }
      default:
        break;
    }
  };
  switch (stmt.kind) {
    case StmtKind::kDecl:
      if (As<frontend::DeclStmt>(stmt).init != nullptr) {
        walk(*As<frontend::DeclStmt>(stmt).init);
      }
      break;
    case StmtKind::kAssign: {
      const auto& assign = As<frontend::AssignStmt>(stmt);
      walk(*assign.value);
      if (assign.target->kind == ExprKind::kSubscript) {
        const auto& s = As<frontend::SubscriptExpr>(*assign.target);
        writes.insert(As<frontend::VarRef>(*s.base).decl);
        walk(*s.index);
        if (assign.op != frontend::AssignOp::kAssign) {
          reads.insert(As<frontend::VarRef>(*s.base).decl);
        }
      }
      break;
    }
    case StmtKind::kExpr:
      if (As<frontend::ExprStmt>(stmt).expr != nullptr) {
        walk(*As<frontend::ExprStmt>(stmt).expr);
      }
      break;
    case StmtKind::kIf:
      walk(*As<frontend::IfStmt>(stmt).cond);
      break;
    case StmtKind::kFor: {
      const auto& f = As<frontend::ForStmt>(stmt);
      if (f.cond != nullptr) walk(*f.cond);
      break;
    }
    case StmtKind::kWhile:
      walk(*As<frontend::WhileStmt>(stmt).cond);
      break;
    case StmtKind::kReturn:
      if (As<frontend::ReturnStmt>(stmt).value != nullptr) {
        walk(*As<frontend::ReturnStmt>(stmt).value);
      }
      break;
    default:
      break;
  }
}

}  // namespace

HostInterpreter::HostInterpreter(ProgramRunner& runner,
                                 const translator::CompiledFunction& fn)
    : runner_(runner), fn_(fn) {
  sim::Platform& platform = *runner_.config_.platform;
  if (runner_.config_.use_cpu) {
    cpu_ = std::make_unique<CpuExecutor>(platform);
  } else {
    // An explicit device lease (service/arena.h) overrides the default
    // [0, num_gpus) prefix; the Executor validates the ids.
    std::vector<int> devices = runner_.config_.devices;
    if (devices.empty()) {
      ACCMG_REQUIRE(runner_.config_.num_gpus >= 1 &&
                        runner_.config_.num_gpus <= platform.num_devices(),
                    "num_gpus out of range for the platform");
      for (int d = 0; d < runner_.config_.num_gpus; ++d) devices.push_back(d);
    }
    gpu_ = std::make_unique<Executor>(platform, runner_.config_.options,
                                      std::move(devices));
    if (runner_.config_.options.async_pipeline) {
      depgraph_ = BuildDepGraph(fn_);
      gpu_->set_depgraph(&depgraph_);
    }
  }
}

bool HostInterpreter::AsyncPipeline() const {
  return gpu_ != nullptr && gpu_->options().async_pipeline;
}

const VarDecl* HostInterpreter::FindParam(const std::string& name) const {
  for (const auto& param : fn_.function->params) {
    if (param->name == name) return param.get();
  }
  return nullptr;
}

translator::HostArray HostInterpreter::HostArrayOf(const VarDecl& decl) {
  auto it = runner_.array_bindings_.find(decl.name);
  ACCMG_REQUIRE(it != runner_.array_bindings_.end(),
                "no host binding for array parameter '" + decl.name + "'");
  return it->second;
}

ManagedArray* HostInterpreter::FindManaged(const VarDecl& decl) {
  auto it = managed_.find(decl.id);
  return it == managed_.end() ? nullptr : it->second.get();
}

ManagedArray& HostInterpreter::Managed(const VarDecl& decl) {
  ManagedArray* existing = FindManaged(decl);
  ACCMG_CHECK(existing != nullptr,
              "array '" + decl.name + "' is not in a data region");
  return *existing;
}

RunReport HostInterpreter::Run() {
  trace::JobScope job_scope(runner_.config_.options.job_id);
  trace::Span run_span("run:" + fn_.function->name, trace::category::kHost);
  sim::Platform& platform = *runner_.config_.platform;

  // On a shared platform other jobs' accounting must survive this run, so
  // instead of resetting we snapshot and bill deltas (see RunConfig).
  const bool shared = runner_.config_.shared_platform;
  sim::TimeBreakdown time_before;
  // Billing is keyed on the ORIGINAL lease: fault recovery may shrink the
  // executor's device set mid-run, and a dead device's counters stopped
  // advancing at its death, so the full-lease delta stays exact.
  std::vector<int> lease_devices;
  std::vector<sim::PlatformCounters> device_before;
  if (shared) {
    time_before = platform.clock().breakdown();
    if (gpu_ != nullptr) {
      lease_devices = gpu_->devices();
      for (const int d : lease_devices) {
        device_before.push_back(platform.device_counters(d));
      }
    }
  } else {
    platform.ResetAccounting();
  }
  report_ = RunReport{};
  if (gpu_ != nullptr) gpu_->BeginRun();

  // Bind parameters.
  for (const auto& param : fn_.function->params) {
    if (param->type.is_pointer) {
      const HostArray host = HostArrayOf(*param);
      env_.BindArray(*param, host);
    } else {
      auto it = runner_.scalar_bindings_.find(param->name);
      ACCMG_REQUIRE(it != runner_.scalar_bindings_.end(),
                    "no binding for scalar parameter '" + param->name + "'");
      env_.SetScalar(*param, it->second);
    }
  }

  for (const auto& stmt : fn_.function->body->body) {
    if (ExecStmt(*stmt) == Flow::kReturn) break;
  }

  // Drain pipelined communication the program never waited on, so the
  // report's simulated time covers the full schedule.
  if (gpu_ != nullptr) gpu_->FinishPendingComm();

  // Any data regions still open (shouldn't happen) — close them.
  // Record final scalar values for ScalarAfterRun.
  runner_.scalar_results_.clear();
  for (const auto& param : fn_.function->params) {
    if (!param->type.is_pointer && env_.HasScalar(*param)) {
      runner_.scalar_results_[param->name] = env_.GetScalar(*param);
    }
  }

  if (shared) {
    report_.time = platform.clock().breakdown();
    for (std::size_t c = 0; c < report_.time.seconds.size(); ++c) {
      report_.time.seconds[c] -= time_before.seconds[c];
    }
    // Per-device deltas over the lease: exact billing even while other
    // jobs run on the remaining devices (sim::Platform::device_counters).
    if (gpu_ != nullptr) {
      for (std::size_t i = 0; i < lease_devices.size(); ++i) {
        report_.counters +=
            platform.device_counters(lease_devices[i]) - device_before[i];
      }
    }
  } else {
    report_.time = platform.clock().breakdown();
    report_.counters = platform.counters();
  }
  report_.total_seconds = report_.time.Total();
  if (gpu_ != nullptr) {
    report_.loader = gpu_->loader().stats();
    report_.comm = gpu_->comm().stats();
    report_.kernel_executions = gpu_->stats().offload_runs;
    if (gpu_->validator() != nullptr) {
      report_.validator = gpu_->validator()->stats();
    }
  }
  return report_;
}

HostInterpreter::Flow HostInterpreter::ExecStmt(const Stmt& stmt) {
  // Per-statement interrupt point: a watchdog cancel or an expired
  // simulated deadline surfaces here as JobTimeoutError even when the
  // program never offloads again.
  if (gpu_ != nullptr) gpu_->CheckInterrupts();

  // 1. Directives that wrap or precede the statement.
  std::vector<RegionEntry> region;
  bool has_data_region = false;
  for (const auto& directive : stmt.directives) {
    switch (directive.kind) {
      case DirectiveKind::kData:
        if (gpu_ != nullptr) {
          EnterDataRegion(directive, region);
          has_data_region = true;
        }
        break;
      case DirectiveKind::kUpdate:
        if (gpu_ != nullptr) ApplyUpdate(directive);
        break;
      case DirectiveKind::kEnterData:
        if (gpu_ != nullptr) EnterDataUnstructured(directive);
        break;
      case DirectiveKind::kExitData:
        if (gpu_ != nullptr) ExitDataUnstructured(directive);
        break;
      default:
        break;  // parallel/loop/localaccess handled via offload table
    }
  }

  const Flow flow = ExecBody(stmt);

  if (has_data_region) ExitDataRegion(region);
  return flow;
}

HostInterpreter::Flow HostInterpreter::ExecBody(const Stmt& stmt) {
  // A loop the mid-end fused into a preceding offload already ran as part
  // of that offload's kernel; its statement is a no-op here.
  if (fn_.fused_away.count(&stmt) != 0) return Flow::kNext;

  // Offloaded loop?
  auto offload_it = fn_.offload_of_stmt.find(&stmt);
  if (offload_it != fn_.offload_of_stmt.end()) {
    RunOffloadStmt(As<frontend::ForStmt>(stmt), offload_it->second);
    return Flow::kNext;
  }

  // Host statement: keep host copies coherent first.
  if (gpu_ != nullptr) SyncForHostAccess(stmt);

  switch (stmt.kind) {
    case StmtKind::kDecl: {
      const auto& decl_stmt = As<frontend::DeclStmt>(stmt);
      TypedValue value{};
      const ir::ValType t =
          translator::TypedValue::OfInt(0).type;  // placeholder
      (void)t;
      if (decl_stmt.init != nullptr) {
        value = EvalHostExpr(*decl_stmt.init, env_);
      }
      // Convert to the declared type.
      if (frontend::IsFloatType(decl_stmt.decl->type.scalar)) {
        value = TypedValue::OfDouble(
            value.AsDouble(),
            translator::ToValType(decl_stmt.decl->type.scalar));
      } else {
        value = TypedValue::OfInt(
            value.AsInt(), translator::ToValType(decl_stmt.decl->type.scalar));
      }
      env_.SetScalar(*decl_stmt.decl, value);
      return Flow::kNext;
    }
    case StmtKind::kAssign:
      ExecAssign(As<frontend::AssignStmt>(stmt));
      return Flow::kNext;
    case StmtKind::kExpr:
      if (As<frontend::ExprStmt>(stmt).expr != nullptr) {
        EvalHostExpr(*As<frontend::ExprStmt>(stmt).expr, env_);
      }
      return Flow::kNext;
    case StmtKind::kIf: {
      const auto& if_stmt = As<frontend::IfStmt>(stmt);
      if (EvalHostExpr(*if_stmt.cond, env_).AsInt() != 0) {
        return ExecStmt(*if_stmt.then_stmt);
      }
      if (if_stmt.else_stmt != nullptr) return ExecStmt(*if_stmt.else_stmt);
      return Flow::kNext;
    }
    case StmtKind::kFor: {
      const auto& for_stmt = As<frontend::ForStmt>(stmt);
      if (for_stmt.init != nullptr) ExecStmt(*for_stmt.init);
      while (for_stmt.cond == nullptr ||
             EvalHostExpr(*for_stmt.cond, env_).AsInt() != 0) {
        // Re-sync per iteration: the loop condition and body may touch
        // managed arrays whose device copies advanced.
        const Flow flow = ExecStmt(*for_stmt.body);
        if (flow == Flow::kBreak) break;
        if (flow == Flow::kReturn) return Flow::kReturn;
        if (for_stmt.step != nullptr) ExecStmt(*for_stmt.step);
        if (gpu_ != nullptr && for_stmt.cond != nullptr) {
          SyncForHostAccess(stmt);
        }
      }
      return Flow::kNext;
    }
    case StmtKind::kWhile: {
      const auto& while_stmt = As<frontend::WhileStmt>(stmt);
      bool first = true;
      while (true) {
        if (!(first && while_stmt.is_do_while) &&
            EvalHostExpr(*while_stmt.cond, env_).AsInt() == 0) {
          break;
        }
        first = false;
        const Flow flow = ExecStmt(*while_stmt.body);
        if (flow == Flow::kBreak) break;
        if (flow == Flow::kReturn) return Flow::kReturn;
        if (gpu_ != nullptr) SyncForHostAccess(stmt);
      }
      return Flow::kNext;
    }
    case StmtKind::kCompound:
      for (const auto& child : As<frontend::CompoundStmt>(stmt).body) {
        const Flow flow = ExecStmt(*child);
        if (flow != Flow::kNext) return flow;
      }
      return Flow::kNext;
    case StmtKind::kReturn:
      return Flow::kReturn;
    case StmtKind::kBreak:
      return Flow::kBreak;
    case StmtKind::kContinue:
      return Flow::kContinue;
  }
  return Flow::kNext;
}

void HostInterpreter::ExecAssign(const frontend::AssignStmt& stmt) {
  TypedValue value = EvalHostExpr(*stmt.value, env_);
  if (stmt.target->kind == ExprKind::kVarRef) {
    const auto& ref = As<frontend::VarRef>(*stmt.target);
    TypedValue result = value;
    if (stmt.op != frontend::AssignOp::kAssign) {
      const TypedValue current = env_.GetScalar(*ref.decl);
      const bool fp = ir::IsFloat(current.type);
      double d = current.AsDouble();
      std::int64_t i = current.AsInt();
      switch (stmt.op) {
        case frontend::AssignOp::kAddAssign:
          d += value.AsDouble();
          i += value.AsInt();
          break;
        case frontend::AssignOp::kSubAssign:
          d -= value.AsDouble();
          i -= value.AsInt();
          break;
        case frontend::AssignOp::kMulAssign:
          d *= value.AsDouble();
          i *= value.AsInt();
          break;
        case frontend::AssignOp::kDivAssign:
          d /= value.AsDouble();
          if (value.AsInt() != 0) i /= value.AsInt();
          break;
        default:
          break;
      }
      result = fp ? TypedValue::OfDouble(d, current.type)
                  : TypedValue::OfInt(i, current.type);
    } else {
      const ir::ValType t = translator::ToValType(ref.decl->type.scalar);
      result = ir::IsFloat(t) ? TypedValue::OfDouble(value.AsDouble(), t)
                              : TypedValue::OfInt(value.AsInt(), t);
    }
    env_.SetScalar(*ref.decl, result);
    return;
  }

  const auto& subscript = As<frontend::SubscriptExpr>(*stmt.target);
  const auto& base = As<frontend::VarRef>(*subscript.base);
  const HostArray array = env_.GetArray(*base.decl);
  const std::int64_t index = EvalIndexExpr(*subscript.index, env_);
  if (stmt.op != frontend::AssignOp::kAssign) {
    // Compound: read-modify-write on the host element.
    HostEnv scratch;
    const TypedValue current = EvalHostExpr(*stmt.target, env_);
    (void)scratch;
    double d = current.AsDouble();
    std::int64_t i = current.AsInt();
    switch (stmt.op) {
      case frontend::AssignOp::kAddAssign:
        d += value.AsDouble();
        i += value.AsInt();
        break;
      case frontend::AssignOp::kSubAssign:
        d -= value.AsDouble();
        i -= value.AsInt();
        break;
      case frontend::AssignOp::kMulAssign:
        d *= value.AsDouble();
        i *= value.AsInt();
        break;
      case frontend::AssignOp::kDivAssign:
        d /= value.AsDouble();
        if (value.AsInt() != 0) i /= value.AsInt();
        break;
      default:
        break;
    }
    value = ir::IsFloat(current.type) ? TypedValue::OfDouble(d, current.type)
                                      : TypedValue::OfInt(i, current.type);
  }
  translator::WriteHostElement(array, index, value, base.name);
}

void HostInterpreter::RunOffloadStmt(const frontend::ForStmt& loop,
                                     int offload_index) {
  (void)loop;  // the offload table already carries everything we need
  const translator::LoopOffload& offload =
      fn_.offloads[static_cast<std::size_t>(offload_index)];

  if (cpu_ != nullptr) {
    cpu_->RunOffload(offload, env_, [this](const VarDecl& decl) {
      return HostArrayOf(decl);
    });
    return;
  }

  // Arrays used by the kernel but not in any enclosing data region get an
  // implicit per-region lifetime (OpenACC present_or_copy semantics).
  std::vector<const VarDecl*> implicit;
  for (const auto& config : offload.arrays) {
    if (FindManaged(*config.decl) == nullptr) {
      const HostArray host = HostArrayOf(*config.decl);
      managed_[config.decl->id] = std::make_unique<ManagedArray>(
          config.decl->name, host.elem, host.count, host.data,
          runner_.config_.platform->num_devices());
      implicit.push_back(config.decl);
    }
  }

  gpu_->RunOffload(offload, env_, [this](const VarDecl& decl) -> ManagedArray& {
    return Managed(decl);
  });
  UpdateMemoryPeaks();

  if (AsyncPipeline()) {
    // The implicit-array gathers below are host accesses; everything else
    // stays in flight so the next offload can pipeline behind it.
    if (!implicit.empty()) {
      gpu_->FinishPendingComm();
      double end = runner_.config_.platform->clock().Now();
      for (const VarDecl* decl : implicit) {
        ManagedArray& array = *managed_[decl->id];
        end = std::max(end, GuardedGather(array));
        array.DropDeviceState();
        managed_.erase(decl->id);
      }
      runner_.config_.platform->clock().AdvanceTo(
          end, sim::TimeCategory::kCpuGpu);
    }
    return;
  }
  for (const VarDecl* decl : implicit) {
    ManagedArray& array = *managed_[decl->id];
    GuardedGather(array);
    array.DropDeviceState();
    managed_.erase(decl->id);
  }
  runner_.config_.platform->Barrier(sim::TimeCategory::kCpuGpu);
}

void HostInterpreter::EnterDataRegion(const Directive& directive,
                                      std::vector<RegionEntry>& entries) {
  for (const auto& clause : directive.data_clauses) {
    for (const auto& section : clause.sections) {
      const VarDecl* decl = FindParam(section.name);
      ACCMG_REQUIRE(decl != nullptr && decl->type.is_pointer,
                    "data clause names unknown array '" + section.name + "'");
      if (clause.kind == frontend::DataClauseKind::kPresent) {
        // present(): assert an enclosing region established the lifetime.
        ACCMG_REQUIRE(FindManaged(*decl) != nullptr,
                      "present clause: array '" + section.name +
                          "' is not in any enclosing data region");
        continue;
      }
      ACCMG_REQUIRE(FindManaged(*decl) == nullptr,
                    "array '" + section.name +
                        "' is already in an enclosing data region");
      const HostArray host = HostArrayOf(*decl);
      std::int64_t count = host.count;
      std::int64_t shape_rows = 0, shape_cols = 0;
      if (section.lower != nullptr) {
        const std::int64_t lo = EvalIndexExpr(*section.lower, env_);
        ACCMG_REQUIRE(lo == 0, "array sections must start at 0");
        count = EvalIndexExpr(*section.length, env_);
        if (section.lower2 != nullptr) {
          // 2-D section u[0:rows][0:cols]: a row-major grid flattened to
          // rows*cols contiguous elements.
          const std::int64_t lo2 = EvalIndexExpr(*section.lower2, env_);
          ACCMG_REQUIRE(lo2 == 0, "array sections must start at 0");
          shape_rows = count;
          shape_cols = EvalIndexExpr(*section.length2, env_);
          ACCMG_REQUIRE(shape_rows >= 1 && shape_cols >= 1,
                        "2-D array section dimensions must be >= 1");
          count = shape_rows * shape_cols;
        }
        ACCMG_REQUIRE(count >= 1 && count <= host.count,
                      "array section exceeds the bound host storage");
      }
      managed_[decl->id] = std::make_unique<ManagedArray>(
          decl->name, host.elem, count, host.data,
          runner_.config_.platform->num_devices());
      if (shape_cols > 0) managed_[decl->id]->SetShape(shape_rows, shape_cols);
      entries.push_back(RegionEntry{decl, clause.kind, false});
    }
  }
}

void HostInterpreter::ExitDataRegion(const std::vector<RegionEntry>& entries) {
  // Region exit is a host synchronization point: outstanding pipelined
  // communication must land before the arrays are gathered and released.
  if (AsyncPipeline()) gpu_->FinishPendingComm();
  double end = runner_.config_.platform->clock().Now();
  for (const auto& entry : entries) {
    ManagedArray& array = Managed(*entry.decl);
    if (entry.clause == DataClauseKind::kCopy ||
        entry.clause == DataClauseKind::kCopyOut) {
      end = std::max(end, GuardedGather(array));
    }
    array.DropDeviceState();
    managed_.erase(entry.decl->id);
  }
  if (AsyncPipeline()) {
    runner_.config_.platform->clock().AdvanceTo(end,
                                                sim::TimeCategory::kCpuGpu);
  } else {
    runner_.config_.platform->Barrier(sim::TimeCategory::kCpuGpu);
  }
}

void HostInterpreter::EnterDataUnstructured(const Directive& directive) {
  // `enter data`: lifetimes begin here and persist until a matching
  // `exit data` (or the end of the run).
  std::vector<RegionEntry> entries;
  EnterDataRegion(directive, entries);
  // The entries map is all we need — unstructured lifetimes are tracked by
  // the managed_ registry itself; nothing closes them automatically.
}

void HostInterpreter::ExitDataUnstructured(const Directive& directive) {
  if (AsyncPipeline()) gpu_->FinishPendingComm();
  double end = runner_.config_.platform->clock().Now();
  for (const auto& clause : directive.data_clauses) {
    for (const auto& section : clause.sections) {
      const VarDecl* decl = FindParam(section.name);
      ACCMG_REQUIRE(decl != nullptr,
                    "exit data names unknown array '" + section.name + "'");
      ManagedArray* array = FindManaged(*decl);
      ACCMG_REQUIRE(array != nullptr,
                    "exit data: '" + section.name +
                        "' is not in any data region");
      if (clause.kind == frontend::DataClauseKind::kCopyOut) {
        end = std::max(end, GuardedGather(*array));
      }
      array->DropDeviceState();
      managed_.erase(decl->id);
    }
  }
  if (AsyncPipeline()) {
    runner_.config_.platform->clock().AdvanceTo(end,
                                                sim::TimeCategory::kCpuGpu);
  } else {
    runner_.config_.platform->Barrier(sim::TimeCategory::kCpuGpu);
  }
}

void HostInterpreter::ApplyUpdate(const Directive& directive) {
  if (AsyncPipeline()) gpu_->FinishPendingComm();
  double end = runner_.config_.platform->clock().Now();
  for (const auto& update : directive.updates) {
    for (const auto& section : update.sections) {
      const VarDecl* decl = FindParam(section.name);
      ACCMG_REQUIRE(decl != nullptr,
                    "update names unknown array '" + section.name + "'");
      ManagedArray* array = FindManaged(*decl);
      if (array == nullptr) continue;  // not on any device: nothing to move
      if (update.to_host) {
        end = std::max(end, GuardedGather(*array));
      } else {
        end = std::max(end, GuardedScatter(*array));
      }
    }
  }
  if (AsyncPipeline()) {
    runner_.config_.platform->clock().AdvanceTo(end,
                                                sim::TimeCategory::kCpuGpu);
  } else {
    runner_.config_.platform->Barrier(sim::TimeCategory::kCpuGpu);
  }
}

void HostInterpreter::SyncForHostAccess(const Stmt& stmt) {
  std::unordered_set<const VarDecl*> reads;
  std::unordered_set<const VarDecl*> writes;
  CollectHostArrayUse(stmt, reads, writes);
  for (const VarDecl* decl : writes) reads.insert(decl);
  bool moved = false;
  double end = runner_.config_.platform->clock().Now();
  for (const VarDecl* decl : reads) {
    ManagedArray* array = FindManaged(*decl);
    if (array == nullptr) continue;
    if (!array->host_valid()) {
      // First gather is a host synchronization point under the pipeline.
      if (!moved && AsyncPipeline()) gpu_->FinishPendingComm();
      end = std::max(end, GuardedGather(*array));
      moved = true;
    }
  }
  for (const VarDecl* decl : writes) {
    ManagedArray* array = FindManaged(*decl);
    if (array == nullptr) continue;
    // Host becomes authoritative; device copies are stale.
    for (int d = 0; d < array->num_shards(); ++d) {
      array->shard(d).valid = false;
    }
    array->set_host_valid(true);
  }
  if (moved) {
    if (AsyncPipeline()) {
      runner_.config_.platform->clock().AdvanceTo(
          end, sim::TimeCategory::kCpuGpu);
    } else {
      runner_.config_.platform->Barrier(sim::TimeCategory::kCpuGpu);
    }
  }
}

double HostInterpreter::GuardedGather(ManagedArray& array) {
  sim::Platform& platform = *runner_.config_.platform;
  if (!platform.faults().armed()) {
    return gpu_->loader().GatherToHost(array);
  }
  return RetryTransfer(platform, gpu_->options(), "gather",
                       [&] { return gpu_->loader().GatherToHost(array); });
}

double HostInterpreter::GuardedScatter(ManagedArray& array) {
  sim::Platform& platform = *runner_.config_.platform;
  if (!platform.faults().armed()) {
    return gpu_->loader().ScatterFromHost(array);
  }
  return RetryTransfer(platform, gpu_->options(), "scatter",
                       [&] { return gpu_->loader().ScatterFromHost(array); });
}

void HostInterpreter::UpdateMemoryPeaks() {
  std::size_t user = 0;
  std::size_t system = 0;
  for (const auto& [id, array] : managed_) {
    user += array->UserBytes();
    system += array->SystemBytes();
  }
  report_.peak_user_bytes = std::max(report_.peak_user_bytes, user);
  report_.peak_system_bytes = std::max(report_.peak_system_bytes, system);
}

}  // namespace accmg::runtime
