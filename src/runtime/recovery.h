// Fault recovery for the multi-GPU executor (docs/ROBUSTNESS.md).
//
// Three pieces the executor and host interpreter share:
//
//  * RecoveryMetrics — the recovery.* registry counters. Every injected
//    fault is attributed to exactly one of retries / degraded / failures
//    at the catch point that handles it (delta accounting against
//    FaultInjector::injected()), so the acceptance identity
//      fault.injected == recovery.retries + recovery.degraded
//                        + recovery.failures
//    holds at all times.
//
//  * OffloadCheckpoint — the managed-state image an offload is rolled back
//    to before a retry: the authoritative bytes of every array the offload
//    touches (via ManagedArray::SnapshotAuthoritative — direct memory
//    reads, billing-neutral) plus the pre-loop values of scalar reduction
//    variables (RunOffloadImpl writes them into the host env before the
//    fault can be detected). Restore drops all device state, so the retry
//    re-loads from the restored host image — which is also what makes a
//    retry after a device loss correct: the dead device's shards are gone
//    and the survivors reload their (re)partitioned segments from host.
//
//  * RetryTransfer — wraps an idempotent host<->device transfer (gathers
//    and scatters issued by the host interpreter outside any offload) in
//    the same capped-exponential-backoff retry loop the executor uses for
//    whole offloads. The wrapped op must be restartable as-is: Copy* bills
//    (and injects) before moving bytes, so a faulted transfer leaves the
//    destination untouched, and GatherToHost prefers replicas on alive
//    devices — which is why even a DeviceLostError is worth retrying here.
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

#include "common/metrics.h"
#include "runtime/managed_array.h"
#include "runtime/options.h"
#include "runtime/validator.h"
#include "sim/platform.h"
#include "translator/eval.h"
#include "translator/offload.h"

namespace accmg::runtime {

struct RecoveryMetrics {
  metrics::Counter& retries;        ///< injected faults absorbed by a retry
  metrics::Counter& degraded;       ///< injected faults absorbed by a shrink
  metrics::Counter& failures;       ///< injected faults escalated to caller
  metrics::Counter& retry_rounds;   ///< retry attempts performed
  metrics::Counter& device_shrinks; ///< devices dropped from live sets
  metrics::Counter& checkpoints;    ///< offload checkpoints captured
  metrics::Counter& rollbacks;      ///< checkpoint restores performed
  metrics::Histogram& backoff_sim_seconds;

  static RecoveryMetrics& Get();
};

/// Pre-offload image of everything RunOffloadImpl may have mutated by the
/// time a fault surfaces. Captured once per offload; Restore may run any
/// number of times and always returns to the captured state.
class OffloadCheckpoint {
 public:
  /// Snapshots the authoritative bytes of every array in `offload.arrays`
  /// and the current values of its scalar reduction variables.
  void Capture(const translator::LoopOffload& offload,
               translator::HostEnv& env, const ArrayResolver& resolve);

  /// Rolls managed state back: authoritative bytes into the host image,
  /// all device shards dropped (placement -> kHostOnly, host valid), and
  /// scalar reduction variables reset in `env`. The next attempt reloads
  /// devices from the restored host copy.
  void Restore(translator::HostEnv& env) const;

 private:
  struct ArrayImage {
    ManagedArray* array = nullptr;
    std::vector<std::byte> bytes;
  };
  struct ScalarImage {
    const frontend::VarDecl* decl = nullptr;
    translator::TypedValue value;
  };

  std::vector<ArrayImage> arrays_;
  std::vector<ScalarImage> scalar_reds_;
};

/// Runs `op` (returning a simulated end time) under the fault-retry policy
/// of `options`: on FaultError, bills exponential backoff on the simulated
/// clock and retries up to options.fault_max_retries times before
/// escalating. Attributes every injected fault to recovery.retries or
/// recovery.failures (delta accounting). `what` labels trace/log output.
double RetryTransfer(sim::Platform& platform, const ExecOptions& options,
                     const char* what, const std::function<double()>& op);

}  // namespace accmg::runtime
