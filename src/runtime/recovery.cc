#include "runtime/recovery.h"

#include <algorithm>
#include <cstring>
#include <string>

#include "common/error.h"
#include "common/trace.h"
#include "sim/clock.h"

namespace accmg::runtime {

RecoveryMetrics& RecoveryMetrics::Get() {
  auto& reg = metrics::Registry::Global();
  static RecoveryMetrics m{
      reg.counter("recovery.retries"),
      reg.counter("recovery.degraded"),
      reg.counter("recovery.failures"),
      reg.counter("recovery.retry_rounds"),
      reg.counter("recovery.device_shrinks"),
      reg.counter("recovery.checkpoints"),
      reg.counter("recovery.rollbacks"),
      reg.histogram("recovery.backoff_sim_seconds"),
  };
  return m;
}

void OffloadCheckpoint::Capture(const translator::LoopOffload& offload,
                                translator::HostEnv& env,
                                const ArrayResolver& resolve) {
  arrays_.clear();
  scalar_reds_.clear();
  for (const auto& config : offload.arrays) {
    ManagedArray& array = resolve(*config.decl);
    ArrayImage image;
    image.array = &array;
    image.bytes.resize(array.total_bytes());
    array.SnapshotAuthoritative(image.bytes.data());
    arrays_.push_back(std::move(image));
  }
  for (const auto& red : offload.scalar_reds) {
    scalar_reds_.push_back({red.decl, env.GetScalar(*red.decl)});
  }
  RecoveryMetrics::Get().checkpoints.Add();
}

void OffloadCheckpoint::Restore(translator::HostEnv& env) const {
  for (const auto& image : arrays_) {
    ManagedArray& array = *image.array;
    std::memcpy(array.host_data(), image.bytes.data(), image.bytes.size());
    // Dropping all shards (even valid survivors) is what makes restore
    // simple and always correct: the retry reloads every participant from
    // the restored host image, so no stale partial writes can linger on a
    // device that ran part of the faulted attempt.
    array.DropDeviceState();
    array.set_host_valid(true);
  }
  for (const auto& scalar : scalar_reds_) {
    env.SetScalar(*scalar.decl, scalar.value);
  }
  RecoveryMetrics::Get().rollbacks.Add();
}

double RetryTransfer(sim::Platform& platform, const ExecOptions& options,
                     const char* what, const std::function<double()>& op) {
  auto& recovery = RecoveryMetrics::Get();
  const sim::FaultInjector& faults = platform.faults();
  double backoff = options.fault_backoff_s;
  for (int attempt = 0;; ++attempt) {
    const std::uint64_t injected_before = faults.injected();
    try {
      return op();
    } catch (const FaultError& fault) {
      // DeviceLostError is retryable here too: the transfer is idempotent
      // (billing precedes the memcpy) and a retried gather prefers replicas
      // on alive devices, so losing one source mid-gather is survivable.
      const std::uint64_t delta = faults.injected() - injected_before;
      if (attempt >= options.fault_max_retries) {
        recovery.failures.Add(delta);
        throw;
      }
      recovery.retries.Add(delta);
      recovery.retry_rounds.Add();
      recovery.backoff_sim_seconds.Observe(backoff);
      trace::Span span(std::string("retry:") + what, "recovery");
      platform.clock().AddSerial(sim::TimeCategory::kOther, backoff);
      backoff = std::min(backoff * 2, options.fault_backoff_cap_s);
    }
  }
}

}  // namespace accmg::runtime
