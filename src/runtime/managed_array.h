// Device placement state for one user array across the multi-GPU node.
//
// A ManagedArray tracks where the authoritative bytes currently live (host,
// replicated on devices, or distributed across owner segments) and owns all
// device allocations associated with the array: data segments ("User" memory
// in the paper's Fig. 9) and dirty-bit / write-miss buffers ("System").
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "ir/exec.h"
#include "ir/ir.h"
#include "sim/platform.h"

namespace accmg::runtime {

enum class Placement : int {
  kHostOnly,     ///< no device copy is current
  kReplicated,   ///< every participating device holds the full array
  kDistributed,  ///< devices hold owner segments (+ halos)
};

const char* PlacementName(Placement p);

/// Closed interval arithmetic helper for element ranges [lo, hi).
struct Range {
  std::int64_t lo = 0;
  std::int64_t hi = 0;
  std::int64_t size() const { return hi > lo ? hi - lo : 0; }
  bool empty() const { return hi <= lo; }
  bool Contains(std::int64_t i) const { return i >= lo && i < hi; }
  friend bool operator==(const Range&, const Range&) = default;
};

/// Per-device placement state.
struct DeviceShard {
  std::unique_ptr<sim::DeviceBuffer> data;  ///< segment [loaded.lo, loaded.hi)
  Range loaded;   ///< readable range resident in `data`
  Range owned;    ///< writable (authoritative) sub-range
  bool valid = false;

  // System memory (replicated arrays only): two-level dirty bits plus the
  // staging area used to receive peers' dirty chunks during the merge.
  std::unique_ptr<sim::DeviceBuffer> dirty1;
  std::unique_ptr<sim::DeviceBuffer> dirty2;
  std::unique_ptr<sim::DeviceBuffer> staging;
  std::int64_t chunk_elems = 0;

  // System memory (distributed arrays with unproven writes): miss buffer.
  std::unique_ptr<sim::DeviceBuffer> miss_capacity;
  ir::MissBuffer miss;

  /// Frees every allocation held by this shard and resets it to the
  /// "nothing resident" state. Used when a device leaves the participating
  /// set of an array (the shard would otherwise keep its stale segment —
  /// leaked device memory and a stale-but-valid replica hazard).
  void Release();
};

class ManagedArray {
 public:
  ManagedArray(std::string name, ir::ValType elem, std::int64_t count,
               void* host_data, int num_devices);

  const std::string& name() const { return name_; }
  ir::ValType elem() const { return elem_; }
  std::int64_t count() const { return count_; }
  std::size_t elem_size() const { return ir::ValTypeSize(elem_); }
  std::size_t total_bytes() const { return elem_size() * count_; }
  void* host_data() { return host_data_; }
  const void* host_data() const { return host_data_; }

  Placement placement() const { return placement_; }
  void set_placement(Placement p) { placement_ = p; }

  /// 2-D shape metadata, set by a two-dimensional data-clause section
  /// (`u[0:n][0:m]`): the array is a row-major rows x cols grid. Purely
  /// descriptive — placement and transfer machinery stay 1-D over the
  /// flattened elements (row blocks are contiguous) — but the validator uses
  /// it to attribute divergences to a (row, col) coordinate and the loader's
  /// scatter/gather naturally become row-block operations. rows()/cols()
  /// are 0 for 1-D arrays.
  void SetShape(std::int64_t rows, std::int64_t cols) {
    rows_ = rows;
    cols_ = cols;
  }
  std::int64_t rows() const { return rows_; }
  std::int64_t cols() const { return cols_; }
  bool is_2d() const { return cols_ > 0; }

  bool host_valid() const { return host_valid_; }
  void set_host_valid(bool v) { host_valid_ = v; }

  DeviceShard& shard(int device) { return shards_[static_cast<size_t>(device)]; }
  const DeviceShard& shard(int device) const {
    return shards_[static_cast<size_t>(device)];
  }
  int num_shards() const { return static_cast<int>(shards_.size()); }

  /// Device that owns global element index `i` under the current distributed
  /// placement; -1 when no owner is found.
  int OwnerOf(std::int64_t i) const;

  /// Bytes currently allocated for user data across devices.
  std::size_t UserBytes() const;
  /// Bytes currently allocated for runtime bookkeeping across devices.
  std::size_t SystemBytes() const;

  /// Releases every device allocation and resets placement to host-only
  /// (does NOT copy anything back — callers gather first when needed).
  void DropDeviceState();

  /// Writes the authoritative full-array image into `out` (total_bytes()
  /// long): the host bytes, overlaid — when the host image is stale — with
  /// the valid owner segments (distributed) or any one valid replica
  /// (replicated). Reads device buffers directly, so it never perturbs
  /// billed counters or the simulated clock; this is what both the
  /// validator's golden pre-image and the executor's recovery checkpoint
  /// are built from.
  void SnapshotAuthoritative(std::byte* out) const;

 private:
  std::string name_;
  ir::ValType elem_;
  std::int64_t count_;
  void* host_data_;
  std::int64_t rows_ = 0;
  std::int64_t cols_ = 0;
  Placement placement_ = Placement::kHostOnly;
  bool host_valid_ = true;
  std::vector<DeviceShard> shards_;
};

}  // namespace accmg::runtime
