// Public entry points of the accmg system.
//
// AccProgram owns a translated OpenACC program (AST + per-loop kernels).
// ProgramRunner binds host data to a program's parameters and executes a
// function either on the simulated multi-GPU platform (the paper's proposal)
// or on the CPU baseline, returning the simulated-time report used by the
// benchmarks.
//
// Typical use:
//   auto program = AccProgram::FromSource("saxpy", source_text);
//   auto platform = sim::MakeDesktopMachine(2);
//   ProgramRunner runner(program, {.platform = platform.get(), .num_gpus = 2});
//   runner.BindArray("x", x.data(), ir::ValType::kF32, n);
//   runner.BindScalar("n", static_cast<std::int64_t>(n));
//   RunReport report = runner.Run("saxpy");
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "frontend/ast.h"
#include "runtime/comm_manager.h"
#include "runtime/data_loader.h"
#include "runtime/executor.h"
#include "runtime/options.h"
#include "sim/platform.h"
#include "translator/eval.h"
#include "translator/offload.h"

namespace accmg::runtime {

class AccProgram {
 public:
  /// Parses, analyzes and translates `source`. Throws CompileError.
  static AccProgram FromSource(const std::string& name,
                               const std::string& source);
  /// Same, with explicit translation knobs (e.g. disabling the static
  /// directive checker to study what the runtime validator then catches).
  static AccProgram FromSource(const std::string& name,
                               const std::string& source,
                               const translator::CompileOptions& options);

  /// Process-wide compile cache keyed by (name, options.opt_level). The app
  /// runners compile their embedded sources at most once per optimization
  /// level and reuse the result across benchmark repetitions. Thread-safe.
  /// Callers must pass the same `source` for a given `name`.
  static const AccProgram& Cached(const std::string& name,
                                  const std::string& source,
                                  const translator::CompileOptions& options);

  const frontend::Program& ast() const { return *ast_; }
  const translator::CompiledProgram& compiled() const { return compiled_; }
  const std::string& name() const { return name_; }

 private:
  AccProgram() = default;
  std::string name_;
  std::unique_ptr<frontend::Program> ast_;
  translator::CompiledProgram compiled_;
};

struct RunConfig {
  sim::Platform* platform = nullptr;  ///< required
  int num_gpus = 1;                   ///< devices [0, num_gpus)
  bool use_cpu = false;               ///< run the "OpenMP" CPU baseline

  /// Explicit device ids to run on; when non-empty it overrides `num_gpus`
  /// and the run uses exactly these devices. The resident service leases
  /// disjoint subsets of one long-lived platform to concurrent jobs
  /// (service/arena.h) and passes each job's lease here.
  std::vector<int> devices;

  /// Run against a platform shared with other jobs: skip the global
  /// ResetAccounting() and bill the report from snapshot deltas of the
  /// per-device counters of `devices` instead of the global counters.
  /// With disjoint leases the billed bytes/transfer counts are exact
  /// (sim::Platform::device_counters); the TimeBreakdown is this job's
  /// window over the shared clock, so wall-style comparisons across
  /// concurrent jobs should use counters, not time.
  bool shared_platform = false;

  ExecOptions options;
};

struct RunReport {
  /// Simulated time spent in parallel regions, by category (Fig. 8).
  sim::TimeBreakdown time;
  double total_seconds = 0;

  /// Peak device memory split into user data and runtime bookkeeping
  /// (Fig. 9's "User" / "System" bars), summed over participating GPUs.
  std::size_t peak_user_bytes = 0;
  std::size_t peak_system_bytes = 0;

  LoaderStats loader;
  CommStats comm;
  sim::PlatformCounters counters;
  std::uint64_t kernel_executions = 0;  ///< Table II column C

  /// Populated when ExecOptions::validate is on (all zeros otherwise).
  ValidatorStats validator;
};

class ProgramRunner {
 public:
  ProgramRunner(const AccProgram& program, RunConfig config);
  ~ProgramRunner();

  ProgramRunner(const ProgramRunner&) = delete;
  ProgramRunner& operator=(const ProgramRunner&) = delete;

  /// Binds host storage to an array parameter (matched by name in the
  /// function being run). The storage must outlive Run().
  void BindArray(const std::string& name, void* data, ir::ValType elem,
                 std::int64_t count);

  void BindScalar(const std::string& name, std::int64_t value);
  void BindScalar(const std::string& name, double value);
  void BindScalarF32(const std::string& name, float value);

  /// Executes `function`. Array results land in the bound host storage.
  RunReport Run(const std::string& function);

  /// Final value of a scalar parameter/local of the last Run (for outputs
  /// computed via reductions, e.g. kmeans' delta).
  translator::TypedValue ScalarAfterRun(const std::string& name) const;

 private:
  friend class HostInterpreter;
  const AccProgram& program_;
  RunConfig config_;
  std::unordered_map<std::string, translator::HostArray> array_bindings_;
  std::unordered_map<std::string, translator::TypedValue> scalar_bindings_;
  std::unordered_map<std::string, translator::TypedValue> scalar_results_;
};

}  // namespace accmg::runtime
