// CPU execution of offloaded loops — the "OpenMP" baseline of the paper's
// Fig. 7. Runs the same KernelIR on a host thread pool over host arrays,
// with simulated time charged to the host compute category using the
// platform's CpuSpec (gcc -O2 with 12/24 OpenMP threads in the paper).
#pragma once

#include <functional>

#include "sim/platform.h"
#include "translator/eval.h"
#include "translator/offload.h"

namespace accmg::runtime {

using HostArrayResolver =
    std::function<translator::HostArray(const frontend::VarDecl&)>;

class CpuExecutor {
 public:
  explicit CpuExecutor(sim::Platform& platform);

  /// Runs the loop over host memory on the worker pool; scalar reduction
  /// results are folded back into `env`, array reductions into host memory.
  void RunOffload(const translator::LoopOffload& offload,
                  translator::HostEnv& env, const HostArrayResolver& resolve);

 private:
  sim::Platform& platform_;
};

}  // namespace accmg::runtime
