#include "runtime/executor.h"

#include <algorithm>
#include <cstring>
#include <exception>
#include <thread>

#include <bit>

#include "common/error.h"
#include "common/log.h"
#include "common/metrics.h"
#include "common/trace.h"
#include "ir/exec.h"
#include "runtime/recovery.h"
#include "runtime/reduction.h"

namespace accmg::runtime {

using translator::EvalIndexExpr;
using translator::HostEnv;
using translator::LoopOffload;
using translator::TypedValue;

namespace {

/// TypedValue -> raw element bits of `type` (as CombineRaw expects).
std::uint64_t ToElementRaw(ir::ValType type, const TypedValue& value) {
  switch (type) {
    case ir::ValType::kI32:
      return static_cast<std::uint32_t>(
          static_cast<std::int32_t>(value.AsInt()));
    case ir::ValType::kI64:
      return static_cast<std::uint64_t>(value.AsInt());
    case ir::ValType::kF32: {
      const float f = static_cast<float>(value.AsDouble());
      return std::bit_cast<std::uint32_t>(f);
    }
    case ir::ValType::kF64:
      return std::bit_cast<std::uint64_t>(value.AsDouble());
  }
  return 0;
}

/// Raw element bits of `type` -> TypedValue.
TypedValue FromElementRaw(ir::ValType type, std::uint64_t raw) {
  switch (type) {
    case ir::ValType::kI32:
      return TypedValue::OfInt(
          static_cast<std::int32_t>(static_cast<std::uint32_t>(raw)),
          ir::ValType::kI32);
    case ir::ValType::kI64:
      return TypedValue::OfInt(static_cast<std::int64_t>(raw),
                               ir::ValType::kI64);
    case ir::ValType::kF32:
      return TypedValue::OfDouble(
          std::bit_cast<float>(static_cast<std::uint32_t>(raw)),
          ir::ValType::kF32);
    case ir::ValType::kF64:
      return TypedValue::OfDouble(std::bit_cast<double>(raw),
                                  ir::ValType::kF64);
  }
  return TypedValue{};
}

}  // namespace

Executor::Executor(sim::Platform& platform, ExecOptions options,
                   std::vector<int> devices)
    : platform_(platform),
      options_(options),
      devices_(std::move(devices)),
      loader_(platform, options_, devices_),
      comm_(platform, options_, devices_) {
  if (options_.trace) trace::Tracer::Global().set_enabled(true);
  ACCMG_REQUIRE(!devices_.empty(), "executor needs at least one device");
  for (int d : devices_) {
    ACCMG_REQUIRE(d >= 0 && d < platform.num_devices(),
                  "executor device id out of range");
  }
  if (options_.validate) {
    validator_ = std::make_unique<Validator>(platform_, options_, devices_);
  }
}

void Executor::FinishPendingComm() {
  if (!options_.async_pipeline) return;
  platform_.clock().AdvanceTo(pending_comm_end_, sim::TimeCategory::kGpuGpu);
  ready_.clear();
}

void Executor::RunOffload(const LoopOffload& offload, HostEnv& env,
                          const ArrayResolver& resolve) {
  CheckInterrupts();
  if (platform_.faults().armed()) {
    RunOffloadWithRecovery(offload, env, resolve);
    return;
  }
  RunOffloadAttempt(offload, env, resolve);
}

void Executor::RunOffloadAttempt(const LoopOffload& offload, HostEnv& env,
                                 const ArrayResolver& resolve) {
  if (validator_ == nullptr) {
    RunOffloadImpl(offload, env, resolve);
    return;
  }
  validator_->BeginOffload(offload, env, resolve);
  try {
    RunOffloadImpl(offload, env, resolve);
  } catch (const FaultError&) {
    // Injected faults belong to the recovery loop (rollback + retry), not
    // to the validator, which would misreport them as divergences.
    throw;
  } catch (const DeviceError& fault) {
    // On real hardware this is silent corruption; the simulator faults
    // loudly, and the validator attributes it to the running kernel.
    validator_->ReportFault(offload, fault);
  }
  validator_->CheckOffload(offload, env, resolve);
}

void Executor::CheckInterrupts() const {
  if (options_.cancel != nullptr &&
      options_.cancel->load(std::memory_order_relaxed)) {
    throw JobTimeoutError("job cancelled by watchdog (wall-clock timeout)");
  }
  if (options_.deadline_sim_s > 0 &&
      platform_.clock().Now() - run_start_sim_ > options_.deadline_sim_s) {
    throw JobTimeoutError("simulated deadline of " +
                          std::to_string(options_.deadline_sim_s) +
                          "s exceeded");
  }
}

void Executor::ShrinkDevices(const std::vector<int>& lost) {
  // Per-device throughput records are indexed by position in devices_, so a
  // shrink invalidates every measurement; the next execution of each offload
  // re-derives an equal split from the survivor count and re-measures.
  mapper_speed_.clear();
  mapper_last_tasks_.clear();
  for (int d : lost) {
    devices_.erase(std::remove(devices_.begin(), devices_.end(), d),
                   devices_.end());
    loader_.RemoveDevice(d);
    comm_.RemoveDevice(d);
    if (validator_ != nullptr) validator_->RemoveDevice(d);
    RecoveryMetrics::Get().device_shrinks.Add();
    ACCMG_LOG(kWarn) << "device " << d
                     << " lost; continuing on " << devices_.size()
                     << " survivor(s)";
  }
  ACCMG_CHECK(!devices_.empty(),
              "ShrinkDevices must leave at least one survivor");
}

void Executor::RunOffloadWithRecovery(const LoopOffload& offload,
                                      HostEnv& env,
                                      const ArrayResolver& resolve) {
  auto& recovery = RecoveryMetrics::Get();
  const sim::FaultInjector& faults = platform_.faults();

  // Outstanding async communication belongs to earlier offloads; settle it
  // so the checkpoint images a quiescent state.
  FinishPendingComm();

  OffloadCheckpoint checkpoint;
  checkpoint.Capture(offload, env, resolve);

  double backoff = options_.fault_backoff_s;
  int transient_retries = 0;
  for (;;) {
    CheckInterrupts();
    const std::uint64_t injected_before = faults.injected();
    try {
      RunOffloadAttempt(offload, env, resolve);
      return;
    } catch (const FaultError& fault) {
      // Attribute this attempt's injected faults to exactly one recovery
      // bucket below; the delta can be 0 when a dead device merely echoed
      // its earlier loss.
      const std::uint64_t delta = faults.injected() - injected_before;

      // Roll back before deciding anything: partial writes from the failed
      // attempt must never leak into the retry or the caller.
      checkpoint.Restore(env);
      ready_.clear();
      pending_comm_end_ = platform_.clock().Now();

      std::vector<int> lost;
      for (int d : devices_) {
        if (!faults.alive(d)) lost.push_back(d);
      }
      if (!lost.empty()) {
        if (lost.size() == devices_.size()) {
          recovery.failures.Add(delta);
          throw DeviceLostError(lost.front(),
                                "all participating devices lost during '" +
                                    offload.name + "'");
        }
        // A device loss is handled by degrading, not by burning the
        // transient retry budget: shrink onto the survivors and retry
        // immediately — the restored host image repartitions cleanly.
        recovery.degraded.Add(delta);
        ShrinkDevices(lost);
        continue;
      }

      if (transient_retries >= options_.fault_max_retries) {
        recovery.failures.Add(delta);
        throw;
      }
      recovery.retries.Add(delta);
      recovery.retry_rounds.Add();
      recovery.backoff_sim_seconds.Observe(backoff);
      trace::Span span("retry:" + offload.name, "recovery");
      platform_.clock().AddSerial(sim::TimeCategory::kOther, backoff);
      backoff = std::min(backoff * 2, options_.fault_backoff_cap_s);
      ++transient_retries;
    }
  }
}

void Executor::RunOffloadImpl(const LoopOffload& offload, HostEnv& env,
                              const ArrayResolver& resolve) {
  trace::Span offload_span("offload:" + offload.name,
                           trace::category::kOffload);
  const std::int64_t lower = EvalIndexExpr(*offload.lower_bound, env);
  std::int64_t upper = EvalIndexExpr(*offload.upper_bound, env);
  if (offload.upper_inclusive) ++upper;
  const std::int64_t total = std::max<std::int64_t>(0, upper - lower);
  const auto num_devices = static_cast<std::int64_t>(devices_.size());

  // --- 1. Task mapping: equal contiguous division (Section IV-B2),
  // throughput-weighted division from the spec table (extension), or
  // measured-throughput rebalancing from the previous execution's per-device
  // kernel timings (ExecOptions::mapper == kMeasured). ---
  std::vector<Range> tasks(devices_.size());
  bool measured_split = false;
  if (options_.mapper == TaskMapper::kMeasured && devices_.size() > 1 &&
      total > 0 && mapper_speed_.size() == devices_.size()) {
    double total_speed = 0;
    std::vector<double> prefix(devices_.size() + 1, 0);
    for (std::size_t g = 0; g < devices_.size(); ++g) {
      total_speed += mapper_speed_[g];
      prefix[g + 1] = total_speed;
    }
    std::int64_t cursor = 0;
    for (std::size_t g = 0; g < devices_.size(); ++g) {
      const auto hi =
          g + 1 == devices_.size()
              ? total
              : static_cast<std::int64_t>(static_cast<double>(total) *
                                          prefix[g + 1] / total_speed);
      tasks[g] = Range{cursor, std::max(cursor, hi)};
      cursor = tasks[g].hi;
    }
    std::vector<Range>& last = mapper_last_tasks_[offload.id];
    bool same = last.size() == tasks.size();
    for (std::size_t g = 0; same && g < tasks.size(); ++g) {
      same = last[g].lo == tasks[g].lo && last[g].hi == tasks[g].hi;
    }
    if (!same) {
      static metrics::Counter& rebalances =
          metrics::Registry::Global().counter("mapper.rebalances");
      rebalances.Add();
      last = tasks;
    }
    measured_split = true;
    static metrics::Counter& measured_splits =
        metrics::Registry::Global().counter("mapper.measured_splits");
    measured_splits.Add();
  }
  if (measured_split) {
    // Split chosen above from measured per-device throughput.
  } else if (options_.weighted_task_mapping) {
    double total_weight = 0;
    std::vector<double> prefix(devices_.size() + 1, 0);
    for (std::size_t g = 0; g < devices_.size(); ++g) {
      total_weight += platform_.device(devices_[g]).spec().instr_per_sec;
      prefix[g + 1] = total_weight;
    }
    std::int64_t cursor = 0;
    for (std::size_t g = 0; g < devices_.size(); ++g) {
      const auto hi =
          g + 1 == devices_.size()
              ? total
              : static_cast<std::int64_t>(
                    static_cast<double>(total) * prefix[g + 1] / total_weight);
      tasks[g] = Range{cursor, std::max(cursor, hi)};
      cursor = tasks[g].hi;
    }
  } else {
    for (std::int64_t g = 0; g < num_devices; ++g) {
      tasks[static_cast<std::size_t>(g)] =
          Range{total * g / num_devices, total * (g + 1) / num_devices};
    }
  }

  const bool async = options_.async_pipeline;

  // --- 2. Placement requirements per array + data loading. ---
  struct BoundArray {
    ManagedArray* array = nullptr;
    const translator::ArrayConfig* config = nullptr;
    bool distributed = false;
    // Launch-time localaccess values and ownership-boundary exactness, kept
    // for the async pipeline's boundary/interior splitter.
    std::int64_t stride = 1;
    std::int64_t left = 0;
    std::int64_t right = 0;
    bool boundaries_exact = false;
  };
  std::vector<BoundArray> bound;
  bound.reserve(offload.arrays.size());
  double load_end = platform_.clock().Now();

  for (const auto& config : offload.arrays) {
    ManagedArray& array = resolve(*config.decl);
    const auto& param =
        offload.kernel.arrays[static_cast<std::size_t>(
            config.kernel_array_index)];

    ArrayRequirement req;
    req.array = &array;
    req.written = config.is_written;
    req.dirty_tracked = param.dirty_tracked;
    req.miss_checked = param.miss_checked;
    // Reduction destinations stay replicated: the combined result must fold
    // into the pre-kernel value exactly once, which the replica path does.
    req.distributed = options_.honor_localaccess && config.has_localaccess &&
                      !config.is_reduction_dest && num_devices > 1;
    req.read_ranges.resize(devices_.size());
    req.own_ranges.resize(devices_.size());

    BoundArray ba;
    ba.array = &array;
    ba.config = &config;
    ba.distributed = req.distributed;
    if (req.distributed) {
      std::int64_t stride, left, right;
      if (config.cols != nullptr) {
        // 2-D row-block window: the loop iterates rows of a row-major grid,
        // so the element stride is the row length and the halo extents are
        // whole rows. Row blocks are contiguous, which is what lets every
        // 1-D range below (loading, ownership, halo refresh) apply as-is.
        const std::int64_t cols = EvalIndexExpr(*config.cols, env);
        ACCMG_REQUIRE(cols >= 1, "localaccess cols must be >= 1");
        if (array.is_2d()) {
          ACCMG_REQUIRE(cols == array.cols(),
                        "localaccess cols(" + std::to_string(cols) +
                            ") disagrees with the data clause shape of '" +
                            array.name() + "' (" +
                            std::to_string(array.cols()) + " columns)");
        }
        stride = cols;
        left = (config.left != nullptr ? EvalIndexExpr(*config.left, env)
                                       : 0) * cols;
        right = (config.right != nullptr ? EvalIndexExpr(*config.right, env)
                                         : 0) * cols;
      } else {
        stride =
            config.stride != nullptr ? EvalIndexExpr(*config.stride, env) : 1;
        left = config.left != nullptr ? EvalIndexExpr(*config.left, env) : 0;
        right =
            config.right != nullptr ? EvalIndexExpr(*config.right, env) : 0;
      }
      ACCMG_REQUIRE(stride >= 1, "localaccess stride must be >= 1");
      ACCMG_REQUIRE(left >= 0 && right >= 0,
                    "localaccess halo extents must be >= 0");
      // Ownership is a complete partition of [0, count): boundaries at the
      // start of each GPU's first iteration, with the ends pinned to the
      // array bounds so that every element has exactly one owner.
      std::vector<std::int64_t> boundary(devices_.size() + 1);
      boundary[0] = 0;
      bool exact = true;
      for (std::size_t g = 1; g < devices_.size(); ++g) {
        const std::int64_t ideal = stride * (lower + tasks[g].lo);
        boundary[g] = std::clamp<std::int64_t>(ideal, 0, array.count());
        exact &= boundary[g] == ideal;
      }
      boundary[devices_.size()] = array.count();
      for (std::size_t g = 1; g < devices_.size(); ++g) {
        exact &= boundary[g] >= boundary[g - 1];
        boundary[g] = std::max(boundary[g], boundary[g - 1]);
      }
      for (std::size_t g = 0; g < devices_.size(); ++g) {
        const std::int64_t iter_lo = lower + tasks[g].lo;
        const std::int64_t iter_hi = lower + tasks[g].hi;
        Range read{stride * iter_lo - left, stride * iter_hi + right};
        read.lo = std::clamp<std::int64_t>(read.lo, 0, array.count());
        read.hi = std::clamp<std::int64_t>(read.hi, 0, array.count());
        const Range own{boundary[g], boundary[g + 1]};
        // Owner range must be resident: widen the loaded range over it.
        read.lo = std::min(read.lo, own.lo);
        read.hi = std::max(read.hi, own.hi);
        req.read_ranges[g] = read;
        req.own_ranges[g] = own;
      }
      ba.stride = stride;
      ba.left = left;
      ba.right = right;
      ba.boundaries_exact = exact;
    } else {
      for (std::size_t g = 0; g < devices_.size(); ++g) {
        req.read_ranges[g] = Range{0, array.count()};
        req.own_ranges[g] = Range{0, array.count()};
      }
    }
    // Under the pipeline a reload must not race the array's own in-flight
    // exchange; its readiness time is the transfer floor.
    double load_floor = 0;
    if (async) {
      auto it = ready_.find(&array);
      if (it != ready_.end()) {
        load_floor = std::max(it->second.bulk, it->second.halo);
      }
    }
    load_end = std::max(load_end, loader_.EnsurePlacement(req, load_floor));
    bound.push_back(ba);
  }
  if (async) {
    // Only the exposed transfer latency stalls the pipeline — no global
    // resource drain. Steady-state iterations hit the reload-skip cache and
    // pay nothing here.
    platform_.clock().AdvanceTo(load_end, sim::TimeCategory::kCpuGpu);
  } else {
    platform_.Barrier(sim::TimeCategory::kCpuGpu);
  }

  // --- 3. Resolve launch-time values. ---
  std::vector<std::uint64_t> scalar_values(offload.scalars.size());
  for (std::size_t s = 0; s < offload.scalars.size(); ++s) {
    const auto& arg = offload.scalars[s];
    const TypedValue value = env.GetScalar(*arg.decl);
    const ir::ValType t =
        offload.kernel.scalars[s].type;
    scalar_values[s] = ir::EncodeScalar(t, value.AsDouble(), value.AsInt());
  }
  std::vector<std::int64_t> red_lower(offload.array_reds.size(), 0);
  std::vector<std::int64_t> red_length(offload.array_reds.size(), 0);
  for (std::size_t r = 0; r < offload.array_reds.size(); ++r) {
    const auto& red = offload.array_reds[r];
    ManagedArray& dest = resolve(*red.decl);
    red_lower[r] =
        red.lower != nullptr ? EvalIndexExpr(*red.lower, env) : 0;
    red_length[r] = red.length != nullptr
                        ? EvalIndexExpr(*red.length, env)
                        : dest.count() - red_lower[r];
    ACCMG_REQUIRE(red_lower[r] >= 0 &&
                      red_lower[r] + red_length[r] <= dest.count(),
                  "reductiontoarray section outside array '" + dest.name() +
                      "'");
  }

  // --- 3b. Async gates and boundary/interior split plans. ---
  // `bulk_gate` is when every used array's non-halo contents are ready
  // (outstanding dirty merges / miss replays / reduction broadcasts);
  // `halo_gate` additionally waits for in-flight halo refreshes. Interior
  // sub-kernels only touch owned elements, so they start at bulk_gate while
  // the halo exchange of the previous offload is still on the wire — the
  // boundary sub-kernels (and unsplit kernels, which may read halos) gate
  // on halo_gate.
  double bulk_gate = 0;
  double halo_gate = 0;
  if (async) {
    for (const auto& ba : bound) {
      auto it = ready_.find(ba.array);
      if (it == ready_.end()) continue;
      bulk_gate = std::max(bulk_gate, it->second.bulk);
      halo_gate = std::max(halo_gate, it->second.halo);
    }
    halo_gate = std::max(halo_gate, bulk_gate);
    // The wait for bulk readiness is exposed inter-GPU communication time.
    platform_.clock().AdvanceTo(bulk_gate, sim::TimeCategory::kGpuGpu);
  }

  std::vector<SplitPlan> plans(devices_.size());
  if (async && devices_.size() > 1) {
    std::vector<ArraySplitInput> split_inputs;
    for (const auto& ba : bound) {
      if (!ba.distributed) continue;
      ArraySplitInput in;
      in.distributed = true;
      in.is_written = ba.config->is_written;
      in.stride = ba.stride;
      in.left = ba.left;
      in.right = ba.right;
      in.boundaries_exact = ba.boundaries_exact;
      in.has_affine_writes = ba.config->has_affine_writes;
      in.write_coeff = ba.config->write_coeff;
      in.write_min_off = ba.config->write_min_off;
      in.write_max_off = ba.config->write_max_off;
      if (ba.config->cols != nullptr && ba.config->is_written &&
          ba.config->writes_proven_local) {
        // 2-D row-block arrays carry a symbolic row-locality proof instead
        // of const-folded affine write facts: iteration i writes only
        // within its own row [cols*i, cols*i + cols - 1]. Expressed in the
        // split plan's affine terms that is coeff = cols (== ba.stride
        // after launch-time scaling) with offsets [0, cols - 1].
        in.has_affine_writes = true;
        in.write_coeff = ba.stride;
        in.write_min_off = 0;
        in.write_max_off = ba.stride - 1;
      }
      split_inputs.push_back(in);
    }
    for (std::size_t g = 0; g < devices_.size(); ++g) {
      plans[g] = ComputeBoundarySplit(split_inputs, g, devices_.size(),
                                      tasks[g].size());
    }
  }

  // --- 4. Launch kernels (they overlap in simulated time). ---
  // Setup + launches run concurrently, one thread per device: each kernel's
  // functional execution (Platform::LaunchKernel) is itself host work, so
  // device-after-device launching would serialize it on the harness wall
  // clock even though the sim clock already models the overlap. Billing is
  // thread-safe and per-device resources are disjoint, so simulated time is
  // unchanged.
  //
  // Async split: one KernelExec per device runs up to three sub-launches
  // (interior first — it never waits on halos — then the lead and trail
  // boundary windows gated on halo_gate). ResetOutputs is called once, so
  // reduction partials accumulate across the sub-launches exactly as one
  // full-range launch would.
  std::vector<std::unique_ptr<ir::KernelExec>> execs(devices_.size());
  // Measured-mapper epoch: per-device durations are taken against the clock
  // value at launch issue, so loading skew that already advanced the clock
  // is not charged to any one device's kernel speed.
  const double launch_floor = platform_.clock().Now();
  std::vector<double> interior_end(devices_.size(), 0);
  std::vector<double> boundary_end(devices_.size(), 0);
  std::vector<double> device_end(devices_.size(), 0);
  auto launch_device = [&](std::size_t g) {
    auto exec = std::make_unique<ir::KernelExec>(offload.kernel);
    exec->scalar_values = scalar_values;
    exec->iteration_offset = lower + tasks[g].lo;
    exec->array_red_lower = red_lower;
    exec->array_red_length = red_length;
    for (std::size_t a = 0; a < bound.size(); ++a) {
      const BoundArray& ba = bound[a];
      const auto& param = offload.kernel.arrays[a];
      DeviceShard& shard = ba.array->shard(devices_[g]);
      ir::ArrayBinding& binding = exec->bindings[a];
      binding.data = shard.data->bytes().data();
      binding.lo = shard.loaded.lo;
      binding.hi = shard.loaded.hi;
      if (ba.distributed) {
        binding.write_lo = shard.owned.lo;
        binding.write_hi = shard.owned.hi;
      } else {
        binding.write_lo = shard.loaded.lo;
        binding.write_hi = shard.loaded.hi;
      }
      binding.logical_size = ba.array->count();
      if (param.dirty_tracked) {
        binding.dirty.level1 = reinterpret_cast<std::uint8_t*>(
            shard.dirty1->bytes().data());
        binding.dirty.level2 = reinterpret_cast<std::uint8_t*>(
            shard.dirty2->bytes().data());
        binding.dirty.chunk_elems = shard.chunk_elems;
      }
      if (param.miss_checked) binding.miss = &shard.miss;
    }
    exec->ResetOutputs();

    auto sub_launch = [&](std::int64_t first_iter, std::int64_t threads,
                          const char* suffix, double ready_at) {
      sim::KernelLaunch launch;
      launch.body = exec.get();
      launch.num_threads = threads;
      launch.block_size = options_.block_size;
      launch.name = suffix != nullptr ? offload.name + suffix : offload.name;
      launch.ready_at = ready_at;
      exec->iteration_offset = lower + tasks[g].lo + first_iter;
      double end = 0;
      platform_.LaunchKernel(devices_[g], launch, &end);
      return end;
    };

    const SplitPlan& plan = plans[g];
    if (!plan.split) {
      // One full-range launch. Unsplit async kernels may read halo
      // elements, so they gate on halo_gate (zero in sync mode).
      const double end =
          sub_launch(0, tasks[g].size(), nullptr, async ? halo_gate : 0);
      interior_end[g] = end;
      boundary_end[g] = end;
      device_end[g] = end;
    } else {
      const std::int64_t size = tasks[g].size();
      const double iend = sub_launch(
          plan.lead, size - plan.lead - plan.trail, ":interior", 0);
      double bend = iend;
      if (plan.lead > 0) {
        bend = std::max(bend, sub_launch(0, plan.lead, ":lead", halo_gate));
      }
      if (plan.trail > 0) {
        bend = std::max(bend, sub_launch(size - plan.trail, plan.trail,
                                         ":trail", halo_gate));
      }
      interior_end[g] = iend;
      boundary_end[g] = bend;
      device_end[g] = bend;
    }
    execs[g] = std::move(exec);
  };
  if (devices_.size() == 1) {
    launch_device(0);
  } else {
    std::vector<std::exception_ptr> errors(devices_.size());
    std::vector<std::thread> launchers;
    launchers.reserve(devices_.size());
    for (std::size_t g = 0; g < devices_.size(); ++g) {
      launchers.emplace_back([&, g] {
        // Fresh threads don't inherit the caller's thread-local job label;
        // re-establish it so per-device spans stay attributable to the job.
        trace::JobScope job_scope(options_.job_id);
        try {
          launch_device(g);
        } catch (...) {
          errors[g] = std::current_exception();
        }
      });
    }
    for (auto& launcher : launchers) launcher.join();
    for (const auto& error : errors) {
      if (error) std::rethrow_exception(error);
    }
  }
  double kernel_done = 0;
  if (async) {
    // Time up to the slowest interior is kernel execution; any boundary
    // tail beyond it exists only because the boundary waited on an
    // in-flight exchange, so that remainder is exposed GPU-GPU time.
    double interior_max = 0;
    for (std::size_t g = 0; g < devices_.size(); ++g) {
      interior_max = std::max(interior_max, interior_end[g]);
      kernel_done = std::max(kernel_done, device_end[g]);
    }
    platform_.clock().AdvanceTo(interior_max, sim::TimeCategory::kKernel);
    platform_.clock().AdvanceTo(kernel_done,
                                halo_gate > interior_max
                                    ? sim::TimeCategory::kGpuGpu
                                    : sim::TimeCategory::kKernel);
  } else {
    platform_.Barrier(sim::TimeCategory::kKernel);
  }
  ++stats_.offload_runs;
  static metrics::Counter& offload_runs_metric =
      metrics::Registry::Global().counter("executor.offload_runs");
  offload_runs_metric.Add();

  // Fill the shared throughput table from the first equal-split execution
  // whose measurement is usable on every device (each got iterations and
  // its kernel-end timestamp advanced past the launch floor). An unusable
  // measurement — e.g. a range smaller than the device count — leaves the
  // table empty, so the mapper keeps splitting equally and re-measuring
  // until an offload supplies real work on all devices. Once filled the
  // table is frozen: every subsequent offload derives its split from the
  // same numbers, and only a device-set change (ShrinkDevices) clears it.
  if (options_.mapper == TaskMapper::kMeasured && devices_.size() > 1 &&
      total > 0 && mapper_speed_.empty()) {
    std::vector<double> speed(devices_.size(), 0.0);
    bool usable = true;
    for (std::size_t g = 0; g < devices_.size(); ++g) {
      const double duration = device_end[g] - launch_floor;
      const std::int64_t iters = tasks[g].size();
      if (iters > 0 && duration > 0) {
        speed[g] = static_cast<double>(iters) / duration;
      } else {
        usable = false;
      }
    }
    if (usable) mapper_speed_ = std::move(speed);
  }

  // --- 5. Communication step. ---
  // Reduction combines below bill transfers under the reduction category;
  // the comm-manager calls in 5c/5d override it with their own phases.
  trace::PhaseScope reduction_phase(trace::category::kReduction);

  // 5a. Scalar reductions: per-GPU partials come back to the host (a few
  // bytes each) and fold into the variable's pre-loop value. The host
  // consumes the value immediately, so the async pipeline waits for the
  // readback (exposed time is GPU-GPU communication).
  double scalar_red_end = platform_.clock().Now();
  for (std::size_t r = 0; r < offload.scalar_reds.size(); ++r) {
    const auto& red = offload.scalar_reds[r];
    const auto& slot = offload.kernel.scalar_reductions[r];
    const TypedValue initial = env.GetScalar(*red.decl);
    std::uint64_t acc = ToElementRaw(slot.type, initial);
    for (std::size_t g = 0; g < devices_.size(); ++g) {
      acc = ir::CombineRaw(slot.op, slot.type, acc,
                           execs[g]->scalar_red_results()[r]);
      scalar_red_end = std::max(
          scalar_red_end,
          platform_.BillDeviceToHost(devices_[g],
                                     ir::ValTypeSize(slot.type)));
    }
    env.SetScalar(*red.decl, FromElementRaw(slot.type, acc));
  }
  if (async && !offload.scalar_reds.empty()) {
    platform_.clock().AdvanceTo(scalar_red_end, sim::TimeCategory::kGpuGpu);
  }

  // 5b. Array reductions (hierarchical, Section IV-B4): per-GPU dense
  // partials combine pairwise across GPUs (tree order, parallel over element
  // ranges), then the result folds into every replica of the destination.
  for (std::size_t r = 0; r < offload.array_reds.size(); ++r) {
    const auto& red = offload.array_reds[r];
    const auto& slot = offload.kernel.array_reductions[r];
    ManagedArray& dest = resolve(*red.decl);
    std::vector<const std::vector<std::uint64_t>*> partials;
    partials.reserve(devices_.size());
    for (const auto& exec : execs) {
      partials.push_back(&exec->array_red_partials()[r]);
    }
    const double red_end = CombineArrayReduction(
        platform_, devices_, dest, slot.op, slot.type, red_lower[r],
        red_length[r], partials);
    if (async) {
      // Later offloads using the destination gate on the broadcast; the
      // host does not, so the clock is not advanced here.
      ArrayReady& state = ready_[&dest];
      state.bulk = std::max(state.bulk, red_end);
      state.halo = std::max(state.halo, state.bulk);
      pending_comm_end_ = std::max(pending_comm_end_, red_end);
    }
  }

  // 5c. Replicated written arrays: dirty-bit propagation.
  // 5d. Distributed arrays: write-miss replay, then halo refresh.
  //
  // Async issue order is dependence-driven: arrays the next dependent
  // offload reads (depgraph RAW edges) go first, so their transfers grab
  // the copy engines before coherence traffic nothing is waiting on.
  // Billing per array is unchanged — only the order across arrays moves.
  std::vector<std::size_t> comm_order(bound.size());
  for (std::size_t a = 0; a < bound.size(); ++a) comm_order[a] = a;
  if (async && depgraph_ != nullptr) {
    const std::vector<int> succs = depgraph_->Successors(offload.id);
    if (!succs.empty()) {
      const std::vector<const frontend::VarDecl*> next_reads =
          depgraph_->ReadsFrom(offload.id, succs.front());
      std::stable_partition(
          comm_order.begin(), comm_order.end(), [&](std::size_t a) {
            const frontend::VarDecl* decl = bound[a].config->decl;
            return std::find(next_reads.begin(), next_reads.end(), decl) !=
                   next_reads.end();
          });
    }
  }
  const sim::Stream comm_stream =
      async ? sim::Stream::kAsync : sim::Stream::kDefault;
  for (std::size_t a : comm_order) {
    const BoundArray& ba = bound[a];
    const auto& param = offload.kernel.arrays[a];
    double prop_end = 0;
    double miss_end = 0;
    double halo_end = 0;
    if (param.dirty_tracked) {
      prop_end = comm_.PropagateReplicated(*ba.array, async ? kernel_done : 0,
                                           comm_stream);
    }
    if (param.miss_checked) {
      miss_end = comm_.ReplayWriteMisses(*ba.array, async ? kernel_done : 0,
                                         comm_stream);
    }
    if (ba.distributed && ba.config->is_written &&
        !ba.config->is_reduction_dest) {
      double halo_floor = 0;
      if (async) {
        // The refresh reads each owner's exchange-sensitive slices and
        // overwrites halos the old values of which only boundary iterations
        // read — both complete at the boundary sub-kernels (the full kernel
        // where no split happened). Miss replays write owner segments too,
        // so an earlier replay of this array also floors the refresh.
        halo_floor = miss_end;
        for (std::size_t g = 0; g < devices_.size(); ++g) {
          halo_floor = std::max(halo_floor, boundary_end[g]);
        }
      }
      halo_end = comm_.RefreshHalos(*ba.array, halo_floor, comm_stream);
    }
    if (ba.config->is_written) {
      for (int device : devices_) ba.array->shard(device).valid = true;
      ba.array->set_host_valid(false);
    }
    if (async) {
      // Monotonic: a reduction destination already carries its broadcast
      // end from 5b, which must not be lowered.
      ArrayReady& state = ready_[ba.array];
      state.bulk = std::max({state.bulk, kernel_done, prop_end, miss_end});
      state.halo = std::max({state.halo, state.bulk, halo_end});
      pending_comm_end_ = std::max(pending_comm_end_, state.halo);
    }
  }
  if (!async) platform_.Barrier(sim::TimeCategory::kGpuGpu);
}

}  // namespace accmg::runtime
