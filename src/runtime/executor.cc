#include "runtime/executor.h"

#include <algorithm>
#include <cstring>
#include <exception>
#include <thread>

#include <bit>

#include "common/error.h"
#include "common/log.h"
#include "common/metrics.h"
#include "common/trace.h"
#include "ir/exec.h"
#include "runtime/reduction.h"

namespace accmg::runtime {

using translator::EvalIndexExpr;
using translator::HostEnv;
using translator::LoopOffload;
using translator::TypedValue;

namespace {

/// TypedValue -> raw element bits of `type` (as CombineRaw expects).
std::uint64_t ToElementRaw(ir::ValType type, const TypedValue& value) {
  switch (type) {
    case ir::ValType::kI32:
      return static_cast<std::uint32_t>(
          static_cast<std::int32_t>(value.AsInt()));
    case ir::ValType::kI64:
      return static_cast<std::uint64_t>(value.AsInt());
    case ir::ValType::kF32: {
      const float f = static_cast<float>(value.AsDouble());
      return std::bit_cast<std::uint32_t>(f);
    }
    case ir::ValType::kF64:
      return std::bit_cast<std::uint64_t>(value.AsDouble());
  }
  return 0;
}

/// Raw element bits of `type` -> TypedValue.
TypedValue FromElementRaw(ir::ValType type, std::uint64_t raw) {
  switch (type) {
    case ir::ValType::kI32:
      return TypedValue::OfInt(
          static_cast<std::int32_t>(static_cast<std::uint32_t>(raw)),
          ir::ValType::kI32);
    case ir::ValType::kI64:
      return TypedValue::OfInt(static_cast<std::int64_t>(raw),
                               ir::ValType::kI64);
    case ir::ValType::kF32:
      return TypedValue::OfDouble(
          std::bit_cast<float>(static_cast<std::uint32_t>(raw)),
          ir::ValType::kF32);
    case ir::ValType::kF64:
      return TypedValue::OfDouble(std::bit_cast<double>(raw),
                                  ir::ValType::kF64);
  }
  return TypedValue{};
}

}  // namespace

Executor::Executor(sim::Platform& platform, ExecOptions options,
                   std::vector<int> devices)
    : platform_(platform),
      options_(options),
      devices_(std::move(devices)),
      loader_(platform, options_, devices_),
      comm_(platform, options_, devices_) {
  if (options_.trace) trace::Tracer::Global().set_enabled(true);
  ACCMG_REQUIRE(!devices_.empty(), "executor needs at least one device");
  for (int d : devices_) {
    ACCMG_REQUIRE(d >= 0 && d < platform.num_devices(),
                  "executor device id out of range");
  }
  if (options_.validate) {
    validator_ = std::make_unique<Validator>(platform_, options_, devices_);
  }
}

void Executor::RunOffload(const LoopOffload& offload, HostEnv& env,
                          const ArrayResolver& resolve) {
  if (validator_ == nullptr) {
    RunOffloadImpl(offload, env, resolve);
    return;
  }
  validator_->BeginOffload(offload, env, resolve);
  try {
    RunOffloadImpl(offload, env, resolve);
  } catch (const DeviceError& fault) {
    // On real hardware this is silent corruption; the simulator faults
    // loudly, and the validator attributes it to the running kernel.
    validator_->ReportFault(offload, fault);
  }
  validator_->CheckOffload(offload, env, resolve);
}

void Executor::RunOffloadImpl(const LoopOffload& offload, HostEnv& env,
                              const ArrayResolver& resolve) {
  trace::Span offload_span("offload:" + offload.name,
                           trace::category::kOffload);
  const std::int64_t lower = EvalIndexExpr(*offload.lower_bound, env);
  std::int64_t upper = EvalIndexExpr(*offload.upper_bound, env);
  if (offload.upper_inclusive) ++upper;
  const std::int64_t total = std::max<std::int64_t>(0, upper - lower);
  const auto num_devices = static_cast<std::int64_t>(devices_.size());

  // --- 1. Task mapping: equal contiguous division (Section IV-B2), or
  // throughput-weighted division (extension) for heterogeneous GPUs. ---
  std::vector<Range> tasks(devices_.size());
  if (options_.weighted_task_mapping) {
    double total_weight = 0;
    std::vector<double> prefix(devices_.size() + 1, 0);
    for (std::size_t g = 0; g < devices_.size(); ++g) {
      total_weight += platform_.device(devices_[g]).spec().instr_per_sec;
      prefix[g + 1] = total_weight;
    }
    std::int64_t cursor = 0;
    for (std::size_t g = 0; g < devices_.size(); ++g) {
      const auto hi =
          g + 1 == devices_.size()
              ? total
              : static_cast<std::int64_t>(
                    static_cast<double>(total) * prefix[g + 1] / total_weight);
      tasks[g] = Range{cursor, std::max(cursor, hi)};
      cursor = tasks[g].hi;
    }
  } else {
    for (std::int64_t g = 0; g < num_devices; ++g) {
      tasks[static_cast<std::size_t>(g)] =
          Range{total * g / num_devices, total * (g + 1) / num_devices};
    }
  }

  // --- 2. Placement requirements per array + data loading. ---
  struct BoundArray {
    ManagedArray* array = nullptr;
    const translator::ArrayConfig* config = nullptr;
    bool distributed = false;
  };
  std::vector<BoundArray> bound;
  bound.reserve(offload.arrays.size());

  for (const auto& config : offload.arrays) {
    ManagedArray& array = resolve(*config.decl);
    const auto& param =
        offload.kernel.arrays[static_cast<std::size_t>(
            config.kernel_array_index)];

    ArrayRequirement req;
    req.array = &array;
    req.written = config.is_written;
    req.dirty_tracked = param.dirty_tracked;
    req.miss_checked = param.miss_checked;
    // Reduction destinations stay replicated: the combined result must fold
    // into the pre-kernel value exactly once, which the replica path does.
    req.distributed = options_.honor_localaccess && config.has_localaccess &&
                      !config.is_reduction_dest && num_devices > 1;
    req.read_ranges.resize(devices_.size());
    req.own_ranges.resize(devices_.size());

    if (req.distributed) {
      const std::int64_t stride =
          config.stride != nullptr ? EvalIndexExpr(*config.stride, env) : 1;
      const std::int64_t left =
          config.left != nullptr ? EvalIndexExpr(*config.left, env) : 0;
      const std::int64_t right =
          config.right != nullptr ? EvalIndexExpr(*config.right, env) : 0;
      ACCMG_REQUIRE(stride >= 1, "localaccess stride must be >= 1");
      ACCMG_REQUIRE(left >= 0 && right >= 0,
                    "localaccess halo extents must be >= 0");
      // Ownership is a complete partition of [0, count): boundaries at the
      // start of each GPU's first iteration, with the ends pinned to the
      // array bounds so that every element has exactly one owner.
      std::vector<std::int64_t> boundary(devices_.size() + 1);
      boundary[0] = 0;
      for (std::size_t g = 1; g < devices_.size(); ++g) {
        boundary[g] = std::clamp<std::int64_t>(
            stride * (lower + tasks[g].lo), 0, array.count());
      }
      boundary[devices_.size()] = array.count();
      for (std::size_t g = 1; g < devices_.size(); ++g) {
        boundary[g] = std::max(boundary[g], boundary[g - 1]);
      }
      for (std::size_t g = 0; g < devices_.size(); ++g) {
        const std::int64_t iter_lo = lower + tasks[g].lo;
        const std::int64_t iter_hi = lower + tasks[g].hi;
        Range read{stride * iter_lo - left, stride * iter_hi + right};
        read.lo = std::clamp<std::int64_t>(read.lo, 0, array.count());
        read.hi = std::clamp<std::int64_t>(read.hi, 0, array.count());
        const Range own{boundary[g], boundary[g + 1]};
        // Owner range must be resident: widen the loaded range over it.
        read.lo = std::min(read.lo, own.lo);
        read.hi = std::max(read.hi, own.hi);
        req.read_ranges[g] = read;
        req.own_ranges[g] = own;
      }
    } else {
      for (std::size_t g = 0; g < devices_.size(); ++g) {
        req.read_ranges[g] = Range{0, array.count()};
        req.own_ranges[g] = Range{0, array.count()};
      }
    }
    loader_.EnsurePlacement(req);
    bound.push_back(BoundArray{&array, &config, req.distributed});
  }
  platform_.Barrier(sim::TimeCategory::kCpuGpu);

  // --- 3. Resolve launch-time values. ---
  std::vector<std::uint64_t> scalar_values(offload.scalars.size());
  for (std::size_t s = 0; s < offload.scalars.size(); ++s) {
    const auto& arg = offload.scalars[s];
    const TypedValue value = env.GetScalar(*arg.decl);
    const ir::ValType t =
        offload.kernel.scalars[s].type;
    scalar_values[s] = ir::EncodeScalar(t, value.AsDouble(), value.AsInt());
  }
  std::vector<std::int64_t> red_lower(offload.array_reds.size(), 0);
  std::vector<std::int64_t> red_length(offload.array_reds.size(), 0);
  for (std::size_t r = 0; r < offload.array_reds.size(); ++r) {
    const auto& red = offload.array_reds[r];
    ManagedArray& dest = resolve(*red.decl);
    red_lower[r] =
        red.lower != nullptr ? EvalIndexExpr(*red.lower, env) : 0;
    red_length[r] = red.length != nullptr
                        ? EvalIndexExpr(*red.length, env)
                        : dest.count() - red_lower[r];
    ACCMG_REQUIRE(red_lower[r] >= 0 &&
                      red_lower[r] + red_length[r] <= dest.count(),
                  "reductiontoarray section outside array '" + dest.name() +
                      "'");
  }

  // --- 4. Launch kernels (they overlap in simulated time). ---
  // Setup + launches run concurrently, one thread per device: each kernel's
  // functional execution (Platform::LaunchKernel) is itself host work, so
  // device-after-device launching would serialize it on the harness wall
  // clock even though the sim clock already models the overlap. Billing is
  // thread-safe and per-device resources are disjoint, so simulated time is
  // unchanged.
  std::vector<std::unique_ptr<ir::KernelExec>> execs(devices_.size());
  auto launch_device = [&](std::size_t g) {
    auto exec = std::make_unique<ir::KernelExec>(offload.kernel);
    exec->scalar_values = scalar_values;
    exec->iteration_offset = lower + tasks[g].lo;
    exec->array_red_lower = red_lower;
    exec->array_red_length = red_length;
    for (std::size_t a = 0; a < bound.size(); ++a) {
      const BoundArray& ba = bound[a];
      const auto& param = offload.kernel.arrays[a];
      DeviceShard& shard = ba.array->shard(devices_[g]);
      ir::ArrayBinding& binding = exec->bindings[a];
      binding.data = shard.data->bytes().data();
      binding.lo = shard.loaded.lo;
      binding.hi = shard.loaded.hi;
      if (ba.distributed) {
        binding.write_lo = shard.owned.lo;
        binding.write_hi = shard.owned.hi;
      } else {
        binding.write_lo = shard.loaded.lo;
        binding.write_hi = shard.loaded.hi;
      }
      binding.logical_size = ba.array->count();
      if (param.dirty_tracked) {
        binding.dirty.level1 = reinterpret_cast<std::uint8_t*>(
            shard.dirty1->bytes().data());
        binding.dirty.level2 = reinterpret_cast<std::uint8_t*>(
            shard.dirty2->bytes().data());
        binding.dirty.chunk_elems = shard.chunk_elems;
      }
      if (param.miss_checked) binding.miss = &shard.miss;
    }
    exec->ResetOutputs();

    sim::KernelLaunch launch;
    launch.body = exec.get();
    launch.num_threads = tasks[g].size();
    launch.block_size = options_.block_size;
    launch.name = offload.name;
    platform_.LaunchKernel(devices_[g], launch);
    execs[g] = std::move(exec);
  };
  if (devices_.size() == 1) {
    launch_device(0);
  } else {
    std::vector<std::exception_ptr> errors(devices_.size());
    std::vector<std::thread> launchers;
    launchers.reserve(devices_.size());
    for (std::size_t g = 0; g < devices_.size(); ++g) {
      launchers.emplace_back([&, g] {
        try {
          launch_device(g);
        } catch (...) {
          errors[g] = std::current_exception();
        }
      });
    }
    for (auto& launcher : launchers) launcher.join();
    for (const auto& error : errors) {
      if (error) std::rethrow_exception(error);
    }
  }
  platform_.Barrier(sim::TimeCategory::kKernel);
  ++stats_.offload_runs;
  static metrics::Counter& offload_runs_metric =
      metrics::Registry::Global().counter("executor.offload_runs");
  offload_runs_metric.Add();

  // --- 5. Communication step. ---
  // Reduction combines below bill transfers under the reduction category;
  // the comm-manager calls in 5c/5d override it with their own phases.
  trace::PhaseScope reduction_phase(trace::category::kReduction);

  // 5a. Scalar reductions: per-GPU partials come back to the host (a few
  // bytes each) and fold into the variable's pre-loop value.
  for (std::size_t r = 0; r < offload.scalar_reds.size(); ++r) {
    const auto& red = offload.scalar_reds[r];
    const auto& slot = offload.kernel.scalar_reductions[r];
    const TypedValue initial = env.GetScalar(*red.decl);
    std::uint64_t acc = ToElementRaw(slot.type, initial);
    for (std::size_t g = 0; g < devices_.size(); ++g) {
      acc = ir::CombineRaw(slot.op, slot.type, acc,
                           execs[g]->scalar_red_results()[r]);
      platform_.BillDeviceToHost(devices_[g], ir::ValTypeSize(slot.type));
    }
    env.SetScalar(*red.decl, FromElementRaw(slot.type, acc));
  }

  // 5b. Array reductions (hierarchical, Section IV-B4): per-GPU dense
  // partials combine pairwise across GPUs (tree order, parallel over element
  // ranges), then the result folds into every replica of the destination.
  for (std::size_t r = 0; r < offload.array_reds.size(); ++r) {
    const auto& red = offload.array_reds[r];
    const auto& slot = offload.kernel.array_reductions[r];
    ManagedArray& dest = resolve(*red.decl);
    std::vector<const std::vector<std::uint64_t>*> partials;
    partials.reserve(devices_.size());
    for (const auto& exec : execs) {
      partials.push_back(&exec->array_red_partials()[r]);
    }
    CombineArrayReduction(platform_, devices_, dest, slot.op, slot.type,
                          red_lower[r], red_length[r], partials);
  }

  // 5c. Replicated written arrays: dirty-bit propagation.
  // 5d. Distributed arrays: write-miss replay, then halo refresh.
  for (std::size_t a = 0; a < bound.size(); ++a) {
    const BoundArray& ba = bound[a];
    const auto& param = offload.kernel.arrays[a];
    if (param.dirty_tracked) {
      comm_.PropagateReplicated(*ba.array);
    }
    if (param.miss_checked) {
      comm_.ReplayWriteMisses(*ba.array);
    }
    if (ba.distributed && ba.config->is_written &&
        !ba.config->is_reduction_dest) {
      comm_.RefreshHalos(*ba.array);
    }
    if (ba.config->is_written) {
      for (int device : devices_) ba.array->shard(device).valid = true;
      ba.array->set_host_valid(false);
    }
  }
  platform_.Barrier(sim::TimeCategory::kGpuGpu);
}

}  // namespace accmg::runtime
