#include "runtime/comm_manager.h"

#include <algorithm>
#include <bit>
#include <cstring>

#include "common/error.h"
#include "common/metrics.h"
#include "common/trace.h"

namespace accmg::runtime {

namespace {

/// Registry handles mirroring CommStats into the unified metrics namespace.
struct CommMetrics {
  metrics::Counter& dirty_chunks_sent;
  metrics::Counter& clean_chunks_skipped;
  metrics::Counter& miss_records_replayed;
  metrics::Counter& halo_refreshes;

  static CommMetrics& Get() {
    static CommMetrics m{
        metrics::Registry::Global().counter("comm.dirty_chunks_sent"),
        metrics::Registry::Global().counter("comm.clean_chunks_skipped"),
        metrics::Registry::Global().counter("comm.miss_records_replayed"),
        metrics::Registry::Global().counter("comm.halo_refreshes"),
    };
    return m;
  }
};

constexpr std::uint64_t kLowBits = 0x0101010101010101ULL;
constexpr std::uint64_t kHighBits = 0x8080808080808080ULL;

/// Per-byte zero detector: the high bit of each byte in the result is set
/// iff that byte of `w` is zero (exact variant of the classic SWAR trick).
inline std::uint64_t ZeroByteMask(std::uint64_t w) {
  return (w - kLowBits) & ~w & kHighBits;
}

/// Number of nonzero (dirty) bytes in the level-1 bitmap range [lo, hi).
std::int64_t CountDirtyBytes(const std::uint8_t* dirty1, std::int64_t lo,
                             std::int64_t hi) {
  std::int64_t count = 0;
  std::int64_t i = lo;
  for (; i + 8 <= hi; i += 8) {
    std::uint64_t w;
    std::memcpy(&w, dirty1 + i, 8);
    count += 8 - std::popcount(ZeroByteMask(w));
  }
  for (; i < hi; ++i) count += dirty1[i] != 0;
  return count;
}

/// Calls `emit(lo, hi)` for every maximal run of consecutive dirty bytes in
/// [lo, hi) of the level-1 bitmap, scanning a 64-bit word at a time: clean
/// stretches and fully-dirty stretches advance 8 elements per iteration.
template <typename EmitFn>
void ScanDirtyRuns(const std::uint8_t* dirty1, std::int64_t lo,
                   std::int64_t hi, EmitFn&& emit) {
  std::int64_t i = lo;
  while (i < hi) {
    // Find the next dirty byte (skip clean words wholesale).
    while (i + 8 <= hi) {
      std::uint64_t w;
      std::memcpy(&w, dirty1 + i, 8);
      if (w != 0) break;
      i += 8;
    }
    while (i < hi && dirty1[i] == 0) ++i;
    if (i >= hi) break;
    // Extend the run (skip fully-dirty words wholesale).
    std::int64_t run = i;
    while (run + 8 <= hi) {
      std::uint64_t w;
      std::memcpy(&w, dirty1 + run, 8);
      if (ZeroByteMask(w) != 0) break;  // a clean byte ends the run here
      run += 8;
    }
    while (run < hi && dirty1[run] != 0) ++run;
    emit(i, run);
    i = run;
  }
}

}  // namespace

void CommManager::RemoveDevice(int device) {
  devices_.erase(std::remove(devices_.begin(), devices_.end(), device),
                 devices_.end());
}

CommManager::CommManager(sim::Platform& platform, const ExecOptions& options,
                         std::vector<int> devices)
    : platform_(platform), options_(options), devices_(std::move(devices)) {}

double CommManager::PropagateReplicated(ManagedArray& array, double ready_at,
                                        sim::Stream stream) {
  // Every transfer billed below lands in the dirty-merge trace category.
  trace::PhaseScope phase(trace::category::kDirtyMerge);
  trace::Span span("dirty-merge:" + array.name(),
                   trace::category::kDirtyMerge);
  if (devices_.size() < 2) {
    // Single GPU: no peers to update; just reset the dirty state.
    for (int device : devices_) {
      DeviceShard& shard = array.shard(device);
      if (shard.dirty1 != nullptr) {
        std::memset(shard.dirty1->bytes().data(), 0,
                    shard.dirty1->size_bytes());
        std::memset(shard.dirty2->bytes().data(), 0,
                    shard.dirty2->size_bytes());
      }
      shard.valid = true;
    }
    array.set_host_valid(false);
    return platform_.clock().Now();
  }
  double end = platform_.clock().Now();
  const std::size_t elem = array.elem_size();
  CommMetrics& comm_metrics = CommMetrics::Get();
  std::uint64_t clean_skipped = 0;
  std::uint64_t chunks_sent = 0;

  // Snapshot every sender's dirty elements first so that overlapping writes
  // from two GPUs cannot clobber each other mid-merge. Dirty elements are
  // coalesced into maximal runs ("spans") whose payloads land contiguously
  // in `values`, so the merge below applies one memcpy per span instead of
  // one per element.
  struct SenderDirty {
    int device = 0;
    std::vector<Range> spans;                // runs of dirty elements
    std::vector<std::byte> values;           // concatenated span payloads
    std::vector<std::int64_t> dirty_chunks;  // second-level dirty chunk ids
  };
  std::vector<SenderDirty> snapshots;

  for (int sender : devices_) {
    DeviceShard& src = array.shard(sender);
    if (src.dirty1 == nullptr) continue;
    const std::int64_t n = src.loaded.size();
    const std::int64_t chunk_elems = src.chunk_elems;
    const std::int64_t chunks = (n + chunk_elems - 1) / chunk_elems;

    // The manager inspects the second-level bits on the host: one byte per
    // chunk comes back over the bus (this is what makes the two-level scheme
    // cheap — without it the whole level-1 array would travel).
    std::vector<std::uint8_t> level2(static_cast<std::size_t>(chunks));
    std::memcpy(level2.data(), src.dirty2->bytes().data(),
                static_cast<std::size_t>(chunks));
    end = std::max(end, platform_.BillDeviceToHost(
                            sender, static_cast<std::size_t>(chunks),
                            ready_at));

    const std::uint8_t* dirty1 =
        reinterpret_cast<const std::uint8_t*>(src.dirty1->bytes().data());
    const std::byte* data = src.data->bytes().data();

    // Pre-pass over the dirty chunks: count dirty elements so the snapshot
    // vectors are sized once instead of reallocating mid-scan.
    std::int64_t dirty_chunk_count = 0;
    std::int64_t dirty_elems = 0;
    for (std::int64_t c = 0; c < chunks; ++c) {
      if (level2[static_cast<std::size_t>(c)] == 0) continue;
      ++dirty_chunk_count;
      const std::int64_t chunk_lo = c * chunk_elems;
      const std::int64_t chunk_hi =
          std::min<std::int64_t>(n, chunk_lo + chunk_elems);
      dirty_elems += CountDirtyBytes(dirty1, chunk_lo, chunk_hi);
    }

    SenderDirty snapshot;
    snapshot.device = sender;
    snapshot.dirty_chunks.reserve(static_cast<std::size_t>(dirty_chunk_count));
    snapshot.values.reserve(static_cast<std::size_t>(dirty_elems) * elem);

    for (std::int64_t c = 0; c < chunks; ++c) {
      if (level2[static_cast<std::size_t>(c)] == 0) {
        ++clean_skipped;
        continue;
      }
      snapshot.dirty_chunks.push_back(c);
      const std::int64_t chunk_lo = c * chunk_elems;
      const std::int64_t chunk_hi =
          std::min<std::int64_t>(n, chunk_lo + chunk_elems);
      ScanDirtyRuns(dirty1, chunk_lo, chunk_hi,
                    [&](std::int64_t lo, std::int64_t hi) {
                      if (!snapshot.spans.empty() &&
                          snapshot.spans.back().hi == lo) {
                        // Run continues across a chunk boundary.
                        snapshot.spans.back().hi = hi;
                      } else {
                        snapshot.spans.push_back(Range{lo, hi});
                      }
                      const std::size_t offset = snapshot.values.size();
                      const std::size_t bytes =
                          static_cast<std::size_t>(hi - lo) * elem;
                      snapshot.values.resize(offset + bytes);
                      std::memcpy(snapshot.values.data() + offset,
                                  data + static_cast<std::size_t>(lo) * elem,
                                  bytes);
                    });
    }
    if (!snapshot.dirty_chunks.empty()) {
      snapshots.push_back(std::move(snapshot));
    }
  }

  // Validate receiver shards up front so failures surface before any chunk
  // is billed, then bill every transfer serially: each dirty chunk travels
  // (data + level-1 bits) to every other replica, in the same deterministic
  // (sender, receiver, chunk) order as the element-wise implementation.
  std::size_t value_bytes = 0;
  for (const auto& snapshot : snapshots) {
    const DeviceShard& src = array.shard(snapshot.device);
    value_bytes += snapshot.values.size();
    for (int receiver : devices_) {
      if (receiver == snapshot.device) continue;
      const DeviceShard& dst = array.shard(receiver);
      ACCMG_CHECK(dst.data != nullptr && dst.loaded == src.loaded,
                  "replica shards out of sync for '" + array.name() + "'");
    }
  }
  for (const auto& snapshot : snapshots) {
    const DeviceShard& src = array.shard(snapshot.device);
    const std::int64_t n = src.loaded.size();
    const std::int64_t chunk_elems = src.chunk_elems;
    for (int receiver : devices_) {
      if (receiver == snapshot.device) continue;
      for (std::int64_t c : snapshot.dirty_chunks) {
        const std::int64_t chunk_lo = c * chunk_elems;
        const std::int64_t chunk_hi =
            std::min<std::int64_t>(n, chunk_lo + chunk_elems);
        const std::size_t chunk_bytes =
            static_cast<std::size_t>(chunk_hi - chunk_lo) * elem +
            static_cast<std::size_t>(chunk_hi - chunk_lo);  // + dirty bits
        end = std::max(end, platform_.BillDeviceToDevice(
                                snapshot.device, receiver, chunk_bytes,
                                ready_at, stream));
        ++chunks_sent;
      }
    }
  }

  // Apply the dirty elements (functional effect of the merge kernel): one
  // task per receiver — tasks own disjoint shards, and each applies the
  // senders in device order, so overlapping writes keep the serial
  // last-writer-wins result. Simulated time is untouched here; only the
  // harness's wall clock benefits.
  if (!snapshots.empty()) {
    auto apply_to_receiver = [&](int receiver) {
      DeviceShard& dst = array.shard(receiver);
      std::byte* dst_data = dst.data->bytes().data();
      for (const auto& snapshot : snapshots) {
        if (snapshot.device == receiver) continue;
        const std::byte* values = snapshot.values.data();
        std::size_t offset = 0;
        for (const Range& s : snapshot.spans) {
          const std::size_t bytes = static_cast<std::size_t>(s.size()) * elem;
          std::memcpy(dst_data + static_cast<std::size_t>(s.lo) * elem,
                      values + offset, bytes);
          offset += bytes;
        }
      }
    };
    // Below ~64 KiB of payload the pool dispatch costs more than it saves.
    if (value_bytes * (devices_.size() - 1) < (std::size_t{64} << 10)) {
      for (int receiver : devices_) apply_to_receiver(receiver);
    } else {
      platform_.workers().ParallelFor(
          0, static_cast<std::int64_t>(devices_.size()),
          [&](std::int64_t r) {
            apply_to_receiver(devices_[static_cast<std::size_t>(r)]);
          });
    }
  }

  stats_.clean_chunks_skipped += clean_skipped;
  stats_.dirty_chunks_sent += chunks_sent;
  if (clean_skipped > 0) comm_metrics.clean_chunks_skipped.Add(clean_skipped);
  if (chunks_sent > 0) comm_metrics.dirty_chunks_sent.Add(chunks_sent);

  // All replicas coherent again; clear every participant's dirty state.
  for (int device : devices_) {
    DeviceShard& shard = array.shard(device);
    if (shard.dirty1 != nullptr) {
      std::memset(shard.dirty1->bytes().data(), 0, shard.dirty1->size_bytes());
      std::memset(shard.dirty2->bytes().data(), 0, shard.dirty2->size_bytes());
    }
    shard.valid = true;
  }
  array.set_host_valid(false);
  return end;
}

double CommManager::ReplayWriteMisses(ManagedArray& array, double ready_at,
                                      sim::Stream stream) {
  trace::PhaseScope phase(trace::category::kMissFlush);
  trace::Span span("miss-flush:" + array.name(),
                   trace::category::kMissFlush);
  const std::size_t elem = array.elem_size();
  CommMetrics& comm_metrics = CommMetrics::Get();
  std::uint64_t replayed = 0;
  double end = platform_.clock().Now();

  // Reused across senders to avoid reallocation.
  std::vector<int> owners;              // owner of records[k], cached
  std::vector<std::uint64_t> by_owner;  // record count per owning GPU

  for (int sender : devices_) {
    DeviceShard& src = array.shard(sender);
    const std::vector<ir::WriteMissRecord>& records = src.miss.records;
    if (records.empty()) continue;

    // Counting pass: resolve each record's owning GPU once (cached — OwnerOf
    // is a shard scan) and tally the per-owner batch sizes. This replaces
    // the per-record hash/map grouping: billing only needs the group totals,
    // and ascending owner ids give the deterministic billing order for free.
    owners.resize(records.size());
    by_owner.assign(static_cast<std::size_t>(array.num_shards()), 0);
    for (std::size_t k = 0; k < records.size(); ++k) {
      const int owner = array.OwnerOf(records[k].index);
      ACCMG_REQUIRE(owner >= 0,
                    "write-miss to element " +
                        std::to_string(records[k].index) + " of '" +
                        array.name() + "' which no GPU owns");
      owners[k] = owner;
      by_owner[static_cast<std::size_t>(owner)] += 1;
    }
    for (std::size_t owner = 0; owner < by_owner.size(); ++owner) {
      if (by_owner[owner] == 0) continue;
      // The record batch (16 bytes each: address + data) travels to the
      // owner, where a small kernel applies the writes (Section IV-D2).
      end = std::max(end, platform_.BillDeviceToDevice(
                              sender, static_cast<int>(owner),
                              by_owner[owner] * 16, ready_at, stream));
      replayed += by_owner[owner];
    }

    // Apply pass, in buffer order so the last write to an index wins.
    // Runs of records owned by the same GPU are the common case (kernels
    // emit misses while marching through contiguous iteration ranges), so
    // the owner shard lookup and the residency bounds are hoisted out to
    // one resolution per run; inside a run each record is a single bounded
    // store into the owner's segment.
    std::size_t k = 0;
    while (k < records.size()) {
      const int owner = owners[k];
      DeviceShard& dst = array.shard(owner);
      std::byte* dst_data = dst.data->bytes().data();
      const std::int64_t dst_lo = dst.loaded.lo;
      const std::int64_t dst_hi = dst.loaded.hi;
      for (; k < records.size() && owners[k] == owner; ++k) {
        const std::int64_t index = records[k].index;
        ACCMG_CHECK(index >= dst_lo && index < dst_hi,
                    "owner segment does not contain missed element");
        std::memcpy(dst_data + static_cast<std::size_t>(index - dst_lo) * elem,
                    &records[k].raw, elem);
      }
    }
    src.miss.records.clear();
  }
  stats_.miss_records_replayed += replayed;
  if (replayed > 0) comm_metrics.miss_records_replayed.Add(replayed);
  array.set_host_valid(false);
  return end;
}

double CommManager::RefreshHalos(ManagedArray& array, double ready_at,
                                 sim::Stream stream) {
  trace::PhaseScope phase(trace::category::kHalo);
  trace::Span span("halo:" + array.name(), trace::category::kHalo);
  const std::size_t elem = array.elem_size();
  CommMetrics& comm_metrics = CommMetrics::Get();
  std::uint64_t refreshes = 0;
  double end = platform_.clock().Now();
  for (int device : devices_) {
    DeviceShard& shard = array.shard(device);
    if (shard.data == nullptr || shard.loaded.empty()) continue;
    // Halo = loaded minus owned, split into the left and right pieces.
    // Clamp the owned range into the loaded range first: an empty or
    // degenerate owned range (a device with no iterations, or owned ranges
    // of a stale placement lying outside the current segment) would
    // otherwise produce left/right pieces that overlap — the same element
    // refreshed twice, with double billing. An empty owned range simply
    // means the whole loaded range is halo.
    Range own{std::clamp(shard.owned.lo, shard.loaded.lo, shard.loaded.hi),
              std::clamp(shard.owned.hi, shard.loaded.lo, shard.loaded.hi)};
    if (shard.owned.empty() || own.hi < own.lo) {
      own = Range{shard.loaded.lo, shard.loaded.lo};
    }
    const Range left{shard.loaded.lo, own.lo};
    const Range right{own.hi, shard.loaded.hi};
    for (const Range& halo : {left, right}) {
      std::int64_t cursor = halo.lo;
      while (cursor < halo.hi) {
        const int owner = array.OwnerOf(cursor);
        ACCMG_REQUIRE(owner >= 0, "halo element " + std::to_string(cursor) +
                                      " of '" + array.name() +
                                      "' has no owner");
        const DeviceShard& src = array.shard(owner);
        // OwnerOf only guarantees the owned interval covers the element;
        // the source shard must also actually hold current bytes for it.
        ACCMG_REQUIRE(src.valid,
                      "halo refresh of '" + array.name() + "' reads from a "
                          "stale (invalid) owner shard on device " +
                          std::to_string(owner));
        ACCMG_REQUIRE(src.data != nullptr,
                      "halo owner shard of '" + array.name() +
                          "' on device " + std::to_string(owner) +
                          " has no device allocation");
        const std::int64_t piece_hi =
            std::min({halo.hi, src.owned.hi, src.loaded.hi});
        ACCMG_REQUIRE(src.loaded.Contains(cursor) && piece_hi > cursor,
                      "halo owner segment of '" + array.name() +
                          "' does not contain element " +
                          std::to_string(cursor));
        const std::size_t bytes =
            static_cast<std::size_t>(piece_hi - cursor) * elem;
        end = std::max(
            end, platform_.CopyDeviceToDevice(
                     *shard.data,
                     static_cast<std::size_t>(cursor - shard.loaded.lo) * elem,
                     *src.data,
                     static_cast<std::size_t>(cursor - src.loaded.lo) * elem,
                     bytes, ready_at, stream));
        ++refreshes;
        cursor = piece_hi;
      }
    }
  }
  stats_.halo_refreshes += refreshes;
  if (refreshes > 0) comm_metrics.halo_refreshes.Add(refreshes);
  return end;
}

}  // namespace accmg::runtime
