#include "runtime/comm_manager.h"

#include <algorithm>
#include <cstring>
#include <unordered_map>

#include "common/error.h"
#include "common/metrics.h"
#include "common/trace.h"

namespace accmg::runtime {

namespace {

/// Registry handles mirroring CommStats into the unified metrics namespace.
struct CommMetrics {
  metrics::Counter& dirty_chunks_sent;
  metrics::Counter& clean_chunks_skipped;
  metrics::Counter& miss_records_replayed;
  metrics::Counter& halo_refreshes;

  static CommMetrics& Get() {
    static CommMetrics m{
        metrics::Registry::Global().counter("comm.dirty_chunks_sent"),
        metrics::Registry::Global().counter("comm.clean_chunks_skipped"),
        metrics::Registry::Global().counter("comm.miss_records_replayed"),
        metrics::Registry::Global().counter("comm.halo_refreshes"),
    };
    return m;
  }
};

}  // namespace

CommManager::CommManager(sim::Platform& platform, const ExecOptions& options,
                         std::vector<int> devices)
    : platform_(platform), options_(options), devices_(std::move(devices)) {}

void CommManager::PropagateReplicated(ManagedArray& array) {
  // Every transfer billed below lands in the dirty-merge trace category.
  trace::PhaseScope phase(trace::category::kDirtyMerge);
  trace::Span span("dirty-merge:" + array.name(),
                   trace::category::kDirtyMerge);
  if (devices_.size() < 2) {
    // Single GPU: no peers to update; just reset the dirty state.
    for (int device : devices_) {
      DeviceShard& shard = array.shard(device);
      if (shard.dirty1 != nullptr) {
        std::memset(shard.dirty1->bytes().data(), 0,
                    shard.dirty1->size_bytes());
        std::memset(shard.dirty2->bytes().data(), 0,
                    shard.dirty2->size_bytes());
      }
      shard.valid = true;
    }
    array.set_host_valid(false);
    return;
  }
  const std::size_t elem = array.elem_size();

  // Snapshot every sender's dirty elements first so that overlapping writes
  // from two GPUs cannot clobber each other mid-merge. One snapshot entry per
  // (sender, element) with the written value.
  struct SenderDirty {
    int device = 0;
    std::vector<std::int64_t> indices;       // local == global (replica lo=0)
    std::vector<std::byte> values;           // indices.size() * elem bytes
    std::vector<std::int64_t> dirty_chunks;  // second-level dirty chunk ids
  };
  std::vector<SenderDirty> snapshots;

  for (int sender : devices_) {
    DeviceShard& src = array.shard(sender);
    if (src.dirty1 == nullptr) continue;
    const std::int64_t n = src.loaded.size();
    const std::int64_t chunk_elems = src.chunk_elems;
    const std::int64_t chunks = (n + chunk_elems - 1) / chunk_elems;

    // The manager inspects the second-level bits on the host: one byte per
    // chunk comes back over the bus (this is what makes the two-level scheme
    // cheap — without it the whole level-1 array would travel).
    std::vector<std::uint8_t> level2(static_cast<std::size_t>(chunks));
    std::memcpy(level2.data(), src.dirty2->bytes().data(),
                static_cast<std::size_t>(chunks));
    platform_.BillDeviceToHost(sender, static_cast<std::size_t>(chunks));

    SenderDirty snapshot;
    snapshot.device = sender;
    const std::uint8_t* dirty1 =
        reinterpret_cast<const std::uint8_t*>(src.dirty1->bytes().data());
    const std::byte* data = src.data->bytes().data();
    for (std::int64_t c = 0; c < chunks; ++c) {
      if (level2[static_cast<std::size_t>(c)] == 0) {
        ++stats_.clean_chunks_skipped;
        CommMetrics::Get().clean_chunks_skipped.Add();
        continue;
      }
      snapshot.dirty_chunks.push_back(c);
      const std::int64_t chunk_lo = c * chunk_elems;
      const std::int64_t chunk_hi =
          std::min<std::int64_t>(n, chunk_lo + chunk_elems);
      for (std::int64_t i = chunk_lo; i < chunk_hi; ++i) {
        if (dirty1[i] == 0) continue;
        snapshot.indices.push_back(i);
        const std::size_t offset = snapshot.values.size();
        snapshot.values.resize(offset + elem);
        std::memcpy(snapshot.values.data() + offset,
                    data + static_cast<std::size_t>(i) * elem, elem);
      }
    }
    if (!snapshot.dirty_chunks.empty()) {
      snapshots.push_back(std::move(snapshot));
    }
  }

  // Transfer + merge: each dirty chunk travels (data + level-1 bits) to every
  // other replica; the receiver-side merge kernel applies dirty elements.
  for (const auto& snapshot : snapshots) {
    const DeviceShard& src = array.shard(snapshot.device);
    const std::int64_t n = src.loaded.size();
    const std::int64_t chunk_elems = src.chunk_elems;
    for (int receiver : devices_) {
      if (receiver == snapshot.device) continue;
      DeviceShard& dst = array.shard(receiver);
      ACCMG_CHECK(dst.data != nullptr && dst.loaded == src.loaded,
                  "replica shards out of sync for '" + array.name() + "'");
      for (std::int64_t c : snapshot.dirty_chunks) {
        const std::int64_t chunk_lo = c * chunk_elems;
        const std::int64_t chunk_hi =
            std::min<std::int64_t>(n, chunk_lo + chunk_elems);
        const std::size_t chunk_bytes =
            static_cast<std::size_t>(chunk_hi - chunk_lo) * elem +
            static_cast<std::size_t>(chunk_hi - chunk_lo);  // + dirty bits
        platform_.BillDeviceToDevice(snapshot.device, receiver, chunk_bytes);
        ++stats_.dirty_chunks_sent;
        CommMetrics::Get().dirty_chunks_sent.Add();
      }
      // Apply the dirty elements (functional effect of the merge kernel).
      std::byte* dst_data = dst.data->bytes().data();
      for (std::size_t k = 0; k < snapshot.indices.size(); ++k) {
        const std::int64_t i = snapshot.indices[k];
        std::memcpy(dst_data + static_cast<std::size_t>(i) * elem,
                    snapshot.values.data() + k * elem, elem);
      }
    }
  }

  // All replicas coherent again; clear every participant's dirty state.
  for (int device : devices_) {
    DeviceShard& shard = array.shard(device);
    if (shard.dirty1 != nullptr) {
      std::memset(shard.dirty1->bytes().data(), 0, shard.dirty1->size_bytes());
      std::memset(shard.dirty2->bytes().data(), 0, shard.dirty2->size_bytes());
    }
    shard.valid = true;
  }
  array.set_host_valid(false);
}

void CommManager::ReplayWriteMisses(ManagedArray& array) {
  trace::PhaseScope phase(trace::category::kMissFlush);
  trace::Span span("miss-flush:" + array.name(),
                   trace::category::kMissFlush);
  const std::size_t elem = array.elem_size();
  for (int sender : devices_) {
    DeviceShard& src = array.shard(sender);
    if (src.miss.records.empty()) continue;

    // Group the (address, data) records by owning GPU.
    std::unordered_map<int, std::vector<ir::WriteMissRecord>> by_owner;
    for (const auto& record : src.miss.records) {
      const int owner = array.OwnerOf(record.index);
      ACCMG_REQUIRE(owner >= 0,
                    "write-miss to element " + std::to_string(record.index) +
                        " of '" + array.name() + "' which no GPU owns");
      by_owner[owner].push_back(record);
    }
    for (auto& [owner, records] : by_owner) {
      DeviceShard& dst = array.shard(owner);
      // The record batch (16 bytes each: address + data) travels to the
      // owner, where a small kernel applies the writes (Section IV-D2).
      platform_.BillDeviceToDevice(sender, owner, records.size() * 16);
      std::byte* dst_data = dst.data->bytes().data();
      for (const auto& record : records) {
        ACCMG_CHECK(dst.loaded.Contains(record.index),
                    "owner segment does not contain missed element");
        const std::size_t local =
            static_cast<std::size_t>(record.index - dst.loaded.lo);
        // The raw field holds the element bits in the low `elem` bytes.
        std::memcpy(dst_data + local * elem, &record.raw, elem);
      }
      stats_.miss_records_replayed += records.size();
      CommMetrics::Get().miss_records_replayed.Add(records.size());
    }
    src.miss.records.clear();
  }
  array.set_host_valid(false);
}

void CommManager::RefreshHalos(ManagedArray& array) {
  trace::PhaseScope phase(trace::category::kHalo);
  trace::Span span("halo:" + array.name(), trace::category::kHalo);
  const std::size_t elem = array.elem_size();
  for (int device : devices_) {
    DeviceShard& shard = array.shard(device);
    if (shard.data == nullptr) continue;
    // Halo = loaded minus owned, split into the left and right pieces.
    const Range left{shard.loaded.lo,
                     std::min(shard.owned.lo, shard.loaded.hi)};
    const Range right{std::max(shard.owned.hi, shard.loaded.lo),
                      shard.loaded.hi};
    for (const Range& halo : {left, right}) {
      std::int64_t cursor = halo.lo;
      while (cursor < halo.hi) {
        const int owner = array.OwnerOf(cursor);
        ACCMG_REQUIRE(owner >= 0, "halo element " + std::to_string(cursor) +
                                      " of '" + array.name() +
                                      "' has no owner");
        DeviceShard& src = array.shard(owner);
        const std::int64_t piece_hi = std::min(halo.hi, src.owned.hi);
        ACCMG_CHECK(piece_hi > cursor, "halo owner makes no progress");
        const std::size_t bytes =
            static_cast<std::size_t>(piece_hi - cursor) * elem;
        platform_.CopyDeviceToDevice(
            *shard.data,
            static_cast<std::size_t>(cursor - shard.loaded.lo) * elem,
            *src.data, static_cast<std::size_t>(cursor - src.loaded.lo) * elem,
            bytes);
        ++stats_.halo_refreshes;
        CommMetrics::Get().halo_refreshes.Add();
        cursor = piece_hi;
      }
    }
  }
}

}  // namespace accmg::runtime
