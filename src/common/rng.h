// Deterministic PRNG (splitmix64 / xoshiro256**) so workloads and property
// tests are reproducible across platforms and standard library versions.
#pragma once

#include <cstdint>

namespace accmg {

/// splitmix64: used to seed xoshiro and for cheap hashing.
constexpr std::uint64_t SplitMix64(std::uint64_t& state) {
  state += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

/// xoshiro256** by Blackman & Vigna — fast, high quality, deterministic.
class Rng {
 public:
  explicit constexpr Rng(std::uint64_t seed) {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = SplitMix64(sm);
  }

  constexpr std::uint64_t NextU64() {
    const std::uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  /// Uniform in [0, bound). bound must be > 0.
  constexpr std::uint64_t NextBounded(std::uint64_t bound) {
    // Lemire's multiply-shift rejection-free mapping is fine for tests and
    // workload generation (tiny modulo bias is irrelevant here).
    return NextU64() % bound;
  }

  /// Uniform double in [0, 1).
  constexpr double NextDouble() {
    return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  constexpr double NextDouble(double lo, double hi) {
    return lo + (hi - lo) * NextDouble();
  }

  /// Uniform int64 in [lo, hi].
  constexpr std::int64_t NextInt(std::int64_t lo, std::int64_t hi) {
    return lo + static_cast<std::int64_t>(
                    NextBounded(static_cast<std::uint64_t>(hi - lo + 1)));
  }

 private:
  static constexpr std::uint64_t Rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4] = {};
};

}  // namespace accmg
