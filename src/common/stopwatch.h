// Wall-clock stopwatch for host-side measurements (the simulated platform
// keeps its own virtual clock in sim/clock.h).
#pragma once

#include <chrono>

namespace accmg {

class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void Reset() { start_ = Clock::now(); }

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace accmg
