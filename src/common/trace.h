// Low-overhead scoped-event tracing for the whole stack.
//
// The tracer records named spans onto two timelines:
//  * kWall — real (steady-clock) time of host-side work: compiler phases,
//    offload orchestration, communication management;
//  * kSim  — the virtual platform's simulated time: kernel executions and
//    transfers as scheduled by sim::SimClock, so the trace shows the same
//    overlap the cost model computed.
// Events land in a lock-sharded ring buffer (shard per recording thread
// hash), so concurrent kernel workers never contend on one mutex, and a
// full buffer overwrites the oldest events instead of growing.
//
// Export formats:
//  * Chrome-trace JSON ("trace event format"), loadable in chrome://tracing
//    or https://ui.perfetto.dev — sim devices appear as one row per GPU;
//  * a plain-text summary table (span count + total time per category),
//    which is what bench_fig8_breakdown cross-checks against the runtime's
//    counters.
//
// Everything is a no-op while the tracer is disabled (one relaxed atomic
// load per potential span), so instrumentation stays in release builds.
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <ostream>
#include <string>
#include <vector>

namespace accmg::trace {

/// Which clock a span's timestamps belong to.
enum class Timeline : std::uint8_t {
  kWall = 0,  ///< host steady-clock microseconds since tracing started
  kSim = 1,   ///< simulated microseconds (sim::SimClock seconds * 1e6)
};

/// Span categories used by the built-in instrumentation. Free-form strings
/// are allowed; these constants name the phases of the paper's Fig. 8.
namespace category {
inline constexpr char kKernel[] = "kernel";          ///< GPU kernel execution
inline constexpr char kTransfer[] = "transfer";      ///< plain H2D/D2H loads & gathers
inline constexpr char kDirtyMerge[] = "dirty-merge"; ///< two-level dirty-bit propagation
inline constexpr char kMissFlush[] = "miss-flush";   ///< write-miss buffer replay
inline constexpr char kHalo[] = "halo";              ///< halo refresh from owners
inline constexpr char kReduction[] = "reduction";    ///< inter-GPU reduction combine
inline constexpr char kOffload[] = "offload";        ///< one BSP offload step (wall)
inline constexpr char kLoader[] = "loader";          ///< data placement work (wall)
inline constexpr char kCompile[] = "compile";        ///< compiler phases (wall)
inline constexpr char kHost[] = "host";              ///< host interpreter work (wall)
}  // namespace category

/// One completed span.
struct Event {
  std::string name;
  std::string category;
  Timeline timeline = Timeline::kWall;
  int device = -1;             ///< simulated device id; -1 = host
  int job = -1;                ///< service job id; -1 = not part of a job
  double start_us = 0;         ///< on the event's timeline
  double duration_us = 0;
  std::uint64_t thread_id = 0; ///< recording thread (wall timeline rows)
};

/// Aggregated view of one (timeline, category) cell of the summary.
struct CategorySummary {
  Timeline timeline = Timeline::kWall;
  std::string category;
  std::uint64_t count = 0;
  double total_us = 0;
};

class Tracer {
 public:
  /// The process-wide tracer every instrumentation site records into.
  static Tracer& Global();

  Tracer();
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  bool enabled() const {
    return enabled_.load(std::memory_order_relaxed);
  }
  void set_enabled(bool enabled);

  /// Ring capacity per shard (default 1 << 14 events). Takes effect on the
  /// next Clear(); call Clear() after changing it.
  void set_shard_capacity(std::size_t events);
  std::size_t shard_capacity() const { return shard_capacity_; }

  /// Drops all recorded events and resets the drop counter (keeps enabled).
  void Clear();

  /// Records a completed span. No-op while disabled.
  void Record(Event event);

  /// Events overwritten because a shard's ring wrapped around.
  std::uint64_t dropped() const;

  /// Merged copy of every retained event, sorted by (timeline, start).
  std::vector<Event> Snapshot() const;

  /// Per-(timeline, category) aggregation of the retained events, sorted by
  /// descending total time within each timeline.
  std::vector<CategorySummary> Summarize() const;

  /// Chrome trace event format. Sim-timeline events render under a "sim"
  /// process with one thread row per GPU; wall-timeline events under a
  /// "wall" process with one row per recording thread. `job_filter >= 0`
  /// keeps only the spans recorded under that JobScope (the service's
  /// per-job trace export); -1 exports everything.
  void WriteChromeTrace(std::ostream& os, int job_filter = -1) const;

  /// WriteChromeTrace into `path`; returns false if the file can't open.
  bool WriteChromeTraceFile(const std::string& path,
                            int job_filter = -1) const;

  /// The summary as a fixed-width text table.
  std::string SummaryTable() const;

  /// Microseconds elapsed on the wall timeline (process-wide epoch).
  static double WallNowMicros();

 private:
  struct Shard {
    mutable std::mutex mutex;
    std::vector<Event> ring;
    std::size_t next = 0;        ///< ring insertion cursor
    std::uint64_t recorded = 0;  ///< total events ever recorded
  };
  static constexpr std::size_t kNumShards = 8;

  Shard& ShardForThisThread();

  std::atomic<bool> enabled_{false};
  std::size_t shard_capacity_ = 1 << 14;
  std::array<Shard, kNumShards> shards_;
};

/// RAII wall-clock span: records name/category/device on destruction when
/// the tracer was enabled at construction.
class Span {
 public:
  Span(std::string name, std::string cat, int device = -1);
  ~Span();

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  bool active_;
  std::string name_;
  std::string category_;
  int device_;
  double start_us_ = 0;
};

/// Thread-local phase label. The sim platform reads it to attribute the
/// cost-only transfers it schedules (Bill*) to the runtime phase that
/// issued them — dirty-bit merge vs write-miss flush vs halo refresh vs
/// reduction — instead of a generic "transfer". Scopes nest; the innermost
/// wins.
class PhaseScope {
 public:
  explicit PhaseScope(const char* phase);
  ~PhaseScope();

  PhaseScope(const PhaseScope&) = delete;
  PhaseScope& operator=(const PhaseScope&) = delete;

  /// Innermost active phase on this thread, or nullptr.
  static const char* Current();

 private:
  const char* previous_;
};

/// Thread-local job label, the service-mode analogue of PhaseScope: every
/// event recorded on this thread while a scope with id >= 0 is active is
/// stamped with that job id, so one ring buffer can hold interleaved spans
/// of concurrent jobs and WriteChromeTrace(os, job) can split them apart
/// again. Scopes nest; the innermost non-negative id wins. Fan-out code
/// (the executor's per-device launcher threads) re-establishes the scope on
/// each worker thread.
class JobScope {
 public:
  explicit JobScope(int job);
  ~JobScope();

  JobScope(const JobScope&) = delete;
  JobScope& operator=(const JobScope&) = delete;

  /// Innermost active job id on this thread, or -1.
  static int Current();

 private:
  int previous_;
};

/// Escapes `text` for inclusion inside a JSON string literal.
std::string JsonEscape(const std::string& text);

}  // namespace accmg::trace
