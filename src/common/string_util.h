// Small string helpers used by the frontend, codegen and table printers.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace accmg {

/// Splits `text` on `sep`, keeping empty fields.
std::vector<std::string> Split(std::string_view text, char sep);

/// Removes leading and trailing ASCII whitespace.
std::string_view Trim(std::string_view text);

/// True if `text` starts with `prefix`.
bool StartsWith(std::string_view text, std::string_view prefix);

/// Joins `parts` with `sep` between elements.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// Human readable byte count, e.g. "444.9MB".
std::string FormatBytes(std::uint64_t bytes);

/// Fixed-precision double formatting (printf "%.*f").
std::string FormatFixed(double value, int digits);

}  // namespace accmg
