// Minimal leveled logger. Off by default at Debug level so tests stay quiet;
// benchmarks and examples raise the level explicitly when narrating runs.
#pragma once

#include <sstream>
#include <string>

namespace accmg {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global log threshold; messages below it are discarded.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace detail {
void Emit(LogLevel level, const std::string& message);

class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;
  ~LogLine() { Emit(level_, os_.str()); }

  template <typename T>
  LogLine& operator<<(const T& value) {
    os_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream os_;
};
}  // namespace detail

}  // namespace accmg

#define ACCMG_LOG(level)                                      \
  if (static_cast<int>(::accmg::GetLogLevel()) <=             \
      static_cast<int>(::accmg::LogLevel::level))             \
  ::accmg::detail::LogLine(::accmg::LogLevel::level)
