#include "common/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <exception>

#include "common/error.h"

namespace accmg {

ThreadPool::ThreadPool(std::size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerMain(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::WorkerMain() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();
  }
}

void ThreadPool::RunTasks(std::vector<std::function<void()>> tasks) {
  if (tasks.empty()) return;
  std::atomic<std::size_t> remaining{tasks.size()};
  std::mutex done_mutex;
  std::condition_variable done_cv;
  std::exception_ptr first_error;
  std::mutex error_mutex;

  {
    std::lock_guard<std::mutex> lock(mutex_);
    ACCMG_CHECK(!stopping_, "submitting work to a stopped pool");
    for (auto& task : tasks) {
      queue_.emplace([&, body = std::move(task)] {
        try {
          body();
        } catch (...) {
          std::lock_guard<std::mutex> elock(error_mutex);
          if (!first_error) first_error = std::current_exception();
        }
        if (remaining.fetch_sub(1) == 1) {
          std::lock_guard<std::mutex> dlock(done_mutex);
          done_cv.notify_all();
        }
      });
    }
  }
  cv_.notify_all();

  std::unique_lock<std::mutex> lock(done_mutex);
  done_cv.wait(lock, [&] { return remaining.load() == 0; });
  if (first_error) std::rethrow_exception(first_error);
}

void ThreadPool::ParallelFor(std::int64_t begin, std::int64_t end,
                             const std::function<void(std::int64_t)>& body) {
  ParallelForChunks(begin, end,
                    [&body](std::int64_t lo, std::int64_t hi, std::size_t) {
                      for (std::int64_t i = lo; i < hi; ++i) body(i);
                    });
}

void ThreadPool::ParallelForChunks(
    std::int64_t begin, std::int64_t end,
    const std::function<void(std::int64_t lo, std::int64_t hi,
                             std::size_t worker)>& body) {
  if (begin >= end) return;
  const std::int64_t total = end - begin;
  const std::int64_t chunks =
      std::min<std::int64_t>(static_cast<std::int64_t>(workers_.size()), total);
  std::vector<std::function<void()>> tasks;
  tasks.reserve(static_cast<std::size_t>(chunks));
  for (std::int64_t c = 0; c < chunks; ++c) {
    const std::int64_t lo = begin + total * c / chunks;
    const std::int64_t hi = begin + total * (c + 1) / chunks;
    tasks.emplace_back([&body, lo, hi, c] {
      body(lo, hi, static_cast<std::size_t>(c));
    });
  }
  RunTasks(std::move(tasks));
}

}  // namespace accmg
