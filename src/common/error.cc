#include "common/error.h"

#include <sstream>

namespace accmg::detail {

namespace {
std::string Render(const char* kind, const char* file, int line,
                   const char* expr, const std::string& msg) {
  std::ostringstream os;
  os << kind << " at " << file << ':' << line << ": (" << expr << ") " << msg;
  return os.str();
}
}  // namespace

void FailCheck(const char* file, int line, const char* expr,
               const std::string& msg) {
  throw InternalError(Render("internal check failed", file, line, expr, msg));
}

void FailRequire(const char* file, int line, const char* expr,
                 const std::string& msg) {
  throw InvalidArgumentError(
      Render("requirement violated", file, line, expr, msg));
}

}  // namespace accmg::detail
