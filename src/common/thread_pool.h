// A fixed-size worker pool with a blocking ParallelFor. Used both by the
// virtual GPU kernel engine (one pool per simulated device) and by the CPU
// "OpenMP" baseline executor.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace accmg {

class ThreadPool {
 public:
  /// Creates `num_threads` workers; `num_threads == 0` means
  /// hardware_concurrency (at least 1).
  explicit ThreadPool(std::size_t num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  /// Runs `body(i)` for every i in [begin, end), distributing contiguous
  /// chunks over the workers, and blocks until every call returned. Exceptions
  /// thrown by `body` are captured and the first one is rethrown on the
  /// caller's thread.
  void ParallelFor(std::int64_t begin, std::int64_t end,
                   const std::function<void(std::int64_t)>& body);

  /// Like ParallelFor but hands each worker a half-open chunk [lo, hi) so the
  /// body can keep per-chunk state (e.g. private reduction accumulators).
  void ParallelForChunks(
      std::int64_t begin, std::int64_t end,
      const std::function<void(std::int64_t lo, std::int64_t hi,
                               std::size_t worker)>& body);

 private:
  void WorkerMain();
  void RunTasks(std::vector<std::function<void()>> tasks);

  std::vector<std::thread> workers_;
  std::mutex mutex_;
  std::condition_variable cv_;
  std::queue<std::function<void()>> queue_;
  bool stopping_ = false;
};

}  // namespace accmg
