#include "common/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <functional>

namespace accmg::metrics {

namespace {

/// Lock-free monotone update: value = op(value, candidate).
template <typename Cmp>
void AtomicExtreme(std::atomic<double>& slot, double candidate, Cmp better) {
  double current = slot.load(std::memory_order_relaxed);
  while (better(candidate, current) &&
         !slot.compare_exchange_weak(current, candidate,
                                     std::memory_order_relaxed)) {
  }
}

int BucketOf(double value) {
  if (!(value >= 1)) return 0;  // negatives, NaN and [0,1) fold into bucket 0
  const int b = std::ilogb(value);
  return std::clamp(b, 0, Histogram::kNumBuckets - 1);
}

}  // namespace

void Histogram::Observe(double value) {
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
  AtomicExtreme(min_, value, std::less<double>());
  AtomicExtreme(max_, value, std::greater<double>());
  buckets_[static_cast<std::size_t>(BucketOf(value))].fetch_add(
      1, std::memory_order_relaxed);
}

double Histogram::min() const { return min_.load(std::memory_order_relaxed); }

double Histogram::max() const { return max_.load(std::memory_order_relaxed); }

double Histogram::mean() const {
  const std::uint64_t n = count();
  return n == 0 ? 0 : sum() / static_cast<double>(n);
}

void Histogram::Reset() {
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  min_.store(std::numeric_limits<double>::infinity(),
             std::memory_order_relaxed);
  max_.store(-std::numeric_limits<double>::infinity(),
             std::memory_order_relaxed);
  for (auto& bucket : buckets_) bucket.store(0, std::memory_order_relaxed);
}

struct Registry::Entry {
  enum class Kind { kCounter, kGauge, kHistogram };
  std::string name;
  Kind kind;
  Counter counter;
  Gauge gauge;
  Histogram histogram;
};

Registry& Registry::Global() {
  static Registry registry;
  return registry;
}

Registry::~Registry() = default;

Registry::Entry* Registry::Find(const std::string& name) const {
  for (const auto& entry : entries_) {
    if (entry->name == name) return entry.get();
  }
  return nullptr;
}

Counter& Registry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (Entry* entry = Find(name)) return entry->counter;
  entries_.push_back(std::make_unique<Entry>());
  entries_.back()->name = name;
  entries_.back()->kind = Entry::Kind::kCounter;
  return entries_.back()->counter;
}

Gauge& Registry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (Entry* entry = Find(name)) return entry->gauge;
  entries_.push_back(std::make_unique<Entry>());
  entries_.back()->name = name;
  entries_.back()->kind = Entry::Kind::kGauge;
  return entries_.back()->gauge;
}

Histogram& Registry::histogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (Entry* entry = Find(name)) return entry->histogram;
  entries_.push_back(std::make_unique<Entry>());
  entries_.back()->name = name;
  entries_.back()->kind = Entry::Kind::kHistogram;
  return entries_.back()->histogram;
}

void Registry::ResetAll() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& entry : entries_) {
    entry->counter.Reset();
    entry->gauge.Reset();
    entry->histogram.Reset();
  }
}

void Registry::WriteText(std::ostream& os) const {
  std::vector<Entry*> sorted;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    sorted.reserve(entries_.size());
    for (const auto& entry : entries_) sorted.push_back(entry.get());
  }
  std::sort(sorted.begin(), sorted.end(),
            [](const Entry* a, const Entry* b) { return a->name < b->name; });
  char line[256];
  for (const Entry* entry : sorted) {
    switch (entry->kind) {
      case Entry::Kind::kCounter:
        std::snprintf(line, sizeof line, "counter  %-32s  %llu\n",
                      entry->name.c_str(),
                      static_cast<unsigned long long>(entry->counter.value()));
        break;
      case Entry::Kind::kGauge:
        std::snprintf(line, sizeof line, "gauge    %-32s  %.6g\n",
                      entry->name.c_str(), entry->gauge.value());
        break;
      case Entry::Kind::kHistogram: {
        const Histogram& h = entry->histogram;
        if (h.count() == 0) {
          std::snprintf(line, sizeof line,
                        "hist     %-32s  count=0\n", entry->name.c_str());
        } else {
          std::snprintf(
              line, sizeof line,
              "hist     %-32s  count=%llu sum=%.6g min=%.6g max=%.6g "
              "mean=%.6g\n",
              entry->name.c_str(),
              static_cast<unsigned long long>(h.count()), h.sum(), h.min(),
              h.max(), h.mean());
        }
        break;
      }
    }
    os << line;
  }
}

}  // namespace accmg::metrics
