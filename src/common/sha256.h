// Self-contained SHA-256 (FIPS 180-4), used to derive content-addressed
// cache keys for the compiled-program cache (service/cache.h). Translation
// is a pure function of (source text, CompileOptions), so hashing those
// inputs is a sound memoization key; SHA-256 makes accidental collisions
// between different programs a non-concern.
//
// This is a cold-path utility (one hash per submitted job) — clarity over
// throughput.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

namespace accmg {

class Sha256 {
 public:
  Sha256();

  /// Absorbs `size` bytes. May be called repeatedly.
  void Update(const void* data, std::size_t size);
  void Update(std::string_view text) { Update(text.data(), text.size()); }

  /// Finishes the hash. The object must not be reused afterwards.
  std::array<std::uint8_t, 32> Digest();

  /// Digest as 64 lowercase hex characters.
  std::string HexDigest();

 private:
  void Compress(const std::uint8_t block[64]);

  std::array<std::uint32_t, 8> state_;
  std::array<std::uint8_t, 64> buffer_{};
  std::size_t buffered_ = 0;
  std::uint64_t total_bytes_ = 0;
};

/// One-shot convenience: hex SHA-256 of `text`.
std::string Sha256Hex(std::string_view text);

}  // namespace accmg
