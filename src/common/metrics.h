// Global metrics registry: named counters, gauges and histograms.
//
// This unifies the runtime's previously ad-hoc statistics (ExecutorStats,
// CommStats, LoaderStats, PlatformCounters) under one queryable namespace:
// every instrumentation site increments both its local struct (kept for API
// stability — RunReport still carries them) and the registry, so tools can
// dump a single coherent snapshot (`accmgc --metrics`, bench --metrics).
//
// Counters and histograms are lock-free after creation (atomics); the
// registry itself takes a mutex only on name lookup, and instrumentation
// sites cache the returned reference, so the hot path never locks.
// Metric objects live for the process lifetime — references stay valid.
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <vector>

namespace accmg::metrics {

/// Monotonic event count.
class Counter {
 public:
  void Add(std::uint64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-written value (e.g. peak bytes, configuration knobs).
class Gauge {
 public:
  void Set(double value) { value_.store(value, std::memory_order_relaxed); }
  double value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { Set(0); }

 private:
  std::atomic<double> value_{0};
};

/// Distribution of non-negative observations in power-of-two buckets:
/// bucket b holds observations in [2^b, 2^(b+1)) (bucket 0 also holds
/// values < 1). Tracks count, sum, min and max exactly.
class Histogram {
 public:
  static constexpr int kNumBuckets = 64;

  void Observe(double value);

  std::uint64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  double min() const;  ///< +inf when empty
  double max() const;  ///< -inf when empty
  double mean() const;
  std::uint64_t bucket(int b) const {
    return buckets_[static_cast<std::size_t>(b)].load(
        std::memory_order_relaxed);
  }
  void Reset();

 private:
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0};
  std::atomic<double> min_{std::numeric_limits<double>::infinity()};
  std::atomic<double> max_{-std::numeric_limits<double>::infinity()};
  std::array<std::atomic<std::uint64_t>, kNumBuckets> buckets_{};
};

class Registry {
 public:
  /// The process-wide registry all instrumentation reports into.
  static Registry& Global();

  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;
  ~Registry();

  /// Finds or creates the metric. References remain valid forever.
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name);

  /// Zeroes every registered metric (names stay registered).
  void ResetAll();

  /// One line per metric, sorted by name:
  ///   counter  sim.kernel_launches      42
  ///   hist     sim.transfer_bytes       count=7 sum=4096 min=8 max=2048
  void WriteText(std::ostream& os) const;

 private:
  struct Entry;
  Entry* Find(const std::string& name) const;

  mutable std::mutex mutex_;
  std::vector<std::unique_ptr<Entry>> entries_;
};

}  // namespace accmg::metrics
