#include "common/string_util.h"

#include <cctype>
#include <cstdio>

namespace accmg {

std::vector<std::string> Split(std::string_view text, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = text.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(text.substr(start));
      return out;
    }
    out.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
}

std::string_view Trim(std::string_view text) {
  while (!text.empty() &&
         std::isspace(static_cast<unsigned char>(text.front()))) {
    text.remove_prefix(1);
  }
  while (!text.empty() &&
         std::isspace(static_cast<unsigned char>(text.back()))) {
    text.remove_suffix(1);
  }
  return text;
}

bool StartsWith(std::string_view text, std::string_view prefix) {
  return text.substr(0, prefix.size()) == prefix;
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i != 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string FormatBytes(std::uint64_t bytes) {
  constexpr const char* kUnits[] = {"B", "KB", "MB", "GB", "TB"};
  double value = static_cast<double>(bytes);
  int unit = 0;
  while (value >= 1024.0 && unit < 4) {
    value /= 1024.0;
    ++unit;
  }
  char buf[32];
  if (unit == 0) {
    std::snprintf(buf, sizeof buf, "%llu%s",
                  static_cast<unsigned long long>(bytes), kUnits[unit]);
  } else {
    std::snprintf(buf, sizeof buf, "%.1f%s", value, kUnits[unit]);
  }
  return buf;
}

std::string FormatFixed(double value, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", digits, value);
  return buf;
}

}  // namespace accmg
