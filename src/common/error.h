// Error handling primitives shared across the accmg libraries.
//
// All recoverable failures are reported with exceptions derived from
// accmg::Error. The ACCMG_CHECK family is used for internal invariants that
// indicate a bug in this library (not a user error); ACCMG_REQUIRE is used to
// validate arguments at public API boundaries.
#pragma once

#include <stdexcept>
#include <string>

namespace accmg {

/// Base class of every exception thrown by the accmg libraries.
class Error : public std::runtime_error {
 public:
  explicit Error(std::string what) : std::runtime_error(std::move(what)) {}
};

/// An internal invariant was violated — indicates a bug in accmg itself.
class InternalError : public Error {
 public:
  using Error::Error;
};

/// A caller passed an invalid argument to a public API.
class InvalidArgumentError : public Error {
 public:
  using Error::Error;
};

/// A simulated device operation failed (out of device memory, bad address,
/// cross-device access without a copy, ...). The moral equivalent of a CUDA
/// error code.
class DeviceError : public Error {
 public:
  using Error::Error;
};

/// A source program was rejected by the frontend or translator. Carries the
/// rendered diagnostics in what().
class CompileError : public Error {
 public:
  using Error::Error;
};

/// An *injected* fault from the sim's fault-injection layer (sim/fault.h).
/// Derives DeviceError so pre-existing DeviceError handlers keep working,
/// while the recovery machinery (runtime/recovery.h) can distinguish
/// injected faults (retryable) from genuine device bugs (not retryable).
class FaultError : public DeviceError {
 public:
  using DeviceError::DeviceError;
};

/// Injected transient transfer failure on an H2D/D2H/P2P DMA operation.
class TransferError : public FaultError {
 public:
  using FaultError::FaultError;
};

/// Injected transient kernel-launch failure.
class KernelLaunchError : public FaultError {
 public:
  using FaultError::FaultError;
};

/// A device died permanently (injected device loss, or every device of a
/// lease is gone). Carries the id of the lost device; -1 when the error
/// describes an exhausted device *set* rather than one device.
class DeviceLostError : public FaultError {
 public:
  DeviceLostError(int device, std::string what)
      : FaultError(std::move(what)), device_(device) {}
  int device() const { return device_; }

 private:
  int device_ = -1;
};

/// A job exceeded its deadline (simulated-time budget checked by the
/// executor, or wall-clock watchdog cancellation at the service layer).
class JobTimeoutError : public Error {
 public:
  using Error::Error;
};

namespace detail {
[[noreturn]] void FailCheck(const char* file, int line, const char* expr,
                            const std::string& msg);
[[noreturn]] void FailRequire(const char* file, int line, const char* expr,
                              const std::string& msg);
}  // namespace detail

}  // namespace accmg

/// Internal invariant check. Throws accmg::InternalError when `cond` is false.
#define ACCMG_CHECK(cond, msg)                                         \
  do {                                                                 \
    if (!(cond)) [[unlikely]] {                                        \
      ::accmg::detail::FailCheck(__FILE__, __LINE__, #cond, (msg));    \
    }                                                                  \
  } while (false)

/// Public API argument validation. Throws accmg::InvalidArgumentError.
#define ACCMG_REQUIRE(cond, msg)                                       \
  do {                                                                 \
    if (!(cond)) [[unlikely]] {                                        \
      ::accmg::detail::FailRequire(__FILE__, __LINE__, #cond, (msg));  \
    }                                                                  \
  } while (false)

/// Marks unreachable code paths.
#define ACCMG_UNREACHABLE(msg)                                         \
  ::accmg::detail::FailCheck(__FILE__, __LINE__, "unreachable", (msg))
