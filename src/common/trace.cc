#include "common/trace.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <functional>
#include <map>
#include <sstream>
#include <thread>

namespace accmg::trace {

namespace {

thread_local const char* tls_phase = nullptr;
thread_local int tls_job = -1;

std::uint64_t ThisThreadId() {
  return static_cast<std::uint64_t>(
      std::hash<std::thread::id>{}(std::this_thread::get_id()));
}

const char* TimelineName(Timeline t) {
  return t == Timeline::kSim ? "sim" : "wall";
}

}  // namespace

Tracer& Tracer::Global() {
  static Tracer tracer;
  return tracer;
}

Tracer::Tracer() {
  for (Shard& shard : shards_) shard.ring.reserve(shard_capacity_);
}

void Tracer::set_enabled(bool enabled) {
  enabled_.store(enabled, std::memory_order_relaxed);
}

void Tracer::set_shard_capacity(std::size_t events) {
  shard_capacity_ = std::max<std::size_t>(1, events);
}

void Tracer::Clear() {
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mutex);
    shard.ring.clear();
    shard.ring.reserve(shard_capacity_);
    shard.next = 0;
    shard.recorded = 0;
  }
}

Tracer::Shard& Tracer::ShardForThisThread() {
  return shards_[ThisThreadId() % kNumShards];
}

void Tracer::Record(Event event) {
  if (!enabled()) return;
  if (event.thread_id == 0) event.thread_id = ThisThreadId();
  if (event.job < 0) event.job = tls_job;
  Shard& shard = ShardForThisThread();
  std::lock_guard<std::mutex> lock(shard.mutex);
  ++shard.recorded;
  if (shard.ring.size() < shard_capacity_) {
    shard.ring.push_back(std::move(event));
  } else {
    // Ring wraparound: overwrite the oldest slot.
    shard.ring[shard.next] = std::move(event);
    shard.next = (shard.next + 1) % shard.ring.size();
  }
}

std::uint64_t Tracer::dropped() const {
  std::uint64_t dropped = 0;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mutex);
    dropped += shard.recorded - shard.ring.size();
  }
  return dropped;
}

std::vector<Event> Tracer::Snapshot() const {
  std::vector<Event> events;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mutex);
    events.insert(events.end(), shard.ring.begin(), shard.ring.end());
  }
  std::sort(events.begin(), events.end(), [](const Event& a, const Event& b) {
    if (a.timeline != b.timeline) return a.timeline < b.timeline;
    return a.start_us < b.start_us;
  });
  return events;
}

std::vector<CategorySummary> Tracer::Summarize() const {
  std::map<std::pair<Timeline, std::string>, CategorySummary> cells;
  for (const Event& event : Snapshot()) {
    CategorySummary& cell = cells[{event.timeline, event.category}];
    cell.timeline = event.timeline;
    cell.category = event.category;
    ++cell.count;
    cell.total_us += event.duration_us;
  }
  std::vector<CategorySummary> rows;
  rows.reserve(cells.size());
  for (auto& [key, cell] : cells) rows.push_back(std::move(cell));
  std::sort(rows.begin(), rows.end(),
            [](const CategorySummary& a, const CategorySummary& b) {
              if (a.timeline != b.timeline) return a.timeline < b.timeline;
              return a.total_us > b.total_us;
            });
  return rows;
}

std::string JsonEscape(const std::string& text) {
  std::string out;
  out.reserve(text.size() + 8);
  for (const char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof buffer, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buffer;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void Tracer::WriteChromeTrace(std::ostream& os, int job_filter) const {
  // Two trace "processes": pid 1 = the simulated platform (one thread row
  // per GPU), pid 2 = wall-clock host work (one row per recording thread).
  constexpr int kSimPid = 1;
  constexpr int kWallPid = 2;
  std::vector<Event> events = Snapshot();
  if (job_filter >= 0) {
    events.erase(std::remove_if(events.begin(), events.end(),
                                [job_filter](const Event& e) {
                                  return e.job != job_filter;
                                }),
                 events.end());
  }

  os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
  bool first = true;
  auto comma = [&] {
    if (!first) os << ",\n";
    first = false;
  };

  comma();
  os << "{\"ph\":\"M\",\"pid\":" << kSimPid
     << ",\"name\":\"process_name\",\"args\":{\"name\":\"simulated "
        "platform\"}}";
  comma();
  os << "{\"ph\":\"M\",\"pid\":" << kWallPid
     << ",\"name\":\"process_name\",\"args\":{\"name\":\"host "
        "wall-clock\"}}";

  // Stable small tids for wall threads; sim tids are the device ids.
  std::map<std::uint64_t, int> wall_tid;
  std::vector<int> sim_devices;
  for (const Event& event : events) {
    if (event.timeline == Timeline::kSim) {
      const int row = event.device < 0 ? 999 : event.device;
      if (std::find(sim_devices.begin(), sim_devices.end(), row) ==
          sim_devices.end()) {
        sim_devices.push_back(row);
        comma();
        os << "{\"ph\":\"M\",\"pid\":" << kSimPid << ",\"tid\":" << row
           << ",\"name\":\"thread_name\",\"args\":{\"name\":\""
           << (event.device < 0 ? std::string("host")
                                : "gpu" + std::to_string(event.device))
           << "\"}}";
      }
    } else if (wall_tid.find(event.thread_id) == wall_tid.end()) {
      const int tid = static_cast<int>(wall_tid.size());
      wall_tid[event.thread_id] = tid;
      comma();
      os << "{\"ph\":\"M\",\"pid\":" << kWallPid << ",\"tid\":" << tid
         << ",\"name\":\"thread_name\",\"args\":{\"name\":\"thread "
         << tid << "\"}}";
    }
  }

  char number[64];
  for (const Event& event : events) {
    const bool sim = event.timeline == Timeline::kSim;
    const int pid = sim ? kSimPid : kWallPid;
    const int tid = sim ? (event.device < 0 ? 999 : event.device)
                        : wall_tid[event.thread_id];
    comma();
    os << "{\"ph\":\"X\",\"pid\":" << pid << ",\"tid\":" << tid
       << ",\"name\":\"" << JsonEscape(event.name) << "\",\"cat\":\""
       << JsonEscape(event.category) << "\",\"ts\":";
    std::snprintf(number, sizeof number, "%.3f", event.start_us);
    os << number << ",\"dur\":";
    std::snprintf(number, sizeof number, "%.3f", event.duration_us);
    os << number << ",\"args\":{\"device\":" << event.device
       << ",\"job\":" << event.job << ",\"timeline\":\""
       << TimelineName(event.timeline) << "\"}}";
  }
  os << "\n]}\n";
}

bool Tracer::WriteChromeTraceFile(const std::string& path,
                                  int job_filter) const {
  std::ofstream file(path);
  if (!file) return false;
  WriteChromeTrace(file, job_filter);
  return static_cast<bool>(file);
}

std::string Tracer::SummaryTable() const {
  const std::vector<CategorySummary> rows = Summarize();
  std::ostringstream os;
  os << "timeline  category     spans       total(ms)\n";
  os << "--------  -----------  ----------  ------------\n";
  char line[128];
  for (const CategorySummary& row : rows) {
    std::snprintf(line, sizeof line, "%-8s  %-11s  %10llu  %12.3f\n",
                  TimelineName(row.timeline), row.category.c_str(),
                  static_cast<unsigned long long>(row.count),
                  row.total_us / 1e3);
    os << line;
  }
  if (const std::uint64_t d = dropped(); d > 0) {
    os << "(ring buffer dropped " << d << " oldest events)\n";
  }
  return os.str();
}

double Tracer::WallNowMicros() {
  static const auto epoch = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - epoch)
      .count();
}

Span::Span(std::string name, std::string cat, int device)
    : active_(Tracer::Global().enabled()),
      name_(std::move(name)),
      category_(std::move(cat)),
      device_(device) {
  if (active_) start_us_ = Tracer::WallNowMicros();
}

Span::~Span() {
  if (!active_) return;
  Event event;
  event.name = std::move(name_);
  event.category = std::move(category_);
  event.timeline = Timeline::kWall;
  event.device = device_;
  event.start_us = start_us_;
  event.duration_us = Tracer::WallNowMicros() - start_us_;
  Tracer::Global().Record(std::move(event));
}

PhaseScope::PhaseScope(const char* phase) : previous_(tls_phase) {
  tls_phase = phase;
}

PhaseScope::~PhaseScope() { tls_phase = previous_; }

const char* PhaseScope::Current() { return tls_phase; }

JobScope::JobScope(int job) : previous_(tls_job) {
  if (job >= 0) tls_job = job;
}

JobScope::~JobScope() { tls_job = previous_; }

int JobScope::Current() { return tls_job; }

}  // namespace accmg::trace
