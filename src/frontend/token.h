// Token definitions for the mini-C dialect accepted by the translator.
#pragma once

#include <cstdint>
#include <string>

#include "frontend/source.h"

namespace accmg::frontend {

enum class TokenKind : int {
  kEndOfFile,
  kIdentifier,
  kIntLiteral,
  kFloatLiteral,
  kPragma,  ///< a whole `#pragma ...` line; text() holds everything after '#'

  // Keywords.
  kKwInt,
  kKwLong,
  kKwFloat,
  kKwDouble,
  kKwVoid,
  kKwChar,
  kKwUnsigned,
  kKwConst,
  kKwRestrict,
  kKwIf,
  kKwElse,
  kKwFor,
  kKwWhile,
  kKwDo,
  kKwReturn,
  kKwBreak,
  kKwContinue,

  // Punctuation / operators.
  kLParen,
  kRParen,
  kLBracket,
  kRBracket,
  kLBrace,
  kRBrace,
  kComma,
  kSemicolon,
  kColon,
  kQuestion,
  kAssign,
  kPlusAssign,
  kMinusAssign,
  kStarAssign,
  kSlashAssign,
  kPlus,
  kMinus,
  kStar,
  kSlash,
  kPercent,
  kPlusPlus,
  kMinusMinus,
  kEq,
  kNe,
  kLt,
  kLe,
  kGt,
  kGe,
  kAmpAmp,
  kPipePipe,
  kBang,
  kAmp,
  kPipe,
  kCaret,
  kTilde,
  kShl,
  kShr,
};

const char* TokenKindName(TokenKind kind);

struct Token {
  TokenKind kind = TokenKind::kEndOfFile;
  std::string text;        ///< spelling (identifier name, literal, pragma body)
  std::int64_t int_value = 0;
  double float_value = 0;
  SourceLocation location;

  bool is(TokenKind k) const { return kind == k; }
};

}  // namespace accmg::frontend
