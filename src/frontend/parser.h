// Recursive-descent parser for the mini-C + OpenACC dialect.
//
// Entry point: Parser(source).ParseProgram(). Pragma lines are parsed into
// structured Directive values and attached to the statement that follows
// them, matching OpenACC's association rules (a `data`/`parallel` region
// annotates the following block or loop; `localaccess` annotates the parallel
// loop; `reductiontoarray` annotates the single statement it precedes).
#pragma once

#include <memory>
#include <vector>

#include "frontend/ast.h"
#include "frontend/lexer.h"
#include "frontend/source.h"

namespace accmg::frontend {

class Parser {
 public:
  explicit Parser(const SourceBuffer& source);

  /// Parses a whole translation unit. Throws CompileError on syntax errors.
  std::unique_ptr<Program> ParseProgram();

  /// Parses a single expression from `text` (used by tests and tools).
  static ExprPtr ParseExpressionString(const std::string& text);

 private:
  Parser(std::string stream_name, std::vector<Token> tokens);

  // --- token stream ---
  const Token& Peek(int ahead = 0) const;
  const Token& Advance();
  bool Check(TokenKind kind) const { return Peek().is(kind); }
  bool MatchTok(TokenKind kind);
  const Token& Expect(TokenKind kind, const char* context);
  [[noreturn]] void Fail(const std::string& message) const;

  // --- declarations ---
  std::unique_ptr<Function> ParseFunction();
  bool PeekIsTypeSpec() const;
  Type ParseTypeSpec();

  // --- statements ---
  StmtPtr ParseStatement();
  std::vector<Directive> CollectDirectives();
  std::unique_ptr<CompoundStmt> ParseCompound();
  StmtPtr ParseIf();
  StmtPtr ParseFor();
  StmtPtr ParseWhile();
  StmtPtr ParseDoWhile();
  StmtPtr ParseReturn();
  /// Parses a declaration / assignment / call / ++ / -- without the
  /// trailing ';' (shared between statement position and for-init/step).
  StmtPtr ParseSimpleStatement();

  // --- expressions (precedence climbing) ---
  ExprPtr ParseExpression();
  ExprPtr ParseConditional();
  ExprPtr ParseBinary(int min_precedence);
  ExprPtr ParseUnary();
  ExprPtr ParsePostfix();
  ExprPtr ParsePrimary();

  // --- pragma parsing ---
  Directive ParsePragmaText(const Token& pragma_token);
  Directive ParseDirectiveBody(SourceLocation loc);
  void ParseDataClauses(Directive& directive, bool allow_reduction);
  ArraySection ParseArraySection();
  ReductionOp ParseReductionOp();

  std::string stream_name_;
  std::vector<Token> tokens_;
  std::size_t pos_ = 0;
};

}  // namespace accmg::frontend
