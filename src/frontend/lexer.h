// Hand-written lexer for the mini-C dialect. `#pragma` lines are emitted as a
// single kPragma token whose text is the line body (the pragma sub-parser
// tokenizes it again with the same lexer on a fresh buffer).
#pragma once

#include <vector>

#include "frontend/source.h"
#include "frontend/token.h"

namespace accmg::frontend {

class Lexer {
 public:
  explicit Lexer(const SourceBuffer& source);

  /// Lexes the whole buffer. Throws CompileError on malformed input.
  std::vector<Token> LexAll();

 private:
  Token Next();
  char Peek(int ahead = 0) const;
  char Advance();
  bool Match(char expected);
  void SkipWhitespaceAndComments();
  Token LexNumber();
  Token LexIdentifierOrKeyword();
  Token LexPragmaLine();
  Token MakeToken(TokenKind kind) const;
  [[noreturn]] void Fail(const std::string& message) const;

  const SourceBuffer& source_;
  std::size_t pos_ = 0;
  int line_ = 1;
  int column_ = 1;
  SourceLocation token_start_;
  bool at_line_start_ = true;
};

}  // namespace accmg::frontend
