// AST pretty-printer: renders an analyzed program back to the mini-C
// dialect, including its directives. Output is itself valid input — the
// round-trip property (parse(print(parse(s))) structurally equals
// parse(s)) is enforced by tests and makes the printer usable for
// source-to-source tooling and debugging dumps.
#pragma once

#include <string>

#include "frontend/ast.h"

namespace accmg::frontend {

/// Renders a whole program.
std::string PrintProgram(const Program& program);

/// Renders one expression (no trailing newline).
std::string PrintExpr(const Expr& expr);

/// Renders one statement (with directives) at the given indent depth.
std::string PrintStmt(const Stmt& stmt, int indent = 0);

/// Structural equality of two analyzed programs (names, types, structure,
/// directives; ignores source locations). Used by round-trip tests.
bool ProgramsEquivalent(const Program& a, const Program& b);

}  // namespace accmg::frontend
