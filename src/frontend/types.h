// Type representation for the mini-C dialect: scalars and 1-D pointers
// (array parameters). The paper's prototype likewise restricts the
// communication optimizations to one-dimensional arrays (Section VI).
#pragma once

#include <cstddef>
#include <string>

namespace accmg::frontend {

enum class ScalarType : int {
  kVoid,
  kInt32,
  kInt64,
  kFloat32,
  kFloat64,
};

constexpr std::size_t ScalarSize(ScalarType t) {
  switch (t) {
    case ScalarType::kVoid: return 0;
    case ScalarType::kInt32: return 4;
    case ScalarType::kInt64: return 8;
    case ScalarType::kFloat32: return 4;
    case ScalarType::kFloat64: return 8;
  }
  return 0;
}

constexpr bool IsFloatType(ScalarType t) {
  return t == ScalarType::kFloat32 || t == ScalarType::kFloat64;
}

constexpr bool IsIntType(ScalarType t) {
  return t == ScalarType::kInt32 || t == ScalarType::kInt64;
}

const char* ScalarTypeName(ScalarType t);

struct Type {
  ScalarType scalar = ScalarType::kVoid;
  bool is_pointer = false;  ///< T* — an array parameter
  bool is_const = false;

  bool IsScalar() const { return !is_pointer && scalar != ScalarType::kVoid; }
  bool IsArray() const { return is_pointer; }
  std::size_t ElementSize() const { return ScalarSize(scalar); }
  std::string ToString() const;

  friend bool operator==(const Type& a, const Type& b) {
    return a.scalar == b.scalar && a.is_pointer == b.is_pointer;
  }
};

/// Usual C arithmetic conversion for a binary operation.
ScalarType CommonType(ScalarType a, ScalarType b);

}  // namespace accmg::frontend
