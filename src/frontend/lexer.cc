#include "frontend/lexer.h"

#include <cctype>
#include <cstdlib>
#include <unordered_map>

#include "common/error.h"
#include "common/string_util.h"

namespace accmg::frontend {

namespace {
const std::unordered_map<std::string, TokenKind>& KeywordTable() {
  static const auto* table = new std::unordered_map<std::string, TokenKind>{
      {"int", TokenKind::kKwInt},         {"long", TokenKind::kKwLong},
      {"float", TokenKind::kKwFloat},     {"double", TokenKind::kKwDouble},
      {"void", TokenKind::kKwVoid},       {"char", TokenKind::kKwChar},
      {"unsigned", TokenKind::kKwUnsigned},
      {"const", TokenKind::kKwConst},     {"restrict", TokenKind::kKwRestrict},
      {"__restrict__", TokenKind::kKwRestrict},
      {"if", TokenKind::kKwIf},           {"else", TokenKind::kKwElse},
      {"for", TokenKind::kKwFor},         {"while", TokenKind::kKwWhile},
      {"do", TokenKind::kKwDo},           {"return", TokenKind::kKwReturn},
      {"break", TokenKind::kKwBreak},     {"continue", TokenKind::kKwContinue},
  };
  return *table;
}
}  // namespace

Lexer::Lexer(const SourceBuffer& source) : source_(source) {}

std::vector<Token> Lexer::LexAll() {
  std::vector<Token> tokens;
  while (true) {
    Token token = Next();
    const bool done = token.is(TokenKind::kEndOfFile);
    tokens.push_back(std::move(token));
    if (done) return tokens;
  }
}

char Lexer::Peek(int ahead) const {
  const std::size_t i = pos_ + static_cast<std::size_t>(ahead);
  return i < source_.text().size() ? source_.text()[i] : '\0';
}

char Lexer::Advance() {
  const char c = Peek();
  ++pos_;
  if (c == '\n') {
    ++line_;
    column_ = 1;
    at_line_start_ = true;
  } else {
    ++column_;
    if (!std::isspace(static_cast<unsigned char>(c))) at_line_start_ = false;
  }
  return c;
}

bool Lexer::Match(char expected) {
  if (Peek() != expected) return false;
  Advance();
  return true;
}

void Lexer::SkipWhitespaceAndComments() {
  while (true) {
    const char c = Peek();
    if (std::isspace(static_cast<unsigned char>(c))) {
      Advance();
    } else if (c == '/' && Peek(1) == '/') {
      while (Peek() != '\n' && Peek() != '\0') Advance();
    } else if (c == '/' && Peek(1) == '*') {
      Advance();
      Advance();
      while (!(Peek() == '*' && Peek(1) == '/')) {
        if (Peek() == '\0') Fail("unterminated block comment");
        Advance();
      }
      Advance();
      Advance();
    } else {
      return;
    }
  }
}

Token Lexer::MakeToken(TokenKind kind) const {
  Token token;
  token.kind = kind;
  token.location = token_start_;
  return token;
}

void Lexer::Fail(const std::string& message) const {
  throw CompileError(source_.name() + ":" + std::to_string(line_) + ":" +
                     std::to_string(column_) + ": lex error: " + message);
}

Token Lexer::LexNumber() {
  const std::size_t start = pos_;
  bool is_float = false;
  // Hex integers.
  if (Peek() == '0' && (Peek(1) == 'x' || Peek(1) == 'X')) {
    Advance();
    Advance();
    while (std::isxdigit(static_cast<unsigned char>(Peek()))) Advance();
  } else {
    while (std::isdigit(static_cast<unsigned char>(Peek()))) Advance();
    if (Peek() == '.') {
      is_float = true;
      Advance();
      while (std::isdigit(static_cast<unsigned char>(Peek()))) Advance();
    }
    if (Peek() == 'e' || Peek() == 'E') {
      is_float = true;
      Advance();
      if (Peek() == '+' || Peek() == '-') Advance();
      while (std::isdigit(static_cast<unsigned char>(Peek()))) Advance();
    }
  }
  std::string spelling = source_.text().substr(start, pos_ - start);
  // Suffixes: f/F marks float, l/L and u/U are accepted and ignored.
  bool f32_suffix = false;
  while (Peek() == 'f' || Peek() == 'F' || Peek() == 'l' || Peek() == 'L' ||
         Peek() == 'u' || Peek() == 'U') {
    if (Peek() == 'f' || Peek() == 'F') {
      is_float = true;
      f32_suffix = true;
    }
    Advance();
  }
  if (f32_suffix) spelling += 'f';  // keep float32-ness visible in the spelling
  Token token = MakeToken(is_float ? TokenKind::kFloatLiteral
                                   : TokenKind::kIntLiteral);
  token.text = spelling;
  if (is_float) {
    token.float_value = std::strtod(spelling.c_str(), nullptr);
  } else {
    token.int_value = std::strtoll(spelling.c_str(), nullptr, 0);
  }
  return token;
}

Token Lexer::LexIdentifierOrKeyword() {
  const std::size_t start = pos_;
  while (std::isalnum(static_cast<unsigned char>(Peek())) || Peek() == '_') {
    Advance();
  }
  std::string spelling = source_.text().substr(start, pos_ - start);
  const auto& keywords = KeywordTable();
  if (auto it = keywords.find(spelling); it != keywords.end()) {
    Token token = MakeToken(it->second);
    token.text = std::move(spelling);
    return token;
  }
  Token token = MakeToken(TokenKind::kIdentifier);
  token.text = std::move(spelling);
  return token;
}

Token Lexer::LexPragmaLine() {
  // Consume '#'; collect the rest of the (possibly backslash-continued) line.
  Advance();
  std::string body;
  while (true) {
    const char c = Peek();
    if (c == '\0') break;
    if (c == '\\' && Peek(1) == '\n') {
      Advance();
      Advance();
      body += ' ';
      continue;
    }
    if (c == '\n') break;
    body += Advance();
  }
  Token token = MakeToken(TokenKind::kPragma);
  token.text = std::string(Trim(body));
  return token;
}

Token Lexer::Next() {
  SkipWhitespaceAndComments();
  token_start_ = SourceLocation{line_, column_};
  const char c = Peek();
  if (c == '\0') return MakeToken(TokenKind::kEndOfFile);

  if (c == '#') {
    if (!at_line_start_) Fail("'#' only allowed at the start of a line");
    return LexPragmaLine();
  }
  if (std::isdigit(static_cast<unsigned char>(c)) ||
      (c == '.' && std::isdigit(static_cast<unsigned char>(Peek(1))))) {
    return LexNumber();
  }
  if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
    return LexIdentifierOrKeyword();
  }

  Advance();
  switch (c) {
    case '(': return MakeToken(TokenKind::kLParen);
    case ')': return MakeToken(TokenKind::kRParen);
    case '[': return MakeToken(TokenKind::kLBracket);
    case ']': return MakeToken(TokenKind::kRBracket);
    case '{': return MakeToken(TokenKind::kLBrace);
    case '}': return MakeToken(TokenKind::kRBrace);
    case ',': return MakeToken(TokenKind::kComma);
    case ';': return MakeToken(TokenKind::kSemicolon);
    case ':': return MakeToken(TokenKind::kColon);
    case '?': return MakeToken(TokenKind::kQuestion);
    case '~': return MakeToken(TokenKind::kTilde);
    case '+':
      if (Match('+')) return MakeToken(TokenKind::kPlusPlus);
      if (Match('=')) return MakeToken(TokenKind::kPlusAssign);
      return MakeToken(TokenKind::kPlus);
    case '-':
      if (Match('-')) return MakeToken(TokenKind::kMinusMinus);
      if (Match('=')) return MakeToken(TokenKind::kMinusAssign);
      return MakeToken(TokenKind::kMinus);
    case '*':
      if (Match('=')) return MakeToken(TokenKind::kStarAssign);
      return MakeToken(TokenKind::kStar);
    case '/':
      if (Match('=')) return MakeToken(TokenKind::kSlashAssign);
      return MakeToken(TokenKind::kSlash);
    case '%': return MakeToken(TokenKind::kPercent);
    case '=':
      if (Match('=')) return MakeToken(TokenKind::kEq);
      return MakeToken(TokenKind::kAssign);
    case '!':
      if (Match('=')) return MakeToken(TokenKind::kNe);
      return MakeToken(TokenKind::kBang);
    case '<':
      if (Match('=')) return MakeToken(TokenKind::kLe);
      if (Match('<')) return MakeToken(TokenKind::kShl);
      return MakeToken(TokenKind::kLt);
    case '>':
      if (Match('=')) return MakeToken(TokenKind::kGe);
      if (Match('>')) return MakeToken(TokenKind::kShr);
      return MakeToken(TokenKind::kGt);
    case '&':
      if (Match('&')) return MakeToken(TokenKind::kAmpAmp);
      return MakeToken(TokenKind::kAmp);
    case '|':
      if (Match('|')) return MakeToken(TokenKind::kPipePipe);
      return MakeToken(TokenKind::kPipe);
    case '^': return MakeToken(TokenKind::kCaret);
    default:
      Fail(std::string("unexpected character '") + c + "'");
  }
}

}  // namespace accmg::frontend
