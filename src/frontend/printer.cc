#include "frontend/printer.h"

#include <sstream>

#include "common/error.h"

namespace accmg::frontend {

namespace {

void Indent(std::ostringstream& os, int depth) {
  for (int i = 0; i < depth; ++i) os << "  ";
}

std::string PrintSection(const ArraySection& section) {
  std::string out = section.name;
  if (section.lower != nullptr) {
    out += "[" + PrintExpr(*section.lower) + ":" +
           PrintExpr(*section.length) + "]";
    if (section.lower2 != nullptr) {
      out += "[" + PrintExpr(*section.lower2) + ":" +
             PrintExpr(*section.length2) + "]";
    }
  }
  return out;
}

std::string PrintDirective(const Directive& d) {
  std::ostringstream os;
  os << "#pragma acc " << DirectiveKindName(d.kind);
  if ((d.kind == DirectiveKind::kParallel ||
       d.kind == DirectiveKind::kKernels) &&
      d.combined_loop) {
    os << " loop";
  }
  for (const auto& clause : d.data_clauses) {
    os << ' ' << DataClauseKindName(clause.kind) << '(';
    for (std::size_t i = 0; i < clause.sections.size(); ++i) {
      if (i != 0) os << ", ";
      os << PrintSection(clause.sections[i]);
    }
    os << ')';
  }
  for (const auto& red : d.reductions) {
    os << " reduction(" << ReductionOpSpelling(red.op) << ':';
    for (std::size_t i = 0; i < red.vars.size(); ++i) {
      if (i != 0) os << ", ";
      os << red.vars[i];
    }
    os << ')';
  }
  for (const auto& spec : d.local_access) {
    os << " (" << spec.array;
    bool first = true;
    auto param = [&](const char* name, const ExprPtr& value) {
      if (value == nullptr) return;
      os << (first ? ": " : ", ") << name << '(' << PrintExpr(*value) << ')';
      first = false;
    };
    param("stride", spec.stride);
    param("cols", spec.cols);
    param("left", spec.left);
    param("right", spec.right);
    os << ')';
  }
  if (d.reduction_to_array.has_value()) {
    const auto& spec = *d.reduction_to_array;
    os << '(' << ReductionOpSpelling(spec.op) << ": " << spec.array;
    if (spec.lower != nullptr) {
      os << '[' << PrintExpr(*spec.lower) << ':' << PrintExpr(*spec.length)
         << ']';
    }
    os << ')';
  }
  for (const auto& update : d.updates) {
    os << (update.to_host ? " host(" : " device(");
    for (std::size_t i = 0; i < update.sections.size(); ++i) {
      if (i != 0) os << ", ";
      os << PrintSection(update.sections[i]);
    }
    os << ')';
  }
  if (d.independent) os << " independent";
  if (d.num_gangs > 0) os << " num_gangs(" << d.num_gangs << ')';
  if (d.vector_length > 0) os << " vector_length(" << d.vector_length << ')';
  return os.str();
}

std::string TypeSpelling(const Type& type) {
  std::string out;
  if (type.is_const) out += "const ";
  out += ScalarTypeName(type.scalar);
  if (type.is_pointer) out += "*";
  return out;
}

std::string SimpleStmtNoSemi(const Stmt& stmt);

std::string AssignSpelling(const AssignStmt& stmt) {
  const char* op = "=";
  switch (stmt.op) {
    case AssignOp::kAssign: op = "="; break;
    case AssignOp::kAddAssign: op = "+="; break;
    case AssignOp::kSubAssign: op = "-="; break;
    case AssignOp::kMulAssign: op = "*="; break;
    case AssignOp::kDivAssign: op = "/="; break;
  }
  return PrintExpr(*stmt.target) + " " + op + " " + PrintExpr(*stmt.value);
}

std::string SimpleStmtNoSemi(const Stmt& stmt) {
  if (stmt.kind == StmtKind::kDecl) {
    const auto& decl = As<DeclStmt>(stmt);
    std::string out = TypeSpelling(decl.decl->type) + " " + decl.decl->name;
    if (decl.init != nullptr) out += " = " + PrintExpr(*decl.init);
    return out;
  }
  if (stmt.kind == StmtKind::kAssign) {
    return AssignSpelling(As<AssignStmt>(stmt));
  }
  if (stmt.kind == StmtKind::kExpr) {
    const auto& expr_stmt = As<ExprStmt>(stmt);
    return expr_stmt.expr == nullptr ? "" : PrintExpr(*expr_stmt.expr);
  }
  ACCMG_UNREACHABLE("not a simple statement");
}

}  // namespace

std::string PrintExpr(const Expr& expr) {
  switch (expr.kind) {
    case ExprKind::kIntLiteral:
      return std::to_string(As<IntLiteral>(expr).value);
    case ExprKind::kFloatLiteral: {
      const auto& lit = As<FloatLiteral>(expr);
      std::ostringstream os;
      os.precision(17);
      os << lit.value;
      std::string text = os.str();
      if (text.find('.') == std::string::npos &&
          text.find('e') == std::string::npos &&
          text.find("inf") == std::string::npos) {
        text += ".0";
      }
      if (lit.is_float32) text += "f";
      return text;
    }
    case ExprKind::kVarRef:
      return As<VarRef>(expr).name;
    case ExprKind::kSubscript: {
      const auto& subscript = As<SubscriptExpr>(expr);
      return PrintExpr(*subscript.base) + "[" +
             PrintExpr(*subscript.index) + "]";
    }
    case ExprKind::kUnary: {
      const auto& unary = As<UnaryExpr>(expr);
      return std::string(UnaryOpSpelling(unary.op)) + "(" +
             PrintExpr(*unary.operand) + ")";
    }
    case ExprKind::kBinary: {
      const auto& binary = As<BinaryExpr>(expr);
      return "(" + PrintExpr(*binary.lhs) + " " +
             BinaryOpSpelling(binary.op) + " " + PrintExpr(*binary.rhs) +
             ")";
    }
    case ExprKind::kCall: {
      const auto& call = As<CallExpr>(expr);
      std::string out = call.callee + "(";
      for (std::size_t i = 0; i < call.args.size(); ++i) {
        if (i != 0) out += ", ";
        out += PrintExpr(*call.args[i]);
      }
      return out + ")";
    }
    case ExprKind::kCast: {
      const auto& cast = As<CastExpr>(expr);
      return "(" + std::string(ScalarTypeName(cast.target.scalar)) + ")(" +
             PrintExpr(*cast.operand) + ")";
    }
    case ExprKind::kConditional: {
      const auto& cond = As<ConditionalExpr>(expr);
      return "(" + PrintExpr(*cond.cond) + " ? " +
             PrintExpr(*cond.then_expr) + " : " +
             PrintExpr(*cond.else_expr) + ")";
    }
  }
  ACCMG_UNREACHABLE("bad expr kind");
}

namespace {
/// Prints a loop/if body: compound children inline (the caller supplies the
/// braces), any other statement as-is.
std::string PrintBody(const Stmt& body, int indent) {
  if (body.kind == StmtKind::kCompound && body.directives.empty()) {
    std::string out;
    for (const auto& child : As<CompoundStmt>(body).body) {
      out += PrintStmt(*child, indent);
    }
    return out;
  }
  return PrintStmt(body, indent);
}
}  // namespace

std::string PrintStmt(const Stmt& stmt, int indent) {
  std::ostringstream os;
  for (const auto& directive : stmt.directives) {
    Indent(os, indent);
    os << PrintDirective(directive) << '\n';
  }
  switch (stmt.kind) {
    case StmtKind::kDecl:
    case StmtKind::kAssign:
    case StmtKind::kExpr:
      Indent(os, indent);
      os << SimpleStmtNoSemi(stmt) << ";\n";
      break;
    case StmtKind::kIf: {
      const auto& if_stmt = As<IfStmt>(stmt);
      Indent(os, indent);
      os << "if (" << PrintExpr(*if_stmt.cond) << ") {\n"
         << PrintBody(*if_stmt.then_stmt, indent + 1);
      Indent(os, indent);
      os << "}\n";
      if (if_stmt.else_stmt != nullptr) {
        Indent(os, indent);
        os << "else {\n" << PrintBody(*if_stmt.else_stmt, indent + 1);
        Indent(os, indent);
        os << "}\n";
      }
      break;
    }
    case StmtKind::kFor: {
      const auto& for_stmt = As<ForStmt>(stmt);
      Indent(os, indent);
      os << "for (";
      if (for_stmt.init != nullptr) os << SimpleStmtNoSemi(*for_stmt.init);
      os << "; ";
      if (for_stmt.cond != nullptr) os << PrintExpr(*for_stmt.cond);
      os << "; ";
      if (for_stmt.step != nullptr) os << SimpleStmtNoSemi(*for_stmt.step);
      os << ") {\n" << PrintBody(*for_stmt.body, indent + 1);
      Indent(os, indent);
      os << "}\n";
      break;
    }
    case StmtKind::kWhile: {
      const auto& while_stmt = As<WhileStmt>(stmt);
      Indent(os, indent);
      if (while_stmt.is_do_while) {
        os << "do {\n" << PrintBody(*while_stmt.body, indent + 1);
        Indent(os, indent);
        os << "} while (" << PrintExpr(*while_stmt.cond) << ");\n";
      } else {
        os << "while (" << PrintExpr(*while_stmt.cond) << ") {\n"
           << PrintBody(*while_stmt.body, indent + 1);
        Indent(os, indent);
        os << "}\n";
      }
      break;
    }
    case StmtKind::kCompound: {
      // A standalone block keeps its braces: it may carry a data-region
      // directive whose scope is exactly this block.
      Indent(os, indent);
      os << "{\n";
      for (const auto& child : As<CompoundStmt>(stmt).body) {
        os << PrintStmt(*child, indent + 1);
      }
      Indent(os, indent);
      os << "}\n";
      break;
    }
    case StmtKind::kReturn: {
      const auto& ret = As<ReturnStmt>(stmt);
      Indent(os, indent);
      os << "return";
      if (ret.value != nullptr) os << ' ' << PrintExpr(*ret.value);
      os << ";\n";
      break;
    }
    case StmtKind::kBreak:
      Indent(os, indent);
      os << "break;\n";
      break;
    case StmtKind::kContinue:
      Indent(os, indent);
      os << "continue;\n";
      break;
  }
  return os.str();
}

std::string PrintProgram(const Program& program) {
  std::ostringstream os;
  for (const auto& function : program.functions) {
    os << TypeSpelling(function->return_type) << ' ' << function->name
       << '(';
    for (std::size_t i = 0; i < function->params.size(); ++i) {
      if (i != 0) os << ", ";
      os << TypeSpelling(function->params[i]->type) << ' '
         << function->params[i]->name;
    }
    os << ") {\n";
    for (const auto& stmt : function->body->body) {
      os << PrintStmt(*stmt, 1);
    }
    os << "}\n";
  }
  return os.str();
}

// ---------------------------------------------------------------------------
// Structural equivalence
// ---------------------------------------------------------------------------

namespace {

bool ExprEq(const Expr* a, const Expr* b);
bool StmtEq(const Stmt* a, const Stmt* b);

bool ExprEq(const Expr* a, const Expr* b) {
  if (a == nullptr || b == nullptr) return a == b;
  if (a->kind != b->kind) return false;
  switch (a->kind) {
    case ExprKind::kIntLiteral:
      return As<IntLiteral>(*a).value == As<IntLiteral>(*b).value;
    case ExprKind::kFloatLiteral:
      return As<FloatLiteral>(*a).value == As<FloatLiteral>(*b).value &&
             As<FloatLiteral>(*a).is_float32 ==
                 As<FloatLiteral>(*b).is_float32;
    case ExprKind::kVarRef:
      return As<VarRef>(*a).name == As<VarRef>(*b).name;
    case ExprKind::kSubscript:
      return ExprEq(As<SubscriptExpr>(*a).base.get(),
                    As<SubscriptExpr>(*b).base.get()) &&
             ExprEq(As<SubscriptExpr>(*a).index.get(),
                    As<SubscriptExpr>(*b).index.get());
    case ExprKind::kUnary:
      return As<UnaryExpr>(*a).op == As<UnaryExpr>(*b).op &&
             ExprEq(As<UnaryExpr>(*a).operand.get(),
                    As<UnaryExpr>(*b).operand.get());
    case ExprKind::kBinary:
      return As<BinaryExpr>(*a).op == As<BinaryExpr>(*b).op &&
             ExprEq(As<BinaryExpr>(*a).lhs.get(),
                    As<BinaryExpr>(*b).lhs.get()) &&
             ExprEq(As<BinaryExpr>(*a).rhs.get(),
                    As<BinaryExpr>(*b).rhs.get());
    case ExprKind::kCall: {
      const auto& ca = As<CallExpr>(*a);
      const auto& cb = As<CallExpr>(*b);
      if (ca.callee != cb.callee || ca.args.size() != cb.args.size()) {
        return false;
      }
      for (std::size_t i = 0; i < ca.args.size(); ++i) {
        if (!ExprEq(ca.args[i].get(), cb.args[i].get())) return false;
      }
      return true;
    }
    case ExprKind::kCast:
      return As<CastExpr>(*a).target.scalar == As<CastExpr>(*b).target.scalar &&
             ExprEq(As<CastExpr>(*a).operand.get(),
                    As<CastExpr>(*b).operand.get());
    case ExprKind::kConditional:
      return ExprEq(As<ConditionalExpr>(*a).cond.get(),
                    As<ConditionalExpr>(*b).cond.get()) &&
             ExprEq(As<ConditionalExpr>(*a).then_expr.get(),
                    As<ConditionalExpr>(*b).then_expr.get()) &&
             ExprEq(As<ConditionalExpr>(*a).else_expr.get(),
                    As<ConditionalExpr>(*b).else_expr.get());
  }
  return false;
}

bool SectionEq(const ArraySection& a, const ArraySection& b) {
  return a.name == b.name && ExprEq(a.lower.get(), b.lower.get()) &&
         ExprEq(a.length.get(), b.length.get()) &&
         ExprEq(a.lower2.get(), b.lower2.get()) &&
         ExprEq(a.length2.get(), b.length2.get());
}

bool DirectiveEq(const Directive& a, const Directive& b) {
  if (a.kind != b.kind || a.combined_loop != b.combined_loop ||
      a.independent != b.independent || a.num_gangs != b.num_gangs ||
      a.vector_length != b.vector_length) {
    return false;
  }
  if (a.data_clauses.size() != b.data_clauses.size()) return false;
  for (std::size_t i = 0; i < a.data_clauses.size(); ++i) {
    if (a.data_clauses[i].kind != b.data_clauses[i].kind ||
        a.data_clauses[i].sections.size() !=
            b.data_clauses[i].sections.size()) {
      return false;
    }
    for (std::size_t j = 0; j < a.data_clauses[i].sections.size(); ++j) {
      if (!SectionEq(a.data_clauses[i].sections[j],
                     b.data_clauses[i].sections[j])) {
        return false;
      }
    }
  }
  if (a.reductions.size() != b.reductions.size()) return false;
  for (std::size_t i = 0; i < a.reductions.size(); ++i) {
    if (a.reductions[i].op != b.reductions[i].op ||
        a.reductions[i].vars != b.reductions[i].vars) {
      return false;
    }
  }
  if (a.local_access.size() != b.local_access.size()) return false;
  for (std::size_t i = 0; i < a.local_access.size(); ++i) {
    const auto& la = a.local_access[i];
    const auto& lb = b.local_access[i];
    if (la.array != lb.array || !ExprEq(la.stride.get(), lb.stride.get()) ||
        !ExprEq(la.cols.get(), lb.cols.get()) ||
        !ExprEq(la.left.get(), lb.left.get()) ||
        !ExprEq(la.right.get(), lb.right.get())) {
      return false;
    }
  }
  if (a.reduction_to_array.has_value() != b.reduction_to_array.has_value()) {
    return false;
  }
  if (a.reduction_to_array.has_value()) {
    const auto& ra = *a.reduction_to_array;
    const auto& rb = *b.reduction_to_array;
    if (ra.op != rb.op || ra.array != rb.array ||
        !ExprEq(ra.lower.get(), rb.lower.get()) ||
        !ExprEq(ra.length.get(), rb.length.get())) {
      return false;
    }
  }
  if (a.updates.size() != b.updates.size()) return false;
  for (std::size_t i = 0; i < a.updates.size(); ++i) {
    if (a.updates[i].to_host != b.updates[i].to_host ||
        a.updates[i].sections.size() != b.updates[i].sections.size()) {
      return false;
    }
    for (std::size_t j = 0; j < a.updates[i].sections.size(); ++j) {
      if (!SectionEq(a.updates[i].sections[j], b.updates[i].sections[j])) {
        return false;
      }
    }
  }
  return true;
}

bool StmtEq(const Stmt* a, const Stmt* b) {
  if (a == nullptr || b == nullptr) return a == b;
  if (a->kind != b->kind) return false;
  if (a->directives.size() != b->directives.size()) return false;
  for (std::size_t i = 0; i < a->directives.size(); ++i) {
    if (!DirectiveEq(a->directives[i], b->directives[i])) return false;
  }
  switch (a->kind) {
    case StmtKind::kDecl: {
      const auto& da = As<DeclStmt>(*a);
      const auto& db = As<DeclStmt>(*b);
      return da.decl->name == db.decl->name &&
             da.decl->type == db.decl->type &&
             ExprEq(da.init.get(), db.init.get());
    }
    case StmtKind::kAssign: {
      const auto& aa = As<AssignStmt>(*a);
      const auto& ab = As<AssignStmt>(*b);
      return aa.op == ab.op && ExprEq(aa.target.get(), ab.target.get()) &&
             ExprEq(aa.value.get(), ab.value.get());
    }
    case StmtKind::kExpr:
      return ExprEq(As<ExprStmt>(*a).expr.get(), As<ExprStmt>(*b).expr.get());
    case StmtKind::kIf:
      return ExprEq(As<IfStmt>(*a).cond.get(), As<IfStmt>(*b).cond.get()) &&
             StmtEq(As<IfStmt>(*a).then_stmt.get(),
                    As<IfStmt>(*b).then_stmt.get()) &&
             StmtEq(As<IfStmt>(*a).else_stmt.get(),
                    As<IfStmt>(*b).else_stmt.get());
    case StmtKind::kFor:
      return StmtEq(As<ForStmt>(*a).init.get(), As<ForStmt>(*b).init.get()) &&
             ExprEq(As<ForStmt>(*a).cond.get(), As<ForStmt>(*b).cond.get()) &&
             StmtEq(As<ForStmt>(*a).step.get(), As<ForStmt>(*b).step.get()) &&
             StmtEq(As<ForStmt>(*a).body.get(), As<ForStmt>(*b).body.get());
    case StmtKind::kWhile:
      return As<WhileStmt>(*a).is_do_while == As<WhileStmt>(*b).is_do_while &&
             ExprEq(As<WhileStmt>(*a).cond.get(),
                    As<WhileStmt>(*b).cond.get()) &&
             StmtEq(As<WhileStmt>(*a).body.get(),
                    As<WhileStmt>(*b).body.get());
    case StmtKind::kCompound: {
      const auto& ca = As<CompoundStmt>(*a);
      const auto& cb = As<CompoundStmt>(*b);
      if (ca.body.size() != cb.body.size()) return false;
      for (std::size_t i = 0; i < ca.body.size(); ++i) {
        if (!StmtEq(ca.body[i].get(), cb.body[i].get())) return false;
      }
      return true;
    }
    case StmtKind::kReturn:
      return ExprEq(As<ReturnStmt>(*a).value.get(),
                    As<ReturnStmt>(*b).value.get());
    case StmtKind::kBreak:
    case StmtKind::kContinue:
      return true;
  }
  return false;
}

}  // namespace

bool ProgramsEquivalent(const Program& a, const Program& b) {
  if (a.functions.size() != b.functions.size()) return false;
  for (std::size_t f = 0; f < a.functions.size(); ++f) {
    const Function& fa = *a.functions[f];
    const Function& fb = *b.functions[f];
    if (fa.name != fb.name || !(fa.return_type == fb.return_type) ||
        fa.params.size() != fb.params.size()) {
      return false;
    }
    for (std::size_t p = 0; p < fa.params.size(); ++p) {
      if (fa.params[p]->name != fb.params[p]->name ||
          !(fa.params[p]->type == fb.params[p]->type)) {
        return false;
      }
    }
    if (!StmtEq(fa.body.get(), fb.body.get())) return false;
  }
  return true;
}

}  // namespace accmg::frontend
