#include "frontend/token.h"

namespace accmg::frontend {

const char* TokenKindName(TokenKind kind) {
  switch (kind) {
    case TokenKind::kEndOfFile: return "end of file";
    case TokenKind::kIdentifier: return "identifier";
    case TokenKind::kIntLiteral: return "integer literal";
    case TokenKind::kFloatLiteral: return "float literal";
    case TokenKind::kPragma: return "#pragma";
    case TokenKind::kKwInt: return "'int'";
    case TokenKind::kKwLong: return "'long'";
    case TokenKind::kKwFloat: return "'float'";
    case TokenKind::kKwDouble: return "'double'";
    case TokenKind::kKwVoid: return "'void'";
    case TokenKind::kKwChar: return "'char'";
    case TokenKind::kKwUnsigned: return "'unsigned'";
    case TokenKind::kKwConst: return "'const'";
    case TokenKind::kKwRestrict: return "'restrict'";
    case TokenKind::kKwIf: return "'if'";
    case TokenKind::kKwElse: return "'else'";
    case TokenKind::kKwFor: return "'for'";
    case TokenKind::kKwWhile: return "'while'";
    case TokenKind::kKwDo: return "'do'";
    case TokenKind::kKwReturn: return "'return'";
    case TokenKind::kKwBreak: return "'break'";
    case TokenKind::kKwContinue: return "'continue'";
    case TokenKind::kLParen: return "'('";
    case TokenKind::kRParen: return "')'";
    case TokenKind::kLBracket: return "'['";
    case TokenKind::kRBracket: return "']'";
    case TokenKind::kLBrace: return "'{'";
    case TokenKind::kRBrace: return "'}'";
    case TokenKind::kComma: return "','";
    case TokenKind::kSemicolon: return "';'";
    case TokenKind::kColon: return "':'";
    case TokenKind::kQuestion: return "'?'";
    case TokenKind::kAssign: return "'='";
    case TokenKind::kPlusAssign: return "'+='";
    case TokenKind::kMinusAssign: return "'-='";
    case TokenKind::kStarAssign: return "'*='";
    case TokenKind::kSlashAssign: return "'/='";
    case TokenKind::kPlus: return "'+'";
    case TokenKind::kMinus: return "'-'";
    case TokenKind::kStar: return "'*'";
    case TokenKind::kSlash: return "'/'";
    case TokenKind::kPercent: return "'%'";
    case TokenKind::kPlusPlus: return "'++'";
    case TokenKind::kMinusMinus: return "'--'";
    case TokenKind::kEq: return "'=='";
    case TokenKind::kNe: return "'!='";
    case TokenKind::kLt: return "'<'";
    case TokenKind::kLe: return "'<='";
    case TokenKind::kGt: return "'>'";
    case TokenKind::kGe: return "'>='";
    case TokenKind::kAmpAmp: return "'&&'";
    case TokenKind::kPipePipe: return "'||'";
    case TokenKind::kBang: return "'!'";
    case TokenKind::kAmp: return "'&'";
    case TokenKind::kPipe: return "'|'";
    case TokenKind::kCaret: return "'^'";
    case TokenKind::kTilde: return "'~'";
    case TokenKind::kShl: return "'<<'";
    case TokenKind::kShr: return "'>>'";
  }
  return "?";
}

}  // namespace accmg::frontend
