#include "frontend/sema.h"

#include <limits>
#include <unordered_map>

#include "common/error.h"
#include "common/string_util.h"
#include "frontend/parser.h"

namespace accmg::frontend {

struct Sema::Scope {
  std::unordered_map<std::string, VarDecl*> vars;
};

namespace {

struct BuiltinInfo {
  Builtin builtin;
  int arity;
  bool is_float;    ///< float-typed builtin (vs integer abs/min/max)
  bool is_float32;  ///< the 'f'-suffixed variant
};

const std::unordered_map<std::string, BuiltinInfo>& BuiltinTable() {
  static const auto* table = new std::unordered_map<std::string, BuiltinInfo>{
      {"sqrt", {Builtin::kSqrt, 1, true, false}},
      {"sqrtf", {Builtin::kSqrt, 1, true, true}},
      {"fabs", {Builtin::kFabs, 1, true, false}},
      {"fabsf", {Builtin::kFabs, 1, true, true}},
      {"exp", {Builtin::kExp, 1, true, false}},
      {"expf", {Builtin::kExp, 1, true, true}},
      {"log", {Builtin::kLog, 1, true, false}},
      {"logf", {Builtin::kLog, 1, true, true}},
      {"pow", {Builtin::kPow, 2, true, false}},
      {"powf", {Builtin::kPow, 2, true, true}},
      {"fmin", {Builtin::kFmin, 2, true, false}},
      {"fminf", {Builtin::kFmin, 2, true, true}},
      {"fmax", {Builtin::kFmax, 2, true, false}},
      {"fmaxf", {Builtin::kFmax, 2, true, true}},
      {"floor", {Builtin::kFloor, 1, true, false}},
      {"floorf", {Builtin::kFloor, 1, true, true}},
      {"ceil", {Builtin::kCeil, 1, true, false}},
      {"ceilf", {Builtin::kCeil, 1, true, true}},
      {"abs", {Builtin::kAbs, 1, false, false}},
      {"min", {Builtin::kMin, 2, false, false}},
      {"max", {Builtin::kMax, 2, false, false}},
  };
  return *table;
}

bool IsIntOnlyOp(BinaryOp op) {
  switch (op) {
    case BinaryOp::kMod:
    case BinaryOp::kBitAnd:
    case BinaryOp::kBitOr:
    case BinaryOp::kBitXor:
    case BinaryOp::kShl:
    case BinaryOp::kShr:
      return true;
    default:
      return false;
  }
}

bool IsComparisonOrLogical(BinaryOp op) {
  switch (op) {
    case BinaryOp::kLt:
    case BinaryOp::kLe:
    case BinaryOp::kGt:
    case BinaryOp::kGe:
    case BinaryOp::kEq:
    case BinaryOp::kNe:
    case BinaryOp::kLogicalAnd:
    case BinaryOp::kLogicalOr:
      return true;
    default:
      return false;
  }
}

}  // namespace

void Sema::Error(SourceLocation loc, const std::string& message) {
  errors_.push_back(loc.ToString() + ": " + message);
}

const VarDecl* Sema::Lookup(const std::vector<Scope>& scopes,
                            const std::string& name) const {
  for (auto it = scopes.rbegin(); it != scopes.rend(); ++it) {
    if (auto found = it->vars.find(name); found != it->vars.end()) {
      return found->second;
    }
  }
  return nullptr;
}

void Sema::Declare(std::vector<Scope>& scopes, VarDecl& decl,
                   Function& function) {
  (void)function;
  auto& current = scopes.back().vars;
  if (current.contains(decl.name)) {
    Error(decl.loc, "redeclaration of '" + decl.name + "'");
    return;
  }
  decl.id = next_var_id_++;
  current[decl.name] = &decl;
}

void Sema::Analyze(Program& program) {
  errors_.clear();
  for (auto& function : program.functions) AnalyzeFunction(*function);
  if (!errors_.empty()) {
    throw CompileError("semantic errors:\n  " + Join(errors_, "\n  "));
  }
}

void Sema::AnalyzeFunction(Function& function) {
  next_var_id_ = 0;
  std::vector<Scope> scopes;
  scopes.emplace_back();
  for (auto& param : function.params) Declare(scopes, *param, function);
  for (auto& stmt : function.body->body) {
    AnalyzeStmt(*stmt, scopes, function);
  }
}

void Sema::AnalyzeStmt(Stmt& stmt, std::vector<Scope>& scopes,
                       Function& function) {
  for (auto& directive : stmt.directives) AnalyzeDirective(directive, scopes);

  switch (stmt.kind) {
    case StmtKind::kDecl: {
      auto& decl_stmt = As<DeclStmt>(stmt);
      if (decl_stmt.init != nullptr) AnalyzeExpr(*decl_stmt.init, scopes);
      if (decl_stmt.decl->type.is_pointer) {
        Error(decl_stmt.loc,
              "local pointer declarations are not supported; arrays must be "
              "function parameters");
      }
      Declare(scopes, *decl_stmt.decl, function);
      break;
    }
    case StmtKind::kAssign: {
      auto& assign = As<AssignStmt>(stmt);
      AnalyzeExpr(*assign.target, scopes);
      AnalyzeExpr(*assign.value, scopes);
      if (assign.target->kind == ExprKind::kVarRef) {
        const auto& ref = As<VarRef>(*assign.target);
        if (ref.decl != nullptr && ref.decl->type.is_pointer) {
          Error(assign.loc, "cannot assign to array '" + ref.name + "'");
        }
        if (ref.decl != nullptr && ref.decl->type.is_const) {
          Error(assign.loc, "cannot assign to const '" + ref.name + "'");
        }
      } else if (assign.target->kind != ExprKind::kSubscript) {
        Error(assign.loc, "assignment target must be a variable or a[i]");
      }
      break;
    }
    case StmtKind::kExpr:
      if (As<ExprStmt>(stmt).expr != nullptr) {
        AnalyzeExpr(*As<ExprStmt>(stmt).expr, scopes);
      }
      break;
    case StmtKind::kIf: {
      auto& if_stmt = As<IfStmt>(stmt);
      AnalyzeExpr(*if_stmt.cond, scopes);
      AnalyzeStmt(*if_stmt.then_stmt, scopes, function);
      if (if_stmt.else_stmt != nullptr) {
        AnalyzeStmt(*if_stmt.else_stmt, scopes, function);
      }
      break;
    }
    case StmtKind::kFor: {
      auto& for_stmt = As<ForStmt>(stmt);
      scopes.emplace_back();
      if (for_stmt.init != nullptr) {
        AnalyzeStmt(*for_stmt.init, scopes, function);
      }
      if (for_stmt.cond != nullptr) AnalyzeExpr(*for_stmt.cond, scopes);
      if (for_stmt.step != nullptr) {
        AnalyzeStmt(*for_stmt.step, scopes, function);
      }
      AnalyzeStmt(*for_stmt.body, scopes, function);
      scopes.pop_back();
      break;
    }
    case StmtKind::kWhile: {
      auto& while_stmt = As<WhileStmt>(stmt);
      AnalyzeExpr(*while_stmt.cond, scopes);
      AnalyzeStmt(*while_stmt.body, scopes, function);
      break;
    }
    case StmtKind::kCompound: {
      scopes.emplace_back();
      for (auto& child : As<CompoundStmt>(stmt).body) {
        AnalyzeStmt(*child, scopes, function);
      }
      scopes.pop_back();
      break;
    }
    case StmtKind::kReturn: {
      auto& ret = As<ReturnStmt>(stmt);
      if (ret.value != nullptr) AnalyzeExpr(*ret.value, scopes);
      break;
    }
    case StmtKind::kBreak:
    case StmtKind::kContinue:
      break;
  }
}

void Sema::AnalyzeExpr(Expr& expr, std::vector<Scope>& scopes) {
  switch (expr.kind) {
    case ExprKind::kIntLiteral: {
      auto& lit = As<IntLiteral>(expr);
      expr.type.scalar =
          (lit.value > std::numeric_limits<std::int32_t>::max() ||
           lit.value < std::numeric_limits<std::int32_t>::min())
              ? ScalarType::kInt64
              : ScalarType::kInt32;
      break;
    }
    case ExprKind::kFloatLiteral: {
      auto& lit = As<FloatLiteral>(expr);
      expr.type.scalar =
          lit.is_float32 ? ScalarType::kFloat32 : ScalarType::kFloat64;
      break;
    }
    case ExprKind::kVarRef: {
      auto& ref = As<VarRef>(expr);
      const VarDecl* decl = Lookup(scopes, ref.name);
      if (decl == nullptr) {
        Error(expr.loc, "use of undeclared identifier '" + ref.name + "'");
        expr.type.scalar = ScalarType::kInt32;
        break;
      }
      ref.decl = decl;
      expr.type = decl->type;
      break;
    }
    case ExprKind::kSubscript: {
      auto& subscript = As<SubscriptExpr>(expr);
      AnalyzeExpr(*subscript.base, scopes);
      AnalyzeExpr(*subscript.index, scopes);
      if (subscript.base->kind != ExprKind::kVarRef ||
          !subscript.base->type.is_pointer) {
        Error(expr.loc, "subscript base must be an array parameter");
      }
      if (!IsIntType(subscript.index->type.scalar)) {
        Error(expr.loc, "array index must be an integer");
      }
      expr.type.scalar = subscript.base->type.scalar;
      expr.type.is_pointer = false;
      break;
    }
    case ExprKind::kUnary: {
      auto& unary = As<UnaryExpr>(expr);
      AnalyzeExpr(*unary.operand, scopes);
      if (unary.op == UnaryOp::kNot) {
        expr.type.scalar = ScalarType::kInt32;
      } else {
        expr.type = unary.operand->type;
        if (unary.op == UnaryOp::kBitNot &&
            !IsIntType(unary.operand->type.scalar)) {
          Error(expr.loc, "'~' requires an integer operand");
        }
      }
      break;
    }
    case ExprKind::kBinary: {
      auto& binary = As<BinaryExpr>(expr);
      AnalyzeExpr(*binary.lhs, scopes);
      AnalyzeExpr(*binary.rhs, scopes);
      if (binary.lhs->type.is_pointer || binary.rhs->type.is_pointer) {
        Error(expr.loc, "pointer arithmetic is not supported");
      }
      if (IsIntOnlyOp(binary.op) &&
          (!IsIntType(binary.lhs->type.scalar) ||
           !IsIntType(binary.rhs->type.scalar))) {
        Error(expr.loc, std::string("operator '") + BinaryOpSpelling(binary.op) +
                            "' requires integer operands");
      }
      if (IsComparisonOrLogical(binary.op)) {
        expr.type.scalar = ScalarType::kInt32;
      } else {
        expr.type.scalar =
            CommonType(binary.lhs->type.scalar, binary.rhs->type.scalar);
      }
      break;
    }
    case ExprKind::kCall: {
      auto& call = As<CallExpr>(expr);
      for (auto& arg : call.args) AnalyzeExpr(*arg, scopes);
      const auto& table = BuiltinTable();
      auto it = table.find(call.callee);
      if (it == table.end()) {
        Error(expr.loc, "unknown function '" + call.callee +
                            "' (only math builtins may be called)");
        expr.type.scalar = ScalarType::kFloat64;
        break;
      }
      const BuiltinInfo& info = it->second;
      call.builtin = info.builtin;
      if (static_cast<int>(call.args.size()) != info.arity) {
        Error(expr.loc, "'" + call.callee + "' expects " +
                            std::to_string(info.arity) + " argument(s)");
      }
      if (info.is_float) {
        expr.type.scalar =
            info.is_float32 ? ScalarType::kFloat32 : ScalarType::kFloat64;
      } else if (!call.args.empty()) {
        expr.type.scalar = call.args[0]->type.scalar;
      } else {
        expr.type.scalar = ScalarType::kInt32;
      }
      break;
    }
    case ExprKind::kCast: {
      auto& cast = As<CastExpr>(expr);
      AnalyzeExpr(*cast.operand, scopes);
      if (cast.target.is_pointer) {
        Error(expr.loc, "pointer casts are not supported");
      }
      expr.type = cast.target;
      break;
    }
    case ExprKind::kConditional: {
      auto& cond = As<ConditionalExpr>(expr);
      AnalyzeExpr(*cond.cond, scopes);
      AnalyzeExpr(*cond.then_expr, scopes);
      AnalyzeExpr(*cond.else_expr, scopes);
      expr.type.scalar =
          CommonType(cond.then_expr->type.scalar, cond.else_expr->type.scalar);
      break;
    }
  }
}

void Sema::AnalyzeDirective(Directive& directive, std::vector<Scope>& scopes) {
  auto check_array = [&](const std::string& name, SourceLocation loc) {
    const VarDecl* decl = Lookup(scopes, name);
    if (decl == nullptr) {
      Error(loc, std::string(DirectiveKindName(directive.kind)) +
                     ": unknown array '" + name + "'");
    } else if (!decl->type.is_pointer) {
      Error(loc, std::string(DirectiveKindName(directive.kind)) + ": '" +
                     name + "' is not an array");
    }
  };
  auto analyze_optional = [&](ExprPtr& e) {
    if (e != nullptr) AnalyzeExpr(*e, scopes);
  };

  for (auto& clause : directive.data_clauses) {
    for (auto& section : clause.sections) {
      check_array(section.name, section.loc);
      analyze_optional(section.lower);
      analyze_optional(section.length);
      analyze_optional(section.lower2);
      analyze_optional(section.length2);
    }
  }
  for (auto& clause : directive.reductions) {
    for (const auto& var : clause.vars) {
      const VarDecl* decl = Lookup(scopes, var);
      if (decl == nullptr) {
        Error(directive.loc, "reduction: unknown variable '" + var + "'");
      } else if (decl->type.is_pointer) {
        Error(directive.loc,
              "reduction: '" + var +
                  "' is an array; use the reductiontoarray extension");
      }
    }
  }
  for (auto& spec : directive.local_access) {
    check_array(spec.array, spec.loc);
    analyze_optional(spec.stride);
    analyze_optional(spec.cols);
    analyze_optional(spec.left);
    analyze_optional(spec.right);
    if (spec.stride != nullptr && spec.cols != nullptr) {
      Error(spec.loc, "localaccess: 'stride' and 'cols' are mutually "
                      "exclusive on '" + spec.array + "'");
    }
  }
  if (directive.reduction_to_array.has_value()) {
    auto& spec = *directive.reduction_to_array;
    check_array(spec.array, spec.loc);
    analyze_optional(spec.lower);
    analyze_optional(spec.length);
  }
  for (auto& update : directive.updates) {
    for (auto& section : update.sections) {
      check_array(section.name, section.loc);
      analyze_optional(section.lower);
      analyze_optional(section.length);
      analyze_optional(section.lower2);
      analyze_optional(section.length2);
    }
  }
}

std::unique_ptr<Program> ParseAndAnalyze(const SourceBuffer& source) {
  Parser parser(source);
  auto program = parser.ParseProgram();
  Sema sema;
  sema.Analyze(*program);
  return program;
}

}  // namespace accmg::frontend
