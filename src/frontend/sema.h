// Semantic analysis: name resolution, type checking, directive validation.
//
// On success every VarRef::decl is resolved, every Expr::type is filled, and
// every VarDecl has a dense per-function id. Errors are collected and thrown
// together as one CompileError.
#pragma once

#include <string>
#include <vector>

#include "frontend/ast.h"

namespace accmg::frontend {

class Sema {
 public:
  /// Analyzes `program` in place. Throws CompileError listing all errors.
  void Analyze(Program& program);

 private:
  struct Scope;
  void AnalyzeFunction(Function& function);
  void AnalyzeStmt(Stmt& stmt, std::vector<Scope>& scopes, Function& function);
  void AnalyzeExpr(Expr& expr, std::vector<Scope>& scopes);
  void AnalyzeDirective(Directive& directive, std::vector<Scope>& scopes);
  const VarDecl* Lookup(const std::vector<Scope>& scopes,
                        const std::string& name) const;
  void Declare(std::vector<Scope>& scopes, VarDecl& decl, Function& function);
  void Error(SourceLocation loc, const std::string& message);

  std::vector<std::string> errors_;
  int next_var_id_ = 0;
};

/// Convenience: parse + analyze in one call.
std::unique_ptr<Program> ParseAndAnalyze(const SourceBuffer& source);

}  // namespace accmg::frontend
