// Source text management and locations for diagnostics.
#pragma once

#include <string>
#include <utility>

namespace accmg::frontend {

struct SourceLocation {
  int line = 0;    ///< 1-based
  int column = 0;  ///< 1-based

  std::string ToString() const {
    return std::to_string(line) + ":" + std::to_string(column);
  }
};

/// An input translation unit (name + contents).
class SourceBuffer {
 public:
  SourceBuffer(std::string name, std::string text)
      : name_(std::move(name)), text_(std::move(text)) {}

  const std::string& name() const { return name_; }
  const std::string& text() const { return text_; }

 private:
  std::string name_;
  std::string text_;
};

}  // namespace accmg::frontend
