#include "frontend/parser.h"

#include <utility>

#include "common/error.h"

namespace accmg::frontend {

namespace {

/// Binary operator precedence (C-like). Higher binds tighter.
int Precedence(TokenKind kind) {
  switch (kind) {
    case TokenKind::kStar:
    case TokenKind::kSlash:
    case TokenKind::kPercent:
      return 10;
    case TokenKind::kPlus:
    case TokenKind::kMinus:
      return 9;
    case TokenKind::kShl:
    case TokenKind::kShr:
      return 8;
    case TokenKind::kLt:
    case TokenKind::kLe:
    case TokenKind::kGt:
    case TokenKind::kGe:
      return 7;
    case TokenKind::kEq:
    case TokenKind::kNe:
      return 6;
    case TokenKind::kAmp:
      return 5;
    case TokenKind::kCaret:
      return 4;
    case TokenKind::kPipe:
      return 3;
    case TokenKind::kAmpAmp:
      return 2;
    case TokenKind::kPipePipe:
      return 1;
    default:
      return -1;
  }
}

BinaryOp ToBinaryOp(TokenKind kind) {
  switch (kind) {
    case TokenKind::kPlus: return BinaryOp::kAdd;
    case TokenKind::kMinus: return BinaryOp::kSub;
    case TokenKind::kStar: return BinaryOp::kMul;
    case TokenKind::kSlash: return BinaryOp::kDiv;
    case TokenKind::kPercent: return BinaryOp::kMod;
    case TokenKind::kLt: return BinaryOp::kLt;
    case TokenKind::kLe: return BinaryOp::kLe;
    case TokenKind::kGt: return BinaryOp::kGt;
    case TokenKind::kGe: return BinaryOp::kGe;
    case TokenKind::kEq: return BinaryOp::kEq;
    case TokenKind::kNe: return BinaryOp::kNe;
    case TokenKind::kAmpAmp: return BinaryOp::kLogicalAnd;
    case TokenKind::kPipePipe: return BinaryOp::kLogicalOr;
    case TokenKind::kAmp: return BinaryOp::kBitAnd;
    case TokenKind::kPipe: return BinaryOp::kBitOr;
    case TokenKind::kCaret: return BinaryOp::kBitXor;
    case TokenKind::kShl: return BinaryOp::kShl;
    case TokenKind::kShr: return BinaryOp::kShr;
    default:
      ACCMG_UNREACHABLE("not a binary operator token");
  }
}

}  // namespace

Parser::Parser(const SourceBuffer& source)
    : stream_name_(source.name()), tokens_(Lexer(source).LexAll()) {}

Parser::Parser(std::string stream_name, std::vector<Token> tokens)
    : stream_name_(std::move(stream_name)), tokens_(std::move(tokens)) {}

const Token& Parser::Peek(int ahead) const {
  const std::size_t i = pos_ + static_cast<std::size_t>(ahead);
  return i < tokens_.size() ? tokens_[i] : tokens_.back();
}

const Token& Parser::Advance() {
  const Token& token = Peek();
  if (pos_ + 1 < tokens_.size()) ++pos_;
  return token;
}

bool Parser::MatchTok(TokenKind kind) {
  if (!Check(kind)) return false;
  Advance();
  return true;
}

const Token& Parser::Expect(TokenKind kind, const char* context) {
  if (!Check(kind)) {
    Fail(std::string("expected ") + TokenKindName(kind) + " " + context +
         ", got " + TokenKindName(Peek().kind) +
         (Peek().text.empty() ? "" : " '" + Peek().text + "'"));
  }
  return Advance();
}

void Parser::Fail(const std::string& message) const {
  throw CompileError(stream_name_ + ":" + Peek().location.ToString() +
                     ": parse error: " + message);
}

// ---------------------------------------------------------------------------
// Declarations
// ---------------------------------------------------------------------------

std::unique_ptr<Program> Parser::ParseProgram() {
  auto program = std::make_unique<Program>();
  while (!Check(TokenKind::kEndOfFile)) {
    program->functions.push_back(ParseFunction());
  }
  return program;
}

bool Parser::PeekIsTypeSpec() const {
  switch (Peek().kind) {
    case TokenKind::kKwConst:
    case TokenKind::kKwUnsigned:
    case TokenKind::kKwInt:
    case TokenKind::kKwLong:
    case TokenKind::kKwFloat:
    case TokenKind::kKwDouble:
    case TokenKind::kKwVoid:
    case TokenKind::kKwChar:
      return true;
    default:
      return false;
  }
}

Type Parser::ParseTypeSpec() {
  Type type;
  if (MatchTok(TokenKind::kKwConst)) type.is_const = true;
  MatchTok(TokenKind::kKwUnsigned);  // accepted, treated as signed
  switch (Peek().kind) {
    case TokenKind::kKwInt:
    case TokenKind::kKwChar:
      type.scalar = ScalarType::kInt32;
      Advance();
      break;
    case TokenKind::kKwLong:
      type.scalar = ScalarType::kInt64;
      Advance();
      MatchTok(TokenKind::kKwLong);  // "long long"
      MatchTok(TokenKind::kKwInt);   // "long int"
      break;
    case TokenKind::kKwFloat:
      type.scalar = ScalarType::kFloat32;
      Advance();
      break;
    case TokenKind::kKwDouble:
      type.scalar = ScalarType::kFloat64;
      Advance();
      break;
    case TokenKind::kKwVoid:
      type.scalar = ScalarType::kVoid;
      Advance();
      break;
    default:
      Fail("expected a type name");
  }
  if (MatchTok(TokenKind::kKwConst)) type.is_const = true;
  if (MatchTok(TokenKind::kStar)) {
    type.is_pointer = true;
    MatchTok(TokenKind::kKwConst);
    MatchTok(TokenKind::kKwRestrict);
  }
  return type;
}

std::unique_ptr<Function> Parser::ParseFunction() {
  auto function = std::make_unique<Function>();
  function->loc = Peek().location;
  function->return_type = ParseTypeSpec();
  function->name = Expect(TokenKind::kIdentifier, "in function name").text;
  Expect(TokenKind::kLParen, "after function name");
  if (!Check(TokenKind::kRParen)) {
    do {
      auto param = std::make_unique<VarDecl>();
      param->loc = Peek().location;
      param->type = ParseTypeSpec();
      param->name = Expect(TokenKind::kIdentifier, "in parameter name").text;
      // Accept `T a[]` as an alternative pointer spelling.
      if (MatchTok(TokenKind::kLBracket)) {
        Expect(TokenKind::kRBracket, "in array parameter");
        param->type.is_pointer = true;
      }
      param->is_param = true;
      function->params.push_back(std::move(param));
    } while (MatchTok(TokenKind::kComma));
  }
  Expect(TokenKind::kRParen, "after parameter list");
  function->body = ParseCompound();
  return function;
}

// ---------------------------------------------------------------------------
// Statements
// ---------------------------------------------------------------------------

std::vector<Directive> Parser::CollectDirectives() {
  std::vector<Directive> directives;
  while (Check(TokenKind::kPragma)) {
    const Token pragma = Advance();
    directives.push_back(ParsePragmaText(pragma));
  }
  return directives;
}

StmtPtr Parser::ParseStatement() {
  std::vector<Directive> directives = CollectDirectives();
  StmtPtr stmt;
  switch (Peek().kind) {
    case TokenKind::kLBrace:
      stmt = ParseCompound();
      break;
    case TokenKind::kKwIf:
      stmt = ParseIf();
      break;
    case TokenKind::kKwFor:
      stmt = ParseFor();
      break;
    case TokenKind::kKwWhile:
      stmt = ParseWhile();
      break;
    case TokenKind::kKwDo:
      stmt = ParseDoWhile();
      break;
    case TokenKind::kKwReturn:
      stmt = ParseReturn();
      break;
    case TokenKind::kKwBreak: {
      auto s = std::make_unique<BreakStmt>();
      s->loc = Advance().location;
      Expect(TokenKind::kSemicolon, "after 'break'");
      stmt = std::move(s);
      break;
    }
    case TokenKind::kKwContinue: {
      auto s = std::make_unique<ContinueStmt>();
      s->loc = Advance().location;
      Expect(TokenKind::kSemicolon, "after 'continue'");
      stmt = std::move(s);
      break;
    }
    case TokenKind::kSemicolon: {
      // Empty statement: used as an anchor for standalone pragmas such as
      // `#pragma acc update host(...)` at the end of a block.
      auto s = std::make_unique<ExprStmt>();
      s->loc = Advance().location;
      stmt = std::move(s);
      break;
    }
    default:
      stmt = ParseSimpleStatement();
      Expect(TokenKind::kSemicolon, "after statement");
      break;
  }
  stmt->directives = std::move(directives);
  return stmt;
}

std::unique_ptr<CompoundStmt> Parser::ParseCompound() {
  auto compound = std::make_unique<CompoundStmt>();
  compound->loc = Expect(TokenKind::kLBrace, "to open a block").location;
  while (!Check(TokenKind::kRBrace)) {
    if (Check(TokenKind::kEndOfFile)) Fail("unterminated block");
    compound->body.push_back(ParseStatement());
  }
  Expect(TokenKind::kRBrace, "to close a block");
  return compound;
}

StmtPtr Parser::ParseIf() {
  auto stmt = std::make_unique<IfStmt>();
  stmt->loc = Expect(TokenKind::kKwIf, "").location;
  Expect(TokenKind::kLParen, "after 'if'");
  stmt->cond = ParseExpression();
  Expect(TokenKind::kRParen, "after if condition");
  stmt->then_stmt = ParseStatement();
  if (MatchTok(TokenKind::kKwElse)) stmt->else_stmt = ParseStatement();
  return stmt;
}

StmtPtr Parser::ParseFor() {
  auto stmt = std::make_unique<ForStmt>();
  stmt->loc = Expect(TokenKind::kKwFor, "").location;
  Expect(TokenKind::kLParen, "after 'for'");
  if (!Check(TokenKind::kSemicolon)) stmt->init = ParseSimpleStatement();
  Expect(TokenKind::kSemicolon, "after for-init");
  if (!Check(TokenKind::kSemicolon)) stmt->cond = ParseExpression();
  Expect(TokenKind::kSemicolon, "after for-condition");
  if (!Check(TokenKind::kRParen)) stmt->step = ParseSimpleStatement();
  Expect(TokenKind::kRParen, "after for-step");
  stmt->body = ParseStatement();
  return stmt;
}

StmtPtr Parser::ParseWhile() {
  auto stmt = std::make_unique<WhileStmt>();
  stmt->loc = Expect(TokenKind::kKwWhile, "").location;
  Expect(TokenKind::kLParen, "after 'while'");
  stmt->cond = ParseExpression();
  Expect(TokenKind::kRParen, "after while condition");
  stmt->body = ParseStatement();
  return stmt;
}

StmtPtr Parser::ParseDoWhile() {
  auto stmt = std::make_unique<WhileStmt>();
  stmt->is_do_while = true;
  stmt->loc = Expect(TokenKind::kKwDo, "").location;
  stmt->body = ParseStatement();
  Expect(TokenKind::kKwWhile, "after do-while body");
  Expect(TokenKind::kLParen, "after 'while'");
  stmt->cond = ParseExpression();
  Expect(TokenKind::kRParen, "after do-while condition");
  Expect(TokenKind::kSemicolon, "after do-while");
  return stmt;
}

StmtPtr Parser::ParseReturn() {
  auto stmt = std::make_unique<ReturnStmt>();
  stmt->loc = Expect(TokenKind::kKwReturn, "").location;
  if (!Check(TokenKind::kSemicolon)) stmt->value = ParseExpression();
  Expect(TokenKind::kSemicolon, "after 'return'");
  return stmt;
}

StmtPtr Parser::ParseSimpleStatement() {
  const SourceLocation loc = Peek().location;

  // Declaration.
  if (PeekIsTypeSpec()) {
    auto stmt = std::make_unique<DeclStmt>();
    stmt->loc = loc;
    stmt->decl = std::make_unique<VarDecl>();
    stmt->decl->loc = loc;
    stmt->decl->type = ParseTypeSpec();
    stmt->decl->name =
        Expect(TokenKind::kIdentifier, "in declaration").text;
    if (MatchTok(TokenKind::kAssign)) stmt->init = ParseExpression();
    return stmt;
  }

  // Prefix ++/--.
  if (Check(TokenKind::kPlusPlus) || Check(TokenKind::kMinusMinus)) {
    const bool inc = Advance().is(TokenKind::kPlusPlus);
    auto target = ParsePostfix();
    auto stmt = std::make_unique<AssignStmt>();
    stmt->loc = loc;
    stmt->target = std::move(target);
    stmt->op = inc ? AssignOp::kAddAssign : AssignOp::kSubAssign;
    auto one = std::make_unique<IntLiteral>();
    one->value = 1;
    one->loc = loc;
    stmt->value = std::move(one);
    return stmt;
  }

  // Assignment / increment / call statement: parse an lvalue-ish expression
  // first, then dispatch on what follows.
  ExprPtr lhs = ParseConditional();
  AssignOp op;
  switch (Peek().kind) {
    case TokenKind::kAssign: op = AssignOp::kAssign; break;
    case TokenKind::kPlusAssign: op = AssignOp::kAddAssign; break;
    case TokenKind::kMinusAssign: op = AssignOp::kSubAssign; break;
    case TokenKind::kStarAssign: op = AssignOp::kMulAssign; break;
    case TokenKind::kSlashAssign: op = AssignOp::kDivAssign; break;
    case TokenKind::kPlusPlus:
    case TokenKind::kMinusMinus: {
      const bool inc = Advance().is(TokenKind::kPlusPlus);
      auto stmt = std::make_unique<AssignStmt>();
      stmt->loc = loc;
      stmt->target = std::move(lhs);
      stmt->op = inc ? AssignOp::kAddAssign : AssignOp::kSubAssign;
      auto one = std::make_unique<IntLiteral>();
      one->value = 1;
      one->loc = loc;
      stmt->value = std::move(one);
      return stmt;
    }
    default: {
      auto stmt = std::make_unique<ExprStmt>();
      stmt->loc = loc;
      stmt->expr = std::move(lhs);
      return stmt;
    }
  }
  Advance();  // the assignment operator
  auto stmt = std::make_unique<AssignStmt>();
  stmt->loc = loc;
  stmt->target = std::move(lhs);
  stmt->op = op;
  stmt->value = ParseExpression();
  return stmt;
}

// ---------------------------------------------------------------------------
// Expressions
// ---------------------------------------------------------------------------

ExprPtr Parser::ParseExpression() { return ParseConditional(); }

ExprPtr Parser::ParseConditional() {
  ExprPtr cond = ParseBinary(0);
  if (!MatchTok(TokenKind::kQuestion)) return cond;
  auto expr = std::make_unique<ConditionalExpr>();
  expr->loc = cond->loc;
  expr->cond = std::move(cond);
  expr->then_expr = ParseExpression();
  Expect(TokenKind::kColon, "in conditional expression");
  expr->else_expr = ParseConditional();
  return expr;
}

ExprPtr Parser::ParseBinary(int min_precedence) {
  ExprPtr lhs = ParseUnary();
  while (true) {
    const int prec = Precedence(Peek().kind);
    if (prec < min_precedence || prec < 0) return lhs;
    const TokenKind op_token = Advance().kind;
    ExprPtr rhs = ParseBinary(prec + 1);
    auto expr = std::make_unique<BinaryExpr>();
    expr->loc = lhs->loc;
    expr->op = ToBinaryOp(op_token);
    expr->lhs = std::move(lhs);
    expr->rhs = std::move(rhs);
    lhs = std::move(expr);
  }
}

ExprPtr Parser::ParseUnary() {
  const SourceLocation loc = Peek().location;
  if (MatchTok(TokenKind::kMinus)) {
    auto expr = std::make_unique<UnaryExpr>();
    expr->loc = loc;
    expr->op = UnaryOp::kNeg;
    expr->operand = ParseUnary();
    return expr;
  }
  if (MatchTok(TokenKind::kPlus)) return ParseUnary();
  if (MatchTok(TokenKind::kBang)) {
    auto expr = std::make_unique<UnaryExpr>();
    expr->loc = loc;
    expr->op = UnaryOp::kNot;
    expr->operand = ParseUnary();
    return expr;
  }
  if (MatchTok(TokenKind::kTilde)) {
    auto expr = std::make_unique<UnaryExpr>();
    expr->loc = loc;
    expr->op = UnaryOp::kBitNot;
    expr->operand = ParseUnary();
    return expr;
  }
  // Cast: '(' type ')' unary — only when the parenthesized tokens form a type.
  if (Check(TokenKind::kLParen)) {
    const Token& after = Peek(1);
    switch (after.kind) {
      case TokenKind::kKwInt:
      case TokenKind::kKwLong:
      case TokenKind::kKwFloat:
      case TokenKind::kKwDouble:
      case TokenKind::kKwUnsigned:
      case TokenKind::kKwChar: {
        Advance();  // '('
        auto expr = std::make_unique<CastExpr>();
        expr->loc = loc;
        expr->target = ParseTypeSpec();
        Expect(TokenKind::kRParen, "after cast type");
        expr->operand = ParseUnary();
        return expr;
      }
      default:
        break;
    }
  }
  return ParsePostfix();
}

ExprPtr Parser::ParsePostfix() {
  ExprPtr expr = ParsePrimary();
  while (Check(TokenKind::kLBracket)) {
    Advance();
    auto subscript = std::make_unique<SubscriptExpr>();
    subscript->loc = expr->loc;
    subscript->base = std::move(expr);
    subscript->index = ParseExpression();
    Expect(TokenKind::kRBracket, "after subscript");
    expr = std::move(subscript);
  }
  return expr;
}

ExprPtr Parser::ParsePrimary() {
  const Token& token = Peek();
  switch (token.kind) {
    case TokenKind::kIntLiteral: {
      auto expr = std::make_unique<IntLiteral>();
      expr->loc = token.location;
      expr->value = token.int_value;
      Advance();
      return expr;
    }
    case TokenKind::kFloatLiteral: {
      auto expr = std::make_unique<FloatLiteral>();
      expr->loc = token.location;
      expr->value = token.float_value;
      expr->is_float32 = token.text.find('f') != std::string::npos;
      Advance();
      return expr;
    }
    case TokenKind::kIdentifier: {
      const std::string name = token.text;
      const SourceLocation loc = token.location;
      Advance();
      if (MatchTok(TokenKind::kLParen)) {
        auto call = std::make_unique<CallExpr>();
        call->loc = loc;
        call->callee = name;
        if (!Check(TokenKind::kRParen)) {
          do {
            call->args.push_back(ParseExpression());
          } while (MatchTok(TokenKind::kComma));
        }
        Expect(TokenKind::kRParen, "after call arguments");
        return call;
      }
      auto ref = std::make_unique<VarRef>();
      ref->loc = loc;
      ref->name = name;
      return ref;
    }
    case TokenKind::kLParen: {
      Advance();
      ExprPtr expr = ParseExpression();
      Expect(TokenKind::kRParen, "after parenthesized expression");
      return expr;
    }
    default:
      Fail(std::string("expected an expression, got ") +
           TokenKindName(token.kind));
  }
}

ExprPtr Parser::ParseExpressionString(const std::string& text) {
  SourceBuffer buffer("<expr>", text);
  Parser parser("<expr>", Lexer(buffer).LexAll());
  ExprPtr expr = parser.ParseExpression();
  if (!parser.Check(TokenKind::kEndOfFile)) {
    parser.Fail("trailing tokens after expression");
  }
  return expr;
}

// ---------------------------------------------------------------------------
// Pragmas
// ---------------------------------------------------------------------------

Directive Parser::ParsePragmaText(const Token& pragma_token) {
  SourceBuffer buffer(stream_name_ + ":pragma", pragma_token.text);
  Parser sub(stream_name_, Lexer(buffer).LexAll());
  // Expect "pragma acc <directive> ...".
  const Token& kw = sub.Expect(TokenKind::kIdentifier, "at pragma start");
  if (kw.text != "pragma") sub.Fail("expected 'pragma'");
  const Token& acc = sub.Expect(TokenKind::kIdentifier, "after 'pragma'");
  if (acc.text != "acc") sub.Fail("only 'acc' pragmas are supported");
  return sub.ParseDirectiveBody(pragma_token.location);
}

Directive Parser::ParseDirectiveBody(SourceLocation loc) {
  Directive directive;
  directive.loc = loc;
  const Token& name = Expect(TokenKind::kIdentifier, "as directive name");
  const std::string& n = name.text;
  if (n == "data") {
    directive.kind = DirectiveKind::kData;
    ParseDataClauses(directive, /*allow_reduction=*/false);
  } else if (n == "enter" || n == "exit") {
    const Token& data_kw =
        Expect(TokenKind::kIdentifier, "after 'enter'/'exit'");
    if (data_kw.text != "data") {
      Fail("expected 'data' after '" + n + "'");
    }
    directive.kind =
        n == "enter" ? DirectiveKind::kEnterData : DirectiveKind::kExitData;
    ParseDataClauses(directive, /*allow_reduction=*/false);
    for (const auto& clause : directive.data_clauses) {
      const bool entering = directive.kind == DirectiveKind::kEnterData;
      const bool ok = entering
                          ? (clause.kind == DataClauseKind::kCopyIn ||
                             clause.kind == DataClauseKind::kCreate)
                          : (clause.kind == DataClauseKind::kCopyOut ||
                             clause.kind == DataClauseKind::kDelete);
      if (!ok) {
        Fail(std::string("clause '") + DataClauseKindName(clause.kind) +
             "' not allowed on '" + n + " data'");
      }
    }
  } else if (n == "parallel" || n == "kernels") {
    directive.kind =
        n == "parallel" ? DirectiveKind::kParallel : DirectiveKind::kKernels;
    if (Check(TokenKind::kIdentifier) && Peek().text == "loop") {
      Advance();
      directive.combined_loop = true;
    }
    ParseDataClauses(directive, /*allow_reduction=*/true);
  } else if (n == "loop") {
    directive.kind = DirectiveKind::kLoop;
    ParseDataClauses(directive, /*allow_reduction=*/true);
  } else if (n == "update") {
    directive.kind = DirectiveKind::kUpdate;
    while (Check(TokenKind::kIdentifier)) {
      const std::string clause = Advance().text;
      UpdateClause update;
      if (clause == "host" || clause == "self") {
        update.to_host = true;
      } else if (clause == "device") {
        update.to_host = false;
      } else {
        Fail("unknown update clause '" + clause + "'");
      }
      Expect(TokenKind::kLParen, "after update clause");
      do {
        update.sections.push_back(ParseArraySection());
      } while (MatchTok(TokenKind::kComma));
      Expect(TokenKind::kRParen, "after update clause");
      directive.updates.push_back(std::move(update));
      MatchTok(TokenKind::kComma);
    }
  } else if (n == "localaccess") {
    // Extension syntax:
    //   #pragma acc localaccess(A: stride(2), left(1), right(1)) (B) ...
    directive.kind = DirectiveKind::kLocalAccess;
    // Allow several parenthesized specs after the directive name.
    while (MatchTok(TokenKind::kLParen)) {
      LocalAccessSpec spec;
      spec.loc = Peek().location;
      spec.array = Expect(TokenKind::kIdentifier, "as localaccess array").text;
      if (MatchTok(TokenKind::kColon)) {
        do {
          const Token& param =
              Expect(TokenKind::kIdentifier, "as localaccess parameter");
          Expect(TokenKind::kLParen, "after localaccess parameter");
          ExprPtr value = ParseExpression();
          Expect(TokenKind::kRParen, "after localaccess parameter value");
          if (param.text == "stride") {
            spec.stride = std::move(value);
          } else if (param.text == "cols") {
            spec.cols = std::move(value);
          } else if (param.text == "left") {
            spec.left = std::move(value);
          } else if (param.text == "right") {
            spec.right = std::move(value);
          } else {
            Fail("unknown localaccess parameter '" + param.text + "'");
          }
        } while (MatchTok(TokenKind::kComma));
      }
      Expect(TokenKind::kRParen, "after localaccess spec");
      directive.local_access.push_back(std::move(spec));
      MatchTok(TokenKind::kComma);
    }
    if (directive.local_access.empty()) {
      Fail("localaccess requires at least one (array ...) spec");
    }
  } else if (n == "reductiontoarray") {
    // Extension syntax:  #pragma acc reductiontoarray(+: hist[0:k])
    directive.kind = DirectiveKind::kReductionToArray;
    Expect(TokenKind::kLParen, "after 'reductiontoarray'");
    ReductionToArraySpec spec;
    spec.loc = Peek().location;
    spec.op = ParseReductionOp();
    Expect(TokenKind::kColon, "after reduction operator");
    ArraySection section = ParseArraySection();
    spec.array = std::move(section.name);
    spec.lower = std::move(section.lower);
    spec.length = std::move(section.length);
    Expect(TokenKind::kRParen, "after reductiontoarray spec");
    directive.reduction_to_array = std::move(spec);
  } else {
    Fail("unknown acc directive '" + n + "'");
  }
  if (!Check(TokenKind::kEndOfFile)) {
    Fail("trailing tokens in directive");
  }
  return directive;
}

void Parser::ParseDataClauses(Directive& directive, bool allow_reduction) {
  while (Check(TokenKind::kIdentifier)) {
    const std::string clause = Advance().text;
    if (clause == "copy" || clause == "copyin" || clause == "copyout" ||
        clause == "create" || clause == "present" || clause == "delete" ||
        clause == "present_or_copy" || clause == "pcopy") {
      DataClause data;
      if (clause == "copy" || clause == "present_or_copy" || clause == "pcopy") {
        data.kind = DataClauseKind::kCopy;
      } else if (clause == "copyin") {
        data.kind = DataClauseKind::kCopyIn;
      } else if (clause == "copyout") {
        data.kind = DataClauseKind::kCopyOut;
      } else if (clause == "create") {
        data.kind = DataClauseKind::kCreate;
      } else if (clause == "delete") {
        data.kind = DataClauseKind::kDelete;
      } else {
        data.kind = DataClauseKind::kPresent;
      }
      Expect(TokenKind::kLParen, "after data clause");
      do {
        data.sections.push_back(ParseArraySection());
      } while (MatchTok(TokenKind::kComma));
      Expect(TokenKind::kRParen, "after data clause");
      directive.data_clauses.push_back(std::move(data));
    } else if (clause == "reduction") {
      if (!allow_reduction) Fail("reduction clause not allowed here");
      Expect(TokenKind::kLParen, "after 'reduction'");
      ReductionClause reduction;
      reduction.op = ParseReductionOp();
      Expect(TokenKind::kColon, "in reduction clause");
      do {
        reduction.vars.push_back(
            Expect(TokenKind::kIdentifier, "as reduction variable").text);
      } while (MatchTok(TokenKind::kComma));
      Expect(TokenKind::kRParen, "after reduction clause");
      directive.reductions.push_back(std::move(reduction));
    } else if (clause == "independent") {
      directive.independent = true;
    } else if (clause == "gang" || clause == "worker" || clause == "vector" ||
               clause == "num_gangs" || clause == "vector_length" ||
               clause == "num_workers") {
      // Fine-grained single-GPU tuning clauses: accepted; numeric arguments
      // recorded where they affect grid geometry.
      if (MatchTok(TokenKind::kLParen)) {
        ExprPtr value = ParseExpression();
        if (clause == "num_gangs" && value->kind == ExprKind::kIntLiteral) {
          directive.num_gangs = As<IntLiteral>(*value).value;
        }
        if ((clause == "vector_length" || clause == "vector") &&
            value->kind == ExprKind::kIntLiteral) {
          directive.vector_length = As<IntLiteral>(*value).value;
        }
        Expect(TokenKind::kRParen, "after clause argument");
      }
    } else {
      Fail("unknown clause '" + clause + "'");
    }
    MatchTok(TokenKind::kComma);
  }
}

ArraySection Parser::ParseArraySection() {
  ArraySection section;
  section.loc = Peek().location;
  section.name = Expect(TokenKind::kIdentifier, "as array name").text;
  if (MatchTok(TokenKind::kLBracket)) {
    section.lower = ParseExpression();
    Expect(TokenKind::kColon, "in array section");
    section.length = ParseExpression();
    Expect(TokenKind::kRBracket, "after array section");
    if (MatchTok(TokenKind::kLBracket)) {
      section.lower2 = ParseExpression();
      Expect(TokenKind::kColon, "in array section");
      section.length2 = ParseExpression();
      Expect(TokenKind::kRBracket, "after array section");
    }
  }
  return section;
}

ReductionOp Parser::ParseReductionOp() {
  if (MatchTok(TokenKind::kPlus)) return ReductionOp::kAdd;
  if (MatchTok(TokenKind::kStar)) return ReductionOp::kMul;
  const Token& token = Expect(TokenKind::kIdentifier, "as reduction operator");
  if (token.text == "min") return ReductionOp::kMin;
  if (token.text == "max") return ReductionOp::kMax;
  Fail("unknown reduction operator '" + token.text + "'");
}

}  // namespace accmg::frontend
