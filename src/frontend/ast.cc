#include "frontend/ast.h"

namespace accmg::frontend {

const char* BinaryOpSpelling(BinaryOp op) {
  switch (op) {
    case BinaryOp::kAdd: return "+";
    case BinaryOp::kSub: return "-";
    case BinaryOp::kMul: return "*";
    case BinaryOp::kDiv: return "/";
    case BinaryOp::kMod: return "%";
    case BinaryOp::kLt: return "<";
    case BinaryOp::kLe: return "<=";
    case BinaryOp::kGt: return ">";
    case BinaryOp::kGe: return ">=";
    case BinaryOp::kEq: return "==";
    case BinaryOp::kNe: return "!=";
    case BinaryOp::kLogicalAnd: return "&&";
    case BinaryOp::kLogicalOr: return "||";
    case BinaryOp::kBitAnd: return "&";
    case BinaryOp::kBitOr: return "|";
    case BinaryOp::kBitXor: return "^";
    case BinaryOp::kShl: return "<<";
    case BinaryOp::kShr: return ">>";
  }
  return "?";
}

const char* UnaryOpSpelling(UnaryOp op) {
  switch (op) {
    case UnaryOp::kNeg: return "-";
    case UnaryOp::kNot: return "!";
    case UnaryOp::kBitNot: return "~";
  }
  return "?";
}

const char* DirectiveKindName(DirectiveKind kind) {
  switch (kind) {
    case DirectiveKind::kData: return "data";
    case DirectiveKind::kEnterData: return "enter data";
    case DirectiveKind::kExitData: return "exit data";
    case DirectiveKind::kParallel: return "parallel";
    case DirectiveKind::kKernels: return "kernels";
    case DirectiveKind::kLoop: return "loop";
    case DirectiveKind::kUpdate: return "update";
    case DirectiveKind::kLocalAccess: return "localaccess";
    case DirectiveKind::kReductionToArray: return "reductiontoarray";
  }
  return "?";
}

const char* DataClauseKindName(DataClauseKind kind) {
  switch (kind) {
    case DataClauseKind::kCopy: return "copy";
    case DataClauseKind::kCopyIn: return "copyin";
    case DataClauseKind::kCopyOut: return "copyout";
    case DataClauseKind::kCreate: return "create";
    case DataClauseKind::kPresent: return "present";
    case DataClauseKind::kDelete: return "delete";
  }
  return "?";
}

const char* ReductionOpSpelling(ReductionOp op) {
  switch (op) {
    case ReductionOp::kAdd: return "+";
    case ReductionOp::kMul: return "*";
    case ReductionOp::kMin: return "min";
    case ReductionOp::kMax: return "max";
  }
  return "?";
}

}  // namespace accmg::frontend
