#include "frontend/types.h"

namespace accmg::frontend {

const char* ScalarTypeName(ScalarType t) {
  switch (t) {
    case ScalarType::kVoid: return "void";
    case ScalarType::kInt32: return "int";
    case ScalarType::kInt64: return "long";
    case ScalarType::kFloat32: return "float";
    case ScalarType::kFloat64: return "double";
  }
  return "?";
}

std::string Type::ToString() const {
  std::string out;
  if (is_const) out += "const ";
  out += ScalarTypeName(scalar);
  if (is_pointer) out += "*";
  return out;
}

ScalarType CommonType(ScalarType a, ScalarType b) {
  if (a == ScalarType::kFloat64 || b == ScalarType::kFloat64) {
    return ScalarType::kFloat64;
  }
  if (a == ScalarType::kFloat32 || b == ScalarType::kFloat32) {
    return ScalarType::kFloat32;
  }
  if (a == ScalarType::kInt64 || b == ScalarType::kInt64) {
    return ScalarType::kInt64;
  }
  return ScalarType::kInt32;
}

}  // namespace accmg::frontend
