// AST for the mini-C + OpenACC dialect.
//
// Expressions and statements are classic unique_ptr trees. OpenACC directives
// (including the paper's `localaccess` and `reductiontoarray` extensions) are
// parsed into structured Directive values and attached to the statement they
// precede.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "frontend/source.h"
#include "frontend/types.h"

namespace accmg::frontend {

// ---------------------------------------------------------------------------
// Expressions
// ---------------------------------------------------------------------------

enum class ExprKind : int {
  kIntLiteral,
  kFloatLiteral,
  kVarRef,
  kSubscript,
  kUnary,
  kBinary,
  kCall,
  kCast,
  kConditional,
};

enum class UnaryOp : int { kNeg, kNot, kBitNot };

enum class BinaryOp : int {
  kAdd, kSub, kMul, kDiv, kMod,
  kLt, kLe, kGt, kGe, kEq, kNe,
  kLogicalAnd, kLogicalOr,
  kBitAnd, kBitOr, kBitXor, kShl, kShr,
};

const char* BinaryOpSpelling(BinaryOp op);
const char* UnaryOpSpelling(UnaryOp op);

/// Math/intrinsic functions callable inside offloaded loops.
enum class Builtin : int {
  kSqrt, kFabs, kExp, kLog, kPow, kFmin, kFmax, kFloor, kCeil,
  kAbs, kMin, kMax,
};

struct Expr;
using ExprPtr = std::unique_ptr<Expr>;

struct Expr {
  ExprKind kind;
  SourceLocation loc;
  Type type;  ///< filled by Sema

  explicit Expr(ExprKind k) : kind(k) {}
  virtual ~Expr() = default;
};

struct IntLiteral final : Expr {
  std::int64_t value = 0;
  IntLiteral() : Expr(ExprKind::kIntLiteral) {}
};

struct FloatLiteral final : Expr {
  double value = 0;
  bool is_float32 = false;  ///< had the 'f' suffix
  FloatLiteral() : Expr(ExprKind::kFloatLiteral) {}
};

struct VarDecl;  // defined below

struct VarRef final : Expr {
  std::string name;
  const VarDecl* decl = nullptr;  ///< resolved by Sema (non-owning)
  VarRef() : Expr(ExprKind::kVarRef) {}
};

/// base[index]; base must be an array (pointer) variable.
struct SubscriptExpr final : Expr {
  ExprPtr base;  ///< a VarRef after Sema
  ExprPtr index;
  SubscriptExpr() : Expr(ExprKind::kSubscript) {}
};

struct UnaryExpr final : Expr {
  UnaryOp op{};
  ExprPtr operand;
  UnaryExpr() : Expr(ExprKind::kUnary) {}
};

struct BinaryExpr final : Expr {
  BinaryOp op{};
  ExprPtr lhs;
  ExprPtr rhs;
  BinaryExpr() : Expr(ExprKind::kBinary) {}
};

struct CallExpr final : Expr {
  std::string callee;
  Builtin builtin{};  ///< resolved by Sema
  std::vector<ExprPtr> args;
  CallExpr() : Expr(ExprKind::kCall) {}
};

struct CastExpr final : Expr {
  Type target;
  ExprPtr operand;
  CastExpr() : Expr(ExprKind::kCast) {}
};

struct ConditionalExpr final : Expr {
  ExprPtr cond;
  ExprPtr then_expr;
  ExprPtr else_expr;
  ConditionalExpr() : Expr(ExprKind::kConditional) {}
};

// ---------------------------------------------------------------------------
// Directives (OpenACC + the paper's extensions)
// ---------------------------------------------------------------------------

enum class DirectiveKind : int {
  kData,              ///< #pragma acc data <data-clauses> { ... }
  kEnterData,         ///< #pragma acc enter data copyin(...)/create(...)
  kExitData,          ///< #pragma acc exit data copyout(...)/delete(...)
  kParallel,          ///< #pragma acc parallel [loop] ...
  kKernels,           ///< #pragma acc kernels [loop] ...
  kLoop,              ///< #pragma acc loop ...
  kUpdate,            ///< #pragma acc update host(...)/device(...)
  kLocalAccess,       ///< extension: read range of an array per iteration
  kReductionToArray,  ///< extension: reduction statement into array elements
};

const char* DirectiveKindName(DirectiveKind kind);

enum class DataClauseKind : int {
  kCopy,
  kCopyIn,
  kCopyOut,
  kCreate,
  kPresent,
  kDelete,  ///< exit data only: discard the device copy without a copy-back
};

const char* DataClauseKindName(DataClauseKind kind);

/// `name[lower : length]` or the 2-D form `name[lower : length][lower2 :
/// length2]` (a row-major rows x cols view; the second pair is the inner
/// dimension). `lower`/`length` may be null for whole-array forms (resolved
/// by Sema against the enclosing data region); `lower2`/`length2` are null
/// for 1-D sections.
struct ArraySection {
  std::string name;
  ExprPtr lower;
  ExprPtr length;
  ExprPtr lower2;
  ExprPtr length2;
  SourceLocation loc;
};

struct DataClause {
  DataClauseKind kind{};
  std::vector<ArraySection> sections;
};

enum class ReductionOp : int { kAdd, kMul, kMin, kMax };

const char* ReductionOpSpelling(ReductionOp op);

struct ReductionClause {
  ReductionOp op{};
  std::vector<std::string> vars;
};

/// The `localaccess` extension (paper Section III-C): iteration i of the
/// annotated loop reads array elements in
/// [stride*i - left, stride*(i+1) - 1 + right].
///
/// The 2-D extension `cols(m)` declares the array a row-major 2-D grid whose
/// rows have `m` elements and whose outer dimension is iterated by the loop:
/// iteration i touches row i, and `left`/`right` become whole-row halo counts.
/// Effectively stride = m and the element halos are left*m / right*m; `cols`
/// is mutually exclusive with `stride`.
struct LocalAccessSpec {
  std::string array;
  ExprPtr stride;  ///< null means 1
  ExprPtr cols;    ///< null means 1-D; else row length of a 2-D row-major view
  ExprPtr left;    ///< null means 0
  ExprPtr right;   ///< null means 0
  SourceLocation loc;
};

/// The `reductiontoarray` extension: the next statement is a reduction whose
/// destination is `array` (indices dynamic) restricted to [lower, lower+length).
struct ReductionToArraySpec {
  ReductionOp op{};
  std::string array;
  ExprPtr lower;   ///< null means 0
  ExprPtr length;  ///< null means whole array
  SourceLocation loc;
};

struct UpdateClause {
  bool to_host = true;  ///< update host(...) vs update device(...)
  std::vector<ArraySection> sections;
};

struct Directive {
  DirectiveKind kind{};
  SourceLocation loc;

  std::vector<DataClause> data_clauses;
  std::vector<ReductionClause> reductions;
  std::vector<LocalAccessSpec> local_access;
  std::optional<ReductionToArraySpec> reduction_to_array;
  std::vector<UpdateClause> updates;

  bool combined_loop = false;  ///< `parallel loop` / `kernels loop`
  bool independent = false;
  std::int64_t num_gangs = 0;      ///< 0 = unspecified
  std::int64_t vector_length = 0;  ///< 0 = unspecified
};

// ---------------------------------------------------------------------------
// Statements
// ---------------------------------------------------------------------------

enum class StmtKind : int {
  kDecl,
  kAssign,
  kExpr,
  kIf,
  kFor,
  kWhile,
  kCompound,
  kReturn,
  kBreak,
  kContinue,
};

struct Stmt;
using StmtPtr = std::unique_ptr<Stmt>;

struct Stmt {
  StmtKind kind;
  SourceLocation loc;
  /// Directives written immediately before this statement.
  std::vector<Directive> directives;

  explicit Stmt(StmtKind k) : kind(k) {}
  virtual ~Stmt() = default;

  bool HasDirective(DirectiveKind k) const {
    for (const auto& d : directives) {
      if (d.kind == k) return true;
    }
    return false;
  }
  const Directive* FindDirective(DirectiveKind k) const {
    for (const auto& d : directives) {
      if (d.kind == k) return &d;
    }
    return nullptr;
  }
};

/// A named variable (parameter or local). Owned by the Function (params) or
/// the declaring DeclStmt (locals); referenced by VarRef::decl.
struct VarDecl {
  std::string name;
  Type type;
  SourceLocation loc;
  bool is_param = false;
  int id = -1;  ///< dense index assigned by Sema, stable within a Function
};

struct DeclStmt final : Stmt {
  std::unique_ptr<VarDecl> decl;
  ExprPtr init;  ///< may be null
  DeclStmt() : Stmt(StmtKind::kDecl) {}
};

enum class AssignOp : int { kAssign, kAddAssign, kSubAssign, kMulAssign, kDivAssign };

struct AssignStmt final : Stmt {
  ExprPtr target;  ///< VarRef or SubscriptExpr
  AssignOp op{};
  ExprPtr value;
  AssignStmt() : Stmt(StmtKind::kAssign) {}
};

struct ExprStmt final : Stmt {
  ExprPtr expr;
  ExprStmt() : Stmt(StmtKind::kExpr) {}
};

struct IfStmt final : Stmt {
  ExprPtr cond;
  StmtPtr then_stmt;
  StmtPtr else_stmt;  ///< may be null
  IfStmt() : Stmt(StmtKind::kIf) {}
};

struct ForStmt final : Stmt {
  StmtPtr init;  ///< DeclStmt or AssignStmt; may be null
  ExprPtr cond;  ///< may be null (treated as true)
  StmtPtr step;  ///< AssignStmt; may be null
  StmtPtr body;
  ForStmt() : Stmt(StmtKind::kFor) {}
};

struct WhileStmt final : Stmt {
  ExprPtr cond;
  StmtPtr body;
  /// do { body } while (cond);  — body runs before the first test.
  bool is_do_while = false;
  WhileStmt() : Stmt(StmtKind::kWhile) {}
};

struct CompoundStmt final : Stmt {
  std::vector<StmtPtr> body;
  CompoundStmt() : Stmt(StmtKind::kCompound) {}
};

struct ReturnStmt final : Stmt {
  ExprPtr value;  ///< may be null
  ReturnStmt() : Stmt(StmtKind::kReturn) {}
};

struct BreakStmt final : Stmt {
  BreakStmt() : Stmt(StmtKind::kBreak) {}
};

struct ContinueStmt final : Stmt {
  ContinueStmt() : Stmt(StmtKind::kContinue) {}
};

// ---------------------------------------------------------------------------
// Functions and programs
// ---------------------------------------------------------------------------

struct Function {
  std::string name;
  Type return_type;
  std::vector<std::unique_ptr<VarDecl>> params;
  std::unique_ptr<CompoundStmt> body;
  SourceLocation loc;
};

struct Program {
  std::vector<std::unique_ptr<Function>> functions;

  const Function* FindFunction(const std::string& name) const {
    for (const auto& f : functions) {
      if (f->name == name) return f.get();
    }
    return nullptr;
  }
};

// ---------------------------------------------------------------------------
// Convenience casts (checked in debug via kind)
// ---------------------------------------------------------------------------

template <typename T>
const T& As(const Expr& e) {
  return static_cast<const T&>(e);
}
template <typename T>
T& As(Expr& e) {
  return static_cast<T&>(e);
}
template <typename T>
const T& As(const Stmt& s) {
  return static_cast<const T&>(s);
}
template <typename T>
T& As(Stmt& s) {
  return static_cast<T&>(s);
}

}  // namespace accmg::frontend
