#include "sim/platform.h"

#include <algorithm>
#include <atomic>
#include <cstring>
#include <mutex>
#include <string>

#include "common/error.h"
#include "common/metrics.h"
#include "common/string_util.h"
#include "common/trace.h"

namespace accmg::sim {

namespace {

/// Registry handles for the platform's unified metrics; resolved once.
struct SimMetrics {
  metrics::Counter& kernel_launches;
  metrics::Counter& h2d_transfers;
  metrics::Counter& d2h_transfers;
  metrics::Counter& p2p_transfers;
  metrics::Counter& h2d_bytes;
  metrics::Counter& d2h_bytes;
  metrics::Counter& p2p_bytes;
  metrics::Histogram& transfer_bytes;
  metrics::Histogram& kernel_seconds;

  static SimMetrics& Get() {
    static SimMetrics m{
        metrics::Registry::Global().counter("sim.kernel_launches"),
        metrics::Registry::Global().counter("sim.h2d_transfers"),
        metrics::Registry::Global().counter("sim.d2h_transfers"),
        metrics::Registry::Global().counter("sim.p2p_transfers"),
        metrics::Registry::Global().counter("sim.h2d_bytes"),
        metrics::Registry::Global().counter("sim.d2h_bytes"),
        metrics::Registry::Global().counter("sim.p2p_bytes"),
        metrics::Registry::Global().histogram("sim.transfer_bytes"),
        metrics::Registry::Global().histogram("sim.kernel_seconds"),
    };
    return m;
  }
};

/// Records one operation on the simulated timeline. The category is the
/// runtime phase that issued it (dirty merge, miss flush, halo, reduction)
/// when a trace::PhaseScope is active, else `fallback_cat`. The name is
/// produced lazily by `make_name` so the billing hot path never pays for
/// string construction while the tracer is disabled.
template <typename NameFn>
void RecordSimSpan(NameFn&& make_name, const char* fallback_cat, int device,
                   double end_s, double duration_s) {
  auto& tracer = trace::Tracer::Global();
  if (!tracer.enabled()) return;
  trace::Event event;
  const char* phase = trace::PhaseScope::Current();
  event.name = make_name();
  event.category = phase != nullptr ? phase : fallback_cat;
  event.timeline = trace::Timeline::kSim;
  event.device = device;
  event.start_us = (end_s - duration_s) * 1e6;
  event.duration_us = duration_s * 1e6;
  tracer.Record(std::move(event));
}

}  // namespace

PlatformCounters& PlatformCounters::operator+=(const PlatformCounters& other) {
  kernel_launches += other.kernel_launches;
  h2d_transfers += other.h2d_transfers;
  d2h_transfers += other.d2h_transfers;
  p2p_transfers += other.p2p_transfers;
  h2d_bytes += other.h2d_bytes;
  d2h_bytes += other.d2h_bytes;
  p2p_bytes += other.p2p_bytes;
  return *this;
}

PlatformCounters PlatformCounters::operator-(
    const PlatformCounters& earlier) const {
  PlatformCounters delta;
  delta.kernel_launches = kernel_launches - earlier.kernel_launches;
  delta.h2d_transfers = h2d_transfers - earlier.h2d_transfers;
  delta.d2h_transfers = d2h_transfers - earlier.d2h_transfers;
  delta.p2p_transfers = p2p_transfers - earlier.p2p_transfers;
  delta.h2d_bytes = h2d_bytes - earlier.h2d_bytes;
  delta.d2h_bytes = d2h_bytes - earlier.d2h_bytes;
  delta.p2p_bytes = p2p_bytes - earlier.p2p_bytes;
  return delta;
}

Platform::Platform(std::vector<DeviceSpec> gpus, TopologyConfig topology,
                   CpuSpec host, std::size_t worker_threads)
    : topology_(std::move(topology)),
      host_(std::move(host)),
      workers_(worker_threads) {
  ACCMG_REQUIRE(!gpus.empty(), "platform needs at least one GPU");
  ACCMG_REQUIRE(topology_.io_group.size() == gpus.size(),
                "topology io_group size must match GPU count");
  const int groups = topology_.num_io_groups();
  io_root_resources_.reserve(static_cast<std::size_t>(groups));
  for (int g = 0; g < groups; ++g) {
    io_root_resources_.push_back(
        clock_.NewResource("io_root" + std::to_string(g)));
  }
  devices_.reserve(gpus.size());
  for (std::size_t d = 0; d < gpus.size(); ++d) {
    const auto compute =
        clock_.NewResource("gpu" + std::to_string(d) + ".compute");
    const auto dma = clock_.NewResource("gpu" + std::to_string(d) + ".dma");
    const auto async_dma =
        clock_.NewResource("gpu" + std::to_string(d) + ".dma_async");
    PublishSpecMetrics(gpus[d], static_cast<int>(d));
    devices_.push_back(std::make_unique<Device>(static_cast<int>(d),
                                                std::move(gpus[d]), compute,
                                                dma, async_dma));
  }
  PublishSpecMetrics(host_);
  device_counters_.resize(devices_.size());
}

const PlatformCounters& Platform::device_counters(int id) const {
  ACCMG_REQUIRE(id >= 0 && id < num_devices(), "bad device id");
  return device_counters_[static_cast<std::size_t>(id)];
}

Device& Platform::device(int id) {
  ACCMG_REQUIRE(id >= 0 && id < num_devices(), "bad device id");
  return *devices_[static_cast<std::size_t>(id)];
}

const Device& Platform::device(int id) const {
  ACCMG_REQUIRE(id >= 0 && id < num_devices(), "bad device id");
  return *devices_[static_cast<std::size_t>(id)];
}

std::vector<SimClock::Resource> Platform::RootResources(int device_id) const {
  const int group = topology_.io_group[static_cast<std::size_t>(device_id)];
  return {io_root_resources_[static_cast<std::size_t>(group)]};
}

double Platform::BillHostToDevice(int device_id, std::size_t bytes,
                                  double ready_at) {
  if (bytes == 0) return clock_.Now();
  double fault_mult = 1.0;
  if (faults_.armed()) {
    fault_mult = faults_.OnOperation(FaultSite::kH2D, device_id);
  }
  auto resources = RootResources(device_id);
  resources.push_back(device(device_id).dma_resource());
  const double duration =
      fault_mult * topology_.host_link.TransferSeconds(bytes);
  double end;
  {
    std::lock_guard<std::mutex> lock(accounting_mutex_);
    end = clock_.ScheduleAfter(resources, duration, ready_at);
    ++counters_.h2d_transfers;
    counters_.h2d_bytes += bytes;
    auto& dev = device_counters_[static_cast<std::size_t>(device_id)];
    ++dev.h2d_transfers;
    dev.h2d_bytes += bytes;
  }
  RecordSimSpan([&] { return "h2d " + FormatBytes(bytes); },
                trace::category::kTransfer, device_id, end, duration);
  SimMetrics& m = SimMetrics::Get();
  m.h2d_transfers.Add();
  m.h2d_bytes.Add(bytes);
  m.transfer_bytes.Observe(static_cast<double>(bytes));
  return end;
}

double Platform::BillDeviceToHost(int device_id, std::size_t bytes,
                                  double ready_at) {
  if (bytes == 0) return clock_.Now();
  double fault_mult = 1.0;
  if (faults_.armed()) {
    fault_mult = faults_.OnOperation(FaultSite::kD2H, device_id);
  }
  auto resources = RootResources(device_id);
  resources.push_back(device(device_id).dma_resource());
  const double duration =
      fault_mult * topology_.host_link.TransferSeconds(bytes);
  double end;
  {
    std::lock_guard<std::mutex> lock(accounting_mutex_);
    end = clock_.ScheduleAfter(resources, duration, ready_at);
    ++counters_.d2h_transfers;
    counters_.d2h_bytes += bytes;
    auto& dev = device_counters_[static_cast<std::size_t>(device_id)];
    ++dev.d2h_transfers;
    dev.d2h_bytes += bytes;
  }
  RecordSimSpan([&] { return "d2h " + FormatBytes(bytes); },
                trace::category::kTransfer, device_id, end, duration);
  SimMetrics& m = SimMetrics::Get();
  m.d2h_transfers.Add();
  m.d2h_bytes.Add(bytes);
  m.transfer_bytes.Observe(static_cast<double>(bytes));
  return end;
}

double Platform::BillDeviceToDevice(int src_device, int dst_device,
                                    std::size_t bytes, double ready_at,
                                    Stream stream) {
  if (bytes == 0) return clock_.Now();
  double fault_mult = 1.0;
  if (faults_.armed()) {
    // One decision keyed on the source device (which owns the transfer for
    // billing); a destination-side death still surfaces because dead
    // devices echo DeviceLostError on their next keyed operation.
    fault_mult = faults_.OnOperation(FaultSite::kP2P, src_device);
    if (!faults_.alive(dst_device)) {
      throw DeviceLostError(dst_device,
                            "device " + std::to_string(dst_device) +
                                " is lost (p2p destination)");
    }
  }
  std::vector<SimClock::Resource> resources;
  resources.push_back(device(src_device).dma_resource(stream));
  if (src_device != dst_device) {
    resources.push_back(device(dst_device).dma_resource(stream));
  }
  for (auto r : RootResources(src_device)) resources.push_back(r);
  if (topology_.io_group[static_cast<std::size_t>(src_device)] !=
      topology_.io_group[static_cast<std::size_t>(dst_device)]) {
    for (auto r : RootResources(dst_device)) resources.push_back(r);
  }

  double duration;
  if (topology_.peer_dma || src_device == dst_device) {
    duration = topology_.PeerLink(src_device, dst_device)
                   .TransferSeconds(bytes);
  } else {
    // Staged through host memory: down the source link, up the destination
    // link, serialized.
    duration = 2 * topology_.host_link.TransferSeconds(bytes);
  }
  duration *= fault_mult;
  double end;
  {
    std::lock_guard<std::mutex> lock(accounting_mutex_);
    end = clock_.ScheduleAfter(resources, duration, ready_at);
    ++counters_.p2p_transfers;
    counters_.p2p_bytes += bytes;
    // P2P attribution: the source device owns the transfer. Jobs always
    // exchange between their own devices, so either endpoint would do —
    // the source matches how the DMA engine cost is carried.
    auto& dev = device_counters_[static_cast<std::size_t>(src_device)];
    ++dev.p2p_transfers;
    dev.p2p_bytes += bytes;
  }
  RecordSimSpan(
      [&] {
        return "p2p " + std::to_string(src_device) + "->" +
               std::to_string(dst_device) + " " + FormatBytes(bytes);
      },
      trace::category::kTransfer, src_device, end, duration);
  SimMetrics& m = SimMetrics::Get();
  m.p2p_transfers.Add();
  m.p2p_bytes.Add(bytes);
  m.transfer_bytes.Observe(static_cast<double>(bytes));
  return end;
}

double Platform::CopyHostToDevice(DeviceBuffer& dst, std::size_t dst_offset,
                                  const void* src, std::size_t bytes,
                                  double ready_at) {
  if (bytes == 0) return clock_.Now();
  ACCMG_REQUIRE(dst_offset + bytes <= dst.size_bytes(),
                "H2D copy out of range for buffer '" + dst.name() + "'");
  // Bill first: an injected transfer fault must leave the destination
  // bytes untouched so a retry starts from a clean state.
  const double end = BillHostToDevice(dst.device_id(), bytes, ready_at);
  std::memcpy(dst.bytes().data() + dst_offset, src, bytes);
  return end;
}

double Platform::CopyDeviceToHost(void* dst, const DeviceBuffer& src,
                                  std::size_t src_offset, std::size_t bytes,
                                  double ready_at) {
  if (bytes == 0) return clock_.Now();
  ACCMG_REQUIRE(src_offset + bytes <= src.size_bytes(),
                "D2H copy out of range for buffer '" + src.name() + "'");
  const double end = BillDeviceToHost(src.device_id(), bytes, ready_at);
  std::memcpy(dst, src.bytes().data() + src_offset, bytes);
  return end;
}

double Platform::CopyDeviceToDevice(DeviceBuffer& dst, std::size_t dst_offset,
                                    const DeviceBuffer& src,
                                    std::size_t src_offset, std::size_t bytes,
                                    double ready_at, Stream stream) {
  if (bytes == 0) return clock_.Now();
  ACCMG_REQUIRE(src_offset + bytes <= src.size_bytes(),
                "P2P copy out of range for source '" + src.name() + "'");
  ACCMG_REQUIRE(dst_offset + bytes <= dst.size_bytes(),
                "P2P copy out of range for destination '" + dst.name() + "'");
  const double end = BillDeviceToDevice(src.device_id(), dst.device_id(),
                                        bytes, ready_at, stream);
  std::memcpy(dst.bytes().data() + dst_offset,
              src.bytes().data() + src_offset, bytes);
  return end;
}

KernelStats Platform::LaunchKernel(int device_id, const KernelLaunch& launch,
                                   double* end_s) {
  ACCMG_REQUIRE(launch.body != nullptr, "kernel launch without a body");
  ACCMG_REQUIRE(launch.num_threads >= 0, "negative thread count");
  ACCMG_REQUIRE(launch.block_size > 0, "non-positive block size");
  double fault_mult = 1.0;
  if (faults_.armed()) {
    // Consulted before the body runs: a failed launch has no data effect.
    fault_mult = faults_.OnOperation(FaultSite::kKernel, device_id);
  }
  Device& dev = device(device_id);

  KernelStats total;
  std::mutex stats_mutex;
  if (launch.num_threads > 0) {
    workers_.ParallelForChunks(
        0, launch.num_threads,
        [&](std::int64_t lo, std::int64_t hi, std::size_t) {
          KernelStats local;
          launch.body->Execute(lo, hi, local);
          std::lock_guard<std::mutex> lock(stats_mutex);
          total += local;
        });
  }

  const double compute_s =
      static_cast<double>(total.instructions) / dev.spec().instr_per_sec;
  const double memory_s =
      static_cast<double>(total.bytes_read + total.bytes_written) /
      dev.spec().mem_bandwidth_bps;
  const double duration =
      fault_mult *
      (dev.spec().launch_overhead_s + std::max(compute_s, memory_s));
  double end;
  {
    std::lock_guard<std::mutex> lock(accounting_mutex_);
    end = clock_.ScheduleAfter(dev.compute_resource(), duration,
                               launch.ready_at);
    ++counters_.kernel_launches;
    ++device_counters_[static_cast<std::size_t>(device_id)].kernel_launches;
  }
  if (end_s != nullptr) *end_s = end;
  RecordSimSpan(
      [&] {
        return launch.name.empty() ? std::string("kernel") : launch.name;
      },
      trace::category::kKernel, device_id, end, duration);
  SimMetrics& m = SimMetrics::Get();
  m.kernel_launches.Add();
  m.kernel_seconds.Observe(duration);
  return total;
}

std::size_t Platform::TotalPeakDeviceBytes() const {
  std::size_t total = 0;
  for (const auto& dev : devices_) total += dev->peak_used_bytes();
  return total;
}

void Platform::ResetAccounting() {
  clock_.Reset();
  counters_ = PlatformCounters{};
  for (auto& dev : device_counters_) dev = PlatformCounters{};
}

std::unique_ptr<Platform> MakeDesktopMachine(int num_gpus) {
  std::vector<DeviceSpec> gpus(static_cast<std::size_t>(num_gpus),
                               TeslaC2075());
  return std::make_unique<Platform>(std::move(gpus),
                                    DesktopTopology(num_gpus),
                                    CoreI7Desktop());
}

std::unique_ptr<Platform> MakeSupercomputerNode(int num_gpus) {
  std::vector<DeviceSpec> gpus(static_cast<std::size_t>(num_gpus),
                               TeslaM2050());
  return std::make_unique<Platform>(std::move(gpus),
                                    SupercomputerTopology(num_gpus),
                                    DualXeonNode());
}

}  // namespace accmg::sim
