// Device memory buffers.
//
// Each simulated GPU owns a disjoint set of buffers; a buffer's bytes live in
// host RAM but are only legally touchable by kernels launched on the owning
// device and by explicit platform copy operations. This disjointness is what
// makes the runtime's data-placement logic falsifiable: a missing transfer
// yields a wrong answer, exactly as on real hardware.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/error.h"

namespace accmg::sim {

class Device;

class DeviceBuffer {
 public:
  DeviceBuffer(const DeviceBuffer&) = delete;
  DeviceBuffer& operator=(const DeviceBuffer&) = delete;
  ~DeviceBuffer();

  int device_id() const { return device_id_; }
  std::size_t size_bytes() const { return bytes_.size(); }
  const std::string& name() const { return name_; }

  /// Raw byte access, used by the platform's copy engines.
  std::span<std::byte> bytes() { return bytes_; }
  std::span<const std::byte> bytes() const { return bytes_; }

  /// Typed view over the whole buffer. The buffer size must be a multiple of
  /// sizeof(T).
  template <typename T>
  std::span<T> Typed() {
    ACCMG_REQUIRE(bytes_.size() % sizeof(T) == 0,
                  "buffer '" + name_ + "' size is not a multiple of sizeof(T)");
    return std::span<T>(reinterpret_cast<T*>(bytes_.data()),
                        bytes_.size() / sizeof(T));
  }
  template <typename T>
  std::span<const T> Typed() const {
    ACCMG_REQUIRE(bytes_.size() % sizeof(T) == 0,
                  "buffer '" + name_ + "' size is not a multiple of sizeof(T)");
    return std::span<const T>(reinterpret_cast<const T*>(bytes_.data()),
                              bytes_.size() / sizeof(T));
  }

 private:
  friend class Device;
  DeviceBuffer(Device* owner, int device_id, std::string name,
               std::size_t size);

  Device* owner_;  ///< for releasing the allocation accounting on destruction
  int device_id_;
  std::string name_;
  std::vector<std::byte> bytes_;
};

}  // namespace accmg::sim
