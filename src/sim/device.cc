#include "sim/device.h"

#include <algorithm>

#include "common/string_util.h"

namespace accmg::sim {

const char* StreamName(Stream stream) {
  return stream == Stream::kAsync ? "async" : "default";
}

DeviceBuffer::DeviceBuffer(Device* owner, int device_id, std::string name,
                           std::size_t size)
    : owner_(owner),
      device_id_(device_id),
      name_(std::move(name)),
      bytes_(size) {}

DeviceBuffer::~DeviceBuffer() {
  if (owner_ != nullptr) owner_->Release(bytes_.size());
}

std::unique_ptr<DeviceBuffer> Device::Allocate(std::string name,
                                               std::size_t bytes) {
  if (used_bytes_ + bytes > spec_.memory_bytes) {
    throw DeviceError("device " + std::to_string(id_) + " (" + spec_.name +
                      "): out of memory allocating '" + name + "' (" +
                      FormatBytes(bytes) + " requested, " +
                      FormatBytes(spec_.memory_bytes - used_bytes_) +
                      " free)");
  }
  used_bytes_ += bytes;
  peak_used_bytes_ = std::max(peak_used_bytes_, used_bytes_);
  return std::unique_ptr<DeviceBuffer>(
      new DeviceBuffer(this, id_, std::move(name), bytes));
}

void Device::Release(std::size_t bytes) {
  ACCMG_CHECK(bytes <= used_bytes_, "device memory accounting underflow");
  used_bytes_ -= bytes;
}

}  // namespace accmg::sim
