// Analytic cost model parameters for the virtual platform.
//
// The paper evaluates on two machines (Table I): a desktop with one Core i7
// and two Tesla C2075, and a TSUBAME2.0 thin node with two Xeon X5670 and
// three Tesla M2050. We model each processor with a peak instruction
// throughput and a memory bandwidth; a kernel's simulated duration is the
// roofline max of its compute and memory times plus a fixed launch overhead.
#pragma once

#include <cstdint>
#include <string>

namespace accmg::sim {

/// Specification of one simulated GPU.
struct DeviceSpec {
  std::string name;
  std::uint64_t memory_bytes = 0;     ///< device memory capacity
  double instr_per_sec = 0;           ///< aggregate dynamic-instruction rate
  double mem_bandwidth_bps = 0;       ///< device-memory bandwidth (bytes/s)
  double launch_overhead_s = 0;       ///< fixed per-kernel-launch cost
};

/// Specification of the host CPU(s) used by the "OpenMP" baseline.
struct CpuSpec {
  std::string name;
  int threads = 1;                    ///< OpenMP thread count in the paper
  double instr_per_sec = 0;           ///< aggregate rate across all threads
  double mem_bandwidth_bps = 0;
};

/// Tesla C2075 (desktop machine): 6 GB GDDR5, 144 GB/s, ~1.0 TFLOP SP peak.
/// The instruction rate folds real-world efficiency (~35 %) into the peak.
DeviceSpec TeslaC2075();

/// Tesla M2050 (TSUBAME2.0 thin node): 3 GB GDDR5, 148 GB/s.
DeviceSpec TeslaM2050();

/// Core i7 (6 cores + HT, paper runs 12 OpenMP threads).
CpuSpec CoreI7Desktop();

/// 2x Xeon X5670 (12 cores + HT, paper runs 24 OpenMP threads).
CpuSpec DualXeonNode();

/// Publishes the spec's model parameters as metrics gauges
/// ("sim.gpu<id>.instr_per_sec", "...mem_bandwidth_bps",
/// "...launch_overhead_s"), so a metrics dump records the cost model any
/// accompanying trace was produced under. Called by Platform on
/// construction.
void PublishSpecMetrics(const DeviceSpec& spec, int device_id);
void PublishSpecMetrics(const CpuSpec& spec);

}  // namespace accmg::sim
