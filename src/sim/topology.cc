#include "sim/topology.h"

#include <algorithm>

#include "common/error.h"

namespace accmg::sim {

namespace {
constexpr double kGB = 1e9;
}

int TopologyConfig::num_io_groups() const {
  int max_group = -1;
  for (int g : io_group) max_group = std::max(max_group, g);
  return max_group + 1;
}

LinkSpec TopologyConfig::PeerLink(int src, int dst) const {
  ACCMG_REQUIRE(src >= 0 && static_cast<std::size_t>(src) < io_group.size(),
                "bad src device");
  ACCMG_REQUIRE(dst >= 0 && static_cast<std::size_t>(dst) < io_group.size(),
                "bad dst device");
  LinkSpec link = peer_link;
  if (io_group[static_cast<std::size_t>(src)] !=
      io_group[static_cast<std::size_t>(dst)]) {
    link.bandwidth_bps *= cross_group_bandwidth_factor;
    link.latency_s *= 2;  // extra QPI hop
  }
  return link;
}

TopologyConfig DesktopTopology(int num_gpus) {
  ACCMG_REQUIRE(num_gpus >= 1, "need at least one GPU");
  TopologyConfig cfg;
  // PCIe gen2 x16: 8 GB/s theoretical, ~5.8 GB/s effective for pinned pages.
  cfg.host_link = LinkSpec{.bandwidth_bps = 5.8 * kGB, .latency_s = 12e-6};
  cfg.peer_link = LinkSpec{.bandwidth_bps = 5.2 * kGB, .latency_s = 15e-6};
  cfg.cross_group_bandwidth_factor = 1.0;
  cfg.peer_dma = true;
  cfg.io_group.assign(static_cast<std::size_t>(num_gpus), 0);
  return cfg;
}

TopologyConfig SupercomputerTopology(int num_gpus) {
  ACCMG_REQUIRE(num_gpus >= 1, "need at least one GPU");
  TopologyConfig cfg;
  cfg.host_link = LinkSpec{.bandwidth_bps = 5.7 * kGB, .latency_s = 14e-6};
  cfg.peer_link = LinkSpec{.bandwidth_bps = 4.6 * kGB, .latency_s = 18e-6};
  // Crossing the IOH pair costs a QPI traversal.
  cfg.cross_group_bandwidth_factor = 0.55;
  cfg.peer_dma = true;
  cfg.io_group.resize(static_cast<std::size_t>(num_gpus));
  for (int d = 0; d < num_gpus; ++d) {
    // Two GPUs under IOH 0, the third under IOH 1 (TSUBAME2.0 thin node).
    cfg.io_group[static_cast<std::size_t>(d)] = d >= 2 ? 1 : 0;
  }
  return cfg;
}

}  // namespace accmg::sim
