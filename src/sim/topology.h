// Interconnect topology of a multi-GPU node.
//
// GPUs hang off PCIe roots ("IO groups"); every transfer serializes on the
// root(s) it crosses and on the DMA engine of each involved device. Peer
// transfers between GPUs under the same root use the PCIe switch directly;
// transfers crossing roots traverse QPI at reduced bandwidth; platforms
// without peer DMA stage through host memory (two bus crossings).
#pragma once

#include <cstdint>
#include <vector>

namespace accmg::sim {

/// One bus segment: effective bandwidth and per-transfer latency.
struct LinkSpec {
  double bandwidth_bps = 0;
  double latency_s = 0;

  /// Time to move `bytes` over this link.
  double TransferSeconds(std::uint64_t bytes) const {
    return latency_s + static_cast<double>(bytes) / bandwidth_bps;
  }
};

/// Static description of the node interconnect.
struct TopologyConfig {
  /// PCIe link between host memory and each GPU.
  LinkSpec host_link;
  /// Direct GPU<->GPU path under one PCIe root.
  LinkSpec peer_link;
  /// Derating applied to peer transfers that cross IO groups (QPI hop);
  /// 1.0 means no penalty.
  double cross_group_bandwidth_factor = 1.0;
  /// Whether the platform supports direct peer DMA at all. When false, every
  /// device-to-device copy is staged through host memory.
  bool peer_dma = true;
  /// io_group[d] = PCIe root the device is attached to.
  std::vector<int> io_group;

  int num_io_groups() const;

  /// Effective link for a peer copy src -> dst.
  LinkSpec PeerLink(int src, int dst) const;
};

/// Desktop machine from Table I: both C2075 under a single PCIe gen2 root.
TopologyConfig DesktopTopology(int num_gpus);

/// TSUBAME2.0 thin node from Table I: three M2050 split across two IOHs
/// (two on the first, one on the second), peer traffic across the QPI hop
/// is slower.
TopologyConfig SupercomputerTopology(int num_gpus);

}  // namespace accmg::sim
