#include "sim/cost_model.h"

#include "common/metrics.h"

namespace accmg::sim {

namespace {
constexpr double kGiga = 1e9;
constexpr std::uint64_t kGiB = 1024ull * 1024 * 1024;
}  // namespace

DeviceSpec TeslaC2075() {
  return DeviceSpec{
      .name = "Tesla C2075",
      .memory_bytes = 6 * kGiB,
      // 1.03 TFLOP SP peak; sustained rate for the irregular, divergent
      // kernel mix of the three applications (gathers, data-dependent
      // branches) calibrated to ~45 G dynamic IR instructions/s so the
      // GPU:CPU ratios land in the bands of the paper's Fig. 7.
      .instr_per_sec = 45 * kGiga,
      .mem_bandwidth_bps = 144 * kGiga,
      .launch_overhead_s = 8e-6,
  };
}

DeviceSpec TeslaM2050() {
  return DeviceSpec{
      .name = "Tesla M2050",
      .memory_bytes = 3 * kGiB,
      .instr_per_sec = 46 * kGiga,
      .mem_bandwidth_bps = 148 * kGiga,
      .launch_overhead_s = 8e-6,
  };
}

CpuSpec CoreI7Desktop() {
  return CpuSpec{
      .name = "Core i7 (6c/12t)",
      .threads = 12,
      // Sustained scalar rate of gcc -O2 OpenMP code on 6 cores + HT for
      // the same irregular mix; effective memory bandwidth reflects the
      // gather-heavy access patterns (far below the 21 GB/s stream peak).
      .instr_per_sec = 12 * kGiga,
      .mem_bandwidth_bps = 8.5 * kGiga,
  };
}

CpuSpec DualXeonNode() {
  return CpuSpec{
      .name = "2x Xeon X5670 (12c/24t)",
      .threads = 24,
      .instr_per_sec = 26 * kGiga,
      .mem_bandwidth_bps = 16 * kGiga,
  };
}

void PublishSpecMetrics(const DeviceSpec& spec, int device_id) {
  auto& registry = metrics::Registry::Global();
  const std::string prefix = "sim.gpu" + std::to_string(device_id) + ".";
  registry.gauge(prefix + "instr_per_sec").Set(spec.instr_per_sec);
  registry.gauge(prefix + "mem_bandwidth_bps").Set(spec.mem_bandwidth_bps);
  registry.gauge(prefix + "launch_overhead_s").Set(spec.launch_overhead_s);
  registry.gauge(prefix + "memory_bytes")
      .Set(static_cast<double>(spec.memory_bytes));
}

void PublishSpecMetrics(const CpuSpec& spec) {
  auto& registry = metrics::Registry::Global();
  registry.gauge("sim.cpu.threads").Set(spec.threads);
  registry.gauge("sim.cpu.instr_per_sec").Set(spec.instr_per_sec);
  registry.gauge("sim.cpu.mem_bandwidth_bps").Set(spec.mem_bandwidth_bps);
}

}  // namespace accmg::sim
