// One simulated GPU: a memory arena with capacity accounting plus the
// device's performance specification.
#pragma once

#include <cstddef>
#include <memory>
#include <string>

#include "sim/buffer.h"
#include "sim/clock.h"
#include "sim/cost_model.h"

namespace accmg::sim {

/// Copy-engine selector for transfers. Fermi-class Teslas (the paper's
/// C2075/M2050) carry two DMA engines; the default stream drives the first,
/// and the async pipeline may place peer exchanges on the second so a halo
/// transfer can proceed while the default engine services loads.
enum class Stream : int { kDefault = 0, kAsync = 1 };

const char* StreamName(Stream stream);

class Device {
 public:
  Device(int id, DeviceSpec spec, SimClock::Resource compute,
         SimClock::Resource dma, SimClock::Resource async_dma)
      : id_(id),
        spec_(std::move(spec)),
        compute_(compute),
        dma_(dma),
        async_dma_(async_dma) {}

  Device(const Device&) = delete;
  Device& operator=(const Device&) = delete;

  int id() const { return id_; }
  const DeviceSpec& spec() const { return spec_; }
  SimClock::Resource compute_resource() const { return compute_; }
  SimClock::Resource dma_resource() const { return dma_; }
  /// The second copy engine; see Stream.
  SimClock::Resource async_dma_resource() const { return async_dma_; }
  SimClock::Resource dma_resource(Stream stream) const {
    return stream == Stream::kAsync ? async_dma_ : dma_;
  }

  /// Allocates `bytes` of device memory. Throws DeviceError when the device
  /// is out of memory (matches cudaMalloc failure).
  std::unique_ptr<DeviceBuffer> Allocate(std::string name, std::size_t bytes);

  std::size_t used_bytes() const { return used_bytes_; }
  std::size_t capacity_bytes() const { return spec_.memory_bytes; }
  /// High-water mark of used_bytes over the device's lifetime.
  std::size_t peak_used_bytes() const { return peak_used_bytes_; }

 private:
  friend class DeviceBuffer;
  void Release(std::size_t bytes);

  int id_;
  DeviceSpec spec_;
  SimClock::Resource compute_;
  SimClock::Resource dma_;
  SimClock::Resource async_dma_;
  std::size_t used_bytes_ = 0;
  std::size_t peak_used_bytes_ = 0;
};

}  // namespace accmg::sim
