// Simulated-time accounting for the virtual platform.
//
// The clock models the machine as a set of serializing resources (each GPU's
// compute engine, each PCIe root/QPI segment, each DMA engine). Scheduling an
// operation reserves every resource it uses from max(now, free time of those
// resources) for its duration; operations on disjoint resources overlap.
// BSP phase boundaries call Barrier(category), which advances "now" to the
// completion of all outstanding work and attributes the elapsed simulated
// time to that category. This reproduces the paper's Fig. 8 breakdown
// (KERNELS / CPU-GPU / GPU-GPU) directly.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

namespace accmg::sim {

enum class TimeCategory : int {
  kKernel = 0,      ///< GPU kernel execution ("KERNELS" in Fig. 8)
  kCpuGpu = 1,      ///< host <-> device transfers ("CPU-GPU")
  kGpuGpu = 2,      ///< device <-> device transfers ("GPU-GPU")
  kHostCompute = 3, ///< CPU baseline compute
  kOther = 4,
};
inline constexpr int kNumTimeCategories = 5;

const char* TimeCategoryName(TimeCategory c);

/// Per-category simulated time totals.
struct TimeBreakdown {
  std::array<double, kNumTimeCategories> seconds{};

  double operator[](TimeCategory c) const {
    return seconds[static_cast<int>(c)];
  }
  double Total() const;
  /// CPU-GPU + GPU-GPU, the paper's "communication" share.
  double Communication() const;
};

class SimClock {
 public:
  using Resource = int;

  /// Registers a serializing resource (free at the current time).
  Resource NewResource(std::string name);

  /// Current phase-start time.
  double Now() const { return now_; }

  /// Schedules an operation of `duration` seconds on every resource in
  /// `resources` (they are all held for the full duration). Returns the
  /// operation's end time. `duration` must be >= 0.
  double Schedule(const std::vector<Resource>& resources, double duration);

  /// Convenience overload for a single resource.
  double Schedule(Resource resource, double duration);

  /// Like Schedule, but the operation additionally cannot start before
  /// `ready_at` (a dependence on a previously scheduled operation's end
  /// time). This is how the async pipeline expresses per-stream timelines
  /// that merge at dependence joins without a global barrier.
  double ScheduleAfter(const std::vector<Resource>& resources, double duration,
                       double ready_at);
  double ScheduleAfter(Resource resource, double duration, double ready_at);

  /// Advances `now` to the completion of all outstanding operations and
  /// attributes the elapsed time to `category`. Returns the elapsed time.
  double Barrier(TimeCategory category);

  /// Advances `now` to `time` (no-op when `time <= now`) and attributes the
  /// elapsed simulated time to `category`, WITHOUT waiting for outstanding
  /// operations: resources busy past `time` stay busy, so later work still
  /// serializes behind them. This is the async pipeline's dependence join —
  /// only the exposed (non-overlapped) part of an operation's latency is
  /// ever attributed. Returns the elapsed time.
  double AdvanceTo(double time, TimeCategory category);

  /// Earliest time `r` is free for new work.
  double ResourceFreeAt(Resource r) const;

  /// Completion time of all outstanding operations (what Barrier would
  /// advance `now` to), without advancing anything.
  double CompletionTime() const;

  /// Directly adds `seconds` of fully serial time (advances now and every
  /// resource). Used for host-side work that cannot overlap anything.
  void AddSerial(TimeCategory category, double seconds);

  const TimeBreakdown& breakdown() const { return breakdown_; }
  const std::string& resource_name(Resource r) const { return names_.at(r); }

  /// Clears accumulated time but keeps registered resources.
  void Reset();

 private:
  double now_ = 0;
  std::vector<double> free_at_;
  std::vector<std::string> names_;
  TimeBreakdown breakdown_;
};

}  // namespace accmg::sim
