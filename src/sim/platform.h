// The virtual multi-GPU node: devices, interconnect, simulated clock, and the
// execution engine. This layer plays the role CUDA 4.0 plays in the paper.
//
// Concurrency/timing model: data effects of copies and kernels are applied
// synchronously (sequentially consistent), while their *durations* are
// scheduled on the SimClock's serializing resources, so operations issued
// between two Barrier() calls overlap in simulated time exactly when they use
// disjoint hardware resources. The BSP structure of the runtime (Section III-A
// of the paper) makes this model exact for the executions we reproduce.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "common/thread_pool.h"
#include "sim/clock.h"
#include "sim/cost_model.h"
#include "sim/device.h"
#include "sim/fault.h"
#include "sim/kernel.h"
#include "sim/topology.h"

namespace accmg::sim {

/// Counters of everything the platform executed, for Table II style reports.
struct PlatformCounters {
  std::uint64_t kernel_launches = 0;
  std::uint64_t h2d_transfers = 0;
  std::uint64_t d2h_transfers = 0;
  std::uint64_t p2p_transfers = 0;
  std::uint64_t h2d_bytes = 0;
  std::uint64_t d2h_bytes = 0;
  std::uint64_t p2p_bytes = 0;

  PlatformCounters& operator+=(const PlatformCounters& other);
  /// Element-wise difference (this - earlier); counters are monotonic, so
  /// a snapshot delta over a window is exact.
  PlatformCounters operator-(const PlatformCounters& earlier) const;
  bool operator==(const PlatformCounters&) const = default;
};

class Platform {
 public:
  Platform(std::vector<DeviceSpec> gpus, TopologyConfig topology, CpuSpec host,
           std::size_t worker_threads = 0);

  Platform(const Platform&) = delete;
  Platform& operator=(const Platform&) = delete;

  int num_devices() const { return static_cast<int>(devices_.size()); }
  Device& device(int id);
  const Device& device(int id) const;
  const CpuSpec& host_spec() const { return host_; }
  const TopologyConfig& topology() const { return topology_; }

  SimClock& clock() { return clock_; }
  const SimClock& clock() const { return clock_; }
  ThreadPool& workers() { return workers_; }
  const PlatformCounters& counters() const { return counters_; }

  /// --- Fault injection (sim/fault.h) ---
  /// While armed, every Bill*/Copy*/LaunchKernel consults the injector
  /// before executing: the operation may throw a typed FaultError (with no
  /// data effect — copies bill before they move bytes) or run with a
  /// stall-inflated simulated duration.
  void ArmFaults(const FaultPlan& plan) { faults_.Arm(plan, num_devices()); }
  void DisarmFaults() { faults_.Disarm(); }
  FaultInjector& faults() { return faults_; }
  const FaultInjector& faults() const { return faults_; }

  /// Per-device attribution of the global counters: kernels and H2D/D2H
  /// transfers count against the device they run on / move to or from, and
  /// P2P transfers against the SOURCE device. When disjoint device subsets
  /// are leased to different service jobs (service/arena.h), summing a
  /// job's devices over a snapshot window therefore yields that job's exact
  /// billed traffic — which is how RunReport bills in shared-platform mode.
  const PlatformCounters& device_counters(int id) const;

  /// --- Copy engines (immediate data effect, simulated duration) ---
  /// Each call returns the transfer's simulated end time (or the current
  /// time when `bytes == 0`). `ready_at` delays the simulated start without
  /// affecting the (immediate) functional effect — the async pipeline's
  /// dependence edges. `stream` selects the copy engine for peer transfers
  /// (see sim::Stream); billed bytes and counters are stream-independent.

  double CopyHostToDevice(DeviceBuffer& dst, std::size_t dst_offset,
                          const void* src, std::size_t bytes,
                          double ready_at = 0);
  double CopyDeviceToHost(void* dst, const DeviceBuffer& src,
                          std::size_t src_offset, std::size_t bytes,
                          double ready_at = 0);
  /// Peer copy; staged through the host when the topology lacks peer DMA.
  double CopyDeviceToDevice(DeviceBuffer& dst, std::size_t dst_offset,
                            const DeviceBuffer& src, std::size_t src_offset,
                            std::size_t bytes, double ready_at = 0,
                            Stream stream = Stream::kDefault);

  /// --- Cost-only transfer accounting ---
  /// Schedule the simulated duration and counters of a transfer without
  /// moving bytes. Used where the functional effect is applied element-wise
  /// by the runtime (e.g. dirty-element merges) but the wire cost is that of
  /// a bulk transfer. Returns the transfer's simulated end time.
  ///
  /// Thread safety: Bill* and LaunchKernel may be issued from concurrent
  /// per-device threads (the executor launches kernels that way); clock
  /// scheduling and the counters are serialized on an internal mutex.
  /// Operations on disjoint resources commute under SimClock::Schedule, so
  /// concurrent per-device scheduling stays deterministic. Everything else
  /// (Barrier, ResetAccounting, counters()) assumes external
  /// synchronization, i.e. no in-flight billing.
  double BillHostToDevice(int device_id, std::size_t bytes,
                          double ready_at = 0);
  double BillDeviceToHost(int device_id, std::size_t bytes,
                          double ready_at = 0);
  double BillDeviceToDevice(int src_device, int dst_device, std::size_t bytes,
                            double ready_at = 0,
                            Stream stream = Stream::kDefault);

  /// --- Kernel execution ---

  /// Runs `launch` on `device_id`. Threads execute on the worker pool; the
  /// simulated duration is launch overhead + roofline(instructions, bytes)
  /// and is scheduled on the device's compute resource (no earlier than
  /// `launch.ready_at`), so kernels launched on different devices between
  /// two barriers overlap. When `end_s` is non-null it receives the
  /// kernel's simulated end time.
  KernelStats LaunchKernel(int device_id, const KernelLaunch& launch,
                           double* end_s = nullptr);

  /// BSP phase boundary; see SimClock::Barrier.
  double Barrier(TimeCategory category) { return clock_.Barrier(category); }

  /// Sum of peak device-memory use across devices.
  std::size_t TotalPeakDeviceBytes() const;

  /// Resets simulated time and counters (not device memory).
  void ResetAccounting();

 private:
  std::vector<SimClock::Resource> RootResources(int device_id) const;

  SimClock clock_;
  TopologyConfig topology_;
  CpuSpec host_;
  std::vector<std::unique_ptr<Device>> devices_;
  std::vector<SimClock::Resource> io_root_resources_;  // one per IO group
  ThreadPool workers_;
  FaultInjector faults_;
  PlatformCounters counters_;
  std::vector<PlatformCounters> device_counters_;  // parallel to devices_
  /// Serializes clock scheduling + counter updates for Bill*/LaunchKernel.
  mutable std::mutex accounting_mutex_;
};

/// Table I presets.
std::unique_ptr<Platform> MakeDesktopMachine(int num_gpus = 2);
std::unique_ptr<Platform> MakeSupercomputerNode(int num_gpus = 3);

}  // namespace accmg::sim
