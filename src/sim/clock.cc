#include "sim/clock.h"

#include <algorithm>

#include "common/error.h"

namespace accmg::sim {

const char* TimeCategoryName(TimeCategory c) {
  switch (c) {
    case TimeCategory::kKernel:
      return "KERNELS";
    case TimeCategory::kCpuGpu:
      return "CPU-GPU";
    case TimeCategory::kGpuGpu:
      return "GPU-GPU";
    case TimeCategory::kHostCompute:
      return "HOST";
    case TimeCategory::kOther:
      return "OTHER";
  }
  return "?";
}

double TimeBreakdown::Total() const {
  double total = 0;
  for (double s : seconds) total += s;
  return total;
}

double TimeBreakdown::Communication() const {
  return (*this)[TimeCategory::kCpuGpu] + (*this)[TimeCategory::kGpuGpu];
}

SimClock::Resource SimClock::NewResource(std::string name) {
  free_at_.push_back(now_);
  names_.push_back(std::move(name));
  return static_cast<Resource>(free_at_.size() - 1);
}

double SimClock::Schedule(const std::vector<Resource>& resources,
                          double duration) {
  ACCMG_REQUIRE(duration >= 0, "negative operation duration");
  ACCMG_REQUIRE(!resources.empty(), "operation uses no resources");
  double start = now_;
  for (Resource r : resources) {
    ACCMG_REQUIRE(r >= 0 && static_cast<std::size_t>(r) < free_at_.size(),
                  "unknown resource");
    start = std::max(start, free_at_[static_cast<std::size_t>(r)]);
  }
  const double end = start + duration;
  for (Resource r : resources) free_at_[static_cast<std::size_t>(r)] = end;
  return end;
}

double SimClock::Schedule(Resource resource, double duration) {
  return Schedule(std::vector<Resource>{resource}, duration);
}

double SimClock::ScheduleAfter(const std::vector<Resource>& resources,
                               double duration, double ready_at) {
  ACCMG_REQUIRE(duration >= 0, "negative operation duration");
  ACCMG_REQUIRE(!resources.empty(), "operation uses no resources");
  double start = std::max(now_, ready_at);
  for (Resource r : resources) {
    ACCMG_REQUIRE(r >= 0 && static_cast<std::size_t>(r) < free_at_.size(),
                  "unknown resource");
    start = std::max(start, free_at_[static_cast<std::size_t>(r)]);
  }
  const double end = start + duration;
  for (Resource r : resources) free_at_[static_cast<std::size_t>(r)] = end;
  return end;
}

double SimClock::ScheduleAfter(Resource resource, double duration,
                               double ready_at) {
  return ScheduleAfter(std::vector<Resource>{resource}, duration, ready_at);
}

double SimClock::Barrier(TimeCategory category) {
  double end = now_;
  for (double f : free_at_) end = std::max(end, f);
  const double elapsed = end - now_;
  breakdown_.seconds[static_cast<int>(category)] += elapsed;
  now_ = end;
  return elapsed;
}

double SimClock::AdvanceTo(double time, TimeCategory category) {
  if (time <= now_) return 0;
  const double elapsed = time - now_;
  breakdown_.seconds[static_cast<int>(category)] += elapsed;
  now_ = time;
  return elapsed;
}

double SimClock::ResourceFreeAt(Resource r) const {
  ACCMG_REQUIRE(r >= 0 && static_cast<std::size_t>(r) < free_at_.size(),
                "unknown resource");
  return free_at_[static_cast<std::size_t>(r)];
}

double SimClock::CompletionTime() const {
  double end = now_;
  for (double f : free_at_) end = std::max(end, f);
  return end;
}

void SimClock::AddSerial(TimeCategory category, double seconds) {
  ACCMG_REQUIRE(seconds >= 0, "negative serial time");
  Barrier(category);  // attribute any outstanding overlap first
  now_ += seconds;
  for (double& f : free_at_) f = now_;
  breakdown_.seconds[static_cast<int>(category)] += seconds;
}

void SimClock::Reset() {
  now_ = 0;
  std::fill(free_at_.begin(), free_at_.end(), 0.0);
  breakdown_ = TimeBreakdown{};
}

}  // namespace accmg::sim
