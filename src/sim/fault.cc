#include "sim/fault.h"

#include <algorithm>
#include <sstream>

#include "common/error.h"
#include "common/metrics.h"
#include "common/rng.h"

namespace accmg::sim {

namespace {

/// Registry handles for fault accounting; resolved once.
struct FaultMetrics {
  metrics::Counter& injected;
  metrics::Counter& injected_kernel;
  metrics::Counter& injected_transfer;
  metrics::Counter& device_lost;
  metrics::Counter& stalls;
  metrics::Gauge& armed;

  static FaultMetrics& Get() {
    static FaultMetrics m{
        metrics::Registry::Global().counter("fault.injected"),
        metrics::Registry::Global().counter("fault.injected.kernel"),
        metrics::Registry::Global().counter("fault.injected.transfer"),
        metrics::Registry::Global().counter("fault.device_lost"),
        metrics::Registry::Global().counter("fault.stalls"),
        metrics::Registry::Global().gauge("fault.armed"),
    };
    return m;
  }
};

double ParseProbability(const std::string& key, const std::string& value) {
  std::size_t used = 0;
  double p = -1;
  try {
    p = std::stod(value, &used);
  } catch (const std::exception&) {
    used = 0;
  }
  ACCMG_REQUIRE(used == value.size() && p >= 0 && p <= 1,
                "fault plan: bad probability for '" + key + "': " + value);
  return p;
}

}  // namespace

const char* FaultSiteName(FaultSite site) {
  switch (site) {
    case FaultSite::kKernel: return "kernel";
    case FaultSite::kH2D: return "h2d";
    case FaultSite::kD2H: return "d2h";
    case FaultSite::kP2P: return "p2p";
  }
  return "?";
}

bool FaultPlan::enabled() const {
  return kernel_fail_p > 0 || h2d_fail_p > 0 || d2h_fail_p > 0 ||
         p2p_fail_p > 0 || stall_p > 0 || device_loss_p > 0;
}

std::string FaultPlan::ToString() const {
  std::ostringstream os;
  os << "seed=" << seed << ",kernel=" << kernel_fail_p
     << ",h2d=" << h2d_fail_p << ",d2h=" << d2h_fail_p
     << ",p2p=" << p2p_fail_p << ",stall=" << stall_p
     << ",stall-factor=" << stall_factor << ",death=" << device_loss_p
     << ",max-deaths=" << max_device_losses;
  return os.str();
}

FaultPlan FaultPlan::Parse(const std::string& spec) {
  FaultPlan plan;
  std::istringstream in(spec);
  std::string item;
  while (std::getline(in, item, ',')) {
    if (item.empty()) continue;
    const std::size_t eq = item.find('=');
    ACCMG_REQUIRE(eq != std::string::npos,
                  "fault plan: expected key=value, got '" + item + "'");
    const std::string key = item.substr(0, eq);
    const std::string value = item.substr(eq + 1);
    if (key == "seed") {
      plan.seed = std::stoull(value);
    } else if (key == "kernel") {
      plan.kernel_fail_p = ParseProbability(key, value);
    } else if (key == "h2d") {
      plan.h2d_fail_p = ParseProbability(key, value);
    } else if (key == "d2h") {
      plan.d2h_fail_p = ParseProbability(key, value);
    } else if (key == "p2p") {
      plan.p2p_fail_p = ParseProbability(key, value);
    } else if (key == "transfer") {
      const double p = ParseProbability(key, value);
      plan.h2d_fail_p = plan.d2h_fail_p = plan.p2p_fail_p = p;
    } else if (key == "stall") {
      plan.stall_p = ParseProbability(key, value);
    } else if (key == "stall-factor") {
      plan.stall_factor = std::stod(value);
      ACCMG_REQUIRE(plan.stall_factor >= 1,
                    "fault plan: stall-factor must be >= 1");
    } else if (key == "death") {
      plan.device_loss_p = ParseProbability(key, value);
    } else if (key == "max-deaths") {
      plan.max_device_losses = std::stoi(value);
    } else {
      ACCMG_REQUIRE(false, "fault plan: unknown key '" + key + "'");
    }
  }
  return plan;
}

FaultPlan FaultPlan::Chaos(std::uint64_t seed) {
  FaultPlan plan;
  plan.seed = seed;
  plan.kernel_fail_p = 0.02;
  plan.h2d_fail_p = 0.01;
  plan.d2h_fail_p = 0.01;
  plan.p2p_fail_p = 0.01;
  plan.stall_p = 0.02;
  plan.stall_factor = 25.0;
  plan.device_loss_p = 0.002;
  plan.max_device_losses = -1;
  return plan;
}

void FaultInjector::Arm(const FaultPlan& plan, int num_devices) {
  ACCMG_REQUIRE(num_devices > 0, "fault injector needs at least one device");
  std::lock_guard<std::mutex> lock(mutex_);
  plan_ = plan;
  num_devices_ = num_devices;
  op_counts_.assign(
      static_cast<std::size_t>(kNumFaultSites * num_devices), 0);
  dead_.assign(static_cast<std::size_t>(num_devices), 0);
  deaths_ = 0;
  injected_ = 0;
  stalls_ = 0;
  armed_.store(plan.enabled(), std::memory_order_release);
  FaultMetrics::Get().armed.Set(armed_.load() ? 1 : 0);
}

void FaultInjector::Disarm() {
  std::lock_guard<std::mutex> lock(mutex_);
  armed_.store(false, std::memory_order_release);
  dead_.assign(dead_.size(), 0);
  deaths_ = 0;
  FaultMetrics::Get().armed.Set(0);
}

double FaultInjector::DrawUniform(FaultSite site, int device,
                                  std::uint64_t op_index) const {
  // Pure function of (seed, site, device, index): two splitmix64 rounds over
  // the mixed key give a well-distributed 64-bit word.
  std::uint64_t state = plan_.seed;
  state ^= SplitMix64(state) ^
           (static_cast<std::uint64_t>(static_cast<int>(site)) << 32) ^
           (static_cast<std::uint64_t>(static_cast<std::uint32_t>(device)));
  state += op_index * 0x9E3779B97F4A7C15ULL;
  const std::uint64_t word = SplitMix64(state);
  std::uint64_t tmp = word;
  return static_cast<double>(SplitMix64(tmp) >> 11) * 0x1.0p-53;
}

double FaultInjector::OnOperation(FaultSite site, int device) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (!armed_.load(std::memory_order_relaxed)) return 1.0;
  ACCMG_CHECK(device >= 0 && device < num_devices_,
              "fault injector: device id out of range");
  // Echo on an already-dead device: typed error, no new fault accounted.
  if (dead_[static_cast<std::size_t>(device)]) {
    throw DeviceLostError(
        device, std::string("device ") + std::to_string(device) +
                    " is lost (" + FaultSiteName(site) + " on dead device)");
  }

  auto& count = op_counts_[static_cast<std::size_t>(
      static_cast<int>(site) * num_devices_ + device)];
  const std::uint64_t op_index = count++;
  const double u = DrawUniform(site, device, op_index);

  double site_fail_p = 0;
  switch (site) {
    case FaultSite::kKernel: site_fail_p = plan_.kernel_fail_p; break;
    case FaultSite::kH2D: site_fail_p = plan_.h2d_fail_p; break;
    case FaultSite::kD2H: site_fail_p = plan_.d2h_fail_p; break;
    case FaultSite::kP2P: site_fail_p = plan_.p2p_fail_p; break;
  }

  FaultMetrics& m = FaultMetrics::Get();

  // Priority order: death, transient failure, stall, success.
  double threshold = plan_.device_loss_p;
  if (u < threshold) {
    const int cap = plan_.max_device_losses >= 0
                        ? std::min(plan_.max_device_losses, num_devices_ - 1)
                        : num_devices_ - 1;
    if (deaths_ < cap) {
      dead_[static_cast<std::size_t>(device)] = 1;
      ++deaths_;
      ++injected_;
      m.injected.Add();
      m.device_lost.Add();
      throw DeviceLostError(
          device, std::string("injected device loss: device ") +
                      std::to_string(device) + " died during " +
                      FaultSiteName(site));
    }
    // Death suppressed by the cap: fall through as success.
    return 1.0;
  }
  threshold += site_fail_p;
  if (u < threshold) {
    ++injected_;
    m.injected.Add();
    const std::string what = std::string("injected transient ") +
                             FaultSiteName(site) + " fault on device " +
                             std::to_string(device) + " (op " +
                             std::to_string(op_index) + ")";
    if (site == FaultSite::kKernel) {
      m.injected_kernel.Add();
      throw KernelLaunchError(what);
    }
    m.injected_transfer.Add();
    throw TransferError(what);
  }
  threshold += plan_.stall_p;
  if (u < threshold) {
    ++stalls_;
    m.stalls.Add();
    return plan_.stall_factor;
  }
  return 1.0;
}

bool FaultInjector::alive(int device) const {
  std::lock_guard<std::mutex> lock(mutex_);
  if (device < 0 || device >= static_cast<int>(dead_.size())) return true;
  return dead_[static_cast<std::size_t>(device)] == 0;
}

std::vector<int> FaultInjector::dead_devices() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<int> out;
  for (std::size_t d = 0; d < dead_.size(); ++d) {
    if (dead_[d]) out.push_back(static_cast<int>(d));
  }
  return out;
}

int FaultInjector::deaths() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return deaths_;
}

std::uint64_t FaultInjector::injected() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return injected_;
}

std::uint64_t FaultInjector::stalls() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stalls_;
}

}  // namespace accmg::sim
