// Kernel execution interface of the virtual GPU.
//
// A kernel body is executed for a 1-D grid of `num_threads` logical threads
// (one per loop task, as in the paper's translator). The engine hands the
// body contiguous thread ranges on a host thread pool; the body reports its
// dynamic cost (instructions executed, bytes touched) which feeds the
// roofline timing model. Functional effects happen for real on device
// buffers, so results are bit-exact and placement bugs surface as wrong
// answers.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

namespace accmg::sim {

/// Dynamic cost of a slice of kernel execution.
struct KernelStats {
  std::uint64_t instructions = 0;
  std::uint64_t bytes_read = 0;
  std::uint64_t bytes_written = 0;

  KernelStats& operator+=(const KernelStats& other) {
    instructions += other.instructions;
    bytes_read += other.bytes_read;
    bytes_written += other.bytes_written;
    return *this;
  }
};

/// Executable body of a kernel. Implementations must be safe to call
/// concurrently on disjoint thread ranges.
class KernelBody {
 public:
  virtual ~KernelBody() = default;

  /// Runs logical threads [tid_begin, tid_end) and accumulates their cost
  /// into `stats`.
  virtual void Execute(std::int64_t tid_begin, std::int64_t tid_end,
                       KernelStats& stats) const = 0;
};

/// Adapts a lambda `void(int64 tid, KernelStats&)` to KernelBody. Used by the
/// hand-written "CUDA" baseline kernels.
class LambdaKernel final : public KernelBody {
 public:
  using Fn = std::function<void(std::int64_t tid, KernelStats& stats)>;
  explicit LambdaKernel(Fn fn) : fn_(std::move(fn)) {}

  void Execute(std::int64_t tid_begin, std::int64_t tid_end,
               KernelStats& stats) const override {
    for (std::int64_t tid = tid_begin; tid < tid_end; ++tid) fn_(tid, stats);
  }

 private:
  Fn fn_;
};

/// A kernel launch request.
struct KernelLaunch {
  const KernelBody* body = nullptr;
  std::int64_t num_threads = 0;
  int block_size = 256;     ///< logical CUDA block size (grid geometry)
  std::string name;         ///< for logs and error messages
  /// Earliest simulated start time (a dependence on earlier operations'
  /// end times). 0 = no constraint beyond the device's compute resource;
  /// the async pipeline uses this to gate sub-kernels on in-flight
  /// transfers without a global barrier.
  double ready_at = 0;
};

}  // namespace accmg::sim
