// Deterministic, seeded fault injection for the simulated platform.
//
// A FaultPlan assigns per-fault-site probabilities (kernel launches, H2D/D2H
// transfers, P2P transfers), a transfer-stall probability + slowdown factor,
// and a permanent device-loss probability. The Platform consults the armed
// FaultInjector at the top of every billable operation; the injector either
// lets the operation through (possibly with a stall multiplier applied to
// its simulated duration) or throws a typed error from common/error.h:
//
//   KernelLaunchError  transient kernel-launch failure (retryable)
//   TransferError      transient DMA failure (retryable)
//   DeviceLostError    permanent device death (not retryable on that device)
//
// Determinism: every decision is a pure function of (plan seed, fault site,
// device id, per-(site,device) operation index). The multiset of operations
// each (site, device) pair issues is deterministic for a given program run,
// so the set of injected faults is reproducible even though concurrent
// per-device threads interleave their calls nondeterministically.
//
// Dead devices: once a device is lost, every subsequent operation touching
// it throws DeviceLostError. Only the *killing* operation counts toward
// `fault.injected`; echoes on an already-dead device do not, so the metric
// identity  fault.injected == recovery.retries + recovery.degraded +
// recovery.failures  holds (each injected fault is absorbed exactly once).
// By default the injector never kills the last surviving device.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace accmg::sim {

/// Where in the platform an operation is about to execute.
enum class FaultSite : int {
  kKernel = 0,  ///< Platform::LaunchKernel
  kH2D = 1,     ///< Bill/CopyHostToDevice
  kD2H = 2,     ///< Bill/CopyDeviceToHost
  kP2P = 3,     ///< Bill/CopyDeviceToDevice (source device)
};
inline constexpr int kNumFaultSites = 4;

const char* FaultSiteName(FaultSite site);

/// Per-site fault probabilities. All probabilities are in [0, 1] and are
/// evaluated per operation; a single uniform draw decides between death,
/// transient failure, stall and success (in that priority order).
struct FaultPlan {
  std::uint64_t seed = 0;
  double kernel_fail_p = 0;     ///< transient kernel-launch failure
  double h2d_fail_p = 0;        ///< transient host->device transfer failure
  double d2h_fail_p = 0;        ///< transient device->host transfer failure
  double p2p_fail_p = 0;        ///< transient peer transfer failure
  double stall_p = 0;           ///< transfer/kernel stall (slow, not failed)
  double stall_factor = 25.0;   ///< duration multiplier for a stalled op
  double device_loss_p = 0;     ///< permanent device death, per operation
  int max_device_losses = -1;   ///< cap on deaths; -1 = spare one survivor

  /// True when any probability is nonzero.
  bool enabled() const;

  /// Round-trips through Parse(): "seed=7,kernel=0.01,h2d=0.02,...".
  std::string ToString() const;

  /// Parses a comma-separated spec, e.g.
  ///   "seed=7,kernel=0.01,transfer=0.02,stall=0.05,stall-factor=30,
  ///    death=0.001,max-deaths=2"
  /// Keys: seed, kernel, h2d, d2h, p2p, transfer (sets h2d+d2h+p2p),
  /// stall, stall-factor, death, max-deaths. Unknown keys or malformed
  /// values throw InvalidArgumentError.
  static FaultPlan Parse(const std::string& spec);

  /// The --chaos preset: moderate transient rates, occasional stalls, and
  /// a device-loss rate that reliably exercises shrink recovery.
  static FaultPlan Chaos(std::uint64_t seed);
};

/// The platform-owned injector. Thread-safe: Bill*/LaunchKernel call
/// OnOperation from concurrent per-device threads.
class FaultInjector {
 public:
  /// Arms the plan for a platform with `num_devices` devices. Resets all
  /// per-site counters and revives dead devices (tests re-arm freely).
  void Arm(const FaultPlan& plan, int num_devices);

  /// Disarms injection; dead devices are revived.
  void Disarm();

  /// Cheap armed check for the billing hot path.
  bool armed() const { return armed_.load(std::memory_order_acquire); }

  const FaultPlan& plan() const { return plan_; }

  /// Consulted by the platform before executing an operation at `site` on
  /// `device`. Returns the duration multiplier to apply (1.0 normally,
  /// plan.stall_factor for a stalled operation) or throws a typed error.
  /// Must only be called while armed.
  double OnOperation(FaultSite site, int device);

  /// True when `device` has not been lost (always true while disarmed).
  bool alive(int device) const;

  /// Ids of permanently lost devices, ascending.
  std::vector<int> dead_devices() const;

  int deaths() const;

  /// Number of error faults raised (transient + device-loss kills; echoes
  /// on already-dead devices and stalls excluded).
  std::uint64_t injected() const;

  std::uint64_t stalls() const;

 private:
  double DrawUniform(FaultSite site, int device, std::uint64_t op_index) const;

  mutable std::mutex mutex_;
  std::atomic<bool> armed_{false};
  FaultPlan plan_;
  int num_devices_ = 0;
  /// Per-(site, device) operation indices; the determinism key.
  std::vector<std::uint64_t> op_counts_;
  std::vector<char> dead_;
  int deaths_ = 0;
  std::uint64_t injected_ = 0;
  std::uint64_t stalls_ = 0;
};

}  // namespace accmg::sim
