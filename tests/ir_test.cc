// Unit tests for the Kernel IR: builder, verifier, printer and the
// interpreter's semantics (including float32 rounding, residency checks,
// write-miss spilling, dirty bits and privatized reductions).
#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstring>

#include "common/error.h"
#include "ir/builder.h"
#include "ir/exec.h"
#include "ir/ir.h"
#include "sim/kernel.h"

namespace accmg::ir {
namespace {

double RunScalarKernel(
    const KernelIR& kernel, std::int64_t tid,
    const std::function<void(KernelExec&)>& configure,
    const std::function<double(const KernelExec&)>& extract) {
  KernelExec exec(kernel);
  configure(exec);
  exec.ResetOutputs();
  sim::KernelStats stats;
  exec.Execute(tid, tid + 1, stats);
  return extract(exec);
}

/// Builds a kernel computing one scalar reduction from the thread id and
/// returns its result for tid.
double EvalAsKernel(const std::function<int(KernelBuilder&)>& emit,
                    std::int64_t tid, ValType type = ValType::kF64) {
  KernelBuilder builder("eval");
  const int slot = builder.AddScalarReduction("out", RedOp::kAdd, type);
  const int value = emit(builder);
  builder.RedScalar(slot, value);
  const KernelIR kernel = builder.Build();
  return RunScalarKernel(
      kernel, tid, [](KernelExec&) {},
      [&](const KernelExec& exec) {
        const std::uint64_t raw = exec.scalar_red_results()[0];
        if (type == ValType::kF64) return std::bit_cast<double>(raw);
        if (type == ValType::kF32) {
          return static_cast<double>(
              std::bit_cast<float>(static_cast<std::uint32_t>(raw)));
        }
        return static_cast<double>(static_cast<std::int64_t>(raw));
      });
}

// ---------------------------------------------------------------------------
// Builder / verifier / printer
// ---------------------------------------------------------------------------

TEST(BuilderTest, RegisterContract) {
  KernelBuilder builder("k");
  builder.AddArray("a", ValType::kF32);
  const int s0 = builder.AddScalar("n", ValType::kI32);
  const int s1 = builder.AddScalar("m", ValType::kI64);
  EXPECT_EQ(builder.thread_id_reg(), 0);
  EXPECT_EQ(s0, 1);  // scalar s occupies register 1+s
  EXPECT_EQ(s1, 2);
}

TEST(BuilderTest, AlwaysTerminates) {
  KernelBuilder builder("k");
  builder.ConstI(7);
  const KernelIR kernel = builder.Build();
  EXPECT_EQ(kernel.code.back().op, Opcode::kRet);
}

TEST(BuilderTest, BranchToEndIsLegal) {
  KernelBuilder builder("k");
  const int c = builder.ConstI(1);
  const std::size_t br = builder.BrIf(c);
  builder.PatchTarget(br, builder.Here() + 0);  // next instruction slot
  EXPECT_NO_THROW(builder.Build());
}

TEST(VerifierTest, CatchesBadRegister) {
  KernelIR kernel;
  kernel.name = "bad";
  kernel.num_regs = 2;
  Instr in;
  in.op = Opcode::kMov;
  in.dst = 5;  // out of range
  in.a = 0;
  kernel.code.push_back(in);
  Instr ret;
  ret.op = Opcode::kRet;
  kernel.code.push_back(ret);
  EXPECT_THROW(Verify(kernel), InternalError);
}

TEST(VerifierTest, CatchesUnpatchedBranch) {
  KernelBuilder builder("k");
  const int c = builder.ConstI(1);
  builder.BrIf(c);  // never patched: target -1
  EXPECT_THROW(builder.Build(), InternalError);
}

TEST(PrinterTest, RendersReadableListing) {
  KernelBuilder builder("saxpy");
  const int x = builder.AddArray("x", ValType::kF32);
  const int y = builder.AddArray("y", ValType::kF32);
  const int a = builder.AddScalar("a", ValType::kF32);
  const int xv = builder.Load(x, builder.thread_id_reg());
  const int prod = builder.Binary(Opcode::kMulF, a, xv);
  const int yv = builder.Load(y, builder.thread_id_reg());
  const int sum = builder.Binary(Opcode::kAddF, prod, yv);
  const int rounded = builder.Unary(Opcode::kRoundF32, sum);
  builder.Store(y, builder.thread_id_reg(), rounded);
  const KernelIR kernel = builder.Build();
  const std::string text = Print(kernel);
  EXPECT_NE(text.find("kernel saxpy"), std::string::npos);
  EXPECT_NE(text.find("f32* x"), std::string::npos);
  EXPECT_NE(text.find("mul.f"), std::string::npos);
  EXPECT_NE(text.find("round.f32"), std::string::npos);
  EXPECT_NE(text.find("store @y"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Interpreter arithmetic
// ---------------------------------------------------------------------------

TEST(InterpTest, IntegerArithmetic) {
  EXPECT_EQ(EvalAsKernel(
                [](KernelBuilder& b) {
                  return b.Binary(Opcode::kAddI, b.ConstI(40), b.ConstI(2));
                },
                0, ValType::kI64),
            42.0);
  EXPECT_EQ(EvalAsKernel(
                [](KernelBuilder& b) {
                  return b.Binary(Opcode::kDivI, b.ConstI(-7), b.ConstI(2));
                },
                0, ValType::kI64),
            -3.0);  // C semantics: trunc toward zero
  EXPECT_EQ(EvalAsKernel(
                [](KernelBuilder& b) {
                  return b.Binary(Opcode::kModI, b.ConstI(-7), b.ConstI(2));
                },
                0, ValType::kI64),
            -1.0);
  EXPECT_EQ(EvalAsKernel(
                [](KernelBuilder& b) {
                  return b.Binary(Opcode::kShlI, b.ConstI(3), b.ConstI(4));
                },
                0, ValType::kI64),
            48.0);
}

TEST(InterpTest, DivisionByZeroFaults) {
  KernelBuilder builder("k");
  builder.Binary(Opcode::kDivI, builder.ConstI(1), builder.ConstI(0));
  const KernelIR kernel = builder.Build();
  KernelExec exec(kernel);
  exec.ResetOutputs();
  sim::KernelStats stats;
  EXPECT_THROW(exec.Execute(0, 1, stats), DeviceError);
}

TEST(InterpTest, FloatMath) {
  EXPECT_DOUBLE_EQ(EvalAsKernel(
                       [](KernelBuilder& b) {
                         return b.Unary(Opcode::kSqrtF, b.ConstF(9.0));
                       },
                       0),
                   3.0);
  EXPECT_DOUBLE_EQ(EvalAsKernel(
                       [](KernelBuilder& b) {
                         return b.Binary(Opcode::kPowF, b.ConstF(2.0),
                                         b.ConstF(10.0));
                       },
                       0),
                   1024.0);
  EXPECT_DOUBLE_EQ(EvalAsKernel(
                       [](KernelBuilder& b) {
                         return b.Binary(Opcode::kFminF, b.ConstF(1.5),
                                         b.ConstF(-2.5));
                       },
                       0),
                   -2.5);
}

TEST(InterpTest, RoundF32MatchesFloatArithmetic) {
  // 0.1 + 0.2 in float differs from double; RoundF32 must reproduce the
  // float result exactly.
  const double result = EvalAsKernel(
      [](KernelBuilder& b) {
        const int sum =
            b.Binary(Opcode::kAddF, b.ConstF(0.1), b.ConstF(0.2));
        return b.Unary(Opcode::kRoundF32, sum);
      },
      0);
  EXPECT_EQ(static_cast<float>(result), 0.1f + 0.2f);
  EXPECT_NE(result, 0.1 + 0.2);
}

TEST(InterpTest, TruncI32WrapsLikeInt) {
  const double result = EvalAsKernel(
      [](KernelBuilder& b) {
        const int big = b.ConstI(0x1'0000'0005LL);
        return b.Unary(Opcode::kTruncI32, big);
      },
      0, ValType::kI64);
  EXPECT_EQ(result, 5.0);
}

TEST(InterpTest, ThreadIdReceivesIterationOffset) {
  KernelBuilder builder("k");
  const int slot = builder.AddScalarReduction("out", RedOp::kAdd, ValType::kI64);
  builder.RedScalar(slot, builder.thread_id_reg());
  const KernelIR kernel = builder.Build();
  const double result = RunScalarKernel(
      kernel, 5,
      [](KernelExec& exec) { exec.iteration_offset = 100; },
      [](const KernelExec& exec) {
        return static_cast<double>(
            static_cast<std::int64_t>(exec.scalar_red_results()[0]));
      });
  EXPECT_EQ(result, 105.0);
}

TEST(InterpTest, ScalarParamsArriveInContractRegisters) {
  KernelBuilder builder("k");
  const int n = builder.AddScalar("n", ValType::kI64);
  const int slot = builder.AddScalarReduction("out", RedOp::kAdd, ValType::kI64);
  builder.RedScalar(slot, n);
  const KernelIR kernel = builder.Build();
  const double result = RunScalarKernel(
      kernel, 0,
      [](KernelExec& exec) {
        exec.scalar_values[0] = EncodeScalar(ValType::kI64, 0, 777);
      },
      [](const KernelExec& exec) {
        return static_cast<double>(
            static_cast<std::int64_t>(exec.scalar_red_results()[0]));
      });
  EXPECT_EQ(result, 777.0);
}

TEST(InterpTest, ControlFlowLoops) {
  // Sum 0..9 with an explicit loop: acc=0; i=0; while (i<10) {acc+=i; i++}
  KernelBuilder builder("loop");
  const int slot = builder.AddScalarReduction("out", RedOp::kAdd, ValType::kI64);
  const int acc = builder.NewReg();
  const int i = builder.NewReg();
  const int zero = builder.ConstI(0);
  builder.MovTo(acc, zero);
  builder.MovTo(i, zero);
  const std::size_t head = builder.Here();
  const int limit = builder.ConstI(10);
  const int cond = builder.Binary(Opcode::kCmpLtI, i, limit);
  const std::size_t exit = builder.BrIfNot(cond);
  const int next = builder.Binary(Opcode::kAddI, acc, i);
  builder.MovTo(acc, next);
  const int one = builder.ConstI(1);
  const int inc = builder.Binary(Opcode::kAddI, i, one);
  builder.MovTo(i, inc);
  const std::size_t back = builder.Br();
  builder.PatchTarget(back, head);
  builder.PatchTarget(exit, builder.Here());
  builder.RedScalar(slot, acc);
  const KernelIR kernel = builder.Build();
  const double result = RunScalarKernel(
      kernel, 0, [](KernelExec&) {},
      [](const KernelExec& exec) {
        return static_cast<double>(
            static_cast<std::int64_t>(exec.scalar_red_results()[0]));
      });
  EXPECT_EQ(result, 45.0);
}

TEST(InterpTest, RunawayLoopHitsBudget) {
  KernelBuilder builder("spin");
  const std::size_t br = builder.Br();
  builder.PatchTarget(br, 0);
  const KernelIR kernel = builder.Build();
  KernelExec exec(kernel);
  exec.ResetOutputs();
  sim::KernelStats stats;
  EXPECT_THROW(exec.Execute(0, 1, stats), DeviceError);
}

// ---------------------------------------------------------------------------
// Memory semantics
// ---------------------------------------------------------------------------

struct ArrayFixture {
  std::vector<float> data;
  ArrayBinding binding;

  explicit ArrayFixture(std::int64_t lo, std::int64_t hi, std::int64_t size) {
    data.assign(static_cast<std::size_t>(hi - lo), 0.0f);
    binding.data = reinterpret_cast<std::byte*>(data.data());
    binding.lo = lo;
    binding.hi = hi;
    binding.write_lo = lo;
    binding.write_hi = hi;
    binding.logical_size = size;
  }
};

TEST(InterpTest, LoadStoreUseGlobalIndicesWithSegmentOffset) {
  // Segment [100, 110) of a logical 1000-element array.
  ArrayFixture fixture(100, 110, 1000);
  fixture.data[3] = 42.0f;  // global index 103

  KernelBuilder builder("seg");
  const int arr = builder.AddArray("a", ValType::kF32);
  const int idx = builder.ConstI(103);
  const int v = builder.Load(arr, idx);
  const int two = builder.ConstF(2.0);
  const int doubled = builder.Binary(Opcode::kMulF, v, two);
  const int out_idx = builder.ConstI(104);
  builder.Store(arr, out_idx, builder.Unary(Opcode::kRoundF32, doubled));
  const KernelIR kernel = builder.Build();

  KernelExec exec(kernel);
  exec.bindings[0] = fixture.binding;
  exec.ResetOutputs();
  sim::KernelStats stats;
  exec.Execute(0, 1, stats);
  EXPECT_EQ(fixture.data[4], 84.0f);
  EXPECT_EQ(stats.bytes_read, 4u);
  EXPECT_EQ(stats.bytes_written, 4u);
}

TEST(InterpTest, NonResidentReadFaults) {
  ArrayFixture fixture(100, 110, 1000);
  KernelBuilder builder("oob");
  const int arr = builder.AddArray("a", ValType::kF32);
  builder.Load(arr, builder.ConstI(99));
  const KernelIR kernel = builder.Build();
  KernelExec exec(kernel);
  exec.bindings[0] = fixture.binding;
  exec.ResetOutputs();
  sim::KernelStats stats;
  EXPECT_THROW(exec.Execute(0, 1, stats), DeviceError);
}

TEST(InterpTest, NonOwnedWriteWithoutMissBufferFaults) {
  ArrayFixture fixture(100, 110, 1000);
  fixture.binding.write_hi = 105;  // owns [100, 105)
  KernelBuilder builder("wmiss");
  const int arr = builder.AddArray("a", ValType::kF32);
  builder.Store(arr, builder.ConstI(107), builder.ConstF(1.0));
  const KernelIR kernel = builder.Build();
  KernelExec exec(kernel);
  exec.bindings[0] = fixture.binding;
  exec.ResetOutputs();
  sim::KernelStats stats;
  EXPECT_THROW(exec.Execute(0, 1, stats), DeviceError);
}

TEST(InterpTest, WriteMissSpillsRecord) {
  ArrayFixture fixture(100, 110, 1000);
  fixture.binding.write_hi = 105;
  MissBuffer miss;
  fixture.binding.miss = &miss;

  KernelBuilder builder("wmiss");
  const int arr = builder.AddArray("a", ValType::kF32);
  builder.Store(arr, builder.ConstI(107), builder.ConstF(3.5));
  builder.Store(arr, builder.ConstI(102), builder.ConstF(1.5));  // local
  const KernelIR kernel = builder.Build();
  KernelExec exec(kernel);
  exec.bindings[0] = fixture.binding;
  exec.ResetOutputs();
  sim::KernelStats stats;
  exec.Execute(0, 1, stats);

  ASSERT_EQ(miss.records.size(), 1u);
  EXPECT_EQ(miss.records[0].index, 107);
  float value;
  const auto bits = static_cast<std::uint32_t>(miss.records[0].raw);
  std::memcpy(&value, &bits, 4);
  EXPECT_EQ(value, 3.5f);
  EXPECT_EQ(fixture.data[2], 1.5f);  // the local store landed
}

TEST(InterpTest, DirtyMarkSetsBothLevels) {
  ArrayFixture fixture(0, 100, 100);
  std::vector<std::uint8_t> level1(100, 0), level2(4, 0);
  fixture.binding.dirty.level1 = level1.data();
  fixture.binding.dirty.level2 = level2.data();
  fixture.binding.dirty.chunk_elems = 32;

  KernelBuilder builder("dirty");
  const int arr = builder.AddArray("a", ValType::kF32);
  const int idx = builder.ConstI(70);
  builder.Store(arr, idx, builder.ConstF(1.0));
  builder.DirtyMark(arr, idx);
  const KernelIR kernel = builder.Build();
  KernelExec exec(kernel);
  exec.bindings[0] = fixture.binding;
  exec.ResetOutputs();
  sim::KernelStats stats;
  exec.Execute(0, 1, stats);

  EXPECT_EQ(level1[70], 1);
  EXPECT_EQ(level2[70 / 32], 1);
  EXPECT_EQ(level2[0], 0);  // other chunks stay clean
}

// ---------------------------------------------------------------------------
// Reductions
// ---------------------------------------------------------------------------

TEST(ReductionTest, Identities) {
  EXPECT_EQ(std::bit_cast<double>(
                ReductionIdentity(RedOp::kAdd, ValType::kF64)),
            0.0);
  EXPECT_EQ(std::bit_cast<double>(
                ReductionIdentity(RedOp::kMul, ValType::kF64)),
            1.0);
  EXPECT_EQ(std::bit_cast<double>(
                ReductionIdentity(RedOp::kMin, ValType::kF64)),
            std::numeric_limits<double>::infinity());
  EXPECT_EQ(static_cast<std::int32_t>(
                ReductionIdentity(RedOp::kMax, ValType::kI32)),
            std::numeric_limits<std::int32_t>::min());
}

TEST(ReductionTest, CombineRawRespectsTypes) {
  const auto a = static_cast<std::uint64_t>(static_cast<std::uint32_t>(5));
  const auto b = static_cast<std::uint64_t>(static_cast<std::uint32_t>(7));
  EXPECT_EQ(static_cast<std::int32_t>(CombineRaw(RedOp::kAdd, ValType::kI32,
                                                 a, b)),
            12);
  EXPECT_EQ(static_cast<std::int32_t>(CombineRaw(RedOp::kMin, ValType::kI32,
                                                 a, b)),
            5);
  const float fa = 2.0f, fb = 3.0f;
  const auto fraw = CombineRaw(RedOp::kMul, ValType::kF32,
                               std::bit_cast<std::uint32_t>(fa),
                               std::bit_cast<std::uint32_t>(fb));
  EXPECT_EQ(std::bit_cast<float>(static_cast<std::uint32_t>(fraw)), 6.0f);
}

TEST(ReductionTest, ScalarReductionAccumulatesAcrossThreads) {
  KernelBuilder builder("sum");
  const int slot = builder.AddScalarReduction("out", RedOp::kAdd, ValType::kI64);
  builder.RedScalar(slot, builder.thread_id_reg());
  const KernelIR kernel = builder.Build();
  KernelExec exec(kernel);
  exec.ResetOutputs();
  sim::KernelStats stats;
  exec.Execute(0, 100, stats);
  EXPECT_EQ(static_cast<std::int64_t>(exec.scalar_red_results()[0]), 4950);
}

TEST(ReductionTest, ArrayReductionProducesDensePartial) {
  KernelBuilder builder("hist");
  const int arr = builder.AddArray("hist", ValType::kI32);
  const int slot = builder.AddArrayReduction(arr, RedOp::kAdd, ValType::kI32);
  // bucket = tid % 4; partial[bucket] += 1
  const int four = builder.ConstI(4);
  const int bucket =
      builder.Binary(Opcode::kModI, builder.thread_id_reg(), four);
  builder.RedArray(slot, bucket, builder.ConstI(1));
  const KernelIR kernel = builder.Build();

  KernelExec exec(kernel);
  exec.array_red_lower[0] = 0;
  exec.array_red_length[0] = 4;
  exec.ResetOutputs();
  sim::KernelStats stats;
  exec.Execute(0, 10, stats);
  const auto& partial = exec.array_red_partials()[0];
  ASSERT_EQ(partial.size(), 4u);
  EXPECT_EQ(static_cast<std::int32_t>(partial[0]), 3);  // 0,4,8
  EXPECT_EQ(static_cast<std::int32_t>(partial[1]), 3);  // 1,5,9
  EXPECT_EQ(static_cast<std::int32_t>(partial[2]), 2);
  EXPECT_EQ(static_cast<std::int32_t>(partial[3]), 2);
}

TEST(ReductionTest, ArrayReductionOutOfSectionFaults) {
  KernelBuilder builder("hist");
  const int arr = builder.AddArray("hist", ValType::kI32);
  const int slot = builder.AddArrayReduction(arr, RedOp::kAdd, ValType::kI32);
  builder.RedArray(slot, builder.ConstI(9), builder.ConstI(1));
  const KernelIR kernel = builder.Build();
  KernelExec exec(kernel);
  exec.array_red_lower[0] = 0;
  exec.array_red_length[0] = 4;
  exec.ResetOutputs();
  sim::KernelStats stats;
  EXPECT_THROW(exec.Execute(0, 1, stats), DeviceError);
}

TEST(InterpTest, TranscendentalsCostMore) {
  KernelBuilder cheap("cheap");
  cheap.Binary(Opcode::kAddF, cheap.ConstF(1), cheap.ConstF(2));
  const KernelIR cheap_k = cheap.Build();

  KernelBuilder pricey("pricey");
  pricey.Unary(Opcode::kSqrtF, pricey.ConstF(2));
  const KernelIR pricey_k = pricey.Build();

  sim::KernelStats cheap_stats, pricey_stats;
  KernelExec cheap_exec(cheap_k);
  cheap_exec.ResetOutputs();
  cheap_exec.Execute(0, 1, cheap_stats);
  KernelExec pricey_exec(pricey_k);
  pricey_exec.ResetOutputs();
  pricey_exec.Execute(0, 1, pricey_stats);
  EXPECT_GT(pricey_stats.instructions, cheap_stats.instructions);
}

}  // namespace
}  // namespace accmg::ir
