// Unit tests for the translator: offload extraction, access analysis,
// write-locality proofs, host evaluation, and the CUDA codegen artifact.
#include <gtest/gtest.h>

#include "common/error.h"
#include "frontend/parser.h"
#include "frontend/sema.h"
#include "translator/cuda_codegen.h"
#include "translator/eval.h"
#include "translator/offload.h"

namespace accmg::translator {
namespace {

using accmg::CompileError;

struct Compiled {
  std::unique_ptr<frontend::Program> ast;
  CompiledProgram program;
};

Compiled CompileSource(const std::string& source, int opt_level = 1) {
  Compiled out;
  frontend::SourceBuffer buffer("test.c", source);
  out.ast = frontend::ParseAndAnalyze(buffer);
  CompileOptions options;
  options.opt_level = opt_level;
  out.program = Compile(*out.ast, options);
  return out;
}

const LoopOffload& OnlyOffload(const Compiled& compiled) {
  const auto& offloads = compiled.program.functions.at(0).offloads;
  EXPECT_EQ(offloads.size(), 1u);
  return offloads.at(0);
}

// ---------------------------------------------------------------------------
// MatchAffine
// ---------------------------------------------------------------------------

struct AffineCase {
  const char* expr;
  bool matches;
  std::int64_t a;
  std::int64_t b;
};

class AffineTest : public ::testing::TestWithParam<AffineCase> {};

TEST_P(AffineTest, Matches) {
  const AffineCase& c = GetParam();
  // Build a tiny program so `i` resolves to a declaration.
  const std::string source = std::string(R"(
void f(int n, int* a) {
  #pragma acc parallel loop
  for (int i = 0; i < n; i++) {
    a[)") + c.expr + R"(] = 0;
  }
})";
  // Parsing alone gives us the expression with a resolved induction decl.
  frontend::SourceBuffer buffer("affine.c", source);
  auto ast = frontend::ParseAndAnalyze(buffer);
  const auto& loop =
      frontend::As<frontend::ForStmt>(*ast->functions[0]->body->body[0]);
  const auto& decl_stmt = frontend::As<frontend::DeclStmt>(*loop.init);
  const auto& body = frontend::As<frontend::CompoundStmt>(*loop.body);
  const auto& assign = frontend::As<frontend::AssignStmt>(*body.body[0]);
  const auto& subscript =
      frontend::As<frontend::SubscriptExpr>(*assign.target);

  std::int64_t a = 0, b = 0;
  const bool matched =
      MatchAffine(*subscript.index, *decl_stmt.decl, &a, &b);
  EXPECT_EQ(matched, c.matches) << c.expr;
  if (c.matches) {
    EXPECT_EQ(a, c.a) << c.expr;
    EXPECT_EQ(b, c.b) << c.expr;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Cases, AffineTest,
    ::testing::Values(AffineCase{"i", true, 1, 0},
                      AffineCase{"i + 3", true, 1, 3},
                      AffineCase{"3 + i", true, 1, 3},
                      AffineCase{"i - 2", true, 1, -2},
                      AffineCase{"2 * i", true, 2, 0},
                      AffineCase{"i * 4 + 1", true, 4, 1},
                      AffineCase{"4 * (i + 1)", true, 4, 4},
                      AffineCase{"-i", true, -1, 0},
                      AffineCase{"i * i", false, 0, 0},
                      AffineCase{"i / 2", false, 0, 0},
                      AffineCase{"7", true, 0, 7}));

// ---------------------------------------------------------------------------
// Offload extraction
// ---------------------------------------------------------------------------

TEST(CompileTest, ClassifiesArraysAndScalars) {
  const Compiled compiled = CompileSource(R"(
void f(int n, float scale, float* in, float* out) {
  #pragma acc localaccess(in: stride(1)) (out: stride(1))
  #pragma acc parallel loop
  for (int i = 0; i < n; i++) {
    out[i] = in[i] * scale;
  }
})");
  const LoopOffload& offload = OnlyOffload(compiled);

  ASSERT_EQ(offload.arrays.size(), 2u);
  const ArrayConfig* in = offload.FindArray("in");
  const ArrayConfig* out = offload.FindArray("out");
  ASSERT_NE(in, nullptr);
  ASSERT_NE(out, nullptr);
  EXPECT_TRUE(in->is_read);
  EXPECT_FALSE(in->is_written);
  EXPECT_TRUE(out->is_written);
  EXPECT_TRUE(in->has_localaccess);
  EXPECT_TRUE(out->writes_proven_local);

  // `scale` and `n` are scalar params; `i` is the induction variable.
  ASSERT_EQ(offload.scalars.size(), 1u);
  EXPECT_EQ(offload.scalars[0].decl->name, "scale");
  EXPECT_EQ(offload.induction->name, "i");
}

TEST(CompileTest, WriteMissCheckWhenLocalityUnprovable) {
  const Compiled compiled = CompileSource(R"(
void f(int n, int* perm, int* dst) {
  #pragma acc localaccess(dst: stride(1))
  #pragma acc parallel loop
  for (int i = 0; i < n; i++) {
    dst[perm[i]] = i;
  }
})");
  const LoopOffload& offload = OnlyOffload(compiled);
  const ArrayConfig* dst = offload.FindArray("dst");
  EXPECT_FALSE(dst->writes_proven_local);
  const auto& param =
      offload.kernel.arrays[static_cast<size_t>(dst->kernel_array_index)];
  EXPECT_TRUE(param.miss_checked);
  EXPECT_FALSE(param.dirty_tracked);
}

TEST(CompileTest, DirtyBitsForReplicatedWrites) {
  const Compiled compiled = CompileSource(R"(
void f(int n, int* perm, int* dst) {
  #pragma acc parallel loop
  for (int i = 0; i < n; i++) {
    dst[perm[i]] = i;
  }
})");
  const LoopOffload& offload = OnlyOffload(compiled);
  const auto& param = offload.kernel.arrays[static_cast<size_t>(
      offload.FindArray("dst")->kernel_array_index)];
  EXPECT_TRUE(param.dirty_tracked);
  EXPECT_FALSE(param.miss_checked);
  // The lowering must have emitted dirty-mark instrumentation.
  bool saw_dirty_mark = false;
  for (const auto& in : offload.kernel.code) {
    saw_dirty_mark |= in.op == ir::Opcode::kDirtyMark;
  }
  EXPECT_TRUE(saw_dirty_mark);
}

TEST(CompileTest, HaloWritesWithinBoundsAreProvenLocal) {
  const Compiled compiled = CompileSource(R"(
void f(int n, float* a) {
  #pragma acc localaccess(a: stride(2), left(1), right(1))
  #pragma acc parallel loop
  for (int i = 0; i < n; i++) {
    a[2 * i - 1] = 0.0f;
    a[2 * i + 2] = 0.0f;
  }
})");
  // Range per iteration: [2i - 1, 2i + 2]; both writes are inside.
  EXPECT_TRUE(OnlyOffload(compiled).FindArray("a")->writes_proven_local);
}

TEST(CompileTest, HaloWritesOutsideBoundsAreNot) {
  const Compiled compiled = CompileSource(R"(
void f(int n, float* a) {
  #pragma acc localaccess(a: stride(2), left(1), right(1))
  #pragma acc parallel loop
  for (int i = 0; i < n; i++) {
    a[2 * i + 3] = 0.0f;
  }
})");
  EXPECT_FALSE(OnlyOffload(compiled).FindArray("a")->writes_proven_local);
}

TEST(CompileTest, SeparateLoopDirectiveInsideParallelRegion) {
  const Compiled compiled = CompileSource(R"(
void f(int n, float* a) {
  #pragma acc parallel
  {
    #pragma acc loop
    for (int i = 0; i < n; i++) {
      a[i] = 1.0f;
    }
  }
})");
  EXPECT_EQ(compiled.program.functions[0].offloads.size(), 1u);
}

TEST(CompileTest, InclusiveUpperBound) {
  const Compiled compiled = CompileSource(R"(
void f(int n, float* a) {
  #pragma acc parallel loop
  for (int i = 0; i <= n; i++) {
    a[i] = 1.0f;
  }
})");
  EXPECT_TRUE(OnlyOffload(compiled).upper_inclusive);
}

TEST(CompileTest, ScalarReductionTarget) {
  const Compiled compiled = CompileSource(R"(
void f(int n, double* x, double out) {
  double sum = 0.0;
  #pragma acc parallel loop reduction(+:sum)
  for (int i = 0; i < n; i++) {
    sum += x[i];
  }
  out = sum;
})");
  const LoopOffload& offload = OnlyOffload(compiled);
  ASSERT_EQ(offload.scalar_reds.size(), 1u);
  EXPECT_EQ(offload.scalar_reds[0].decl->name, "sum");
  // Reduction variables are not scalar params.
  for (const auto& scalar : offload.scalars) {
    EXPECT_NE(scalar.decl->name, "sum");
  }
  ASSERT_EQ(offload.kernel.scalar_reductions.size(), 1u);
  EXPECT_EQ(offload.kernel.scalar_reductions[0].op, ir::RedOp::kAdd);
}

TEST(CompileTest, MultipleArrayReductions) {
  const Compiled compiled = CompileSource(R"(
void f(int n, int k, int* keys, int* counts, float* vals, float* sums) {
  #pragma acc parallel loop
  for (int i = 0; i < n; i++) {
    int c = keys[i];
    #pragma acc reductiontoarray(+: counts[0:k])
    counts[c] += 1;
    #pragma acc reductiontoarray(+: sums[0:k])
    sums[c] += vals[i];
  }
})");
  const LoopOffload& offload = OnlyOffload(compiled);
  EXPECT_EQ(offload.array_reds.size(), 2u);
  EXPECT_EQ(offload.kernel.array_reductions.size(), 2u);
}

// --- 2-D row-block (localaccess cols) analysis ---

const ArrayConfig* ConfigOf(const LoopOffload& offload,
                            const std::string& name) {
  for (const auto& config : offload.arrays) {
    if (config.name == name) return &config;
  }
  return nullptr;
}

TEST(WriteLocalityTest, ColsWritesProvenRowLocal) {
  // index = i*m + j with j in [0, m): the write polynomial proof must land
  // every store inside the iteration's own row, eliminating miss checks.
  const Compiled compiled = CompileSource(R"(
void f(int n, int m, float* u, float* v) {
  #pragma acc localaccess(u: cols(m), left(1), right(1)) (v: cols(m))
  #pragma acc parallel loop
  for (int i = 0; i < n; i++) {
    for (int j = 0; j < m; j++) {
      v[i * m + j] = u[i * m + j] * 0.5f;
    }
  }
})", /*opt_level=*/0);
  const LoopOffload& offload = OnlyOffload(compiled);
  const ArrayConfig* v = ConfigOf(offload, "v");
  ASSERT_NE(v, nullptr);
  EXPECT_TRUE(v->is_written);
  EXPECT_TRUE(v->writes_proven_local);
}

TEST(WriteLocalityTest, CrossRowColsWriteIsNotProven) {
  // The store index i*m + j + 1 can step into row i+1 at j == m-1, so the
  // row-locality proof must fail and the miss check must stay.
  const Compiled compiled = CompileSource(R"(
void f(int n, int m, float* u, float* v) {
  #pragma acc localaccess(u: cols(m)) (v: cols(m))
  #pragma acc parallel loop
  for (int i = 0; i < n; i++) {
    for (int j = 0; j < m; j++) {
      v[i * m + j + 1] = u[i * m + j];
    }
  }
})", /*opt_level=*/0);
  const ArrayConfig* v = ConfigOf(OnlyOffload(compiled), "v");
  ASSERT_NE(v, nullptr);
  EXPECT_FALSE(v->writes_proven_local);
}

TEST(CheckTest, ColsHaloTooNarrowIsACompileError) {
  // An unclamped read of the previous row under a zero-row left halo: with
  // a constant row length the checker's slack polynomial collapses to the
  // constant -8 (provably escapes the window), so compilation must fail,
  // not miscompute.
  EXPECT_THROW(CompileSource(R"(
void f(int n, float* u, float* v) {
  #pragma acc localaccess(u: cols(8)) (v: cols(8))
  #pragma acc parallel loop
  for (int i = 1; i < n; i++) {
    for (int j = 0; j < 8; j++) {
      v[i * 8 + j] = u[(i - 1) * 8 + j];
    }
  }
})"),
               CompileError);
}

TEST(CheckTest, ColsRowHaloCoversVerticalStencilReads) {
  // The same previous-row read compiles once the spec grants left(1).
  const Compiled compiled = CompileSource(R"(
void f(int n, int m, float* u, float* v) {
  #pragma acc localaccess(u: cols(m), left(1)) (v: cols(m))
  #pragma acc parallel loop
  for (int i = 1; i < n; i++) {
    for (int j = 0; j < m; j++) {
      v[i * m + j] = u[(i - 1) * m + j];
    }
  }
})", /*opt_level=*/0);
  const ArrayConfig* u = ConfigOf(OnlyOffload(compiled), "u");
  ASSERT_NE(u, nullptr);
  EXPECT_NE(u->cols, nullptr);
}

// --- rejection cases ---

TEST(CompileTest, RejectsNonCanonicalLoops) {
  EXPECT_THROW(CompileSource(R"(
void f(int n, float* a) {
  #pragma acc parallel loop
  for (int i = n; i > 0; i--) { a[i] = 0.0f; }
})"),
               CompileError);
  EXPECT_THROW(CompileSource(R"(
void f(int n, float* a) {
  #pragma acc parallel loop
  for (int i = 0; i < n; i += 2) { a[i] = 0.0f; }
})"),
               CompileError);
}

TEST(CompileTest, RejectsScalarWriteWithoutReduction) {
  EXPECT_THROW(CompileSource(R"(
void f(int n, float* a) {
  float last = 0.0f;
  #pragma acc parallel loop
  for (int i = 0; i < n; i++) {
    last = a[i];
  }
})"),
               CompileError);
}

TEST(CompileTest, RejectsReturnInsideLoop) {
  EXPECT_THROW(CompileSource(R"(
void f(int n, float* a) {
  #pragma acc parallel loop
  for (int i = 0; i < n; i++) {
    return;
  }
})"),
               CompileError);
}

TEST(CompileTest, RejectsMismatchedReductionStatement) {
  EXPECT_THROW(CompileSource(R"(
void f(int n, int k, int* keys, int* counts) {
  #pragma acc parallel loop
  for (int i = 0; i < n; i++) {
    #pragma acc reductiontoarray(+: counts[0:k])
    counts[keys[i]] = 5;
  }
})"),
               CompileError);
}

TEST(CompileTest, RejectsLoopDirectiveOutsideRegion) {
  EXPECT_THROW(CompileSource(R"(
void f(int n, float* a) {
  #pragma acc loop
  for (int i = 0; i < n; i++) { a[i] = 0.0f; }
})"),
               CompileError);
}

// ---------------------------------------------------------------------------
// Host evaluation
// ---------------------------------------------------------------------------

TEST(EvalTest, TypedValueConversions) {
  const TypedValue i = TypedValue::OfInt(-5, ir::ValType::kI32);
  EXPECT_EQ(i.AsInt(), -5);
  EXPECT_EQ(i.AsDouble(), -5.0);
  const TypedValue f = TypedValue::OfDouble(2.75, ir::ValType::kF32);
  EXPECT_EQ(f.AsDouble(), 2.75);
  EXPECT_EQ(f.AsInt(), 2);
}

TEST(EvalTest, Float32BindingRoundsValue) {
  const TypedValue f = TypedValue::OfDouble(0.1, ir::ValType::kF32);
  EXPECT_EQ(f.AsDouble(), static_cast<double>(0.1f));
}

TEST(EvalTest, TryFoldConstant) {
  std::int64_t out = 0;
  EXPECT_TRUE(TryFoldConstant(*frontend::Parser::ParseExpressionString(
                                  "2 * (3 + 4) - 1"),
                              &out));
  EXPECT_EQ(out, 13);
  EXPECT_TRUE(
      TryFoldConstant(*frontend::Parser::ParseExpressionString("-8"), &out));
  EXPECT_EQ(out, -8);
  EXPECT_FALSE(
      TryFoldConstant(*frontend::Parser::ParseExpressionString("n"), &out));
  EXPECT_FALSE(TryFoldConstant(
      *frontend::Parser::ParseExpressionString("1 / 0"), &out));
}

TEST(EvalTest, WriteHostElementBoundsChecked) {
  std::vector<float> data(4);
  HostArray array{data.data(), ir::ValType::kF32, 4};
  WriteHostElement(array, 2, TypedValue::OfDouble(1.5, ir::ValType::kF32),
                   "a");
  EXPECT_EQ(data[2], 1.5f);
  EXPECT_THROW(WriteHostElement(array, 4, TypedValue::OfInt(0), "a"),
               InvalidArgumentError);
  EXPECT_THROW(WriteHostElement(array, -1, TypedValue::OfInt(0), "a"),
               InvalidArgumentError);
}

// ---------------------------------------------------------------------------
// CUDA codegen (golden fragments)
// ---------------------------------------------------------------------------

TEST(CodegenTest, RewritesIndicesAgainstSegmentBase) {
  const Compiled compiled = CompileSource(R"(
void f(int n, float* a) {
  #pragma acc localaccess(a: stride(1))
  #pragma acc parallel loop
  for (int i = 0; i < n; i++) {
    a[i] = 1.0f;
  }
})");
  const std::string cuda = GenerateCudaKernel(OnlyOffload(compiled));
  EXPECT_NE(cuda.find("a[(i) - a_lo] = 1.0f;"), std::string::npos) << cuda;
  EXPECT_NE(cuda.find("__global__ void f_kernel0"), std::string::npos);
}

TEST(CodegenTest, EmitsDirtyBitInstrumentation) {
  const Compiled compiled = CompileSource(R"(
void f(int n, int* p, int* d) {
  #pragma acc parallel loop
  for (int i = 0; i < n; i++) {
    d[p[i]] = i;
  }
})");
  const std::string cuda = GenerateCudaKernel(OnlyOffload(compiled));
  EXPECT_NE(cuda.find("d_dirty1["), std::string::npos) << cuda;
  EXPECT_NE(cuda.find("d_dirty2["), std::string::npos);
}

TEST(CodegenTest, EmitsWriteMissCheck) {
  const Compiled compiled = CompileSource(R"(
void f(int n, int* p, int* d) {
  #pragma acc localaccess(d: stride(1))
  #pragma acc parallel loop
  for (int i = 0; i < n; i++) {
    d[p[i]] = i;
  }
})");
  const std::string cuda = GenerateCudaKernel(OnlyOffload(compiled));
  EXPECT_NE(cuda.find("accmg_record_miss(d_missbuf"), std::string::npos)
      << cuda;
  EXPECT_NE(cuda.find("d_own_lo"), std::string::npos);
}

TEST(CodegenTest, ProvenLocalWritesHaveNoCheck) {
  const Compiled compiled = CompileSource(R"(
void f(int n, float* a) {
  #pragma acc localaccess(a: stride(1))
  #pragma acc parallel loop
  for (int i = 0; i < n; i++) {
    a[i] = 1.0f;
  }
})");
  const std::string cuda = GenerateCudaKernel(OnlyOffload(compiled));
  EXPECT_EQ(cuda.find("accmg_record_miss"), std::string::npos) << cuda;
  EXPECT_EQ(cuda.find("_dirty1"), std::string::npos);
}

TEST(CodegenTest, EmitsReductionAccumulation) {
  const Compiled compiled = CompileSource(R"(
void f(int n, int k, int* keys, int* hist) {
  #pragma acc parallel loop
  for (int i = 0; i < n; i++) {
    #pragma acc reductiontoarray(+: hist[0:k])
    hist[keys[i]] += 1;
  }
})");
  const std::string cuda = GenerateCudaKernel(OnlyOffload(compiled));
  EXPECT_NE(cuda.find("accmg_red_add(&hist_partial["), std::string::npos)
      << cuda;
}

TEST(CodegenTest, HostSketchShowsPlacementAndComm) {
  const Compiled compiled = CompileSource(R"(
void f(int n, int* p, int* d, float* x) {
  #pragma acc localaccess(x: stride(1))
  #pragma acc parallel loop
  for (int i = 0; i < n; i++) {
    d[p[i]] = i;
    x[i] = 0.0f;
  }
})");
  const std::string host =
      GenerateHostSketch(compiled.program.functions[0]);
  EXPECT_NE(host.find("accmg_load(\"d\", REPLICATE | DIRTY_TRACK)"),
            std::string::npos)
      << host;
  EXPECT_NE(host.find("accmg_load(\"x\", DISTRIBUTE)"), std::string::npos);
  EXPECT_NE(host.find("accmg_propagate_dirty(\"d\")"), std::string::npos);
}

TEST(CodegenTest, WholeProgramIncludesEveryKernel) {
  // Compiled unfused: at the default level the mid-end would merge these
  // two same-thread loops into a single kernel.
  const Compiled compiled = CompileSource(R"(
void f(int n, float* a) {
  #pragma acc parallel loop
  for (int i = 0; i < n; i++) { a[i] = 0.0f; }
  #pragma acc parallel loop
  for (int i = 0; i < n; i++) { a[i] = a[i] + 1.0f; }
})", /*opt_level=*/0);
  const std::string text = GenerateCudaProgram(compiled.program);
  EXPECT_NE(text.find("f_kernel0"), std::string::npos);
  EXPECT_NE(text.find("f_kernel1"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Offload fusion legality (the optimizing mid-end, translator/opt.h)
// ---------------------------------------------------------------------------

/// Total fusions recorded in the compiled program: a fused offload with k
/// constituents counts as k-1.
int FusionCount(const CompiledProgram& program) {
  int fusions = 0;
  for (const auto& fn : program.functions) {
    for (const auto& offload : fn.offloads) {
      if (!offload.fused.empty()) {
        fusions += static_cast<int>(offload.fused.size()) - 1;
      }
    }
  }
  return fusions;
}

TEST(FusionTest, AdjacentSameThreadLoopsFuse) {
  const Compiled compiled = CompileSource(R"(
void f(int n, float* a, float* b) {
  #pragma acc parallel loop
  for (int i = 0; i < n; i++) { a[i] = 1.0f; }
  #pragma acc parallel loop
  for (int i = 0; i < n; i++) { b[i] = a[i] * 2.0f; }
})");
  const auto& fn = compiled.program.functions.at(0);
  ASSERT_EQ(fn.offloads.size(), 1u);
  EXPECT_EQ(FusionCount(compiled.program), 1);
  // The merged offload takes the first constituent's name plus a marker,
  // and the second loop's statement is recorded as absorbed.
  EXPECT_NE(fn.offloads[0].name.find("_fused"), std::string::npos);
  EXPECT_EQ(fn.fused_away.size(), 1u);
  // Unfused compilation of the same source keeps both offloads.
  const Compiled unfused = CompileSource(R"(
void f(int n, float* a, float* b) {
  #pragma acc parallel loop
  for (int i = 0; i < n; i++) { a[i] = 1.0f; }
  #pragma acc parallel loop
  for (int i = 0; i < n; i++) { b[i] = a[i] * 2.0f; }
})", /*opt_level=*/0);
  EXPECT_EQ(unfused.program.functions.at(0).offloads.size(), 2u);
  EXPECT_EQ(FusionCount(unfused.program), 0);
}

TEST(FusionTest, CrossOffloadRawDependenceBails) {
  // The second loop reads a[i+1], written by the first on a DIFFERENT
  // thread: fusing would read the stale value. Must stay two offloads.
  const Compiled compiled = CompileSource(R"(
void f(int n, float* a, float* b) {
  #pragma acc parallel loop
  for (int i = 0; i < n; i++) { a[i] = 1.0f; }
  #pragma acc parallel loop
  for (int i = 0; i < n; i++) { b[i] = a[i + 1]; }
})");
  EXPECT_EQ(compiled.program.functions.at(0).offloads.size(), 2u);
  EXPECT_EQ(FusionCount(compiled.program), 0);
}

TEST(FusionTest, MismatchedIterationSpacesBail) {
  const Compiled compiled = CompileSource(R"(
void f(int n, int m, float* a, float* b) {
  #pragma acc parallel loop
  for (int i = 0; i < n; i++) { a[i] = 1.0f; }
  #pragma acc parallel loop
  for (int i = 0; i < m; i++) { b[i] = 2.0f; }
})");
  EXPECT_EQ(compiled.program.functions.at(0).offloads.size(), 2u);
  EXPECT_EQ(FusionCount(compiled.program), 0);
}

TEST(FusionTest, ReductionDestinationArrayBails) {
  // `hist` is a reduction-destination array in the first loop and an
  // ordinary read in the second: merging would interleave the partial
  // reduction with its consumer. Must stay two offloads.
  const Compiled compiled = CompileSource(R"(
void f(int n, int k, int* idx, float* hist, float* out) {
  #pragma acc reductiontoarray(+: hist[0:k])
  #pragma acc parallel loop
  for (int i = 0; i < n; i++) { hist[idx[i]] = hist[idx[i]] + 1.0f; }
  #pragma acc parallel loop
  for (int i = 0; i < n; i++) { out[i] = hist[idx[i]]; }
})");
  EXPECT_EQ(compiled.program.functions.at(0).offloads.size(), 2u);
  EXPECT_EQ(FusionCount(compiled.program), 0);
}

TEST(FusionTest, ShadowedDeclarationBails) {
  // The first loop's induction `i` shadows the function parameter `i` that
  // the second loop captures as a kernel scalar. In the merged kernel the
  // parameter would collide with the primary induction at function scope,
  // so the name-collision check must refuse the merge.
  const Compiled compiled = CompileSource(R"(
void f(int n, float i, float* a, float* b) {
  #pragma acc parallel loop
  for (int i = 0; i < n; i++) { a[i] = 1.0f; }
  #pragma acc parallel loop
  for (int j = 0; j < n; j++) { b[j] = i; }
})");
  EXPECT_EQ(compiled.program.functions.at(0).offloads.size(), 2u);
  EXPECT_EQ(FusionCount(compiled.program), 0);
}

TEST(FusionTest, BodyLocalShadowingIsSafeToFuse) {
  // A body-local redeclaration of a name the other loop captures as a
  // parameter is NOT a collision: each constituent keeps its own scope in
  // the merged kernel, so these two loops legally fuse.
  const Compiled compiled = CompileSource(R"(
void f(int n, float s, float* a, float* b) {
  #pragma acc parallel loop
  for (int i = 0; i < n; i++) { a[i] = s; }
  #pragma acc parallel loop
  for (int i = 0; i < n; i++) { float s = 2.0f; b[i] = s; }
})");
  EXPECT_EQ(compiled.program.functions.at(0).offloads.size(), 1u);
  EXPECT_EQ(FusionCount(compiled.program), 1);
}

TEST(FusionTest, MismatchedColsSpecsBail) {
  // Two otherwise-fusable loops whose localaccess specs disagree on the
  // 2-D row length of a rider array: merging would leave the fused offload
  // with two irreconcilable ownership shapes for `w`, so it must bail.
  const Compiled mismatch = CompileSource(R"(
void f(int n, float* a, float* b, float* w) {
  #pragma acc localaccess(a: stride(1)) (w: cols(8))
  #pragma acc parallel loop
  for (int i = 0; i < n; i++) { a[i] = w[i * 8]; }
  #pragma acc localaccess(a: stride(1)) (w: cols(2))
  #pragma acc parallel loop
  for (int i = 0; i < n; i++) { b[i] = a[i] + w[i * 2]; }
})");
  EXPECT_EQ(mismatch.program.functions.at(0).offloads.size(), 2u);
  EXPECT_EQ(FusionCount(mismatch.program), 0);

  // Control: identical cols specs fuse.
  const Compiled match = CompileSource(R"(
void f(int n, float* a, float* b, float* w) {
  #pragma acc localaccess(a: stride(1)) (w: cols(8))
  #pragma acc parallel loop
  for (int i = 0; i < n; i++) { a[i] = w[i * 8]; }
  #pragma acc localaccess(a: stride(1)) (w: cols(8))
  #pragma acc parallel loop
  for (int i = 0; i < n; i++) { b[i] = a[i] + w[i * 8]; }
})");
  EXPECT_EQ(match.program.functions.at(0).offloads.size(), 1u);
  EXPECT_EQ(FusionCount(match.program), 1);
}

}  // namespace
}  // namespace accmg::translator
