// Unit tests for the multi-GPU runtime: data loader policies and the
// reload-skip cache, comm manager (dirty propagation, miss replay, halo
// refresh), managed-array accounting, and host-interpreter semantics.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <numeric>

#include "runtime/comm_manager.h"
#include "runtime/data_loader.h"
#include "runtime/managed_array.h"
#include "runtime/program.h"
#include "sim/fault.h"
#include "sim/platform.h"

namespace accmg::runtime {
namespace {

class LoaderFixture : public ::testing::Test {
 protected:
  LoaderFixture()
      : platform_(sim::MakeSupercomputerNode(3)),
        loader_(*platform_, options_, {0, 1, 2}),
        comm_(*platform_, options_, {0, 1, 2}) {}

  ArrayRequirement ReplicaReq(ManagedArray& array, bool written = false) {
    ArrayRequirement req;
    req.array = &array;
    req.written = written;
    req.dirty_tracked = written;
    req.read_ranges.assign(3, Range{0, array.count()});
    req.own_ranges.assign(3, Range{0, array.count()});
    return req;
  }

  ArrayRequirement DistributeReq(ManagedArray& array,
                                 std::int64_t halo = 0) {
    ArrayRequirement req;
    req.array = &array;
    req.distributed = true;
    const std::int64_t n = array.count();
    for (int g = 0; g < 3; ++g) {
      const Range own{n * g / 3, n * (g + 1) / 3};
      Range read{own.lo - halo, own.hi + halo};
      read.lo = std::max<std::int64_t>(read.lo, 0);
      read.hi = std::min(read.hi, n);
      req.read_ranges.push_back(read);
      req.own_ranges.push_back(own);
    }
    return req;
  }

  ExecOptions options_;
  std::unique_ptr<sim::Platform> platform_;
  DataLoader loader_;
  CommManager comm_;
};

TEST_F(LoaderFixture, ReplicaPolicyCopiesEverywhere) {
  std::vector<float> host(300);
  std::iota(host.begin(), host.end(), 0.0f);
  ManagedArray array("a", ir::ValType::kF32, 300, host.data(), 3);

  loader_.EnsurePlacement(ReplicaReq(array));
  EXPECT_EQ(array.placement(), Placement::kReplicated);
  for (int d = 0; d < 3; ++d) {
    EXPECT_TRUE(array.shard(d).valid);
    EXPECT_EQ(array.shard(d).data->Typed<float>()[37], 37.0f);
  }
  EXPECT_EQ(array.UserBytes(), 3 * 300 * sizeof(float));
}

TEST_F(LoaderFixture, DistributionLoadsOnlySegments) {
  std::vector<float> host(300);
  std::iota(host.begin(), host.end(), 0.0f);
  ManagedArray array("a", ir::ValType::kF32, 300, host.data(), 3);

  loader_.EnsurePlacement(DistributeReq(array));
  EXPECT_EQ(array.placement(), Placement::kDistributed);
  EXPECT_EQ(array.UserBytes(), 300 * sizeof(float));  // no duplication
  // Device 1 holds [100, 200) and sees global values.
  EXPECT_EQ(array.shard(1).loaded, (Range{100, 200}));
  EXPECT_EQ(array.shard(1).data->Typed<float>()[0], 100.0f);
  EXPECT_EQ(array.OwnerOf(150), 1);
  EXPECT_EQ(array.OwnerOf(299), 2);
}

TEST_F(LoaderFixture, HaloWidensLoadedRanges) {
  std::vector<float> host(300, 1.0f);
  ManagedArray array("a", ir::ValType::kF32, 300, host.data(), 3);
  loader_.EnsurePlacement(DistributeReq(array, /*halo=*/2));
  EXPECT_EQ(array.shard(1).loaded, (Range{98, 202}));
  EXPECT_EQ(array.shard(1).owned, (Range{100, 200}));
  EXPECT_EQ(array.shard(0).loaded, (Range{0, 102}));
}

TEST_F(LoaderFixture, ReloadSkipCacheHitsOnRepeat) {
  std::vector<float> host(300, 1.0f);
  ManagedArray array("a", ir::ValType::kF32, 300, host.data(), 3);
  loader_.EnsurePlacement(DistributeReq(array));
  const auto loads_before = loader_.stats().loads_performed;
  loader_.EnsurePlacement(DistributeReq(array));
  loader_.EnsurePlacement(DistributeReq(array));
  EXPECT_EQ(loader_.stats().loads_performed, loads_before);
  EXPECT_EQ(loader_.stats().loads_skipped, 2u);
}

TEST_F(LoaderFixture, PlacementTransitionGathersFirst) {
  std::vector<std::int32_t> host(300);
  std::iota(host.begin(), host.end(), 0);
  ManagedArray array("a", ir::ValType::kI32, 300, host.data(), 3);

  loader_.EnsurePlacement(DistributeReq(array));
  // Mutate device 2's owned segment, as a kernel would.
  array.shard(2).data->Typed<std::int32_t>()[0] = -5;  // global index 200
  array.set_host_valid(false);

  // Switching to replication must preserve the device-side value.
  loader_.EnsurePlacement(ReplicaReq(array));
  EXPECT_EQ(array.shard(0).data->Typed<std::int32_t>()[200], -5);
  EXPECT_EQ(host[200], -5);  // the gather refreshed the host copy
}

TEST_F(LoaderFixture, GatherFromReplicaUsesAnyValidShard) {
  std::vector<float> host(64, 0.0f);
  ManagedArray array("a", ir::ValType::kF32, 64, host.data(), 3);
  loader_.EnsurePlacement(ReplicaReq(array));
  array.shard(1).data->Typed<float>()[5] = 9.0f;
  array.shard(0).valid = false;  // force the gather to look further
  array.shard(2).valid = false;
  array.set_host_valid(false);
  loader_.GatherToHost(array);
  EXPECT_EQ(host[5], 9.0f);
}

TEST_F(LoaderFixture, SystemBuffersFollowInstrumentation) {
  std::vector<std::int32_t> host(1000, 0);
  ManagedArray array("a", ir::ValType::kI32, 1000, host.data(), 3);
  ArrayRequirement req = ReplicaReq(array, /*written=*/true);
  loader_.EnsurePlacement(req);
  EXPECT_GT(array.SystemBytes(), 0u);
  for (int d = 0; d < 3; ++d) {
    EXPECT_NE(array.shard(d).dirty1, nullptr);
    EXPECT_NE(array.shard(d).dirty2, nullptr);
  }
  // Dropping the instrumentation frees the buffers.
  req.dirty_tracked = false;
  req.written = false;
  loader_.EnsurePlacement(req);
  EXPECT_EQ(array.SystemBytes(), 0u);
}

TEST_F(LoaderFixture, DirtyPropagationMakesReplicasCoherent) {
  std::vector<std::int32_t> host(1000, 0);
  ManagedArray array("a", ir::ValType::kI32, 1000, host.data(), 3);
  loader_.EnsurePlacement(ReplicaReq(array, /*written=*/true));

  // Device 0 writes element 10, device 2 writes element 900; both mark
  // dirty bits as the instrumented kernel would.
  auto write = [&](int device, std::int64_t index, std::int32_t value) {
    DeviceShard& shard = array.shard(device);
    shard.data->Typed<std::int32_t>()[static_cast<std::size_t>(index)] = value;
    shard.dirty1->bytes()[static_cast<std::size_t>(index)] = std::byte{1};
    shard.dirty2->bytes()[static_cast<std::size_t>(index / shard.chunk_elems)] =
        std::byte{1};
  };
  write(0, 10, 111);
  write(2, 900, 222);

  comm_.PropagateReplicated(array);
  for (int d = 0; d < 3; ++d) {
    EXPECT_EQ(array.shard(d).data->Typed<std::int32_t>()[10], 111) << d;
    EXPECT_EQ(array.shard(d).data->Typed<std::int32_t>()[900], 222) << d;
  }
  // Dirty state cleared afterwards.
  for (int d = 0; d < 3; ++d) {
    for (std::byte b : array.shard(d).dirty1->bytes()) {
      EXPECT_EQ(b, std::byte{0});
    }
  }
  EXPECT_GT(comm_.stats().dirty_chunks_sent, 0u);
}

TEST_F(LoaderFixture, CleanChunksAreNeverTransferred) {
  // One small write in a large array: only one chunk should travel per peer.
  std::vector<std::int32_t> host(1 << 20, 0);
  ManagedArray array("a", ir::ValType::kI32, 1 << 20, host.data(), 3);
  loader_.EnsurePlacement(ReplicaReq(array, /*written=*/true));
  DeviceShard& shard = array.shard(0);
  shard.data->Typed<std::int32_t>()[77] = 1;
  shard.dirty1->bytes()[77] = std::byte{1};
  shard.dirty2->bytes()[77 / shard.chunk_elems] = std::byte{1};

  platform_->ResetAccounting();
  comm_.PropagateReplicated(array);
  EXPECT_EQ(comm_.stats().dirty_chunks_sent, 2u);  // one chunk x two peers
  EXPECT_GT(comm_.stats().clean_chunks_skipped, 0u);
  // Traffic is ~2 chunks, far below the full array size.
  EXPECT_LT(platform_->counters().p2p_bytes, std::size_t{3} << 20);
}

TEST_F(LoaderFixture, MissReplayDeliversToOwners) {
  std::vector<std::int32_t> host(300, 0);
  ManagedArray array("a", ir::ValType::kI32, 300, host.data(), 3);
  ArrayRequirement req = DistributeReq(array);
  req.miss_checked = true;
  req.written = true;
  loader_.EnsurePlacement(req);

  // Device 0 recorded writes destined for devices 1 and 2.
  array.shard(0).miss.records.push_back(ir::WriteMissRecord{150, 42});
  array.shard(0).miss.records.push_back(ir::WriteMissRecord{250, 43});
  comm_.ReplayWriteMisses(array);

  EXPECT_EQ(array.shard(1).data->Typed<std::int32_t>()[50], 42);   // 150-100
  EXPECT_EQ(array.shard(2).data->Typed<std::int32_t>()[50], 43);   // 250-200
  EXPECT_TRUE(array.shard(0).miss.records.empty());
  EXPECT_EQ(comm_.stats().miss_records_replayed, 2u);
}

TEST_F(LoaderFixture, HaloRefreshPullsFromOwners) {
  std::vector<std::int32_t> host(300);
  std::iota(host.begin(), host.end(), 0);
  ManagedArray array("a", ir::ValType::kI32, 300, host.data(), 3);
  loader_.EnsurePlacement(DistributeReq(array, /*halo=*/2));

  // The owner of element 100 (device 1, loaded range [98, 202)) updates it;
  // device 0 holds it as a stale halo element.
  array.shard(1).data->Typed<std::int32_t>()[2] = 77;  // global index 100
  comm_.RefreshHalos(array);
  // Device 0 loaded [0, 102): element 100 sits at local offset 100.
  EXPECT_EQ(array.shard(0).data->Typed<std::int32_t>()[100], 77);
  EXPECT_GT(comm_.stats().halo_refreshes, 0u);
}

TEST_F(LoaderFixture, ScatterFromHostRefreshesSegments) {
  std::vector<std::int32_t> host(300, 1);
  ManagedArray array("a", ir::ValType::kI32, 300, host.data(), 3);
  loader_.EnsurePlacement(DistributeReq(array));
  host[150] = 99;
  loader_.ScatterFromHost(array);
  EXPECT_EQ(array.shard(1).data->Typed<std::int32_t>()[50], 99);
}

TEST_F(LoaderFixture, DropDeviceStateFreesMemory) {
  std::vector<float> host(256, 0.0f);
  ManagedArray array("a", ir::ValType::kF32, 256, host.data(), 3);
  loader_.EnsurePlacement(ReplicaReq(array, true));
  const std::size_t used = platform_->device(0).used_bytes();
  EXPECT_GT(used, 0u);
  array.DropDeviceState();
  EXPECT_EQ(platform_->device(0).used_bytes(), 0u);
  EXPECT_EQ(array.placement(), Placement::kHostOnly);
}

// ---------------------------------------------------------------------------
// Device-set changes: shard release, gather ordering, reload-skip hygiene
// ---------------------------------------------------------------------------

TEST_F(LoaderFixture, ReplicaShrinkReleasesNonParticipatingShards) {
  std::vector<float> host(256, 1.0f);
  ManagedArray array("a", ir::ValType::kF32, 256, host.data(), 3);
  loader_.EnsurePlacement(ReplicaReq(array));
  const std::size_t baseline = platform_->device(2).used_bytes();
  EXPECT_GT(baseline, 0u);

  // A smaller device set takes over. All of its replicas are already valid,
  // so the reload-skip path fires — it must still free device 2's shard
  // (previously leaked, and a stale-but-valid replica hazard).
  DataLoader small(*platform_, options_, {0, 1});
  ArrayRequirement req;
  req.array = &array;
  req.read_ranges.assign(2, Range{0, 256});
  req.own_ranges.assign(2, Range{0, 256});
  small.EnsurePlacement(req);
  EXPECT_EQ(small.stats().loads_skipped, 1u);
  EXPECT_EQ(platform_->device(2).used_bytes(), 0u);
  EXPECT_FALSE(array.shard(2).valid);
  EXPECT_EQ(array.shard(2).data, nullptr);
}

TEST_F(LoaderFixture, ShrinkGathersFromDepartingShardFirst) {
  std::vector<std::int32_t> host(100, 0);
  ManagedArray array("a", ir::ValType::kI32, 100, host.data(), 3);
  DataLoader only2(*platform_, options_, {2});
  ArrayRequirement req2;
  req2.array = &array;
  req2.read_ranges.assign(1, Range{0, 100});
  req2.own_ranges.assign(1, Range{0, 100});
  only2.EnsurePlacement(req2);
  // A kernel on device 2 writes; the host copy goes stale.
  array.shard(2).data->Typed<std::int32_t>()[42] = 7;
  array.set_host_valid(false);

  // New loader on {0, 1}: device 2 holds the only valid copy, so the load
  // must gather it home before releasing the departing shard.
  DataLoader pair(*platform_, options_, {0, 1});
  ArrayRequirement req01;
  req01.array = &array;
  req01.read_ranges.assign(2, Range{0, 100});
  req01.own_ranges.assign(2, Range{0, 100});
  pair.EnsurePlacement(req01);
  EXPECT_EQ(host[42], 7);
  EXPECT_EQ(array.shard(0).data->Typed<std::int32_t>()[42], 7);
  EXPECT_EQ(array.shard(2).data, nullptr);
  EXPECT_EQ(platform_->device(2).used_bytes(), 0u);
}

TEST_F(LoaderFixture, DistributedReloadSkipRequiresStaleShardsInvalid) {
  std::vector<std::int32_t> host(300);
  std::iota(host.begin(), host.end(), 0);
  ManagedArray array("a", ir::ValType::kI32, 300, host.data(), 3);
  loader_.EnsurePlacement(DistributeReq(array));
  EXPECT_EQ(array.OwnerOf(250), 2);

  // Shrink to {0, 1} with ranges identical to what those devices already
  // hold. The per-device check alone would skip the reload and leave device
  // 2's stale shard claiming ownership of [200, 300).
  DataLoader pair(*platform_, options_, {0, 1});
  ArrayRequirement req;
  req.array = &array;
  req.distributed = true;
  req.read_ranges = {Range{0, 100}, Range{100, 200}};
  req.own_ranges = {Range{0, 100}, Range{100, 200}};
  pair.EnsurePlacement(req);
  EXPECT_FALSE(array.shard(2).valid);
  EXPECT_EQ(platform_->device(2).used_bytes(), 0u);
  EXPECT_EQ(array.OwnerOf(250), -1);  // no silent stale owner

  // Nothing stale remains, so the identical request is now a cache hit.
  const auto loads = pair.stats().loads_performed;
  pair.EnsurePlacement(req);
  EXPECT_EQ(pair.stats().loads_performed, loads);
  EXPECT_EQ(pair.stats().loads_skipped, 1u);

  // Re-grow to three devices: the full partition comes back correctly.
  loader_.EnsurePlacement(DistributeReq(array));
  EXPECT_EQ(array.OwnerOf(250), 2);
  EXPECT_EQ(array.shard(2).data->Typed<std::int32_t>()[50], 250);
}

TEST_F(LoaderFixture, DistReplicaDistRoundTripIsBitIdentical) {
  std::vector<float> host(300);
  for (int i = 0; i < 300; ++i) {
    host[static_cast<std::size_t>(i)] = 0.1f * static_cast<float>(i);
  }
  ManagedArray array("a", ir::ValType::kF32, 300, host.data(), 3);

  loader_.EnsurePlacement(DistributeReq(array));
  // Owners mutate their segments, as a kernel would.
  for (int d = 0; d < 3; ++d) {
    array.shard(d).data->Typed<float>()[10] = 1000.0f + static_cast<float>(d);
  }
  array.set_host_valid(false);
  loader_.GatherToHost(array);
  const std::vector<float> snapshot = host;

  // dist -> replica -> dist: every transition must preserve the exact bytes.
  loader_.EnsurePlacement(ReplicaReq(array));
  EXPECT_EQ(array.placement(), Placement::kReplicated);
  loader_.EnsurePlacement(DistributeReq(array, /*halo=*/1));
  EXPECT_EQ(array.placement(), Placement::kDistributed);
  const auto skipped = loader_.stats().loads_skipped;
  loader_.EnsurePlacement(DistributeReq(array, /*halo=*/1));
  EXPECT_EQ(loader_.stats().loads_skipped, skipped + 1);  // genuine cache hit

  array.set_host_valid(false);
  loader_.GatherToHost(array);
  EXPECT_EQ(std::memcmp(host.data(), snapshot.data(),
                        snapshot.size() * sizeof(float)),
            0);
  // Global element 110 (device 1's earlier write) at its new local offset.
  EXPECT_EQ(array.shard(1).data->Typed<float>()[11], 1001.0f);
}

// ---------------------------------------------------------------------------
// Halo refresh edge cases
// ---------------------------------------------------------------------------

TEST_F(LoaderFixture, HaloRefreshHandlesEmptyOwnedShard) {
  std::vector<std::int32_t> host(300);
  std::iota(host.begin(), host.end(), 0);
  ManagedArray array("a", ir::ValType::kI32, 300, host.data(), 3);
  // Device 1 participates with a loaded window but owns nothing: its whole
  // residency is halo, fed by two different owners.
  ArrayRequirement req;
  req.array = &array;
  req.distributed = true;
  req.read_ranges = {Range{0, 150}, Range{100, 200}, Range{150, 300}};
  req.own_ranges = {Range{0, 150}, Range{150, 150}, Range{150, 300}};
  loader_.EnsurePlacement(req);

  array.shard(0).data->Typed<std::int32_t>()[120] = -120;  // global 120
  array.shard(2).data->Typed<std::int32_t>()[30] = -180;   // global 180
  comm_.RefreshHalos(array);
  // Device 1 loaded [100, 200): both pieces must arrive from their owners.
  EXPECT_EQ(array.shard(1).data->Typed<std::int32_t>()[20], -120);
  EXPECT_EQ(array.shard(1).data->Typed<std::int32_t>()[80], -180);
}

TEST_F(LoaderFixture, HaloRefreshRejectsStaleOwnerShard) {
  std::vector<std::int32_t> host(300, 0);
  ManagedArray array("a", ir::ValType::kI32, 300, host.data(), 3);
  loader_.EnsurePlacement(DistributeReq(array, /*halo=*/2));
  // Device 1 owns [100, 200) but its shard is stale: refreshing device 0's
  // halo from it would spread garbage silently.
  array.shard(1).valid = false;
  EXPECT_THROW(comm_.RefreshHalos(array), InvalidArgumentError);
}

// ---------------------------------------------------------------------------
// Host interpreter semantics (through the public ProgramRunner)
// ---------------------------------------------------------------------------

TEST(HostInterpTest, HostControlFlowRuns) {
  constexpr char kSource[] = R"(
void collatz(int start, int steps) {
  int x = start;
  int count = 0;
  while (x != 1) {
    if (x % 2 == 0) { x = x / 2; } else { x = 3 * x + 1; }
    count++;
  }
  steps = count;
}
)";
  auto platform = sim::MakeDesktopMachine(1);
  const AccProgram program = AccProgram::FromSource("collatz", kSource);
  ProgramRunner runner(program, RunConfig{.platform = platform.get()});
  runner.BindScalar("start", static_cast<std::int64_t>(27));
  runner.BindScalar("steps", static_cast<std::int64_t>(0));
  runner.Run("collatz");
  EXPECT_EQ(runner.ScalarAfterRun("steps").AsInt(), 111);
}

TEST(HostInterpTest, HostArrayAccessAutoSyncs) {
  // The host reads a device-written array between kernels without an update
  // directive; the runtime must gather transparently.
  constexpr char kSource[] = R"(
void f(int n, int* a, int total) {
  #pragma acc data copy(a[0:n])
  {
    #pragma acc parallel loop
    for (int i = 0; i < n; i++) {
      a[i] = i * 2;
    }
    int sum = 0;
    for (int i = 0; i < n; i++) {
      sum += a[i];
    }
    total = sum;
  }
}
)";
  auto platform = sim::MakeDesktopMachine(2);
  const AccProgram program = AccProgram::FromSource("f", kSource);
  std::vector<std::int32_t> a(100, -1);
  ProgramRunner runner(program, RunConfig{.platform = platform.get(),
                                          .num_gpus = 2});
  runner.BindArray("a", a.data(), ir::ValType::kI32, 100);
  runner.BindScalar("n", static_cast<std::int64_t>(100));
  runner.BindScalar("total", static_cast<std::int64_t>(0));
  runner.Run("f");
  EXPECT_EQ(runner.ScalarAfterRun("total").AsInt(), 99 * 100);
}

TEST(HostInterpTest, HostWritesInvalidateDeviceCopies) {
  // Host rewrites the input between two kernels; the second kernel must see
  // the new values.
  constexpr char kSource[] = R"(
void f(int n, int* a, int* b) {
  #pragma acc data copy(a[0:n], b[0:n])
  {
    #pragma acc parallel loop
    for (int i = 0; i < n; i++) {
      b[i] = a[i];
    }
    for (int i = 0; i < n; i++) {
      a[i] = 100 + i;
    }
    #pragma acc parallel loop
    for (int i = 0; i < n; i++) {
      b[i] = b[i] + a[i];
    }
  }
}
)";
  auto platform = sim::MakeDesktopMachine(2);
  const AccProgram program = AccProgram::FromSource("f", kSource);
  std::vector<std::int32_t> a(50), b(50, 0);
  std::iota(a.begin(), a.end(), 0);
  ProgramRunner runner(program, RunConfig{.platform = platform.get(),
                                          .num_gpus = 2});
  runner.BindArray("a", a.data(), ir::ValType::kI32, 50);
  runner.BindArray("b", b.data(), ir::ValType::kI32, 50);
  runner.BindScalar("n", static_cast<std::int64_t>(50));
  runner.Run("f");
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(b[static_cast<std::size_t>(i)], i + 100 + i) << i;
  }
}

TEST(HostInterpTest, CopyinDoesNotWriteBack) {
  constexpr char kSource[] = R"(
void f(int n, int* in, int* out) {
  #pragma acc data copyin(in[0:n]) copyout(out[0:n])
  {
    #pragma acc parallel loop
    for (int i = 0; i < n; i++) {
      out[i] = in[i] + 1;
      in[i] = -999;
    }
  }
}
)";
  auto platform = sim::MakeDesktopMachine(2);
  const AccProgram program = AccProgram::FromSource("f", kSource);
  std::vector<std::int32_t> in(20, 5), out(20, 0);
  ProgramRunner runner(program, RunConfig{.platform = platform.get(),
                                          .num_gpus = 2});
  runner.BindArray("in", in.data(), ir::ValType::kI32, 20);
  runner.BindArray("out", out.data(), ir::ValType::kI32, 20);
  runner.BindScalar("n", static_cast<std::int64_t>(20));
  runner.Run("f");
  EXPECT_EQ(out[7], 6);
  EXPECT_EQ(in[7], 5);  // device-side mutation never copied back
}

TEST(HostInterpTest, ImplicitDataRegionForUnmanagedArrays) {
  // No data directive at all: the runtime creates a per-region lifetime.
  constexpr char kSource[] = R"(
void f(int n, float* a) {
  #pragma acc parallel loop
  for (int i = 0; i < n; i++) {
    a[i] = 3.0f;
  }
}
)";
  auto platform = sim::MakeDesktopMachine(2);
  const AccProgram program = AccProgram::FromSource("f", kSource);
  std::vector<float> a(40, 0.0f);
  ProgramRunner runner(program, RunConfig{.platform = platform.get(),
                                          .num_gpus = 2});
  runner.BindArray("a", a.data(), ir::ValType::kF32, 40);
  runner.BindScalar("n", static_cast<std::int64_t>(40));
  runner.Run("f");
  EXPECT_EQ(a[39], 3.0f);
  // The implicit region ended: all device memory is released.
  EXPECT_EQ(platform->device(0).used_bytes(), 0u);
}

TEST(HostInterpTest, UpdateDirectivesMoveData) {
  constexpr char kSource[] = R"(
void f(int n, int* a, int probe) {
  #pragma acc data copy(a[0:n])
  {
    #pragma acc parallel loop
    for (int i = 0; i < n; i++) {
      a[i] = 7;
    }
    #pragma acc update host(a)
    ;
    probe = a[0];
  }
}
)";
  auto platform = sim::MakeDesktopMachine(1);
  const AccProgram program = AccProgram::FromSource("f", kSource);
  std::vector<std::int32_t> a(10, 0);
  ProgramRunner runner(program, RunConfig{.platform = platform.get()});
  runner.BindArray("a", a.data(), ir::ValType::kI32, 10);
  runner.BindScalar("n", static_cast<std::int64_t>(10));
  runner.BindScalar("probe", static_cast<std::int64_t>(0));
  runner.Run("f");
  EXPECT_EQ(runner.ScalarAfterRun("probe").AsInt(), 7);
}

TEST(HostInterpTest, MissingBindingIsAnError) {
  constexpr char kSource[] = R"(
void f(int n, float* a) {
  #pragma acc parallel loop
  for (int i = 0; i < n; i++) { a[i] = 0.0f; }
}
)";
  auto platform = sim::MakeDesktopMachine(1);
  const AccProgram program = AccProgram::FromSource("f", kSource);
  ProgramRunner runner(program, RunConfig{.platform = platform.get()});
  runner.BindScalar("n", static_cast<std::int64_t>(4));
  EXPECT_THROW(runner.Run("f"), InvalidArgumentError);
}

TEST(HostInterpTest, UnknownFunctionIsAnError) {
  auto platform = sim::MakeDesktopMachine(1);
  const AccProgram program =
      AccProgram::FromSource("f", "void f(int n) { }");
  ProgramRunner runner(program, RunConfig{.platform = platform.get()});
  EXPECT_THROW(runner.Run("nope"), InvalidArgumentError);
}

TEST(HostInterpTest, TooManyGpusRejected) {
  auto platform = sim::MakeDesktopMachine(2);
  const AccProgram program =
      AccProgram::FromSource("f", "void f(int n) { }");
  ProgramRunner runner(program, RunConfig{.platform = platform.get(),
                                          .num_gpus = 5});
  runner.BindScalar("n", static_cast<std::int64_t>(1));
  EXPECT_THROW(runner.Run("f"), InvalidArgumentError);
}

// ---------------------------------------------------------------------------
// Small-N sweeps: N < num_gpus leaves some devices with empty iteration
// ranges and empty owned segments. The boundary math clamps monotonically;
// these pin the downstream kernel-launch, halo, write-miss, and reduction
// paths against the empty-range cases, in both executor modes, with the
// validator as the oracle.
// ---------------------------------------------------------------------------

class SmallNSweep : public ::testing::TestWithParam<bool> {};

TEST_P(SmallNSweep, HaloStencilHandlesEmptyDeviceRanges) {
  constexpr char kSource[] = R"(
void f(int n, double* u, double* unew) {
  #pragma acc data copy(u[0:n]) create(unew[0:n])
  {
    #pragma acc localaccess(u: stride(1), left(1), right(1)) \
                (unew: stride(1))
    #pragma acc parallel loop
    for (int i = 0; i < n; i++) {
      int l = i - 1;
      int r = i + 1;
      if (l < 0) { l = 0; }
      if (r >= n) { r = n - 1; }
      unew[i] = u[i] + 0.5 * (u[l] - 2.0 * u[i] + u[r]);
    }
    #pragma acc localaccess(u: stride(1)) (unew: stride(1))
    #pragma acc parallel loop
    for (int i = 0; i < n; i++) { u[i] = unew[i]; }
  }
}
)";
  const AccProgram program = AccProgram::FromSource("f", kSource);
  for (const int n : {1, 2, 3, 5}) {
    for (const int gpus : {2, 4}) {
      SCOPED_TRACE("n=" + std::to_string(n) + " gpus=" +
                   std::to_string(gpus));
      auto platform = sim::MakeSupercomputerNode(4);
      std::vector<double> u(static_cast<std::size_t>(n));
      std::vector<double> unew(static_cast<std::size_t>(n), 0.0);
      for (int i = 0; i < n; ++i) u[static_cast<std::size_t>(i)] = i + 1;
      RunConfig config{.platform = platform.get(), .num_gpus = gpus};
      config.options.async_pipeline = GetParam();
      config.options.validate = true;
      ProgramRunner runner(program, config);
      runner.BindArray("u", u.data(), ir::ValType::kF64, n);
      runner.BindArray("unew", unew.data(), ir::ValType::kF64, n);
      runner.BindScalar("n", static_cast<std::int64_t>(n));
      const RunReport report = runner.Run("f");
      EXPECT_EQ(report.validator.divergences, 0u);
      EXPECT_GT(report.validator.kernels_checked, 0u);
    }
  }
}

TEST_P(SmallNSweep, WriteMissScatterHandlesEmptyDeviceRanges) {
  constexpr char kSource[] = R"(
void s(int n, int* perm, int* src, int* dst) {
  #pragma acc data copyin(perm[0:n], src[0:n]) copy(dst[0:n])
  {
    #pragma acc localaccess(src: stride(1)) (dst: stride(1))
    #pragma acc parallel loop
    for (int i = 0; i < n; i++) { dst[perm[i]] = src[i] * 3; }
  }
}
)";
  const AccProgram program = AccProgram::FromSource("s", kSource);
  for (const int n : {1, 2, 3}) {
    for (const int gpus : {2, 4}) {
      SCOPED_TRACE("n=" + std::to_string(n) + " gpus=" +
                   std::to_string(gpus));
      auto platform = sim::MakeSupercomputerNode(4);
      std::vector<std::int32_t> perm(static_cast<std::size_t>(n));
      std::vector<std::int32_t> src(static_cast<std::size_t>(n));
      std::vector<std::int32_t> dst(static_cast<std::size_t>(n), -1);
      for (int i = 0; i < n; ++i) {
        perm[static_cast<std::size_t>(i)] = n - 1 - i;  // reversal: all miss
        src[static_cast<std::size_t>(i)] = i;
      }
      RunConfig config{.platform = platform.get(), .num_gpus = gpus};
      config.options.async_pipeline = GetParam();
      config.options.validate = true;
      ProgramRunner runner(program, config);
      runner.BindArray("perm", perm.data(), ir::ValType::kI32, n);
      runner.BindArray("src", src.data(), ir::ValType::kI32, n);
      runner.BindArray("dst", dst.data(), ir::ValType::kI32, n);
      runner.BindScalar("n", static_cast<std::int64_t>(n));
      const RunReport report = runner.Run("s");
      EXPECT_EQ(report.validator.divergences, 0u);
      for (int i = 0; i < n; ++i) {
        EXPECT_EQ(dst[static_cast<std::size_t>(n - 1 - i)], i * 3);
      }
    }
  }
}

TEST_P(SmallNSweep, ReductionsHandleEmptyDeviceRanges) {
  constexpr char kSource[] = R"(
void r(int n, int k, int* bins, int* hist, int* total) {
  int s = 0;
  #pragma acc data copyin(bins[0:n]) copy(hist[0:k]) copyout(total[0:1])
  {
    #pragma acc parallel loop reduction(+:s)
    for (int i = 0; i < n; i++) {
      int c = bins[i];
      #pragma acc reductiontoarray(+: hist[0:k])
      hist[c] += 1;
      s = s + 1;
    }
  }
  total[0] = s;
}
)";
  const AccProgram program = AccProgram::FromSource("r", kSource);
  struct Case {
    int n;
    int k;
  };
  for (const Case c : {Case{1, 4}, Case{2, 1}, Case{3, 2}}) {
    for (const int gpus : {2, 4}) {
      SCOPED_TRACE("n=" + std::to_string(c.n) + " k=" + std::to_string(c.k) +
                   " gpus=" + std::to_string(gpus));
      auto platform = sim::MakeSupercomputerNode(4);
      std::vector<std::int32_t> bins(static_cast<std::size_t>(c.n));
      std::vector<std::int32_t> hist(static_cast<std::size_t>(c.k), 0);
      std::vector<std::int32_t> want(static_cast<std::size_t>(c.k), 0);
      std::vector<std::int32_t> total(1, -1);
      for (int i = 0; i < c.n; ++i) {
        bins[static_cast<std::size_t>(i)] = i % c.k;
        ++want[static_cast<std::size_t>(i % c.k)];
      }
      RunConfig config{.platform = platform.get(), .num_gpus = gpus};
      config.options.async_pipeline = GetParam();
      config.options.validate = true;
      ProgramRunner runner(program, config);
      runner.BindArray("bins", bins.data(), ir::ValType::kI32, c.n);
      runner.BindArray("hist", hist.data(), ir::ValType::kI32, c.k);
      runner.BindArray("total", total.data(), ir::ValType::kI32, 1);
      runner.BindScalar("n", static_cast<std::int64_t>(c.n));
      runner.BindScalar("k", static_cast<std::int64_t>(c.k));
      const RunReport report = runner.Run("r");
      EXPECT_EQ(report.validator.divergences, 0u);
      EXPECT_EQ(hist, want);
      EXPECT_EQ(total[0], c.n);
    }
  }
}

TEST_P(SmallNSweep, ZeroIterationLoopLeavesArraysIntact) {
  constexpr char kSource[] = R"(
void z(int n, int m, double* u) {
  #pragma acc data copy(u[0:n])
  {
    #pragma acc localaccess(u: stride(1))
    #pragma acc parallel loop
    for (int i = 0; i < m; i++) { u[i] = u[i] + 1.0; }
  }
}
)";
  const AccProgram program = AccProgram::FromSource("z", kSource);
  for (const int m : {0, 1}) {
    for (const int gpus : {2, 4}) {
      SCOPED_TRACE("m=" + std::to_string(m) + " gpus=" +
                   std::to_string(gpus));
      const int n = 8;
      auto platform = sim::MakeSupercomputerNode(4);
      std::vector<double> u(static_cast<std::size_t>(n));
      for (int i = 0; i < n; ++i) u[static_cast<std::size_t>(i)] = i;
      RunConfig config{.platform = platform.get(), .num_gpus = gpus};
      config.options.async_pipeline = GetParam();
      config.options.validate = true;
      ProgramRunner runner(program, config);
      runner.BindArray("u", u.data(), ir::ValType::kF64, n);
      runner.BindScalar("n", static_cast<std::int64_t>(n));
      runner.BindScalar("m", static_cast<std::int64_t>(m));
      const RunReport report = runner.Run("z");
      EXPECT_EQ(report.validator.divergences, 0u);
      for (int i = 0; i < n; ++i) {
        EXPECT_EQ(u[static_cast<std::size_t>(i)],
                  i + (i < m ? 1.0 : 0.0));
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(SyncAndAsync, SmallNSweep, ::testing::Bool(),
                         [](const ::testing::TestParamInfo<bool>& info) {
                           return info.param ? "AsyncPipeline"
                                             : "Synchronous";
                         });

// ---------------------------------------------------------------------------
// 2-D row-block distribution (localaccess cols + 2-D data sections)
// ---------------------------------------------------------------------------

// Integer two-sweep row stencil: v gets the 3-row vertical sum (rows
// clamped at the grid edges), then u absorbs v with a divide so values stay
// bounded. Integer arithmetic makes the host reference comparison exact.
constexpr char kGrid2dSource[] = R"(
void g(int n, int m, int steps, int* u, int* v) {
  #pragma acc data copy(u[0:n][0:m]) create(v[0:n][0:m])
  {
    for (int t = 0; t < steps; t++) {
      #pragma acc localaccess(u: cols(m), left(1), right(1)) (v: cols(m))
      #pragma acc parallel loop
      for (int i = 0; i < n; i++) {
        for (int j = 0; j < m; j++) {
          int im = i - 1;
          if (im < 0) { im = 0; }
          int ip = i + 1;
          if (ip > n - 1) { ip = n - 1; }
          v[i * m + j] = u[im * m + j] + u[i * m + j] + u[ip * m + j];
        }
      }
      #pragma acc localaccess(u: cols(m)) (v: cols(m))
      #pragma acc parallel loop
      for (int i = 0; i < n; i++) {
        for (int j = 0; j < m; j++) {
          u[i * m + j] = v[i * m + j] - v[i * m + j] / 3;
        }
      }
    }
  }
})";

std::vector<std::int32_t> Grid2dReference(std::vector<std::int32_t> u, int n,
                                          int m, int steps) {
  std::vector<std::int32_t> v(u.size());
  for (int t = 0; t < steps; ++t) {
    for (int i = 0; i < n; ++i) {
      const int im = i > 0 ? i - 1 : 0;
      const int ip = i < n - 1 ? i + 1 : n - 1;
      for (int j = 0; j < m; ++j) {
        v[static_cast<std::size_t>(i * m + j)] =
            u[static_cast<std::size_t>(im * m + j)] +
            u[static_cast<std::size_t>(i * m + j)] +
            u[static_cast<std::size_t>(ip * m + j)];
      }
    }
    for (std::size_t k = 0; k < u.size(); ++k) u[k] = v[k] - v[k] / 3;
  }
  return u;
}

std::vector<std::int32_t> RunGrid2d(sim::Platform& platform, int gpus, int n,
                                    int m, int steps,
                                    const ExecOptions& options) {
  std::vector<std::int32_t> u(static_cast<std::size_t>(n * m));
  for (std::size_t k = 0; k < u.size(); ++k) {
    u[k] = static_cast<std::int32_t>((k * 37 + 11) % 101);
  }
  std::vector<std::int32_t> v(u.size(), 0);
  const auto program = AccProgram::FromSource("g", kGrid2dSource);
  RunConfig config{.platform = &platform, .num_gpus = gpus};
  config.options = options;
  ProgramRunner runner(program, config);
  runner.BindArray("u", u.data(), ir::ValType::kI32,
                   static_cast<std::int64_t>(u.size()));
  runner.BindArray("v", v.data(), ir::ValType::kI32,
                   static_cast<std::int64_t>(v.size()));
  runner.BindScalar("n", static_cast<std::int64_t>(n));
  runner.BindScalar("m", static_cast<std::int64_t>(m));
  runner.BindScalar("steps", static_cast<std::int64_t>(steps));
  runner.Run("g");
  return u;
}

std::vector<std::int32_t> Grid2dSeed(int n, int m) {
  std::vector<std::int32_t> u(static_cast<std::size_t>(n * m));
  for (std::size_t k = 0; k < u.size(); ++k) {
    u[k] = static_cast<std::int32_t>((k * 37 + 11) % 101);
  }
  return u;
}

TEST(TwoDRowBlockTest, MatchesHostReferenceAcrossGpuCounts) {
  const auto expected = Grid2dReference(Grid2dSeed(13, 7), 13, 7, 3);
  for (const int gpus : {1, 2, 3}) {
    auto platform = sim::MakeSupercomputerNode(3);
    ExecOptions options;
    options.validate = true;
    EXPECT_EQ(RunGrid2d(*platform, gpus, 13, 7, 3, options), expected)
        << "gpus=" << gpus;
  }
}

TEST(TwoDRowBlockTest, EmptyRowBlocksWhenRowsFewerThanGpus) {
  // 2 rows across 3 devices: device 2 owns zero rows, and the halo
  // machinery must ride through the empty shard (validator on).
  auto platform = sim::MakeSupercomputerNode(3);
  ExecOptions options;
  options.validate = true;
  EXPECT_EQ(RunGrid2d(*platform, 3, 2, 5, 2, options),
            Grid2dReference(Grid2dSeed(2, 5), 2, 5, 2));
}

TEST(TwoDRowBlockTest, SingleRowPerDeviceHalos) {
  // 3 rows on 3 devices: every owned block is exactly one row, so each
  // halo refresh copies a whole neighbouring shard.
  auto platform = sim::MakeSupercomputerNode(3);
  ExecOptions options;
  options.validate = true;
  EXPECT_EQ(RunGrid2d(*platform, 3, 3, 4, 3, options),
            Grid2dReference(Grid2dSeed(3, 4), 3, 4, 3));
}

TEST(TwoDRowBlockTest, AsyncPipelineMatchesSynchronous) {
  std::vector<std::int32_t> results[2];
  for (const bool async : {false, true}) {
    auto platform = sim::MakeSupercomputerNode(3);
    ExecOptions options;
    options.async_pipeline = async;
    options.validate = async;
    results[async ? 1 : 0] = RunGrid2d(*platform, 3, 12, 6, 3, options);
  }
  EXPECT_EQ(results[0], results[1]);
}

// Regression (equal-division remainder under recovery): 7 iterations on 3
// GPUs, one permanent device death mid-job. The shrink repartitions 7 rows
// over 2 survivors (7 % 2 != 0); the restored host image must split
// remainder-correctly and the validator must stay clean.
TEST(TwoDRowBlockTest, ShrinkRepartitionsRemainderAfterDeviceDeath) {
  auto platform = sim::MakeSupercomputerNode(3);
  platform->ArmFaults(sim::FaultPlan::Parse("seed=7,death=0.05,max-deaths=1"));
  ExecOptions options;
  options.validate = true;
  const auto got = RunGrid2d(*platform, 3, 7, 5, 4, options);
  EXPECT_GT(platform->faults().deaths(), 0) << "the plan never killed a "
                                               "device — regression vacuous";
  EXPECT_EQ(got, Grid2dReference(Grid2dSeed(7, 5), 7, 5, 4));
}

}  // namespace
}  // namespace accmg::runtime
