// Unit tests for the mini-C + OpenACC frontend: lexer, parser, pragma
// parsing, semantic analysis.
#include <gtest/gtest.h>

#include "common/error.h"
#include "frontend/lexer.h"
#include "frontend/parser.h"
#include "frontend/printer.h"
#include "frontend/sema.h"

namespace accmg::frontend {
namespace {

std::vector<Token> Lex(const std::string& text) {
  SourceBuffer buffer("test.c", text);
  return Lexer(buffer).LexAll();
}

std::unique_ptr<Program> Analyze(const std::string& text) {
  SourceBuffer buffer("test.c", text);
  return ParseAndAnalyze(buffer);
}

// ---------------------------------------------------------------------------
// Lexer
// ---------------------------------------------------------------------------

TEST(LexerTest, BasicTokens) {
  const auto tokens = Lex("int x = 42;");
  ASSERT_EQ(tokens.size(), 6u);  // int x = 42 ; EOF
  EXPECT_EQ(tokens[0].kind, TokenKind::kKwInt);
  EXPECT_EQ(tokens[1].kind, TokenKind::kIdentifier);
  EXPECT_EQ(tokens[1].text, "x");
  EXPECT_EQ(tokens[2].kind, TokenKind::kAssign);
  EXPECT_EQ(tokens[3].kind, TokenKind::kIntLiteral);
  EXPECT_EQ(tokens[3].int_value, 42);
  EXPECT_EQ(tokens[4].kind, TokenKind::kSemicolon);
  EXPECT_EQ(tokens[5].kind, TokenKind::kEndOfFile);
}

TEST(LexerTest, FloatLiterals) {
  const auto tokens = Lex("1.5 2e3 3.25f 0.5F 7f");
  EXPECT_EQ(tokens[0].kind, TokenKind::kFloatLiteral);
  EXPECT_DOUBLE_EQ(tokens[0].float_value, 1.5);
  EXPECT_DOUBLE_EQ(tokens[1].float_value, 2000.0);
  EXPECT_DOUBLE_EQ(tokens[2].float_value, 3.25);
  EXPECT_NE(tokens[2].text.find('f'), std::string::npos);  // f32 marker kept
  EXPECT_NE(tokens[3].text.find('f'), std::string::npos);
  EXPECT_EQ(tokens[4].kind, TokenKind::kFloatLiteral);  // 7f is float
}

TEST(LexerTest, HexAndSuffixedIntegers) {
  const auto tokens = Lex("0xFF 10L 5u");
  EXPECT_EQ(tokens[0].int_value, 255);
  EXPECT_EQ(tokens[1].int_value, 10);
  EXPECT_EQ(tokens[2].int_value, 5);
}

TEST(LexerTest, TwoCharOperators) {
  const auto tokens = Lex("<= >= == != && || << >> += -= ++ --");
  const TokenKind expected[] = {
      TokenKind::kLe,        TokenKind::kGe,         TokenKind::kEq,
      TokenKind::kNe,        TokenKind::kAmpAmp,     TokenKind::kPipePipe,
      TokenKind::kShl,       TokenKind::kShr,        TokenKind::kPlusAssign,
      TokenKind::kMinusAssign, TokenKind::kPlusPlus, TokenKind::kMinusMinus,
  };
  for (std::size_t i = 0; i < std::size(expected); ++i) {
    EXPECT_EQ(tokens[i].kind, expected[i]) << "token " << i;
  }
}

TEST(LexerTest, CommentsAreSkipped) {
  const auto tokens = Lex("a // line comment\n /* block \n comment */ b");
  ASSERT_EQ(tokens.size(), 3u);
  EXPECT_EQ(tokens[0].text, "a");
  EXPECT_EQ(tokens[1].text, "b");
}

TEST(LexerTest, PragmaLineBecomesOneToken) {
  const auto tokens = Lex("#pragma acc parallel loop\nint x;");
  EXPECT_EQ(tokens[0].kind, TokenKind::kPragma);
  EXPECT_EQ(tokens[0].text, "pragma acc parallel loop");
  EXPECT_EQ(tokens[1].kind, TokenKind::kKwInt);
}

TEST(LexerTest, PragmaBackslashContinuation) {
  const auto tokens = Lex("#pragma acc data \\\n copyin(x[0:n])\n;");
  EXPECT_EQ(tokens[0].kind, TokenKind::kPragma);
  EXPECT_NE(tokens[0].text.find("copyin"), std::string::npos);
}

TEST(LexerTest, HashMidLineIsAnError) {
  EXPECT_THROW(Lex("int x = #pragma;"), CompileError);
}

TEST(LexerTest, UnterminatedCommentIsAnError) {
  EXPECT_THROW(Lex("/* never closed"), CompileError);
}

TEST(LexerTest, TracksLocations) {
  const auto tokens = Lex("a\n  b");
  EXPECT_EQ(tokens[0].location.line, 1);
  EXPECT_EQ(tokens[0].location.column, 1);
  EXPECT_EQ(tokens[1].location.line, 2);
  EXPECT_EQ(tokens[1].location.column, 3);
}

// ---------------------------------------------------------------------------
// Expression parsing
// ---------------------------------------------------------------------------

TEST(ParserTest, PrecedenceMulBeforeAdd) {
  const ExprPtr expr = Parser::ParseExpressionString("1 + 2 * 3");
  const auto& add = As<BinaryExpr>(*expr);
  EXPECT_EQ(add.op, BinaryOp::kAdd);
  EXPECT_EQ(As<BinaryExpr>(*add.rhs).op, BinaryOp::kMul);
}

TEST(ParserTest, PrecedenceComparisonBelowArithmetic) {
  const ExprPtr expr = Parser::ParseExpressionString("a + 1 < b * 2");
  EXPECT_EQ(As<BinaryExpr>(*expr).op, BinaryOp::kLt);
}

TEST(ParserTest, LogicalOperatorsLowest) {
  const ExprPtr expr = Parser::ParseExpressionString("a < b && c > d || e");
  EXPECT_EQ(As<BinaryExpr>(*expr).op, BinaryOp::kLogicalOr);
}

TEST(ParserTest, ConditionalExpression) {
  const ExprPtr expr = Parser::ParseExpressionString("a ? b : c ? d : e");
  const auto& cond = As<ConditionalExpr>(*expr);
  EXPECT_EQ(cond.else_expr->kind, ExprKind::kConditional);  // right assoc
}

TEST(ParserTest, SubscriptChains) {
  const ExprPtr expr = Parser::ParseExpressionString("a[b[i] + 1]");
  const auto& outer = As<SubscriptExpr>(*expr);
  EXPECT_EQ(outer.base->kind, ExprKind::kVarRef);
  EXPECT_EQ(outer.index->kind, ExprKind::kBinary);
}

TEST(ParserTest, CastVsParenthesizedExpr) {
  const ExprPtr cast = Parser::ParseExpressionString("(float)x");
  EXPECT_EQ(cast->kind, ExprKind::kCast);
  const ExprPtr paren = Parser::ParseExpressionString("(x)");
  EXPECT_EQ(paren->kind, ExprKind::kVarRef);
}

TEST(ParserTest, UnaryOperators) {
  EXPECT_EQ(Parser::ParseExpressionString("-x")->kind, ExprKind::kUnary);
  EXPECT_EQ(Parser::ParseExpressionString("!x")->kind, ExprKind::kUnary);
  EXPECT_EQ(Parser::ParseExpressionString("~x")->kind, ExprKind::kUnary);
  // Unary plus is a no-op.
  EXPECT_EQ(Parser::ParseExpressionString("+x")->kind, ExprKind::kVarRef);
}

TEST(ParserTest, CallWithArguments) {
  const ExprPtr expr = Parser::ParseExpressionString("fminf(a, b + 1)");
  const auto& call = As<CallExpr>(*expr);
  EXPECT_EQ(call.callee, "fminf");
  EXPECT_EQ(call.args.size(), 2u);
}

TEST(ParserTest, TrailingTokensRejected) {
  EXPECT_THROW(Parser::ParseExpressionString("a b"), CompileError);
}

// ---------------------------------------------------------------------------
// Statement / function parsing
// ---------------------------------------------------------------------------

TEST(ParserTest, FunctionWithParams) {
  const auto program = Analyze("void f(int n, float* x, const double* y) {}");
  ASSERT_EQ(program->functions.size(), 1u);
  const Function& fn = *program->functions[0];
  EXPECT_EQ(fn.name, "f");
  ASSERT_EQ(fn.params.size(), 3u);
  EXPECT_FALSE(fn.params[0]->type.is_pointer);
  EXPECT_TRUE(fn.params[1]->type.is_pointer);
  EXPECT_EQ(fn.params[1]->type.scalar, ScalarType::kFloat32);
  EXPECT_TRUE(fn.params[2]->type.is_const);
}

TEST(ParserTest, ArrayParamBracketSyntax) {
  const auto program = Analyze("void f(int n, float x[]) {}");
  EXPECT_TRUE(program->functions[0]->params[1]->type.is_pointer);
}

TEST(ParserTest, ForLoopWithIncrement) {
  const auto program = Analyze(R"(
void f(int n) {
  int total = 0;
  for (int i = 0; i < n; i++) {
    total = total + i;
  }
})");
  const auto& body = program->functions[0]->body->body;
  ASSERT_EQ(body.size(), 2u);
  EXPECT_EQ(body[1]->kind, StmtKind::kFor);
  const auto& loop = As<ForStmt>(*body[1]);
  EXPECT_EQ(loop.init->kind, StmtKind::kDecl);
  EXPECT_EQ(loop.step->kind, StmtKind::kAssign);
}

TEST(ParserTest, IfElseChains) {
  const auto program = Analyze(R"(
void f(int a) {
  int r = 0;
  if (a > 0) { r = 1; } else if (a < 0) { r = 2; } else { r = 3; }
})");
  const auto& if_stmt = As<IfStmt>(*program->functions[0]->body->body[1]);
  ASSERT_NE(if_stmt.else_stmt, nullptr);
  EXPECT_EQ(if_stmt.else_stmt->kind, StmtKind::kIf);
}

TEST(ParserTest, WhileBreakContinue) {
  const auto program = Analyze(R"(
void f(int n) {
  int i = 0;
  while (i < n) {
    i++;
    if (i == 3) { continue; }
    if (i == 7) { break; }
  }
})");
  EXPECT_EQ(program->functions[0]->body->body[1]->kind, StmtKind::kWhile);
}

TEST(ParserTest, CompoundAssignments) {
  const auto program = Analyze(R"(
void f(float* a, int n) {
  int i = 0;
  i += 2; i -= 1; i *= 3;
  a[i] /= 2.0f;
})");
  (void)program;
}

TEST(ParserTest, EmptyStatementAnchorsPragma) {
  const auto program = Analyze(R"(
void f(float* a, int n) {
  #pragma acc data copy(a[0:n])
  {
    #pragma acc update host(a)
    ;
  }
})");
  (void)program;
}

// ---------------------------------------------------------------------------
// Pragma parsing
// ---------------------------------------------------------------------------

const Stmt& FirstStmt(const Program& program) {
  return *program.functions[0]->body->body[0];
}

TEST(PragmaTest, DataClauses) {
  const auto program = Analyze(R"(
void f(float* a, float* b, float* c, float* d, int n) {
  #pragma acc data copy(a[0:n]) copyin(b[0:n], c[0:n]) create(d[0:n])
  { }
})");
  const Directive* data = FirstStmt(*program).FindDirective(DirectiveKind::kData);
  ASSERT_NE(data, nullptr);
  ASSERT_EQ(data->data_clauses.size(), 3u);
  EXPECT_EQ(data->data_clauses[0].kind, DataClauseKind::kCopy);
  EXPECT_EQ(data->data_clauses[1].kind, DataClauseKind::kCopyIn);
  EXPECT_EQ(data->data_clauses[1].sections.size(), 2u);
  EXPECT_EQ(data->data_clauses[2].kind, DataClauseKind::kCreate);
}

TEST(PragmaTest, ParallelLoopCombined) {
  const auto program = Analyze(R"(
void f(float* a, int n) {
  #pragma acc parallel loop copyin(a[0:n])
  for (int i = 0; i < n; i++) { int x = 0; }
})");
  const Directive* parallel =
      FirstStmt(*program).FindDirective(DirectiveKind::kParallel);
  ASSERT_NE(parallel, nullptr);
  EXPECT_TRUE(parallel->combined_loop);
}

TEST(PragmaTest, ReductionClause) {
  const auto program = Analyze(R"(
void f(double* x, int n, double s) {
  double sum = 0.0;
  #pragma acc parallel loop reduction(+:sum)
  for (int i = 0; i < n; i++) { sum += x[i]; }
  s = sum;
})");
  const Directive* parallel = program->functions[0]
                                  ->body->body[1]
                                  ->FindDirective(DirectiveKind::kParallel);
  ASSERT_NE(parallel, nullptr);
  ASSERT_EQ(parallel->reductions.size(), 1u);
  EXPECT_EQ(parallel->reductions[0].op, ReductionOp::kAdd);
  EXPECT_EQ(parallel->reductions[0].vars, std::vector<std::string>{"sum"});
}

TEST(PragmaTest, ReductionOperators) {
  for (const auto& [spelling, op] :
       {std::pair{"+", ReductionOp::kAdd}, std::pair{"*", ReductionOp::kMul},
        std::pair{"min", ReductionOp::kMin},
        std::pair{"max", ReductionOp::kMax}}) {
    const std::string source = std::string(R"(
void f(double* x, int n) {
  double acc = 0.0;
  #pragma acc parallel loop reduction()") + spelling + R"(:acc)
  for (int i = 0; i < n; i++) { int q = 0; }
})";
    const auto program = Analyze(source);
    const Directive* parallel = program->functions[0]
                                    ->body->body[1]
                                    ->FindDirective(DirectiveKind::kParallel);
    EXPECT_EQ(parallel->reductions[0].op, op) << spelling;
  }
}

TEST(PragmaTest, LocalAccessFullForm) {
  const auto program = Analyze(R"(
void f(float* a, float* b, int n) {
  #pragma acc localaccess(a: stride(3), left(1), right(2)) (b)
  #pragma acc parallel loop
  for (int i = 0; i < n; i++) { int x = 0; }
})");
  const Directive* local =
      FirstStmt(*program).FindDirective(DirectiveKind::kLocalAccess);
  ASSERT_NE(local, nullptr);
  ASSERT_EQ(local->local_access.size(), 2u);
  EXPECT_EQ(local->local_access[0].array, "a");
  ASSERT_NE(local->local_access[0].stride, nullptr);
  ASSERT_NE(local->local_access[0].left, nullptr);
  ASSERT_NE(local->local_access[0].right, nullptr);
  EXPECT_EQ(local->local_access[1].array, "b");
  EXPECT_EQ(local->local_access[1].stride, nullptr);  // defaults
}

TEST(PragmaTest, LocalAccessColsForm) {
  const auto program = Analyze(R"(
void f(float* u, float* v, int n, int m) {
  #pragma acc localaccess(u: cols(m), left(1), right(1)) (v: cols(m))
  #pragma acc parallel loop
  for (int i = 0; i < n; i++) { int x = 0; }
})");
  const Directive* local =
      FirstStmt(*program).FindDirective(DirectiveKind::kLocalAccess);
  ASSERT_NE(local, nullptr);
  ASSERT_EQ(local->local_access.size(), 2u);
  EXPECT_EQ(local->local_access[0].array, "u");
  ASSERT_NE(local->local_access[0].cols, nullptr);
  EXPECT_EQ(local->local_access[0].stride, nullptr);
  ASSERT_NE(local->local_access[0].left, nullptr);
  ASSERT_NE(local->local_access[1].cols, nullptr);
  EXPECT_EQ(local->local_access[1].left, nullptr);
  // The printer round-trips the 2-D form verbatim.
  const std::string text = PrintProgram(*program);
  EXPECT_NE(text.find("cols(m)"), std::string::npos) << text;
  EXPECT_NE(text.find("left(1)"), std::string::npos) << text;
}

TEST(PragmaTest, TwoDSectionsParseAndPrint) {
  const auto program = Analyze(R"(
void f(float* u, int n, int m) {
  #pragma acc data copy(u[0:n][0:m])
  { }
})");
  const Directive* data =
      FirstStmt(*program).FindDirective(DirectiveKind::kData);
  ASSERT_NE(data, nullptr);
  ASSERT_EQ(data->data_clauses.size(), 1u);
  const ArraySection& section = data->data_clauses[0].sections[0];
  ASSERT_NE(section.lower2, nullptr);
  ASSERT_NE(section.length2, nullptr);
  const std::string text = PrintProgram(*program);
  EXPECT_NE(text.find("u[0:n][0:m]"), std::string::npos) << text;
}

TEST(PragmaTest, StrideAndColsAreMutuallyExclusive) {
  EXPECT_THROW(Analyze(R"(
void f(float* u, int n, int m) {
  #pragma acc localaccess(u: stride(1), cols(m))
  #pragma acc parallel loop
  for (int i = 0; i < n; i++) { int x = 0; }
})"),
               CompileError);
}

TEST(PragmaTest, ReductionToArray) {
  const auto program = Analyze(R"(
void f(int* hist, int* keys, int n, int k) {
  #pragma acc parallel loop copyin(keys[0:n]) copy(hist[0:k])
  for (int i = 0; i < n; i++) {
    #pragma acc reductiontoarray(+: hist[0:k])
    hist[keys[i]] += 1;
  }
})");
  // The annotation sits on the innermost statement.
  const auto& loop = As<ForStmt>(FirstStmt(*program));
  const auto& inner = As<CompoundStmt>(*loop.body).body[0];
  const Directive* red =
      inner->FindDirective(DirectiveKind::kReductionToArray);
  ASSERT_NE(red, nullptr);
  EXPECT_EQ(red->reduction_to_array->array, "hist");
  EXPECT_EQ(red->reduction_to_array->op, ReductionOp::kAdd);
}

TEST(PragmaTest, UpdateDirective) {
  const auto program = Analyze(R"(
void f(float* a, float* b, int n) {
  #pragma acc data copy(a[0:n], b[0:n])
  {
    #pragma acc update host(a) device(b[0:n])
    ;
  }
})");
  const auto& block = As<CompoundStmt>(FirstStmt(*program));
  const Directive* update =
      block.body[0]->FindDirective(DirectiveKind::kUpdate);
  ASSERT_NE(update, nullptr);
  ASSERT_EQ(update->updates.size(), 2u);
  EXPECT_TRUE(update->updates[0].to_host);
  EXPECT_FALSE(update->updates[1].to_host);
}

TEST(PragmaTest, GangWorkerVectorAccepted) {
  const auto program = Analyze(R"(
void f(float* a, int n) {
  #pragma acc parallel loop gang worker vector_length(128) num_gangs(64)
  for (int i = 0; i < n; i++) { int x = 0; }
})");
  const Directive* parallel =
      FirstStmt(*program).FindDirective(DirectiveKind::kParallel);
  EXPECT_EQ(parallel->vector_length, 128);
  EXPECT_EQ(parallel->num_gangs, 64);
}

TEST(PragmaTest, UnknownDirectiveRejected) {
  EXPECT_THROW(Analyze(R"(
void f(int n) {
  #pragma acc nonsense
  ;
})"),
               CompileError);
}

TEST(PragmaTest, NonAccPragmaRejected) {
  EXPECT_THROW(Analyze(R"(
void f(int n) {
  #pragma omp parallel
  ;
})"),
               CompileError);
}

// ---------------------------------------------------------------------------
// Sema
// ---------------------------------------------------------------------------

TEST(SemaTest, ResolvesTypes) {
  const auto program = Analyze(R"(
void f(int n, float* x) {
  float v = x[n - 1] * 2.0f;
  double d = v + 1;
})");
  const auto& decl = As<DeclStmt>(*program->functions[0]->body->body[0]);
  EXPECT_EQ(decl.init->type.scalar, ScalarType::kFloat32);
}

TEST(SemaTest, CommonTypePromotion) {
  const auto program = Analyze(R"(
void f(int i, float f32, double f64) {
  double a = i + f32;
  double b = f32 + f64;
})");
  const auto& a = As<DeclStmt>(*program->functions[0]->body->body[0]);
  EXPECT_EQ(a.init->type.scalar, ScalarType::kFloat32);
  const auto& b = As<DeclStmt>(*program->functions[0]->body->body[1]);
  EXPECT_EQ(b.init->type.scalar, ScalarType::kFloat64);
}

TEST(SemaTest, ComparisonIsInt) {
  const auto program = Analyze(R"(
void f(float a, float b) {
  int r = a < b;
})");
  const auto& decl = As<DeclStmt>(*program->functions[0]->body->body[0]);
  EXPECT_EQ(decl.init->type.scalar, ScalarType::kInt32);
}

TEST(SemaTest, UndeclaredIdentifier) {
  EXPECT_THROW(Analyze("void f() { int x = nope; }"), CompileError);
}

TEST(SemaTest, Redeclaration) {
  EXPECT_THROW(Analyze("void f(int a) { int a = 0; }"), CompileError);
}

TEST(SemaTest, ShadowingInNestedScopeAllowed) {
  EXPECT_NO_THROW(Analyze("void f(int a) { { int b = a; { int a = b; } } }"));
}

TEST(SemaTest, ShadowedNamesResolveToDistinctDecls) {
  // A shadowed variable must resolve to the innermost declaration, and uses
  // after the inner scope closes must resolve back to the outer one.  Anything
  // keyed on names instead of resolved VarDecl pointers would conflate them.
  const auto program = Analyze(R"(
void f(int n) {
  int x = 1;
  {
    int x = 2;
    n = x;
  }
  n = x;
})");
  const auto& body = program->functions[0]->body->body;
  ASSERT_EQ(body.size(), 3u);
  const auto& outer_decl = As<DeclStmt>(*body[0]);
  const auto& block = As<CompoundStmt>(*body[1]);
  ASSERT_EQ(block.body.size(), 2u);
  const auto& inner_decl = As<DeclStmt>(*block.body[0]);
  const auto& inner_use = As<VarRef>(*As<AssignStmt>(*block.body[1]).value);
  const auto& outer_use = As<VarRef>(*As<AssignStmt>(*body[2]).value);

  EXPECT_NE(outer_decl.decl.get(), inner_decl.decl.get());
  EXPECT_EQ(inner_use.decl, inner_decl.decl.get());
  EXPECT_EQ(outer_use.decl, outer_decl.decl.get());
}

TEST(SemaTest, CannotAssignToArray) {
  EXPECT_THROW(Analyze("void f(float* a, float* b) { a = b; }"),
               CompileError);
}

TEST(SemaTest, CannotAssignToConst) {
  EXPECT_THROW(Analyze("void f(const int n) { n = 3; }"), CompileError);
}

TEST(SemaTest, SubscriptRequiresArray) {
  EXPECT_THROW(Analyze("void f(int n) { int x = n[0]; }"), CompileError);
}

TEST(SemaTest, SubscriptIndexMustBeInt) {
  EXPECT_THROW(Analyze("void f(float* a, float x) { float v = a[x]; }"),
               CompileError);
}

TEST(SemaTest, ModuloRequiresInts) {
  EXPECT_THROW(Analyze("void f(float a) { float b = a % 2.0f; }"),
               CompileError);
}

TEST(SemaTest, UnknownFunctionRejected) {
  EXPECT_THROW(Analyze("void f(float a) { float b = mystery(a); }"),
               CompileError);
}

TEST(SemaTest, BuiltinArityChecked) {
  EXPECT_THROW(Analyze("void f(float a) { float b = sqrtf(a, a); }"),
               CompileError);
}

TEST(SemaTest, LocalPointerRejected) {
  EXPECT_THROW(Analyze("void f(float* a) { float* p = a; }"), CompileError);
}

TEST(SemaTest, DirectiveUnknownArray) {
  EXPECT_THROW(Analyze(R"(
void f(int n) {
  #pragma acc data copy(ghost[0:n])
  { }
})"),
               CompileError);
}

TEST(SemaTest, DirectiveArrayMustBePointer) {
  EXPECT_THROW(Analyze(R"(
void f(int n) {
  #pragma acc data copy(n)
  { }
})"),
               CompileError);
}

TEST(SemaTest, ScalarReductionOnArrayRejected) {
  EXPECT_THROW(Analyze(R"(
void f(float* a, int n) {
  #pragma acc parallel loop reduction(+:a)
  for (int i = 0; i < n; i++) { int x = 0; }
})"),
               CompileError);
}

TEST(SemaTest, AllErrorsReportedTogether) {
  try {
    Analyze("void f() { int x = nope1; int y = nope2; }");
    FAIL();
  } catch (const CompileError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("nope1"), std::string::npos);
    EXPECT_NE(what.find("nope2"), std::string::npos);
  }
}

}  // namespace
}  // namespace accmg::frontend
