// AST printer tests: print(parse(s)) must itself parse, analyze, compile
// and — crucially — be a fixed point (printing is idempotent), so the
// printer is usable for source-to-source tooling. For fully-braced sources
// the round trip is also structurally equivalent.
#include <gtest/gtest.h>

#include "apps/bfs/bfs.h"
#include "apps/kmeans/kmeans.h"
#include "apps/md/md.h"
#include "apps/spmv/spmv.h"
#include "frontend/parser.h"
#include "frontend/printer.h"
#include "frontend/sema.h"
#include "translator/offload.h"

namespace accmg::frontend {
namespace {

std::unique_ptr<Program> Analyze(const std::string& name,
                                 const std::string& source) {
  SourceBuffer buffer(name, source);
  return ParseAndAnalyze(buffer);
}

void CheckRoundTrip(const std::string& name, const std::string& source) {
  auto original = Analyze(name, source);
  const std::string printed = PrintProgram(*original);

  // The printed text must be valid input...
  auto reparsed = Analyze(name + ":printed", printed);
  // ...that still translates...
  EXPECT_NO_THROW(translator::Compile(*reparsed)) << printed;
  // ...and printing is a fixed point.
  EXPECT_EQ(PrintProgram(*reparsed), printed) << printed;
}

TEST(PrinterTest, AppSourcesRoundTrip) {
  CheckRoundTrip("md", apps::MdSource());
  CheckRoundTrip("kmeans", apps::KmeansSource());
  CheckRoundTrip("bfs", apps::BfsSource());
  CheckRoundTrip("spmv", apps::SpmvSource());
}

TEST(PrinterTest, StructuralEquivalenceForBracedSources) {
  const std::string source = R"(
void f(int n, float* a, float* b) {
  #pragma acc data copyin(a[0:n]) copyout(b[0:n])
  {
    #pragma acc localaccess(a: stride(1), left(1), right(1)) (b: stride(1))
    #pragma acc parallel loop
    for (int i = 0; i < n; i++) {
      float acc = 0.0f;
      for (int d = -1; d <= 1; d++) {
        int j = i + d;
        if (j < 0) {
          j = 0;
        }
        if (j >= n) {
          j = n - 1;
        }
        acc += a[j];
      }
      b[i] = acc / 3.0f;
    }
  }
}
)";
  auto original = Analyze("stencil", source);
  auto reparsed = Analyze("stencil2", PrintProgram(*original));
  EXPECT_TRUE(ProgramsEquivalent(*original, *reparsed))
      << PrintProgram(*original);
}

TEST(PrinterTest, DirectiveRendering) {
  const std::string source = R"(
void f(int n, int k, int* keys, int* hist, float* x) {
  #pragma acc enter data copyin(x[0:n])
  ;
  #pragma acc parallel loop copy(hist[0:k]) copyin(keys[0:n])
  for (int i = 0; i < n; i++) {
    #pragma acc reductiontoarray(+: hist[0:k])
    hist[keys[i]] += 1;
  }
  #pragma acc update host(x)
  ;
  #pragma acc exit data delete(x)
  ;
}
)";
  const std::string printed = PrintProgram(*Analyze("d", source));
  EXPECT_NE(printed.find("#pragma acc enter data copyin(x[0:n])"),
            std::string::npos)
      << printed;
  EXPECT_NE(printed.find("#pragma acc reductiontoarray(+: hist[0:k])"),
            std::string::npos);
  EXPECT_NE(printed.find("#pragma acc update host(x)"), std::string::npos);
  EXPECT_NE(printed.find("#pragma acc exit data delete(x)"),
            std::string::npos);
  CheckRoundTrip("directives", source);
}

TEST(PrinterTest, ExpressionsParenthesizeUnambiguously) {
  const ExprPtr expr =
      Parser::ParseExpressionString("1 + 2 * 3 - -4 / (5 % 2)");
  const std::string printed = PrintExpr(*expr);
  const ExprPtr reparsed = Parser::ParseExpressionString(printed);
  EXPECT_EQ(PrintExpr(*reparsed), printed);
}

TEST(PrinterTest, DoWhileRoundTrips) {
  CheckRoundTrip("dowhile", R"(
void f(int n, int out) {
  int x = n;
  do {
    x = x / 2;
  } while (x > 1);
  out = x;
}
)");
}

}  // namespace
}  // namespace accmg::frontend
