// Unit tests for the common substrate: strings, RNG, thread pool, errors.
#include <gtest/gtest.h>

#include <atomic>
#include <set>

#include "common/error.h"
#include "common/rng.h"
#include "common/string_util.h"
#include "common/thread_pool.h"

namespace accmg {
namespace {

TEST(StringUtilTest, SplitKeepsEmptyFields) {
  EXPECT_EQ(Split("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(Split(",x,", ','), (std::vector<std::string>{"", "x", ""}));
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
}

TEST(StringUtilTest, Trim) {
  EXPECT_EQ(Trim("  hi  "), "hi");
  EXPECT_EQ(Trim("\t\nhi"), "hi");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim("   "), "");
}

TEST(StringUtilTest, StartsWith) {
  EXPECT_TRUE(StartsWith("pragma acc", "pragma"));
  EXPECT_FALSE(StartsWith("prag", "pragma"));
}

TEST(StringUtilTest, Join) {
  EXPECT_EQ(Join({"a", "b"}, ", "), "a, b");
  EXPECT_EQ(Join({}, ", "), "");
  EXPECT_EQ(Join({"solo"}, ","), "solo");
}

TEST(StringUtilTest, FormatBytes) {
  EXPECT_EQ(FormatBytes(512), "512B");
  EXPECT_EQ(FormatBytes(1536), "1.5KB");
  EXPECT_EQ(FormatBytes(466616320), "445.0MB");
}

TEST(StringUtilTest, FormatFixed) {
  EXPECT_EQ(FormatFixed(3.14159, 2), "3.14");
  EXPECT_EQ(FormatFixed(1.0, 0), "1");
}

TEST(RngTest, DeterministicAcrossInstances) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextU64(), b.NextU64());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextU64() == b.NextU64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(RngTest, BoundedStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextBounded(17), 17u);
  }
}

TEST(RngTest, DoubleInUnitInterval) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.NextDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, IntRangeInclusive) {
  Rng rng(11);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const std::int64_t v = rng.NextInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // all values hit
}

TEST(ThreadPoolTest, ParallelForCoversAllIndices) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.ParallelFor(0, 1000, [&](std::int64_t i) {
    hits[static_cast<std::size_t>(i)].fetch_add(1);
  });
  for (const auto& hit : hits) EXPECT_EQ(hit.load(), 1);
}

TEST(ThreadPoolTest, EmptyRangeIsNoop) {
  ThreadPool pool(2);
  bool called = false;
  pool.ParallelFor(5, 5, [&](std::int64_t) { called = true; });
  pool.ParallelFor(5, 3, [&](std::int64_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPoolTest, ChunksPartitionTheRange) {
  ThreadPool pool(3);
  std::mutex mutex;
  std::vector<std::pair<std::int64_t, std::int64_t>> chunks;
  pool.ParallelForChunks(10, 110,
                         [&](std::int64_t lo, std::int64_t hi, std::size_t) {
                           std::lock_guard<std::mutex> lock(mutex);
                           chunks.emplace_back(lo, hi);
                         });
  std::sort(chunks.begin(), chunks.end());
  EXPECT_EQ(chunks.front().first, 10);
  EXPECT_EQ(chunks.back().second, 110);
  for (std::size_t i = 1; i < chunks.size(); ++i) {
    EXPECT_EQ(chunks[i - 1].second, chunks[i].first);  // no gaps, no overlap
  }
}

TEST(ThreadPoolTest, PropagatesExceptions) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.ParallelFor(0, 100,
                                [](std::int64_t i) {
                                  if (i == 42) throw Error("boom");
                                }),
               Error);
}

TEST(ThreadPoolTest, ReusableAfterException) {
  ThreadPool pool(2);
  try {
    pool.ParallelFor(0, 10, [](std::int64_t) { throw Error("x"); });
  } catch (const Error&) {
  }
  std::atomic<int> count{0};
  pool.ParallelFor(0, 10, [&](std::int64_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 10);
}

TEST(ErrorTest, CheckMacroThrowsInternalError) {
  EXPECT_THROW(ACCMG_CHECK(false, "bad invariant"), InternalError);
  EXPECT_NO_THROW(ACCMG_CHECK(true, "fine"));
}

TEST(ErrorTest, RequireMacroThrowsInvalidArgument) {
  EXPECT_THROW(ACCMG_REQUIRE(1 == 2, "bad arg"), InvalidArgumentError);
}

TEST(ErrorTest, MessagesCarryContext) {
  try {
    ACCMG_REQUIRE(false, "the answer is 42");
    FAIL();
  } catch (const InvalidArgumentError& e) {
    EXPECT_NE(std::string(e.what()).find("the answer is 42"),
              std::string::npos);
  }
}

}  // namespace
}  // namespace accmg
