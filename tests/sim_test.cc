// Unit tests for the virtual multi-GPU platform: clock, topology, devices,
// copies, kernel timing.
#include <gtest/gtest.h>

#include "sim/clock.h"
#include "sim/platform.h"
#include "sim/topology.h"

namespace accmg::sim {
namespace {

// ---------------------------------------------------------------------------
// SimClock
// ---------------------------------------------------------------------------

TEST(SimClockTest, OperationsOnDisjointResourcesOverlap) {
  SimClock clock;
  const auto a = clock.NewResource("a");
  const auto b = clock.NewResource("b");
  clock.Schedule(a, 1.0);
  clock.Schedule(b, 2.0);
  EXPECT_DOUBLE_EQ(clock.Barrier(TimeCategory::kKernel), 2.0);  // not 3.0
}

TEST(SimClockTest, OperationsOnSameResourceSerialize) {
  SimClock clock;
  const auto a = clock.NewResource("a");
  clock.Schedule(a, 1.0);
  clock.Schedule(a, 2.0);
  EXPECT_DOUBLE_EQ(clock.Barrier(TimeCategory::kKernel), 3.0);
}

TEST(SimClockTest, MultiResourceOperationHoldsAll) {
  SimClock clock;
  const auto a = clock.NewResource("a");
  const auto b = clock.NewResource("b");
  clock.Schedule(std::vector<SimClock::Resource>{a, b}, 1.0);
  clock.Schedule(a, 1.0);
  clock.Schedule(b, 1.0);  // can start only at t=1, overlaps with the a-op
  EXPECT_DOUBLE_EQ(clock.Barrier(TimeCategory::kKernel), 2.0);
}

TEST(SimClockTest, BarrierAttributesToCategory) {
  SimClock clock;
  const auto a = clock.NewResource("a");
  clock.Schedule(a, 1.5);
  clock.Barrier(TimeCategory::kCpuGpu);
  clock.Schedule(a, 0.5);
  clock.Barrier(TimeCategory::kGpuGpu);
  EXPECT_DOUBLE_EQ(clock.breakdown()[TimeCategory::kCpuGpu], 1.5);
  EXPECT_DOUBLE_EQ(clock.breakdown()[TimeCategory::kGpuGpu], 0.5);
  EXPECT_DOUBLE_EQ(clock.breakdown().Total(), 2.0);
  EXPECT_DOUBLE_EQ(clock.breakdown().Communication(), 2.0);
}

TEST(SimClockTest, AddSerialAdvancesEverything) {
  SimClock clock;
  const auto a = clock.NewResource("a");
  clock.AddSerial(TimeCategory::kHostCompute, 3.0);
  clock.Schedule(a, 1.0);
  clock.Barrier(TimeCategory::kKernel);
  EXPECT_DOUBLE_EQ(clock.Now(), 4.0);
}

TEST(SimClockTest, ResetClearsTimeKeepsResources) {
  SimClock clock;
  const auto a = clock.NewResource("a");
  clock.Schedule(a, 1.0);
  clock.Barrier(TimeCategory::kKernel);
  clock.Reset();
  EXPECT_DOUBLE_EQ(clock.Now(), 0.0);
  EXPECT_DOUBLE_EQ(clock.breakdown().Total(), 0.0);
  clock.Schedule(a, 1.0);  // resource still valid
  EXPECT_DOUBLE_EQ(clock.Barrier(TimeCategory::kKernel), 1.0);
}

TEST(SimClockTest, RejectsBadInput) {
  SimClock clock;
  const auto a = clock.NewResource("a");
  EXPECT_THROW(clock.Schedule(a, -1.0), InvalidArgumentError);
  EXPECT_THROW(clock.Schedule(99, 1.0), InvalidArgumentError);
  EXPECT_THROW(clock.Schedule(std::vector<SimClock::Resource>{}, 1.0),
               InvalidArgumentError);
}

// ---------------------------------------------------------------------------
// Topology
// ---------------------------------------------------------------------------

TEST(TopologyTest, TransferSecondsIsLatencyPlusBandwidth) {
  LinkSpec link{.bandwidth_bps = 1e9, .latency_s = 1e-6};
  EXPECT_DOUBLE_EQ(link.TransferSeconds(1000000), 1e-6 + 1e-3);
}

TEST(TopologyTest, DesktopIsSingleIoGroup) {
  const TopologyConfig cfg = DesktopTopology(2);
  EXPECT_EQ(cfg.num_io_groups(), 1);
  // Same-group peer link carries no derating.
  EXPECT_DOUBLE_EQ(cfg.PeerLink(0, 1).bandwidth_bps,
                   cfg.peer_link.bandwidth_bps);
}

TEST(TopologyTest, SupercomputerSplitsAcrossTwoGroups) {
  const TopologyConfig cfg = SupercomputerTopology(3);
  EXPECT_EQ(cfg.num_io_groups(), 2);
  EXPECT_EQ(cfg.io_group[0], cfg.io_group[1]);
  EXPECT_NE(cfg.io_group[0], cfg.io_group[2]);
  // The cross-IOH link is derated and slower than the intra-IOH link.
  EXPECT_LT(cfg.PeerLink(0, 2).bandwidth_bps,
            cfg.PeerLink(0, 1).bandwidth_bps);
  EXPECT_GT(cfg.PeerLink(0, 2).latency_s, cfg.PeerLink(0, 1).latency_s);
}

// ---------------------------------------------------------------------------
// Device memory
// ---------------------------------------------------------------------------

TEST(DeviceTest, AllocationAccounting) {
  auto platform = MakeDesktopMachine(1);
  Device& dev = platform->device(0);
  EXPECT_EQ(dev.used_bytes(), 0u);
  auto buffer = dev.Allocate("buf", 1024);
  EXPECT_EQ(dev.used_bytes(), 1024u);
  EXPECT_EQ(buffer->size_bytes(), 1024u);
  EXPECT_EQ(buffer->device_id(), 0);
  buffer.reset();
  EXPECT_EQ(dev.used_bytes(), 0u);
  EXPECT_EQ(dev.peak_used_bytes(), 1024u);  // high-water mark survives
}

TEST(DeviceTest, OutOfMemoryThrowsDeviceError) {
  // A tiny device so the capacity edge is cheap to hit.
  DeviceSpec spec = TeslaC2075();
  spec.memory_bytes = 4096;
  Platform platform({spec}, DesktopTopology(1), CoreI7Desktop(), 1);
  Device& dev = platform.device(0);
  EXPECT_THROW(dev.Allocate("too big", dev.capacity_bytes() + 1),
               DeviceError);
  // Exactly-fitting allocation succeeds; the next byte does not.
  auto all = dev.Allocate("all", dev.capacity_bytes());
  EXPECT_THROW(dev.Allocate("one more", 1), DeviceError);
}

TEST(DeviceTest, TypedViewChecksElementSize) {
  auto platform = MakeDesktopMachine(1);
  auto buffer = platform->device(0).Allocate("buf", 10);  // not 4-divisible
  EXPECT_THROW(buffer->Typed<float>(), InvalidArgumentError);
  auto ok = platform->device(0).Allocate("ok", 12);
  EXPECT_EQ(ok->Typed<float>().size(), 3u);
}

// ---------------------------------------------------------------------------
// Platform copies and timing
// ---------------------------------------------------------------------------

TEST(PlatformTest, CopiesMoveBytesAndBillTime) {
  auto platform = MakeDesktopMachine(2);
  auto src = platform->device(0).Allocate("src", 16);
  auto dst = platform->device(1).Allocate("dst", 16);

  const std::uint32_t magic[4] = {1, 2, 3, 4};
  platform->CopyHostToDevice(*src, 0, magic, 16);
  platform->CopyDeviceToDevice(*dst, 0, *src, 0, 16);
  std::uint32_t out[4] = {};
  platform->CopyDeviceToHost(out, *dst, 0, 16);

  EXPECT_EQ(out[0], 1u);
  EXPECT_EQ(out[3], 4u);
  EXPECT_EQ(platform->counters().h2d_transfers, 1u);
  EXPECT_EQ(platform->counters().p2p_transfers, 1u);
  EXPECT_EQ(platform->counters().d2h_transfers, 1u);
  EXPECT_GT(platform->Barrier(TimeCategory::kCpuGpu), 0.0);
}

TEST(PlatformTest, CopyRangeChecks) {
  auto platform = MakeDesktopMachine(1);
  auto buffer = platform->device(0).Allocate("buf", 8);
  char data[16] = {};
  EXPECT_THROW(platform->CopyHostToDevice(*buffer, 4, data, 8),
               InvalidArgumentError);
  EXPECT_THROW(platform->CopyDeviceToHost(data, *buffer, 8, 1),
               InvalidArgumentError);
}

TEST(PlatformTest, ZeroByteCopyIsFree) {
  auto platform = MakeDesktopMachine(1);
  auto buffer = platform->device(0).Allocate("buf", 8);
  platform->CopyHostToDevice(*buffer, 0, nullptr, 0);
  EXPECT_EQ(platform->counters().h2d_transfers, 0u);
  EXPECT_DOUBLE_EQ(platform->Barrier(TimeCategory::kCpuGpu), 0.0);
}

TEST(PlatformTest, ConcurrentH2DToTwoGpusSharesTheHostLink) {
  auto platform = MakeDesktopMachine(2);
  auto b0 = platform->device(0).Allocate("b0", 1 << 20);
  auto b1 = platform->device(1).Allocate("b1", 1 << 20);
  std::vector<char> host(1 << 20);

  platform->CopyHostToDevice(*b0, 0, host.data(), host.size());
  const double serial = platform->Barrier(TimeCategory::kCpuGpu);

  platform->ResetAccounting();
  platform->CopyHostToDevice(*b0, 0, host.data(), host.size());
  platform->CopyHostToDevice(*b1, 0, host.data(), host.size());
  const double both = platform->Barrier(TimeCategory::kCpuGpu);
  // Desktop: one PCIe root — the two transfers serialize on it.
  EXPECT_NEAR(both, 2 * serial, serial * 0.01);
}

TEST(PlatformTest, CrossGroupTransfersOverlapOnTheNode) {
  auto platform = MakeSupercomputerNode(3);
  auto b0 = platform->device(0).Allocate("b0", 1 << 20);
  auto b2 = platform->device(2).Allocate("b2", 1 << 20);
  std::vector<char> host(1 << 20);

  platform->CopyHostToDevice(*b0, 0, host.data(), host.size());
  const double serial = platform->Barrier(TimeCategory::kCpuGpu);

  platform->ResetAccounting();
  // GPU 0 (IOH 0) and GPU 2 (IOH 1): independent roots, transfers overlap.
  platform->CopyHostToDevice(*b0, 0, host.data(), host.size());
  platform->CopyHostToDevice(*b2, 0, host.data(), host.size());
  const double both = platform->Barrier(TimeCategory::kCpuGpu);
  EXPECT_NEAR(both, serial, serial * 0.01);
}

TEST(PlatformTest, KernelTimeIsRooflineOfStats) {
  auto platform = MakeDesktopMachine(1);
  const auto& spec = platform->device(0).spec();

  // Compute-bound kernel.
  LambdaKernel compute([](std::int64_t, KernelStats& stats) {
    stats.instructions += 1000000;
  });
  KernelLaunch launch{.body = &compute, .num_threads = 1, .block_size = 1,
                      .name = "compute"};
  platform->LaunchKernel(0, launch);
  const double compute_time = platform->Barrier(TimeCategory::kKernel);
  EXPECT_NEAR(compute_time,
              spec.launch_overhead_s + 1e6 / spec.instr_per_sec, 1e-12);

  // Memory-bound kernel.
  LambdaKernel memory([](std::int64_t, KernelStats& stats) {
    stats.bytes_read += 100 << 20;
  });
  launch.body = &memory;
  platform->LaunchKernel(0, launch);
  const double memory_time = platform->Barrier(TimeCategory::kKernel);
  EXPECT_NEAR(memory_time,
              spec.launch_overhead_s +
                  static_cast<double>(100 << 20) / spec.mem_bandwidth_bps,
              1e-12);
}

TEST(PlatformTest, KernelsOnDifferentDevicesOverlap) {
  auto platform = MakeDesktopMachine(2);
  LambdaKernel body([](std::int64_t, KernelStats& stats) {
    stats.instructions += 1000000;
  });
  KernelLaunch launch{.body = &body, .num_threads = 1, .block_size = 1,
                      .name = "k"};
  platform->LaunchKernel(0, launch);
  const double one = platform->Barrier(TimeCategory::kKernel);

  platform->ResetAccounting();
  platform->LaunchKernel(0, launch);
  platform->LaunchKernel(1, launch);
  const double both = platform->Barrier(TimeCategory::kKernel);
  EXPECT_NEAR(both, one, one * 1e-9);  // parallel, not serial
}

TEST(PlatformTest, KernelExecutesAllThreads) {
  auto platform = MakeDesktopMachine(1);
  std::vector<std::atomic<int>> hits(500);
  LambdaKernel body([&](std::int64_t tid, KernelStats&) {
    hits[static_cast<std::size_t>(tid)].fetch_add(1);
  });
  KernelLaunch launch{.body = &body, .num_threads = 500, .block_size = 64,
                      .name = "k"};
  platform->LaunchKernel(0, launch);
  for (const auto& hit : hits) EXPECT_EQ(hit.load(), 1);
}

TEST(PlatformTest, PresetsMatchTableOne) {
  auto desktop = MakeDesktopMachine(2);
  EXPECT_EQ(desktop->num_devices(), 2);
  EXPECT_EQ(desktop->device(0).spec().name, "Tesla C2075");
  EXPECT_EQ(desktop->host_spec().threads, 12);

  auto node = MakeSupercomputerNode(3);
  EXPECT_EQ(node->num_devices(), 3);
  EXPECT_EQ(node->device(0).spec().name, "Tesla M2050");
  EXPECT_EQ(node->host_spec().threads, 24);
  // M2050 has 3 GB, C2075 6 GB.
  EXPECT_LT(node->device(0).capacity_bytes(),
            desktop->device(0).capacity_bytes());
}

TEST(PlatformTest, BillApisCountWithoutTouchingMemory) {
  auto platform = MakeDesktopMachine(2);
  platform->BillDeviceToDevice(0, 1, 1 << 20);
  EXPECT_EQ(platform->counters().p2p_transfers, 1u);
  EXPECT_EQ(platform->counters().p2p_bytes, std::size_t{1} << 20);
  EXPECT_GT(platform->Barrier(TimeCategory::kGpuGpu), 0.0);
}

}  // namespace
}  // namespace accmg::sim
